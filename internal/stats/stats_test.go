package stats

import (
	"math"
	"testing"
	"testing/quick"

	"carbonshift/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance(nil) = %v", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{10, 10, 10}); got != 0 {
		t.Fatalf("CV of constant = %v", got)
	}
	if got := CV([]float64{0, 0}); got != 0 {
		t.Fatalf("CV of zeros = %v", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, sd 2
	if got := CV(xs); !almost(got, 0.4, 1e-12) {
		t.Fatalf("CV = %v", got)
	}
}

func TestDailyCV(t *testing.T) {
	// Two days: constant day (CV 0) and alternating day.
	day1 := make([]float64, 24)
	day2 := make([]float64, 24)
	for i := range day1 {
		day1[i] = 5
		day2[i] = 5 + float64(i%2)*2 // 5,7,5,7... mean 6, sd 1
	}
	hourly := append(day1, day2...)
	want := (0 + 1.0/6.0) / 2
	if got := DailyCV(hourly); !almost(got, want, 1e-12) {
		t.Fatalf("DailyCV = %v, want %v", got, want)
	}
	if got := DailyCV(day1[:23]); got != 0 {
		t.Fatalf("DailyCV of partial day = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestMinMaxPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MinMax(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{9}, 50); got != 9 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestNearestRank(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2}, {25, 1}, {75, 3}, {99, 4}, {51, 3},
	}
	for _, c := range cases {
		if got := NearestRank(xs, c.p); got != c.want {
			t.Errorf("NearestRank(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := NearestRank([]float64{9}, 50); got != 9 {
		t.Errorf("single-element nearest rank = %v", got)
	}
}

// TestNearestRankTailSmallSamples pins the loadgen regression: for a
// small latency sample the reported p99 must be an observed value at
// or above every interpolated estimate — the old sort+index math
// under-reported the tail.
func TestNearestRankTailSmallSamples(t *testing.T) {
	// 10 samples, one slow outlier: the p99 *is* the outlier.
	xs := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 500}
	if got := NearestRank(xs, 99); got != 500 {
		t.Fatalf("p99 of 10 samples = %v, want the max (500)", got)
	}
	if interp := Percentile(xs, 99); interp >= 500 {
		t.Fatalf("interpolated p99 = %v; expected it below the max (the bug this guards)", interp)
	}
	// With n=100 the nearest rank of p99 is the 99th sample.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i + 1)
	}
	if got := NearestRank(big, 99); got != 99 {
		t.Fatalf("p99 of 1..100 = %v, want 99", got)
	}
	if got := NearestRank(big, 95); got != 95 {
		t.Fatalf("p95 of 1..100 = %v, want 95", got)
	}
}

func TestNearestRankPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NearestRank(nil, 50) },
		func() { NearestRank([]float64{1}, -1) },
		func() { NearestRank([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestCI95(t *testing.T) {
	if got := CI95([]float64{5}); got != 0 {
		t.Fatalf("CI95 single = %v", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // sd 2, n 8
	want := 1.96 * 2 / math.Sqrt(8)
	if got := CI95(xs); !almost(got, want, 1e-12) {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
}

func TestSumBottomK(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := SumBottomK(xs, 2); got != 3 {
		t.Fatalf("SumBottomK(2) = %v", got)
	}
	if got := SumBottomK(xs, 0); got != 0 {
		t.Fatalf("SumBottomK(0) = %v", got)
	}
	if got := SumBottomK(xs, 5); got != 15 {
		t.Fatalf("SumBottomK(5) = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSumBottomKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SumBottomK([]float64{1}, 2)
}

func TestBottomKIndices(t *testing.T) {
	xs := []float64{5, 1, 4, 1, 3}
	got := BottomKIndices(xs, 3)
	want := []int{1, 3, 4} // ties broken by index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BottomKIndices = %v, want %v", got, want)
		}
	}
}

func TestQuickSumBottomKMatchesSort(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = math.Mod(v, 1e6)
		}
		k := int(kRaw) % (len(xs) + 1)
		got := SumBottomK(xs, k)
		idx := BottomKIndices(xs, k)
		var want float64
		for _, i := range idx {
			want += xs[i]
		}
		return almost(got, want, 1e-6*(1+math.Abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMinWindowSum(t *testing.T) {
	xs := []float64{4, 2, 1, 3, 5}
	start, sum := MinWindowSum(xs, 2)
	if start != 1 || sum != 3 {
		t.Fatalf("MinWindowSum = %d, %v", start, sum)
	}
	start, sum = MinWindowSum(xs, 5)
	if start != 0 || sum != 15 {
		t.Fatalf("full-window MinWindowSum = %d, %v", start, sum)
	}
	// Earliest start wins ties.
	start, _ = MinWindowSum([]float64{1, 1, 1, 1}, 2)
	if start != 0 {
		t.Fatalf("tie broken to %d, want 0", start)
	}
}

func TestMinWindowSumPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MinWindowSum([]float64{1, 2}, 0) },
		func() { MinWindowSum([]float64{1, 2}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestQuickMinWindowMatchesNaive(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%n + 1
		src := rng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Uniform(0, 100)
		}
		s1, v1 := MinWindowSum(xs, k)
		s2, v2 := MinWindowSumNaive(xs, k)
		return s1 == s2 && almost(v1, v2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	var points []Point
	src := rng.New(42)
	centers := []Point{{0, 0}, {10, 10}, {-10, 10}}
	for _, c := range centers {
		for i := 0; i < 30; i++ {
			points = append(points, Point{c.X + src.Norm(0, 0.5), c.Y + src.Norm(0, 0.5)})
		}
	}
	res, err := KMeans(points, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All points generated from one center must share a cluster id.
	for g := 0; g < 3; g++ {
		first := res.Assign[g*30]
		for i := 1; i < 30; i++ {
			if res.Assign[g*30+i] != first {
				t.Fatalf("cluster %d split: %v", g, res.Assign[g*30:(g+1)*30])
			}
		}
	}
	// And the three groups must have distinct ids.
	if res.Assign[0] == res.Assign[30] || res.Assign[30] == res.Assign[60] || res.Assign[0] == res.Assign[60] {
		t.Fatalf("groups merged: %d %d %d", res.Assign[0], res.Assign[30], res.Assign[60])
	}
}

func TestKMeansDeterministic(t *testing.T) {
	points := []Point{{0, 0}, {1, 0}, {10, 0}, {11, 0}, {20, 0}, {21, 0}}
	a, err := KMeans(points, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans([]Point{{0, 0}}, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans([]Point{{0, 0}}, 2, 1); err == nil {
		t.Error("fewer points than clusters accepted")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := []Point{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(points, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if !almost(slope, 2, 1e-12) || !almost(intercept, 1, 1e-12) {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	// Degenerate x: slope 0, intercept mean(y).
	slope, intercept = LinearFit([]float64{5, 5}, []float64{1, 3})
	if slope != 0 || intercept != 2 {
		t.Fatalf("degenerate fit = %v, %v", slope, intercept)
	}
}

func TestLinearFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1})
}

func BenchmarkSumBottomK(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 8760)
	for i := range xs {
		xs[i] = src.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumBottomK(xs, 168)
	}
}

func BenchmarkMinWindowSum(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 8760)
	for i := range xs {
		xs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinWindowSum(xs, 168)
	}
}
