// Package stats provides the statistical primitives the analysis uses:
// descriptive statistics (mean, standard deviation, coefficient of
// variation, daily CV), percentiles, confidence intervals, bottom-k
// selection, and k-means++ clustering (used for the paper's Figure 3(b)
// trend grouping).
//
// Everything is implemented against plain []float64 so the package has
// no dependencies beyond the standard library.
package stats

import (
	"fmt"
	"math"
	"sort"

	"carbonshift/internal/rng"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (stddev / mean), the paper's
// variability metric. It returns 0 when the mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// DailyCV splits an hourly series into 24-hour windows and returns the
// mean of the per-day coefficients of variation. This is the "daily
// variability" of Figure 3: it isolates intra-day swings from seasonal
// drift. Trailing partial days are ignored.
func DailyCV(hourly []float64) float64 {
	days := len(hourly) / 24
	if days == 0 {
		return 0
	}
	var acc float64
	for d := 0; d < days; d++ {
		acc += CV(hourly[d*24 : (d+1)*24])
	}
	return acc / float64(days)
}

// MinMax returns the smallest and largest values in xs. It panics on an
// empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on an empty
// slice or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// NearestRank returns the p-th percentile (0 <= p <= 100) of xs under
// the explicit nearest-rank definition: the element at sorted position
// ⌈p/100 · n⌉ (1-based), with p=0 mapping to the minimum. Unlike
// Percentile's linear interpolation — the right estimator for smooth
// distributions like the carbon-intensity history the gate policies
// threshold — nearest-rank always returns an observed sample, which is
// what latency reporting needs: with n=10, the p99 is the maximum, not
// an interpolated value below every observation ever made. It panics
// on an empty slice or out-of-range p.
func NearestRank(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: NearestRank of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return NearestRankSorted(sorted, p)
}

// NearestRankSorted is NearestRank over an already-sorted sample,
// skipping the defensive copy and sort — for callers reporting several
// percentiles of one sample.
func NearestRankSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: NearestRank of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean of xs under a normal approximation (1.96 · σ/√n).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// SumBottomK returns the sum of the k smallest elements of xs. It uses
// an in-place quickselect over a copy, so it runs in O(n) expected time
// rather than O(n log n). It panics if k < 0 or k > len(xs).
//
// This is the kernel of the interruptible-job scheduler: an
// interruptible job of length k placed in a window runs during the k
// cheapest hours of that window.
func SumBottomK(xs []float64, k int) float64 {
	if k < 0 || k > len(xs) {
		panic(fmt.Sprintf("stats: SumBottomK k=%d of %d elements", k, len(xs)))
	}
	if k == 0 {
		return 0
	}
	if k == len(xs) {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s
	}
	buf := make([]float64, len(xs))
	copy(buf, xs)
	selectK(buf, k)
	var s float64
	for _, v := range buf[:k] {
		s += v
	}
	return s
}

// BottomKIndices returns the indices of the k smallest elements of xs,
// in ascending order of value (ties broken by index). It is used where
// the schedule itself — not just its cost — is needed.
func BottomKIndices(xs []float64, k int) []int {
	if k < 0 || k > len(xs) {
		panic(fmt.Sprintf("stats: BottomKIndices k=%d of %d elements", k, len(xs)))
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if xs[idx[a]] != xs[idx[b]] {
			return xs[idx[a]] < xs[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// selectK partially sorts buf so that buf[:k] holds the k smallest
// elements (in arbitrary order), using median-of-three quickselect.
func selectK(buf []float64, k int) {
	lo, hi := 0, len(buf)-1
	for lo < hi {
		p := partition(buf, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partition(buf []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot to dodge adversarial orderings.
	if buf[mid] < buf[lo] {
		buf[mid], buf[lo] = buf[lo], buf[mid]
	}
	if buf[hi] < buf[lo] {
		buf[hi], buf[lo] = buf[lo], buf[hi]
	}
	if buf[hi] < buf[mid] {
		buf[hi], buf[mid] = buf[mid], buf[hi]
	}
	pivot := buf[mid]
	buf[mid], buf[hi-1] = buf[hi-1], buf[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if buf[j] < pivot {
			buf[i], buf[j] = buf[j], buf[i]
			i++
		}
	}
	buf[i], buf[hi-1] = buf[hi-1], buf[i]
	return i
}

// MinWindowSum returns the starting index and sum of the contiguous
// window of length k with the smallest sum, computed with an O(n)
// sliding window. Ties resolve to the earliest start. It panics if
// k <= 0 or k > len(xs).
//
// This is the kernel of the deferrable-job scheduler: a non-
// interruptible job of length k with slack s starts at the cheapest
// k-window within the k+s-hour horizon (Bentley's minimum-sum
// subarray).
func MinWindowSum(xs []float64, k int) (start int, sum float64) {
	if k <= 0 || k > len(xs) {
		panic(fmt.Sprintf("stats: MinWindowSum k=%d of %d elements", k, len(xs)))
	}
	var cur float64
	for _, v := range xs[:k] {
		cur += v
	}
	best, bestStart := cur, 0
	for i := k; i < len(xs); i++ {
		cur += xs[i] - xs[i-k]
		// Strict inequality keeps the earliest start on ties; the
		// epsilon guards against float drift in long windows.
		if cur < best-1e-9 {
			best, bestStart = cur, i-k+1
		}
	}
	return bestStart, best
}

// MinWindowSumNaive is the O(n·k) rescan variant of MinWindowSum, kept
// for differential testing and the ablation benchmark.
func MinWindowSumNaive(xs []float64, k int) (start int, sum float64) {
	if k <= 0 || k > len(xs) {
		panic(fmt.Sprintf("stats: MinWindowSumNaive k=%d of %d elements", k, len(xs)))
	}
	best := math.Inf(1)
	bestStart := 0
	for i := 0; i+k <= len(xs); i++ {
		var cur float64
		for _, v := range xs[i : i+k] {
			cur += v
		}
		if cur < best-1e-9 {
			best, bestStart = cur, i
		}
	}
	return bestStart, best
}

// Point is a 2-D observation for clustering and fitting.
type Point struct{ X, Y float64 }

// KMeansResult holds cluster assignments and centroids.
type KMeansResult struct {
	// Assign maps each input point index to its cluster id [0, K).
	Assign []int
	// Centroids are the final cluster centers.
	Centroids []Point
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeans clusters the points into k clusters using k-means++ seeding
// (Arthur & Vassilvitskii 2007) followed by Lloyd iterations, matching
// the heuristic the paper uses to group regions by their 2020→2022
// carbon trend. The run is deterministic for a given seed.
func KMeans(points []Point, k int, seed uint64) (KMeansResult, error) {
	if k <= 0 {
		return KMeansResult{}, fmt.Errorf("stats: k-means with k=%d", k)
	}
	if len(points) < k {
		return KMeansResult{}, fmt.Errorf("stats: k-means with %d points < k=%d", len(points), k)
	}
	src := rng.New(seed)

	// k-means++ seeding: first centroid uniform, then each next
	// centroid sampled with probability proportional to squared
	// distance from the nearest existing centroid.
	centroids := make([]Point, 0, k)
	centroids = append(centroids, points[src.Intn(len(points))])
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d2[i] = nearestDist2(p, centroids)
			total += d2[i]
		}
		if total == 0 {
			// All points coincide with existing centroids; any choice
			// works.
			centroids = append(centroids, points[src.Intn(len(points))])
			continue
		}
		centroids = append(centroids, points[src.Pick(d2)])
	}

	assign := make([]int, len(points))
	const maxIter = 200
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := dist2(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		var sx, sy = make([]float64, k), make([]float64, k)
		counts := make([]int, k)
		for i, p := range points {
			c := assign[i]
			sx[c] += p.X
			sy[c] += p.Y
			counts[c]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := nearestDist2(p, centroids); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = points[far]
				continue
			}
			centroids[c] = Point{sx[c] / float64(counts[c]), sy[c] / float64(counts[c])}
		}
	}
	return KMeansResult{Assign: assign, Centroids: centroids, Iterations: iter}, nil
}

func dist2(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

func nearestDist2(p Point, cs []Point) float64 {
	best := math.Inf(1)
	for _, c := range cs {
		if d := dist2(p, c); d < best {
			best = d
		}
	}
	return best
}

// LinearFit returns the least-squares slope and intercept of y against
// x. It panics if the slices differ in length or have fewer than two
// points.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length series of >= 2 points")
	}
	mx, my := Mean(x), Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}
