package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
)

// fullLab is the complete 123-region, 3-year dataset; generated once
// and shared by the headline-calibration tests.
var (
	fullOnce sync.Once
	fullLab  *Lab
)

func full(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("full lab skipped in -short mode")
	}
	fullOnce.Do(func() {
		var err error
		fullLab, err = NewLab(Options{Sim: simgrid.Config{Seed: 1}})
		if err != nil {
			panic(err)
		}
	})
	return fullLab
}

// miniLab is a small dataset (12 regions, ~6 weeks of arrivals) used
// to exercise every experiment path quickly.
var (
	miniOnce sync.Once
	miniLab  *Lab
)

// miniLabSim is the mini lab's simulator configuration at a given
// seed, shared with the multi-seed integration test.
func miniLabSim(seed uint64) simgrid.Config {
	return simgrid.Config{Seed: seed, Hours: 8784 + 8760 + 8760}
}

func mini(t *testing.T) *Lab {
	t.Helper()
	miniOnce.Do(func() {
		codes := []string{"SE", "US-CA", "US-VA", "IN-WE", "HK", "DE", "FR",
			"AU-NSW", "BR-CS", "ZA", "CA-ON", "NL"}
		var regs []regions.Region
		for _, c := range codes {
			regs = append(regs, regions.MustByCode(c))
		}
		var err error
		miniLab, err = NewLab(Options{
			Sim:         miniLabSim(2),
			Regions:     regs,
			ArrivalSpan: 1000,
			Stride:      211,
		})
		if err != nil {
			panic(err)
		}
	})
	return miniLab
}

func TestNewLabDefaults(t *testing.T) {
	l := mini(t)
	if l.Set.Size() != 12 {
		t.Fatalf("mini lab has %d regions", l.Set.Size())
	}
	if l.GlobalMean <= 0 {
		t.Fatalf("global mean = %v", l.GlobalMean)
	}
	if len(l.Latency.Codes()) != 12 {
		t.Fatalf("latency matrix covers %d regions", len(l.Latency.Codes()))
	}
}

func TestGroupings(t *testing.T) {
	l := mini(t)
	gs := l.Groupings()
	if gs[0].Name != "Global" || len(gs[0].Codes) != 12 {
		t.Fatalf("first grouping = %+v", gs[0])
	}
	total := 0
	for _, g := range gs[1:] {
		total += len(g.Codes)
	}
	if total != 12 {
		t.Fatalf("continent groupings cover %d regions, want 12", total)
	}
}

func TestTemporalCellCaching(t *testing.T) {
	l := mini(t)
	a, err := l.TemporalCell("SE", 6, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.TemporalCell("SE", 6, 24)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cached cell differs")
	}
	if a.DeferSaving < 0 || a.InterruptSaving < 0 {
		t.Fatalf("negative savings: %+v", a)
	}
	if _, err := l.TemporalCell("NOPE", 6, 24); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestFillTemporalGrid(t *testing.T) {
	l := mini(t)
	if err := l.FillTemporalGrid(context.Background(), []int{1, 24}, []int{24}); err != nil {
		t.Fatal(err)
	}
	// All cells present without further computation.
	for _, code := range l.Set.Regions() {
		for _, length := range []int{1, 24} {
			if _, err := l.TemporalCell(code, length, 24); err != nil {
				t.Fatalf("cell %s/%d missing: %v", code, length, err)
			}
		}
	}
}

func TestAllExperimentsRunOnMiniLab(t *testing.T) {
	l := mini(t)
	for _, e := range Experiments() {
		tbl, err := e.Run(context.Background(), l)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if tbl.ID != e.ID {
			t.Errorf("%s produced table id %s", e.ID, tbl.ID)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", e.ID)
		}
		for _, r := range tbl.Rows {
			if len(r.Values) != len(tbl.Columns) {
				t.Errorf("%s row %s has %d values for %d columns", e.ID, r.Label, len(r.Values), len(tbl.Columns))
			}
		}
		// Tables must render and serialize.
		if s := tbl.String(); !strings.Contains(s, e.ID) {
			t.Errorf("%s String() lacks id", e.ID)
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			t.Errorf("%s CSV: %v", e.ID, err)
		}
	}
}

func TestWriteReport(t *testing.T) {
	l := mini(t)
	var buf bytes.Buffer
	if err := l.WriteReport(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "carbonshift experiment report") {
		t.Fatal("report missing title")
	}
	for _, e := range Experiments() {
		if !strings.Contains(s, "`"+e.ID+"`") {
			t.Errorf("report missing experiment %s", e.ID)
		}
	}
	// Long tables are truncated, not dumped wholesale.
	if strings.Count(s, "\n") > 2500 {
		t.Fatalf("report suspiciously long: %d lines", strings.Count(s, "\n"))
	}
}

func TestExperimentByID(t *testing.T) {
	e, err := ExperimentByID("fig5a")
	if err != nil || e.ID != "fig5a" {
		t.Fatalf("lookup = %+v, %v", e, err)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.run == nil || e.Title == "" || e.Figure == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tbl.AddRow("r1", 1, 2)
	if v, ok := tbl.Value("r1", "b"); !ok || v != 2 {
		t.Fatalf("Value = %v, %v", v, ok)
	}
	if _, ok := tbl.Value("r1", "nope"); ok {
		t.Fatal("unknown column found")
	}
	if _, ok := tbl.Value("nope", "a"); ok {
		t.Fatal("unknown row found")
	}
	if got := tbl.MustValue("r1", "a"); got != 1 {
		t.Fatalf("MustValue = %v", got)
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	tbl := &Table{ID: "x", Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tbl.AddRow("r", 1, 2)
}

func TestTableMustValuePanics(t *testing.T) {
	tbl := &Table{ID: "x", Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tbl.MustValue("r", "a")
}

// --- Headline calibration on the full dataset ---
// These encode the paper's key quantitative claims; tolerances admit
// the synthetic-trace substitution while pinning the shape of every
// result (see EXPERIMENTS.md).

func TestHeadlineIdealSpatial(t *testing.T) {
	l := full(t)
	tbl, err := l.Fig5a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pct := tbl.MustValue("Global", "reduction_pct")
	if pct < 90 || pct > 99 {
		t.Fatalf("ideal spatial reduction = %.1f%%, paper reports 96%%", pct)
	}
	asia := tbl.MustValue("Asia", "reduction_g")
	europe := tbl.MustValue("Europe", "reduction_g")
	if asia <= europe {
		t.Fatalf("Asia (%.0f) should gain more than Europe (%.0f)", asia, europe)
	}
}

func TestHeadlineCapacityConstrained(t *testing.T) {
	l := full(t)
	tbl, err := l.Fig5c(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	half := tbl.MustValue("idle_50%", "reduction_pct")
	if half < 40 || half > 60 {
		t.Fatalf("50%% idle reduction = %.1f%%, paper reports 51.5%%", half)
	}
	max := tbl.MustValue("idle_99%", "reduction_pct")
	if max < 90 {
		t.Fatalf("99%% idle reduction = %.1f%%, paper reports 95.68%%", max)
	}
	if zero := tbl.MustValue("idle_0%", "reduction_pct"); zero != 0 {
		t.Fatalf("0%% idle reduction = %.1f%%", zero)
	}
}

func TestHeadlineLatency(t *testing.T) {
	l := full(t)
	tbl, err := l.Fig6a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Reductions grow with the SLO, and capacity constraints always
	// cost something once migration is possible.
	prevInf := -1.0
	for _, r := range tbl.Rows {
		inf := r.Values[0]
		util := r.Values[1]
		if inf < prevInf-1e-9 {
			t.Fatalf("infinite-capacity reduction not monotone at %s", r.Label)
		}
		if util > inf+1e-9 {
			t.Fatalf("constrained beats unconstrained at %s", r.Label)
		}
		prevInf = inf
	}
	full250 := tbl.MustValue("slo_250ms", "pct_infinite_capacity")
	if full250 < 85 {
		t.Fatalf("250ms reduction = %.1f%%, paper reports 92.5%%", full250)
	}
}

func TestHeadlineOneVsInfMigration(t *testing.T) {
	l := full(t)
	tbl, err := l.Fig6b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		adv := r.Values[2]
		if adv < -1e-9 {
			t.Fatalf("%s: ∞-migration worse than 1-migration (%v)", r.Label, adv)
		}
		if adv > 12 {
			t.Fatalf("%s: ∞-migration advantage %v g, paper bounds it below 10 g", r.Label, adv)
		}
	}
}

func TestHeadlineTemporalShape(t *testing.T) {
	l := full(t)
	fig7, err := l.Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Deferral savings per unit fall with job length, in both slack
	// settings; the ideal 1h saving is large, the practical 168h
	// saving is nearly nothing.
	first := fig7.Rows[0]
	last := fig7.Rows[len(fig7.Rows)-1]
	if first.Values[0] <= last.Values[0] {
		t.Fatal("ideal deferral savings should fall with job length")
	}
	if first.Values[0] < 60 {
		t.Fatalf("1h ideal deferral saving = %.1f g, paper reports ~154 g", first.Values[0])
	}
	if last.Values[1] > 10 {
		t.Fatalf("168h practical deferral saving = %.1f g, paper reports ~3 g", last.Values[1])
	}

	fig8, err := l.Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := fig8.MustValue("1h", "one_year_slack"); v < -1e-6 || v > 1e-6 {
		t.Fatalf("1h interruption saving = %v, want 0 (hourly granularity)", v)
	}
	if fig8.MustValue("168h", "one_year_slack") <= fig8.MustValue("6h", "one_year_slack") {
		t.Fatal("ideal interruption savings should grow with job length")
	}
	// Practical setting peaks at 24h jobs (paper: 18.4 g).
	peak := fig8.MustValue("24h", "24h_slack")
	if peak <= fig8.MustValue("1h", "24h_slack") || peak <= fig8.MustValue("168h", "24h_slack") {
		t.Fatal("practical interruption savings should peak at 24h jobs")
	}
	if peak < 8 || peak > 35 {
		t.Fatalf("24h practical interruption saving = %.1f g, paper reports 18.4 g", peak)
	}
}

func TestHeadlineDistributions(t *testing.T) {
	l := full(t)
	tbl, err := l.Fig10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	equal := tbl.MustValue("Global", "equal")
	azure := tbl.MustValue("Global", "azure")
	google := tbl.MustValue("Global", "google")
	if equal < 70 || equal > 170 {
		t.Fatalf("equal-mix fleet saving = %.1f g, paper reports 135 g", equal)
	}
	if azure >= equal || google >= equal {
		t.Fatalf("cloud traces (%.0f, %.0f) must save less than the equal mix (%.0f)", azure, google, equal)
	}
	if oceania := tbl.MustValue("Oceania", "equal"); oceania <= tbl.MustValue("Asia", "equal") {
		t.Fatalf("Oceania (%.0f) should beat Asia (%.0f) on temporal savings", oceania, tbl.MustValue("Asia", "equal"))
	}
}

func TestHeadlineSlackSublinear(t *testing.T) {
	l := full(t)
	tbl, err := l.Fig10d(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s24 := tbl.MustValue("24h", "saving_g")
	s1y := tbl.MustValue("1y", "saving_g")
	if s1y <= s24 {
		t.Fatal("more slack must not reduce savings")
	}
	// 365x the slack must yield far less than 365x the savings.
	if ratio := s1y / s24; ratio > 10 {
		t.Fatalf("slack scaling ratio = %.1fx, paper reports ~3.1x (sub-linear)", ratio)
	}
	prev := 0.0
	for _, r := range tbl.Rows {
		if r.Values[0] < prev-1e-9 {
			t.Fatalf("savings fell at %s", r.Label)
		}
		prev = r.Values[0]
	}
}

func TestHeadlineMixedWorkloadLinear(t *testing.T) {
	l := full(t)
	tbl, err := l.Fig11a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	zero := tbl.MustValue("migratable_0%", "reduction_g")
	fullRed := tbl.MustValue("migratable_100%", "reduction_g")
	halfRed := tbl.MustValue("migratable_50%", "reduction_g")
	if zero != 0 {
		t.Fatalf("0%% migratable reduction = %v", zero)
	}
	if diff := halfRed - fullRed/2; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("mixed-workload reductions not linear: half=%v full=%v", halfRed, fullRed)
	}
}

func TestHeadlineSpatialDominatesTemporal(t *testing.T) {
	l := full(t)
	tbl, err := l.Fig12(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	se := tbl.MustValue("SE", "net_1y")
	if se < 200 {
		t.Fatalf("Sweden net saving = %.1f g, expected dominant spatial gains", se)
	}
	for _, dest := range []string{"US-UT", "IN-WE"} {
		if net, ok := tbl.Value(dest, "net_1y"); ok && net >= 0 {
			t.Fatalf("%s net saving = %.1f g, expected negative (dirtier than average origin)", dest, net)
		}
	}
	// Temporal savings never flip the sign of a strongly negative
	// spatial term (the paper's "spatial dominates" takeaway).
	for _, r := range tbl.Rows {
		spatial := r.Values[0]
		net := r.Values[2]
		if spatial < -100 && net > 0 {
			t.Fatalf("%s: temporal flipped a big negative spatial term", r.Label)
		}
	}
}
