// Package core is the paper's analysis engine: it owns the simulated
// dataset (traces, latency matrix, region catalog) and implements one
// experiment per figure of the evaluation, each reproducing the rows
// or series the paper reports.
//
// The entry point is Lab. A Lab generates the 123-region, 3-year trace
// set once, derives the shared artifacts (per-year views, the latency
// matrix, the global mean used as the normalization constant), and
// caches the expensive temporal sweeps so the Figure 7–10 family
// shares work. All experiments are deterministic under the Lab's seed.
package core

import (
	"context"
	"fmt"
	"sync"

	"carbonshift/internal/engine"
	"carbonshift/internal/latency"
	"carbonshift/internal/regions"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/temporal"
	"carbonshift/internal/trace"
)

// Options configures a Lab.
type Options struct {
	// Sim configures the grid simulator (seed, period, extra
	// renewables). Zero values take simgrid defaults.
	Sim simgrid.Config
	// Regions restricts the dataset; nil means the full 123-region
	// catalog.
	Regions []regions.Region
	// ArrivalSpan is the number of distinct hourly job start times the
	// sweeps cover ("all 8760 potential start times over a year").
	// Zero means 8760, or as many as the trace supports if shorter.
	ArrivalSpan int
	// Stride subsamples arrival lists in experiments that evaluate
	// arrivals one by one (the what-if scenarios); the closed-form
	// sweeps always use every arrival. Zero means a default that keeps
	// the full run under a minute.
	Stride int
	// Workers bounds the experiment engine's concurrency: how many
	// independent (region × policy × scenario) cells run at once, both
	// during trace generation and inside each experiment. Zero means
	// one worker per CPU (engine.DefaultWorkers); 1 forces the serial
	// reference path. Results are byte-identical for every setting.
	Workers int
}

// Lab owns the dataset and caches shared computations.
type Lab struct {
	opts Options
	// Regions is the catalog subset in use, sorted by code.
	Regions []regions.Region
	// Set is the full-period trace set.
	Set *trace.Set
	// Latency is the all-pairs RTT matrix over the regions.
	Latency *latency.Matrix
	// GlobalMean is the dataset's mean of per-region mean intensities —
	// the paper's 368.39 g·CO₂eq/kWh normalization constant.
	GlobalMean float64

	arrivalSpan int
	stride      int
	workers     int

	mu    sync.Mutex
	cells map[cellKey]temporal.MeanSavings
	years map[int]*trace.Set
}

type cellKey struct {
	region string
	length int
	slack  int
}

// NewLab generates the dataset and prepares shared artifacts.
func NewLab(opts Options) (*Lab, error) {
	return NewLabCtx(context.Background(), opts)
}

// NewLabCtx is NewLab with a cancellation context: trace generation
// fans out across opts.Workers goroutines through the process-level
// simgrid cache, and cancelling ctx aborts it.
func NewLabCtx(ctx context.Context, opts Options) (*Lab, error) {
	regs := opts.Regions
	if regs == nil {
		regs = regions.All()
	}
	set, err := simgrid.GenerateCached(ctx, regs, opts.Sim, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: generating traces: %w", err)
	}
	span := opts.ArrivalSpan
	if span <= 0 {
		span = 8760
	}
	stride := opts.Stride
	if stride <= 0 {
		stride = 293 // ~30 arrival samples per year, co-prime with 24 and 168
	}
	l := &Lab{
		opts:        opts,
		Regions:     regs,
		Set:         set,
		Latency:     latency.NewMatrix(regs),
		GlobalMean:  set.GlobalMean(),
		arrivalSpan: span,
		stride:      stride,
		workers:     opts.Workers,
		cells:       make(map[cellKey]temporal.MeanSavings),
		years:       make(map[int]*trace.Set),
	}
	return l, nil
}

// Year returns (and caches) the trace set restricted to one calendar
// year.
func (l *Lab) Year(y int) (*trace.Set, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.years[y]; ok {
		return s, nil
	}
	s, err := l.Set.Year(y)
	if err != nil {
		return nil, err
	}
	l.years[y] = s
	return s, nil
}

// Groupings returns the paper's geographic groupings in display order:
// "Global" first, then the continents present in the dataset.
func (l *Lab) Groupings() []Grouping {
	out := []Grouping{{Name: "Global", Codes: l.Set.Regions()}}
	for _, c := range regions.Continents() {
		var codes []string
		for _, r := range l.Regions {
			if r.Continent == c {
				codes = append(codes, r.Code)
			}
		}
		if len(codes) > 0 {
			out = append(out, Grouping{Name: c.String(), Codes: codes})
		}
	}
	return out
}

// Grouping is a named set of region codes.
type Grouping struct {
	Name  string
	Codes []string
}

// arrivals returns the number of hourly start times temporal sweeps
// may use for a job of the given horizon, clamped so the final horizon
// fits the trace.
func (l *Lab) arrivals(horizon int) int {
	n := l.arrivalSpan
	if max := l.Set.Len() - horizon; n > max {
		n = max
	}
	return n
}

// strideArrivals returns the subsampled arrival list for per-arrival
// scenario evaluations with the given horizon.
func (l *Lab) strideArrivals(horizon int) []int {
	limit := l.arrivals(horizon)
	var out []int
	for a := 0; a < limit; a += l.stride {
		out = append(out, a)
	}
	return out
}

// TemporalCell returns the mean per-job savings of the temporal
// policies for one (region, length, slack) combination, averaged over
// the full arrival span. Results are cached.
func (l *Lab) TemporalCell(region string, length, slack int) (temporal.MeanSavings, error) {
	key := cellKey{region, length, slack}
	l.mu.Lock()
	if ms, ok := l.cells[key]; ok {
		l.mu.Unlock()
		return ms, nil
	}
	l.mu.Unlock()

	tr, ok := l.Set.Get(region)
	if !ok {
		return temporal.MeanSavings{}, fmt.Errorf("core: unknown region %q", region)
	}
	arrivals := l.arrivals(length + slack)
	if arrivals < 1 {
		return temporal.MeanSavings{}, fmt.Errorf("core: horizon %d+%d leaves no arrivals in %d-hour trace",
			length, slack, l.Set.Len())
	}
	costs, err := temporal.Sweep(tr.CI, length, slack, arrivals)
	if err != nil {
		return temporal.MeanSavings{}, err
	}
	ms := costs.Reduce()

	l.mu.Lock()
	l.cells[key] = ms
	l.mu.Unlock()
	return ms, nil
}

// FillTemporalGrid computes all (region, length, slack) cells through
// the experiment engine, warming the cache for the Figure 7–10 family
// in one pass.
func (l *Lab) FillTemporalGrid(ctx context.Context, lengths, slacks []int) error {
	var cells []cellKey
	for _, code := range l.Set.Regions() {
		for _, slack := range slacks {
			for _, length := range lengths {
				cells = append(cells, cellKey{code, length, slack})
			}
		}
	}
	return l.warmCells(ctx, cells)
}

// warmCells fans the given temporal cells across the lab's worker pool
// so later serial reductions over them are pure cache hits. Cell values
// are independent of evaluation order, so the warmed cache — and every
// table assembled from it — is byte-identical for any worker count.
func (l *Lab) warmCells(ctx context.Context, cells []cellKey) error {
	return engine.ForEach(ctx, l.workers, len(cells), func(_ context.Context, i int) error {
		c := cells[i]
		if _, err := l.TemporalCell(c.region, c.length, c.slack); err != nil {
			return fmt.Errorf("core: sweep %s L=%d s=%d: %w", c.region, c.length, c.slack, err)
		}
		return nil
	})
}

// MeanOver returns the mean over the listed regions of f(region).
func MeanOver(codes []string, f func(code string) float64) float64 {
	if len(codes) == 0 {
		return 0
	}
	var s float64
	for _, c := range codes {
		s += f(c)
	}
	return s / float64(len(codes))
}
