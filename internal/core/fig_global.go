package core

import (
	"context"
	"fmt"
	"sort"

	"carbonshift/internal/engine"
	"carbonshift/internal/fft"
	"carbonshift/internal/regions"
	"carbonshift/internal/stats"
)

// exampleRegions are the three grids of Figure 1: low-mean/high-var
// California, very low and stable Ontario, and high and flat Mumbai.
var exampleRegions = []string{"US-CA", "CA-ON", "IN-WE"}

// Fig1 reproduces Figure 1: example carbon traces (a) and generation
// mixes (b) for California, Ontario, and Mumbai. Rows carry the trace
// statistics plus the full mix, one column per source.
func (l *Lab) Fig1(context.Context) (*Table, error) {
	t := &Table{
		ID:    "fig1",
		Title: "Example carbon traces and generation mixes (California, Ontario, Mumbai)",
		Columns: []string{"mean", "min", "max", "daily_cv",
			"coal", "gas", "oil", "biomass", "geothermal", "solar", "hydro", "wind", "nuclear"},
	}
	loInst, hiInst := 0.0, 0.0
	tempRatio := 0.0
	for _, code := range l.pickExamples() {
		tr, ok := l.Set.Get(code)
		if !ok {
			return nil, fmt.Errorf("core: example region %q missing", code)
		}
		reg, ok := regions.ByCode(code)
		if !ok {
			return nil, fmt.Errorf("core: example region %q not in catalog", code)
		}
		mn, mx := stats.MinMax(tr.CI)
		vals := []float64{tr.Mean(), mn, mx, stats.DailyCV(tr.CI)}
		for s := 0; s < regions.NumSources; s++ {
			vals = append(vals, reg.Mix[regions.Source(s)])
		}
		t.AddRow(code, vals...)
		if loInst == 0 || mn < loInst {
			loInst = mn
		}
		if mx > hiInst {
			hiInst = mx
		}
		if mn > 0 && mx/mn > tempRatio {
			tempRatio = mx / mn
		}
	}
	if loInst > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"instantaneous spatial spread across examples: %.0fx (paper: up to 43x between Ontario and Mumbai); largest temporal swing within one region: %.1fx (paper: 2x over a day in California)",
			hiInst/loInst, tempRatio))
	}
	return t, nil
}

func (l *Lab) pickExamples() []string {
	var out []string
	for _, code := range exampleRegions {
		if _, ok := l.Set.Get(code); ok {
			out = append(out, code)
		}
	}
	if len(out) == 0 {
		out = l.Set.Regions()
		if len(out) > 3 {
			out = out[:3]
		}
	}
	return out
}

// Fig3a reproduces Figure 3(a): each region's 2022 mean carbon
// intensity and average daily coefficient of variation, plus the
// quadrant census around the dataset averages.
func (l *Lab) Fig3a(ctx context.Context) (*Table, error) {
	year, err := l.latestFullYear()
	if err != nil {
		return nil, err
	}
	set, err := l.Year(year)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3a",
		Title:   fmt.Sprintf("Mean carbon intensity vs average daily CV, %d", year),
		Columns: []string{"mean_ci", "daily_cv"},
	}
	codes := set.Regions()
	type cell struct{ m, cv float64 }
	rows, err := engine.Map(ctx, l.workers, len(codes), func(_ context.Context, i int) (cell, error) {
		tr := set.MustGet(codes[i])
		return cell{tr.Mean(), stats.DailyCV(tr.CI)}, nil
	})
	if err != nil {
		return nil, err
	}
	var means, cvs []float64
	for i, code := range codes {
		t.AddRow(code, rows[i].m, rows[i].cv)
		means = append(means, rows[i].m)
		cvs = append(cvs, rows[i].cv)
	}
	meanCI, meanCV := stats.Mean(means), stats.Mean(cvs)
	var q [4]int // [low-low, low-high, high-low, high-high] (CI, CV)
	lowVar := 0
	above400 := 0
	for i := range means {
		hiCI, hiCV := means[i] > meanCI, cvs[i] > meanCV
		switch {
		case !hiCI && !hiCV:
			q[0]++
		case !hiCI && hiCV:
			q[1]++
		case hiCI && !hiCV:
			q[2]++
		default:
			q[3]++
		}
		if cvs[i] < 0.1 {
			lowVar++
		}
		if means[i] > 400 {
			above400++
		}
	}
	n := len(means)
	t.Notes = append(t.Notes,
		fmt.Sprintf("dataset mean CI %.1f g/kWh (paper: 368.39), mean daily CV %.3f", meanCI, meanCV),
		fmt.Sprintf("quadrants (CI x CV): low-low %d, low-high %d, high-low %d, high-high %d", q[0], q[1], q[2], q[3]),
		fmt.Sprintf("%d/%d regions (%.0f%%) above 400 g (paper: ~46%%)", above400, n, 100*float64(above400)/float64(n)),
		fmt.Sprintf("%d/%d regions (%.0f%%) with daily CV < 0.1 (paper: >70%%)", lowVar, n, 100*float64(lowVar)/float64(n)),
	)
	return t, nil
}

// Fig3b reproduces Figure 3(b): per-region change in mean CI and daily
// CV between the first and last study years, clustered with k-means++
// (k=3) as in the paper.
func (l *Lab) Fig3b(ctx context.Context) (*Table, error) {
	firstYear, lastYear, err := l.yearRange()
	if err != nil {
		return nil, err
	}
	first, err := l.Year(firstYear)
	if err != nil {
		return nil, err
	}
	last, err := l.Year(lastYear)
	if err != nil {
		return nil, err
	}
	codes := l.Set.Regions()
	points, err := engine.Map(ctx, l.workers, len(codes), func(_ context.Context, i int) (stats.Point, error) {
		f, la := first.MustGet(codes[i]), last.MustGet(codes[i])
		return stats.Point{
			X: la.Mean() - f.Mean(),
			Y: stats.DailyCV(la.CI) - stats.DailyCV(f.CI),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	km, err := stats.KMeans(points, 3, l.opts.Sim.Seed+1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3b",
		Title:   fmt.Sprintf("Change in mean CI and daily CV, %d to %d (k-means++ k=3)", firstYear, lastYear),
		Columns: []string{"delta_mean_ci", "delta_daily_cv", "cluster"},
	}
	greener, browner := 0, 0
	for i, code := range codes {
		t.AddRow(code, points[i].X, points[i].Y, float64(km.Assign[i]))
		switch {
		case points[i].X < -25:
			greener++
		case points[i].X > 25:
			browner++
		}
	}
	n := len(codes)
	flat := n - greener - browner
	t.Notes = append(t.Notes,
		fmt.Sprintf("greener (ΔCI < -25 g): %d (%.0f%%, paper ~23%%); browner (ΔCI > +25 g): %d (%.0f%%, paper ~20%%); unchanged: %d (%.0f%%, paper ~57%%)",
			greener, 100*float64(greener)/float64(n),
			browner, 100*float64(browner)/float64(n),
			flat, 100*float64(flat)/float64(n)),
	)
	return t, nil
}

// Fig4 reproduces Figure 4: periodicity scores at the 24-hour and
// 168-hour periods for the regions hosting hyperscale datacenters,
// ordered by ascending mean carbon intensity.
func (l *Lab) Fig4(ctx context.Context) (*Table, error) {
	year, err := l.latestFullYear()
	if err != nil {
		return nil, err
	}
	set, err := l.Year(year)
	if err != nil {
		return nil, err
	}
	var codes []string
	for _, r := range l.Regions {
		if r.Providers.Hyperscale() {
			codes = append(codes, r.Code)
		}
	}
	if len(codes) == 0 {
		codes = l.Set.Regions()
	}
	if len(codes) > 40 {
		codes = codes[:40]
	}
	sort.Slice(codes, func(a, b int) bool {
		return set.MustGet(codes[a]).Mean() < set.MustGet(codes[b]).Mean()
	})

	t := &Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("Periodicity scores for %d datacenter regions, %d (ordered by mean CI)", len(codes), year),
		Columns: []string{"mean_ci", "score_24h", "score_168h"},
	}
	// The two Bluestein FFTs per region dominate this figure; fan them
	// across the pool, one region per cell.
	type cell struct{ mean, s24, s168 float64 }
	rows, err := engine.Map(ctx, l.workers, len(codes), func(_ context.Context, i int) (cell, error) {
		tr := set.MustGet(codes[i])
		return cell{tr.Mean(), fft.ScoreAt(tr.CI, 24), fft.ScoreAt(tr.CI, 168)}, nil
	})
	if err != nil {
		return nil, err
	}
	daily := 0
	for i, code := range codes {
		t.AddRow(code, rows[i].mean, rows[i].s24, rows[i].s168)
		if rows[i].s24 >= 0.5 {
			daily++
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d/%d regions show a 24h period with score >= 0.5 (paper: 35/40)", daily, len(codes)))
	return t, nil
}

// latestFullYear returns the last calendar year fully covered by the
// trace set.
func (l *Lab) latestFullYear() (int, error) {
	_, last, err := l.yearRange()
	return last, err
}

// yearRange returns the first and last fully covered calendar years.
func (l *Lab) yearRange() (int, int, error) {
	start := l.Set.Start()
	first := start.Year()
	if start.Month() != 1 || start.Day() != 1 || start.Hour() != 0 {
		first++
	}
	last := first
	for y := first; ; y++ {
		if _, err := l.Set.Year(y); err != nil {
			break
		}
		last = y
	}
	if _, err := l.Set.Year(first); err != nil {
		return 0, 0, fmt.Errorf("core: trace covers no full calendar year")
	}
	return first, last, nil
}
