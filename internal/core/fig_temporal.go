package core

import (
	"context"
	"fmt"

	"carbonshift/internal/workload"
)

// figSlackIdeal and figSlackPractical are the two slack settings the
// Figure 7–9 family contrasts: a one-year slack (clairvoyant upper
// bound) and the 24-hour slack the paper calls realistic.
const (
	figSlackIdeal     = workload.Slack1Y
	figSlackPractical = workload.Slack24H
)

// lengthsFor clamps the Table 1 job lengths to what the lab's trace
// can sweep (small test labs use short traces).
func (l *Lab) lengthsFor(slack int) []int {
	var out []int
	for _, length := range workload.BatchLengths {
		if l.arrivals(length+slack) >= 1 {
			out = append(out, length)
		}
	}
	return out
}

// slackFor clamps a slack to the lab's trace.
func (l *Lab) slackFor(slack int) int {
	for slack > 0 && l.arrivals(1+slack) < 1 {
		slack /= 2
	}
	return slack
}

// Fig7 reproduces Figure 7: carbon reduction from deferrability,
// normalized by job length, for one-year and 24-hour slack.
func (l *Lab) Fig7(ctx context.Context) (*Table, error) {
	return l.perLengthTable(ctx, "fig7",
		"Deferrability savings per unit job length (g·CO₂eq per job-hour)",
		func(ms meanSavingsPerUnit) (float64, float64) {
			return ms.deferIdeal, ms.deferPractical
		},
		"paper: 1h jobs save ~154 g/h and 168h jobs ~70 g/h with one-year slack; 57 -> 3 g/h with 24h slack")
}

// Fig8 reproduces Figure 8: the additional reduction from
// interruptibility on top of deferrability, per unit job length.
func (l *Lab) Fig8(ctx context.Context) (*Table, error) {
	return l.perLengthTable(ctx, "fig8",
		"Additional interruptibility savings per unit job length (g·CO₂eq per job-hour)",
		func(ms meanSavingsPerUnit) (float64, float64) {
			return ms.intrIdeal, ms.intrPractical
		},
		"paper: grows 0 -> 43 g/h with job length under one-year slack; peaks ~18 g at 24h jobs under 24h slack")
}

// Fig9 reproduces Figure 9: the combined deferral+interruption savings
// as a percentage of the global average intensity.
func (l *Lab) Fig9(ctx context.Context) (*Table, error) {
	t, err := l.perLengthTable(ctx, "fig9",
		"Combined temporal savings relative to global average intensity (%)",
		func(ms meanSavingsPerUnit) (float64, float64) {
			return 100 * (ms.deferIdeal + ms.intrIdeal) / l.GlobalMean,
				100 * (ms.deferPractical + ms.intrPractical) / l.GlobalMean
		},
		"paper: a 168h job saves 19% from deferrability plus ~11% from interruptibility ideally, but only ~3% with 24h slack")
	return t, err
}

// meanSavingsPerUnit carries global per-job-hour savings for one job
// length under the two slack settings.
type meanSavingsPerUnit struct {
	deferIdeal, intrIdeal         float64
	deferPractical, intrPractical float64
}

func (l *Lab) perLengthTable(ctx context.Context, id, title string, pick func(meanSavingsPerUnit) (float64, float64), note string) (*Table, error) {
	ideal := l.slackFor(figSlackIdeal)
	practical := l.slackFor(figSlackPractical)
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"one_year_slack", "24h_slack"},
	}
	// Fan every (region, length, slack) cell across the worker pool,
	// then assemble the table from pure cache hits in a fixed order.
	if err := l.FillTemporalGrid(ctx, l.lengthsFor(ideal), []int{ideal, practical}); err != nil {
		return nil, err
	}
	codes := l.Set.Regions()
	for _, length := range l.lengthsFor(ideal) {
		var ms meanSavingsPerUnit
		for _, code := range codes {
			ci, err := l.TemporalCell(code, length, ideal)
			if err != nil {
				return nil, err
			}
			cp, err := l.TemporalCell(code, length, practical)
			if err != nil {
				return nil, err
			}
			fl := float64(length)
			ms.deferIdeal += ci.DeferSaving / fl
			ms.intrIdeal += ci.InterruptSaving / fl
			ms.deferPractical += cp.DeferSaving / fl
			ms.intrPractical += cp.InterruptSaving / fl
		}
		n := float64(len(codes))
		ms.deferIdeal /= n
		ms.intrIdeal /= n
		ms.deferPractical /= n
		ms.intrPractical /= n
		a, b := pick(ms)
		t.AddRow(fmt.Sprintf("%dh", length), a, b)
	}
	t.Notes = append(t.Notes, note)
	return t, nil
}

// Fig10 reproduces Figure 10(a–c): fleet-level temporal savings under
// the equal, Azure, and Google job-length weightings with one-year
// slack, by geographic grouping.
func (l *Lab) Fig10(ctx context.Context) (*Table, error) {
	ideal := l.slackFor(figSlackIdeal)
	dists := []workload.Distribution{workload.DistEqual, workload.DistAzure, workload.DistGoogle}
	t := &Table{
		ID:      "fig10",
		Title:   "Fleet temporal savings by job-length distribution, one-year slack (g·CO₂eq per job-hour)",
		Columns: []string{"equal", "azure", "google"},
	}
	lengths := l.lengthsFor(ideal)
	if err := l.FillTemporalGrid(ctx, lengths, []int{ideal}); err != nil {
		return nil, err
	}
	// perUnit[code][length] = combined saving per job-hour.
	perUnit := make(map[string]map[int]float64, l.Set.Size())
	for _, code := range l.Set.Regions() {
		perUnit[code] = make(map[int]float64, len(lengths))
		for _, length := range lengths {
			ms, err := l.TemporalCell(code, length, ideal)
			if err != nil {
				return nil, err
			}
			perUnit[code][length] = (ms.DeferSaving + ms.InterruptSaving) / float64(length)
		}
	}
	for _, g := range l.Groupings() {
		vals := make([]float64, len(dists))
		for i, d := range dists {
			vals[i] = MeanOver(g.Codes, func(code string) float64 {
				return d.WeightedMean(perUnit[code])
			})
		}
		t.AddRow(g.Name, vals...)
	}
	t.Notes = append(t.Notes,
		"paper: global 135 g (equal), 100 g (Azure), 112 g (Google); cloud traces save less because long jobs dominate their resource-hours")
	return t, nil
}

// Fig10d reproduces Figure 10(d): global fleet savings as slack sweeps
// from 24 hours to one year (equal job-length weighting).
func (l *Lab) Fig10d(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "fig10d",
		Title:   "Fleet temporal savings vs slack (equal weighting, g·CO₂eq per job-hour)",
		Columns: []string{"saving_g", "saving_pct"},
	}
	labels := map[int]string{
		workload.Slack24H: "24h",
		workload.Slack7D:  "7d",
		workload.Slack24D: "24d",
		workload.Slack30D: "30d",
		workload.Slack1Y:  "1y",
	}
	codes := l.Set.Regions()
	// Collect the distinct clamped slacks once, warm every cell in one
	// engine pass, then reduce serially in presentation order.
	type slackRow struct{ raw, clamped int }
	var rows []slackRow
	seen := make(map[int]bool)
	for _, rawSlack := range workload.Slacks {
		slack := l.slackFor(rawSlack)
		if seen[slack] {
			continue // tiny test labs may clamp several slacks together
		}
		seen[slack] = true
		rows = append(rows, slackRow{rawSlack, slack})
	}
	var cells []cellKey
	for _, code := range codes {
		for _, r := range rows {
			for _, length := range l.lengthsFor(r.clamped) {
				cells = append(cells, cellKey{code, length, r.clamped})
			}
		}
	}
	if err := l.warmCells(ctx, cells); err != nil {
		return nil, err
	}
	for _, r := range rows {
		rawSlack, slack := r.raw, r.clamped
		lengths := l.lengthsFor(slack)
		saving := MeanOver(codes, func(code string) float64 {
			vals := make(map[int]float64, len(lengths))
			for _, length := range lengths {
				ms, err := l.TemporalCell(code, length, slack)
				if err != nil {
					return 0
				}
				vals[length] = (ms.DeferSaving + ms.InterruptSaving) / float64(length)
			}
			return workload.DistEqual.WeightedMean(vals)
		})
		label := labels[rawSlack]
		if slack != rawSlack {
			label = fmt.Sprintf("%dh", slack)
		}
		t.AddRow(label, saving, 100*saving/l.GlobalMean)
	}
	t.Notes = append(t.Notes,
		"paper: 31 g at 24h slack to 127 g at one year — 365x more slack buys only ~3.1x more savings (sub-linear), with little gain beyond 7 days")
	return t, nil
}
