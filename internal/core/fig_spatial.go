package core

import (
	"context"
	"fmt"

	"carbonshift/internal/engine"
	"carbonshift/internal/spatial"
	"carbonshift/internal/stats"
)

// Fig5a reproduces Figure 5(a): spatial-migration carbon reductions
// under infinite capacity, by geographic grouping. Every job migrates
// to the globally greenest region, so a grouping's reduction is its
// mean intensity minus the global minimum.
func (l *Lab) Fig5a(context.Context) (*Table, error) {
	dest, destMean, err := spatial.LowestMeanRegion(l.Set, l.Set.Regions())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5a",
		Title:   "Spatial shifting with infinite capacity, by geographic grouping",
		Columns: []string{"reduction_g", "reduction_pct"},
	}
	for _, g := range l.Groupings() {
		red := MeanOver(g.Codes, func(code string) float64 {
			return l.Set.MustGet(code).Mean() - destMean
		})
		t.AddRow(g.Name, red, 100*red/l.GlobalMean)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"all jobs migrate to %s (%.1f g/kWh); paper: Sweden at ~16 g, global reduction 352 g (96%%)",
		dest, destMean))
	return t, nil
}

// Fig5b reproduces Figure 5(b): spatial reductions when every region
// has identical capacity and 50% of it is idle, using the greedy
// dirtiest-to-cleanest assignment.
func (l *Lab) Fig5b(context.Context) (*Table, error) {
	nodes, err := spatial.UniformNodes(l.Set, 0.5)
	if err != nil {
		return nil, err
	}
	a, err := spatial.AssignCapacity(nodes, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5b",
		Title:   "Spatial shifting with 50% idle capacity per region, by geographic grouping",
		Columns: []string{"reduction_g", "reduction_pct"},
	}
	for _, g := range l.Groupings() {
		red := MeanOver(g.Codes, func(code string) float64 {
			return l.Set.MustGet(code).Mean() - a.AchievedCI[code]
		})
		t.AddRow(g.Name, red, 100*red/l.GlobalMean)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"system emission rate %.1f -> %.1f g/kWh (paper: 190 g reduction, 52%% of global average)",
		a.BaselineRate, a.EmissionRate))
	return t, nil
}

// Fig5c reproduces Figure 5(c): global average reduction as idle
// capacity sweeps from 0 to 99%.
func (l *Lab) Fig5c(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "fig5c",
		Title:   "Global reduction vs idle capacity",
		Columns: []string{"emission_rate_g", "reduction_pct"},
	}
	idles := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
	// One greedy capacity assignment per idle level, each an
	// independent engine cell.
	rates, err := engine.Map(ctx, l.workers, len(idles), func(_ context.Context, i int) (float64, error) {
		idle := idles[i]
		nodes, err := spatial.UniformNodes(l.Set, idle)
		if err != nil {
			return 0, err
		}
		if idle == 0 {
			return l.GlobalMean, nil // no capacity to move anything
		}
		a, err := spatial.AssignCapacity(nodes, nil)
		if err != nil {
			return 0, err
		}
		return a.EmissionRate, nil
	})
	if err != nil {
		return nil, err
	}
	for i, idle := range idles {
		t.AddRow(fmt.Sprintf("idle_%.0f%%", idle*100), rates[i], 100*(l.GlobalMean-rates[i])/l.GlobalMean)
	}
	t.Notes = append(t.Notes,
		"paper: 50% idle -> 51.5% reduction; 99% idle -> 95.68% reduction; ~1% reduction per 1% idle capacity")
	return t, nil
}

// Fig6a reproduces Figure 6(a): global average reduction under a
// latency SLO, for infinite capacity and for 50% utilization.
func (l *Lab) Fig6a(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "fig6a",
		Title:   "Reduction vs latency SLO (infinite capacity and 50% utilization)",
		Columns: []string{"pct_infinite_capacity", "pct_50_util"},
	}
	slos := []float64{0, 10, 25, 50, 100, 150, 200, 250}
	type cell struct{ infPct, utilPct float64 }
	rows, err := engine.Map(ctx, l.workers, len(slos), func(_ context.Context, i int) (cell, error) {
		slo := slos[i]
		// Infinite capacity: each origin reaches the cleanest region
		// within the SLO.
		reach := make(map[string]map[string]bool)
		for _, code := range l.Set.Regions() {
			within, err := l.Latency.Within(code, slo)
			if err != nil {
				return cell{}, err
			}
			set := make(map[string]bool, len(within))
			for _, c := range within {
				set[c] = true
			}
			reach[code] = set
		}
		infRed := MeanOver(l.Set.Regions(), func(code string) float64 {
			within := reach[code]
			best := l.Set.MustGet(code).Mean()
			for dst := range within {
				if m := l.Set.MustGet(dst).Mean(); m < best {
					best = m
				}
			}
			return l.Set.MustGet(code).Mean() - best
		})

		// 50% utilization: greedy assignment restricted to reachable
		// destinations.
		nodes, err := spatial.UniformNodes(l.Set, 0.5)
		if err != nil {
			return cell{}, err
		}
		a, err := spatial.AssignCapacity(nodes, func(from, to string) bool {
			return reach[from][to]
		})
		if err != nil {
			return cell{}, err
		}
		return cell{
			infPct:  100 * infRed / l.GlobalMean,
			utilPct: 100 * a.Reduction() / l.GlobalMean,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, slo := range slos {
		t.AddRow(fmt.Sprintf("slo_%.0fms", slo), rows[i].infPct, rows[i].utilPct)
	}
	t.Notes = append(t.Notes,
		"paper: at 250 ms every region reaches the greenest region (92.5% with infinite capacity, 45.7% at 50% utilization); at 50 ms, 31%")
	return t, nil
}

// Fig6b reproduces Figure 6(b): one-time migration vs clairvoyant
// ∞-migration, constrained to each geographic grouping. The gap bounds
// the value of sophisticated region-hopping policies.
func (l *Lab) Fig6b(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "fig6b",
		Title:   "1-migration vs ∞-migration within geographic groupings",
		Columns: []string{"one_migration_g", "inf_migration_g", "advantage_g"},
	}
	var groups []Grouping
	for _, g := range l.Groupings() {
		if g.Name == "Global" {
			continue // the paper's experiment stays within groupings
		}
		groups = append(groups, g)
	}
	// The ∞-migration envelope scan per grouping is the heavy part;
	// one grouping per cell.
	type cell struct{ oneRed, infRed float64 }
	rows, err := engine.Map(ctx, l.workers, len(groups), func(_ context.Context, i int) (cell, error) {
		g := groups[i]
		_, destMean, err := spatial.LowestMeanRegion(l.Set, g.Codes)
		if err != nil {
			return cell{}, err
		}
		min, err := spatial.MinSeries(l.Set, g.Codes)
		if err != nil {
			return cell{}, err
		}
		envelope := stats.Mean(min)
		oneRed := MeanOver(g.Codes, func(code string) float64 {
			return l.Set.MustGet(code).Mean() - destMean
		})
		infRed := MeanOver(g.Codes, func(code string) float64 {
			return l.Set.MustGet(code).Mean() - envelope
		})
		return cell{oneRed, infRed}, nil
	})
	if err != nil {
		return nil, err
	}
	var worst float64
	for i, g := range groups {
		adv := rows[i].infRed - rows[i].oneRed
		if adv > worst {
			worst = adv
		}
		t.AddRow(g.Name, rows[i].oneRed, rows[i].infRed, adv)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"largest ∞-migration advantage: %.1f g (paper: < 10 g — one migration captures nearly everything)", worst))
	return t, nil
}
