package core

import (
	"context"
	"fmt"

	"carbonshift/internal/engine"
	"carbonshift/internal/spatial"
)

// ExtOverhead prices the migrations the paper's ∞-migration policy
// performs for free: with a per-move carbon cost derived from job
// state size, the hopping policy's already-thin advantage over a
// single migration (< 10 g in Figure 6(b)) shrinks further and turns
// negative — closing the loop on the paper's conclusion that
// sophisticated migration policies have no practical headroom.
func (l *Lab) ExtOverhead(ctx context.Context) (*Table, error) {
	const length = 168 // a week-long job maximizes hopping opportunity
	arrivals := l.strideArrivals(length)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("core: trace too short for ext-overhead")
	}
	t := &Table{
		ID:      "ext-overhead",
		Title:   "∞-migration advantage vs per-move overhead, by geographic grouping (g·CO₂eq per job)",
		Columns: []string{"free_advantage_g", "with_8gb_job_g", "with_64gb_job_g", "break_even_g_per_move", "moves_per_job"},
	}
	costs := []spatial.MigrationCost{
		{StateGB: 8, WhPerGB: 4, IntensityG: 400},
		{StateGB: 64, WhPerGB: 4, IntensityG: 400},
	}
	var groups []Grouping
	for _, g := range l.Groupings() {
		if g.Name == "Global" {
			continue // match Figure 6(b): hopping within groupings
		}
		groups = append(groups, g)
	}
	// One (grouping, arrival) job evaluation per cell — four migration
	// policies priced against each other — reduced per grouping in
	// arrival order.
	type cell struct {
		free, small, large, breakEven, moves float64
	}
	cells, err := engine.Map(ctx, l.workers, len(groups)*len(arrivals), func(_ context.Context, i int) (cell, error) {
		g := groups[i/len(arrivals)]
		a := arrivals[i%len(arrivals)]
		one, _, err := spatial.OneMigrationCost(l.Set, g.Codes, a, length)
		if err != nil {
			return cell{}, err
		}
		zero, mv, err := spatial.InfMigrationWithOverhead(l.Set, g.Codes, a, length, spatial.MigrationCost{})
		if err != nil {
			return cell{}, err
		}
		withSmall, _, err := spatial.InfMigrationWithOverhead(l.Set, g.Codes, a, length, costs[0])
		if err != nil {
			return cell{}, err
		}
		withLarge, _, err := spatial.InfMigrationWithOverhead(l.Set, g.Codes, a, length, costs[1])
		if err != nil {
			return cell{}, err
		}
		c := cell{
			free:  one - zero,
			small: one - withSmall,
			large: one - withLarge,
			moves: float64(mv),
		}
		if mv > 0 {
			c.breakEven = (one - zero) / float64(mv)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	for gi, g := range groups {
		var acc cell
		for ai := range arrivals {
			c := cells[gi*len(arrivals)+ai]
			acc.free += c.free
			acc.small += c.small
			acc.large += c.large
			acc.breakEven += c.breakEven
			acc.moves += c.moves
		}
		f := float64(len(arrivals))
		t.AddRow(g.Name, acc.free/f, acc.small/f, acc.large/f, acc.breakEven/f, acc.moves/f)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-move costs: 8 GB job = %.1f g, 64 GB job = %.1f g; paper bounds the free advantage below 10 g, so any realistic state size erases it",
			costs[0].PerMove(), costs[1].PerMove()))
	return t, nil
}
