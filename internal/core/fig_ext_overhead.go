package core

import (
	"fmt"

	"carbonshift/internal/spatial"
)

// ExtOverhead prices the migrations the paper's ∞-migration policy
// performs for free: with a per-move carbon cost derived from job
// state size, the hopping policy's already-thin advantage over a
// single migration (< 10 g in Figure 6(b)) shrinks further and turns
// negative — closing the loop on the paper's conclusion that
// sophisticated migration policies have no practical headroom.
func (l *Lab) ExtOverhead() (*Table, error) {
	const length = 168 // a week-long job maximizes hopping opportunity
	arrivals := l.strideArrivals(length)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("core: trace too short for ext-overhead")
	}
	t := &Table{
		ID:      "ext-overhead",
		Title:   "∞-migration advantage vs per-move overhead, by geographic grouping (g·CO₂eq per job)",
		Columns: []string{"free_advantage_g", "with_8gb_job_g", "with_64gb_job_g", "break_even_g_per_move", "moves_per_job"},
	}
	costs := []spatial.MigrationCost{
		{StateGB: 8, WhPerGB: 4, IntensityG: 400},
		{StateGB: 64, WhPerGB: 4, IntensityG: 400},
	}
	for _, g := range l.Groupings() {
		if g.Name == "Global" {
			continue // match Figure 6(b): hopping within groupings
		}
		var free, small, large, breakEven, moves float64
		n := 0
		for _, a := range arrivals {
			one, _, err := spatial.OneMigrationCost(l.Set, g.Codes, a, length)
			if err != nil {
				return nil, err
			}
			zero, mv, err := spatial.InfMigrationWithOverhead(l.Set, g.Codes, a, length, spatial.MigrationCost{})
			if err != nil {
				return nil, err
			}
			withSmall, _, err := spatial.InfMigrationWithOverhead(l.Set, g.Codes, a, length, costs[0])
			if err != nil {
				return nil, err
			}
			withLarge, _, err := spatial.InfMigrationWithOverhead(l.Set, g.Codes, a, length, costs[1])
			if err != nil {
				return nil, err
			}
			free += one - zero
			small += one - withSmall
			large += one - withLarge
			if mv > 0 {
				breakEven += (one - zero) / float64(mv)
			}
			moves += float64(mv)
			n++
		}
		f := float64(n)
		t.AddRow(g.Name, free/f, small/f, large/f, breakEven/f, moves/f)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-move costs: 8 GB job = %.1f g, 64 GB job = %.1f g; paper bounds the free advantage below 10 g, so any realistic state size erases it",
			costs[0].PerMove(), costs[1].PerMove()))
	return t, nil
}
