package core

import (
	"context"
	"fmt"
	"sort"
)

// Experiment ties a paper figure to its reproduction.
type Experiment struct {
	// ID is the short identifier used on the command line, e.g.
	// "fig5a".
	ID string
	// Figure is the paper figure it regenerates.
	Figure string
	// Title summarizes the experiment.
	Title string
	// run executes the experiment against a Lab (receiver-first because
	// the registry stores method expressions).
	run func(l *Lab, ctx context.Context) (*Table, error)
}

// Run executes the experiment against the Lab, fanning its independent
// cells across the lab's worker pool. Cancelling ctx aborts the run.
func (e Experiment) Run(ctx context.Context, l *Lab) (*Table, error) {
	return e.run(l, ctx)
}

// Experiments lists every reproduction in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1", "Example carbon traces and generation mixes", (*Lab).Fig1},
		{"fig3a", "Figure 3(a)", "Mean carbon intensity vs daily CV", (*Lab).Fig3a},
		{"fig3b", "Figure 3(b)", "Change in CI and CV over the study period", (*Lab).Fig3b},
		{"fig4", "Figure 4", "Periodicity scores for datacenter regions", (*Lab).Fig4},
		{"fig5a", "Figure 5(a)", "Spatial shifting with infinite capacity", (*Lab).Fig5a},
		{"fig5b", "Figure 5(b)", "Spatial shifting at 50% idle capacity", (*Lab).Fig5b},
		{"fig5c", "Figure 5(c)", "Reduction vs idle capacity", (*Lab).Fig5c},
		{"fig6a", "Figure 6(a)", "Reduction vs latency SLO", (*Lab).Fig6a},
		{"fig6b", "Figure 6(b)", "1-migration vs ∞-migration", (*Lab).Fig6b},
		{"fig7", "Figure 7", "Deferrability savings by job length", (*Lab).Fig7},
		{"fig8", "Figure 8", "Interruptibility savings by job length", (*Lab).Fig8},
		{"fig9", "Figure 9", "Combined temporal savings (% of global mean)", (*Lab).Fig9},
		{"fig10", "Figure 10(a-c)", "Fleet savings by job-length distribution", (*Lab).Fig10},
		{"fig10d", "Figure 10(d)", "Fleet savings vs slack", (*Lab).Fig10d},
		{"fig11a", "Figure 11(a)", "Mixed migratable/non-migratable workloads", (*Lab).Fig11a},
		{"fig11b", "Figure 11(b)", "Forecast-error impact", (*Lab).Fig11b},
		{"fig11c", "Figure 11(c)", "Greener grid, temporal scheduling", (*Lab).Fig11c},
		{"fig11d", "Figure 11(d)", "Greener grid, spatial scheduling", (*Lab).Fig11d},
		{"fig12", "Figure 12", "Combined spatial+temporal shifting", (*Lab).Fig12},
		{"ext-forecast", "§6.2 extension", "Forecast-model MAPE and scheduling cost", (*Lab).ExtForecast},
		{"ext-contention", "§5.2.5 extension", "Scheduler savings under capacity contention", (*Lab).ExtContention},
		{"ext-overhead", "§5.1.4 extension", "∞-migration advantage under migration overheads", (*Lab).ExtOverhead},
	}
}

// ExperimentByID looks up one experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (known: %v)", id, ids)
}
