package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"carbonshift/internal/regions"
)

// parallelLab builds a mini lab with the given engine worker bound,
// sharing the mini lab's simulator config (and therefore the
// process-level trace cache).
func parallelLab(t *testing.T, workers int) *Lab {
	t.Helper()
	codes := []string{"SE", "US-CA", "US-VA", "IN-WE", "HK", "DE", "FR",
		"AU-NSW", "BR-CS", "ZA", "CA-ON", "NL"}
	var regs []regions.Region
	for _, c := range codes {
		regs = append(regs, regions.MustByCode(c))
	}
	l, err := NewLab(Options{
		Sim:         miniLabSim(2),
		Regions:     regs,
		ArrivalSpan: 1000,
		Stride:      211,
		Workers:     workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestWorkersDeterminism is the engine's core guarantee: every
// experiment's output is byte-identical between the serial reference
// path (-workers 1) and the fanned-out pool (-workers 8).
func TestWorkersDeterminism(t *testing.T) {
	serial := parallelLab(t, 1)
	parallel := parallelLab(t, 8)
	ctx := context.Background()
	for _, e := range Experiments() {
		st, err := e.Run(ctx, serial)
		if err != nil {
			t.Fatalf("%s serial: %v", e.ID, err)
		}
		pt, err := e.Run(ctx, parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", e.ID, err)
		}
		if st.String() != pt.String() {
			t.Errorf("%s: rendered tables differ between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				e.ID, st.String(), pt.String())
		}
		var sb, pb bytes.Buffer
		if err := st.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		if err := pt.WriteCSV(&pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Errorf("%s: CSV output differs between workers=1 and workers=8", e.ID)
		}
	}
}

// TestExperimentCancellation checks that a cancelled context aborts
// the engine-driven experiments instead of running them to completion.
func TestExperimentCancellation(t *testing.T) {
	l := parallelLab(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Every engine-driven experiment must refuse to run; the IDs cover
	// the global scans, the temporal family, the what-ifs, and the
	// extensions.
	for _, id := range []string{"fig3a", "fig4", "fig7", "fig10d", "fig11a", "fig11b", "fig12", "ext-forecast", "ext-overhead"} {
		e, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(ctx, l); !errors.Is(err, context.Canceled) {
			t.Errorf("%s under cancelled context: err = %v, want context.Canceled", id, err)
		}
	}
}

// TestNewLabCtxCancellation checks that dataset generation honours the
// context.
func TestNewLabCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A seed no other test uses, so nothing is already cached.
	if _, err := NewLabCtx(ctx, Options{Sim: miniLabSim(981), Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("NewLabCtx under cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestFillTemporalGridCancellation covers the warmed-cache path shared
// by the Figure 7–10 family.
func TestFillTemporalGridCancellation(t *testing.T) {
	l := parallelLab(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.FillTemporalGrid(ctx, []int{1}, []int{24}); !errors.Is(err, context.Canceled) {
		t.Errorf("FillTemporalGrid under cancelled context: err = %v, want context.Canceled", err)
	}
}
