package core

import (
	"context"
	"fmt"

	"carbonshift/internal/engine"
	"carbonshift/internal/regions"
	"carbonshift/internal/rng"
	"carbonshift/internal/scenario"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/stats"
	"carbonshift/internal/temporal"
	"carbonshift/internal/trace"
)

// Fig11a reproduces Figure 11(a): carbon reduction as the migratable
// share of a mixed batch/interactive fleet grows.
func (l *Lab) Fig11a(ctx context.Context) (*Table, error) {
	arrivals := l.strideArrivals(1)
	t := &Table{
		ID:      "fig11a",
		Title:   "Mixed workloads: reduction vs migratable fraction",
		Columns: []string{"reduction_g", "reduction_pct"},
	}
	var fracs []float64
	for frac := 0.0; frac <= 1.0001; frac += 0.1 {
		fracs = append(fracs, frac)
	}
	// One fleet evaluation per migratable fraction, each an independent
	// engine cell.
	results, err := engine.Map(ctx, l.workers, len(fracs), func(_ context.Context, i int) (scenario.MixedResult, error) {
		f := fracs[i]
		if f > 1 {
			f = 1
		}
		return scenario.MixedWorkload(l.Set, f, arrivals)
	})
	if err != nil {
		return nil, err
	}
	for i, frac := range fracs {
		t.AddRow(fmt.Sprintf("migratable_%.0f%%", frac*100),
			results[i].Reduction(), 100*results[i].Reduction()/l.GlobalMean)
	}
	t.Notes = append(t.Notes,
		"paper: reductions scale with the migratable share; ~30% of real fleets are non-migratable interactive VMs")
	return t, nil
}

// fig11bLength is the job length used in the forecast-error sweep.
const fig11bLength = 24

// Fig11b reproduces Figure 11(b): the emissions increase caused by
// carbon-intensity forecast errors, for temporal and spatial shifting.
func (l *Lab) Fig11b(ctx context.Context) (*Table, error) {
	slack := l.slackFor(figSlackIdeal)
	arrivals := l.strideArrivals(fig11bLength + slack)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("core: trace too short for fig11b")
	}
	codes := l.hyperscaleCodes()
	t := &Table{
		ID:      "fig11b",
		Title:   "Emissions increase vs forecast error (temporal and spatial scheduling)",
		Columns: []string{"temporal_pct", "spatial_pct"},
	}
	errFracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	// One error level per cell. Every cell reseeds its generator from
	// the lab seed alone and pre-splits one child stream per region
	// (rng.SplitN), so its noise is a pure function of the error level
	// and never of which worker runs it or in what order.
	type cell struct{ tPct, sPct float64 }
	rows, err := engine.Map(ctx, l.workers, len(errFracs), func(_ context.Context, i int) (cell, error) {
		errFrac := errFracs[i]
		src := rng.New(l.opts.Sim.Seed ^ 0xe44c)
		srcs := src.SplitN(len(codes) + 1)
		// Temporal: schedule each job on its region's noisy trace, pay
		// the true trace.
		var tAcc float64
		tN := 0
		for ci, code := range codes {
			tr := l.Set.MustGet(code)
			noisy, err := scenario.UniformError(tr.CI, errFrac, srcs[ci])
			if err != nil {
				return cell{}, err
			}
			for _, a := range arrivals {
				impact, err := scenario.TemporalForecast(tr.CI, noisy, a, fig11bLength, slack)
				if err != nil {
					return cell{}, err
				}
				tAcc += impact.IncreaseFrac()
				tN++
			}
		}

		// Spatial: ∞-migration chasing the noisy argmin, paying truth.
		noisySet, err := l.noisySet(errFrac, srcs[len(codes)])
		if err != nil {
			return cell{}, err
		}
		var sAcc float64
		sN := 0
		for _, a := range l.strideArrivals(fig11bLength) {
			impact, err := scenario.SpatialForecast(l.Set, noisySet, l.Set.Regions(), a, fig11bLength)
			if err != nil {
				return cell{}, err
			}
			sAcc += impact.IncreaseFrac()
			sN++
		}
		return cell{100 * tAcc / float64(tN), 100 * sAcc / float64(sN)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, errFrac := range errFracs {
		t.AddRow(fmt.Sprintf("error_%.0f%%", errFrac*100), rows[i].tPct, rows[i].sPct)
	}
	t.Notes = append(t.Notes,
		"paper: ~10-12% increase at 50% error; CarbonCast-grade forecasts (<14% MAPE) imply ~3% in practice")
	return t, nil
}

func (l *Lab) hyperscaleCodes() []string {
	var out []string
	for _, r := range l.Regions {
		if r.Providers.Hyperscale() {
			out = append(out, r.Code)
		}
	}
	if len(out) == 0 {
		out = l.Set.Regions()
	}
	return out
}

func (l *Lab) noisySet(errFrac float64, src *rng.Source) (*trace.Set, error) {
	var traces []*trace.Trace
	for _, code := range l.Set.Regions() {
		tr := l.Set.MustGet(code)
		noisy, err := scenario.UniformError(tr.CI, errFrac, src.Split())
		if err != nil {
			return nil, err
		}
		traces = append(traces, trace.New(code, tr.Start, noisy))
	}
	return trace.NewSet(traces)
}

// fig11Region is the paper's example region for the greener-grid
// sweep.
const fig11Region = "US-CA"

// greenerSteps are the added renewable shares swept by Figure 11(c-d).
var greenerSteps = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}

// Fig11c reproduces Figure 11(c): carbon-agnostic vs carbon-aware
// temporal scheduling in California as the grid adds renewables.
func (l *Lab) Fig11c(ctx context.Context) (*Table, error) {
	region := l.exampleRegion()
	slack := l.slackFor(figSlackIdeal)
	const length = fig11bLength
	t := &Table{
		ID:      "fig11c",
		Title:   fmt.Sprintf("Greener grid, temporal scheduling in %s (g·CO₂eq per job-hour)", region),
		Columns: []string{"agnostic_g", "aware_g", "gap_g"},
	}
	reg, err := l.regionByCode(region)
	if err != nil {
		return nil, err
	}
	// One re-simulated grid plus temporal sweep per renewable step; the
	// per-(region, config) traces land in the process-level cache, so
	// repeat runs skip the simulation entirely.
	type cell struct{ agnostic, aware float64 }
	rows, err := engine.Map(ctx, l.workers, len(greenerSteps), func(_ context.Context, i int) (cell, error) {
		cfg := l.opts.Sim
		cfg.ExtraRenewables = greenerSteps[i]
		tr, err := simgrid.GenerateRegionCached(reg, cfg)
		if err != nil {
			return cell{}, err
		}
		arrivals := l.arrivals(length + slack)
		if arrivals < 1 {
			return cell{}, fmt.Errorf("core: trace too short for fig11c")
		}
		costs, err := temporal.Sweep(tr.CI, length, slack, arrivals)
		if err != nil {
			return cell{}, err
		}
		return cell{
			agnostic: stats.Mean(costs.Baseline) / length,
			aware:    stats.Mean(costs.Interrupted) / length,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, add := range greenerSteps {
		t.AddRow(fmt.Sprintf("renew_+%.0f%%", add*100),
			rows[i].agnostic, rows[i].aware, rows[i].agnostic-rows[i].aware)
	}
	t.Notes = append(t.Notes,
		"paper: both curves fall as the grid greens, and the carbon-aware advantage over carbon-agnostic shrinks")
	return t, nil
}

// Fig11d reproduces Figure 11(d): carbon-agnostic vs carbon-aware
// (∞-migration) spatial scheduling for California jobs as the whole
// world adds renewables.
func (l *Lab) Fig11d(ctx context.Context) (*Table, error) {
	region := l.exampleRegion()
	const length = fig11bLength
	t := &Table{
		ID:      "fig11d",
		Title:   fmt.Sprintf("Greener grid, spatial scheduling from %s (g·CO₂eq per job-hour)", region),
		Columns: []string{"agnostic_g", "aware_g", "gap_g"},
	}
	// Each renewable step re-simulates the whole catalog; the engine
	// fans the per-region simulations out inside GenerateCached, so the
	// outer step loop stays serial to keep concurrency bounded by
	// l.workers.
	for _, add := range greenerSteps {
		cfg := l.opts.Sim
		cfg.ExtraRenewables = add
		set, err := simgrid.GenerateCached(ctx, l.Regions, cfg, l.workers)
		if err != nil {
			return nil, err
		}
		envelope := set.MinSeries()
		tr := set.MustGet(region)
		arrivals := l.strideArrivals(length)
		if len(arrivals) == 0 {
			return nil, fmt.Errorf("core: trace too short for fig11d")
		}
		var agnostic, aware float64
		for _, a := range arrivals {
			agnostic += tr.Sum(a, a+length)
			for h := a; h < a+length; h++ {
				aware += envelope[h]
			}
		}
		n := float64(len(arrivals)) * length
		t.AddRow(fmt.Sprintf("renew_+%.0f%%", add*100),
			agnostic/n, aware/n, (agnostic-aware)/n)
	}
	t.Notes = append(t.Notes,
		"paper: as renewables grow everywhere, carbon-agnostic emissions approach carbon-aware emissions")
	return t, nil
}

func (l *Lab) exampleRegion() string {
	if _, ok := l.Set.Get(fig11Region); ok {
		return fig11Region
	}
	return l.Set.Regions()[0]
}

func (l *Lab) regionByCode(code string) (regions.Region, error) {
	for _, r := range l.Regions {
		if r.Code == code {
			return r, nil
		}
	}
	return regions.Region{}, fmt.Errorf("core: region %q not in lab", code)
}

// fig12Destinations are the flagged destination regions of Figure 12.
var fig12Destinations = []string{
	"SE", "CA-ON", "BE", "FR", "CH", "US-CA", "US-VA", "GB", "NL", "KR", "US-UT", "IN-WE",
}

// Fig12 reproduces Figure 12: the spatial and temporal decomposition
// of combined shifting per destination region, for one-year and
// 24-hour slack.
func (l *Lab) Fig12(ctx context.Context) (*Table, error) {
	const length = 24
	ideal := l.slackFor(figSlackIdeal)
	practical := l.slackFor(figSlackPractical)
	arrivals := l.strideArrivals(length + ideal)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("core: trace too short for fig12")
	}
	origins := l.Set.Regions()
	t := &Table{
		ID:      "fig12",
		Title:   "Combined spatial+temporal shifting by destination (g·CO₂eq per job-hour)",
		Columns: []string{"spatial", "temporal_1y", "net_1y", "temporal_24h", "net_24h"},
	}
	dests := fig12Destinations
	var present []string
	for _, d := range dests {
		if _, ok := l.Set.Get(d); ok {
			present = append(present, d)
		}
	}
	if len(present) == 0 {
		present = origins
		if len(present) > 4 {
			present = present[:4]
		}
	}
	// One destination region per cell; each evaluates the combined
	// policy at both slacks over every (origin, arrival) pair.
	type cell struct{ ideal, practical scenario.CombinedResult }
	rows, err := engine.Map(ctx, l.workers, len(present), func(_ context.Context, i int) (cell, error) {
		ri, err := scenario.Combined(l.Set, present[i], origins, length, ideal, arrivals)
		if err != nil {
			return cell{}, err
		}
		rp, err := scenario.Combined(l.Set, present[i], origins, length, practical, arrivals)
		if err != nil {
			return cell{}, err
		}
		return cell{ri, rp}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, dest := range present {
		ri, rp := rows[i].ideal, rows[i].practical
		fl := float64(length)
		t.AddRow(dest,
			ri.SpatialSaving/fl,
			ri.TemporalSaving/fl, ri.NetSaving()/fl,
			rp.TemporalSaving/fl, rp.NetSaving()/fl)
	}
	t.Notes = append(t.Notes,
		"paper: the spatial term dominates the net regardless of slack — green destinations (SE, CA-ON, BE) win even with low variability, while dirty ones (NL, KR, US-UT) lose even with high temporal savings")
	return t, nil
}
