package core

import (
	"fmt"

	"carbonshift/internal/regions"
	"carbonshift/internal/rng"
	"carbonshift/internal/scenario"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/stats"
	"carbonshift/internal/temporal"
	"carbonshift/internal/trace"
)

// Fig11a reproduces Figure 11(a): carbon reduction as the migratable
// share of a mixed batch/interactive fleet grows.
func (l *Lab) Fig11a() (*Table, error) {
	arrivals := l.strideArrivals(1)
	t := &Table{
		ID:      "fig11a",
		Title:   "Mixed workloads: reduction vs migratable fraction",
		Columns: []string{"reduction_g", "reduction_pct"},
	}
	for frac := 0.0; frac <= 1.0001; frac += 0.1 {
		f := frac
		if f > 1 {
			f = 1
		}
		r, err := scenario.MixedWorkload(l.Set, f, arrivals)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("migratable_%.0f%%", frac*100),
			r.Reduction(), 100*r.Reduction()/l.GlobalMean)
	}
	t.Notes = append(t.Notes,
		"paper: reductions scale with the migratable share; ~30% of real fleets are non-migratable interactive VMs")
	return t, nil
}

// fig11bLength is the job length used in the forecast-error sweep.
const fig11bLength = 24

// Fig11b reproduces Figure 11(b): the emissions increase caused by
// carbon-intensity forecast errors, for temporal and spatial shifting.
func (l *Lab) Fig11b() (*Table, error) {
	slack := l.slackFor(figSlackIdeal)
	arrivals := l.strideArrivals(fig11bLength + slack)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("core: trace too short for fig11b")
	}
	codes := l.hyperscaleCodes()
	t := &Table{
		ID:      "fig11b",
		Title:   "Emissions increase vs forecast error (temporal and spatial scheduling)",
		Columns: []string{"temporal_pct", "spatial_pct"},
	}
	for _, errFrac := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		src := rng.New(l.opts.Sim.Seed ^ 0xe44c)
		// Temporal: schedule each job on its region's noisy trace, pay
		// the true trace.
		var tAcc float64
		tN := 0
		for _, code := range codes {
			tr := l.Set.MustGet(code)
			noisy, err := scenario.UniformError(tr.CI, errFrac, src.Split())
			if err != nil {
				return nil, err
			}
			for _, a := range arrivals {
				impact, err := scenario.TemporalForecast(tr.CI, noisy, a, fig11bLength, slack)
				if err != nil {
					return nil, err
				}
				tAcc += impact.IncreaseFrac()
				tN++
			}
		}

		// Spatial: ∞-migration chasing the noisy argmin, paying truth.
		noisySet, err := l.noisySet(errFrac, src.Split())
		if err != nil {
			return nil, err
		}
		var sAcc float64
		sN := 0
		for _, a := range l.strideArrivals(fig11bLength) {
			impact, err := scenario.SpatialForecast(l.Set, noisySet, l.Set.Regions(), a, fig11bLength)
			if err != nil {
				return nil, err
			}
			sAcc += impact.IncreaseFrac()
			sN++
		}
		t.AddRow(fmt.Sprintf("error_%.0f%%", errFrac*100),
			100*tAcc/float64(tN), 100*sAcc/float64(sN))
	}
	t.Notes = append(t.Notes,
		"paper: ~10-12% increase at 50% error; CarbonCast-grade forecasts (<14% MAPE) imply ~3% in practice")
	return t, nil
}

func (l *Lab) hyperscaleCodes() []string {
	var out []string
	for _, r := range l.Regions {
		if r.Providers.Hyperscale() {
			out = append(out, r.Code)
		}
	}
	if len(out) == 0 {
		out = l.Set.Regions()
	}
	return out
}

func (l *Lab) noisySet(errFrac float64, src *rng.Source) (*trace.Set, error) {
	var traces []*trace.Trace
	for _, code := range l.Set.Regions() {
		tr := l.Set.MustGet(code)
		noisy, err := scenario.UniformError(tr.CI, errFrac, src.Split())
		if err != nil {
			return nil, err
		}
		traces = append(traces, trace.New(code, tr.Start, noisy))
	}
	return trace.NewSet(traces)
}

// fig11Region is the paper's example region for the greener-grid
// sweep.
const fig11Region = "US-CA"

// greenerSteps are the added renewable shares swept by Figure 11(c-d).
var greenerSteps = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}

// Fig11c reproduces Figure 11(c): carbon-agnostic vs carbon-aware
// temporal scheduling in California as the grid adds renewables.
func (l *Lab) Fig11c() (*Table, error) {
	region := l.exampleRegion()
	slack := l.slackFor(figSlackIdeal)
	const length = fig11bLength
	t := &Table{
		ID:      "fig11c",
		Title:   fmt.Sprintf("Greener grid, temporal scheduling in %s (g·CO₂eq per job-hour)", region),
		Columns: []string{"agnostic_g", "aware_g", "gap_g"},
	}
	for _, add := range greenerSteps {
		cfg := l.opts.Sim
		cfg.ExtraRenewables = add
		reg, err := l.regionByCode(region)
		if err != nil {
			return nil, err
		}
		tr, err := simgrid.GenerateRegion(reg, cfg)
		if err != nil {
			return nil, err
		}
		arrivals := l.arrivals(length + slack)
		if arrivals < 1 {
			return nil, fmt.Errorf("core: trace too short for fig11c")
		}
		costs, err := temporal.Sweep(tr.CI, length, slack, arrivals)
		if err != nil {
			return nil, err
		}
		agnostic := stats.Mean(costs.Baseline) / length
		aware := stats.Mean(costs.Interrupted) / length
		t.AddRow(fmt.Sprintf("renew_+%.0f%%", add*100), agnostic, aware, agnostic-aware)
	}
	t.Notes = append(t.Notes,
		"paper: both curves fall as the grid greens, and the carbon-aware advantage over carbon-agnostic shrinks")
	return t, nil
}

// Fig11d reproduces Figure 11(d): carbon-agnostic vs carbon-aware
// (∞-migration) spatial scheduling for California jobs as the whole
// world adds renewables.
func (l *Lab) Fig11d() (*Table, error) {
	region := l.exampleRegion()
	const length = fig11bLength
	t := &Table{
		ID:      "fig11d",
		Title:   fmt.Sprintf("Greener grid, spatial scheduling from %s (g·CO₂eq per job-hour)", region),
		Columns: []string{"agnostic_g", "aware_g", "gap_g"},
	}
	for _, add := range greenerSteps {
		cfg := l.opts.Sim
		cfg.ExtraRenewables = add
		set, err := simgrid.Generate(l.Regions, cfg)
		if err != nil {
			return nil, err
		}
		envelope := set.MinSeries()
		tr := set.MustGet(region)
		arrivals := l.strideArrivals(length)
		if len(arrivals) == 0 {
			return nil, fmt.Errorf("core: trace too short for fig11d")
		}
		var agnostic, aware float64
		for _, a := range arrivals {
			agnostic += tr.Sum(a, a+length)
			for h := a; h < a+length; h++ {
				aware += envelope[h]
			}
		}
		n := float64(len(arrivals)) * length
		t.AddRow(fmt.Sprintf("renew_+%.0f%%", add*100),
			agnostic/n, aware/n, (agnostic-aware)/n)
	}
	t.Notes = append(t.Notes,
		"paper: as renewables grow everywhere, carbon-agnostic emissions approach carbon-aware emissions")
	return t, nil
}

func (l *Lab) exampleRegion() string {
	if _, ok := l.Set.Get(fig11Region); ok {
		return fig11Region
	}
	return l.Set.Regions()[0]
}

func (l *Lab) regionByCode(code string) (regions.Region, error) {
	for _, r := range l.Regions {
		if r.Code == code {
			return r, nil
		}
	}
	return regions.Region{}, fmt.Errorf("core: region %q not in lab", code)
}

// fig12Destinations are the flagged destination regions of Figure 12.
var fig12Destinations = []string{
	"SE", "CA-ON", "BE", "FR", "CH", "US-CA", "US-VA", "GB", "NL", "KR", "US-UT", "IN-WE",
}

// Fig12 reproduces Figure 12: the spatial and temporal decomposition
// of combined shifting per destination region, for one-year and
// 24-hour slack.
func (l *Lab) Fig12() (*Table, error) {
	const length = 24
	ideal := l.slackFor(figSlackIdeal)
	practical := l.slackFor(figSlackPractical)
	arrivals := l.strideArrivals(length + ideal)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("core: trace too short for fig12")
	}
	origins := l.Set.Regions()
	t := &Table{
		ID:      "fig12",
		Title:   "Combined spatial+temporal shifting by destination (g·CO₂eq per job-hour)",
		Columns: []string{"spatial", "temporal_1y", "net_1y", "temporal_24h", "net_24h"},
	}
	dests := fig12Destinations
	var present []string
	for _, d := range dests {
		if _, ok := l.Set.Get(d); ok {
			present = append(present, d)
		}
	}
	if len(present) == 0 {
		present = origins
		if len(present) > 4 {
			present = present[:4]
		}
	}
	for _, dest := range present {
		ri, err := scenario.Combined(l.Set, dest, origins, length, ideal, arrivals)
		if err != nil {
			return nil, err
		}
		rp, err := scenario.Combined(l.Set, dest, origins, length, practical, arrivals)
		if err != nil {
			return nil, err
		}
		fl := float64(length)
		t.AddRow(dest,
			ri.SpatialSaving/fl,
			ri.TemporalSaving/fl, ri.NetSaving()/fl,
			rp.TemporalSaving/fl, rp.NetSaving()/fl)
	}
	t.Notes = append(t.Notes,
		"paper: the spatial term dominates the net regardless of slack — green destinations (SE, CA-ON, BE) win even with low variability, while dirty ones (NL, KR, US-UT) lose even with high temporal savings")
	return t, nil
}
