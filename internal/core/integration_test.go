package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"carbonshift/internal/spatial"
	"carbonshift/internal/temporal"
	"carbonshift/internal/trace"
)

// TestCSVPipelineRoundTrip checks the full data path a downstream user
// would take: generate the dataset, export it to CSV (tracegen's
// format), read it back, and verify the analyses produce identical
// results on the re-imported data.
func TestCSVPipelineRoundTrip(t *testing.T) {
	l := mini(t)

	var buf bytes.Buffer
	if err := l.Set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != l.Set.Size() || back.Len() != l.Set.Len() {
		t.Fatalf("round trip shape: %dx%d vs %dx%d",
			back.Size(), back.Len(), l.Set.Size(), l.Set.Len())
	}

	// Temporal analysis must agree to CSV precision (3 decimals per
	// sample, so sums over a week agree within ~0.1 g).
	for _, code := range []string{"SE", "IN-WE"} {
		orig, err := temporal.Evaluate(l.Set.MustGet(code).CI, 100, 24, 168)
		if err != nil {
			t.Fatal(err)
		}
		re, err := temporal.Evaluate(back.MustGet(code).CI, 100, 24, 168)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(orig.Interrupted-re.Interrupted) > 0.2 {
			t.Fatalf("%s: interrupted cost drifted through CSV: %v vs %v",
				code, orig.Interrupted, re.Interrupted)
		}
	}

	// Spatial analysis must pick the same destination.
	origDest, _, err := spatial.LowestMeanRegion(l.Set, l.Set.Regions())
	if err != nil {
		t.Fatal(err)
	}
	reDest, _, err := spatial.LowestMeanRegion(back, back.Regions())
	if err != nil {
		t.Fatal(err)
	}
	if origDest != reDest {
		t.Fatalf("greenest region changed through CSV: %s vs %s", origDest, reDest)
	}
}

// TestSeedChangesResultsButNotShape checks that a different seed moves
// the numbers without breaking any experiment — the reproduction's
// conclusions must not hinge on one lucky draw.
func TestSeedChangesResultsButNotShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed lab skipped in -short mode")
	}
	other, err := NewLab(Options{
		Sim:         miniLabSim(43),
		Regions:     mini(t).Regions,
		ArrivalSpan: 1000,
		Stride:      211,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := mini(t).Fig5a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := other.Fig5a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	av := a.MustValue("Global", "reduction_pct")
	bv := b.MustValue("Global", "reduction_pct")
	if av == bv {
		t.Fatal("different seeds produced identical results")
	}
	// But both seeds show near-total ideal spatial reduction.
	if av < 80 || bv < 80 {
		t.Fatalf("ideal spatial reduction unstable across seeds: %.1f vs %.1f", av, bv)
	}
}
