package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Row is one labeled row of numeric results.
type Row struct {
	Label  string
	Values []float64
}

// Table is the uniform output format of every experiment: a labeled
// numeric grid that renders as aligned text (for terminals) or CSV
// (for plotting). Each experiment produces the same rows/series the
// corresponding paper figure reports.
type Table struct {
	// ID is the experiment identifier, e.g. "fig5a".
	ID string
	// Title describes the experiment.
	Title string
	// Columns names the value columns (not counting the label).
	Columns []string
	// Rows holds the data.
	Rows []Row
	// Notes carries free-form commentary (headline comparisons etc.).
	Notes []string
}

// AddRow appends a labeled row. The number of values must match the
// declared columns.
func (t *Table) AddRow(label string, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("core: table %s row %q has %d values for %d columns",
			t.ID, label, len(values), len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Value returns the cell at (rowLabel, column).
func (t *Table) Value(rowLabel, column string) (float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel {
			return r.Values[col], true
		}
	}
	return 0, false
}

// MustValue is Value for cells known to exist; it panics otherwise.
func (t *Table) MustValue(rowLabel, column string) float64 {
	v, ok := t.Value(rowLabel, column)
	if !ok {
		panic(fmt.Sprintf("core: table %s has no cell (%q, %q)", t.ID, rowLabel, column))
	}
	return v
}

// String renders the table as aligned, human-readable text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)

	labelW := len("label")
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		colW[i] = len(c)
	}
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r.Values))
		for ci, v := range r.Values {
			s := strconv.FormatFloat(v, 'f', 2, 64)
			cells[ri][ci] = s
			if len(s) > colW[ci] {
				colW[ci] = len(s)
			}
		}
	}

	fmt.Fprintf(&b, "%-*s", labelW, "label")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", colW[i], c)
	}
	b.WriteByte('\n')
	for ri, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelW, r.Label)
		for ci := range r.Values {
			fmt.Fprintf(&b, "  %*s", colW[ci], cells[ri][ci])
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// WriteCSV emits the table with a header row of "label" plus the
// column names.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"label"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Values)+1)
		rec = append(rec, r.Label)
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
