package core

import (
	"context"
	"fmt"

	"carbonshift/internal/engine"
	"carbonshift/internal/forecast"
	"carbonshift/internal/scenario"
	"carbonshift/internal/sched"
	"carbonshift/internal/workload"
)

// ExtForecast extends the paper's §6.2 beyond synthetic uniform noise:
// it backtests real forecasting models on the dataset (persistence vs
// a CarbonCast-class blended seasonal model), then measures the
// emissions increase when the temporal scheduler runs on *model*
// forecasts instead of the truth. The paper argues a ~14% MAPE
// forecast costs only ~3% extra emissions; this experiment produces
// that relationship from first principles.
func (l *Lab) ExtForecast(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "ext-forecast",
		Title:   "Forecast models: day-ahead MAPE and scheduling cost (extension of §6.2)",
		Columns: []string{"mape_pct", "sched_increase_pct"},
	}
	const (
		length  = 24
		refresh = 24
	)
	warmup := 21 * 24
	if warmup >= l.Set.Len()/2 {
		warmup = l.Set.Len() / 2
	}
	slack := l.slackFor(figSlackPractical)
	codes := l.hyperscaleCodes()
	if len(codes) > 12 {
		codes = codes[:12]
	}
	models := []forecast.Forecaster{
		forecast.Persistence{},
		forecast.SeasonalNaive{Period: 24, Cycles: 7},
		forecast.Blended{},
	}
	// One (model, region) backtest per cell, reduced per model in
	// region order afterwards.
	type cell struct {
		mape   float64
		incAcc float64
		incN   int
	}
	cells, err := engine.Map(ctx, l.workers, len(models)*len(codes), func(_ context.Context, i int) (cell, error) {
		model := models[i/len(codes)]
		tr := l.Set.MustGet(codes[i%len(codes)])
		m, err := forecast.Backtest(model, tr.CI, warmup, 24, 24*13)
		if err != nil {
			return cell{}, err
		}
		c := cell{mape: m}
		// Schedule interruptible jobs on the forecast view, pay on
		// the truth.
		view, err := forecast.ForecastTrace(model, tr, warmup, refresh)
		if err != nil {
			return cell{}, err
		}
		for _, a := range l.strideArrivals(length + slack) {
			if a < warmup {
				continue
			}
			impact, err := scenario.TemporalForecast(tr.CI, view.CI, a, length, slack)
			if err != nil {
				return cell{}, err
			}
			c.incAcc += impact.IncreaseFrac()
			c.incN++
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	for mi, model := range models {
		var mapeAcc, incAcc float64
		mapeN, incN := 0, 0
		for ci := range codes {
			c := cells[mi*len(codes)+ci]
			mapeAcc += c.mape
			mapeN++
			incAcc += c.incAcc
			incN += c.incN
		}
		if incN == 0 {
			return nil, fmt.Errorf("core: ext-forecast has no post-warmup arrivals")
		}
		t.AddRow(model.Name(), mapeAcc/float64(mapeN), 100*incAcc/float64(incN))
	}
	t.Notes = append(t.Notes,
		"paper context: CarbonCast reaches 4.8-13.9% MAPE; the paper estimates ~3% emission increase at that accuracy")
	return t, nil
}

// ExtContention quantifies the §5.2.5 caveat the limits analysis
// idealizes away: with finite cluster capacity, carbon-aware
// scheduling cannot pack all work into the clean valleys. The
// experiment sweeps fleet load on the simulated scheduler and reports
// the carbon-gate policy's advantage over carbon-agnostic FIFO at each
// load level, alongside the unconstrained analytical bound.
func (l *Lab) ExtContention(ctx context.Context) (*Table, error) {
	region := l.exampleRegion()
	horizon := l.Set.Len()
	if horizon > 60*24 {
		horizon = 60 * 24
	}
	arrivalSpan := horizon - 10*24
	if arrivalSpan < 1 {
		return nil, fmt.Errorf("core: trace too short for ext-contention")
	}

	// The unconstrained bound: mean combined temporal saving for 24h
	// jobs with 48h slack, as a fraction of the baseline.
	cell, err := l.TemporalCell(region, 24, 48)
	if err != nil {
		return nil, err
	}
	bound := (cell.DeferSaving + cell.InterruptSaving) / cell.Baseline

	t := &Table{
		ID:      "ext-contention",
		Title:   fmt.Sprintf("Scheduler savings vs fleet load in %s (extension of §5.2.5)", region),
		Columns: []string{"utilization_pct", "missed", "saving_vs_fifo_pct"},
	}
	jobs, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs:              400,
		ArrivalSpan:       arrivalSpan,
		Dist:              workload.DistEqual,
		SlackHours:        48,
		InterruptibleFrac: 1,
		MigratableFrac:    0,
		Origins:           []string{region},
		Seed:              l.opts.Sim.Seed + 7,
	})
	if err != nil {
		return nil, err
	}
	// Cap lengths at 24h so everything can finish inside the horizon.
	for i := range jobs {
		if jobs[i].Length > 24 {
			jobs[i].Length = 24
		}
	}
	// One capacity level per cell: each runs the FIFO and carbon-gate
	// simulations on its own copy of the scheduler state (sched.Run
	// never mutates the shared job stream).
	slotLevels := []int{400, 60, 30, 20, 15, 10}
	type levelResult struct{ fifo, gate sched.Result }
	rows, err := engine.Map(ctx, l.workers, len(slotLevels), func(_ context.Context, i int) (levelResult, error) {
		cl := []sched.Cluster{{Region: region, Slots: slotLevels[i]}}
		fifo, err := sched.Run(l.Set, cl, jobs, sched.FIFO{}, horizon)
		if err != nil {
			return levelResult{}, err
		}
		gate, err := sched.Run(l.Set, cl, jobs, sched.CarbonGate{Percentile: 35, Window: 168}, horizon)
		if err != nil {
			return levelResult{}, err
		}
		return levelResult{fifo, gate}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, slots := range slotLevels {
		fifo, gate := rows[i].fifo, rows[i].gate
		saving := 0.0
		if fifo.TotalEmissions > 0 {
			saving = 100 * (fifo.TotalEmissions - gate.TotalEmissions) / fifo.TotalEmissions
		}
		t.AddRow(fmt.Sprintf("slots_%d", slots),
			100*gate.Utilization(), float64(gate.Missed), saving)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("unconstrained analytical bound for this workload shape: %.1f%% saving; the scheduler approaches it only when capacity is ample", 100*bound))
	return t, nil
}
