package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteReport runs every experiment and emits a self-contained
// markdown report: dataset calibration, then each experiment's table
// and notes. It is the machine-regenerated companion to
// EXPERIMENTS.md. Cancelling ctx aborts the in-flight experiment.
func (l *Lab) WriteReport(ctx context.Context, w io.Writer) error {
	fmt.Fprintf(w, "# carbonshift experiment report\n\n")
	fmt.Fprintf(w, "Generated %s over %d regions, %d hourly samples starting %s.\n\n",
		time.Now().UTC().Format(time.RFC3339), l.Set.Size(), l.Set.Len(),
		l.Set.Start().Format("2006-01-02"))
	fmt.Fprintf(w, "Global mean carbon intensity: **%.2f g·CO₂eq/kWh** (paper: 368.39).\n\n",
		l.GlobalMean)

	for _, e := range Experiments() {
		start := time.Now()
		tbl, err := e.Run(ctx, l)
		if err != nil {
			return fmt.Errorf("core: report: %s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "## %s — %s\n\n", e.Figure, e.Title)
		fmt.Fprintf(w, "Experiment `%s`, %v.\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if err := writeMarkdownTable(w, tbl); err != nil {
			return err
		}
		for _, n := range tbl.Notes {
			fmt.Fprintf(w, "> %s\n", n)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// writeMarkdownTable renders a Table as a GitHub-flavored markdown
// table, truncating very long tables to head and tail rows.
func writeMarkdownTable(w io.Writer, t *Table) error {
	const maxRows = 30
	header := append([]string{"label"}, t.Columns...)
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))

	rows := t.Rows
	truncated := 0
	if len(rows) > maxRows {
		truncated = len(rows) - maxRows
		head := rows[:maxRows/2]
		tail := rows[len(rows)-maxRows/2:]
		rows = append(append([]Row{}, head...), tail...)
	}
	for i, r := range rows {
		if truncated > 0 && i == maxRows/2 {
			fmt.Fprintf(w, "| … %d rows omitted … |%s\n", truncated,
				strings.Repeat(" |", len(t.Columns)))
		}
		cells := make([]string, 0, len(r.Values)+1)
		cells = append(cells, r.Label)
		for _, v := range r.Values {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
	fmt.Fprintln(w)
	return nil
}
