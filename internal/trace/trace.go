// Package trace defines the hourly carbon-intensity time series used by
// every analysis in this repository, together with slicing, alignment,
// and CSV interchange helpers.
//
// A Trace mirrors one Electricity-Maps-style export: a region code plus
// an hourly series of average carbon intensity in g·CO₂eq/kWh. The
// analyses in the paper operate on three calendar years (2020–2022) of
// such series for 123 regions; a Set holds that aligned collection.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Hour is the fixed resolution of all traces. The paper argues hourly
// granularity suffices because grid carbon intensity rarely moves
// significantly within 2–3 hours.
const Hour = time.Hour

// HoursPerDay and HoursPerWeek are used for daily/weekly slicing.
const (
	HoursPerDay  = 24
	HoursPerWeek = 168
)

// Trace is an hourly carbon-intensity series for one region.
type Trace struct {
	// Region is the catalog code, e.g. "SE" or "US-CA".
	Region string
	// Start is the UTC timestamp of the first sample.
	Start time.Time
	// CI holds one sample per hour, in g·CO₂eq/kWh.
	CI []float64
}

// New returns a Trace with the given region, start, and samples.
func New(region string, start time.Time, ci []float64) *Trace {
	return &Trace{Region: region, Start: start.UTC(), CI: ci}
}

// Len returns the number of hourly samples.
func (t *Trace) Len() int { return len(t.CI) }

// End returns the timestamp one hour past the final sample.
func (t *Trace) End() time.Time { return t.Start.Add(time.Duration(len(t.CI)) * Hour) }

// At returns the carbon intensity for hour index i.
func (t *Trace) At(i int) float64 { return t.CI[i] }

// TimeAt returns the timestamp of hour index i.
func (t *Trace) TimeAt(i int) time.Time { return t.Start.Add(time.Duration(i) * Hour) }

// Index returns the hour index of ts, or an error if ts falls outside
// the trace or off the hour boundary.
func (t *Trace) Index(ts time.Time) (int, error) {
	d := ts.UTC().Sub(t.Start)
	if d%Hour != 0 {
		return 0, fmt.Errorf("trace: %v is not on an hour boundary", ts)
	}
	i := int(d / Hour)
	if i < 0 || i >= len(t.CI) {
		return 0, fmt.Errorf("trace: %v outside trace [%v, %v)", ts, t.Start, t.End())
	}
	return i, nil
}

// Slice returns a view of hours [from, to). The underlying samples are
// shared with the parent trace.
func (t *Trace) Slice(from, to int) (*Trace, error) {
	if from < 0 || to > len(t.CI) || from > to {
		return nil, fmt.Errorf("trace: invalid slice [%d, %d) of %d samples", from, to, len(t.CI))
	}
	return &Trace{
		Region: t.Region,
		Start:  t.TimeAt(from),
		CI:     t.CI[from:to],
	}, nil
}

// Year returns the sub-trace covering calendar year y, which must be
// fully contained in the trace.
func (t *Trace) Year(y int) (*Trace, error) {
	from := time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(y+1, 1, 1, 0, 0, 0, 0, time.UTC)
	if from.Before(t.Start) || to.After(t.End()) {
		return nil, fmt.Errorf("trace: year %d outside trace [%v, %v)", y, t.Start, t.End())
	}
	i, err := t.Index(from)
	if err != nil {
		return nil, err
	}
	n := int(to.Sub(from) / Hour)
	return t.Slice(i, i+n)
}

// Days splits the trace into consecutive 24-hour windows, dropping any
// trailing partial day.
func (t *Trace) Days() [][]float64 {
	n := len(t.CI) / HoursPerDay
	days := make([][]float64, n)
	for i := 0; i < n; i++ {
		days[i] = t.CI[i*HoursPerDay : (i+1)*HoursPerDay]
	}
	return days
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	ci := make([]float64, len(t.CI))
	copy(ci, t.CI)
	return &Trace{Region: t.Region, Start: t.Start, CI: ci}
}

// Window returns the samples in [start, start+n), or an error if the
// window overruns the trace.
func (t *Trace) Window(start, n int) ([]float64, error) {
	if start < 0 || n < 0 || start+n > len(t.CI) {
		return nil, fmt.Errorf("trace: window [%d, %d) outside %d samples", start, start+n, len(t.CI))
	}
	return t.CI[start : start+n], nil
}

// Sum returns the cumulative carbon over hours [from, to) for a load of
// 1 kW, i.e. the plain sum of the hourly intensities.
func (t *Trace) Sum(from, to int) float64 {
	var s float64
	for _, v := range t.CI[from:to] {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean intensity of the whole trace.
func (t *Trace) Mean() float64 {
	if len(t.CI) == 0 {
		return 0
	}
	return t.Sum(0, len(t.CI)) / float64(len(t.CI))
}

// Validate reports whether the trace is well formed: non-empty, hourly,
// and with finite non-negative samples.
func (t *Trace) Validate() error {
	if t.Region == "" {
		return errors.New("trace: empty region code")
	}
	if len(t.CI) == 0 {
		return errors.New("trace: no samples")
	}
	for i, v := range t.CI {
		if v < 0 || v != v /* NaN */ {
			return fmt.Errorf("trace: bad sample %v at hour %d", v, i)
		}
	}
	return nil
}

// Set is an aligned collection of traces: every member shares the same
// start time and length, so hour index i refers to the same wall-clock
// hour in every region.
type Set struct {
	byRegion map[string]*Trace
	order    []string // deterministic iteration order (sorted codes)
	start    time.Time
	length   int
}

// NewSet builds a Set from traces, verifying alignment.
func NewSet(traces []*Trace) (*Set, error) {
	if len(traces) == 0 {
		return nil, errors.New("trace: empty set")
	}
	s := &Set{
		byRegion: make(map[string]*Trace, len(traces)),
		start:    traces[0].Start,
		length:   traces[0].Len(),
	}
	for _, tr := range traces {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("trace: region %s: %w", tr.Region, err)
		}
		if !tr.Start.Equal(s.start) || tr.Len() != s.length {
			return nil, fmt.Errorf("trace: region %s misaligned (start %v len %d, want %v len %d)",
				tr.Region, tr.Start, tr.Len(), s.start, s.length)
		}
		if _, dup := s.byRegion[tr.Region]; dup {
			return nil, fmt.Errorf("trace: duplicate region %s", tr.Region)
		}
		s.byRegion[tr.Region] = tr
		s.order = append(s.order, tr.Region)
	}
	sort.Strings(s.order)
	return s, nil
}

// Regions returns the region codes in sorted order.
func (s *Set) Regions() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Get returns the trace for a region code.
func (s *Set) Get(region string) (*Trace, bool) {
	tr, ok := s.byRegion[region]
	return tr, ok
}

// MustGet returns the trace for region or panics; use only with codes
// known to exist (e.g. from Regions).
func (s *Set) MustGet(region string) *Trace {
	tr, ok := s.byRegion[region]
	if !ok {
		panic("trace: unknown region " + region)
	}
	return tr
}

// Len returns the number of hourly samples common to all traces.
func (s *Set) Len() int { return s.length }

// Start returns the shared start timestamp.
func (s *Set) Start() time.Time { return s.start }

// Size returns the number of regions.
func (s *Set) Size() int { return len(s.order) }

// Year returns a Set restricted to calendar year y.
func (s *Set) Year(y int) (*Set, error) {
	traces := make([]*Trace, 0, len(s.order))
	for _, code := range s.order {
		yr, err := s.byRegion[code].Year(y)
		if err != nil {
			return nil, err
		}
		traces = append(traces, yr)
	}
	return NewSet(traces)
}

// Subset returns a Set containing only the listed regions.
func (s *Set) Subset(regions []string) (*Set, error) {
	traces := make([]*Trace, 0, len(regions))
	for _, code := range regions {
		tr, ok := s.byRegion[code]
		if !ok {
			return nil, fmt.Errorf("trace: subset region %s not in set", code)
		}
		traces = append(traces, tr)
	}
	return NewSet(traces)
}

// MinAt returns the region with the lowest intensity at hour i and that
// intensity. Ties break toward the lexically smaller region code so the
// result is deterministic.
func (s *Set) MinAt(i int) (string, float64) {
	best, bestV := "", 0.0
	for _, code := range s.order {
		v := s.byRegion[code].CI[i]
		if best == "" || v < bestV {
			best, bestV = code, v
		}
	}
	return best, bestV
}

// MinSeries returns, for every hour, the minimum intensity across the
// set. This is the ∞-migration lower envelope.
func (s *Set) MinSeries() []float64 {
	out := make([]float64, s.length)
	for i := range out {
		_, out[i] = s.MinAt(i)
	}
	return out
}

// GlobalMean returns the mean of the per-region mean intensities, the
// paper's "global average carbon intensity" reference.
func (s *Set) GlobalMean() float64 {
	var sum float64
	for _, code := range s.order {
		sum += s.byRegion[code].Mean()
	}
	return sum / float64(len(s.order))
}

// WriteCSV writes the set in long format: region,timestamp,ci.
func (s *Set) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"region", "timestamp", "carbon_intensity_gco2eq_kwh"}); err != nil {
		return err
	}
	for _, code := range s.order {
		tr := s.byRegion[code]
		for i, v := range tr.CI {
			rec := []string{
				code,
				tr.TimeAt(i).Format(time.RFC3339),
				strconv.FormatFloat(v, 'f', 3, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a set in the format produced by WriteCSV.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if header[0] != "region" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	type partial struct {
		start time.Time
		ci    []float64
	}
	parts := make(map[string]*partial)
	var order []string
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV: %w", err)
		}
		ts, err := time.Parse(time.RFC3339, rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: bad timestamp %q: %w", rec[1], err)
		}
		v, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad intensity %q: %w", rec[2], err)
		}
		p, ok := parts[rec[0]]
		if !ok {
			p = &partial{start: ts}
			parts[rec[0]] = p
			order = append(order, rec[0])
		}
		p.ci = append(p.ci, v)
	}
	traces := make([]*Trace, 0, len(parts))
	for _, code := range order {
		p := parts[code]
		traces = append(traces, New(code, p.start, p.ci))
	}
	return NewSet(traces)
}
