package trace

import (
	"fmt"
	"math"
)

// This file provides the preprocessing the paper's artifact applies to
// raw carbon-intensity exports before analysis: real feeds arrive with
// missing hours (marked NaN) and sometimes at sub-hourly resolution.
// Repair interpolates gaps; Resample aggregates to the hourly grid.

// Repair returns a copy of ci with NaN gaps filled: interior gaps are
// linearly interpolated between the surrounding valid samples, and
// leading/trailing gaps are filled with the nearest valid value. It
// also returns the number of filled samples. A series with no valid
// samples at all is an error.
func Repair(ci []float64) ([]float64, int, error) {
	out := make([]float64, len(ci))
	copy(out, ci)

	firstValid, lastValid := -1, -1
	for i, v := range out {
		if !math.IsNaN(v) {
			if firstValid < 0 {
				firstValid = i
			}
			lastValid = i
		}
	}
	if firstValid < 0 {
		return nil, 0, fmt.Errorf("trace: cannot repair a series with no valid samples")
	}

	filled := 0
	// Leading gap: nearest-fill.
	for i := 0; i < firstValid; i++ {
		out[i] = out[firstValid]
		filled++
	}
	// Trailing gap: nearest-fill.
	for i := lastValid + 1; i < len(out); i++ {
		out[i] = out[lastValid]
		filled++
	}
	// Interior gaps: linear interpolation.
	i := firstValid
	for i < lastValid {
		if !math.IsNaN(out[i+1]) {
			i++
			continue
		}
		// Find the end of the gap.
		j := i + 1
		for math.IsNaN(out[j]) {
			j++
		}
		lo, hi := out[i], out[j]
		span := float64(j - i)
		for k := i + 1; k < j; k++ {
			out[k] = lo + (hi-lo)*float64(k-i)/span
			filled++
		}
		i = j
	}
	return out, filled, nil
}

// Resample aggregates a finer-grained series to a coarser one by
// averaging consecutive groups of `factor` samples (e.g. factor 4
// turns 15-minute data into hourly data). The input length must be a
// multiple of factor. NaN samples within a group are ignored; a group
// of only NaNs yields NaN (repair afterwards).
func Resample(samples []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("trace: resample factor %d must be >= 1", factor)
	}
	if len(samples)%factor != 0 {
		return nil, fmt.Errorf("trace: %d samples not divisible by factor %d", len(samples), factor)
	}
	out := make([]float64, len(samples)/factor)
	for g := range out {
		var sum float64
		n := 0
		for k := 0; k < factor; k++ {
			v := samples[g*factor+k]
			if math.IsNaN(v) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			out[g] = math.NaN()
			continue
		}
		out[g] = sum / float64(n)
	}
	return out, nil
}

// GapStats summarizes the missing-data structure of a raw series: the
// number of NaN samples and the length of the longest contiguous gap.
func GapStats(ci []float64) (missing, longestGap int) {
	run := 0
	for _, v := range ci {
		if math.IsNaN(v) {
			missing++
			run++
			if run > longestGap {
				longestGap = run
			}
		} else {
			run = 0
		}
	}
	return missing, longestGap
}
