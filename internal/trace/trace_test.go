package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func ramp(n int) []float64 {
	ci := make([]float64, n)
	for i := range ci {
		ci[i] = float64(i)
	}
	return ci
}

func TestBasicAccessors(t *testing.T) {
	tr := New("SE", t0, ramp(48))
	if tr.Len() != 48 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.End().Equal(t0.Add(48 * time.Hour)) {
		t.Fatalf("End = %v", tr.End())
	}
	if tr.At(7) != 7 {
		t.Fatalf("At(7) = %v", tr.At(7))
	}
	if got := tr.TimeAt(3); !got.Equal(t0.Add(3 * time.Hour)) {
		t.Fatalf("TimeAt(3) = %v", got)
	}
}

func TestIndex(t *testing.T) {
	tr := New("SE", t0, ramp(24))
	i, err := tr.Index(t0.Add(5 * time.Hour))
	if err != nil || i != 5 {
		t.Fatalf("Index = %d, %v", i, err)
	}
	if _, err := tr.Index(t0.Add(30 * time.Minute)); err == nil {
		t.Fatal("expected error for off-hour timestamp")
	}
	if _, err := tr.Index(t0.Add(-time.Hour)); err == nil {
		t.Fatal("expected error for timestamp before start")
	}
	if _, err := tr.Index(t0.Add(24 * time.Hour)); err == nil {
		t.Fatal("expected error for timestamp past end")
	}
}

func TestSlice(t *testing.T) {
	tr := New("SE", t0, ramp(100))
	sub, err := tr.Slice(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 10 || sub.At(0) != 10 {
		t.Fatalf("slice = len %d first %v", sub.Len(), sub.At(0))
	}
	if !sub.Start.Equal(t0.Add(10 * time.Hour)) {
		t.Fatalf("slice start = %v", sub.Start)
	}
	if _, err := tr.Slice(-1, 5); err == nil {
		t.Fatal("expected error for negative from")
	}
	if _, err := tr.Slice(5, 101); err == nil {
		t.Fatal("expected error for to > len")
	}
	if _, err := tr.Slice(9, 3); err == nil {
		t.Fatal("expected error for from > to")
	}
}

func TestYearExtraction(t *testing.T) {
	// 2020 is a leap year: 8784 hours; 2021 has 8760.
	n := 8784 + 8760
	tr := New("SE", t0, ramp(n))
	y20, err := tr.Year(2020)
	if err != nil {
		t.Fatal(err)
	}
	if y20.Len() != 8784 {
		t.Fatalf("2020 hours = %d, want 8784", y20.Len())
	}
	y21, err := tr.Year(2021)
	if err != nil {
		t.Fatal(err)
	}
	if y21.Len() != 8760 {
		t.Fatalf("2021 hours = %d, want 8760", y21.Len())
	}
	if y21.At(0) != 8784 {
		t.Fatalf("2021 first sample = %v, want 8784", y21.At(0))
	}
	if _, err := tr.Year(2022); err == nil {
		t.Fatal("expected error for uncovered year")
	}
}

func TestDays(t *testing.T) {
	tr := New("SE", t0, ramp(50)) // 2 full days + 2 hours
	days := tr.Days()
	if len(days) != 2 {
		t.Fatalf("days = %d", len(days))
	}
	if days[1][0] != 24 {
		t.Fatalf("day 2 first = %v", days[1][0])
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := New("SE", t0, ramp(10))
	cl := tr.Clone()
	cl.CI[0] = 999
	if tr.CI[0] == 999 {
		t.Fatal("clone shares backing array")
	}
}

func TestSumAndMean(t *testing.T) {
	tr := New("SE", t0, []float64{1, 2, 3, 4})
	if got := tr.Sum(1, 3); got != 5 {
		t.Fatalf("Sum(1,3) = %v", got)
	}
	if got := tr.Mean(); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := New("SE", t0, ramp(5)).Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if err := New("", t0, ramp(5)).Validate(); err == nil {
		t.Fatal("empty region accepted")
	}
	if err := New("SE", t0, nil).Validate(); err == nil {
		t.Fatal("empty samples accepted")
	}
	if err := New("SE", t0, []float64{1, -2}).Validate(); err == nil {
		t.Fatal("negative sample accepted")
	}
	if err := New("SE", t0, []float64{math.NaN()}).Validate(); err == nil {
		t.Fatal("NaN sample accepted")
	}
}

func mustSet(t *testing.T, traces ...*Trace) *Set {
	t.Helper()
	s, err := NewSet(traces)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetAlignment(t *testing.T) {
	a := New("A", t0, ramp(24))
	b := New("B", t0, ramp(24))
	s := mustSet(t, b, a)
	if got := s.Regions(); got[0] != "A" || got[1] != "B" {
		t.Fatalf("Regions = %v, want sorted", got)
	}
	if s.Len() != 24 || s.Size() != 2 {
		t.Fatalf("Len/Size = %d/%d", s.Len(), s.Size())
	}

	if _, err := NewSet([]*Trace{a, New("C", t0, ramp(23))}); err == nil {
		t.Fatal("misaligned lengths accepted")
	}
	if _, err := NewSet([]*Trace{a, New("C", t0.Add(time.Hour), ramp(24))}); err == nil {
		t.Fatal("misaligned starts accepted")
	}
	if _, err := NewSet([]*Trace{a, New("A", t0, ramp(24))}); err == nil {
		t.Fatal("duplicate region accepted")
	}
	if _, err := NewSet(nil); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestSetMinAt(t *testing.T) {
	a := New("A", t0, []float64{5, 1, 5})
	b := New("B", t0, []float64{3, 2, 5})
	s := mustSet(t, a, b)
	if r, v := s.MinAt(0); r != "B" || v != 3 {
		t.Fatalf("MinAt(0) = %s %v", r, v)
	}
	if r, v := s.MinAt(1); r != "A" || v != 1 {
		t.Fatalf("MinAt(1) = %s %v", r, v)
	}
	// Ties break toward lexically smaller code.
	if r, _ := s.MinAt(2); r != "A" {
		t.Fatalf("MinAt(2) tie = %s, want A", r)
	}
}

func TestSetMinSeries(t *testing.T) {
	a := New("A", t0, []float64{5, 1})
	b := New("B", t0, []float64{3, 2})
	s := mustSet(t, a, b)
	min := s.MinSeries()
	if min[0] != 3 || min[1] != 1 {
		t.Fatalf("MinSeries = %v", min)
	}
}

func TestSetGlobalMean(t *testing.T) {
	a := New("A", t0, []float64{2, 2})
	b := New("B", t0, []float64{4, 4})
	s := mustSet(t, a, b)
	if got := s.GlobalMean(); got != 3 {
		t.Fatalf("GlobalMean = %v", got)
	}
}

func TestSetSubset(t *testing.T) {
	a := New("A", t0, ramp(2))
	b := New("B", t0, ramp(2))
	s := mustSet(t, a, b)
	sub, err := s.Subset([]string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 1 {
		t.Fatalf("subset size = %d", sub.Size())
	}
	if _, err := s.Subset([]string{"Z"}); err == nil {
		t.Fatal("unknown subset region accepted")
	}
}

func TestSetYear(t *testing.T) {
	n := 8784 + 8760
	s := mustSet(t, New("A", t0, ramp(n)), New("B", t0, ramp(n)))
	y, err := s.Year(2021)
	if err != nil {
		t.Fatal(err)
	}
	if y.Len() != 8760 {
		t.Fatalf("year set len = %d", y.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	a := New("A", t0, []float64{1.5, 2.25, 3})
	b := New("B", t0, []float64{4, 5, 6})
	s := mustSet(t, a, b)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 2 || got.Len() != 3 {
		t.Fatalf("round trip size/len = %d/%d", got.Size(), got.Len())
	}
	tr := got.MustGet("A")
	if math.Abs(tr.At(1)-2.25) > 1e-9 {
		t.Fatalf("round trip sample = %v", tr.At(1))
	}
	if !tr.Start.Equal(t0) {
		t.Fatalf("round trip start = %v", tr.Start)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("not,a,header\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	bad := "region,timestamp,carbon_intensity_gco2eq_kwh\nA,not-a-time,1\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("bad timestamp accepted")
	}
	bad = "region,timestamp,carbon_intensity_gco2eq_kwh\nA,2020-01-01T00:00:00Z,xyz\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestQuickSumMatchesMean(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		ci := make([]float64, len(raw))
		for i, v := range raw {
			ci[i] = math.Abs(math.Mod(v, 1000))
			if math.IsNaN(ci[i]) {
				ci[i] = 0
			}
		}
		tr := New("X", t0, ci)
		want := tr.Sum(0, tr.Len()) / float64(tr.Len())
		return math.Abs(tr.Mean()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinSeriesIsLowerEnvelope(t *testing.T) {
	f := func(seed int64) bool {
		n := 16
		mk := func(off float64) []float64 {
			ci := make([]float64, n)
			for i := range ci {
				ci[i] = off + float64((int64(i)*seed)%17+17)
			}
			return ci
		}
		s, err := NewSet([]*Trace{New("A", t0, mk(1)), New("B", t0, mk(2)), New("C", t0, mk(0.5))})
		if err != nil {
			return false
		}
		min := s.MinSeries()
		for i := 0; i < n; i++ {
			for _, code := range s.Regions() {
				if min[i] > s.MustGet(code).At(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
