package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func nan() float64 { return math.NaN() }

func TestRepairInteriorGap(t *testing.T) {
	ci := []float64{10, nan(), nan(), 40, 50}
	fixed, filled, err := Repair(ci)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 2 {
		t.Fatalf("filled = %d", filled)
	}
	want := []float64{10, 20, 30, 40, 50}
	for i := range want {
		if math.Abs(fixed[i]-want[i]) > 1e-9 {
			t.Fatalf("fixed = %v, want %v", fixed, want)
		}
	}
	// Input untouched.
	if !math.IsNaN(ci[1]) {
		t.Fatal("Repair mutated its input")
	}
}

func TestRepairEdgeGaps(t *testing.T) {
	ci := []float64{nan(), nan(), 7, 9, nan()}
	fixed, filled, err := Repair(ci)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 3 {
		t.Fatalf("filled = %d", filled)
	}
	want := []float64{7, 7, 7, 9, 9}
	for i := range want {
		if fixed[i] != want[i] {
			t.Fatalf("fixed = %v, want %v", fixed, want)
		}
	}
}

func TestRepairNoGaps(t *testing.T) {
	ci := []float64{1, 2, 3}
	fixed, filled, err := Repair(ci)
	if err != nil || filled != 0 {
		t.Fatalf("filled = %d, err = %v", filled, err)
	}
	for i := range ci {
		if fixed[i] != ci[i] {
			t.Fatal("values changed")
		}
	}
}

func TestRepairAllNaN(t *testing.T) {
	if _, _, err := Repair([]float64{nan(), nan()}); err == nil {
		t.Fatal("all-NaN series accepted")
	}
}

func TestRepairedSeriesValidates(t *testing.T) {
	ci := []float64{nan(), 100, nan(), nan(), 400, nan()}
	fixed, _, err := Repair(ci)
	if err != nil {
		t.Fatal(err)
	}
	tr := New("X", t0, fixed)
	if err := tr.Validate(); err != nil {
		t.Fatalf("repaired trace invalid: %v", err)
	}
}

func TestQuickRepairRemovesAllNaNs(t *testing.T) {
	f := func(raw []uint8, mask []bool) bool {
		if len(raw) == 0 {
			return true
		}
		ci := make([]float64, len(raw))
		anyValid := false
		for i := range ci {
			if i < len(mask) && mask[i] {
				ci[i] = math.NaN()
			} else {
				ci[i] = float64(raw[i])
				anyValid = true
			}
		}
		fixed, _, err := Repair(ci)
		if !anyValid {
			return err != nil
		}
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range ci {
			if !math.IsNaN(v) {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		for _, v := range fixed {
			if math.IsNaN(v) {
				return false
			}
			// Interpolation never exceeds the valid range.
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResample(t *testing.T) {
	quarterHourly := []float64{1, 2, 3, 4, 10, 10, 10, 10}
	hourly, err := Resample(quarterHourly, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hourly) != 2 || hourly[0] != 2.5 || hourly[1] != 10 {
		t.Fatalf("hourly = %v", hourly)
	}
}

func TestResampleIgnoresNaN(t *testing.T) {
	in := []float64{1, nan(), 3, nan()}
	out, err := Resample(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 3 {
		t.Fatalf("out = %v", out)
	}
	// All-NaN group stays NaN for Repair to handle.
	out, err = Resample([]float64{nan(), nan(), 5, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out[0]) || out[1] != 6 {
		t.Fatalf("out = %v", out)
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := Resample([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("non-divisible length accepted")
	}
	if _, err := Resample([]float64{1}, 0); err == nil {
		t.Fatal("zero factor accepted")
	}
}

func TestResampleIdentity(t *testing.T) {
	in := []float64{4, 5, 6}
	out, err := Resample(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("factor-1 resample changed data: %v", out)
		}
	}
}

func TestGapStats(t *testing.T) {
	ci := []float64{1, nan(), nan(), 4, nan(), 6}
	missing, longest := GapStats(ci)
	if missing != 3 || longest != 2 {
		t.Fatalf("GapStats = %d, %d", missing, longest)
	}
	missing, longest = GapStats([]float64{1, 2})
	if missing != 0 || longest != 0 {
		t.Fatalf("clean GapStats = %d, %d", missing, longest)
	}
}
