// Package scenario implements the paper's §6 what-if analyses on top
// of the temporal and spatial engines:
//
//   - Mixed workloads: only a fraction of the fleet is migratable;
//     migratable jobs run in the instantaneously greenest region,
//     the rest stay home (Figure 11a).
//   - Forecast error: schedules are chosen on an error-injected trace
//     but accounted on the true trace (Figure 11b).
//   - Combined spatial+temporal shifting: migrate to a destination
//     region, then defer within it (Figure 12).
//
// The greener-grid scenario of Figure 11(c–d) needs new traces rather
// than new policies and therefore lives in simgrid (Config.
// ExtraRenewables); the core experiment runner wires it up.
package scenario

import (
	"fmt"

	"carbonshift/internal/rng"
	"carbonshift/internal/stats"
	"carbonshift/internal/trace"
)

// UniformError returns a copy of ci with multiplicative uniform noise:
// each sample becomes ci[h] · (1 + U(-frac, +frac)), clamped at zero.
// This is the paper's §6.2 error model ("from a uniformly random
// distribution").
func UniformError(ci []float64, frac float64, src *rng.Source) ([]float64, error) {
	if frac < 0 {
		return nil, fmt.Errorf("scenario: negative error fraction %v", frac)
	}
	out := make([]float64, len(ci))
	for i, v := range ci {
		e := v * (1 + src.Uniform(-frac, frac))
		if e < 0 {
			e = 0
		}
		out[i] = e
	}
	return out, nil
}

// ForecastImpact is the outcome of scheduling on a forecast and paying
// on the truth.
type ForecastImpact struct {
	// ScheduledCost is the true carbon cost of the schedule chosen on
	// the forecast trace.
	ScheduledCost float64
	// OptimalCost is the cost of the schedule chosen with perfect
	// knowledge.
	OptimalCost float64
}

// IncreaseFrac returns the fractional emissions increase caused by the
// forecast error (0 when the forecast was good enough).
func (f ForecastImpact) IncreaseFrac() float64 {
	if f.OptimalCost == 0 {
		return 0
	}
	return (f.ScheduledCost - f.OptimalCost) / f.OptimalCost
}

// TemporalForecast evaluates an interruptible job scheduled on the
// forecast series but accounted on the true series: the job picks the
// `length` apparently-cheapest hours of its horizon in the forecast,
// then pays the true intensity of those hours.
func TemporalForecast(truth, forecast []float64, arrival, length, slack int) (ForecastImpact, error) {
	if len(truth) != len(forecast) {
		return ForecastImpact{}, fmt.Errorf("scenario: truth (%d) and forecast (%d) lengths differ", len(truth), len(forecast))
	}
	if length < 1 || slack < 0 || arrival < 0 || arrival+length+slack > len(truth) {
		return ForecastImpact{}, fmt.Errorf("scenario: bad job window [%d, %d) in %d hours",
			arrival, arrival+length+slack, len(truth))
	}
	horizonTruth := truth[arrival : arrival+length+slack]
	horizonFcst := forecast[arrival : arrival+length+slack]
	var scheduled float64
	for _, idx := range stats.BottomKIndices(horizonFcst, length) {
		scheduled += horizonTruth[idx]
	}
	return ForecastImpact{
		ScheduledCost: scheduled,
		OptimalCost:   stats.SumBottomK(horizonTruth, length),
	}, nil
}

// SpatialForecast evaluates ∞-migration under forecast error: each
// hour the job moves to the region that looks greenest in the forecast
// and pays that region's true intensity.
func SpatialForecast(truth, forecast *trace.Set, candidates []string, arrival, length int) (ForecastImpact, error) {
	if len(candidates) == 0 {
		return ForecastImpact{}, fmt.Errorf("scenario: no candidate regions")
	}
	if truth.Len() != forecast.Len() {
		return ForecastImpact{}, fmt.Errorf("scenario: truth and forecast sets differ in length")
	}
	if length < 1 || arrival < 0 || arrival+length > truth.Len() {
		return ForecastImpact{}, fmt.Errorf("scenario: bad job window [%d, %d)", arrival, arrival+length)
	}
	var scheduled, optimal float64
	for h := arrival; h < arrival+length; h++ {
		bestFcst, bestFcstV := "", 0.0
		bestTrueV := 0.0
		for i, code := range candidates {
			ftr, ok := forecast.Get(code)
			if !ok {
				return ForecastImpact{}, fmt.Errorf("scenario: region %q not in forecast set", code)
			}
			ttr, ok := truth.Get(code)
			if !ok {
				return ForecastImpact{}, fmt.Errorf("scenario: region %q not in truth set", code)
			}
			if fv := ftr.At(h); i == 0 || fv < bestFcstV {
				bestFcst, bestFcstV = code, fv
			}
			if tv := ttr.At(h); i == 0 || tv < bestTrueV {
				bestTrueV = tv
			}
		}
		scheduled += truth.MustGet(bestFcst).At(h)
		optimal += bestTrueV
	}
	return ForecastImpact{ScheduledCost: scheduled, OptimalCost: optimal}, nil
}

// MixedResult summarizes a mixed migratable/non-migratable fleet.
type MixedResult struct {
	// MigratableFrac is the input fraction of migratable work.
	MigratableFrac float64
	// EmissionRate is the fleet-mean g·CO₂eq per job-hour.
	EmissionRate float64
	// BaselineRate is the all-local fleet-mean rate.
	BaselineRate float64
}

// Reduction returns the absolute per-job-hour saving.
func (m MixedResult) Reduction() float64 { return m.BaselineRate - m.EmissionRate }

// MixedWorkload evaluates a fleet where `frac` of the work in every
// region is migratable. Migratable work runs in the region with the
// lowest intensity at its arrival hour (§6.1: migrated and executed at
// arrival in the greenest region); the rest runs at home. The result
// averages over all origin regions and the given arrival hours.
func MixedWorkload(set *trace.Set, frac float64, arrivals []int) (MixedResult, error) {
	if frac < 0 || frac > 1 {
		return MixedResult{}, fmt.Errorf("scenario: migratable fraction %v outside [0, 1]", frac)
	}
	if len(arrivals) == 0 {
		return MixedResult{}, fmt.Errorf("scenario: no arrival hours")
	}
	codes := set.Regions()
	var aware, baseline float64
	n := 0
	for _, a := range arrivals {
		if a < 0 || a >= set.Len() {
			return MixedResult{}, fmt.Errorf("scenario: arrival %d outside trace", a)
		}
		_, minCI := set.MinAt(a)
		for _, code := range codes {
			local := set.MustGet(code).At(a)
			baseline += local
			aware += frac*minCI + (1-frac)*local
			n++
		}
	}
	return MixedResult{
		MigratableFrac: frac,
		EmissionRate:   aware / float64(n),
		BaselineRate:   baseline / float64(n),
	}, nil
}

// CombinedResult decomposes the saving of migrate-then-defer into its
// spatial and temporal parts for one destination region (Figure 12).
type CombinedResult struct {
	Dest string
	// SpatialSaving is the mean saving from running at the destination
	// instead of at home, without any deferral. Negative when the
	// destination is dirtier than the average origin.
	SpatialSaving float64
	// TemporalSaving is the additional mean saving from deferring and
	// interrupting within the destination under the given slack.
	TemporalSaving float64
}

// NetSaving is the total saving of the combined policy.
func (c CombinedResult) NetSaving() float64 { return c.SpatialSaving + c.TemporalSaving }

// Combined evaluates migrate-to-dest-then-defer for jobs of the given
// length arriving from every origin at each arrival hour. Savings are
// averaged per job and reported in g·CO₂eq.
func Combined(set *trace.Set, dest string, origins []string, length, slack int, arrivals []int) (CombinedResult, error) {
	dtr, ok := set.Get(dest)
	if !ok {
		return CombinedResult{}, fmt.Errorf("scenario: unknown destination %q", dest)
	}
	if len(origins) == 0 || len(arrivals) == 0 {
		return CombinedResult{}, fmt.Errorf("scenario: empty origins or arrivals")
	}
	if length < 1 || slack < 0 {
		return CombinedResult{}, fmt.Errorf("scenario: bad length %d or slack %d", length, slack)
	}
	var spatial, temporalSav float64
	n := 0
	for _, a := range arrivals {
		if a+length+slack > set.Len() {
			return CombinedResult{}, fmt.Errorf("scenario: arrival %d overruns trace", a)
		}
		destBase := dtr.Sum(a, a+length)
		horizon := dtr.CI[a : a+length+slack]
		destShifted := stats.SumBottomK(horizon, length)
		for _, code := range origins {
			otr, ok := set.Get(code)
			if !ok {
				return CombinedResult{}, fmt.Errorf("scenario: unknown origin %q", code)
			}
			spatial += otr.Sum(a, a+length) - destBase
			temporalSav += destBase - destShifted
			n++
		}
	}
	return CombinedResult{
		Dest:           dest,
		SpatialSaving:  spatial / float64(n),
		TemporalSaving: temporalSav / float64(n),
	}, nil
}
