package scenario

import (
	"math"
	"testing"
	"time"

	"carbonshift/internal/rng"
	"carbonshift/internal/trace"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func mkSet(t *testing.T, series map[string][]float64) *trace.Set {
	t.Helper()
	var traces []*trace.Trace
	for code, ci := range series {
		traces = append(traces, trace.New(code, t0, ci))
	}
	s, err := trace.NewSet(traces)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUniformErrorBounds(t *testing.T) {
	src := rng.New(1)
	ci := make([]float64, 1000)
	for i := range ci {
		ci[i] = 400
	}
	noisy, err := UniformError(ci, 0.5, src)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range noisy {
		if v < 200-1e-9 || v > 600+1e-9 {
			t.Fatalf("sample %d = %v outside +/-50%% band", i, v)
		}
	}
	// Zero error is the identity.
	same, err := UniformError(ci, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range same {
		if same[i] != ci[i] {
			t.Fatal("zero error changed the trace")
		}
	}
	if _, err := UniformError(ci, -0.1, src); err == nil {
		t.Fatal("negative error accepted")
	}
}

func TestUniformErrorClampsAtZero(t *testing.T) {
	src := rng.New(2)
	ci := []float64{0.0001}
	for i := 0; i < 100; i++ {
		noisy, err := UniformError(ci, 1.5, src)
		if err != nil {
			t.Fatal(err)
		}
		if noisy[0] < 0 {
			t.Fatalf("negative intensity %v", noisy[0])
		}
	}
}

func TestTemporalForecastPerfectForecast(t *testing.T) {
	truth := []float64{9, 1, 8, 2, 7, 3}
	impact, err := TemporalForecast(truth, truth, 0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if impact.ScheduledCost != impact.OptimalCost {
		t.Fatalf("perfect forecast has nonzero impact: %+v", impact)
	}
	if impact.OptimalCost != 3 { // hours with CI 1 and 2
		t.Fatalf("optimal = %v, want 3", impact.OptimalCost)
	}
	if impact.IncreaseFrac() != 0 {
		t.Fatalf("increase = %v", impact.IncreaseFrac())
	}
}

func TestTemporalForecastBadForecast(t *testing.T) {
	truth := []float64{100, 1, 1, 100}
	// The forecast inverts the valley: scheduler picks the bad hours.
	forecast := []float64{1, 100, 100, 1}
	impact, err := TemporalForecast(truth, forecast, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if impact.ScheduledCost != 200 || impact.OptimalCost != 2 {
		t.Fatalf("impact = %+v", impact)
	}
	if impact.IncreaseFrac() <= 0 {
		t.Fatal("bad forecast shows no increase")
	}
}

func TestTemporalForecastErrors(t *testing.T) {
	if _, err := TemporalForecast([]float64{1}, []float64{1, 2}, 0, 1, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := TemporalForecast([]float64{1, 2}, []float64{1, 2}, 0, 0, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := TemporalForecast([]float64{1, 2}, []float64{1, 2}, 1, 2, 0); err == nil {
		t.Error("overrun accepted")
	}
}

func TestSpatialForecast(t *testing.T) {
	truth := mkSet(t, map[string][]float64{
		"A": {10, 100},
		"B": {100, 10},
	})
	// Forecast swaps the ranking at hour 0 only.
	forecast := mkSet(t, map[string][]float64{
		"A": {100, 100},
		"B": {10, 10},
	})
	impact, err := SpatialForecast(truth, forecast, []string{"A", "B"}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Forecast picks B at both hours: true cost 100 + 10 = 110.
	// Optimal is 10 + 10 = 20.
	if impact.ScheduledCost != 110 || impact.OptimalCost != 20 {
		t.Fatalf("impact = %+v", impact)
	}
}

func TestSpatialForecastPerfect(t *testing.T) {
	truth := mkSet(t, map[string][]float64{
		"A": {10, 100, 30},
		"B": {100, 10, 40},
	})
	impact, err := SpatialForecast(truth, truth, []string{"A", "B"}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if impact.ScheduledCost != impact.OptimalCost {
		t.Fatalf("perfect forecast impact = %+v", impact)
	}
}

func TestSpatialForecastErrors(t *testing.T) {
	s := mkSet(t, map[string][]float64{"A": {1, 2}})
	if _, err := SpatialForecast(s, s, nil, 0, 1); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := SpatialForecast(s, s, []string{"NOPE"}, 0, 1); err == nil {
		t.Error("unknown candidate accepted")
	}
	if _, err := SpatialForecast(s, s, []string{"A"}, 1, 2); err == nil {
		t.Error("overrun accepted")
	}
	short := mkSet(t, map[string][]float64{"A": {1}})
	if _, err := SpatialForecast(s, short, []string{"A"}, 0, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMixedWorkloadEndpoints(t *testing.T) {
	set := mkSet(t, map[string][]float64{
		"CLEAN": {10, 10},
		"DIRTY": {700, 700},
	})
	arrivals := []int{0, 1}
	zero, err := MixedWorkload(set, 0, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Reduction() != 0 {
		t.Fatalf("0%% migratable reduction = %v", zero.Reduction())
	}
	if math.Abs(zero.BaselineRate-355) > 1e-9 {
		t.Fatalf("baseline = %v, want 355", zero.BaselineRate)
	}
	all, err := MixedWorkload(set, 1, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	// Everything runs in CLEAN at 10.
	if math.Abs(all.EmissionRate-10) > 1e-9 {
		t.Fatalf("100%% migratable emission = %v", all.EmissionRate)
	}
}

func TestMixedWorkloadMonotone(t *testing.T) {
	set := mkSet(t, map[string][]float64{
		"A": {100, 300}, "B": {50, 60}, "C": {400, 20},
	})
	arrivals := []int{0, 1}
	prev := math.Inf(1)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		r, err := MixedWorkload(set, frac, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		if r.EmissionRate > prev+1e-9 {
			t.Fatalf("emissions rose at frac %v", frac)
		}
		prev = r.EmissionRate
	}
}

func TestMixedWorkloadErrors(t *testing.T) {
	set := mkSet(t, map[string][]float64{"A": {1}})
	if _, err := MixedWorkload(set, -0.1, []int{0}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := MixedWorkload(set, 1.1, []int{0}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := MixedWorkload(set, 0.5, nil); err == nil {
		t.Error("empty arrivals accepted")
	}
	if _, err := MixedWorkload(set, 0.5, []int{5}); err == nil {
		t.Error("out-of-range arrival accepted")
	}
}

func TestCombinedDecomposition(t *testing.T) {
	set := mkSet(t, map[string][]float64{
		"HOME": {500, 500, 500, 500, 500, 500},
		"DEST": {100, 100, 20, 20, 100, 100},
	})
	r, err := Combined(set, "DEST", []string{"HOME"}, 2, 2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Spatial: home 1000 -> dest baseline 200, saving 800.
	if math.Abs(r.SpatialSaving-800) > 1e-9 {
		t.Fatalf("spatial = %v", r.SpatialSaving)
	}
	// Temporal within DEST: baseline 200 -> hours {20,20} = 40, saving 160.
	if math.Abs(r.TemporalSaving-160) > 1e-9 {
		t.Fatalf("temporal = %v", r.TemporalSaving)
	}
	if math.Abs(r.NetSaving()-960) > 1e-9 {
		t.Fatalf("net = %v", r.NetSaving())
	}
}

func TestCombinedNegativeSpatial(t *testing.T) {
	// Migrating to a dirtier destination must show a negative spatial
	// term (the Netherlands/Korea/Utah cases in Figure 12).
	set := mkSet(t, map[string][]float64{
		"HOME": {100, 100, 100},
		"DEST": {500, 400, 450},
	})
	r, err := Combined(set, "DEST", []string{"HOME"}, 1, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if r.SpatialSaving >= 0 {
		t.Fatalf("spatial saving = %v, want negative", r.SpatialSaving)
	}
}

func TestCombinedErrors(t *testing.T) {
	set := mkSet(t, map[string][]float64{"A": {1, 2}, "B": {3, 4}})
	if _, err := Combined(set, "NOPE", []string{"A"}, 1, 0, []int{0}); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, err := Combined(set, "A", nil, 1, 0, []int{0}); err == nil {
		t.Error("empty origins accepted")
	}
	if _, err := Combined(set, "A", []string{"B"}, 1, 0, nil); err == nil {
		t.Error("empty arrivals accepted")
	}
	if _, err := Combined(set, "A", []string{"B"}, 0, 0, []int{0}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := Combined(set, "A", []string{"B"}, 2, 1, []int{0}); err == nil {
		t.Error("overrun accepted")
	}
	if _, err := Combined(set, "A", []string{"NOPE"}, 1, 0, []int{0}); err == nil {
		t.Error("unknown origin accepted")
	}
}

// TestForecastImpactGrowsWithError is the qualitative Figure 11(b)
// check at unit-test scale: more forecast error, more emissions.
func TestForecastImpactGrowsWithError(t *testing.T) {
	src := rng.New(7)
	truth := make([]float64, 2000)
	for i := range truth {
		truth[i] = 300 + 150*math.Sin(2*math.Pi*float64(i)/24) + src.Uniform(-20, 20)
	}
	meanIncrease := func(errFrac float64) float64 {
		noiseSrc := rng.New(99)
		var acc float64
		n := 0
		for arrival := 0; arrival+200 < len(truth); arrival += 97 {
			forecast, err := UniformError(truth, errFrac, noiseSrc)
			if err != nil {
				t.Fatal(err)
			}
			impact, err := TemporalForecast(truth, forecast, arrival, 8, 150)
			if err != nil {
				t.Fatal(err)
			}
			acc += impact.IncreaseFrac()
			n++
		}
		return acc / float64(n)
	}
	low := meanIncrease(0.1)
	high := meanIncrease(0.8)
	if high <= low {
		t.Fatalf("impact not increasing: %.4f at 10%% vs %.4f at 80%%", low, high)
	}
	if low < 0 {
		t.Fatalf("negative impact %v", low)
	}
}
