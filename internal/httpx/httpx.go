// Package httpx holds the JSON-over-HTTP plumbing shared by the
// repository's services (internal/carbonapi, internal/schedd) and
// their typed clients, so response encoding, error-body mapping, and
// read limits stay identical across them.
package httpx

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"carbonshift/internal/tracing"
)

// MaxBody bounds how much of any response or request body is read.
const MaxBody = 16 << 20

// errorBody is the shared {"error": ...} wire shape every service uses
// for non-200 responses. Backpressure rejections also carry the
// Retry-After hint in-body, so it survives any proxy or client hop
// that only preserves the JSON shape.
type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

// StatusError is the typed form of every non-200 response error
// DecodeResponse produces: the HTTP status code plus the message that
// was already being rendered. Error() strings are unchanged from the
// untyped era; callers that need to branch on the code — a load
// generator telling quota 429s from capacity 503s, a client deciding
// whether to retry — unwrap with errors.As.
type StatusError struct {
	// StatusCode is the HTTP status code (e.g. 429, 503).
	StatusCode int
	// Message is the fully formatted error text.
	Message string
	// RetryAfter is the server's backpressure hint in seconds (the
	// Retry-After header / retry_after body field), 0 when absent.
	RetryAfter int
}

func (e *StatusError) Error() string { return e.Message }

// StatusCodeOf returns the HTTP status code carried by err (directly
// or wrapped), or 0 when err has none.
func StatusCodeOf(err error) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.StatusCode
	}
	return 0
}

// RetryAfterOf returns the Retry-After hint in seconds carried by err
// (directly or wrapped), or 0 when err has none.
func RetryAfterOf(err error) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures past the header are unrecoverable mid-stream;
	// the connection-level error is all the client can see anyway.
	_ = json.NewEncoder(w).Encode(v)
}

// DoJSON issues req, decodes a 200 response into out, and maps any
// other status to an error — using the server's {"error": ...} body
// when one is present. Every error is prefixed with prefix (the client
// package's name).
func DoJSON(hc *http.Client, req *http.Request, prefix string, out any) error {
	return DoRaw(hc, req, prefix, func(statusCode int, status string, body []byte) error {
		return DecodeResponse(statusCode, status, body, prefix, out)
	})
}

// DoRaw issues req, reads the bounded response body, and hands status
// plus body to decode — the non-JSON core of DoJSON, used by clients
// whose 200 responses are binary (schedd's batch-submit ack) while
// errors stay on the shared {"error": ...} shape.
func DoRaw(hc *http.Client, req *http.Request, prefix string, decode func(statusCode int, status string, body []byte) error) error {
	injectTrace(req)
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("%s: %w", prefix, err)
	}
	defer resp.Body.Close()
	body, err := readBody(resp.Body, prefix)
	if err != nil {
		return err
	}
	return decode(resp.StatusCode, resp.Status, body)
}

// readBody reads a response body up to MaxBody. A body that would
// exceed the limit is an explicit error — truncating it and letting
// the JSON decoder fail on the cut would misreport an oversized
// response as a parse error.
func readBody(r io.Reader, prefix string) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r, MaxBody+1))
	if err != nil {
		return nil, fmt.Errorf("%s: reading response: %w", prefix, err)
	}
	if len(body) > MaxBody {
		return nil, fmt.Errorf("%s: response exceeds the %d-byte limit", prefix, MaxBody)
	}
	return body, nil
}

// injectTrace stamps the request context's span context into the
// traceparent header, so a trace started by the caller (the serve
// middleware, or cmd/loadgen's client-side tracer) continues into the
// server. Untraced contexts leave the request untouched.
func injectTrace(req *http.Request) {
	if sc := tracing.FromContext(req.Context()); sc.Valid() {
		req.Header.Set(tracing.Header, sc.Traceparent())
	}
}

// DecodeResponse maps one already-read response to the typed result:
// a 200 body is decoded into out, any other status becomes an error
// carrying the server's {"error": ...} message when the body holds
// one. It is the pure core of DoJSON, separated so the error-mapping
// path can be exercised (and fuzzed) without a live connection.
func DecodeResponse(statusCode int, status string, body []byte, prefix string, out any) error {
	if statusCode != http.StatusOK {
		var apiErr errorBody
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return &StatusError{
				StatusCode: statusCode,
				Message:    fmt.Sprintf("%s: %s: %s", prefix, status, apiErr.Error),
				RetryAfter: apiErr.RetryAfter,
			}
		}
		return &StatusError{StatusCode: statusCode, Message: fmt.Sprintf("%s: unexpected status %s", prefix, status)}
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%s: decoding response: %w", prefix, err)
	}
	return nil
}
