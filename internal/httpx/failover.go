package httpx

// Endpoints is the multi-endpoint failover core shared by the typed
// clients: a sticky rotation over base URLs that survives a primary
// dying (connection refused / reset → try the next endpoint) and
// understands the 421 write-redirect contract — a replica that cannot
// serve a request answers 421 Misdirected Request with a JSON body
// naming the primary ({"error": ..., "primary": "http://..."}), and
// the client jumps straight to that hint (learning it if it was not in
// the configured list) instead of probing blindly. 5xx responses also
// rotate: a dying primary should not stall a client that has a healthy
// standby configured. 4xx responses other than 421 are real answers
// and are returned as-is.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
)

// Endpoints rotates requests across base URLs. Safe for concurrent
// use; the current endpoint is sticky until it fails.
type Endpoints struct {
	mu    sync.Mutex
	bases []string
	cur   int
}

// NewEndpoints validates and deduplicates the base URLs (at least one
// required).
func NewEndpoints(bases []string) (*Endpoints, error) {
	e := &Endpoints{}
	seen := map[string]bool{}
	for _, b := range bases {
		u, err := url.Parse(b)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("httpx: invalid endpoint URL %q", b)
		}
		if !seen[u.String()] {
			seen[u.String()] = true
			e.bases = append(e.bases, u.String())
		}
	}
	if len(e.bases) == 0 {
		return nil, fmt.Errorf("httpx: no endpoints")
	}
	return e, nil
}

// Current returns the endpoint the next request will try first.
func (e *Endpoints) Current() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bases[e.cur]
}

// Len returns how many endpoints are known (configured plus learned).
func (e *Endpoints) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.bases)
}

// rotateFrom advances past base — unless another request already moved
// the cursor, in which case the newer choice wins.
func (e *Endpoints) rotateFrom(base string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bases[e.cur] == base {
		e.cur = (e.cur + 1) % len(e.bases)
	}
}

// redirect jumps to the primary a 421 response hinted at, learning it
// if it was not configured. Invalid hints fall back to a plain
// rotation. It reports whether the endpoint set grew, so Do can widen
// a retry budget computed before the hint arrived.
func (e *Endpoints) redirect(from, primary string) bool {
	u, err := url.Parse(primary)
	if err != nil || u.Scheme == "" || u.Host == "" {
		e.rotateFrom(from)
		return false
	}
	target := u.String()
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, b := range e.bases {
		if b == target {
			e.cur = i
			return false
		}
	}
	e.bases = append(e.bases, target)
	e.cur = len(e.bases) - 1
	return true
}

// isDialError reports a failure that happened before any request byte
// reached a server — connection refused, reset-on-connect, DNS — so
// the request was definitely NOT processed and retrying it elsewhere
// cannot double-execute it.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// DoJSON issues one JSON request against the current endpoint,
// failing over on connection errors, 5xx responses, and 421 primary
// redirects. It tries at most two passes over the known endpoints
// before giving up with the last error. See Do for the retry-safety
// contract.
func (e *Endpoints) DoJSON(ctx context.Context, hc *http.Client, method, path string, in any, prefix string, out any) error {
	var payload []byte
	var contentType string
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return fmt.Errorf("%s: encoding request: %w", prefix, err)
		}
		contentType = "application/json"
	}
	return e.Do(ctx, hc, method, path, contentType, payload, prefix,
		func(statusCode int, status string, body []byte) error {
			return DecodeResponse(statusCode, status, body, prefix, out)
		})
}

// Do is the failover core under DoJSON, generalized over the request
// and response encodings: payload is sent verbatim (nil = no body)
// with contentType, and every final response — success or a status the
// rotation will not retry — goes through decode. Errors other than
// 421 keep the shared {"error": ...} JSON shape regardless of the
// request encoding, so decode can defer to DecodeResponse for them.
//
// Retry safety: a 421 is always retried (the replica explicitly
// refused to process it), and GET/HEAD retry on any failure. A
// non-idempotent request (POST) is only retried when the failure
// proves the server never saw it — a dial error such as connection
// refused, the signature of a dead primary. An ambiguous failure (the
// connection died mid-request or mid-response, or the endpoint
// answered 5xx) is returned to the caller rather than replayed, since
// the write may already have been applied and a blind retry would
// double-submit it.
func (e *Endpoints) Do(ctx context.Context, hc *http.Client, method, path, contentType string, payload []byte, prefix string, decode func(statusCode int, status string, body []byte) error) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	idempotent := method == http.MethodGet || method == http.MethodHead
	var lastErr error
	attempts := 2 * e.Len()
	for i := 0; i <= attempts; i++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%s: %w", prefix, err)
		}
		base := e.Current()
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, body)
		if err != nil {
			return fmt.Errorf("%s: building request: %w", prefix, err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		// Every attempt — first try, 421 redirect, safe replay — carries
		// the SAME trace context from ctx: a failover must not change
		// which trace the request belongs to.
		injectTrace(req)
		resp, err := hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("%s: %s: %w", prefix, base, err)
			if !idempotent && !isDialError(err) {
				// The request may have reached the server before the
				// connection died; replaying it could double-execute.
				return lastErr
			}
			e.rotateFrom(base)
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, MaxBody+1))
		resp.Body.Close()
		if len(respBody) > MaxBody {
			// The endpoint answered with more than any valid response can
			// hold; truncating it would surface as a confusing parse
			// error, and another replica would answer the same way.
			return fmt.Errorf("%s: %s: response exceeds the %d-byte limit", prefix, base, MaxBody)
		}
		if err != nil {
			lastErr = fmt.Errorf("%s: reading response: %w", prefix, err)
			if !idempotent {
				return lastErr // the server answered; the write happened
			}
			e.rotateFrom(base)
			continue
		}
		switch {
		case resp.StatusCode == http.StatusMisdirectedRequest:
			// A follower named its primary; go there next.
			var hint struct {
				Error   string `json:"error"`
				Primary string `json:"primary"`
			}
			json.Unmarshal(respBody, &hint)
			lastErr = fmt.Errorf("%s: %s: misdirected: %s", prefix, base, hint.Error)
			if e.redirect(base, hint.Primary) {
				// The hint taught us a new endpoint after the attempt
				// budget was sized; widen it so the learned primary is
				// guaranteed its turns before we give up.
				attempts = 2 * e.Len()
			}
			continue
		case idempotent && resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable:
			// 5xx on a read = this endpoint is broken; try another. 503
			// is exempt: it is the services' backpressure signal (queue
			// full), a real answer that a standby cannot improve on.
			// Writes are never replayed after a 5xx — the server touched
			// the request, so a retry could double-execute it.
			lastErr = decode(resp.StatusCode, resp.Status, respBody)
			e.rotateFrom(base)
			continue
		default:
			return decode(resp.StatusCode, resp.Status, respBody)
		}
	}
	return fmt.Errorf("%s: all endpoints failed: %w", prefix, lastErr)
}
