package httpx

import (
	"fmt"
	"testing"
)

func TestStatusError(t *testing.T) {
	err := DecodeResponse(429, "429 Too Many Requests", []byte(`{"error":"tenant \"web\": tenant quota exceeded"}`), "schedd", nil)
	if err == nil {
		t.Fatal("429 decoded without error")
	}
	if got := StatusCodeOf(err); got != 429 {
		t.Fatalf("StatusCodeOf = %d, want 429", got)
	}
	want := `schedd: 429 Too Many Requests: tenant "web": tenant quota exceeded`
	if err.Error() != want {
		t.Fatalf("error string changed:\ngot  %q\nwant %q", err.Error(), want)
	}

	// Codes survive wrapping.
	wrapped := fmt.Errorf("outer: %w", err)
	if got := StatusCodeOf(wrapped); got != 429 {
		t.Fatalf("wrapped StatusCodeOf = %d, want 429", got)
	}

	// Non-status errors report 0.
	if got := StatusCodeOf(fmt.Errorf("plain")); got != 0 {
		t.Fatalf("plain error StatusCodeOf = %d, want 0", got)
	}
	if got := StatusCodeOf(nil); got != 0 {
		t.Fatalf("nil StatusCodeOf = %d, want 0", got)
	}
}
