package httpx

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

type echo struct {
	Name string `json:"name"`
}

func jsonServer(t *testing.T, name string, status func() int, primary func() string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := status()
		switch st {
		case http.StatusOK:
			WriteJSON(w, st, echo{Name: name})
		case http.StatusMisdirectedRequest:
			WriteJSON(w, st, map[string]string{"error": "follower", "primary": primary()})
		default:
			WriteJSON(w, st, map[string]string{"error": "boom"})
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func ok() int { return http.StatusOK }

func TestEndpointsValidation(t *testing.T) {
	if _, err := NewEndpoints(nil); err == nil {
		t.Error("accepted an empty endpoint list")
	}
	if _, err := NewEndpoints([]string{"not-a-url"}); err == nil {
		t.Error("accepted a schemeless URL")
	}
	e, err := NewEndpoints([]string{"http://a:1", "http://a:1", "http://b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 2 {
		t.Errorf("duplicates kept: Len = %d, want 2", e.Len())
	}
}

// TestFailoverOnRefusedConnection: a dead first endpoint rotates to a
// live one, and the choice sticks for the next request.
func TestFailoverOnRefusedConnection(t *testing.T) {
	live := jsonServer(t, "live", ok, nil)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // refused from now on

	e, err := NewEndpoints([]string{dead.URL, live.URL})
	if err != nil {
		t.Fatal(err)
	}
	var out echo
	if err := e.DoJSON(context.Background(), nil, http.MethodGet, "/x", nil, "test", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "live" {
		t.Fatalf("answered by %q", out.Name)
	}
	if e.Current() != live.URL {
		t.Fatalf("rotation did not stick: current = %s", e.Current())
	}
}

// TestFailoverOn421Redirect: a follower's primary hint is followed
// even when the primary was never configured.
func TestFailoverOn421Redirect(t *testing.T) {
	primary := jsonServer(t, "primary", ok, nil)
	follower := jsonServer(t, "follower",
		func() int { return http.StatusMisdirectedRequest },
		func() string { return primary.URL })

	e, err := NewEndpoints([]string{follower.URL}) // primary unknown!
	if err != nil {
		t.Fatal(err)
	}
	var out echo
	if err := e.DoJSON(context.Background(), nil, http.MethodPost, "/x", echo{Name: "req"}, "test", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "primary" {
		t.Fatalf("answered by %q, want the hinted primary", out.Name)
	}
	if e.Len() != 2 || e.Current() != primary.URL {
		t.Fatalf("hint not learned: len=%d current=%s", e.Len(), e.Current())
	}
}

// TestFailoverOn5xx: a broken endpoint rotates; 503 backpressure does
// not (it is a real answer).
func TestFailoverOn5xx(t *testing.T) {
	var firstStatus atomic.Int64
	firstStatus.Store(http.StatusInternalServerError)
	broken := jsonServer(t, "broken", func() int { return int(firstStatus.Load()) }, nil)
	live := jsonServer(t, "live", ok, nil)

	e, err := NewEndpoints([]string{broken.URL, live.URL})
	if err != nil {
		t.Fatal(err)
	}
	var out echo
	if err := e.DoJSON(context.Background(), nil, http.MethodGet, "/x", nil, "test", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "live" {
		t.Fatalf("answered by %q", out.Name)
	}

	e2, err := NewEndpoints([]string{broken.URL, live.URL})
	if err != nil {
		t.Fatal(err)
	}
	firstStatus.Store(http.StatusServiceUnavailable)
	err = e2.DoJSON(context.Background(), nil, http.MethodGet, "/x", nil, "test", &out)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("503 err = %v, want the server's backpressure error", err)
	}
	if e2.Current() != broken.URL {
		t.Fatal("503 rotated the endpoint; backpressure must stay a real answer")
	}
}

// TestNoReplayOfAmbiguousWrites: a POST the server answered with 5xx
// — or whose connection died after dialing — may already have been
// applied, so it must surface as an error instead of being replayed
// on another endpoint.
func TestNoReplayOfAmbiguousWrites(t *testing.T) {
	broken := jsonServer(t, "broken", func() int { return http.StatusInternalServerError }, nil)
	live := jsonServer(t, "live", ok, nil)
	e, err := NewEndpoints([]string{broken.URL, live.URL})
	if err != nil {
		t.Fatal(err)
	}
	var out echo
	err = e.DoJSON(context.Background(), nil, http.MethodPost, "/x", echo{Name: "w"}, "test", &out)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("5xx POST err = %v, want the server error surfaced", err)
	}
	if e.Current() != broken.URL {
		t.Fatal("5xx POST rotated endpoints; a write must not be replayed after the server touched it")
	}
	// The same POST against a DEAD endpoint (dial error — provably
	// never delivered) must still fail over.
	dead := httptest.NewServer(nil)
	dead.Close()
	e2, err := NewEndpoints([]string{dead.URL, live.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.DoJSON(context.Background(), nil, http.MethodPost, "/x", echo{Name: "w"}, "test", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "live" {
		t.Fatalf("answered by %q", out.Name)
	}
}

// TestFailoverAllDead: every endpoint failing yields the last error,
// not a hang.
func TestFailoverAllDead(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close()
	e, err := NewEndpoints([]string{dead.URL})
	if err != nil {
		t.Fatal(err)
	}
	var out echo
	err = e.DoJSON(context.Background(), nil, http.MethodGet, "/x", nil, "test", &out)
	if err == nil || !strings.Contains(err.Error(), "all endpoints failed") {
		t.Fatalf("err = %v", err)
	}
}

// TestFailover421Loop: two followers pointing at each other terminate
// with an error instead of redirecting forever.
func TestFailover421Loop(t *testing.T) {
	var aURL, bURL atomic.Value
	mk := func(self string, peer *atomic.Value) *httptest.Server {
		return jsonServer(t, self,
			func() int { return http.StatusMisdirectedRequest },
			func() string { return peer.Load().(string) })
	}
	a := mk("a", &bURL)
	b := mk("b", &aURL)
	aURL.Store(a.URL)
	bURL.Store(b.URL)

	e, err := NewEndpoints([]string{a.URL, b.URL})
	if err != nil {
		t.Fatal(err)
	}
	var out echo
	err = e.DoJSON(context.Background(), nil, http.MethodPost, "/x", nil, "test", &out)
	if err == nil || !strings.Contains(err.Error(), "misdirected") {
		t.Fatalf("err = %v", err)
	}
}

// TestRedirectGrowsAttemptBudget is the regression test for the stale
// failover bound: Do used to size its attempt budget (2 * Len) once,
// before any 421 hint could teach it new endpoints, so a primary
// learned late in the pass could exhaust the budget without ever being
// tried. With one configured endpoint the old budget allowed 3
// attempts; a redirect chain of three followers needs a 4th to reach
// the real primary, so this chain only resolves when the budget is
// recomputed as the endpoint set grows.
func TestRedirectGrowsAttemptBudget(t *testing.T) {
	primary := jsonServer(t, "primary", ok, nil)
	hop := primary.URL
	var chain []*httptest.Server
	for i := 0; i < 3; i++ {
		next := hop
		f := jsonServer(t, "follower",
			func() int { return http.StatusMisdirectedRequest },
			func() string { return next })
		chain = append(chain, f)
		hop = f.URL
	}

	e, err := NewEndpoints([]string{chain[len(chain)-1].URL})
	if err != nil {
		t.Fatal(err)
	}
	var out echo
	if err := e.DoJSON(context.Background(), nil, http.MethodPost, "/x", echo{Name: "req"}, "test", &out); err != nil {
		t.Fatalf("redirect chain not followed to the primary: %v", err)
	}
	if out.Name != "primary" {
		t.Fatalf("answered by %q, want the chained primary", out.Name)
	}
	if e.Len() != 4 || e.Current() != primary.URL {
		t.Fatalf("chain not learned: len=%d current=%s", e.Len(), e.Current())
	}
}

// TestDoJSONBodyResent: the request body is re-sent on each attempt,
// not consumed by the first failed one.
func TestDoJSONBodyResent(t *testing.T) {
	var got atomic.Value
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in echo
		json.NewDecoder(r.Body).Decode(&in)
		got.Store(in.Name)
		WriteJSON(w, http.StatusOK, echo{Name: "primary"})
	}))
	t.Cleanup(primary.Close)
	dead := httptest.NewServer(nil)
	dead.Close()

	e, err := NewEndpoints([]string{dead.URL, primary.URL})
	if err != nil {
		t.Fatal(err)
	}
	var out echo
	if err := e.DoJSON(context.Background(), nil, http.MethodPost, "/x", echo{Name: "payload"}, "test", &out); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "payload" {
		t.Fatalf("primary received body %q", got.Load())
	}
}
