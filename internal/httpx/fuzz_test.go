package httpx

import (
	"encoding/json"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzHTTPXError fuzzes the shared client-side response decoder over
// arbitrary status codes and bodies — the surface every typed client
// (carbonapi, schedd) funnels server responses through. Invariants:
// never panic, never succeed on a non-200 status, never succeed on a
// 200 with a malformed body, and always prefix errors with the client
// name.
func FuzzHTTPXError(f *testing.F) {
	f.Add(200, []byte(`{"status":"ok"}`))
	f.Add(200, []byte(`{not json`))
	f.Add(400, []byte(`{"error":"bad request"}`))
	f.Add(503, []byte(`{"error":""}`))
	f.Add(500, []byte(``))
	f.Add(404, []byte(`[1,2,3]`))
	f.Add(-7, []byte(`{"error":"negative status"}`))
	f.Fuzz(func(t *testing.T, code int, body []byte) {
		var out map[string]any
		err := DecodeResponse(code, "fuzzed status", body, "fuzzclient", &out)
		if code != 200 {
			if err == nil {
				t.Fatalf("status %d decoded without error", code)
			}
		} else if err == nil && !json.Valid(body) {
			t.Fatalf("invalid 200 body %q decoded without error", body)
		}
		if err != nil && !strings.HasPrefix(err.Error(), "fuzzclient: ") {
			t.Fatalf("error missing client prefix: %v", err)
		}
		// Every non-200 error is a typed StatusError carrying the code.
		if code != 200 && err != nil {
			if got := StatusCodeOf(err); got != code {
				t.Fatalf("status %d error carries code %d", code, got)
			}
		}
	})
}

// FuzzWriteJSONRoundTrip is a cheap sanity check alongside the error
// fuzz: whatever error string a server writes must survive the
// WriteJSON -> DecodeResponse round trip verbatim.
func FuzzWriteJSONRoundTrip(f *testing.F) {
	f.Add("queue full")
	f.Add("")
	f.Add(`quotes " and \ slashes`)
	f.Fuzz(func(t *testing.T, msg string) {
		if !utf8.ValidString(msg) {
			t.Skip() // Marshal substitutes U+FFFD, so the round trip can't be verbatim
		}
		body, err := json.Marshal(errorBody{Error: msg})
		if err != nil {
			t.Skip()
		}
		var out map[string]any
		decodeErr := DecodeResponse(503, "503 Service Unavailable", body, "c", &out)
		if decodeErr == nil {
			t.Fatal("non-200 decoded without error")
		}
		if msg != "" && !strings.Contains(decodeErr.Error(), msg) {
			t.Fatalf("server message %q lost in %v", msg, decodeErr)
		}
	})
}
