package httpx

// Satellite coverage: trace-context propagation through the failover
// client. The invariant under test — a 421 primary redirect and a
// safe replay after a dial error are RETRIES of the same logical
// request, so every attempt must carry the original trace ID from the
// caller's context, never mint a new one.

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"carbonshift/internal/tracing"
)

func tracedContext(t *testing.T) (context.Context, tracing.SpanContext) {
	t.Helper()
	tr := tracing.New(tracing.Config{SampleEvery: 1})
	ctx, _ := tr.StartRoot(context.Background(), "client")
	sc := tracing.FromContext(ctx)
	if !sc.Valid() || !sc.Sampled {
		t.Fatalf("root context not sampled: %+v", sc)
	}
	return ctx, sc
}

func TestTraceSurvives421Redirect(t *testing.T) {
	var primarySeen []string
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primarySeen = append(primarySeen, r.Header.Get(tracing.Header))
		WriteJSON(w, http.StatusOK, map[string]int{"accepted": 1})
	}))
	defer primary.Close()

	var replicaSeen []string
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		replicaSeen = append(replicaSeen, r.Header.Get(tracing.Header))
		WriteJSON(w, http.StatusMisdirectedRequest,
			map[string]string{"error": "read-only follower", "primary": primary.URL})
	}))
	defer replica.Close()

	eps, err := NewEndpoints([]string{replica.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, sc := tracedContext(t)
	var out map[string]int
	if err := eps.DoJSON(ctx, nil, http.MethodPost, "/v1/jobs", map[string]int{"n": 1}, "test", &out); err != nil {
		t.Fatalf("DoJSON after redirect: %v", err)
	}

	if len(replicaSeen) != 1 || len(primarySeen) != 1 {
		t.Fatalf("attempts: replica=%d primary=%d, want 1 each", len(replicaSeen), len(primarySeen))
	}
	for i, h := range append(replicaSeen, primarySeen...) {
		got, ok := tracing.ParseTraceparent(h)
		if !ok || got.TraceID != sc.TraceID {
			t.Fatalf("attempt %d carried traceparent %q, want trace %s", i, h, sc.TraceID)
		}
		if !got.Sampled {
			t.Fatalf("attempt %d lost the sampled flag: %q", i, h)
		}
	}
}

func TestTraceSurvivesSafeReplay(t *testing.T) {
	// A dead endpoint whose port is provably closed: listen, note the
	// address, close — connection refused is a dial error, the one
	// failure that makes a POST replay safe.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + l.Addr().String()
	l.Close()

	var liveSeen []string
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liveSeen = append(liveSeen, r.Header.Get(tracing.Header))
		WriteJSON(w, http.StatusOK, map[string]int{"accepted": 1})
	}))
	defer live.Close()

	eps, err := NewEndpoints([]string{dead, live.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, sc := tracedContext(t)
	var out map[string]int
	if err := eps.DoJSON(ctx, nil, http.MethodPost, "/v1/jobs", map[string]int{"n": 1}, "test", &out); err != nil {
		t.Fatalf("DoJSON after replay: %v", err)
	}

	if len(liveSeen) != 1 {
		t.Fatalf("live endpoint saw %d attempts, want 1", len(liveSeen))
	}
	got, ok := tracing.ParseTraceparent(liveSeen[0])
	if !ok || got.TraceID != sc.TraceID || !got.Sampled {
		t.Fatalf("replayed attempt carried %q, want sampled trace %s", liveSeen[0], sc.TraceID)
	}
}

func TestUntracedContextAddsNoHeader(t *testing.T) {
	var seen *string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := r.Header.Get(tracing.Header)
		seen = &h
		WriteJSON(w, http.StatusOK, map[string]int{})
	}))
	defer srv.Close()
	eps, err := NewEndpoints([]string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := eps.DoJSON(context.Background(), nil, http.MethodGet, "/v1/stats", nil, "test", &out); err != nil {
		t.Fatal(err)
	}
	if seen == nil || *seen != "" {
		t.Fatalf("untraced request must not carry a traceparent, got %v", seen)
	}
}
