// Package latency models inter-region network round-trip times,
// standing in for the Google Cloud inter-region latency measurements
// the paper uses to constrain spatial migration (Figure 6a).
//
// The model is geodesic: RTT grows linearly with great-circle distance
// at fiber propagation speed, inflated by a routing factor, plus a
// fixed switching overhead. Measured cloud inter-region RTTs track
// this model closely, and the experiments only need the induced
// reachability sets (which regions are within an SLO of an origin), not
// millisecond-exact values.
package latency

import (
	"fmt"
	"math"
	"sort"

	"carbonshift/internal/regions"
)

const (
	// earthRadiusKm is the mean Earth radius.
	earthRadiusKm = 6371.0
	// fiberKmPerMs is the one-way propagation speed of light in fiber
	// (~2/3 c), in km per millisecond.
	fiberKmPerMs = 200.0
	// routeInflation accounts for fiber paths being longer than the
	// great circle.
	routeInflation = 1.3
	// switchingOverheadMs is the fixed per-connection overhead.
	switchingOverheadMs = 2.0
)

// Haversine returns the great-circle distance in kilometres between
// two coordinates given in degrees.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const rad = math.Pi / 180
	phi1, phi2 := lat1*rad, lat2*rad
	dPhi := (lat2 - lat1) * rad
	dLam := (lon2 - lon1) * rad
	a := math.Sin(dPhi/2)*math.Sin(dPhi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dLam/2)*math.Sin(dLam/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// RTT converts a great-circle distance to a modeled round-trip time in
// milliseconds.
func RTT(km float64) float64 {
	return 2*km*routeInflation/fiberKmPerMs + switchingOverheadMs
}

// Matrix is a precomputed all-pairs RTT table over a region set.
type Matrix struct {
	codes []string
	index map[string]int
	ms    [][]float64
}

// NewMatrix builds the RTT matrix for the given regions.
func NewMatrix(regs []regions.Region) *Matrix {
	m := &Matrix{
		codes: make([]string, len(regs)),
		index: make(map[string]int, len(regs)),
		ms:    make([][]float64, len(regs)),
	}
	for i, r := range regs {
		m.codes[i] = r.Code
		m.index[r.Code] = i
	}
	for i, a := range regs {
		m.ms[i] = make([]float64, len(regs))
		for j, b := range regs {
			if i == j {
				continue // intra-region RTT is 0
			}
			m.ms[i][j] = RTT(Haversine(a.Lat, a.Lon, b.Lat, b.Lon))
		}
	}
	return m
}

// Codes returns the region codes covered by the matrix, in build order.
func (m *Matrix) Codes() []string {
	out := make([]string, len(m.codes))
	copy(out, m.codes)
	return out
}

// Between returns the modeled RTT in milliseconds between two regions.
func (m *Matrix) Between(a, b string) (float64, error) {
	i, ok := m.index[a]
	if !ok {
		return 0, fmt.Errorf("latency: unknown region %q", a)
	}
	j, ok := m.index[b]
	if !ok {
		return 0, fmt.Errorf("latency: unknown region %q", b)
	}
	return m.ms[i][j], nil
}

// Within returns the codes of all regions reachable from origin within
// sloMs round-trip milliseconds, sorted. The origin itself is always
// included (intra-region latency is zero).
func (m *Matrix) Within(origin string, sloMs float64) ([]string, error) {
	i, ok := m.index[origin]
	if !ok {
		return nil, fmt.Errorf("latency: unknown region %q", origin)
	}
	var out []string
	for j, code := range m.codes {
		if m.ms[i][j] <= sloMs {
			out = append(out, code)
		}
	}
	sort.Strings(out)
	return out, nil
}

// MaxRTT returns the largest RTT in the matrix — the latency needed for
// unconstrained global migration.
func (m *Matrix) MaxRTT() float64 {
	var max float64
	for i := range m.ms {
		for _, v := range m.ms[i] {
			if v > max {
				max = v
			}
		}
	}
	return max
}
