package latency

import (
	"math"
	"testing"
	"testing/quick"

	"carbonshift/internal/regions"
)

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		name                   string
		lat1, lon1, lat2, lon2 float64
		wantKm, tol            float64
	}{
		{"same point", 40, -74, 40, -74, 0, 0.001},
		{"NYC-London", 40.71, -74.01, 51.51, -0.13, 5570, 60},
		{"SF-Tokyo", 37.77, -122.42, 35.68, 139.69, 8280, 90},
		{"antipodal-ish", 0, 0, 0, 180, math.Pi * 6371, 1},
	}
	for _, c := range cases {
		got := Haversine(c.lat1, c.lon1, c.lat2, c.lon2)
		if math.Abs(got-c.wantKm) > c.tol {
			t.Errorf("%s: %v km, want %v +/- %v", c.name, got, c.wantKm, c.tol)
		}
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		lat1 := float64(a%90) / 1.1
		lon1 := float64(b % 180)
		lat2 := float64(c%90) / 1.1
		lon2 := float64(d % 180)
		x := Haversine(lat1, lon1, lat2, lon2)
		y := Haversine(lat2, lon2, lat1, lon1)
		return math.Abs(x-y) < 1e-9 && x >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRTTModel(t *testing.T) {
	if got := RTT(0); got != switchingOverheadMs {
		t.Fatalf("RTT(0) = %v", got)
	}
	// 1000 km: 2*1000*1.3/200 + 2 = 15 ms.
	if got := RTT(1000); math.Abs(got-15) > 1e-9 {
		t.Fatalf("RTT(1000) = %v, want 15", got)
	}
	if RTT(5000) <= RTT(1000) {
		t.Fatal("RTT not monotone in distance")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(regions.All())
	if len(m.Codes()) != 123 {
		t.Fatalf("matrix covers %d regions", len(m.Codes()))
	}
	self, err := m.Between("SE", "SE")
	if err != nil || self != 0 {
		t.Fatalf("self RTT = %v, %v", self, err)
	}
	ab, err := m.Between("SE", "IN-WE")
	if err != nil {
		t.Fatal(err)
	}
	ba, err := m.Between("IN-WE", "SE")
	if err != nil {
		t.Fatal(err)
	}
	if ab != ba {
		t.Fatalf("asymmetric RTT: %v vs %v", ab, ba)
	}
	if ab < 30 || ab > 150 {
		t.Fatalf("Stockholm-Mumbai RTT = %v ms, want a plausible intercontinental value", ab)
	}
	if _, err := m.Between("SE", "NOPE"); err == nil {
		t.Fatal("unknown region accepted")
	}
	if _, err := m.Between("NOPE", "SE"); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestNeighborsCloserThanAntipodes(t *testing.T) {
	m := NewMatrix(regions.All())
	seNo, _ := m.Between("SE", "NO")
	seAu, _ := m.Between("SE", "AU-NSW")
	if seNo >= seAu {
		t.Fatalf("Stockholm-Oslo (%v) not closer than Stockholm-Sydney (%v)", seNo, seAu)
	}
}

func TestWithin(t *testing.T) {
	m := NewMatrix(regions.All())
	// Zero SLO: only the origin.
	got, err := m.Within("FR", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "FR" {
		t.Fatalf("Within(FR, 0) = %v", got)
	}
	// 25 ms from Paris reaches Western Europe but not the US.
	got, err = m.Within("FR", 25)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool)
	for _, c := range got {
		set[c] = true
	}
	for _, want := range []string{"FR", "BE", "GB", "CH", "NL", "DE"} {
		if !set[want] {
			t.Errorf("Within(FR, 25ms) missing %s: %v", want, got)
		}
	}
	if set["US-CA"] || set["JP-TK"] {
		t.Errorf("Within(FR, 25ms) reaches across oceans: %v", got)
	}
	// A large SLO reaches everything.
	got, err = m.Within("FR", m.MaxRTT())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 123 {
		t.Fatalf("Within(FR, max) = %d regions, want 123", len(got))
	}
	if _, err := m.Within("NOPE", 10); err == nil {
		t.Fatal("unknown origin accepted")
	}
}

func TestWithinMonotoneInSLO(t *testing.T) {
	m := NewMatrix(regions.All())
	prev := 0
	for _, slo := range []float64{0, 10, 25, 50, 100, 150, 250} {
		got, err := m.Within("US-VA", slo)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) < prev {
			t.Fatalf("reachable set shrank at SLO %v: %d < %d", slo, len(got), prev)
		}
		prev = len(got)
	}
}

// TestGlobalReachabilityAt250ms checks the paper's observation that a
// ~250 ms budget suffices for any region to reach the greenest region.
func TestGlobalReachabilityAt250ms(t *testing.T) {
	m := NewMatrix(regions.All())
	for _, code := range m.Codes() {
		got, err := m.Within(code, 250)
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[string]bool, len(got))
		for _, c := range got {
			set[c] = true
		}
		if !set["SE"] {
			rtt, _ := m.Between(code, "SE")
			t.Errorf("%s cannot reach Sweden within 250 ms (RTT %v)", code, rtt)
		}
	}
}

func TestMaxRTTPlausible(t *testing.T) {
	m := NewMatrix(regions.All())
	max := m.MaxRTT()
	if max < 150 || max > 300 {
		t.Fatalf("MaxRTT = %v ms, want a plausible global diameter", max)
	}
}

func BenchmarkNewMatrix(b *testing.B) {
	regs := regions.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMatrix(regs)
	}
}
