// Package tracing is a dependency-free request tracer for the
// repository's services: W3C-traceparent-style trace and span IDs,
// context propagation, monotonic span timings, head-based sampling
// with an always-sample-on-slow escape hatch, and a bounded in-memory
// ring of recent traces served over GET /debug/traces (handler.go).
// It answers the question /metrics cannot: "why was THIS request
// slow?" — which phase (decode, admission lock wait, journal append,
// group-commit fsync, step catch-up, replication apply) the time went
// to, for one specific request.
//
// The design mirrors internal/metrics: everything is nil-safe — a nil
// *Tracer and a nil *Span no-op on every method, so instrumented code
// never branches on "is tracing on" — and disabling tracing is an
// opt-out (schedd.WithoutTracing), not an opt-in.
//
// Sampling is head-based: the decision is made once, when a trace is
// minted, and propagated in the traceparent sampled flag so every
// downstream hop (and, via the journal record, the replication
// follower) agrees. Locally-minted roots sample 1 in Config.
// SampleEvery deterministically; a request arriving with a sampled
// traceparent is always recorded (the caller already paid for the
// decision). The escape hatch: an UNsampled operation that turns out
// slower than Config.SlowThreshold is recorded after the fact as a
// single root span — the tail outliers an operator is hunting are
// never lost to the sampler, they just lack child detail.
//
// Cross-process join semantics: a trace ID minted here is 16 random
// bytes; any process may Record spans under it. internal/schedd stamps
// the sampled trace ID into the admission journal record, the
// replication stream carries the record verbatim, and the follower
// Records its apply span under the same ID — so one trace spans two
// processes, queryable on either side's /debug/traces by trace_id.
//
// Span timings use time.Time's monotonic reading (every span start
// comes from time.Now in-process), so durations are immune to wall-
// clock steps; the wall-clock half of the reading orders spans across
// processes well enough for a waterfall.
package tracing

import (
	"context"
	"encoding/hex"
	"log/slog"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the propagation header, per the W3C Trace Context spec.
const Header = "traceparent"

// Defaults for Config.
const (
	DefaultSampleEvery   = 16
	DefaultSlowThreshold = 250 * time.Millisecond
	DefaultRingSize      = 256
	DefaultMaxSpans      = 64
)

// TraceID identifies one end-to-end request across processes.
type TraceID [16]byte

// IsZero reports the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes a 32-hex-digit trace ID (the /debug/traces and
// traceparent spelling). The all-zero ID is invalid per the spec.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// SpanContext is the propagated part of a span: who the trace is, who
// the current span is, and whether the head sampler kept it.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports a usable (non-zero) context.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context in W3C form:
// "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = hex.AppendEncode(b, sc.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.SpanID[:])
	if sc.Sampled {
		b = append(b, '-', '0', '1')
	} else {
		b = append(b, '-', '0', '0')
	}
	return string(b)
}

// ParseTraceparent decodes a W3C traceparent header. Unknown versions,
// malformed fields, and all-zero IDs are rejected (ok=false) — a
// hostile or garbled header silently starts a fresh trace instead of
// poisoning anything.
func ParseTraceparent(h string) (SpanContext, bool) {
	// version "00": "00-" + 32 + "-" + 16 + "-" + 2 = 55 bytes.
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&1 != 0
	return sc, true
}

// Attr is one span annotation. Values are strings so the dump JSON
// stays trivially stable; use Int for numbers.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Config tunes a Tracer. The zero value means "all defaults".
type Config struct {
	// SampleEvery head-samples 1 in N locally-minted traces (1 = every
	// trace, 0 = DefaultSampleEvery, negative = never sample — IDs are
	// still minted and propagated, only recording is off).
	SampleEvery int
	// SlowThreshold is the always-sample escape hatch: an unsampled
	// operation at least this slow is recorded anyway, as a root-only
	// trace (0 = DefaultSlowThreshold, negative = disabled).
	SlowThreshold time.Duration
	// RingSize bounds how many recent traces are retained (0 =
	// DefaultRingSize).
	RingSize int
	// MaxSpans bounds spans kept per trace; extras are counted as
	// dropped (0 = DefaultMaxSpans).
	MaxSpans int
}

// Tracer records spans into a bounded ring of recent traces. Safe for
// concurrent use; a nil *Tracer no-ops everywhere.
type Tracer struct {
	sampleEvery int
	slow        time.Duration
	maxSpans    int

	minted atomic.Uint64 // locally-minted root counter for 1-in-N sampling

	mu    sync.Mutex
	ring  []*traceEntry // fixed capacity, nil until used
	next  int           // ring slot the next new trace takes
	index map[TraceID]*traceEntry
}

// traceEntry accumulates the recorded spans of one trace.
type traceEntry struct {
	id      TraceID
	spans   []spanData
	dropped int
}

type spanData struct {
	spanID SpanID
	parent SpanID
	name   string
	start  time.Time
	dur    time.Duration
	attrs  []Attr
}

// New builds a Tracer from cfg (zero value = defaults).
func New(cfg Config) *Tracer {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	return &Tracer{
		sampleEvery: cfg.SampleEvery,
		slow:        cfg.SlowThreshold,
		maxSpans:    cfg.MaxSpans,
		ring:        make([]*traceEntry, cfg.RingSize),
		index:       make(map[TraceID]*traceEntry, cfg.RingSize),
	}
}

// Slow reports whether d crosses the always-sample threshold.
func (t *Tracer) Slow(d time.Duration) bool {
	return t != nil && t.slow > 0 && d >= t.slow
}

// shouldSample is the head sampler for locally-minted roots: a
// deterministic 1-in-N over a shared counter (every Nth root), so unit
// tests and benchmarks see an exact rate rather than a coin flip.
func (t *Tracer) shouldSample() bool {
	if t == nil || t.sampleEvery <= 0 {
		return false
	}
	if t.sampleEvery == 1 {
		return true
	}
	return t.minted.Add(1)%uint64(t.sampleEvery) == 0
}

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		putUint64(id[0:8], rand.Uint64())
		putUint64(id[8:16], rand.Uint64())
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		putUint64(id[:], rand.Uint64())
	}
	return id
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// Span is one in-flight timed operation. Nil-safe: a nil *Span (the
// not-recording case) no-ops on every method, so call sites never
// branch.
type Span struct {
	tr     *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
}

// Context returns the span's propagation context (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetName renames the span — the serve middleware uses it to stamp the
// matched route pattern, which the mux only knows after the handler
// ran.
func (s *Span) SetName(name string) {
	if s != nil {
		s.name = name
	}
}

// SetAttr appends one annotation.
func (s *Span) SetAttr(a Attr) {
	if s != nil {
		s.attrs = append(s.attrs, a)
	}
}

// End stamps the monotonic duration and records the span into the
// tracer's ring. Call exactly once; a nil span no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.insert(s.sc.TraceID, spanData{
		spanID: s.sc.SpanID,
		parent: s.parent,
		name:   s.name,
		start:  s.start,
		dur:    time.Since(s.start),
		attrs:  s.attrs,
	})
}

// --- context propagation ---

type ctxKey struct{}

// ctxVal rides the context: the current span context always, the
// recording span only when the trace is sampled, and the tracer so
// child spans land in the right ring.
type ctxVal struct {
	sc   SpanContext
	span *Span
	tr   *Tracer
}

// FromContext returns the current span context (zero when the request
// is untraced) — the input to header injection and log stamping.
func FromContext(ctx context.Context) SpanContext {
	v, _ := ctx.Value(ctxKey{}).(ctxVal)
	return v.sc
}

// StartSpan begins a child span of the context's current span. When the
// trace is not being recorded (unsampled, or no tracer) it returns the
// context unchanged and a nil span — both safe to use.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	v, _ := ctx.Value(ctxKey{}).(ctxVal)
	if v.span == nil || v.tr == nil {
		return ctx, nil
	}
	child := &Span{
		tr:     v.tr,
		sc:     SpanContext{TraceID: v.sc.TraceID, SpanID: newSpanID(), Sampled: true},
		parent: v.sc.SpanID,
		name:   name,
		start:  time.Now(),
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{sc: child.sc, span: child, tr: v.tr}), child
}

// StartRoot mints a new local trace (head sampling applies) and begins
// its root span — the client-side entry point; servers continuing an
// incoming traceparent use StartRemote. The returned context carries
// the span context even when unsampled, so the traceparent still
// propagates (with the sampled flag off) and log lines still get IDs.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.startRoot(ctx, SpanContext{TraceID: newTraceID(), Sampled: t.shouldSample()}, SpanID{}, name)
}

// StartRemote begins the server-side root span for a request that may
// carry a traceparent header. A valid header continues that trace —
// its sampling decision wins — with the header's span as parent; an
// absent or malformed one mints a fresh locally-sampled trace.
func (t *Tracer) StartRemote(ctx context.Context, traceparent, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent, ok := ParseTraceparent(traceparent); ok {
		return t.startRoot(ctx, SpanContext{TraceID: parent.TraceID, Sampled: parent.Sampled}, parent.SpanID, name)
	}
	return t.startRoot(ctx, SpanContext{TraceID: newTraceID(), Sampled: t.shouldSample()}, SpanID{}, name)
}

func (t *Tracer) startRoot(ctx context.Context, sc SpanContext, parent SpanID, name string) (context.Context, *Span) {
	sc.SpanID = newSpanID()
	var sp *Span
	if sc.Sampled {
		sp = &Span{tr: t, sc: sc, parent: parent, name: name, start: time.Now()}
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{sc: sc, span: sp, tr: t}), sp
}

// --- out-of-band recording ---

// Record inserts an already-measured span into the ring under the
// given trace ID, bypassing head sampling — for callers that inherited
// the sampling decision from elsewhere: the replication follower whose
// trace ID arrived in a journal record, or the slow-request escape
// hatch. A zero parent marks a root-level span.
func (t *Tracer) Record(id TraceID, name string, parent SpanID, start time.Time, d time.Duration, attrs ...Attr) {
	if t == nil || id.IsZero() {
		return
	}
	t.insert(id, spanData{
		spanID: newSpanID(),
		parent: parent,
		name:   name,
		start:  start,
		dur:    d,
		attrs:  attrs,
	})
}

// RecordSlow applies the escape hatch: if d crosses SlowThreshold the
// span is recorded (under id, or a freshly minted trace when id is
// zero). Reports whether it recorded — the serve middleware keys its
// slow-request log off it.
func (t *Tracer) RecordSlow(id TraceID, name string, start time.Time, d time.Duration, attrs ...Attr) bool {
	if !t.Slow(d) {
		return false
	}
	if id.IsZero() {
		id = newTraceID()
	}
	t.Record(id, name, SpanID{}, start, d, attrs...)
	return true
}

// RecordRoot records one complete span as its own new trace, subject to
// head sampling and the slow escape hatch — for operations outside any
// request, like the WAL's group-commit fsync rounds.
func (t *Tracer) RecordRoot(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	if t.shouldSample() || t.Slow(d) {
		t.Record(newTraceID(), name, SpanID{}, start, d, attrs...)
	}
}

// insert files one finished span under its trace, creating (and, at
// capacity, evicting the oldest) ring entry as needed.
func (t *Tracer) insert(id TraceID, sd spanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.index[id]
	if e == nil {
		e = &traceEntry{id: id, spans: make([]spanData, 0, 4)}
		if old := t.ring[t.next]; old != nil {
			delete(t.index, old.id)
		}
		t.ring[t.next] = e
		t.next = (t.next + 1) % len(t.ring)
		t.index[id] = e
	}
	if len(e.spans) >= t.maxSpans {
		e.dropped++
		return
	}
	e.spans = append(e.spans, sd)
}

// --- logging ---

// Logger returns base with trace_id/span_id attributes from the
// context's span context, so request-scoped log lines join the trace.
// Without a span context (or with a nil base) base is returned as-is.
func Logger(ctx context.Context, base *slog.Logger) *slog.Logger {
	sc := FromContext(ctx)
	if base == nil || !sc.Valid() {
		return base
	}
	return base.With("trace_id", sc.TraceID.String(), "span_id", sc.SpanID.String())
}
