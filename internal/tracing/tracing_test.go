package tracing

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	ctx, sp := tr.StartRoot(context.Background(), "root")
	sc := FromContext(ctx)
	if !sc.Valid() || !sc.Sampled {
		t.Fatalf("StartRoot with SampleEvery=1 must yield a valid sampled context, got %+v", sc)
	}
	if sp == nil {
		t.Fatal("sampled root span must be non-nil")
	}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q is not W3C-shaped", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	for _, h := range []string{
		"",
		"00-abc",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // zero trace id
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span id
		"01-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01", // unknown version
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("b", 16) + "-01", // not hex
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-zz",
		"00-" + strings.Repeat("a", 32) + "_" + strings.Repeat("b", 16) + "-01", // bad separator
	} {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want rejected", h)
		}
	}
	// Unsampled flag parses as Sampled=false.
	sc, ok := ParseTraceparent("00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-00")
	if !ok || sc.Sampled {
		t.Fatalf("unsampled traceparent: got %+v ok=%v", sc, ok)
	}
}

func TestHeadSamplingDeterministic(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 400; i++ {
		_, sp := tr.StartRoot(context.Background(), "r")
		if sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 100 {
		t.Fatalf("1-in-4 sampling over 400 roots recorded %d, want exactly 100", sampled)
	}
	// Negative disables sampling but still propagates IDs.
	off := New(Config{SampleEvery: -1})
	ctx, sp := off.StartRoot(context.Background(), "r")
	if sp != nil {
		t.Fatal("SampleEvery<0 must never record")
	}
	if sc := FromContext(ctx); !sc.Valid() || sc.Sampled {
		t.Fatalf("disabled sampling must still mint an unsampled context, got %+v", sc)
	}
}

func TestRemoteSamplingDecisionWins(t *testing.T) {
	tr := New(Config{SampleEvery: -1}) // local sampler says never
	parent := SpanContext{TraceID: TraceID{1}, SpanID: SpanID{2}, Sampled: true}
	ctx, sp := tr.StartRemote(context.Background(), parent.Traceparent(), "srv")
	if sp == nil {
		t.Fatal("a sampled incoming traceparent must record regardless of the local sampler")
	}
	if sc := FromContext(ctx); sc.TraceID != parent.TraceID {
		t.Fatalf("remote trace id not continued: got %v want %v", sc.TraceID, parent.TraceID)
	}
	sp.End()
	dump := tr.Snapshot()
	if len(dump.Traces) != 1 || dump.Traces[0].TraceID != parent.TraceID.String() {
		t.Fatalf("dump = %+v, want one trace under the remote id", dump)
	}
	// The remote parent is foreign here, so the span still reads as root.
	if dump.Traces[0].Root != "srv" {
		t.Fatalf("root = %q, want srv", dump.Traces[0].Root)
	}

	// An unsampled incoming header stays unsampled.
	parent.Sampled = false
	_, sp = tr.StartRemote(context.Background(), parent.Traceparent(), "srv")
	if sp != nil {
		t.Fatal("unsampled traceparent must not record")
	}
}

func TestChildSpansAndWaterfall(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	ctx, root := tr.StartRoot(context.Background(), "POST /v1/jobs")
	cctx, child := StartSpan(ctx, "decode")
	child.SetAttr(Int("bytes", 42))
	_, grand := StartSpan(cctx, "inner")
	grand.End()
	child.End()
	root.End()

	dump := tr.Snapshot()
	if len(dump.Traces) != 1 {
		t.Fatalf("want 1 trace, got %d", len(dump.Traces))
	}
	td := dump.Traces[0]
	if td.Root != "POST /v1/jobs" || len(td.Spans) != 3 {
		t.Fatalf("trace = %+v, want root POST /v1/jobs with 3 spans", td)
	}
	byName := map[string]SpanDump{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	rootSpan := byName["POST /v1/jobs"]
	if rootSpan.ParentID != "" {
		t.Fatalf("root parent = %q, want none", rootSpan.ParentID)
	}
	if byName["decode"].ParentID != rootSpan.SpanID {
		t.Fatal("decode span must be parented to the root")
	}
	if byName["inner"].ParentID != byName["decode"].SpanID {
		t.Fatal("inner span must be parented to decode")
	}
	if len(byName["decode"].Attrs) != 1 || byName["decode"].Attrs[0] != (Attr{Key: "bytes", Value: "42"}) {
		t.Fatalf("decode attrs = %+v", byName["decode"].Attrs)
	}
}

func TestStartSpanWithoutRecordingIsNil(t *testing.T) {
	// No tracer in the context at all.
	if _, sp := StartSpan(context.Background(), "x"); sp != nil {
		t.Fatal("StartSpan without a trace must return nil")
	}
	// Unsampled root: children are nil too.
	tr := New(Config{SampleEvery: -1})
	ctx, _ := tr.StartRoot(context.Background(), "r")
	if _, sp := StartSpan(ctx, "x"); sp != nil {
		t.Fatal("StartSpan under an unsampled root must return nil")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "r")
	if sp != nil || FromContext(ctx).Valid() {
		t.Fatal("nil tracer must be inert")
	}
	_, sp = tr.StartRemote(ctx, "", "r")
	sp.End()
	sp.SetName("x")
	sp.SetAttr(String("k", "v"))
	if sp.Context().Valid() {
		t.Fatal("nil span context must be zero")
	}
	tr.Record(TraceID{1}, "x", SpanID{}, time.Now(), time.Second)
	tr.RecordRoot("x", time.Now(), time.Second)
	tr.RecordSlow(TraceID{}, "x", time.Now(), time.Hour)
	if tr.Slow(time.Hour) {
		t.Fatal("nil tracer is never slow")
	}
	if d := tr.Snapshot(); len(d.Traces) != 0 {
		t.Fatal("nil tracer snapshot must be empty")
	}
	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if rr.Code != 200 {
		t.Fatalf("nil tracer handler status %d", rr.Code)
	}
}

func TestRingBoundsAndEviction(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 4})
	var first TraceID
	for i := 0; i < 10; i++ {
		_, sp := tr.StartRoot(context.Background(), "r")
		if i == 0 {
			first = sp.Context().TraceID
		}
		sp.End()
	}
	dump := tr.Snapshot()
	if len(dump.Traces) != 4 {
		t.Fatalf("ring of 4 holds %d traces", len(dump.Traces))
	}
	for _, td := range dump.Traces {
		if td.TraceID == first.String() {
			t.Fatal("oldest trace must have been evicted")
		}
	}
}

func TestMaxSpansDropped(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxSpans: 3})
	ctx, root := tr.StartRoot(context.Background(), "r")
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	td := tr.Snapshot().Traces[0]
	if len(td.Spans) != 3 || td.DroppedSpans != 3 {
		t.Fatalf("kept %d spans, dropped %d; want 3 kept / 3 dropped", len(td.Spans), td.DroppedSpans)
	}
}

func TestSlowEscapeHatch(t *testing.T) {
	tr := New(Config{SampleEvery: -1, SlowThreshold: 10 * time.Millisecond})
	start := time.Now().Add(-20 * time.Millisecond)
	if tr.RecordSlow(TraceID{}, "GET /v1/stats", start, 5*time.Millisecond) {
		t.Fatal("a fast operation must not trip the slow hatch")
	}
	id := TraceID{7}
	if !tr.RecordSlow(id, "GET /v1/stats", start, 20*time.Millisecond) {
		t.Fatal("a slow unsampled operation must be recorded")
	}
	dump := tr.Snapshot()
	if len(dump.Traces) != 1 || dump.Traces[0].TraceID != id.String() || dump.Traces[0].Root != "GET /v1/stats" {
		t.Fatalf("slow hatch dump = %+v", dump)
	}
	// RecordRoot honors the hatch even with sampling off.
	tr.RecordRoot("wal.group_commit", start, 50*time.Millisecond, Int("batch", 9))
	if got := len(tr.Snapshot().Traces); got != 2 {
		t.Fatalf("slow RecordRoot must record; have %d traces", got)
	}
	tr.RecordRoot("wal.group_commit", start, time.Millisecond)
	if got := len(tr.Snapshot().Traces); got != 2 {
		t.Fatalf("fast unsampled RecordRoot must not record; have %d traces", got)
	}
}

func TestCrossProcessJoin(t *testing.T) {
	// The follower side: spans recorded under a trace ID minted
	// elsewhere join that trace in this tracer's ring.
	primary := New(Config{SampleEvery: 1})
	follower := New(Config{SampleEvery: -1})
	ctx, root := primary.StartRoot(context.Background(), "POST /v1/jobs")
	_, child := StartSpan(ctx, "wal.append")
	child.End()
	root.End()

	tid := root.Context().TraceID
	follower.Record(tid, "repl.apply", SpanID{}, time.Now(), 3*time.Millisecond, Int("jobs", 2))

	fd := follower.Snapshot()
	if len(fd.Traces) != 1 || fd.Traces[0].TraceID != tid.String() {
		t.Fatalf("follower dump = %+v, want the primary's trace id", fd)
	}
	if fd.Traces[0].Root != "repl.apply" {
		t.Fatalf("follower root = %q", fd.Traces[0].Root)
	}
}

func TestHandlerFilters(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	mk := func(name string, dur time.Duration) TraceID {
		id := newTraceID()
		tr.Record(id, name, SpanID{}, time.Now(), dur)
		return id
	}
	slow := mk("POST /v1/jobs", 80*time.Millisecond)
	mk("POST /v1/jobs", 2*time.Millisecond)
	mk("GET /v1/stats", 90*time.Millisecond)

	get := func(query string) Dump {
		rr := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces"+query, nil))
		if rr.Code != 200 {
			t.Fatalf("GET /debug/traces%s: status %d", query, rr.Code)
		}
		var d Dump
		if err := json.Unmarshal(rr.Body.Bytes(), &d); err != nil {
			t.Fatalf("response does not parse: %v", err)
		}
		return d
	}

	if d := get(""); len(d.Traces) != 3 {
		t.Fatalf("unfiltered: %d traces, want 3", len(d.Traces))
	}
	if d := get("?route=POST+%2Fv1%2Fjobs"); len(d.Traces) != 2 {
		t.Fatalf("route filter: %d traces, want 2", len(d.Traces))
	}
	if d := get("?route=POST+%2Fv1%2Fjobs&min_ms=50"); len(d.Traces) != 1 || d.Traces[0].TraceID != slow.String() {
		t.Fatalf("route+min_ms filter: %+v, want only the slow submit", d.Traces)
	}
	if d := get("?trace_id=" + slow.String()); len(d.Traces) != 1 || d.Traces[0].TraceID != slow.String() {
		t.Fatalf("trace_id filter: %+v", d.Traces)
	}
	if d := get("?limit=1"); len(d.Traces) != 1 {
		t.Fatalf("limit: %d traces, want 1", len(d.Traces))
	}
}

func TestLoggerStampsIDs(t *testing.T) {
	var buf strings.Builder
	base := slog.New(slog.NewTextHandler(&buf, nil))
	tr := New(Config{SampleEvery: 1})
	ctx, sp := tr.StartRoot(context.Background(), "r")
	Logger(ctx, base).Info("hello")
	sp.End()
	sc := FromContext(ctx)
	out := buf.String()
	if !strings.Contains(out, "trace_id="+sc.TraceID.String()) || !strings.Contains(out, "span_id="+sc.SpanID.String()) {
		t.Fatalf("log line missing trace/span ids: %q", out)
	}
	// No span context: the base logger comes back untouched.
	if got := Logger(context.Background(), base); got != base {
		t.Fatal("Logger without a span context must return base unchanged")
	}
}
