package tracing

// The GET /debug/traces endpoint: a JSON dump of the ring of recent
// traces, filterable so an operator (or cmd/loadgen -slowest) can go
// from "p99 is high" to one concrete trace:
//
//	?min_ms=5            only traces at least this long
//	?route=POST /v1/jobs only traces whose root span has this name
//	?trace_id=4bf92f...  one specific trace (e.g. from a log line)
//	?limit=10            at most N traces (default 50)
//
// Traces come back newest-first; spans within a trace in start order,
// so the JSON reads as a waterfall directly.

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// DefaultDumpLimit is the /debug/traces trace cap when no ?limit is
// given.
const DefaultDumpLimit = 50

// SpanDump is one finished span in the /debug/traces JSON.
type SpanDump struct {
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_span_id,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// TraceDump is one trace in the /debug/traces JSON. Root is the name
// of the root-level span (the matched route pattern for HTTP traces);
// DurationMS is the root span's duration, or the span-covered window
// when no root was recorded (e.g. a follower holding only apply
// spans).
type TraceDump struct {
	TraceID      string     `json:"trace_id"`
	Root         string     `json:"root"`
	Start        time.Time  `json:"start"`
	DurationMS   float64    `json:"duration_ms"`
	Spans        []SpanDump `json:"spans"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
}

// Dump is the /debug/traces response body.
type Dump struct {
	Traces []TraceDump `json:"traces"`
}

// Snapshot renders the ring's current contents, newest trace first.
func (t *Tracer) Snapshot() Dump {
	if t == nil {
		return Dump{Traces: []TraceDump{}}
	}
	t.mu.Lock()
	entries := make([]*traceEntry, 0, len(t.ring))
	for _, e := range t.ring {
		if e != nil {
			entries = append(entries, e)
		}
	}
	dump := Dump{Traces: make([]TraceDump, 0, len(entries))}
	for _, e := range entries {
		dump.Traces = append(dump.Traces, dumpEntry(e))
	}
	t.mu.Unlock()
	sort.Slice(dump.Traces, func(i, j int) bool {
		return dump.Traces[i].Start.After(dump.Traces[j].Start)
	})
	return dump
}

// dumpEntry renders one trace. Called with the tracer's mutex held.
// The root is the longest span whose parent was not recorded in this
// process — a zero parent, or a remote parent ID from the traceparent
// of a client that minted the trace elsewhere.
func dumpEntry(e *traceEntry) TraceDump {
	td := TraceDump{
		TraceID:      e.id.String(),
		Spans:        make([]SpanDump, 0, len(e.spans)),
		DroppedSpans: e.dropped,
	}
	local := make(map[SpanID]bool, len(e.spans))
	for _, sd := range e.spans {
		local[sd.spanID] = true
	}
	var start, end time.Time
	var rootDur time.Duration
	for _, sd := range e.spans {
		if start.IsZero() || sd.start.Before(start) {
			start = sd.start
		}
		if fin := sd.start.Add(sd.dur); end.IsZero() || fin.After(end) {
			end = fin
		}
		if !local[sd.parent] && (td.Root == "" || sd.dur > rootDur) {
			td.Root, rootDur = sd.name, sd.dur
		}
		dump := SpanDump{
			SpanID:     sd.spanID.String(),
			Name:       sd.name,
			Start:      sd.start,
			DurationMS: ms(sd.dur),
			Attrs:      sd.attrs,
		}
		if !sd.parent.IsZero() {
			dump.ParentID = sd.parent.String()
		}
		td.Spans = append(td.Spans, dump)
	}
	td.Start = start
	if td.Root == "" && len(e.spans) > 0 {
		td.Root = e.spans[0].name
	}
	if rootDur > 0 {
		td.DurationMS = ms(rootDur)
	} else if !end.IsZero() {
		td.DurationMS = ms(end.Sub(start))
	}
	sort.Slice(td.Spans, func(i, j int) bool { return td.Spans[i].Start.Before(td.Spans[j].Start) })
	return td
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Handler serves the ring as GET /debug/traces (see the file comment
// for the filters). A nil tracer serves an empty dump, so the route
// can be registered unconditionally.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		dump := t.Snapshot()
		limit := DefaultDumpLimit
		if n, err := strconv.Atoi(q.Get("limit")); err == nil && n > 0 {
			limit = n
		}
		minMS, _ := strconv.ParseFloat(q.Get("min_ms"), 64)
		route := q.Get("route")
		traceID := q.Get("trace_id")

		kept := dump.Traces[:0]
		for _, td := range dump.Traces {
			if traceID != "" && td.TraceID != traceID {
				continue
			}
			if route != "" && td.Root != route {
				continue
			}
			if td.DurationMS < minMS {
				continue
			}
			kept = append(kept, td)
			if len(kept) >= limit {
				break
			}
		}
		dump.Traces = kept
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dump)
	})
}
