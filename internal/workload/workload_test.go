package workload

import (
	"math"
	"testing"

	"carbonshift/internal/rng"
)

func TestJobValidate(t *testing.T) {
	good := Job{Class: Batch, LengthHours: 24, SlackHours: 24, Interruptible: true, Migratable: true}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	bad := []Job{
		{Class: Batch, LengthHours: 0},
		{Class: Batch, LengthHours: 1, Arrival: -1},
		{Class: Batch, LengthHours: 1, SlackHours: -1},
		{Class: Interactive, LengthHours: InteractiveHours, SlackHours: 5},
		{Class: Interactive, LengthHours: InteractiveHours, Interruptible: true},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("bad job %d accepted: %+v", i, j)
		}
	}
}

func TestWholeHours(t *testing.T) {
	cases := []struct {
		len  float64
		want int
	}{
		{0.01, 1}, {1, 1}, {1.5, 2}, {24, 24}, {167.2, 168},
	}
	for _, c := range cases {
		j := Job{LengthHours: c.len}
		if got := j.WholeHours(); got != c.want {
			t.Errorf("WholeHours(%v) = %d, want %d", c.len, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if Batch.String() != "batch" || Interactive.String() != "interactive" {
		t.Fatal("class names wrong")
	}
}

func TestNewDistributionValidation(t *testing.T) {
	if _, err := NewDistribution("x", map[int]float64{0: 1}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := NewDistribution("x", map[int]float64{1: -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewDistribution("x", map[int]float64{1: 0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestDistributionNormalized(t *testing.T) {
	for _, d := range []Distribution{DistEqual, DistAzure, DistGoogle} {
		var sum float64
		for _, l := range d.Lengths() {
			sum += d.Weight(l)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s weights sum to %v", d.Name, sum)
		}
	}
}

func TestDistributionLengthsMatchTable1(t *testing.T) {
	want := []int{1, 6, 12, 24, 48, 96, 168}
	for _, d := range []Distribution{DistEqual, DistAzure, DistGoogle} {
		got := d.Lengths()
		if len(got) != len(want) {
			t.Fatalf("%s lengths = %v", d.Name, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s lengths = %v, want %v", d.Name, got, want)
			}
		}
	}
}

// TestCloudTracesAreLongJobHeavy encodes the paper's observation that
// the Azure and Google traces concentrate resource usage in long jobs,
// unlike the equal weighting.
func TestCloudTracesAreLongJobHeavy(t *testing.T) {
	if share := DistEqual.LongJobShare(48); share > 0.35 {
		t.Errorf("equal >48h share = %v", share)
	}
	for _, d := range []Distribution{DistAzure, DistGoogle} {
		if share := d.LongJobShare(48); share < 0.6 {
			t.Errorf("%s >48h share = %v, want cloud traces dominated by long jobs", d.Name, share)
		}
	}
}

func TestWeightedMean(t *testing.T) {
	values := map[int]float64{1: 7, 6: 7, 12: 7, 24: 7, 48: 7, 96: 7, 168: 7}
	for _, d := range []Distribution{DistEqual, DistAzure, DistGoogle} {
		if got := d.WeightedMean(values); math.Abs(got-7) > 1e-9 {
			t.Errorf("%s constant weighted mean = %v", d.Name, got)
		}
	}
	// Equal weighting of a ramp is its plain mean.
	ramp := map[int]float64{1: 1, 6: 2, 12: 3, 24: 4, 48: 5, 96: 6, 168: 7}
	if got := DistEqual.WeightedMean(ramp); math.Abs(got-4) > 1e-9 {
		t.Errorf("equal ramp mean = %v, want 4", got)
	}
	// Long-heavy distributions weight the 168h value hardest.
	if DistAzure.WeightedMean(ramp) <= DistEqual.WeightedMean(ramp) {
		t.Error("azure weighting should tilt toward long-job values")
	}
}

func TestSampleRespectsSupport(t *testing.T) {
	src := rng.New(1)
	valid := make(map[int]bool)
	for _, l := range BatchLengths {
		valid[l] = true
	}
	counts := make(map[int]int)
	for i := 0; i < 10000; i++ {
		l := DistGoogle.Sample(src)
		if !valid[l] {
			t.Fatalf("sampled invalid length %d", l)
		}
		counts[l]++
	}
	// The dominant bucket must dominate the samples too.
	if counts[168] < 5000 {
		t.Fatalf("168h sampled %d/10000 times, want majority", counts[168])
	}
}

func TestArrivals(t *testing.T) {
	got := Arrivals(100, 50, 10, 1)
	if len(got) != 50 {
		t.Fatalf("arrivals = %d, want 50", len(got))
	}
	// Window overruns cut the sweep short.
	got = Arrivals(100, 200, 10, 1)
	if len(got) != 91 { // arrivals 0..90 fit a 10-hour window in 100 hours
		t.Fatalf("arrivals = %d, want 91", len(got))
	}
	// Stride subsamples.
	got = Arrivals(100, 50, 10, 7)
	for i := 1; i < len(got); i++ {
		if got[i]-got[i-1] != 7 {
			t.Fatalf("stride not respected: %v", got)
		}
	}
	// Degenerate stride is clamped to 1.
	if got := Arrivals(10, 5, 1, 0); len(got) != 5 {
		t.Fatalf("zero stride arrivals = %v", got)
	}
}

func TestSlacksAscending(t *testing.T) {
	for i := 1; i < len(Slacks); i++ {
		if Slacks[i] <= Slacks[i-1] {
			t.Fatalf("Slacks not ascending: %v", Slacks)
		}
	}
	if Slacks[0] != 24 || Slacks[len(Slacks)-1] != 8760 {
		t.Fatalf("Slacks = %v, want 24h through 1y", Slacks)
	}
}
