// Package workload models the cloud jobs of the paper's Table 1: batch
// and interactive classes, the job-length buckets taken from Google's
// Borg trace, deferral slack choices, and the job-length weightings
// derived from the Azure and Google cluster traces.
//
// Jobs are energy-normalized: each job draws 1 kW for its whole
// duration ("energy-optimized 100% usage" in Table 1), so the carbon
// cost of running a job over a set of hours is simply the sum of the
// hourly carbon intensities over those hours, in g·CO₂eq.
package workload

import (
	"fmt"
	"sort"

	"carbonshift/internal/rng"
)

// Class distinguishes the two broad workload classes of §2.2.
type Class int

// Workload classes.
const (
	// Batch jobs have temporal flexibility (deferrable, possibly
	// interruptible) and are migratable.
	Batch Class = iota
	// Interactive jobs are sub-hour requests with no temporal
	// flexibility; they may still be routed (migrated) spatially.
	Interactive
)

func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case Interactive:
		return "interactive"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// InteractiveHours is the nominal duration of an interactive request
// (Table 1 lists 0.01 h ≈ 36 s).
const InteractiveHours = 0.01

// BatchLengths are the batch job-length buckets in hours, from version
// 3 of the Borg trace as used in Table 1.
var BatchLengths = []int{1, 6, 12, 24, 48, 96, 168}

// Slack choices examined by the paper (§5.2.6), in hours.
const (
	Slack24H = 24
	Slack7D  = 7 * 24
	Slack24D = 24 * 24
	Slack30D = 30 * 24
	Slack1Y  = 365 * 24
)

// Slacks lists the slack sweep of Figure 10(d), ascending.
var Slacks = []int{Slack24H, Slack7D, Slack24D, Slack30D, Slack1Y}

// Job is one schedulable unit of work.
type Job struct {
	// Class is batch or interactive.
	Class Class
	// LengthHours is the uninterrupted execution time. Batch jobs use
	// whole hours (the trace granularity); interactive jobs use
	// InteractiveHours.
	LengthHours float64
	// Arrival is the submission time as an hour index into the trace.
	Arrival int
	// SlackHours bounds how long the start may be deferred.
	SlackHours int
	// Interruptible marks jobs that may be suspended and resumed.
	Interruptible bool
	// Migratable marks jobs that may run outside their origin region.
	Migratable bool
	// Origin is the submission region code.
	Origin string
}

// Validate reports structural problems with the job.
func (j Job) Validate() error {
	if j.LengthHours <= 0 {
		return fmt.Errorf("workload: job length %v must be positive", j.LengthHours)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("workload: negative arrival %d", j.Arrival)
	}
	if j.SlackHours < 0 {
		return fmt.Errorf("workload: negative slack %d", j.SlackHours)
	}
	if j.Class == Interactive {
		if j.SlackHours != 0 {
			return fmt.Errorf("workload: interactive job with slack %d", j.SlackHours)
		}
		if j.Interruptible {
			return fmt.Errorf("workload: interactive job marked interruptible")
		}
	}
	return nil
}

// WholeHours returns the job length rounded up to whole trace hours
// (minimum 1), the granularity at which batch scheduling operates.
func (j Job) WholeHours() int {
	h := int(j.LengthHours)
	if float64(h) < j.LengthHours {
		h++
	}
	if h < 1 {
		h = 1
	}
	return h
}

// Distribution is a weighting over batch job lengths. Weights are
// resource-hour weights: they describe what fraction of the cluster's
// energy is consumed by jobs of each length, which is what determines
// fleet-level carbon numbers.
type Distribution struct {
	Name    string
	weights map[int]float64
}

// NewDistribution builds a distribution from explicit weights. Weights
// must be non-negative with a positive sum; they are normalized to 1.
func NewDistribution(name string, weights map[int]float64) (Distribution, error) {
	lengths := make([]int, 0, len(weights))
	for l := range weights {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	// Sum in ascending length order: the normalization constant — and
	// with it every downstream result — must be bit-identical across
	// runs, which map iteration order would break.
	var total float64
	for _, l := range lengths {
		w := weights[l]
		if l <= 0 {
			return Distribution{}, fmt.Errorf("workload: non-positive length %d in distribution %s", l, name)
		}
		if w < 0 {
			return Distribution{}, fmt.Errorf("workload: negative weight for length %d in distribution %s", l, name)
		}
		total += w
	}
	if total == 0 {
		return Distribution{}, fmt.Errorf("workload: distribution %s has zero total weight", name)
	}
	norm := make(map[int]float64, len(weights))
	for l, w := range weights {
		norm[l] = w / total
	}
	return Distribution{Name: name, weights: norm}, nil
}

func mustDistribution(name string, weights map[int]float64) Distribution {
	d, err := NewDistribution(name, weights)
	if err != nil {
		panic(err)
	}
	return d
}

// Weight returns the normalized weight of a job length (0 for lengths
// not in the distribution).
func (d Distribution) Weight(length int) float64 { return d.weights[length] }

// Lengths returns the supported lengths in ascending order.
func (d Distribution) Lengths() []int {
	out := make([]int, 0, len(d.weights))
	for l := range d.weights {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// WeightedMean combines a per-length metric into the distribution's
// fleet-level value: Σ weight(l) · value(l). Lengths absent from values
// contribute zero. Summation runs in ascending length order so the
// floating-point result is identical on every call (map iteration
// order would randomize the low bits).
func (d Distribution) WeightedMean(values map[int]float64) float64 {
	var out float64
	for _, l := range d.Lengths() {
		out += d.weights[l] * values[l]
	}
	return out
}

// LongJobShare returns the weight carried by jobs strictly longer than
// the given number of hours. Like WeightedMean, it sums in ascending
// length order for bit-stable results.
func (d Distribution) LongJobShare(hours int) float64 {
	var out float64
	for _, l := range d.Lengths() {
		if l > hours {
			out += d.weights[l]
		}
	}
	return out
}

// Sample draws a job length from the distribution.
func (d Distribution) Sample(src *rng.Source) int {
	lengths := d.Lengths()
	ws := make([]float64, len(lengths))
	for i, l := range lengths {
		ws[i] = d.weights[l]
	}
	return lengths[src.Pick(ws)]
}

// The three job-length weightings of Figure 10. Equal spreads energy
// evenly over the Table 1 buckets; Azure and Google follow the paper's
// characterization of the public cluster traces, where long jobs
// (>48 h) dominate resource usage — in the Google trace, ~1% of jobs
// (the week-long ones) account for ~90% of resource-hours.
var (
	DistEqual = mustDistribution("equal", map[int]float64{
		1: 1, 6: 1, 12: 1, 24: 1, 48: 1, 96: 1, 168: 1,
	})
	DistAzure = mustDistribution("azure", map[int]float64{
		1: .02, 6: .02, 12: .03, 24: .05, 48: .08, 96: .15, 168: .65,
	})
	DistGoogle = mustDistribution("google", map[int]float64{
		1: .03, 6: .04, 12: .05, 24: .08, 48: .10, 96: .10, 168: .60,
	})
)

// Arrivals returns the hour indices at which jobs are launched for a
// sweep: every stride-th hour in [0, span), dropping arrivals whose
// scheduling window of `window` hours would overrun a trace of
// traceHours. With stride 1 and span 8760 this is the paper's "all 8760
// potential start times over a year".
func Arrivals(traceHours, span, window, stride int) []int {
	if stride < 1 {
		stride = 1
	}
	var out []int
	for a := 0; a < span; a += stride {
		if a+window > traceHours {
			break
		}
		out = append(out, a)
	}
	return out
}
