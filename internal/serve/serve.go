// Package serve is the shared HTTP-server lifecycle helper for the
// cmd/ services (carbonapi, schedd): serve until the context is
// cancelled — typically by signal.NotifyContext on SIGINT/SIGTERM —
// then drain in-flight requests gracefully instead of dropping them.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// DefaultGrace is how long Serve waits for in-flight requests to finish
// after the context is cancelled.
const DefaultGrace = 10 * time.Second

// ListenAndServe listens on srv.Addr and runs Serve.
func ListenAndServe(ctx context.Context, srv *http.Server, grace time.Duration) error {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return err
	}
	return Serve(ctx, srv, ln, grace)
}

// Serve accepts connections on ln until ctx is done, then shuts the
// server down gracefully, waiting up to grace (DefaultGrace if <= 0)
// for in-flight requests. A clean shutdown returns nil; the listener is
// closed in all cases.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	if grace <= 0 {
		grace = DefaultGrace
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// Serve never returns nil; the listener died on its own.
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
