package serve

// HTTP tracing middleware: the server-side on/off-ramp for W3C
// traceparent propagation. Incoming requests with a valid header
// continue the caller's trace (its sampling decision wins); bare
// requests mint a fresh head-sampled trace. Sampled responses echo the
// traceparent so callers without their own tracer can still quote a
// trace ID at /debug/traces; unsampled ones skip the echo — there is
// nothing in the ring to quote, and rendering the header is the kind
// of per-request garbage the 5% overhead bar exists to keep out.
//
// Stacking contract with HTTPMetrics.Wrap: both wrappers must compose
// in either order. Two hazards are handled here. First, http.Flusher /
// Unwrap: both middlewares wrap the writer in statusWriter, whose
// Flush and Unwrap pass through, so the replication stream's chunked
// long-poll keeps flushing however deep the nesting. Second, the
// matched route: tracing must swap the request context, and
// r.WithContext returns a shallow copy — ServeMux records the matched
// pattern on THAT copy, so this middleware copies r2.Pattern back onto
// the original request or an outer metrics middleware would label
// every request "unmatched".

import (
	"log/slog"
	"net/http"
	"time"

	"carbonshift/internal/tracing"
)

// HTTPTracing traces an http.Handler. A nil *HTTPTracing wraps to the
// handler unchanged.
type HTTPTracing struct {
	tr  *tracing.Tracer
	log *slog.Logger // slow-request log; nil disables
}

// NewHTTPTracing builds the middleware around tr. log, when non-nil,
// receives a warn line for every request that crosses the tracer's
// slow threshold, stamped with the trace ID.
func NewHTTPTracing(tr *tracing.Tracer, log *slog.Logger) *HTTPTracing {
	if tr == nil {
		return nil
	}
	return &HTTPTracing{tr: tr, log: log}
}

// Wrap starts (or continues) a trace for each request, stamps the
// matched route pattern and status code on the root span, and applies
// the slow-request escape hatch for unsampled requests.
func (m *HTTPTracing) Wrap(next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, sp := m.tr.StartRemote(r.Context(), r.Header.Get(tracing.Header), r.Method)
		sc := tracing.FromContext(ctx)
		if sc.Sampled {
			w.Header().Set(tracing.Header, sc.Traceparent())
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		r2 := r.WithContext(ctx)
		start := time.Now()
		next.ServeHTTP(sw, r2)
		dur := time.Since(start)
		r.Pattern = r2.Pattern // see the stacking contract above
		route := r2.Pattern
		if route == "" {
			route = "unmatched"
		}
		if sp != nil {
			sp.SetName(route)
			sp.SetAttr(tracing.Int("code", sw.code))
			sp.End()
		} else if m.tr.Slow(dur) {
			// Gated here, not just inside RecordSlow: building the attr
			// and the variadic slice is per-request garbage otherwise.
			m.tr.RecordSlow(sc.TraceID, route, start, dur, tracing.Int("code", sw.code))
		}
		if m.log != nil && m.tr.Slow(dur) {
			tracing.Logger(ctx, m.log).Warn("slow request",
				"route", route, "code", sw.code, "dur_ms", float64(dur)/float64(time.Millisecond))
		}
	})
}
