package serve

// Shared HTTP-layer instrumentation for the cmd/ services: an
// in-flight gauge and a per-route, per-status request counter. Routes
// are labeled by the mux pattern that matched (e.g. "GET /v1/jobs/{id}"
// — bounded cardinality, never the raw path) and "unmatched" for 404s
// that hit no pattern.

import (
	"net/http"
	"strconv"

	"carbonshift/internal/metrics"
)

// HTTPMetrics instruments an http.Handler. A nil *HTTPMetrics wraps to
// the handler unchanged.
type HTTPMetrics struct {
	inFlight *metrics.Gauge
	requests *metrics.CounterVec
}

// NewHTTPMetrics registers the http_* families on r.
func NewHTTPMetrics(r *metrics.Registry) *HTTPMetrics {
	if r == nil {
		return nil
	}
	return &HTTPMetrics{
		inFlight: r.NewGauge("http_in_flight_requests",
			"Requests currently being served."),
		requests: r.NewCounterVec("http_requests_total",
			"Completed requests by matched route pattern and status code.",
			"route", "code"),
	}
}

// Wrap instruments next: the in-flight gauge brackets the call, and on
// completion one counter increments for the (matched pattern, status)
// pair. The wrapper passes http.Flusher through, so streaming handlers
// (the replication stream's chunked long-poll) keep working.
func (m *HTTPMetrics) Wrap(next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		m.inFlight.Add(-1)
		route := r.Pattern // set by ServeMux once a pattern matched
		if route == "" {
			route = "unmatched"
		}
		m.requests.With(route, strconv.Itoa(sw.code)).Inc()
	})
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// Flush passes through so handlers that type-assert http.Flusher (the
// replication stream source) still see one.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
