package serve

// The operator debug mux: net/http/pprof plus service-supplied debug
// handlers (/debug/traces), served on a loopback-only port separate
// from the service API so profiling and trace dumps are never exposed
// on the public listener.

import (
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds a mux with the standard pprof handlers plus any
// extra debug routes (pattern → handler, e.g. "/debug/traces"). Nil
// handlers in extra are skipped so callers can pass optional routes
// unconditionally.
func NewDebugMux(extra map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pat, h := range extra {
		if h != nil {
			mux.Handle(pat, h)
		}
	}
	return mux
}
