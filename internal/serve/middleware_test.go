package serve

// Regression coverage for middleware stacking: HTTPTracing.Wrap and
// HTTPMetrics.Wrap must compose in either order without losing the
// http.Flusher/Unwrap passthrough (the repl stream's long-poll flushes
// after every frame) or the matched-route label (tracing swaps the
// request context, and the mux records the pattern on the copy).

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carbonshift/internal/metrics"
	"carbonshift/internal/tracing"
)

// streamHandler mimics the repl stream source: it needs a working
// flush after each chunk, both via direct type assertion and via
// http.ResponseController (which walks Unwrap).
func streamHandler(t *testing.T, flushed *int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("wrapped writer lost http.Flusher")
			return
		}
		for i := 0; i < 3; i++ {
			if _, err := w.Write([]byte("frame\n")); err != nil {
				t.Errorf("write: %v", err)
			}
			f.Flush()
			*flushed++
		}
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("ResponseController flush through Unwrap chain: %v", err)
		}
	})
}

func TestMiddlewareStackingBothOrders(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stack func(tr *HTTPTracing, mx *HTTPMetrics, h http.Handler) http.Handler
	}{
		{"tracing-outside-metrics", func(tr *HTTPTracing, mx *HTTPMetrics, h http.Handler) http.Handler {
			return tr.Wrap(mx.Wrap(h))
		}},
		{"metrics-outside-tracing", func(tr *HTTPTracing, mx *HTTPMetrics, h http.Handler) http.Handler {
			return mx.Wrap(tr.Wrap(h))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := metrics.NewRegistry()
			mx := NewHTTPMetrics(reg)
			tr := tracing.New(tracing.Config{SampleEvery: 1})
			flushed := 0
			mux := http.NewServeMux()
			mux.Handle("GET /v1/repl/stream", streamHandler(t, &flushed))
			h := tc.stack(NewHTTPTracing(tr, nil), mx, mux)

			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/repl/stream", nil))

			if flushed != 3 || !rr.Flushed {
				t.Fatalf("flushes did not reach the recorder: handler=%d recorder=%v", flushed, rr.Flushed)
			}
			if got := rr.Body.String(); got != "frame\nframe\nframe\n" {
				t.Fatalf("body = %q", got)
			}
			if rr.Header().Get(tracing.Header) == "" {
				t.Fatal("response is missing the traceparent header")
			}

			// The metrics counter must see the matched pattern, not
			// "unmatched", regardless of which wrapper swapped the
			// request context.
			var sb strings.Builder
			if err := reg.WriteTo(&sb); err != nil {
				t.Fatal(err)
			}
			want := `route="GET /v1/repl/stream",code="200"`
			if !strings.Contains(sb.String(), want) {
				t.Fatalf("scrape missing %s:\n%s", want, sb.String())
			}

			// And the trace root carries the same pattern.
			dump := tr.Snapshot()
			if len(dump.Traces) != 1 || dump.Traces[0].Root != "GET /v1/repl/stream" {
				t.Fatalf("trace dump = %+v, want one trace rooted at the route pattern", dump.Traces)
			}
		})
	}
}

func TestTracingMiddlewareContinuesRemoteTrace(t *testing.T) {
	tr := tracing.New(tracing.Config{SampleEvery: -1}) // local sampler off
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	})
	h := NewHTTPTracing(tr, nil).Wrap(mux)

	remote := tracing.SpanContext{TraceID: tracing.TraceID{0xab}, SpanID: tracing.SpanID{1}, Sampled: true}
	req := httptest.NewRequest("POST", "/v1/jobs", nil)
	req.Header.Set(tracing.Header, remote.Traceparent())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)

	dump := tr.Snapshot()
	if len(dump.Traces) != 1 || dump.Traces[0].TraceID != remote.TraceID.String() {
		t.Fatalf("dump = %+v, want the remote trace id", dump.Traces)
	}
	echo, ok := tracing.ParseTraceparent(rr.Header().Get(tracing.Header))
	if !ok || echo.TraceID != remote.TraceID || !echo.Sampled {
		t.Fatalf("echoed traceparent %q does not continue the remote trace", rr.Header().Get(tracing.Header))
	}
}

func TestDebugMuxRoutes(t *testing.T) {
	tr := tracing.New(tracing.Config{})
	mux := NewDebugMux(map[string]http.Handler{
		"/debug/traces": tr.Handler(),
		"/debug/nil":    nil, // skipped, must not panic
	})
	for _, path := range []string{"/debug/pprof/", "/debug/traces"} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusOK {
			t.Errorf("GET %s: status %d", path, rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/nil", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("nil extra route: status %d, want 404", rr.Code)
	}
}
