package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func startTestServer(t *testing.T, handler http.Handler) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, srv, ln, 5*time.Second) }()
	return "http://" + ln.Addr().String(), cancel, done
}

func TestServeAndCleanShutdown(t *testing.T) {
	url, cancel, done := startTestServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	resp, err := http.Get(url + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q", body)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}

func TestInFlightRequestsDrain(t *testing.T) {
	release := make(chan struct{})
	url, cancel, done := startTestServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "drained")
	}))
	got := make(chan string, 1)
	go func() {
		resp, err := http.Get(url + "/")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		got <- string(body)
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the handler
	cancel()                          // shutdown begins with the request in flight
	time.Sleep(50 * time.Millisecond)
	close(release)
	if body := <-got; body != "drained" {
		t.Fatalf("in-flight request got %q", body)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
}

func TestListenAndServeBadAddr(t *testing.T) {
	srv := &http.Server{Addr: "256.256.256.256:0"}
	if err := ListenAndServe(context.Background(), srv, time.Second); err == nil {
		t.Fatal("bad address accepted")
	}
}
