package forecast

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"carbonshift/internal/regions"
	"carbonshift/internal/rng"
	"carbonshift/internal/simgrid"
	"carbonshift/internal/trace"
)

func sinusoid(n int, period float64, noise float64, seed uint64) []float64 {
	src := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = 300 + 100*math.Sin(2*math.Pi*float64(i)/period) + src.Norm(0, noise)
	}
	return out
}

func TestPersistence(t *testing.T) {
	p := Persistence{}
	got, err := p.Forecast([]float64{1, 2, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 7 {
			t.Fatalf("persistence = %v", got)
		}
	}
	if _, err := p.Forecast(nil, 1); err == nil {
		t.Fatal("empty history accepted")
	}
	if _, err := p.Forecast([]float64{1}, -1); err == nil {
		t.Fatal("negative horizon accepted")
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestSeasonalNaiveExactOnPeriodicSignal(t *testing.T) {
	// A noise-free periodic signal must be forecast perfectly.
	x := sinusoid(24*30, 24, 0, 1)
	f := SeasonalNaive{Period: 24, Cycles: 3}
	pred, err := f.Forecast(x[:24*20], 48)
	if err != nil {
		t.Fatal(err)
	}
	for h, v := range pred {
		want := x[24*20+h]
		if math.Abs(v-want) > 1e-6 {
			t.Fatalf("hour %d: predicted %v, want %v", h, v, want)
		}
	}
}

func TestSeasonalNaiveValidation(t *testing.T) {
	f := SeasonalNaive{Period: 24, Cycles: 2}
	if _, err := f.Forecast(make([]float64, 10), 5); err == nil {
		t.Fatal("short history accepted")
	}
	if _, err := (SeasonalNaive{Period: 0, Cycles: 1}).Forecast(make([]float64, 10), 5); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := f.Forecast(make([]float64, 48), -1); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestSeasonalNaiveLongHorizon(t *testing.T) {
	// Horizons longer than the history must still produce finite,
	// in-range values (the index walk-back path).
	x := sinusoid(24*3, 24, 5, 2)
	f := SeasonalNaive{Period: 24, Cycles: 7}
	pred, err := f.Forecast(x, 24*10)
	if err != nil {
		t.Fatal(err)
	}
	for h, v := range pred {
		if math.IsNaN(v) || v < 0 || v > 1000 {
			t.Fatalf("hour %d: bad prediction %v", h, v)
		}
	}
}

func TestBlendedBeatsPersistenceOnDiurnalSignal(t *testing.T) {
	x := sinusoid(24*60, 24, 8, 3)
	warmup, horizon, step := 24*14, 24, 24
	bl, err := Backtest(Blended{}, x, warmup, horizon, step)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := Backtest(Persistence{}, x, warmup, horizon, step)
	if err != nil {
		t.Fatal(err)
	}
	if bl >= pe {
		t.Fatalf("blended MAPE %.2f not better than persistence %.2f", bl, pe)
	}
}

func TestBlendedValidation(t *testing.T) {
	if _, err := (Blended{DailyWeight: 2}).Forecast(make([]float64, 200), 24); err == nil {
		t.Fatal("weight > 1 accepted")
	}
}

func TestBlendedNonNegative(t *testing.T) {
	// History near zero must not produce negative forecasts after the
	// level correction.
	x := make([]float64, 24*10)
	for i := range x {
		x[i] = 2
	}
	x[len(x)-1] = 0
	pred, err := Blended{}.Forecast(x, 24)
	if err != nil {
		t.Fatal(err)
	}
	for h, v := range pred {
		if v < 0 {
			t.Fatalf("hour %d: negative forecast %v", h, v)
		}
	}
}

func TestMAPE(t *testing.T) {
	m, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-10) > 1e-9 {
		t.Fatalf("MAPE = %v, want 10", m)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := MAPE([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("all-zero actual accepted")
	}
	// Zero entries are skipped, not fatal.
	m, err = MAPE([]float64{0, 100}, []float64{50, 110})
	if err != nil || math.Abs(m-10) > 1e-9 {
		t.Fatalf("MAPE with zero = %v, %v", m, err)
	}
}

func TestBacktestValidation(t *testing.T) {
	x := sinusoid(100, 24, 1, 4)
	if _, err := Backtest(Persistence{}, x, 0, 10, 1); err == nil {
		t.Fatal("zero warmup accepted")
	}
	if _, err := Backtest(Persistence{}, x, 95, 10, 1); err == nil {
		t.Fatal("overrunning backtest accepted")
	}
}

// TestBlendedMAPEIsCarbonCastGrade checks the repository's headline
// forecasting claim: on periodic simulated regions, day-ahead blended
// forecasts land in the single-digit-to-low-teens MAPE band the paper
// cites for CarbonCast (4.8-13.9%).
func TestBlendedMAPEIsCarbonCastGrade(t *testing.T) {
	for _, code := range []string{"DE", "US-CA", "GB"} {
		tr, err := simgrid.GenerateRegion(regions.MustByCode(code),
			simgrid.Config{Seed: 5, Hours: 24 * 120})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Backtest(Blended{}, tr.CI, 24*21, 24, 24*3)
		if err != nil {
			t.Fatal(err)
		}
		if m > 25 {
			t.Errorf("%s day-ahead MAPE = %.1f%%, want CarbonCast-comparable (< 25%%)", code, m)
		}
	}
}

func TestForecastTrace(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	x := sinusoid(24*30, 24, 3, 6)
	tr := trace.New("X", start, x)
	ft, err := ForecastTrace(Blended{}, tr, 24*14, 24)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != tr.Len() || !ft.Start.Equal(tr.Start) || ft.Region != "X" {
		t.Fatalf("forecast trace shape wrong: %d %v %s", ft.Len(), ft.Start, ft.Region)
	}
	// Warmup region carries truth.
	for i := 0; i < 24*14; i++ {
		if ft.CI[i] != tr.CI[i] {
			t.Fatalf("warmup hour %d altered", i)
		}
	}
	// Forecast region differs from truth but stays close.
	diff := 0
	for i := 24 * 14; i < tr.Len(); i++ {
		if ft.CI[i] != tr.CI[i] {
			diff++
		}
		if math.Abs(ft.CI[i]-tr.CI[i]) > 150 {
			t.Fatalf("hour %d: forecast %v wildly off truth %v", i, ft.CI[i], tr.CI[i])
		}
	}
	if diff == 0 {
		t.Fatal("forecast region identical to truth")
	}
	if _, err := ForecastTrace(Blended{}, tr, tr.Len(), 24); err == nil {
		t.Fatal("warmup >= length accepted")
	}
	if _, err := ForecastTrace(Blended{}, tr, 0, 24); err == nil {
		t.Fatal("zero warmup accepted")
	}
}

func TestQuickSeasonalNaiveInRange(t *testing.T) {
	f := func(seed uint64, hRaw uint8) bool {
		x := sinusoid(24*10, 24, 10, seed)
		horizon := int(hRaw)%100 + 1
		pred, err := SeasonalNaive{Period: 24, Cycles: 4}.Forecast(x, horizon)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range x {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range pred {
			// An average of history samples must stay within the
			// historical range.
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBlendedDayAhead(b *testing.B) {
	x := sinusoid(24*365, 24, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Blended{}).Forecast(x, 24); err != nil {
			b.Fatal(err)
		}
	}
}
