package forecast_test

import (
	"fmt"
	"math"

	"carbonshift/internal/forecast"
)

// A noise-free daily cycle is forecast perfectly by the seasonal
// model.
func ExampleSeasonalNaive_Forecast() {
	history := make([]float64, 24*14)
	for i := range history {
		history[i] = 300 + 100*math.Sin(2*math.Pi*float64(i)/24)
	}
	model := forecast.SeasonalNaive{Period: 24, Cycles: 7}
	pred, err := model.Forecast(history, 3)
	if err != nil {
		panic(err)
	}
	truth := 300 + 100*math.Sin(2*math.Pi*float64(len(history))/24)
	fmt.Printf("next hour: predicted %.1f, true %.1f\n", pred[0], truth)
	// Output:
	// next hour: predicted 300.0, true 300.0
}

// MAPE quantifies forecast quality the way the paper's CarbonCast
// reference does.
func ExampleMAPE() {
	actual := []float64{100, 200, 400}
	predicted := []float64{110, 190, 400}
	m, err := forecast.MAPE(actual, predicted)
	if err != nil {
		panic(err)
	}
	fmt.Printf("MAPE %.1f%%\n", m)
	// Output:
	// MAPE 5.0%
}
