// Package forecast provides carbon-intensity forecasting models.
//
// The paper's limits analysis assumes perfect future knowledge and
// then quantifies (§6.2) how forecast error erodes the savings,
// citing CarbonCast's 4.8–13.9% MAPE for multi-day forecasts. This
// package implements the classical forecasting baselines that bracket
// that operating point — persistence, seasonal-naive, and a blended
// daily/weekly seasonal model — together with MAPE evaluation, so the
// repository's what-if machinery can be driven by *model* forecasts
// rather than synthetic uniform noise.
//
// All models are pure functions of the history they are given; there
// is no hidden state, so forecasts are reproducible.
package forecast

import (
	"fmt"

	"carbonshift/internal/trace"
)

// Forecaster predicts the next horizon hours of a series given its
// history (oldest first). Implementations must not modify history.
type Forecaster interface {
	// Forecast returns horizon predictions for hours
	// len(history), len(history)+1, ...
	Forecast(history []float64, horizon int) ([]float64, error)
	// Name identifies the model in reports.
	Name() string
}

// Persistence repeats the last observed value — the weakest sensible
// baseline.
type Persistence struct{}

// Name implements Forecaster.
func (Persistence) Name() string { return "persistence" }

// Forecast implements Forecaster.
func (Persistence) Forecast(history []float64, horizon int) ([]float64, error) {
	if len(history) == 0 {
		return nil, fmt.Errorf("forecast: persistence needs at least one observation")
	}
	if horizon < 0 {
		return nil, fmt.Errorf("forecast: negative horizon %d", horizon)
	}
	out := make([]float64, horizon)
	last := history[len(history)-1]
	for i := range out {
		out[i] = last
	}
	return out, nil
}

// SeasonalNaive predicts each future hour as the average of the
// observations at the same phase of the last Cycles periods. With
// Period=24 and Cycles=7 it forecasts "the average of the last week at
// this time of day" — the structure the paper's Figure 4 shows carbon
// traces to have.
type SeasonalNaive struct {
	// Period is the season length in hours (24 for daily, 168 for
	// weekly).
	Period int
	// Cycles is how many past periods to average (>= 1).
	Cycles int
}

// Name implements Forecaster.
func (s SeasonalNaive) Name() string {
	return fmt.Sprintf("seasonal_naive_p%d_c%d", s.Period, s.Cycles)
}

// Forecast implements Forecaster.
func (s SeasonalNaive) Forecast(history []float64, horizon int) ([]float64, error) {
	if s.Period < 1 || s.Cycles < 1 {
		return nil, fmt.Errorf("forecast: bad seasonal config period=%d cycles=%d", s.Period, s.Cycles)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("forecast: negative horizon %d", horizon)
	}
	if len(history) < s.Period {
		return nil, fmt.Errorf("forecast: need >= %d observations, have %d", s.Period, len(history))
	}
	out := make([]float64, horizon)
	n := len(history)
	for h := 0; h < horizon; h++ {
		// Phase of the predicted hour relative to the end of history.
		var sum float64
		count := 0
		for c := 1; c <= s.Cycles; c++ {
			idx := n + h - c*s.Period
			// Walk further back until the index lands inside history
			// (early horizon hours with few cycles available).
			for idx >= n {
				idx -= s.Period
			}
			if idx < 0 {
				continue
			}
			sum += history[idx]
			count++
		}
		if count == 0 {
			out[h] = history[n-1]
			continue
		}
		out[h] = sum / float64(count)
	}
	return out, nil
}

// Blended combines a daily and a weekly seasonal-naive model with a
// level correction from the most recent hours. It is the CarbonCast-
// class baseline of this repository: on the synthetic dataset it
// reaches single-digit MAPE on day-ahead forecasts for periodic
// regions.
type Blended struct {
	// DailyWeight is the weight of the daily model; the weekly model
	// gets 1-DailyWeight. Defaults to 0.7 when zero.
	DailyWeight float64
	// LevelHours is how many trailing hours anchor the level
	// correction. Defaults to 6 when zero.
	LevelHours int
}

// Name implements Forecaster.
func (Blended) Name() string { return "blended_seasonal" }

// Forecast implements Forecaster.
func (b Blended) Forecast(history []float64, horizon int) ([]float64, error) {
	w := b.DailyWeight
	if w == 0 {
		w = 0.7
	}
	if w < 0 || w > 1 {
		return nil, fmt.Errorf("forecast: daily weight %v outside [0, 1]", w)
	}
	lvl := b.LevelHours
	if lvl == 0 {
		lvl = 6
	}
	daily := SeasonalNaive{Period: trace.HoursPerDay, Cycles: 7}
	weekly := SeasonalNaive{Period: trace.HoursPerWeek, Cycles: 3}

	d, err := daily.Forecast(history, horizon)
	if err != nil {
		return nil, err
	}
	var wk []float64
	if len(history) >= trace.HoursPerWeek {
		wk, err = weekly.Forecast(history, horizon)
		if err != nil {
			return nil, err
		}
	}
	out := make([]float64, horizon)
	for h := range out {
		if wk != nil {
			out[h] = w*d[h] + (1-w)*wk[h]
		} else {
			out[h] = d[h]
		}
	}

	// Level correction: shift the first day of the forecast toward the
	// current level, decaying with lead time. This captures slow
	// weather excursions the seasonal averages miss.
	if len(history) >= lvl && horizon > 0 {
		var recent, predicted float64
		for i := 0; i < lvl; i++ {
			recent += history[len(history)-1-i]
		}
		recent /= float64(lvl)
		// What the model "predicts" for the recent past is
		// approximated by its first forecast value.
		predicted = out[0]
		offset := recent - predicted
		for h := 0; h < horizon; h++ {
			decay := 1 - float64(h)/float64(trace.HoursPerDay)
			if decay < 0 {
				break
			}
			out[h] += offset * decay
			if out[h] < 0 {
				out[h] = 0
			}
		}
	}
	return out, nil
}

// MAPE returns the mean absolute percentage error between actual and
// predicted, in percent. Hours where the actual value is zero are
// skipped (they would make the metric meaningless).
func MAPE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("forecast: MAPE length mismatch %d vs %d", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return 0, fmt.Errorf("forecast: MAPE of empty series")
	}
	var sum float64
	n := 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		d := (actual[i] - predicted[i]) / actual[i]
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("forecast: all actual values are zero")
	}
	return 100 * sum / float64(n), nil
}

// Backtest evaluates a forecaster on a series with rolling-origin
// evaluation: starting at warmup, it forecasts `horizon` hours every
// `step` hours and accumulates the MAPE over all forecast windows.
func Backtest(f Forecaster, series []float64, warmup, horizon, step int) (float64, error) {
	if warmup < 1 || horizon < 1 || step < 1 {
		return 0, fmt.Errorf("forecast: bad backtest config warmup=%d horizon=%d step=%d", warmup, horizon, step)
	}
	if warmup+horizon > len(series) {
		return 0, fmt.Errorf("forecast: series too short for backtest (%d hours)", len(series))
	}
	var total float64
	n := 0
	for origin := warmup; origin+horizon <= len(series); origin += step {
		pred, err := f.Forecast(series[:origin], horizon)
		if err != nil {
			return 0, err
		}
		m, err := MAPE(series[origin:origin+horizon], pred)
		if err != nil {
			return 0, err
		}
		total += m
		n++
	}
	return total / float64(n), nil
}

// ForecastTrace produces a full-length "forecast view" of a trace: for
// every hour past warmup, the value predicted for that hour by a
// rolling day-ahead forecast (re-issued every refresh hours). Hours
// before warmup carry the true values. The result has the same length
// and start as the input and can stand in for the error-added traces
// of the paper's §6.2 — with model error instead of uniform noise.
func ForecastTrace(f Forecaster, tr *trace.Trace, warmup, refresh int) (*trace.Trace, error) {
	if warmup < 1 || refresh < 1 {
		return nil, fmt.Errorf("forecast: bad config warmup=%d refresh=%d", warmup, refresh)
	}
	n := tr.Len()
	if warmup >= n {
		return nil, fmt.Errorf("forecast: warmup %d >= trace length %d", warmup, n)
	}
	out := make([]float64, n)
	copy(out[:warmup], tr.CI[:warmup])
	for origin := warmup; origin < n; origin += refresh {
		horizon := refresh
		if origin+horizon > n {
			horizon = n - origin
		}
		pred, err := f.Forecast(tr.CI[:origin], horizon)
		if err != nil {
			return nil, err
		}
		copy(out[origin:origin+horizon], pred)
	}
	return trace.New(tr.Region, tr.Start, out), nil
}
