package spatial_test

import (
	"fmt"
	"time"

	"carbonshift/internal/spatial"
	"carbonshift/internal/trace"
)

func exampleSet() *trace.Set {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	set, err := trace.NewSet([]*trace.Trace{
		trace.New("GREEN", start, []float64{15, 12, 18, 14}),
		trace.New("BROWN", start, []float64{700, 650, 720, 680}),
	})
	if err != nil {
		panic(err)
	}
	return set
}

// A job migrates once to the region with the lowest annual mean.
func ExampleOneMigrationCost() {
	set := exampleSet()
	cost, dest, err := spatial.OneMigrationCost(set, set.Regions(), 0, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("migrated to %s for %.0f g\n", dest, cost)
	// Output:
	// migrated to GREEN for 59 g
}

// Capacity-constrained placement: the dirty region offloads half its
// work into the green region's idle capacity.
func ExampleAssignCapacity() {
	nodes := []spatial.Node{
		{Code: "GREEN", MeanCI: 15, Workload: 0.5, Idle: 0.5},
		{Code: "BROWN", MeanCI: 690, Workload: 0.5, Idle: 0.5},
	}
	a, err := spatial.AssignCapacity(nodes, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("emission rate %.1f -> %.1f g/kWh (%d move)\n",
		a.BaselineRate, a.EmissionRate, len(a.Moves))
	// Output:
	// emission rate 352.5 -> 15.0 g/kWh (1 move)
}
