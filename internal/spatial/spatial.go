// Package spatial implements the paper's spatial workload-shifting
// policies (§3.2.2, §5.1): one-time migration to the greenest region,
// clairvoyant per-hour region hopping (∞-migration), and greedy
// capacity-constrained placement with optional latency reachability.
//
// As in the paper, migration overheads are ignored (upper bounds), and
// "greenest" is judged by annual mean carbon intensity for one-shot
// migration and by instantaneous intensity for region hopping.
package spatial

import (
	"fmt"
	"sort"

	"carbonshift/internal/trace"
)

// LowestMeanRegion returns the candidate region with the lowest mean
// carbon intensity over the trace set, and that mean. Candidates must
// be non-empty and present in the set. Ties break to the lexically
// smaller code.
func LowestMeanRegion(set *trace.Set, candidates []string) (string, float64, error) {
	if len(candidates) == 0 {
		return "", 0, fmt.Errorf("spatial: no candidate regions")
	}
	best, bestMean := "", 0.0
	for _, code := range candidates {
		tr, ok := set.Get(code)
		if !ok {
			return "", 0, fmt.Errorf("spatial: region %q not in trace set", code)
		}
		m := tr.Mean()
		if best == "" || m < bestMean || (m == bestMean && code < best) {
			best, bestMean = code, m
		}
	}
	return best, bestMean, nil
}

// CostInRegion returns the carbon cost of running a 1 kW job of the
// given length starting at hour `arrival` entirely in one region.
func CostInRegion(set *trace.Set, region string, arrival, length int) (float64, error) {
	tr, ok := set.Get(region)
	if !ok {
		return 0, fmt.Errorf("spatial: region %q not in trace set", region)
	}
	if err := checkWindow(tr.Len(), arrival, length); err != nil {
		return 0, err
	}
	return tr.Sum(arrival, arrival+length), nil
}

// OneMigrationCost runs the job in the lowest-mean candidate region
// (the paper's 1-migration policy: migrate once, then run to
// completion). It returns the cost and the chosen destination.
func OneMigrationCost(set *trace.Set, candidates []string, arrival, length int) (float64, string, error) {
	dest, _, err := LowestMeanRegion(set, candidates)
	if err != nil {
		return 0, "", err
	}
	cost, err := CostInRegion(set, dest, arrival, length)
	if err != nil {
		return 0, "", err
	}
	return cost, dest, nil
}

// InfMigrationCost runs the job hopping every hour to the candidate
// region with the lowest instantaneous intensity (the clairvoyant
// ∞-migrations policy). Overheads are ignored.
func InfMigrationCost(set *trace.Set, candidates []string, arrival, length int) (float64, error) {
	if len(candidates) == 0 {
		return 0, fmt.Errorf("spatial: no candidate regions")
	}
	if err := checkWindow(set.Len(), arrival, length); err != nil {
		return 0, err
	}
	var cost float64
	for h := arrival; h < arrival+length; h++ {
		best := 0.0
		for i, code := range candidates {
			tr, ok := set.Get(code)
			if !ok {
				return 0, fmt.Errorf("spatial: region %q not in trace set", code)
			}
			v := tr.At(h)
			if i == 0 || v < best {
				best = v
			}
		}
		cost += best
	}
	return cost, nil
}

// MinSeries returns the per-hour minimum intensity over the candidate
// regions — the ∞-migration envelope. Precomputing it turns repeated
// InfMigrationCost calls into prefix-sum lookups.
func MinSeries(set *trace.Set, candidates []string) ([]float64, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("spatial: no candidate regions")
	}
	out := make([]float64, set.Len())
	for i, code := range candidates {
		tr, ok := set.Get(code)
		if !ok {
			return nil, fmt.Errorf("spatial: region %q not in trace set", code)
		}
		if i == 0 {
			copy(out, tr.CI)
			continue
		}
		for h, v := range tr.CI {
			if v < out[h] {
				out[h] = v
			}
		}
	}
	return out, nil
}

func checkWindow(n, arrival, length int) error {
	if length < 1 {
		return fmt.Errorf("spatial: job length %d must be >= 1", length)
	}
	if arrival < 0 || arrival+length > n {
		return fmt.Errorf("spatial: window [%d, %d) outside trace of %d hours", arrival, arrival+length, n)
	}
	return nil
}

// Node is one region's standing in a capacity assignment: its mean
// carbon intensity, the workload it must place (in arbitrary capacity
// units), and the idle capacity it offers to others.
type Node struct {
	Code     string
	MeanCI   float64
	Workload float64
	Idle     float64
}

// Move records workload relocated from one region to another.
type Move struct {
	From, To string
	Amount   float64
}

// Assignment is the outcome of a capacity-constrained placement.
type Assignment struct {
	// Moves lists all relocations, in the order they were made.
	Moves []Move
	// AchievedCI maps each region to the mean carbon intensity its
	// workload actually experiences after migration (weighted across
	// kept and moved portions). Regions with zero workload map to
	// their own intensity.
	AchievedCI map[string]float64
	// EmissionRate is the workload-weighted mean intensity across all
	// regions after migration — the system-wide g·CO₂eq per kWh.
	EmissionRate float64
	// BaselineRate is the same quantity with no migration.
	BaselineRate float64
}

// Reduction returns the absolute drop in the system-wide emission rate.
func (a Assignment) Reduction() float64 { return a.BaselineRate - a.EmissionRate }

// AssignCapacity places workloads greedily: the dirtiest region moves
// as much of its workload as possible into the cleanest reachable
// region with idle capacity, then the next dirtiest, and so on —
// exactly the upper-bound heuristic of §5.1.2. Work only moves to
// strictly cleaner regions. The reachable predicate constrains
// candidate destinations (nil means unconstrained); it is how latency
// SLOs and geographic groupings enter (§5.1.3).
func AssignCapacity(nodes []Node, reachable func(from, to string) bool) (Assignment, error) {
	if len(nodes) == 0 {
		return Assignment{}, fmt.Errorf("spatial: no nodes")
	}
	var totalWork float64
	for _, n := range nodes {
		if n.Workload < 0 || n.Idle < 0 {
			return Assignment{}, fmt.Errorf("spatial: node %s has negative workload or idle", n.Code)
		}
		totalWork += n.Workload
	}
	if totalWork == 0 {
		return Assignment{}, fmt.Errorf("spatial: no workload to place")
	}

	// Sources dirtiest-first, sinks cleanest-first. Ties break on code
	// for determinism.
	sources := make([]int, len(nodes))
	sinks := make([]int, len(nodes))
	for i := range nodes {
		sources[i], sinks[i] = i, i
	}
	sort.Slice(sources, func(a, b int) bool {
		if nodes[sources[a]].MeanCI != nodes[sources[b]].MeanCI {
			return nodes[sources[a]].MeanCI > nodes[sources[b]].MeanCI
		}
		return nodes[sources[a]].Code < nodes[sources[b]].Code
	})
	sort.Slice(sinks, func(a, b int) bool {
		if nodes[sinks[a]].MeanCI != nodes[sinks[b]].MeanCI {
			return nodes[sinks[a]].MeanCI < nodes[sinks[b]].MeanCI
		}
		return nodes[sinks[a]].Code < nodes[sinks[b]].Code
	})

	idle := make([]float64, len(nodes))
	remaining := make([]float64, len(nodes))
	movedCost := make([]float64, len(nodes)) // Σ amount · destCI per source
	movedAmt := make([]float64, len(nodes))
	for i, n := range nodes {
		idle[i] = n.Idle
		remaining[i] = n.Workload
	}

	var moves []Move
	var baseline float64
	for _, n := range nodes {
		baseline += n.Workload * n.MeanCI
	}

	for _, s := range sources {
		src := nodes[s]
		for _, d := range sinks {
			if remaining[s] <= 0 {
				break
			}
			dst := nodes[d]
			if d == s || idle[d] <= 0 {
				continue
			}
			if dst.MeanCI >= src.MeanCI {
				break // sinks are sorted; nothing cleaner remains
			}
			if reachable != nil && !reachable(src.Code, dst.Code) {
				continue
			}
			amt := remaining[s]
			if amt > idle[d] {
				amt = idle[d]
			}
			remaining[s] -= amt
			idle[d] -= amt
			movedCost[s] += amt * dst.MeanCI
			movedAmt[s] += amt
			moves = append(moves, Move{From: src.Code, To: dst.Code, Amount: amt})
		}
	}

	achieved := make(map[string]float64, len(nodes))
	var total float64
	for i, n := range nodes {
		cost := remaining[i]*n.MeanCI + movedCost[i]
		total += cost
		if n.Workload > 0 {
			achieved[n.Code] = cost / n.Workload
		} else {
			achieved[n.Code] = n.MeanCI
		}
	}
	return Assignment{
		Moves:        moves,
		AchievedCI:   achieved,
		EmissionRate: total / totalWork,
		BaselineRate: baseline / totalWork,
	}, nil
}

// UniformNodes builds the symmetric scenario of Figure 5(b–c): every
// region has capacity 1, carries workload 1-idle, and offers idle
// capacity idle.
func UniformNodes(set *trace.Set, idle float64) ([]Node, error) {
	if idle < 0 || idle > 1 {
		return nil, fmt.Errorf("spatial: idle fraction %v outside [0, 1]", idle)
	}
	codes := set.Regions()
	nodes := make([]Node, len(codes))
	for i, code := range codes {
		nodes[i] = Node{
			Code:     code,
			MeanCI:   set.MustGet(code).Mean(),
			Workload: 1 - idle,
			Idle:     idle,
		}
	}
	return nodes, nil
}
