package spatial

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"carbonshift/internal/rng"
	"carbonshift/internal/trace"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func mkSet(t *testing.T, series map[string][]float64) *trace.Set {
	t.Helper()
	var traces []*trace.Trace
	for code, ci := range series {
		traces = append(traces, trace.New(code, t0, ci))
	}
	s, err := trace.NewSet(traces)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testSet(t *testing.T) *trace.Set {
	return mkSet(t, map[string][]float64{
		"CLEAN": {10, 12, 11, 9},
		"MID":   {100, 50, 120, 80},
		"DIRTY": {700, 720, 690, 710},
	})
}

func TestLowestMeanRegion(t *testing.T) {
	set := testSet(t)
	code, mean, err := LowestMeanRegion(set, set.Regions())
	if err != nil {
		t.Fatal(err)
	}
	if code != "CLEAN" || math.Abs(mean-10.5) > 1e-9 {
		t.Fatalf("lowest = %s (%v)", code, mean)
	}
	// Restricting candidates changes the answer.
	code, _, err = LowestMeanRegion(set, []string{"MID", "DIRTY"})
	if err != nil || code != "MID" {
		t.Fatalf("restricted lowest = %s, %v", code, err)
	}
	if _, _, err := LowestMeanRegion(set, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, _, err := LowestMeanRegion(set, []string{"NOPE"}); err == nil {
		t.Fatal("unknown candidate accepted")
	}
}

func TestCostInRegion(t *testing.T) {
	set := testSet(t)
	got, err := CostInRegion(set, "MID", 1, 2)
	if err != nil || got != 170 {
		t.Fatalf("cost = %v, %v", got, err)
	}
	if _, err := CostInRegion(set, "MID", 3, 2); err == nil {
		t.Fatal("overrun accepted")
	}
	if _, err := CostInRegion(set, "MID", 0, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := CostInRegion(set, "NOPE", 0, 1); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestOneMigrationCost(t *testing.T) {
	set := testSet(t)
	cost, dest, err := OneMigrationCost(set, set.Regions(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dest != "CLEAN" || cost != 42 {
		t.Fatalf("one-migration = %v to %s", cost, dest)
	}
}

func TestInfMigrationCost(t *testing.T) {
	// CLEAN is cheapest except hour 1, where ALT dips below.
	set := mkSet(t, map[string][]float64{
		"CLEAN": {10, 12, 11, 9},
		"ALT":   {50, 5, 50, 50},
	})
	cost, err := InfMigrationCost(set, set.Regions(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10.0 + 5 + 11 + 9; cost != want {
		t.Fatalf("inf-migration = %v, want %v", cost, want)
	}
	if _, err := InfMigrationCost(set, nil, 0, 1); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := InfMigrationCost(set, []string{"NOPE"}, 0, 1); err == nil {
		t.Fatal("unknown candidate accepted")
	}
	if _, err := InfMigrationCost(set, set.Regions(), 3, 2); err == nil {
		t.Fatal("overrun accepted")
	}
}

func TestInfNeverWorseThanOne(t *testing.T) {
	src := rng.New(3)
	series := make(map[string][]float64)
	for _, code := range []string{"A", "B", "C", "D"} {
		ci := make([]float64, 300)
		base := src.Uniform(50, 600)
		for i := range ci {
			ci[i] = base + src.Uniform(-40, 40)
		}
		series[code] = ci
	}
	set := mkSet(t, series)
	for arrival := 0; arrival < 250; arrival += 13 {
		one, _, err := OneMigrationCost(set, set.Regions(), arrival, 48)
		if err != nil {
			t.Fatal(err)
		}
		inf, err := InfMigrationCost(set, set.Regions(), arrival, 48)
		if err != nil {
			t.Fatal(err)
		}
		if inf > one+1e-9 {
			t.Fatalf("arrival %d: inf-migration %v worse than one-migration %v", arrival, inf, one)
		}
	}
}

func TestMinSeriesMatchesInfMigration(t *testing.T) {
	set := testSet(t)
	min, err := MinSeries(set, set.Regions())
	if err != nil {
		t.Fatal(err)
	}
	var manual float64
	for _, v := range min {
		manual += v
	}
	inf, err := InfMigrationCost(set, set.Regions(), 0, set.Len())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(manual-inf) > 1e-9 {
		t.Fatalf("MinSeries sum %v != InfMigrationCost %v", manual, inf)
	}
	if _, err := MinSeries(set, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := MinSeries(set, []string{"NOPE"}); err == nil {
		t.Fatal("unknown candidate accepted")
	}
}

func nodesFor(ci map[string]float64, workload, idle float64) []Node {
	var out []Node
	for code, mean := range ci {
		out = append(out, Node{Code: code, MeanCI: mean, Workload: workload, Idle: idle})
	}
	return out
}

func TestAssignCapacityPairsExtremes(t *testing.T) {
	nodes := nodesFor(map[string]float64{"A": 700, "B": 400, "C": 100, "D": 20}, 0.5, 0.5)
	a, err := AssignCapacity(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dirtiest (A) fills the cleanest sink (D); B fills C.
	if math.Abs(a.AchievedCI["A"]-20) > 1e-9 {
		t.Errorf("A achieved %v, want 20", a.AchievedCI["A"])
	}
	if math.Abs(a.AchievedCI["B"]-100) > 1e-9 {
		t.Errorf("B achieved %v, want 100", a.AchievedCI["B"])
	}
	// Clean regions keep their own work.
	if math.Abs(a.AchievedCI["C"]-100) > 1e-9 || math.Abs(a.AchievedCI["D"]-20) > 1e-9 {
		t.Errorf("clean regions moved: C=%v D=%v", a.AchievedCI["C"], a.AchievedCI["D"])
	}
	wantRate := (20.0 + 100 + 100 + 20) / 4
	if math.Abs(a.EmissionRate-wantRate) > 1e-9 {
		t.Errorf("emission rate %v, want %v", a.EmissionRate, wantRate)
	}
	if math.Abs(a.BaselineRate-305) > 1e-9 {
		t.Errorf("baseline rate %v, want 305", a.BaselineRate)
	}
	if a.Reduction() <= 0 {
		t.Error("no reduction")
	}
}

func TestAssignCapacitySplitsAcrossSinks(t *testing.T) {
	// One big dirty source, two small clean sinks.
	nodes := []Node{
		{Code: "DIRTY", MeanCI: 800, Workload: 1.0, Idle: 0},
		{Code: "C1", MeanCI: 10, Workload: 0, Idle: 0.4},
		{Code: "C2", MeanCI: 20, Workload: 0, Idle: 0.4},
	}
	a, err := AssignCapacity(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 0.4 to C1 (cleanest), 0.4 to C2, 0.2 stays at 800.
	want := (0.4*10 + 0.4*20 + 0.2*800) / 1.0
	if math.Abs(a.AchievedCI["DIRTY"]-want) > 1e-9 {
		t.Fatalf("achieved %v, want %v", a.AchievedCI["DIRTY"], want)
	}
	if len(a.Moves) != 2 {
		t.Fatalf("moves = %v", a.Moves)
	}
	if a.Moves[0].To != "C1" || a.Moves[1].To != "C2" {
		t.Fatalf("sink order wrong: %v", a.Moves)
	}
}

func TestAssignCapacityNeverMovesToDirtier(t *testing.T) {
	nodes := nodesFor(map[string]float64{"A": 100, "B": 200}, 0.5, 10)
	a, err := AssignCapacity(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range a.Moves {
		if m.From == "A" {
			t.Fatalf("clean region offloaded to dirtier: %v", m)
		}
	}
	// B moves to A; emission rate must drop to A's CI.
	if math.Abs(a.EmissionRate-100) > 1e-9 {
		t.Fatalf("emission rate %v", a.EmissionRate)
	}
}

func TestAssignCapacityReachability(t *testing.T) {
	nodes := nodesFor(map[string]float64{"A": 700, "B": 10, "C": 50}, 0.5, 0.5)
	// A may only reach C.
	reach := func(from, to string) bool { return !(from == "A" && to == "B") }
	a, err := AssignCapacity(nodes, reach)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.AchievedCI["A"]-50) > 1e-9 {
		t.Fatalf("A achieved %v, want 50 (B unreachable)", a.AchievedCI["A"])
	}
}

func TestAssignCapacityZeroIdle(t *testing.T) {
	nodes := nodesFor(map[string]float64{"A": 700, "B": 10}, 1, 0)
	a, err := AssignCapacity(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Moves) != 0 || a.Reduction() != 0 {
		t.Fatalf("zero idle produced moves %v reduction %v", a.Moves, a.Reduction())
	}
}

func TestAssignCapacityErrors(t *testing.T) {
	if _, err := AssignCapacity(nil, nil); err == nil {
		t.Error("empty nodes accepted")
	}
	if _, err := AssignCapacity([]Node{{Code: "A", Workload: -1}}, nil); err == nil {
		t.Error("negative workload accepted")
	}
	if _, err := AssignCapacity([]Node{{Code: "A", Workload: 0, Idle: 1}}, nil); err == nil {
		t.Error("zero total workload accepted")
	}
}

func TestUniformNodes(t *testing.T) {
	set := testSet(t)
	nodes, err := UniformNodes(set, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if math.Abs(n.Workload-0.7) > 1e-9 || math.Abs(n.Idle-0.3) > 1e-9 {
			t.Fatalf("node %+v", n)
		}
	}
	if _, err := UniformNodes(set, -0.1); err == nil {
		t.Error("negative idle accepted")
	}
	if _, err := UniformNodes(set, 1.1); err == nil {
		t.Error("idle > 1 accepted")
	}
}

// TestMoreIdleNeverHurts checks the Figure 5(c) monotonicity: system
// emissions fall (weakly) as idle capacity grows.
func TestMoreIdleNeverHurts(t *testing.T) {
	src := rng.New(9)
	series := make(map[string][]float64)
	for i := 0; i < 12; i++ {
		ci := make([]float64, 10)
		base := src.Uniform(20, 700)
		for h := range ci {
			ci[h] = base
		}
		series[string(rune('A'+i))] = ci
	}
	set := mkSet(t, series)
	prev := math.Inf(1)
	for _, idle := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		nodes, err := UniformNodes(set, idle)
		if err != nil {
			t.Fatal(err)
		}
		if idle == 0.99 {
			// Workload 0.01 each still must be positive for assignment.
			for i := range nodes {
				if nodes[i].Workload <= 0 {
					t.Fatal("workload vanished")
				}
			}
		}
		a, err := AssignCapacity(nodes, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.EmissionRate > prev+1e-9 {
			t.Fatalf("emission rate rose at idle %v: %v > %v", idle, a.EmissionRate, prev)
		}
		prev = a.EmissionRate
	}
}

func TestQuickAssignConservesWorkload(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%10 + 2
		src := rng.New(seed)
		nodes := make([]Node, n)
		var totalWork float64
		for i := range nodes {
			nodes[i] = Node{
				Code:     string(rune('A' + i)),
				MeanCI:   src.Uniform(10, 800),
				Workload: src.Uniform(0.1, 1),
				Idle:     src.Uniform(0, 1),
			}
			totalWork += nodes[i].Workload
		}
		a, err := AssignCapacity(nodes, nil)
		if err != nil {
			return false
		}
		// Moved amounts never exceed source workloads or sink idle.
		moved := make(map[string]float64)
		received := make(map[string]float64)
		for _, m := range a.Moves {
			if m.Amount <= 0 {
				return false
			}
			moved[m.From] += m.Amount
			received[m.To] += m.Amount
		}
		for _, nd := range nodes {
			if moved[nd.Code] > nd.Workload+1e-9 {
				return false
			}
			if received[nd.Code] > nd.Idle+1e-9 {
				return false
			}
		}
		// Emissions never increase.
		return a.EmissionRate <= a.BaselineRate+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAssignCapacity123(b *testing.B) {
	src := rng.New(1)
	nodes := make([]Node, 123)
	for i := range nodes {
		nodes[i] = Node{
			Code:     string(rune('A'+i%26)) + string(rune('a'+i/26)),
			MeanCI:   src.Uniform(10, 800),
			Workload: 0.5,
			Idle:     0.5,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssignCapacity(nodes, nil); err != nil {
			b.Fatal(err)
		}
	}
}
