package spatial

import (
	"math"
	"testing"
)

func TestPerMove(t *testing.T) {
	m := MigrationCost{StateGB: 100, WhPerGB: 5, IntensityG: 400}
	// 100 GB * 5 Wh = 500 Wh = 0.5 kWh * 400 g = 200 g.
	if got := m.PerMove(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("PerMove = %v, want 200", got)
	}
	if DefaultMigration.PerMove() <= 0 {
		t.Fatal("default migration is free")
	}
	if err := (MigrationCost{StateGB: -1}).Validate(); err == nil {
		t.Fatal("negative state accepted")
	}
}

func TestInfMigrationWithZeroOverheadMatchesFree(t *testing.T) {
	set := mkSet(t, map[string][]float64{
		"A": {10, 100, 10, 100},
		"B": {100, 10, 100, 10},
	})
	free, err := InfMigrationCost(set, set.Regions(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	withZero, moves, err := InfMigrationWithOverhead(set, set.Regions(), 0, 4, MigrationCost{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(free-withZero) > 1e-9 {
		t.Fatalf("zero-overhead cost %v != free cost %v", withZero, free)
	}
	if moves != 3 {
		t.Fatalf("moves = %d, want 3 (hop every hour)", moves)
	}
}

func TestInfMigrationOverheadCharged(t *testing.T) {
	set := mkSet(t, map[string][]float64{
		"A": {10, 100},
		"B": {100, 10},
	})
	cost := MigrationCost{StateGB: 10, WhPerGB: 10, IntensityG: 1000} // 100 g per move
	got, moves, err := InfMigrationWithOverhead(set, set.Regions(), 0, 2, cost)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 1 {
		t.Fatalf("moves = %d", moves)
	}
	// Hours: A(10) then B(10) plus one 100 g move.
	if math.Abs(got-120) > 1e-9 {
		t.Fatalf("cost = %v, want 120", got)
	}
}

func TestInfMigrationNoHopNoOverhead(t *testing.T) {
	set := mkSet(t, map[string][]float64{
		"A": {10, 10, 10},
		"B": {100, 100, 100},
	})
	got, moves, err := InfMigrationWithOverhead(set, set.Regions(), 0, 3, DefaultMigration)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Fatalf("moves = %d, want 0 (stable ranking)", moves)
	}
	if math.Abs(got-30) > 1e-9 {
		t.Fatalf("cost = %v, want 30", got)
	}
}

func TestInfMigrationOverheadErrors(t *testing.T) {
	set := mkSet(t, map[string][]float64{"A": {1, 2}})
	if _, _, err := InfMigrationWithOverhead(set, nil, 0, 1, DefaultMigration); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, _, err := InfMigrationWithOverhead(set, []string{"A"}, 1, 2, DefaultMigration); err == nil {
		t.Error("overrun accepted")
	}
	if _, _, err := InfMigrationWithOverhead(set, []string{"A"}, 0, 1, MigrationCost{StateGB: -1}); err == nil {
		t.Error("invalid cost accepted")
	}
	if _, _, err := InfMigrationWithOverhead(set, []string{"NOPE"}, 0, 1, MigrationCost{}); err == nil {
		t.Error("unknown candidate accepted")
	}
}

func TestBreakEvenOverhead(t *testing.T) {
	// Alternating ranking: ∞-migration saves 90 g/hop opportunity but
	// needs a hop every hour.
	set := mkSet(t, map[string][]float64{
		"A": {10, 100, 10, 100},
		"B": {100, 10, 100, 10},
	})
	perMove, advantage, moves, err := BreakEvenOverhead(set, set.Regions(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 1-migration: stay in A (mean 55 each; A chosen by tie-break on
	// equal means? A mean 55, B mean 55; lexical tie-break -> A) cost
	// 220. Free hopping: 40. Advantage 180 over 3 moves = 60 g/move.
	if moves != 3 {
		t.Fatalf("moves = %d", moves)
	}
	if math.Abs(advantage-180) > 1e-9 {
		t.Fatalf("advantage = %v, want 180", advantage)
	}
	if math.Abs(perMove-60) > 1e-9 {
		t.Fatalf("break-even = %v, want 60", perMove)
	}
}

func TestBreakEvenNoMoves(t *testing.T) {
	set := mkSet(t, map[string][]float64{
		"A": {10, 10},
		"B": {500, 500},
	})
	perMove, advantage, moves, err := BreakEvenOverhead(set, set.Regions(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 || perMove != 0 || math.Abs(advantage) > 1e-9 {
		t.Fatalf("stable ranking gave perMove=%v advantage=%v moves=%d", perMove, advantage, moves)
	}
}

// TestOverheadInvertsAdvantage is the ablation's punchline: with a
// realistic per-move cost, the clairvoyant hopping policy becomes
// *worse* than migrating once whenever rankings flip often.
func TestOverheadInvertsAdvantage(t *testing.T) {
	ci := map[string][]float64{
		"A": make([]float64, 48),
		"B": make([]float64, 48),
	}
	for h := 0; h < 48; h++ {
		// Rankings flip every hour but the gap is small (5 g).
		if h%2 == 0 {
			ci["A"][h], ci["B"][h] = 100, 105
		} else {
			ci["A"][h], ci["B"][h] = 105, 100
		}
	}
	set := mkSet(t, ci)
	one, _, err := OneMigrationCost(set, set.Regions(), 0, 48)
	if err != nil {
		t.Fatal(err)
	}
	withOverhead, moves, err := InfMigrationWithOverhead(set, set.Regions(), 0, 48, DefaultMigration)
	if err != nil {
		t.Fatal(err)
	}
	if moves < 40 {
		t.Fatalf("moves = %d, expected near-hourly hopping", moves)
	}
	if withOverhead <= one {
		t.Fatalf("overhead did not invert the advantage: hopping %v vs once %v", withOverhead, one)
	}
}
