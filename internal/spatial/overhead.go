package spatial

import (
	"fmt"

	"carbonshift/internal/trace"
)

// The paper's ∞-migration policy is deliberately overhead-free: it is
// an upper bound, and its headline result is that even so it beats a
// single migration by less than 10 g·CO₂eq. This file supplies the
// missing realism for the repository's ablation: a per-migration
// carbon cost derived from the job's state size, which lets callers
// show that any nonzero overhead quickly erases — and then inverts —
// the region-hopping advantage.

// MigrationCost models the carbon cost of moving a job once: the
// energy to checkpoint, transfer, and restore its state, converted at
// a representative intensity.
type MigrationCost struct {
	// StateGB is the job's memory+disk state size in gigabytes.
	StateGB float64
	// WhPerGB is the end-to-end energy per transferred gigabyte
	// (network + serialization on both sides). Wide-area transfer
	// estimates cluster around a few watt-hours per GB.
	WhPerGB float64
	// IntensityG is the carbon intensity applied to the transfer
	// energy, in g·CO₂eq/kWh.
	IntensityG float64
}

// DefaultMigration is a mid-size batch job: 64 GB of state at 4 Wh/GB
// charged at a 400 g/kWh world-average-ish intensity.
var DefaultMigration = MigrationCost{StateGB: 64, WhPerGB: 4, IntensityG: 400}

// PerMove returns the g·CO₂eq charged for one migration.
func (m MigrationCost) PerMove() float64 {
	return m.StateGB * m.WhPerGB / 1000 * m.IntensityG
}

// Validate reports configuration errors.
func (m MigrationCost) Validate() error {
	if m.StateGB < 0 || m.WhPerGB < 0 || m.IntensityG < 0 {
		return fmt.Errorf("spatial: negative migration cost parameters %+v", m)
	}
	return nil
}

// InfMigrationWithOverhead runs the clairvoyant hourly-hopping policy
// but charges PerMove for every region change (the initial placement
// is free, matching the 1-migration accounting). It returns the total
// cost and the number of migrations performed.
//
// The hop decision itself stays greedy on intensity — the point is to
// price the paper's idealized policy, not to design a better one; a
// policy that anticipates overheads would hop less and land between
// this and OneMigrationCost.
func InfMigrationWithOverhead(set *trace.Set, candidates []string, arrival, length int, cost MigrationCost) (float64, int, error) {
	if err := cost.Validate(); err != nil {
		return 0, 0, err
	}
	if len(candidates) == 0 {
		return 0, 0, fmt.Errorf("spatial: no candidate regions")
	}
	if err := checkWindow(set.Len(), arrival, length); err != nil {
		return 0, 0, err
	}
	var total float64
	moves := 0
	current := ""
	for h := arrival; h < arrival+length; h++ {
		best, bestV := "", 0.0
		for i, code := range candidates {
			tr, ok := set.Get(code)
			if !ok {
				return 0, 0, fmt.Errorf("spatial: region %q not in trace set", code)
			}
			v := tr.At(h)
			if i == 0 || v < bestV || (v == bestV && code < best) {
				best, bestV = code, v
			}
		}
		if current != "" && best != current {
			total += cost.PerMove()
			moves++
		}
		current = best
		total += bestV
	}
	return total, moves, nil
}

// BreakEvenOverhead returns the per-move overhead (g·CO₂eq) at which
// overhead-free ∞-migration's advantage over 1-migration disappears
// for the given job, along with the raw advantage and move count. A
// small break-even confirms the paper's takeaway that sophisticated
// hopping policies have no practical headroom.
func BreakEvenOverhead(set *trace.Set, candidates []string, arrival, length int) (perMoveG, advantageG float64, moves int, err error) {
	one, _, err := OneMigrationCost(set, candidates, arrival, length)
	if err != nil {
		return 0, 0, 0, err
	}
	free, moves, err := InfMigrationWithOverhead(set, candidates, arrival, length, MigrationCost{})
	if err != nil {
		return 0, 0, 0, err
	}
	advantageG = one - free
	if moves == 0 {
		return 0, advantageG, 0, nil
	}
	return advantageG / float64(moves), advantageG, moves, nil
}
