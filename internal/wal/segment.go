package wal

// The segment-read API: a byte-offset cursor over a journal file, built
// for replication. A SegmentReader reads complete, checksummed records
// starting from any record boundary and reports the offset after each
// one, so a follower can resume a stream from exactly where it stopped.
// Unlike Replay — which consumes a dead journal once, front to back — a
// SegmentReader tails a file that may still be growing: an incomplete
// record at the tail is "no data yet" (ErrNoRecord, retryable after the
// writer flushes more bytes), while a CRC mismatch or an impossible
// length on fully-present bytes is real corruption (ErrCorrupt,
// terminal). Appenders are untouched; reads go through pread and never
// move the writer's file position.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrNoRecord reports that the file holds no complete record at the
// cursor — the tail is still being written (or flushed). Retry after
// the writer makes progress.
var ErrNoRecord = errors.New("wal: no complete record at cursor")

// ErrCorrupt reports bytes at the cursor that can never become a valid
// record no matter how much the file grows: a CRC mismatch on a fully
// present record, or a length prefix past MaxRecord.
var ErrCorrupt = errors.New("wal: corrupt record at cursor")

// SegmentReader is a record cursor over one journal file. It is not
// safe for concurrent use; a replication stream owns one.
type SegmentReader struct {
	f   *os.File
	off int64
	buf []byte
}

// OpenSegment opens a journal file for cursor reads starting at byte
// offset. Offset 0 starts at the first record (the header is validated
// first); any other offset must be ≥ HeaderLen and land on a record
// boundary — a misaligned offset surfaces later as ErrCorrupt, never a
// panic. The file may still be growing; the reader sees appended bytes
// as the writer flushes them.
func OpenSegment(path string, offset int64) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &SegmentReader{f: f, off: offset}
	if offset == 0 {
		hdr := make([]byte, HeaderLen)
		if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(HeaderLen)), hdr); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %s: short header: %w", path, err)
		}
		if string(hdr[:len(journalMagic)]) != journalMagic {
			f.Close()
			return nil, fmt.Errorf("wal: %s is not a journal (bad magic %q)", path, hdr[:len(journalMagic)])
		}
		if v := hdr[len(journalMagic)]; v != journalVersion {
			f.Close()
			return nil, fmt.Errorf("wal: %s: unsupported journal version %d (want %d)", path, v, journalVersion)
		}
		r.off = int64(HeaderLen)
	} else if offset < int64(HeaderLen) {
		f.Close()
		return nil, fmt.Errorf("wal: segment offset %d is inside the header", offset)
	}
	return r, nil
}

// Offset returns the cursor: the byte offset of the next unread record.
func (r *SegmentReader) Offset() int64 { return r.off }

// Next reads the record at the cursor and advances past it. It returns
// ErrNoRecord when the file ends before a complete record (retryable on
// a live journal) and ErrCorrupt when the bytes present can never form
// one. The payload slice is reused across calls — callers must not
// retain it.
func (r *SegmentReader) Next() ([]byte, error) {
	var hdr [recordHeaderLen]byte
	if _, err := r.f.ReadAt(hdr[:], r.off); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrNoRecord
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxRecord {
		return nil, fmt.Errorf("%w: length %d exceeds limit %d", ErrCorrupt, n, MaxRecord)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := r.f.ReadAt(payload, r.off+recordHeaderLen); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrNoRecord
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, r.off)
	}
	r.off += recordHeaderLen + int64(n)
	return payload, nil
}

// Size returns the file's current length — the upper bound for valid
// cursors into it right now.
func (r *SegmentReader) Size() (int64, error) {
	st, err := r.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close releases the file handle.
func (r *SegmentReader) Close() error { return r.f.Close() }
