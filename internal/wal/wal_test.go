package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func appendAll(t *testing.T, path string, opts Options, payloads ...[]byte) {
	t.Helper()
	j, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, path string) ([][]byte, ReplayResult) {
	t.Helper()
	var got [][]byte
	res, err := Replay(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

func TestJournalRoundTrip(t *testing.T) {
	for _, mode := range []SyncMode{SyncNone, SyncBatch, SyncAlways} {
		t.Run(mode.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.wal")
			want := [][]byte{[]byte("alpha"), {}, []byte("gamma with a longer payload"), {0, 1, 2, 255}}
			appendAll(t, path, Options{Sync: mode, BatchInterval: time.Millisecond}, want...)
			got, res := replayAll(t, path)
			if res.Truncated {
				t.Fatal("clean journal reported truncated")
			}
			if res.Records != len(want) {
				t.Fatalf("replayed %d records, want %d", res.Records, len(want))
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if res.ValidBytes != fi.Size() {
				t.Fatalf("ValidBytes %d, file size %d", res.ValidBytes, fi.Size())
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}

// TestJournalTornTail: every possible truncation point of a valid
// journal replays the longest prefix of complete records and reports
// the torn tail, never an error or a partial record.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	payloads := [][]byte{[]byte("one"), []byte("two-two"), []byte("3")}
	appendAll(t, path, Options{Sync: SyncNone}, payloads...)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries: header, then each record end.
	boundaries := []int64{int64(HeaderLen)}
	for _, p := range payloads {
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+int64(recordHeaderLen+len(p)))
	}

	cut := filepath.Join(dir, "cut.wal")
	for c := 0; c <= len(full); c++ {
		if err := os.WriteFile(cut, full[:c], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := replayAll(t, cut)
		// The expected prefix: every record fully inside the cut.
		want := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= int64(c) {
				want = i
			}
		}
		if c < HeaderLen {
			want = 0
		}
		if res.Records != want || len(got) != want {
			t.Fatalf("cut %d: replayed %d records, want %d", c, res.Records, want)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", c, i, got[i], payloads[i])
			}
		}
		atBoundary := int64(c) == boundaries[want] && c >= HeaderLen
		if res.Truncated == atBoundary {
			t.Fatalf("cut %d: Truncated = %v at boundary %v", c, res.Truncated, atBoundary)
		}
	}
}

func TestJournalCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	appendAll(t, path, Options{Sync: SyncNone}, []byte("first"), []byte("second"))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record: replay keeps the first.
	mut := append([]byte(nil), full...)
	mut[len(mut)-1] ^= 0xff
	bad := filepath.Join(dir, "bad.wal")
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := replayAll(t, bad)
	if res.Records != 1 || !res.Truncated || len(got) != 1 || string(got[0]) != "first" {
		t.Fatalf("corrupt tail: records=%d truncated=%v got=%q", res.Records, res.Truncated, got)
	}

	// Damage a crash cannot explain is loud: a foreign magic or a
	// future format version must error, not read as an empty journal —
	// recovery would otherwise silently discard acknowledged records.
	for _, mutate := range []func([]byte){
		func(b []byte) { b[0] ^= 0xff },          // magic
		func(b []byte) { b[HeaderLen-1] = 0x7f }, // version byte
	} {
		mut = append([]byte(nil), full...)
		mutate(mut)
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(bad, func([]byte) error { return nil }); err == nil {
			t.Fatal("foreign/future header replayed without error")
		}
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	for _, mode := range []SyncMode{SyncBatch, SyncAlways} {
		t.Run(mode.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.wal")
			j, err := Create(path, Options{Sync: mode, BatchInterval: 200 * time.Microsecond})
			if err != nil {
				t.Fatal(err)
			}
			const workers, per = 8, 50
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := j.Append(fmt.Appendf(nil, "w%d-%d", w, i)); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			got, res := replayAll(t, path)
			if len(got) != workers*per || res.Truncated {
				t.Fatalf("replayed %d records (truncated=%v), want %d", len(got), res.Truncated, workers*per)
			}
			seen := make(map[string]bool, len(got))
			for _, p := range got {
				if seen[string(p)] {
					t.Fatalf("duplicate record %q", p)
				}
				seen[string(p)] = true
			}
		})
	}
}

func TestJournalOversizeRecord(t *testing.T) {
	j, err := Create(filepath.Join(t.TempDir(), "j.wal"), Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

// TestJournalCloseIdempotent: concurrent and repeated Close calls are
// safe, an empty journal still gets its header flushed, and appends
// after Close error instead of vanishing.
func TestJournalCloseIdempotent(t *testing.T) {
	for _, mode := range []SyncMode{SyncNone, SyncBatch, SyncAlways} {
		t.Run(mode.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.wal")
			j, err := Create(path, Options{Sync: mode, BatchInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := j.Close(); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if err := j.Append([]byte("late")); err == nil {
				t.Fatal("append after close succeeded")
			}
			// Even with no records the header must be on disk.
			_, res := replayAll(t, path)
			if res.Truncated || res.ValidBytes != int64(HeaderLen) {
				t.Fatalf("empty closed journal: %+v", res)
			}
		})
	}
}

// TestAppendNoWaitSharedCommit: records sequenced via AppendNoWait and
// awaited concurrently via WaitSynced are all durable and in order —
// the group-commit shape schedd's admission path uses.
func TestAppendNoWaitSharedCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Create(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var (
		mu      sync.Mutex // stands in for schedd's admitMu: fixes record order
		counter int
		wg      sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			stamp := counter
			counter++
			seq, err := j.AppendNoWait(fmt.Appendf(nil, "rec-%02d", stamp))
			mu.Unlock()
			if err != nil {
				t.Error(err)
				return
			}
			if err := j.WaitSynced(seq); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := replayAll(t, path)
	if len(got) != n || res.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want %d", len(got), res.Truncated, n)
	}
	for i, p := range got {
		if want := fmt.Sprintf("rec-%02d", i); string(p) != want {
			t.Fatalf("record %d = %q, want %q (order not fixed by the sequencing lock)", i, p, want)
		}
	}
}

// TestAppendBatchNoWait: a batch lands as contiguous in-order records,
// one WaitSynced on the returned (last) sequence covers the whole
// batch, concurrent batches never interleave, and invalid batches —
// empty, or containing an oversize record — are rejected whole.
func TestAppendBatchNoWait(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Create(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := j.AppendBatchNoWait(); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := j.AppendBatchNoWait([]byte("ok"), make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("batch with an oversize record accepted")
	}
	if got, _ := replayAll(t, path); len(got) != 0 {
		t.Fatalf("rejected batches left %d records behind", len(got))
	}

	const batches, per = 16, 5
	var wg sync.WaitGroup
	for g := 0; g < batches; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs := make([][]byte, per)
			for i := range recs {
				recs[i] = fmt.Appendf(nil, "g%02d-%d", g, i)
			}
			seq, err := j.AppendBatchNoWait(recs...)
			if err != nil {
				t.Error(err)
				return
			}
			if err := j.WaitSynced(seq); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, res := replayAll(t, path)
	if len(got) != batches*per || res.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want %d", len(got), res.Truncated, batches*per)
	}
	// Each goroutine's batch must be contiguous and in order, whatever
	// the inter-batch ordering came out as.
	for i := 0; i < len(got); i += per {
		var g int
		if _, err := fmt.Sscanf(string(got[i]), "g%02d-0", &g); err != nil {
			t.Fatalf("record %d = %q is not a batch head", i, got[i])
		}
		for k := 0; k < per; k++ {
			if want := fmt.Sprintf("g%02d-%d", g, k); string(got[i+k]) != want {
				t.Fatalf("record %d = %q, want %q (batch interleaved)", i+k, got[i+k], want)
			}
		}
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
	}{{"always", SyncAlways}, {"Batch", SyncBatch}, {"none", SyncNone}} {
		got, err := ParseSyncMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" {
			t.Errorf("%v has no name", got)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestReplayMissingFile(t *testing.T) {
	if _, err := Replay(filepath.Join(t.TempDir(), "nope.wal"), func([]byte) error { return nil }); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestStoreSnapshots(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "data"))
	if err != nil {
		t.Fatal(err)
	}
	if gen, payload, err := s.LatestSnapshot(); err != nil || gen != 0 || payload != nil {
		t.Fatalf("empty store: gen=%d payload=%v err=%v", gen, payload, err)
	}
	if err := s.WriteSnapshot(1, []byte("state-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(2, []byte("state-2")); err != nil {
		t.Fatal(err)
	}
	gen, payload, err := s.LatestSnapshot()
	if err != nil || gen != 2 || string(payload) != "state-2" {
		t.Fatalf("latest: gen=%d payload=%q err=%v", gen, payload, err)
	}

	// Corrupt the newest snapshot: recovery falls back to gen 1.
	data, err := os.ReadFile(s.SnapshotPath(2))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(s.SnapshotPath(2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	gen, payload, err = s.LatestSnapshot()
	if err != nil || gen != 1 || string(payload) != "state-1" {
		t.Fatalf("fallback: gen=%d payload=%q err=%v", gen, payload, err)
	}

	// GC keeps only generations >= keep.
	if err := s.WriteSnapshot(3, []byte("state-3")); err != nil {
		t.Fatal(err)
	}
	j, err := Create(s.JournalPath(3), Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	s.RemoveGenerationsBelow(3)
	if _, err := os.Stat(s.SnapshotPath(1)); !os.IsNotExist(err) {
		t.Fatal("gen-1 snapshot survived GC")
	}
	gen, payload, err = s.LatestSnapshot()
	if err != nil || gen != 3 || string(payload) != "state-3" {
		t.Fatalf("after GC: gen=%d payload=%q err=%v", gen, payload, err)
	}
	if _, err := os.Stat(s.JournalPath(3)); err != nil {
		t.Fatal("gen-3 journal removed by GC")
	}
}

// TestStoreRefusesAllCorrupt: when snapshots exist but none validates,
// LatestSnapshot must error rather than report an empty store — a
// silent empty boot would discard every journaled acknowledgement.
func TestStoreRefusesAllCorrupt(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(1, []byte("only-state")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.SnapshotPath(1))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(s.SnapshotPath(1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LatestSnapshot(); err == nil {
		t.Fatal("store with only corrupt snapshots reported as empty")
	}
}

// TestStoreExclusiveLock: a second OpenStore on a live directory must
// fail — two processes journaling into one dir would corrupt each
// other — and Close releases the lock for the next incarnation.
func TestStoreExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err == nil {
		t.Fatal("second OpenStore on a locked directory succeeded")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

// TestStoreSweepsTempFiles: snap-*.tmp files orphaned by a crash
// mid-WriteSnapshot are removed on the next OpenStore.
func TestStoreSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "snap-12345.tmp")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived OpenStore")
	}
}
