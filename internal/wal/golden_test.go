package wal

// Golden-file pin of the on-disk journal encoding. If this test fails
// because the format deliberately changed, bump journalVersion, teach
// Replay the old version, and regenerate with:
//
//	go test ./internal/wal -run TestJournalGolden -update

import (
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestJournalGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	appendAll(t, path, Options{Sync: SyncNone},
		[]byte{},
		[]byte("carbon"),
		[]byte{0x01, 0x00, 0xfe, 0x07},
	)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(raw)

	golden := filepath.Join("testdata", "journal_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got+"\n" != string(want) {
		t.Fatalf("journal encoding drifted from %s:\ngot:  %s\nwant: %s\n(version byte, record framing, or CRC changed — bump journalVersion and regenerate with -update)",
			golden, got, want)
	}
}

func TestSnapshotFileGolden(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(7, []byte("fleet-state-payload")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.SnapshotPath(7))
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(raw)

	golden := filepath.Join("testdata", "snapshot_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got+"\n" != string(want) {
		t.Fatalf("snapshot file encoding drifted from %s:\ngot:  %s\nwant: %s", golden, got, want)
	}
}
