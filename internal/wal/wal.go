// Package wal is the durability layer under the online scheduler: an
// append-only, checksummed write-ahead journal plus an atomic snapshot
// store, generation-numbered so a crashed process can restore the
// latest full snapshot and replay the journal tail on top of it.
//
// The journal file is a fixed header (magic + format version) followed
// by length-prefixed records, each carrying a CRC-32 of its payload:
//
//	"CSWL" | version 1
//	[ len uint32 BE | crc32(payload) uint32 BE | payload ]...
//
// Appends are buffered and group-committed: in SyncAlways mode every
// Append blocks until its record is fsynced, but concurrent appenders
// share one fsync (the classic group commit), so a loaded server pays
// roughly one disk flush per batch rather than per record. SyncBatch
// trades a bounded loss window for throughput: a background flusher
// fsyncs on a short interval and Append never waits. SyncNone leaves
// flushing to the OS entirely (tests, benchmarks).
//
// Replay tolerates torn tails by construction: a crash mid-write
// leaves a record whose length prefix overruns the file or whose CRC
// does not match, and Replay stops there, reporting how many bytes
// were valid so the caller can discard the tail. Corruption never
// panics and never yields a partial record.
//
// Observability: Options.Metrics accepts a JournalMetrics (metrics.go)
// that meters every append and fsync — wal_fsync_seconds and
// wal_fsync_batch_records histograms, record/byte counters — exposed
// by the embedding server's /metrics. The fsync timing wraps the
// actual f.Sync() call in both sync modes, and batch size is the
// count of records a flush made newly durable, so the histogram pair
// reads as "how long did durability take, and how many acks shared
// it". See docs/OBSERVABILITY.md for the family reference.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"carbonshift/internal/tracing"
)

// Journal file format constants.
const (
	journalMagic   = "CSWL"
	journalVersion = 1
	// HeaderLen is the size of the journal file header.
	HeaderLen = len(journalMagic) + 1
	// recordHeaderLen prefixes every record: 4 length + 4 CRC bytes.
	recordHeaderLen = 8
	// MaxRecord bounds a single record so a corrupt length prefix can
	// never drive a huge allocation during replay.
	MaxRecord = 64 << 20
)

// SyncMode selects the journal's fsync discipline.
type SyncMode int

const (
	// SyncBatch (the default) fsyncs from a background flusher every
	// Options.BatchInterval: appends never block on the disk, and a
	// crash loses at most one interval of acknowledged records.
	SyncBatch SyncMode = iota
	// SyncAlways group-commits: every Append returns only after its
	// record is fsynced, with concurrent appenders sharing one flush.
	SyncAlways
	// SyncNone never fsyncs; data reaches disk when the OS decides or
	// on Close.
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// ParseSyncMode maps the -fsync flag spellings to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(s) {
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync mode %q (have always, batch, none)", s)
	}
}

// DefaultBatchInterval is the SyncBatch flush cadence when
// Options.BatchInterval is zero.
const DefaultBatchInterval = 2 * time.Millisecond

// Options configures a Journal.
type Options struct {
	// Sync is the fsync discipline (default SyncBatch).
	Sync SyncMode
	// BatchInterval is the SyncBatch flush cadence (default
	// DefaultBatchInterval). Ignored in the other modes.
	BatchInterval time.Duration
	// Metrics, when non-nil, receives fsync latency, group-commit
	// batch size, and append counters (see JournalMetrics). Safe to
	// share across journals — schedd reuses one across generations.
	Metrics *JournalMetrics
	// Trace, when non-nil, records each fsync round as a
	// "wal.group_commit" root trace (head-sampled, always on slow) with
	// the batch size — the fsync serves many requests at once, so it is
	// its own trace rather than a child of any one request; the
	// per-request durability cost shows up as that request's
	// wal.fsync_wait span instead.
	Trace *tracing.Tracer
}

// Journal is an append-only record log. Append, AppendNoWait,
// WaitSynced, and Sync are safe for concurrent use, and Close is
// idempotent; callers should stop appending before Close — a record
// appended concurrently with Close may miss the final flush.
type Journal struct {
	mu     sync.Mutex
	cond   *sync.Cond // signaled when a group commit completes
	f      *os.File
	w      *bufio.Writer
	mode   SyncMode
	err    error // first write/sync failure; poisons the journal
	closed bool

	// Group-commit state (SyncAlways): seq counts appended records,
	// synced the highest fsynced one, syncing marks the elected
	// flusher.
	seq     uint64
	synced  uint64
	syncing bool

	// metrics instruments the journal (nil = un-metered); obsSeq is the
	// highest record sequence whose durability has been observed into
	// the batch-size histogram, shared by both fsync paths. trace
	// records group-commit rounds (nil = untraced).
	metrics *JournalMetrics
	trace   *tracing.Tracer
	obsSeq  uint64

	// SyncBatch state.
	dirty bool
	stop  chan struct{}
	done  chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// Create creates (or truncates) a journal file and writes its header.
// The header reaches the disk with the first synced record.
func Create(path string, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create journal: %w", err)
	}
	j := &Journal{
		f:       f,
		w:       bufio.NewWriterSize(f, 1<<16),
		mode:    opts.Sync,
		metrics: opts.Metrics,
		trace:   opts.Trace,
	}
	j.cond = sync.NewCond(&j.mu)
	j.w.WriteString(journalMagic)
	j.w.WriteByte(journalVersion)
	if j.mode == SyncBatch {
		interval := opts.BatchInterval
		if interval <= 0 {
			interval = DefaultBatchInterval
		}
		j.stop = make(chan struct{})
		j.done = make(chan struct{})
		go j.flusher(interval)
	}
	return j, nil
}

// flusher is the SyncBatch background goroutine: every interval it
// flushes buffered records and fsyncs if anything was appended since
// the last pass.
func (j *Journal) flusher(interval time.Duration) {
	defer close(j.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-tick.C:
			j.mu.Lock()
			if !j.dirty || j.err != nil || j.closed {
				j.mu.Unlock()
				continue
			}
			j.dirty = false
			target := j.seq
			batch := target - j.obsSeq
			err := j.w.Flush()
			j.mu.Unlock()
			start := time.Now()
			if err == nil {
				err = j.f.Sync()
			}
			j.mu.Lock()
			if err != nil {
				if j.err == nil {
					j.err = err
				}
			} else {
				if target > j.obsSeq {
					j.obsSeq = target
				}
				j.metrics.observeFsync(start, batch)
				j.trace.RecordRoot("wal.group_commit", start, time.Since(start),
					tracing.Int("batch", int(batch)))
			}
			j.mu.Unlock()
		}
	}
}

// Append writes one record. In SyncAlways mode it returns once the
// record is durable (sharing the fsync with concurrent appenders); in
// the other modes it returns as soon as the record is buffered. A
// previous write or sync failure poisons the journal and is returned
// from every subsequent call.
func (j *Journal) Append(payload []byte) error {
	seq, err := j.AppendNoWait(payload)
	if err != nil {
		return err
	}
	return j.WaitSynced(seq)
}

// AppendNoWait buffers one record and returns its sequence number
// without waiting for durability, so a caller holding a lock that
// serializes appends (and thereby fixes the record order) can release
// it before blocking in WaitSynced — that is what lets concurrent
// callers actually share a group commit.
func (j *Journal) AppendNoWait(payload []byte) (uint64, error) {
	return j.AppendBatchNoWait(payload)
}

// AppendBatchNoWait buffers every payload as its own record under one
// lock acquisition and returns the sequence number of the last, so a
// caller appending a logically atomic group of records pays one
// critical section and covers the whole group with a single
// WaitSynced. The records land contiguously — no concurrent append can
// interleave with them.
func (j *Journal) AppendBatchNoWait(payloads ...[]byte) (uint64, error) {
	if len(payloads) == 0 {
		return 0, fmt.Errorf("wal: empty append batch")
	}
	for _, p := range payloads {
		if len(p) > MaxRecord {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(p), MaxRecord)
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("wal: journal closed")
	}
	if j.err != nil {
		return 0, j.err
	}
	for _, payload := range payloads {
		var hdr [recordHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := j.w.Write(hdr[:]); err != nil {
			j.err = err
			return 0, err
		}
		if _, err := j.w.Write(payload); err != nil {
			j.err = err
			return 0, err
		}
		j.seq++
		j.metrics.observeAppend(len(payload))
	}
	if j.mode == SyncBatch {
		j.dirty = true
	}
	return j.seq, nil
}

// WaitSynced blocks until the record with the given sequence number is
// durable under the journal's discipline: in SyncAlways mode it joins
// the group commit — whoever finds no flush in flight becomes the
// flusher for every record buffered so far, everyone else waits for a
// flush covering their record. In the other modes durability is
// asynchronous and WaitSynced only reports a prior journal failure.
func (j *Journal) WaitSynced(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.mode != SyncAlways {
		return j.err
	}
	return j.syncTo(seq)
}

// syncTo is the group-commit loop: it returns once record seq my is
// fsynced. Called with mu held; temporarily releases it around the
// disk flush.
func (j *Journal) syncTo(my uint64) error {
	for j.synced < my {
		if j.err != nil {
			return j.err
		}
		if j.closed {
			return fmt.Errorf("wal: journal closed before record %d was synced", my)
		}
		if !j.syncing {
			j.flushRoundLocked()
		} else {
			j.cond.Wait()
		}
	}
	return j.err
}

// flushRoundLocked runs one flush+fsync round covering every record
// buffered so far. Called with mu held (and j.syncing false);
// temporarily releases mu around the fsync.
func (j *Journal) flushRoundLocked() {
	j.syncing = true
	target := j.seq
	batch := target - j.obsSeq
	err := j.w.Flush()
	j.mu.Unlock()
	start := time.Now()
	if err == nil {
		err = j.f.Sync()
	}
	j.mu.Lock()
	if err != nil && j.err == nil {
		j.err = err
	}
	if err == nil {
		if j.synced < target {
			j.synced = target
		}
		if target > j.obsSeq {
			j.obsSeq = target
		}
		j.metrics.observeFsync(start, batch)
		j.trace.RecordRoot("wal.group_commit", start, time.Since(start),
			tracing.Int("batch", int(batch)))
	}
	j.syncing = false
	j.cond.Broadcast()
}

// Flush pushes buffered records out of the in-process buffer into the
// OS file without forcing them to disk — it makes appended records
// visible to readers of the file (the replication source tails the
// live journal this way) without paying an fsync. A closed journal is
// already fully flushed, so Flush on it is a no-op.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.closed {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// Sync flushes buffered records (and the header, even when no record
// was ever appended) and fsyncs, regardless of mode.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	j.dirty = false
	for j.syncing && j.err == nil {
		j.cond.Wait()
	}
	if j.err != nil {
		return j.err
	}
	j.flushRoundLocked()
	return j.err
}

// Close flushes, fsyncs, and closes the journal. Idempotent and safe
// to call concurrently.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() {
		if j.stop != nil {
			close(j.stop)
			<-j.done
		}
		err := j.Sync()
		j.mu.Lock()
		j.closed = true
		j.cond.Broadcast()
		j.mu.Unlock()
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.closeErr = err
	})
	return j.closeErr
}

// ReplayResult reports what Replay found.
type ReplayResult struct {
	// Records is the number of valid records delivered to the callback.
	Records int
	// ValidBytes is the length of the valid prefix of the file —
	// header plus complete, checksummed records. Everything past it is
	// a torn or corrupt tail.
	ValidBytes int64
	// Truncated reports that the file held bytes past ValidBytes that
	// did not form a valid record — a torn header, a torn write, an
	// overrunning length prefix, or a CRC mismatch: the expected
	// signatures of a crash mid-append.
	Truncated bool
}

// Replay reads a journal file and invokes fn for each valid record in
// order. It stops without error at the first torn or corrupt record
// (see ReplayResult) — the expected wreckage of a crash. Damage that a
// crash mid-append cannot explain is an error instead of a silent
// empty replay: a foreign magic, an unsupported format version, or an
// I/O failure mid-read — a caller that treated those as a benign torn
// tail would discard (and later delete) a journal full of
// acknowledged records. A callback error also aborts the replay and
// is returned. The payload slice is reused across calls — fn must not
// retain it.
func Replay(path string, fn func(payload []byte) error) (ReplayResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return ReplayResult{}, err
	}
	defer f.Close()

	var res ReplayResult
	r := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// A missing or short header — a crash before the first
			// flush: nothing is replayable.
			res.Truncated = true
			return res, nil
		}
		return res, fmt.Errorf("wal: read %s: %w", path, err)
	}
	if string(hdr[:len(journalMagic)]) != journalMagic {
		return res, fmt.Errorf("wal: %s is not a journal (bad magic %q)", path, hdr[:len(journalMagic)])
	}
	if v := hdr[len(journalMagic)]; v != journalVersion {
		return res, fmt.Errorf("wal: %s: unsupported journal version %d (want %d)", path, v, journalVersion)
	}
	res.ValidBytes = int64(HeaderLen)

	var rec [recordHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.Truncated = err != io.EOF
				return res, nil
			}
			return res, fmt.Errorf("wal: read %s: %w", path, err)
		}
		n := binary.BigEndian.Uint32(rec[0:4])
		sum := binary.BigEndian.Uint32(rec[4:8])
		if n > MaxRecord {
			res.Truncated = true
			return res, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.Truncated = true
				return res, nil
			}
			return res, fmt.Errorf("wal: read %s: %w", path, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			res.Truncated = true
			return res, nil
		}
		if err := fn(payload); err != nil {
			return res, err
		}
		res.Records++
		res.ValidBytes += int64(recordHeaderLen) + int64(n)
	}
}
