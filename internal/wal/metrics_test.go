package wal

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"carbonshift/internal/metrics"
)

func scrapeJournalMetrics(t *testing.T, r *metrics.Registry) *metrics.Scrape {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := metrics.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestJournalMetricsSyncAlways: in group-commit mode every record is
// durable at Append return, so fsync count and batch-record totals
// must exactly cover the appended records — no double counting between
// the flush round and manual Sync.
func TestJournalMetricsSyncAlways(t *testing.T) {
	r := metrics.NewRegistry()
	jm := NewJournalMetrics(r)
	j, err := Create(filepath.Join(t.TempDir(), "j.wal"), Options{Sync: SyncAlways, Metrics: jm})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := j.Append([]byte{byte(w), byte(i), 0xAB}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Sync(); err != nil { // already synced: must not inflate the batch totals
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	sc := scrapeJournalMetrics(t, r)
	total := float64(writers * each)
	if got, _ := sc.Value("wal_records_appended_total"); got != total {
		t.Errorf("wal_records_appended_total = %v, want %v", got, total)
	}
	wantBytes := float64(recordHeaderLen+3) * total // framing included
	if got, _ := sc.Value("wal_appended_bytes_total"); got != wantBytes {
		t.Errorf("wal_appended_bytes_total = %v, want %v", got, wantBytes)
	}
	// Batch sizes must partition the record sequence: their sum is the
	// record count — the redundant Sync and Close fsyncs observe
	// zero-record batches, never a double count.
	if got, _ := sc.Value("wal_fsync_batch_records_sum"); got != total {
		t.Errorf("wal_fsync_batch_records_sum = %v, want %v (batches must partition the records)", got, total)
	}
	fsyncs, _ := sc.Value("wal_fsync_seconds_count")
	if fsyncs < 1 || fsyncs > total+2 {
		t.Errorf("wal_fsync_seconds_count = %v, want within [1, %v]", fsyncs, total+2)
	}
	if batches, _ := sc.Value("wal_fsync_batch_records_count"); batches != fsyncs {
		t.Errorf("batch count %v != fsync count %v", batches, fsyncs)
	}
}

// TestJournalMetricsSyncBatch: the background flusher attributes each
// interval's records to its fsync. WaitSynced does not block in batch
// mode, so poll until the flusher has accounted for every record.
func TestJournalMetricsSyncBatch(t *testing.T) {
	r := metrics.NewRegistry()
	jm := NewJournalMetrics(r)
	j, err := Create(filepath.Join(t.TempDir(), "j.wal"),
		Options{Sync: SyncBatch, BatchInterval: time.Millisecond, Metrics: jm})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := j.AppendNoWait([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sc := scrapeJournalMetrics(t, r)
		sum, _ := sc.Value("wal_fsync_batch_records_sum")
		fsyncs, _ := sc.Value("wal_fsync_seconds_count")
		if sum == 10 && fsyncs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher never accounted for the records: batch sum = %v, fsyncs = %v", sum, fsyncs)
		}
		time.Sleep(time.Millisecond)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
