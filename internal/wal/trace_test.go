package wal

import (
	"path/filepath"
	"testing"
	"time"

	"carbonshift/internal/tracing"
)

// TestGroupCommitTraced pins the wal.group_commit span: every fsync
// round (here, sampled 1-in-1) lands in the tracer's ring as its own
// root trace carrying the batch size.
func TestGroupCommitTraced(t *testing.T) {
	tr := tracing.New(tracing.Config{SampleEvery: 1})
	j, err := Create(filepath.Join(t.TempDir(), "j.wal"), Options{Sync: SyncAlways, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}

	dump := tr.Snapshot()
	if len(dump.Traces) < 2 {
		t.Fatalf("recorded %d group-commit traces, want >= 2", len(dump.Traces))
	}
	for _, td := range dump.Traces {
		if td.Root != "wal.group_commit" {
			t.Fatalf("trace root = %q, want wal.group_commit", td.Root)
		}
		if len(td.Spans) != 1 || len(td.Spans[0].Attrs) != 1 || td.Spans[0].Attrs[0].Key != "batch" {
			t.Fatalf("group-commit span = %+v, want a single span with a batch attr", td.Spans)
		}
	}
}

// TestBatchModeFlusherTraced covers the SyncBatch path: the background
// flusher's fsync rounds are traced too.
func TestBatchModeFlusherTraced(t *testing.T) {
	tr := tracing.New(tracing.Config{SampleEvery: 1})
	j, err := Create(filepath.Join(t.TempDir(), "j.wal"),
		Options{Sync: SyncBatch, BatchInterval: time.Millisecond, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.AppendNoWait([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(tr.Snapshot().Traces) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never recorded a group-commit trace")
		}
		time.Sleep(time.Millisecond)
	}
	if got := tr.Snapshot().Traces[0].Root; got != "wal.group_commit" {
		t.Fatalf("root = %q", got)
	}
}
