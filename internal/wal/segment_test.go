package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// readFrom drains a segment reader until ErrNoRecord, copying payloads.
func readFrom(t *testing.T, path string, offset int64) ([][]byte, int64) {
	t.Helper()
	r, err := OpenSegment(path, offset)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got [][]byte
	for {
		p, err := r.Next()
		if errors.Is(err, ErrNoRecord) {
			return got, r.Offset()
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, append([]byte(nil), p...))
	}
}

func TestSegmentReaderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	payloads := [][]byte{[]byte("one"), {}, []byte("three-3"), {0xff, 0x00}}
	appendAll(t, path, Options{Sync: SyncNone}, payloads...)

	got, end := readFrom(t, path, 0)
	if len(got) != len(payloads) {
		t.Fatalf("read %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if end != fi.Size() {
		t.Fatalf("cursor ended at %d, file is %d bytes", end, fi.Size())
	}
}

// TestSegmentReaderResume: a cursor saved mid-stream resumes with
// exactly the remaining records — the replication resume invariant.
func TestSegmentReaderResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	payloads := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), []byte("dddd")}
	appendAll(t, path, Options{Sync: SyncNone}, payloads...)

	r, err := OpenSegment(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	cursor := r.Offset()
	r.Close()

	rest, _ := readFrom(t, path, cursor)
	if len(rest) != 2 || !bytes.Equal(rest[0], payloads[2]) || !bytes.Equal(rest[1], payloads[3]) {
		t.Fatalf("resume at %d read %q", cursor, rest)
	}
}

// TestSegmentReaderTailGrowth: records appended (and flushed) after a
// reader hits ErrNoRecord become visible to the same reader.
func TestSegmentReaderTailGrowth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Create(path, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenSegment(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if p, err := r.Next(); err != nil || string(p) != "first" {
		t.Fatalf("Next = %q, %v", p, err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("tail read err = %v, want ErrNoRecord", err)
	}

	if err := j.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if p, err := r.Next(); err != nil || string(p) != "second" {
		t.Fatalf("after growth Next = %q, %v", p, err)
	}
}

// TestSegmentReaderTornTail: a partially written record is ErrNoRecord
// (retryable), not corruption.
func TestSegmentReaderTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	appendAll(t, path, Options{Sync: SyncNone}, []byte("whole"))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append a record header promising 100 bytes, then only 3 of them.
	torn := append(append([]byte(nil), full...), 0, 0, 0, 100, 1, 2, 3, 4, 'x', 'y', 'z')
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenSegment(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if p, err := r.Next(); err != nil || string(p) != "whole" {
		t.Fatalf("Next = %q, %v", p, err)
	}
	cursor := r.Offset()
	if _, err := r.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("torn tail err = %v, want ErrNoRecord", err)
	}
	if r.Offset() != cursor {
		t.Fatalf("failed read moved the cursor from %d to %d", cursor, r.Offset())
	}
}

// TestSegmentReaderCorruption: a CRC mismatch and an oversized length
// are terminal, and a misaligned cursor fails as corruption rather
// than panicking.
func TestSegmentReaderCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	appendAll(t, path, Options{Sync: SyncNone}, []byte("payload-one"), []byte("payload-two"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte of the first record: CRC mismatch.
	bad := append([]byte(nil), data...)
	bad[HeaderLen+recordHeaderLen] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSegment(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("crc flip err = %v, want ErrCorrupt", err)
	}
	r.Close()

	// Hostile length prefix: larger than MaxRecord must be terminal, not
	// an allocation.
	huge := append([]byte(nil), data[:HeaderLen]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	if err := os.WriteFile(path, huge, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err = OpenSegment(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize length err = %v, want ErrCorrupt", err)
	}
	r.Close()

	// Misaligned cursor into the middle of a record.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err = OpenSegment(path, int64(HeaderLen+3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("misaligned cursor read a record")
	}
	r.Close()
}

func TestSegmentReaderOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenSegment(filepath.Join(dir, "missing.wal"), 0); err == nil {
		t.Error("opened a missing file")
	}
	path := filepath.Join(dir, "j.wal")
	appendAll(t, path, Options{Sync: SyncNone}, []byte("x"))
	if _, err := OpenSegment(path, 2); err == nil {
		t.Error("accepted an offset inside the header")
	}
	if err := os.WriteFile(path, []byte("NOPE\x01rest"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment(path, 0); err == nil {
		t.Error("accepted a foreign magic")
	}
}
