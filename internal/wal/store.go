package wal

// The snapshot store: generation-numbered full-state snapshots written
// atomically next to the journal of the same generation. Generation G
// means "journal-G applies on top of snap-G", so recovery is: restore
// the newest valid snapshot, replay its journal, and ignore everything
// older. Writers rotate by writing snap-(G+1) first, then creating
// journal-(G+1), then deleting older generations — every crash point
// in that sequence leaves a recoverable directory.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"syscall"
)

const (
	snapMagic   = "CSSN"
	snapVersion = 1
)

// Store manages one data directory of snapshots and journals. Opening
// takes an exclusive lock on the directory for the life of the store.
type Store struct {
	dir  string
	lock *os.File
}

// OpenStore opens (creating if needed) a data directory. It takes an
// exclusive flock on a LOCK file so two processes can never journal
// into the same directory (a second opener fails immediately); the
// kernel releases the lock on process death, so a kill -9'd scheduler
// never blocks its own restart. Temp files a crashed snapshot write
// left behind are swept so repeated crashes cannot accumulate dead
// state.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("wal: data directory %s is in use by another process: %w", dir, err)
	}
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	return &Store{dir: dir, lock: lock}, nil
}

// Close releases the directory lock. Idempotent.
func (s *Store) Close() error {
	if s.lock == nil {
		return nil
	}
	err := s.lock.Close() // closing the descriptor releases the flock
	s.lock = nil
	return err
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SnapshotPath returns the snapshot file path for a generation.
func (s *Store) SnapshotPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%08d.snap", gen))
}

// JournalPath returns the journal file path for a generation.
func (s *Store) JournalPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("journal-%08d.wal", gen))
}

// WriteSnapshot atomically writes one generation's snapshot: the
// payload is framed with a magic, version byte, and trailing CRC-32,
// written to a temp file, fsynced, and renamed into place.
func (s *Store) WriteSnapshot(gen uint64, payload []byte) error {
	buf := make([]byte, 0, len(snapMagic)+1+len(payload)+4)
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion)
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.SnapshotPath(gen)); err != nil {
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	s.syncDir()
	return nil
}

// readSnapshot loads and verifies one snapshot file, returning its
// payload.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+1+4 {
		return nil, fmt.Errorf("wal: snapshot %s: %d bytes is too short", filepath.Base(path), len(data))
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("wal: snapshot %s: CRC mismatch", filepath.Base(path))
	}
	if string(body[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: snapshot %s: bad magic", filepath.Base(path))
	}
	if body[len(snapMagic)] != snapVersion {
		return nil, fmt.Errorf("wal: snapshot %s: unsupported version %d", filepath.Base(path), body[len(snapMagic)])
	}
	return body[len(snapMagic)+1:], nil
}

// LatestSnapshot returns the newest generation whose snapshot file
// validates, with its payload. Corrupt or half-written snapshots are
// skipped in favor of older ones, but if snapshots exist and NONE
// validates the store is damaged and LatestSnapshot errors — silently
// restarting from empty state would discard every journaled
// acknowledgement. Generation 0 with a nil payload and a nil error
// means the store genuinely holds no snapshot yet.
func (s *Store) LatestSnapshot() (gen uint64, payload []byte, err error) {
	gens, err := s.generations("snap-", ".snap")
	if err != nil {
		return 0, nil, err
	}
	var firstErr error
	for i := len(gens) - 1; i >= 0; i-- {
		p, err := readSnapshot(s.SnapshotPath(gens[i]))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue // corrupt: fall back to the previous generation
		}
		return gens[i], p, nil
	}
	if firstErr != nil {
		return 0, nil, fmt.Errorf("wal: %d snapshot(s) present but none is usable (refusing to start empty): %w", len(gens), firstErr)
	}
	return 0, nil, nil
}

// RemoveGenerationsBelow deletes every snapshot and journal file of a
// generation older than keep. Removal failures are ignored — stale
// files cost disk, not correctness, and the next rotation retries.
func (s *Store) RemoveGenerationsBelow(keep uint64) {
	for _, prefix := range []struct{ pre, ext string }{{"snap-", ".snap"}, {"journal-", ".wal"}} {
		gens, err := s.generations(prefix.pre, prefix.ext)
		if err != nil {
			continue
		}
		for _, g := range gens {
			if g >= keep {
				continue
			}
			if prefix.pre == "snap-" {
				os.Remove(s.SnapshotPath(g))
			} else {
				os.Remove(s.JournalPath(g))
			}
		}
	}
	s.syncDir()
}

// generations lists the sorted generation numbers of files matching
// prefix/ext in the store directory.
func (s *Store) generations(prefix, ext string) ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan store: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if len(name) <= len(prefix)+len(ext) ||
			name[:len(prefix)] != prefix || name[len(name)-len(ext):] != ext {
			continue
		}
		var g uint64
		if _, err := fmt.Sscanf(name[len(prefix):len(name)-len(ext)], "%d", &g); err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] < gens[b] })
	return gens, nil
}

// syncDir fsyncs the store directory so renames and removals are
// durable. Best effort: some filesystems refuse directory fsync.
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}
