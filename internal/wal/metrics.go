package wal

// Journal instrumentation. The journal is the one component whose
// latency an operator cannot infer from request latencies alone: in
// SyncAlways mode every acknowledgement waits on a group-commit fsync,
// and in SyncBatch mode a slow disk silently widens the loss window.
// These metrics make both visible:
//
//	wal_fsync_seconds            histogram of each fsync's duration
//	wal_fsync_batch_records      histogram of records per group commit
//	wal_records_appended_total   records appended
//	wal_appended_bytes_total     journal bytes written (header + payload)
//
// A JournalMetrics is shared across generations (rotation creates a
// new Journal but the series keep accumulating) and across the fsync
// disciplines — the batch flusher and the group-commit path feed the
// same histograms.

import (
	"time"

	"carbonshift/internal/metrics"
)

// JournalMetrics holds the journal's instruments. The zero value (and
// nil fields) disable instrumentation — internal/metrics instruments
// are nil-safe — so an un-metered journal pays one branch per event.
type JournalMetrics struct {
	// FsyncSeconds observes the duration of every fsync, whichever
	// discipline triggered it.
	FsyncSeconds *metrics.Histogram
	// BatchRecords observes how many records each fsync made durable —
	// the group-commit amplification factor. A manual Sync with nothing
	// pending observes a batch of zero, so this histogram's count always
	// equals FsyncSeconds's and its sum equals Records.
	BatchRecords *metrics.Histogram
	// Records counts appended records.
	Records *metrics.Counter
	// AppendedBytes counts journal bytes written, framing included.
	AppendedBytes *metrics.Counter
}

// NewJournalMetrics registers the wal_* families on r (nil r yields a
// usable all-no-op JournalMetrics).
func NewJournalMetrics(r *metrics.Registry) *JournalMetrics {
	return &JournalMetrics{
		FsyncSeconds: r.NewHistogram("wal_fsync_seconds",
			"Duration of each journal fsync, any sync discipline.",
			metrics.DefLatencyBuckets),
		BatchRecords: r.NewHistogram("wal_fsync_batch_records",
			"Records made durable per fsync (group-commit batch size).",
			metrics.DefSizeBuckets),
		Records: r.NewCounter("wal_records_appended_total",
			"Journal records appended."),
		AppendedBytes: r.NewCounter("wal_appended_bytes_total",
			"Journal bytes written, record framing included."),
	}
}

// observeFsync records one fsync: its duration and how many records it
// made durable. Both histograms are fed unconditionally — a zero-record
// fsync still measures the disk — so their counts stay equal and the
// batch sum partitions the appended records exactly.
func (m *JournalMetrics) observeFsync(start time.Time, records uint64) {
	if m == nil {
		return
	}
	m.FsyncSeconds.Observe(time.Since(start).Seconds())
	m.BatchRecords.Observe(float64(records))
}

// observeAppend records one buffered record.
func (m *JournalMetrics) observeAppend(payloadLen int) {
	if m == nil {
		return
	}
	m.Records.Inc()
	m.AppendedBytes.Add(uint64(recordHeaderLen + payloadLen))
}
