package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to Replay as a journal file:
// it must never panic, never report more valid bytes than the file
// holds, may error only on damage a crash cannot explain (foreign
// magic, future version), and must be deterministic — replaying the
// same bytes twice yields the same records and the same outcome.
func FuzzJournalReplay(f *testing.F) {
	// A valid two-record journal as the structured seed.
	seedPath := filepath.Join(f.TempDir(), "seed.wal")
	j, err := Create(seedPath, Options{Sync: SyncNone})
	if err != nil {
		f.Fatal(err)
	}
	j.Append([]byte("record-one"))
	j.Append([]byte{0, 1, 2, 3})
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                               // torn payload
	f.Add(valid[:HeaderLen+4])                                // torn record header
	f.Add(valid[:HeaderLen])                                  // header only
	f.Add([]byte{})                                           // empty file
	f.Add([]byte("CSWL"))                                     // short header
	f.Add([]byte("CSWL\x02junk"))                             // future version
	f.Add([]byte("CSWL\x01\xff\xff\xff\xff\x00\x00\x00\x00")) // huge length prefix
	mut := append([]byte(nil), valid...)
	mut[HeaderLen+2] ^= 0x40 // corrupt first record's length
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		var first [][]byte
		res, err := Replay(path, func(p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			// Foreign magic or unsupported version: allowed, but must
			// be deterministic and deliver no records.
			if len(first) != 0 {
				t.Fatalf("errored replay delivered %d records", len(first))
			}
			if _, err2 := Replay(path, func([]byte) error { return nil }); err2 == nil {
				t.Fatal("replay error not deterministic")
			}
			return
		}
		if res.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d exceeds file size %d", res.ValidBytes, len(data))
		}
		if res.Records != len(first) {
			t.Fatalf("Records %d but callback saw %d", res.Records, len(first))
		}
		if res.Records > 0 && res.ValidBytes < int64(HeaderLen) {
			t.Fatalf("records without a valid header: %+v", res)
		}
		// Determinism: a second replay sees the identical sequence.
		n := 0
		res2, err := Replay(path, func(p []byte) error {
			if n >= len(first) || string(p) != string(first[n]) {
				t.Fatalf("replay not deterministic at record %d", n)
			}
			n++
			return nil
		})
		if err != nil || res2 != res {
			t.Fatalf("second replay diverged: %+v vs %+v (err %v)", res2, res, err)
		}
	})
}
