package temporal_test

import (
	"fmt"

	"carbonshift/internal/temporal"
)

// A 2-hour job with 3 hours of slack in a valley-shaped trace: the
// deferred policy finds the cheapest contiguous window, the
// interruptible policy the cheapest hours overall.
func ExampleEvaluate() {
	ci := []float64{30, 38, 10, 4, 16, 25, 40}
	res, err := temporal.Evaluate(ci, 0, 2, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("run now: %.0f g\n", res.Baseline)
	fmt.Printf("deferred to hour %d: %.0f g\n", res.Start, res.Deferred)
	fmt.Printf("interruptible: %.0f g\n", res.Interrupted)
	// Output:
	// run now: 68 g
	// deferred to hour 2: 14 g
	// interruptible: 14 g
}

// Interruption pays off when the cheap hours are not adjacent.
func ExampleSchedule() {
	ci := []float64{1, 50, 50, 1, 50}
	hours, err := temporal.Schedule(ci, 0, 2, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("run during hours", hours)
	// Output:
	// run during hours [0 3]
}

// Sweep evaluates every arrival hour at once; Reduce condenses the
// result into the paper's mean-savings quantities.
func ExampleCosts_Reduce() {
	ci := []float64{100, 10, 100, 10, 100, 10, 100, 10}
	costs, err := temporal.Sweep(ci, 1, 2, 4)
	if err != nil {
		panic(err)
	}
	ms := costs.Reduce()
	fmt.Printf("mean baseline %.0f g, mean deferral saving %.0f g\n",
		ms.Baseline, ms.DeferSaving)
	// Output:
	// mean baseline 55 g, mean deferral saving 45 g
}
