// Package temporal implements the paper's temporal workload-shifting
// policies (§3.2.1, §5.2) over hourly carbon-intensity series.
//
// A batch job of length L hours arriving at hour a with slack s may run
// anywhere inside the horizon [a, a+L+s):
//
//   - Baseline (non-deferrable): run immediately; cost is the sum of
//     the L intensities from a.
//   - Deferrable: choose the contiguous L-hour window with minimum
//     cumulative intensity inside the horizon (the k-element
//     minimum-sum subarray).
//   - Interruptible (and deferrable): run during the L cheapest hours
//     of the horizon, contiguous or not (the k smallest elements).
//
// Jobs draw 1 kW, so costs are directly in g·CO₂eq. The paper assumes
// clairvoyance and zero suspend/resume and defer overheads to obtain
// upper bounds; so does this package.
//
// Besides single-job evaluation, the package provides full arrival
// sweeps ("all 8760 potential start times over a year") with
// asymptotically efficient algorithms: prefix sums for baselines, a
// monotonic-deque sliding-window minimum for deferral, and a
// Fenwick-tree order-statistic window for interruption, so a whole
// sweep costs O(n log n) instead of the naive O(n²).
package temporal

import (
	"fmt"
	"math"
	"sort"

	"carbonshift/internal/stats"
)

// Result holds the carbon cost of one job under the three policies.
type Result struct {
	// Baseline is the no-flexibility cost, in g·CO₂eq.
	Baseline float64
	// Deferred is the optimal deferred (contiguous) cost.
	Deferred float64
	// Interrupted is the optimal interruptible cost. It never exceeds
	// Deferred, which never exceeds Baseline.
	Interrupted float64
	// Start is the deferred policy's chosen start hour.
	Start int
}

// DeferSaving returns the absolute saving from deferral alone.
func (r Result) DeferSaving() float64 { return r.Baseline - r.Deferred }

// InterruptSaving returns the additional saving from interruption on
// top of deferral.
func (r Result) InterruptSaving() float64 { return r.Deferred - r.Interrupted }

// TotalSaving returns the saving of the combined policy vs baseline.
func (r Result) TotalSaving() float64 { return r.Baseline - r.Interrupted }

func checkJob(n, arrival, length, slack int) error {
	if length < 1 {
		return fmt.Errorf("temporal: job length %d must be >= 1 hour", length)
	}
	if slack < 0 {
		return fmt.Errorf("temporal: negative slack %d", slack)
	}
	if arrival < 0 {
		return fmt.Errorf("temporal: negative arrival %d", arrival)
	}
	if arrival+length+slack > n {
		return fmt.Errorf("temporal: job horizon [%d, %d) overruns trace of %d hours",
			arrival, arrival+length+slack, n)
	}
	return nil
}

// Evaluate computes all three policy costs for a single job on the
// hourly intensity series ci.
func Evaluate(ci []float64, arrival, length, slack int) (Result, error) {
	if err := checkJob(len(ci), arrival, length, slack); err != nil {
		return Result{}, err
	}
	horizon := ci[arrival : arrival+length+slack]
	var baseline float64
	for _, v := range horizon[:length] {
		baseline += v
	}
	start, deferred := stats.MinWindowSum(horizon, length)
	interrupted := stats.SumBottomK(horizon, length)
	return Result{
		Baseline:    baseline,
		Deferred:    deferred,
		Interrupted: interrupted,
		Start:       arrival + start,
	}, nil
}

// Schedule returns the exact hours an interruptible job runs (ascending
// hour indices into ci), for callers that need the placement itself.
func Schedule(ci []float64, arrival, length, slack int) ([]int, error) {
	if err := checkJob(len(ci), arrival, length, slack); err != nil {
		return nil, err
	}
	horizon := ci[arrival : arrival+length+slack]
	rel := stats.BottomKIndices(horizon, length)
	out := make([]int, len(rel))
	for i, r := range rel {
		out[i] = arrival + r
	}
	sort.Ints(out)
	return out, nil
}

// Costs bundles the per-arrival cost series of a sweep: index i is the
// cost of a job arriving at hour i.
type Costs struct {
	Baseline    []float64
	Deferred    []float64
	Interrupted []float64
}

// Sweep computes the three policy costs for every arrival hour in
// [0, arrivals). The horizon of the final arrival must fit in the
// trace: arrivals + length + slack <= len(ci).
func Sweep(ci []float64, length, slack, arrivals int) (Costs, error) {
	if arrivals < 1 {
		return Costs{}, fmt.Errorf("temporal: sweep needs >= 1 arrival, got %d", arrivals)
	}
	if err := checkJob(len(ci), arrivals-1, length, slack); err != nil {
		return Costs{}, err
	}
	return Costs{
		Baseline:    sweepBaseline(ci, length, arrivals),
		Deferred:    sweepDeferred(ci, length, slack, arrivals),
		Interrupted: sweepInterrupted(ci, length, slack, arrivals),
	}, nil
}

// sweepBaseline computes immediate-run costs via prefix sums.
func sweepBaseline(ci []float64, length, arrivals int) []float64 {
	prefix := prefixSums(ci)
	out := make([]float64, arrivals)
	for a := 0; a < arrivals; a++ {
		out[a] = prefix[a+length] - prefix[a]
	}
	return out
}

// sweepDeferred computes optimal contiguous placements for every
// arrival in O(n) using a monotonic deque over the window sums: the
// cost at arrival a is min over start s in [a, a+slack] of
// sum(ci[s:s+length]).
func sweepDeferred(ci []float64, length, slack, arrivals int) []float64 {
	prefix := prefixSums(ci)
	numStarts := len(ci) - length + 1
	winSum := func(s int) float64 { return prefix[s+length] - prefix[s] }

	out := make([]float64, arrivals)
	// deque holds candidate start indices with increasing window sums.
	deque := make([]int, 0, slack+1)
	push := func(s int) {
		for len(deque) > 0 && winSum(deque[len(deque)-1]) >= winSum(s) {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, s)
	}
	// Pre-fill the first arrival's start range [0, slack].
	for s := 0; s <= slack && s < numStarts; s++ {
		push(s)
	}
	for a := 0; a < arrivals; a++ {
		// Evict starts before the arrival.
		for len(deque) > 0 && deque[0] < a {
			deque = deque[1:]
		}
		out[a] = winSum(deque[0])
		// Admit the start entering the next arrival's range.
		if next := a + 1 + slack; next < numStarts {
			push(next)
		}
	}
	return out
}

// sweepInterrupted computes the sum of the `length` cheapest hours in
// each sliding horizon of length+slack hours, for every arrival, using
// a Fenwick tree over value ranks (O(n log n) total).
func sweepInterrupted(ci []float64, length, slack, arrivals int) []float64 {
	window := length + slack
	needed := arrivals + window - 1 // hours the sweep touches
	if needed > len(ci) {
		needed = len(ci)
	}
	tree := newRankTree(ci[:needed])
	out := make([]float64, arrivals)
	for h := 0; h < window; h++ {
		tree.add(h)
	}
	out[0] = tree.kSmallestSum(length)
	for a := 1; a < arrivals; a++ {
		tree.remove(a - 1)
		tree.add(a + window - 1)
		out[a] = tree.kSmallestSum(length)
	}
	return out
}

func prefixSums(xs []float64) []float64 {
	out := make([]float64, len(xs)+1)
	for i, v := range xs {
		out[i+1] = out[i] + v
	}
	return out
}

// rankTree is a Fenwick (binary indexed) tree over the ranks of a fixed
// value universe, tracking the count and sum of currently present
// elements per rank. It supports O(log n) insertion, removal, and
// "sum of the k smallest present values" queries.
type rankTree struct {
	// rank[i] is the 1-based rank of element i in the sorted universe.
	rank []int
	// valAt[r] is the value with rank r (1-based).
	valAt []float64
	cnt   []int
	sum   []float64
	size  int // number of ranks
	top   int // largest power of two <= size, for the descent
	vals  []float64
}

func newRankTree(vals []float64) *rankTree {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if vals[idx[a]] != vals[idx[b]] {
			return vals[idx[a]] < vals[idx[b]]
		}
		return idx[a] < idx[b]
	})
	t := &rankTree{
		rank:  make([]int, n),
		valAt: make([]float64, n+1),
		cnt:   make([]int, n+1),
		sum:   make([]float64, n+1),
		size:  n,
		vals:  vals,
	}
	for r, i := range idx {
		t.rank[i] = r + 1
		t.valAt[r+1] = vals[i]
	}
	t.top = 1
	for t.top*2 <= n {
		t.top *= 2
	}
	return t
}

func (t *rankTree) add(i int)    { t.update(t.rank[i], 1, t.vals[i]) }
func (t *rankTree) remove(i int) { t.update(t.rank[i], -1, -t.vals[i]) }

func (t *rankTree) update(r, dc int, dv float64) {
	for ; r <= t.size; r += r & -r {
		t.cnt[r] += dc
		t.sum[r] += dv
	}
}

// kSmallestSum returns the sum of the k smallest present values. It
// panics if fewer than k values are present (a programming error in the
// sweep logic).
func (t *rankTree) kSmallestSum(k int) float64 {
	if k == 0 {
		return 0
	}
	pos, got := 0, 0
	var s float64
	for step := t.top; step > 0; step >>= 1 {
		next := pos + step
		if next <= t.size && got+t.cnt[next] < k {
			got += t.cnt[next]
			s += t.sum[next]
			pos = next
		}
	}
	if pos+1 > t.size {
		panic("temporal: rank tree holds fewer elements than requested")
	}
	// Ranks are unique per element, but duplicates of a value occupy
	// adjacent ranks; walk forward over present ranks for the
	// remainder.
	for r := pos + 1; got < k; r++ {
		if r > t.size {
			panic("temporal: rank tree holds fewer elements than requested")
		}
		c := t.cntAt(r)
		if c == 0 {
			continue
		}
		got++
		s += t.valAt[r]
	}
	return s
}

// cntAt returns the presence count at a single rank (0 or 1 in this
// usage).
func (t *rankTree) cntAt(r int) int {
	c := 0
	for i := r; i > 0; i -= i & -i {
		c += t.cnt[i]
	}
	for i := r - 1; i > 0; i -= i & -i {
		c -= t.cnt[i]
	}
	return c
}

// Summary aggregates a cost series across arrivals.
type Summary struct {
	Mean float64
	Std  float64
	CI95 float64
}

// Summarize reduces a per-arrival cost series.
func Summarize(costs []float64) Summary {
	return Summary{
		Mean: stats.Mean(costs),
		Std:  stats.StdDev(costs),
		CI95: stats.CI95(costs),
	}
}

// MeanSavings condenses a sweep into the paper's reporting quantities:
// mean absolute savings of deferral vs baseline and interruption vs
// deferral, plus the mean baseline, all in g·CO₂eq per job.
type MeanSavings struct {
	Baseline        float64
	DeferSaving     float64
	InterruptSaving float64
}

// Reduce averages a Costs bundle into MeanSavings.
func (c Costs) Reduce() MeanSavings {
	n := len(c.Baseline)
	if n == 0 {
		return MeanSavings{}
	}
	var base, def, intr float64
	for i := 0; i < n; i++ {
		base += c.Baseline[i]
		def += c.Baseline[i] - c.Deferred[i]
		intr += c.Deferred[i] - c.Interrupted[i]
	}
	f := float64(n)
	return MeanSavings{Baseline: base / f, DeferSaving: def / f, InterruptSaving: intr / f}
}

// SweepNaive evaluates every arrival with the O(n·k) single-job code.
// It exists for differential tests and the ablation benchmarks.
func SweepNaive(ci []float64, length, slack, arrivals int) (Costs, error) {
	if arrivals < 1 {
		return Costs{}, fmt.Errorf("temporal: sweep needs >= 1 arrival, got %d", arrivals)
	}
	if err := checkJob(len(ci), arrivals-1, length, slack); err != nil {
		return Costs{}, err
	}
	out := Costs{
		Baseline:    make([]float64, arrivals),
		Deferred:    make([]float64, arrivals),
		Interrupted: make([]float64, arrivals),
	}
	for a := 0; a < arrivals; a++ {
		r, err := Evaluate(ci, a, length, slack)
		if err != nil {
			return Costs{}, err
		}
		out.Baseline[a] = r.Baseline
		out.Deferred[a] = r.Deferred
		out.Interrupted[a] = r.Interrupted
	}
	return out, nil
}

// ValidateMonotone checks the policy-dominance invariant on a sweep:
// interrupted <= deferred <= baseline for every arrival (within float
// tolerance). It returns the first violation, if any.
func (c Costs) ValidateMonotone() error {
	const eps = 1e-6
	for i := range c.Baseline {
		if c.Deferred[i] > c.Baseline[i]+eps {
			return fmt.Errorf("temporal: deferred %v > baseline %v at arrival %d",
				c.Deferred[i], c.Baseline[i], i)
		}
		if c.Interrupted[i] > c.Deferred[i]+eps {
			return fmt.Errorf("temporal: interrupted %v > deferred %v at arrival %d",
				c.Interrupted[i], c.Deferred[i], i)
		}
		if math.IsNaN(c.Interrupted[i]) {
			return fmt.Errorf("temporal: NaN cost at arrival %d", i)
		}
	}
	return nil
}
