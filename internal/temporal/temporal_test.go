package temporal

import (
	"math"
	"testing"
	"testing/quick"

	"carbonshift/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

func TestEvaluateToyExample(t *testing.T) {
	// Mirrors the paper's Figure 2(a) idea: a job of length 2 with
	// slack 3 in a valley-shaped trace.
	ci := []float64{30, 38, 10, 4, 16, 25, 40}
	r, err := Evaluate(ci, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline != 68 {
		t.Errorf("baseline = %v, want 68", r.Baseline)
	}
	if r.Deferred != 14 || r.Start != 2 {
		t.Errorf("deferred = %v at start %d, want 14 at 2", r.Deferred, r.Start)
	}
	if r.Interrupted != 14 {
		t.Errorf("interrupted = %v, want 14 (same hours)", r.Interrupted)
	}
	if r.DeferSaving() != 54 || r.TotalSaving() != 54 || r.InterruptSaving() != 0 {
		t.Errorf("savings = %v/%v/%v", r.DeferSaving(), r.InterruptSaving(), r.TotalSaving())
	}
}

func TestInterruptionBeatsDeferralOnSplitValleys(t *testing.T) {
	// Two separated cheap hours: contiguous placement cannot use both.
	ci := []float64{1, 50, 50, 1, 50}
	r, err := Evaluate(ci, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Interrupted != 2 {
		t.Errorf("interrupted = %v, want 2", r.Interrupted)
	}
	if r.Deferred != 51 {
		t.Errorf("deferred = %v, want 51", r.Deferred)
	}
}

func TestEvaluateZeroSlack(t *testing.T) {
	ci := []float64{5, 3, 9}
	r, err := Evaluate(ci, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline != 12 || r.Deferred != 12 || r.Interrupted != 12 {
		t.Errorf("zero-slack result = %+v, all costs must equal baseline", r)
	}
}

func TestEvaluateErrors(t *testing.T) {
	ci := make([]float64, 10)
	cases := []struct{ arrival, length, slack int }{
		{0, 0, 0},  // zero length
		{0, 1, -1}, // negative slack
		{-1, 1, 0}, // negative arrival
		{5, 4, 2},  // horizon overrun
		{0, 11, 0}, // longer than trace
		{9, 1, 1},  // just past the end
	}
	for _, c := range cases {
		if _, err := Evaluate(ci, c.arrival, c.length, c.slack); err == nil {
			t.Errorf("Evaluate(%+v) accepted", c)
		}
	}
}

func TestSchedulePicksCheapestHours(t *testing.T) {
	ci := []float64{9, 1, 8, 2, 7, 3}
	hours, err := Schedule(ci, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5}
	if len(hours) != 3 {
		t.Fatalf("schedule = %v", hours)
	}
	for i := range want {
		if hours[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", hours, want)
		}
	}
}

func TestScheduleError(t *testing.T) {
	if _, err := Schedule([]float64{1}, 0, 2, 0); err == nil {
		t.Fatal("overrun accepted")
	}
}

func randSeries(n int, seed uint64) []float64 {
	src := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = src.Uniform(5, 800)
	}
	return out
}

func TestSweepMatchesNaive(t *testing.T) {
	ci := randSeries(500, 3)
	for _, tc := range []struct{ length, slack int }{
		{1, 0}, {1, 24}, {6, 24}, {24, 24}, {24, 100}, {48, 5}, {100, 250},
	} {
		arrivals := len(ci) - tc.length - tc.slack
		fast, err := Sweep(ci, tc.length, tc.slack, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := SweepNaive(ci, tc.length, tc.slack, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < arrivals; a++ {
			if !almost(fast.Baseline[a], slow.Baseline[a]) {
				t.Fatalf("L=%d s=%d baseline[%d]: %v != %v", tc.length, tc.slack, a, fast.Baseline[a], slow.Baseline[a])
			}
			if !almost(fast.Deferred[a], slow.Deferred[a]) {
				t.Fatalf("L=%d s=%d deferred[%d]: %v != %v", tc.length, tc.slack, a, fast.Deferred[a], slow.Deferred[a])
			}
			if !almost(fast.Interrupted[a], slow.Interrupted[a]) {
				t.Fatalf("L=%d s=%d interrupted[%d]: %v != %v", tc.length, tc.slack, a, fast.Interrupted[a], slow.Interrupted[a])
			}
		}
	}
}

func TestQuickSweepMatchesNaive(t *testing.T) {
	f := func(seed uint64, lRaw, sRaw uint8) bool {
		n := 200
		length := int(lRaw)%40 + 1
		slack := int(sRaw) % 80
		arrivals := n - length - slack
		if arrivals < 1 {
			return true
		}
		ci := randSeries(n, seed)
		fast, err := Sweep(ci, length, slack, arrivals)
		if err != nil {
			return false
		}
		slow, _ := SweepNaive(ci, length, slack, arrivals)
		for a := 0; a < arrivals; a++ {
			if !almost(fast.Deferred[a], slow.Deferred[a]) || !almost(fast.Interrupted[a], slow.Interrupted[a]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepMonotoneInvariant(t *testing.T) {
	ci := randSeries(2000, 11)
	costs, err := Sweep(ci, 24, 168, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if err := costs.ValidateMonotone(); err != nil {
		t.Fatal(err)
	}
}

func TestMoreSlackNeverHurts(t *testing.T) {
	ci := randSeries(1500, 17)
	arrivals := 500
	prev, err := Sweep(ci, 24, 0, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	for _, slack := range []int{24, 168, 720} {
		cur, err := Sweep(ci, 24, slack, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < arrivals; a++ {
			if cur.Deferred[a] > prev.Deferred[a]+1e-6 {
				t.Fatalf("slack %d raised deferred cost at %d", slack, a)
			}
			if cur.Interrupted[a] > prev.Interrupted[a]+1e-6 {
				t.Fatalf("slack %d raised interrupted cost at %d", slack, a)
			}
		}
		prev = cur
	}
}

func TestSweepErrors(t *testing.T) {
	ci := make([]float64, 10)
	if _, err := Sweep(ci, 1, 0, 0); err == nil {
		t.Error("zero arrivals accepted")
	}
	if _, err := Sweep(ci, 5, 5, 2); err == nil {
		t.Error("overrunning sweep accepted")
	}
	if _, err := SweepNaive(ci, 5, 5, 2); err == nil {
		t.Error("overrunning naive sweep accepted")
	}
	if _, err := SweepNaive(ci, 1, 0, 0); err == nil {
		t.Error("zero arrivals accepted by naive sweep")
	}
}

func TestReduce(t *testing.T) {
	c := Costs{
		Baseline:    []float64{100, 200},
		Deferred:    []float64{80, 120},
		Interrupted: []float64{70, 100},
	}
	ms := c.Reduce()
	if !almost(ms.Baseline, 150) || !almost(ms.DeferSaving, 50) || !almost(ms.InterruptSaving, 15) {
		t.Fatalf("Reduce = %+v", ms)
	}
	if got := (Costs{}).Reduce(); got != (MeanSavings{}) {
		t.Fatalf("empty Reduce = %+v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(s.Mean, 5) || !almost(s.Std, 2) {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.CI95 <= 0 {
		t.Fatalf("CI95 = %v", s.CI95)
	}
}

func TestValidateMonotoneCatchesViolations(t *testing.T) {
	c := Costs{
		Baseline:    []float64{10},
		Deferred:    []float64{11},
		Interrupted: []float64{9},
	}
	if err := c.ValidateMonotone(); err == nil {
		t.Fatal("deferred > baseline not caught")
	}
	c = Costs{
		Baseline:    []float64{10},
		Deferred:    []float64{8},
		Interrupted: []float64{9},
	}
	if err := c.ValidateMonotone(); err == nil {
		t.Fatal("interrupted > deferred not caught")
	}
}

func TestRankTreeKSmallest(t *testing.T) {
	vals := []float64{5, 3, 8, 3, 1}
	tr := newRankTree(vals)
	for i := range vals {
		tr.add(i)
	}
	if got := tr.kSmallestSum(3); !almost(got, 7) { // 1+3+3
		t.Fatalf("kSmallestSum(3) = %v, want 7", got)
	}
	tr.remove(4)                                     // drop the 1
	if got := tr.kSmallestSum(3); !almost(got, 11) { // 3+3+5
		t.Fatalf("after removal kSmallestSum(3) = %v, want 11", got)
	}
	if got := tr.kSmallestSum(0); got != 0 {
		t.Fatalf("kSmallestSum(0) = %v", got)
	}
}

func TestRankTreePanicsWhenUnderfull(t *testing.T) {
	tr := newRankTree([]float64{1, 2})
	tr.add(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k > present elements")
		}
	}()
	tr.kSmallestSum(2)
}

func BenchmarkSweepYearInterruptible(b *testing.B) {
	ci := randSeries(8760+8760+168, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(ci, 24, 8760, 8760); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepNaiveSmall(b *testing.B) {
	ci := randSeries(2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepNaive(ci, 24, 168, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
