package carbonapi

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"carbonshift/internal/forecast"
	"carbonshift/internal/trace"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func testSet(t *testing.T, hours int) *trace.Set {
	t.Helper()
	a := make([]float64, hours)
	b := make([]float64, hours)
	for h := 0; h < hours; h++ {
		a[h] = 100 + 50*math.Sin(2*math.Pi*float64(h)/24)
		b[h] = 700
	}
	s, err := trace.NewSet([]*trace.Trace{
		trace.New("AA", t0, a),
		trace.New("BB", t0, b),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fixedClock pins "now" to a given trace hour.
func fixedClock(hour int) func() time.Time {
	return func() time.Time { return t0.Add(time.Duration(hour) * time.Hour) }
}

func startServer(t *testing.T, set *trace.Set, nowHour int) (*httptest.Server, *Client) {
	t.Helper()
	srv := NewServer(set, WithClock(fixedClock(nowHour)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, client
}

func TestRegions(t *testing.T) {
	_, client := startServer(t, testSet(t, 100), 50)
	got, err := client.Regions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "AA" || got[1] != "BB" {
		t.Fatalf("regions = %v", got)
	}
}

func TestLatest(t *testing.T) {
	set := testSet(t, 100)
	_, client := startServer(t, set, 42)
	p, err := client.Latest(context.Background(), "BB")
	if err != nil {
		t.Fatal(err)
	}
	if p.CarbonIntensity != 700 {
		t.Fatalf("intensity = %v", p.CarbonIntensity)
	}
	if !p.Timestamp.Equal(t0.Add(42 * time.Hour)) {
		t.Fatalf("timestamp = %v", p.Timestamp)
	}
}

func TestLatestUnknownRegion(t *testing.T) {
	_, client := startServer(t, testSet(t, 100), 10)
	_, err := client.Latest(context.Background(), "NOPE")
	if err == nil || !strings.Contains(err.Error(), "unknown region") {
		t.Fatalf("err = %v", err)
	}
}

func TestHistory(t *testing.T) {
	set := testSet(t, 200)
	_, client := startServer(t, set, 100)
	points, err := client.History(context.Background(), "AA", 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 24 {
		t.Fatalf("points = %d", len(points))
	}
	// Oldest first, ending just before "now".
	if !points[0].Timestamp.Equal(t0.Add(76 * time.Hour)) {
		t.Fatalf("first timestamp = %v", points[0].Timestamp)
	}
	if !points[23].Timestamp.Equal(t0.Add(99 * time.Hour)) {
		t.Fatalf("last timestamp = %v", points[23].Timestamp)
	}
	want := set.MustGet("AA").At(76)
	if math.Abs(points[0].CarbonIntensity-want) > 1e-9 {
		t.Fatalf("value = %v, want %v", points[0].CarbonIntensity, want)
	}
}

func TestHistoryClampsAtStart(t *testing.T) {
	_, client := startServer(t, testSet(t, 100), 5)
	points, err := client.History(context.Background(), "AA", 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d, want 5 (clamped to dataset start)", len(points))
	}
}

func TestForecastNeverLeaksFuture(t *testing.T) {
	set := testSet(t, 24*30)
	now := 24 * 20
	_, client := startServer(t, set, now)
	points, err := client.Forecast(context.Background(), "AA", 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 24 {
		t.Fatalf("points = %d", len(points))
	}
	// The sinusoid is noise-free, so a good forecast is near the true
	// future, but it must come from the model: check it equals the
	// blended model's output on the clamped history, not the truth by
	// construction of the handler.
	pred, err := (forecast.Blended{}).Forecast(set.MustGet("AA").CI[:now], 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if math.Abs(points[i].CarbonIntensity-pred[i]) > 1e-9 {
			t.Fatalf("hour %d: served %v, model says %v", i, points[i].CarbonIntensity, pred[i])
		}
	}
	if !points[0].Timestamp.Equal(t0.Add(time.Duration(now) * time.Hour)) {
		t.Fatalf("forecast starts at %v", points[0].Timestamp)
	}
}

func TestForecastTooLittleHistory(t *testing.T) {
	// Now pinned to hour 1: the blended model needs a day of history.
	_, client := startServer(t, testSet(t, 100), 1)
	_, err := client.Forecast(context.Background(), "AA", 24)
	if err == nil || !strings.Contains(err.Error(), "forecast unavailable") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadHoursParam(t *testing.T) {
	ts, _ := startServer(t, testSet(t, 100), 50)
	for _, q := range []string{"hours=0", "hours=-1", "hours=abc", "hours=99999999"} {
		resp, err := http.Get(ts.URL + "/v1/carbon-intensity/AA/history?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestDefaultHours(t *testing.T) {
	ts, _ := startServer(t, testSet(t, 100), 60)
	resp, err := http.Get(ts.URL + "/v1/carbon-intensity/AA/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SeriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 24 {
		t.Fatalf("default window = %d points, want 24", len(out.Points))
	}
	if out.Unit != Unit || out.Forecast {
		t.Fatalf("response metadata wrong: %+v", out)
	}
}

func TestClockClamping(t *testing.T) {
	set := testSet(t, 100)
	// A clock far past the dataset clamps to the final hour.
	srv := NewServer(set, WithClock(func() time.Time { return t0.Add(10000 * time.Hour) }))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Latest(context.Background(), "AA")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Timestamp.Equal(t0.Add(99 * time.Hour)) {
		t.Fatalf("clamped timestamp = %v", p.Timestamp)
	}
	// And a clock before the dataset clamps to hour 1.
	srv2 := NewServer(set, WithClock(func() time.Time { return t0.Add(-time.Hour) }))
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2, err := NewClient(ts2.URL, ts2.Client())
	if err != nil {
		t.Fatal(err)
	}
	p, err = client2.Latest(context.Background(), "AA")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Timestamp.Equal(t0.Add(time.Hour)) {
		t.Fatalf("clamped-low timestamp = %v", p.Timestamp)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := startServer(t, testSet(t, 100), 50)
	resp, err := http.Post(ts.URL+"/v1/regions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("not a url", nil); err == nil {
		t.Fatal("garbage URL accepted")
	}
	if _, err := NewClient("", nil); err == nil {
		t.Fatal("empty URL accepted")
	}
	if c, err := NewClient("http://example.com", nil); err != nil || c == nil {
		t.Fatalf("valid URL rejected: %v", err)
	}
}

func TestConcurrentRequests(t *testing.T) {
	_, client := startServer(t, testSet(t, 24*30), 24*20)
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			switch i % 3 {
			case 0:
				_, err := client.Latest(ctx, "AA")
				errs <- err
			case 1:
				_, err := client.History(ctx, "BB", 48)
				errs <- err
			default:
				_, err := client.Forecast(ctx, "AA", 12)
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	_, client := startServer(t, testSet(t, 100), 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Latest(ctx, "AA"); err == nil {
		t.Fatal("cancelled context succeeded")
	}
}

func TestHealthz(t *testing.T) {
	_, client := startServer(t, testSet(t, 100), 50)
	if err := client.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestBatchLatestOnly(t *testing.T) {
	set := testSet(t, 100)
	_, client := startServer(t, set, 42)
	got, err := client.Batch(context.Background(), []string{"AA", "BB"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("regions = %d", len(got))
	}
	for i, code := range []string{"AA", "BB"} {
		if got[i].Region != code {
			t.Fatalf("region %d = %q, want %q", i, got[i].Region, code)
		}
		want := set.MustGet(code).At(42)
		if math.Abs(got[i].Latest.CarbonIntensity-want) > 1e-9 {
			t.Fatalf("%s latest = %v, want %v", code, got[i].Latest.CarbonIntensity, want)
		}
		if got[i].History != nil {
			t.Fatalf("%s has history without hours param", code)
		}
	}
}

func TestBatchWithHistory(t *testing.T) {
	set := testSet(t, 200)
	_, client := startServer(t, set, 100)
	got, err := client.Batch(context.Background(), []string{"BB", "AA"}, 24)
	if err != nil {
		t.Fatal(err)
	}
	// Order follows the request, not the catalog.
	if got[0].Region != "BB" || got[1].Region != "AA" {
		t.Fatalf("order = %q, %q", got[0].Region, got[1].Region)
	}
	for _, br := range got {
		if len(br.History) != 24 {
			t.Fatalf("%s history = %d points", br.Region, len(br.History))
		}
		if !br.History[0].Timestamp.Equal(t0.Add(76 * time.Hour)) {
			t.Fatalf("%s history starts at %v", br.Region, br.History[0].Timestamp)
		}
		want := set.MustGet(br.Region).At(76)
		if math.Abs(br.History[0].CarbonIntensity-want) > 1e-9 {
			t.Fatalf("%s history[0] = %v, want %v", br.Region, br.History[0].CarbonIntensity, want)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	ts, client := startServer(t, testSet(t, 100), 50)
	if _, err := client.Batch(context.Background(), []string{"AA", "NOPE"}, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown region") {
		t.Errorf("unknown region: err = %v", err)
	}
	if _, err := client.Batch(context.Background(), nil, 0); err == nil {
		t.Error("empty region list accepted client-side")
	}
	resp, err := http.Get(ts.URL + "/v1/carbon-intensity/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing regions param: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/carbon-intensity/batch?regions=AA&hours=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("hours=0: status %d", resp.StatusCode)
	}
}

// --- Client error paths against misbehaving servers ---

// errClient points a Client at an arbitrary handler.
func errClient(t *testing.T, handler http.HandlerFunc) *Client {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return client
}

func TestClientNon2xxWithErrorBody(t *testing.T) {
	client := errClient(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "grid is down"})
	})
	_, err := client.Latest(context.Background(), "AA")
	if err == nil || !strings.Contains(err.Error(), "grid is down") ||
		!strings.Contains(err.Error(), "503") {
		t.Fatalf("err = %v, want status and server message", err)
	}
}

func TestClientNon2xxPlainBody(t *testing.T) {
	client := errClient(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gateway exploded", http.StatusBadGateway)
	})
	_, err := client.Regions(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unexpected status") {
		t.Fatalf("err = %v, want unexpected-status error", err)
	}
}

func TestClientMalformedJSON(t *testing.T) {
	client := errClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"regions": [truncated`))
	})
	_, err := client.Regions(context.Background())
	if err == nil || !strings.Contains(err.Error(), "decoding response") {
		t.Fatalf("err = %v, want decoding error", err)
	}
	_, err = client.Batch(context.Background(), []string{"AA"}, 0)
	if err == nil || !strings.Contains(err.Error(), "decoding response") {
		t.Fatalf("batch err = %v, want decoding error", err)
	}
}

func TestClientCancellationMidRequest(t *testing.T) {
	started := make(chan struct{})
	client := errClient(t, func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-r.Context().Done() // hang until the client gives up
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.History(ctx, "AA", 24)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("err = %v, want context cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request never returned")
	}
}

func BenchmarkLatestEndpoint(b *testing.B) {
	a := make([]float64, 1000)
	for i := range a {
		a[i] = 100
	}
	set, err := trace.NewSet([]*trace.Trace{trace.New("AA", t0, a)})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(set, WithClock(fixedClock(500)))
	handler := srv.Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/carbon-intensity/AA/latest", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
