package carbonapi

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"carbonshift/internal/httpx"
)

// Client is a typed client for the carbon-information API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the API at baseURL. A nil httpClient
// uses http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("carbonapi: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: u.String(), hc: httpClient}, nil
}

// Regions lists the available region codes.
func (c *Client) Regions(ctx context.Context) ([]string, error) {
	var out RegionsResponse
	if err := c.get(ctx, "/v1/regions", &out); err != nil {
		return nil, err
	}
	return out.Regions, nil
}

// Latest returns the region's current intensity sample.
func (c *Client) Latest(ctx context.Context, region string) (Point, error) {
	var out LatestResponse
	path := fmt.Sprintf("/v1/carbon-intensity/%s/latest", url.PathEscape(region))
	if err := c.get(ctx, path, &out); err != nil {
		return Point{}, err
	}
	return out.Point, nil
}

// History returns up to `hours` trailing samples (oldest first).
func (c *Client) History(ctx context.Context, region string, hours int) ([]Point, error) {
	var out SeriesResponse
	path := fmt.Sprintf("/v1/carbon-intensity/%s/history?hours=%d", url.PathEscape(region), hours)
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Points, nil
}

// Forecast returns `hours` of model forecast starting now.
func (c *Client) Forecast(ctx context.Context, region string, hours int) ([]Point, error) {
	var out SeriesResponse
	path := fmt.Sprintf("/v1/carbon-intensity/%s/forecast?hours=%d", url.PathEscape(region), hours)
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Points, nil
}

// Batch returns every requested region's current intensity — and, when
// hours > 0, its trailing history — in a single round trip. Multi-region
// policies (load balancers, spatial schedulers) should prefer it over
// one Latest call per region per decision.
func (c *Client) Batch(ctx context.Context, regions []string, hours int) ([]BatchRegion, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("carbonapi: no regions requested")
	}
	var out BatchResponse
	path := "/v1/carbon-intensity/batch?regions=" + url.QueryEscape(strings.Join(regions, ","))
	if hours > 0 {
		path += fmt.Sprintf("&hours=%d", hours)
	}
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Regions, nil
}

// Healthz reports server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	var out map[string]string
	return c.get(ctx, "/healthz", &out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("carbonapi: building request: %w", err)
	}
	return httpx.DoJSON(c.hc, req, "carbonapi", out)
}
