// Package carbonapi implements a carbon-information service — the
// Electricity Maps / WattTime-style web API the paper identifies
// (§2.1) as the infrastructure that makes carbon-aware scheduling
// possible — plus a typed client for it.
//
// The server exposes the simulated dataset over HTTP:
//
//	GET /v1/regions                                   region codes
//	GET /v1/carbon-intensity/{region}/latest          current intensity
//	GET /v1/carbon-intensity/{region}/history?hours=N trailing window
//	GET /v1/carbon-intensity/{region}/forecast?hours=N model forecast
//	GET /v1/carbon-intensity/batch?regions=A,B&hours=N multi-region snapshot
//	GET /healthz                                      liveness
//
// The batch endpoint serves multi-region consumers (load balancers,
// spatial schedulers) that would otherwise issue one request per region
// per decision: one round trip returns every region's current intensity
// and, when hours is given, its trailing window.
//
// "Now" is injectable, so the server can replay the dataset at any
// speed; the forecast endpoint only ever sees history up to now — the
// API cannot leak the simulator's future.
package carbonapi

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"carbonshift/internal/forecast"
	"carbonshift/internal/httpx"
	"carbonshift/internal/metrics"
	"carbonshift/internal/serve"
	"carbonshift/internal/trace"
	"carbonshift/internal/tracing"
)

// Unit is the fixed unit of every intensity value served.
const Unit = "gCO2eq/kWh"

// maxWindowHours bounds history and forecast requests.
const maxWindowHours = 7 * 24 * 60

// Point is one timestamped intensity sample.
type Point struct {
	Timestamp       time.Time `json:"timestamp"`
	CarbonIntensity float64   `json:"carbon_intensity"`
}

// LatestResponse is the /latest payload.
type LatestResponse struct {
	Region string `json:"region"`
	Unit   string `json:"unit"`
	Point  Point  `json:"point"`
}

// SeriesResponse is the /history and /forecast payload.
type SeriesResponse struct {
	Region   string  `json:"region"`
	Unit     string  `json:"unit"`
	Forecast bool    `json:"forecast"`
	Points   []Point `json:"points"`
}

// RegionsResponse is the /regions payload.
type RegionsResponse struct {
	Regions []string `json:"regions"`
}

// BatchRegion is one region's slice of the /batch payload.
type BatchRegion struct {
	Region string `json:"region"`
	Latest Point  `json:"latest"`
	// History holds the trailing window (oldest first) when the request
	// asked for one; it excludes the current hour.
	History []Point `json:"history,omitempty"`
}

// BatchResponse is the /batch payload.
type BatchResponse struct {
	Unit    string        `json:"unit"`
	Regions []BatchRegion `json:"regions"`
}

// ErrorResponse is the JSON error body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Server serves a trace set as a carbon-information API.
type Server struct {
	set        *trace.Set
	now        func() time.Time
	forecaster forecast.Forecaster

	registry *metrics.Registry
	httpmx   *serve.HTTPMetrics
	tracer   *tracing.Tracer
}

// Option configures a Server.
type Option func(*Server)

// WithClock injects the time source (for replay and tests). The
// returned time is clamped into the dataset's span.
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// WithForecaster sets the model behind /forecast. Default: the blended
// seasonal model.
func WithForecaster(f forecast.Forecaster) Option {
	return func(s *Server) { s.forecaster = f }
}

// WithMetrics enables GET /metrics: the shared http_* request families
// plus carbonapi_trace_hour / carbonapi_regions gauges.
func WithMetrics() Option {
	return func(s *Server) {
		r := metrics.NewRegistry()
		s.registry = r
		s.httpmx = serve.NewHTTPMetrics(r)
		r.NewGaugeFunc("carbonapi_trace_hour",
			"The replay hour /latest answers from, clamped into the dataset span.",
			func() float64 { return float64(s.nowHour()) })
		r.NewGaugeFunc("carbonapi_regions",
			"Regions in the served trace set.",
			func() float64 { return float64(len(s.set.Regions())) })
	}
}

// WithTracing enables the span recorder: requests are head-sampled
// into a bounded ring served at GET /debug/traces, and a traceparent
// arriving from a carbon-aware client (say, a scheduler batch-fetching
// intensities mid-admission) joins that client's trace. The zero
// Config takes the package defaults.
func WithTracing(cfg tracing.Config) Option {
	return func(s *Server) { s.tracer = tracing.New(cfg) }
}

// Metrics returns the server's registry (nil unless WithMetrics).
func (s *Server) Metrics() *metrics.Registry { return s.registry }

// Tracer returns the server's span recorder (nil unless WithTracing).
func (s *Server) Tracer() *tracing.Tracer { return s.tracer }

// NewServer builds a server over the set.
func NewServer(set *trace.Set, opts ...Option) *Server {
	s := &Server{
		set:        set,
		now:        time.Now,
		forecaster: forecast.Blended{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// nowHour maps the clock to a trace hour, clamped into [1, len-1] so
// there is always at least one hour of history.
func (s *Server) nowHour() int {
	elapsed := s.now().UTC().Sub(s.set.Start())
	h := int(elapsed / time.Hour)
	if h < 1 {
		h = 1
	}
	if max := s.set.Len() - 1; h > max {
		h = max
	}
	return h
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/regions", s.handleRegions)
	mux.HandleFunc("GET /v1/carbon-intensity/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/carbon-intensity/{region}/latest", s.handleLatest)
	mux.HandleFunc("GET /v1/carbon-intensity/{region}/history", s.handleHistory)
	mux.HandleFunc("GET /v1/carbon-intensity/{region}/forecast", s.handleForecast)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.registry != nil {
		mux.Handle("GET /metrics", s.registry.Handler())
	}
	if s.tracer != nil {
		mux.Handle("GET /debug/traces", s.tracer.Handler())
	}
	var h http.Handler = mux
	if s.httpmx != nil {
		h = s.httpmx.Wrap(h)
	}
	h = serve.NewHTTPTracing(s.tracer, slog.Default()).Wrap(h)
	return h
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, RegionsResponse{Regions: s.set.Regions()})
}

func (s *Server) region(w http.ResponseWriter, r *http.Request) (*trace.Trace, bool) {
	code := r.PathValue("region")
	tr, ok := s.set.Get(code)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown region %q", code)})
		return nil, false
	}
	return tr, true
}

func (s *Server) handleLatest(w http.ResponseWriter, r *http.Request) {
	tr, ok := s.region(w, r)
	if !ok {
		return
	}
	h := s.nowHour()
	writeJSON(w, http.StatusOK, LatestResponse{
		Region: tr.Region,
		Unit:   Unit,
		Point:  Point{Timestamp: tr.TimeAt(h), CarbonIntensity: tr.At(h)},
	})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	tr, ok := s.region(w, r)
	if !ok {
		return
	}
	hours, ok := hoursParam(w, r, 24)
	if !ok {
		return
	}
	now := s.nowHour()
	lo := now - hours
	if lo < 0 {
		lo = 0
	}
	points := make([]Point, 0, now-lo)
	for h := lo; h < now; h++ {
		points = append(points, Point{Timestamp: tr.TimeAt(h), CarbonIntensity: tr.At(h)})
	}
	writeJSON(w, http.StatusOK, SeriesResponse{Region: tr.Region, Unit: Unit, Points: points})
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	tr, ok := s.region(w, r)
	if !ok {
		return
	}
	hours, ok := hoursParam(w, r, 24)
	if !ok {
		return
	}
	now := s.nowHour()
	pred, err := s.forecaster.Forecast(tr.CI[:now], hours)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{
			Error: fmt.Sprintf("forecast unavailable: %v", err),
		})
		return
	}
	points := make([]Point, len(pred))
	for i, v := range pred {
		points[i] = Point{Timestamp: tr.TimeAt(now).Add(time.Duration(i) * time.Hour), CarbonIntensity: v}
	}
	writeJSON(w, http.StatusOK, SeriesResponse{Region: tr.Region, Unit: Unit, Forecast: true, Points: points})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("regions")
	if raw == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "regions parameter is required (comma-separated codes)"})
		return
	}
	codes := strings.Split(raw, ",")
	hours, ok := hoursParam(w, r, 0) // 0: latest only, no history
	if !ok {
		return
	}
	now := s.nowHour()
	lo := now - hours
	if lo < 0 {
		lo = 0
	}
	out := BatchResponse{Unit: Unit, Regions: make([]BatchRegion, 0, len(codes))}
	for _, code := range codes {
		code = strings.TrimSpace(code)
		tr, ok := s.set.Get(code)
		if !ok {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown region %q", code)})
			return
		}
		br := BatchRegion{
			Region: tr.Region,
			Latest: Point{Timestamp: tr.TimeAt(now), CarbonIntensity: tr.At(now)},
		}
		if hours > 0 {
			br.History = make([]Point, 0, now-lo)
			for h := lo; h < now; h++ {
				br.History = append(br.History, Point{Timestamp: tr.TimeAt(h), CarbonIntensity: tr.At(h)})
			}
		}
		out.Regions = append(out.Regions, br)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func hoursParam(w http.ResponseWriter, r *http.Request, def int) (int, bool) {
	raw := r.URL.Query().Get("hours")
	if raw == "" {
		return def, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 || n > maxWindowHours {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("hours must be an integer in [1, %d]", maxWindowHours),
		})
		return 0, false
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	httpx.WriteJSON(w, status, v)
}
