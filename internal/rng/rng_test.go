package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not simply mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child streams overlap in %d/100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(std-3) > 0.1 {
		t.Errorf("normal stddev = %v, want ~3", std)
	}
}

func TestLogNormPositive(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		if v := r.LogNorm(0, 1); v <= 0 {
			t.Fatalf("LogNorm produced non-positive %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPickRespectsZeroWeights(t *testing.T) {
	r := New(23)
	ws := []float64{0, 1, 0, 2}
	for i := 0; i < 1000; i++ {
		idx := r.Pick(ws)
		if idx != 1 && idx != 3 {
			t.Fatalf("Pick chose zero-weight index %d", idx)
		}
	}
}

func TestPickDistribution(t *testing.T) {
	r := New(29)
	ws := []float64{1, 3}
	counts := [2]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(ws)]++
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("weighted pick fraction = %v, want ~0.75", frac)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(31)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestQuickFloat64Bounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 64; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPermValid(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm(0, 1)
	}
}

func TestSplitNMatchesSequentialSplits(t *testing.T) {
	a, b := New(9), New(9)
	children := a.SplitN(5)
	if len(children) != 5 {
		t.Fatalf("SplitN returned %d children", len(children))
	}
	for i := 0; i < 5; i++ {
		want := b.Split()
		got := children[i]
		for j := 0; j < 16; j++ {
			if g, w := got.Uint64(), want.Uint64(); g != w {
				t.Fatalf("child %d sample %d: %d vs %d", i, j, g, w)
			}
		}
	}
}

func TestSplitNChildrenIndependent(t *testing.T) {
	children := New(10).SplitN(3)
	// Distinct children must not share a stream.
	if children[0].Uint64() == children[1].Uint64() && children[1].Uint64() == children[2].Uint64() {
		t.Fatal("SplitN children look identical")
	}
	if len(New(10).SplitN(0)) != 0 {
		t.Fatal("SplitN(0) not empty")
	}
}
