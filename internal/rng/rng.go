// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every stochastic component in the repository (wind generation, demand
// noise, forecast-error injection, workload sampling) draws from an
// explicitly seeded *rng.Source so that experiments are bit-for-bit
// reproducible across runs and machines. The generator is a
// splitmix64-seeded xoshiro256** — tiny, fast, and with far better
// statistical behaviour than required for the Monte Carlo use here.
//
// The package deliberately avoids math/rand so that the stream of values
// is pinned by this repository rather than by the Go release.
package rng

import "math"

// Source is a deterministic random number generator. It is not safe for
// concurrent use; create one Source per goroutine (see Split).
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, which guarantees
// a well-mixed internal state even for small or sequential seeds.
func New(seed uint64) *Source {
	r := &Source{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child generator from r. The child's stream
// is a pure function of r's current state, so splitting is itself
// deterministic. Splitting is the supported way to hand generators to
// concurrent workers.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// SplitN derives n independent child generators in one serial pass.
// Child i's stream is a pure function of r's state at the call and of
// i, never of which goroutine later consumes it, so pre-splitting with
// SplitN before fanning cells out to the engine's worker pool keeps
// stochastic experiments byte-identical for every worker count.
func (r *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the Box–Muller transform.
func (r *Source) Norm(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNorm returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma.
func (r *Source) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a random index weighted by the non-negative weights ws.
// It panics if ws is empty or sums to zero.
func (r *Source) Pick(ws []float64) int {
	var total float64
	for _, w := range ws {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if len(ws) == 0 || total == 0 {
		panic("rng: Pick with empty or zero-sum weights")
	}
	x := r.Float64() * total
	for i, w := range ws {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(ws) - 1
}
