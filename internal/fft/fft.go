// Package fft implements the spectral machinery behind the paper's
// periodicity analysis (Figure 4): a complex FFT for arbitrary lengths
// (iterative radix-2 with a Bluestein chirp-z fallback), periodograms,
// FFT-based autocorrelation, and a period detector that mirrors the
// behaviour of Azure Data Explorer's series_periods_detect(): it
// returns candidate periods with a score in [0, 1], where 1 means the
// series repeats exactly at that period and 0 means no periodicity.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Any length is supported: powers of two run the iterative
// radix-2 algorithm directly, other lengths go through Bluestein's
// chirp-z reduction to a power-of-two convolution.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		radix2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT returns the inverse discrete Fourier transform of X, scaled by
// 1/n so that IFFT(FFT(x)) == x.
func IFFT(X []complex128) []complex128 {
	n := len(X)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = make([]complex128, n)
		copy(out, X)
		radix2(out, true)
	} else {
		out = bluestein(X, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// radix2 runs the in-place iterative Cooley–Tukey FFT. len(a) must be a
// power of two. If inverse, the conjugate transform is computed
// (without the 1/n scaling).
func radix2(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution of
// power-of-two length (the chirp-z transform).
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign*i*pi*k^2/n).
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		k2 := (int64(k) * int64(k)) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(k2)/float64(n)))
	}

	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * w[k]
	}
	return out
}

// Periodogram returns the power spectral density estimate of the real
// series x at frequency bins 0..n/2 (inclusive): |FFT(x - mean)|² / n.
func Periodogram(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v-mean, 0)
	}
	X := FFT(cx)
	out := make([]float64, n/2+1)
	for k := range out {
		re, im := real(X[k]), imag(X[k])
		out[k] = (re*re + im*im) / float64(n)
	}
	return out
}

// Autocorr returns the biased, normalized autocorrelation of x for lags
// 0..len(x)-1, computed in O(n log n) via the Wiener–Khinchin theorem.
// A linear trend is removed first so slow drifts do not masquerade as
// periodicity; acf[0] is 1 unless the detrended series is constant, in
// which case all lags are 0.
func Autocorr(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	detr := Detrend(x)
	// Zero-pad to at least 2n to avoid circular wrap-around.
	m := 1
	for m < 2*n {
		m <<= 1
	}
	cx := make([]complex128, m)
	for i, v := range detr {
		cx[i] = complex(v, 0)
	}
	radix2(cx, false)
	for i := range cx {
		re, im := real(cx[i]), imag(cx[i])
		cx[i] = complex(re*re+im*im, 0)
	}
	radix2(cx, true)
	out := make([]float64, n)
	norm := real(cx[0])
	if norm <= 1e-18 {
		return out // constant series: no autocorrelation structure
	}
	for lag := 0; lag < n; lag++ {
		out[lag] = real(cx[lag]) / norm
	}
	return out
}

// Detrend removes the least-squares linear trend (and therefore the
// mean) from x, returning a new slice.
func Detrend(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		return out // single sample: trend removal leaves zero
	}
	// Inline least-squares fit of x against sample index.
	mx := float64(n-1) / 2
	var my, num, den float64
	for _, v := range x {
		my += v
	}
	my /= float64(n)
	for i, v := range x {
		d := float64(i) - mx
		num += d * (v - my)
		den += d * d
	}
	slope := 0.0
	if den > 0 {
		slope = num / den
	}
	for i, v := range x {
		out[i] = v - (my + slope*(float64(i)-mx))
	}
	return out
}

// Period is a detected periodicity candidate.
type Period struct {
	// Lag is the period length in samples (hours, for carbon traces).
	Lag int
	// Score is the periodicity strength in [0, 1]: 1 means the series
	// repeats exactly with this period, 0 means no evidence.
	Score float64
}

// ScoreAt returns the periodicity score of x at one specific lag: the
// normalized autocorrelation at that lag, clamped to [0, 1]. Series
// whose detrended variance is negligible relative to their mean score 0
// — a flat fossil grid has no meaningful periodicity even if its tiny
// residual noise happens to correlate.
func ScoreAt(x []float64, lag int) float64 {
	if lag <= 0 || lag >= len(x) {
		return 0
	}
	if !meaningfulVariation(x) {
		return 0
	}
	acf := Autocorr(x)
	return clamp01(acf[lag])
}

// scoreWithACF is ScoreAt with a precomputed autocorrelation.
func scoreWithACF(acf []float64, lag int) float64 {
	if lag <= 0 || lag >= len(acf) {
		return 0
	}
	return clamp01(acf[lag])
}

// meaningfulVariation reports whether the detrended series varies by
// more than noiseFloor relative to its mean level.
func meaningfulVariation(x []float64) bool {
	if len(x) == 0 {
		return false
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	detr := Detrend(x)
	var ss float64
	for _, v := range detr {
		ss += v * v
	}
	sd := math.Sqrt(ss / float64(len(detr)))
	if mean == 0 {
		return sd > 0
	}
	return sd/math.Abs(mean) > noiseFloor
}

// noiseFloor is the minimum detrended coefficient of variation for a
// series to be considered periodic at all. Hong Kong and Indonesia in
// the paper's Figure 4 sit below this and score 0.
const noiseFloor = 0.02

// DetectPeriods scans lags 2..maxLag and returns local maxima of the
// periodicity score in descending score order, mirroring the multi-
// period output of series_periods_detect(). Harmonically redundant
// candidates (an integer multiple of a stronger, shorter period with no
// extra score) are pruned.
func DetectPeriods(x []float64, maxLag int) ([]Period, error) {
	if maxLag < 2 {
		return nil, fmt.Errorf("fft: maxLag %d too small", maxLag)
	}
	if maxLag >= len(x) {
		return nil, fmt.Errorf("fft: maxLag %d must be below series length %d", maxLag, len(x))
	}
	if !meaningfulVariation(x) {
		return nil, nil
	}
	acf := Autocorr(x)
	var peaks []Period
	for lag := 2; lag <= maxLag; lag++ {
		s := scoreWithACF(acf, lag)
		if s < 0.1 {
			continue
		}
		// Local maximum in the ACF.
		if acf[lag] >= acf[lag-1] && (lag+1 >= len(acf) || acf[lag] >= acf[lag+1]) {
			peaks = append(peaks, Period{Lag: lag, Score: s})
		}
	}
	// Prune harmonics: drop a peak whose lag is a multiple of a
	// shorter, at-least-as-strong peak unless it is meaningfully
	// stronger (a weekly cycle on top of a daily one survives only if
	// it adds structure).
	var out []Period
	for _, p := range peaks {
		redundant := false
		for _, q := range peaks {
			if q.Lag >= p.Lag || p.Lag%q.Lag != 0 {
				continue
			}
			if p.Score <= q.Score+0.02 {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, p)
		}
	}
	// Order by descending score, ties to the shorter period.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			if out[j].Score > out[j-1].Score ||
				(out[j].Score == out[j-1].Score && out[j].Lag < out[j-1].Lag) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
