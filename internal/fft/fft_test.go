package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"carbonshift/internal/rng"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randComplex(n int, seed uint64) []complex128 {
	src := rng.New(seed)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(src.Uniform(-1, 1), src.Uniform(-1, 1))
	}
	return out
}

func TestFFTMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 60, 100, 128} {
		x := randComplex(n, uint64(n))
		got := FFT(x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-8 {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if got := FFT(nil); got != nil {
		t.Fatalf("FFT(nil) = %v", got)
	}
	if got := IFFT(nil); got != nil {
		t.Fatalf("IFFT(nil) = %v", got)
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := randComplex(12, 3)
	orig := make([]complex128, len(x))
	copy(orig, x)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT mutated its input")
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 21, 64, 100} {
		x := randComplex(n, uint64(100+n))
		back := IFFT(FFT(x))
		if e := maxErr(x, back); e > 1e-9 {
			t.Errorf("n=%d: round-trip error %v", n, e)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%97 + 1
		x := randComplex(n, seed)
		return maxErr(x, IFFT(FFT(x))) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestParseval checks energy conservation: sum |x|² == (1/n) sum |X|².
func TestParseval(t *testing.T) {
	x := randComplex(50, 7)
	X := FFT(x)
	var ex, eX float64
	for i := range x {
		ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		eX += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
	}
	if math.Abs(ex-eX/float64(len(x))) > 1e-8 {
		t.Fatalf("Parseval violated: %v vs %v", ex, eX/float64(len(x)))
	}
}

func TestPeriodogramPeak(t *testing.T) {
	// Pure sinusoid with 8 cycles in 128 samples: the periodogram must
	// peak at bin 8.
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = 5 + math.Sin(2*math.Pi*8*float64(i)/float64(n))
	}
	p := Periodogram(x)
	best := 0
	for k := range p {
		if p[k] > p[best] {
			best = k
		}
	}
	if best != 8 {
		t.Fatalf("periodogram peak at bin %d, want 8", best)
	}
}

func TestPeriodogramEmpty(t *testing.T) {
	if got := Periodogram(nil); got != nil {
		t.Fatalf("Periodogram(nil) = %v", got)
	}
}

func TestDetrendRemovesLine(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = 3 + 0.5*float64(i)
	}
	d := Detrend(x)
	for i, v := range d {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("detrended[%d] = %v, want ~0", i, v)
		}
	}
	if got := Detrend([]float64{42}); got[0] != 0 {
		t.Fatalf("single-sample detrend = %v", got)
	}
}

func TestAutocorrOfPeriodicSignal(t *testing.T) {
	// 20 exact repetitions of a 24-sample pattern.
	pattern := make([]float64, 24)
	for i := range pattern {
		pattern[i] = math.Sin(2 * math.Pi * float64(i) / 24)
	}
	x := make([]float64, 24*20)
	for i := range x {
		x[i] = 100 + 10*pattern[i%24]
	}
	acf := Autocorr(x)
	if math.Abs(acf[0]-1) > 1e-9 {
		t.Fatalf("acf[0] = %v", acf[0])
	}
	if acf[24] < 0.9 {
		t.Fatalf("acf[24] = %v, want near 1 for exact periodicity", acf[24])
	}
	if acf[12] > -0.5 {
		t.Fatalf("acf[12] = %v, want strongly negative at half period", acf[12])
	}
}

func TestAutocorrConstantSeries(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 7
	}
	acf := Autocorr(x)
	for lag, v := range acf {
		if v != 0 {
			t.Fatalf("constant series acf[%d] = %v, want 0", lag, v)
		}
	}
}

func TestScoreAtPerfectPeriod(t *testing.T) {
	x := make([]float64, 24*30)
	for i := range x {
		x[i] = 200 + 50*math.Sin(2*math.Pi*float64(i)/24)
	}
	if s := ScoreAt(x, 24); s < 0.95 {
		t.Fatalf("score at true period = %v, want ~1", s)
	}
	if s := ScoreAt(x, 17); s > 0.5 {
		t.Fatalf("score at wrong period = %v, want low", s)
	}
}

func TestScoreAtFlatSeriesIsZero(t *testing.T) {
	// A high-mean series with tiny noise (a fossil-dominated grid)
	// must score 0 even if the noise is weakly correlated.
	src := rng.New(5)
	x := make([]float64, 24*30)
	for i := range x {
		x[i] = 700 + src.Norm(0, 1)
	}
	if s := ScoreAt(x, 24); s != 0 {
		t.Fatalf("flat series score = %v, want 0", s)
	}
}

func TestScoreAtBounds(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if ScoreAt(x, 0) != 0 || ScoreAt(x, -1) != 0 || ScoreAt(x, 4) != 0 {
		t.Fatal("out-of-range lags must score 0")
	}
}

func TestDetectPeriodsFindsDailyAndWeekly(t *testing.T) {
	// Daily cycle with a weekend modulation -> 24h and 168h periods.
	x := make([]float64, 24*7*20)
	for i := range x {
		day := (i / 24) % 7
		weekend := 0.0
		if day >= 5 {
			weekend = 1.0
		}
		x[i] = 300 + 60*math.Sin(2*math.Pi*float64(i)/24) + 40*weekend
	}
	periods, err := DetectPeriods(x, 200)
	if err != nil {
		t.Fatal(err)
	}
	has := func(lag int) bool {
		for _, p := range periods {
			if p.Lag == lag && p.Score > 0.5 {
				return true
			}
		}
		return false
	}
	if !has(24) {
		t.Errorf("24h period not detected: %v", periods)
	}
	if !has(168) {
		t.Errorf("168h period not detected: %v", periods)
	}
}

func TestDetectPeriodsPrunesHarmonics(t *testing.T) {
	// Pure daily signal: 48h, 72h, ... are redundant harmonics of 24h.
	x := make([]float64, 24*40)
	for i := range x {
		x[i] = 100 + 20*math.Sin(2*math.Pi*float64(i)/24)
	}
	periods, err := DetectPeriods(x, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range periods {
		if p.Lag != 24 && p.Lag%24 == 0 {
			t.Errorf("harmonic %d not pruned: %v", p.Lag, periods)
		}
	}
}

func TestDetectPeriodsFlatSeries(t *testing.T) {
	x := make([]float64, 500)
	for i := range x {
		x[i] = 650
	}
	periods, err := DetectPeriods(x, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(periods) != 0 {
		t.Fatalf("flat series produced periods %v", periods)
	}
}

func TestDetectPeriodsErrors(t *testing.T) {
	if _, err := DetectPeriods([]float64{1, 2, 3}, 1); err == nil {
		t.Error("maxLag < 2 accepted")
	}
	if _, err := DetectPeriods([]float64{1, 2, 3}, 3); err == nil {
		t.Error("maxLag >= len accepted")
	}
}

func BenchmarkFFTPow2(b *testing.B) {
	x := randComplex(8192, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein(b *testing.B) {
	x := randComplex(8760, 1) // one year of hourly data
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkAutocorrYear(b *testing.B) {
	src := rng.New(1)
	x := make([]float64, 8760)
	for i := range x {
		x[i] = 300 + 50*math.Sin(2*math.Pi*float64(i)/24) + src.Norm(0, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Autocorr(x)
	}
}
