package gateway

// The gateway's /metrics is a fleet-wide merged exposition: every
// partition's schedd families folded into one series set, plus the
// gateway's own gateway_* and http_* families. Counters and most
// gauges sum across partitions; the families where a sum is
// meaningless (the fleet clock, replication lag, ratios) take the max
// instead, which is the conservative alerting direction for all of
// them.

import (
	"bytes"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"carbonshift/internal/metrics"
	"carbonshift/internal/serve"
)

// gwMetrics holds the gateway's own instrumentation.
type gwMetrics struct {
	reg  *metrics.Registry
	http *serve.HTTPMetrics

	proxied       *metrics.Counter
	split         *metrics.Counter
	partial       *metrics.Counter
	statsPartial  *metrics.Counter
	topoConflicts *metrics.Counter
	partErrors    *metrics.CounterVec
	partitionUp   *metrics.GaugeVec
}

func (g *Gateway) initMetrics() {
	reg := metrics.NewRegistry()
	mx := &gwMetrics{
		reg:  reg,
		http: serve.NewHTTPMetrics(reg),
		proxied: reg.NewCounter("gateway_proxied_submits_total",
			"Submissions that landed in one partition and were proxied raw."),
		split: reg.NewCounter("gateway_split_submits_total",
			"Submissions split across two or more partitions."),
		partial: reg.NewCounter("gateway_partial_batches_total",
			"Split submissions answered 207 Multi-Status (mixed per-partition outcomes)."),
		statsPartial: reg.NewCounter("gateway_stats_partial_total",
			"Fleet-wide stats or metrics scatters that missed at least one partition."),
		topoConflicts: reg.NewCounter("gateway_topology_conflicts_total",
			"Region ownership claims that conflicted between partitions."),
		partErrors: reg.NewCounterVec("gateway_partition_errors_total",
			"Transport-level failures talking to a partition (all its endpoints down).",
			"partition"),
		partitionUp: reg.NewGaugeVec("gateway_partition_up",
			"1 when the partition's last call succeeded, 0 after a transport failure.",
			"partition"),
	}
	reg.NewGaugeFunc("gateway_partitions",
		"Number of schedd partitions configured behind this gateway.",
		func() float64 { return float64(len(g.parts)) })
	// Pre-create the per-partition series so a partition that has never
	// been reached still shows up (as up=0) instead of being absent.
	for i := range g.parts {
		mx.partitionUp.With(strconv.Itoa(i)).Set(0)
	}
	g.mx = mx
}

// Metrics exposes the gateway's own registry (the gateway_* and http_*
// families, without the partition merge) for tests and embedding.
func (g *Gateway) Metrics() *metrics.Registry {
	return g.mx.reg
}

// handleMetrics scatter-gathers every partition's /metrics and writes
// one merged exposition, gateway families first. A partition that
// cannot be scraped is skipped (and its gateway_partition_up goes 0);
// the merge is served from whatever answered.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	bodies := make([][]byte, len(g.parts))
	var wg sync.WaitGroup
	for _, p := range g.parts {
		wg.Add(1)
		go func(p *partition) {
			defer wg.Done()
			var got []byte
			err := p.eps.Do(r.Context(), g.hc, http.MethodGet, "/metrics", "", nil, "gateway",
				func(statusCode int, status string, body []byte) error {
					if statusCode == http.StatusOK {
						got = append([]byte(nil), body...)
					}
					return nil
				})
			if err != nil {
				g.partitionError(p, err)
				return
			}
			bodies[p.index] = got
		}(p)
	}
	wg.Wait()

	m := newExpositionMerger()
	var own bytes.Buffer
	g.mx.reg.WriteTo(&own)
	m.absorb(own.Bytes())
	missed := 0
	for _, b := range bodies {
		if b == nil {
			missed++
			continue
		}
		m.absorb(b)
	}
	if missed > 0 {
		g.mx.statsPartial.Inc()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.writeTo(w)
}

// maxFamilies are the families where summing across partitions is
// wrong: clocks, lag, generations, flags, and ratios take the max.
var maxFamilies = map[string]bool{
	"schedd_fleet_hour":            true,
	"schedd_fleet_horizon_hours":   true,
	"schedd_replication_lag_hours": true,
	"schedd_wal_generation":        true,
	"schedd_recovered":             true,
	"schedd_utilization_ratio":     true,
	"schedd_miss_rate":             true,
}

// expositionMerger folds several Prometheus text expositions into one:
// comment lines (# HELP / # TYPE) pass through once in first-seen
// order, identical series aggregate (sum by default, max for
// maxFamilies), and series keep their first-seen position.
type expositionMerger struct {
	order  []mergeEntry
	series map[string]int  // series key -> index into order
	seen   map[string]bool // comment lines already emitted
}

type mergeEntry struct {
	comment string // non-empty for pass-through comment lines
	key     string // series key (name + label set) otherwise
	value   float64
	max     bool
}

func newExpositionMerger() *expositionMerger {
	return &expositionMerger{series: make(map[string]int), seen: make(map[string]bool)}
}

func (m *expositionMerger) absorb(text []byte) {
	for _, raw := range strings.Split(string(text), "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !m.seen[line] {
				m.seen[line] = true
				m.order = append(m.order, mergeEntry{comment: line})
			}
			continue
		}
		key, val, ok := splitSeries(line)
		if !ok {
			continue
		}
		if i, dup := m.series[key]; dup {
			if m.order[i].max {
				if val > m.order[i].value {
					m.order[i].value = val
				}
			} else {
				m.order[i].value += val
			}
			continue
		}
		base := key
		if j := strings.IndexByte(base, '{'); j >= 0 {
			base = base[:j]
		}
		m.series[key] = len(m.order)
		m.order = append(m.order, mergeEntry{key: key, value: val, max: maxFamilies[base]})
	}
}

// splitSeries splits one sample line into its series key (metric name
// plus label set) and value. The value never contains '}', so the last
// closing brace — when one exists before the first space — ends the key.
func splitSeries(line string) (key string, val float64, ok bool) {
	cut := -1
	if open := strings.IndexByte(line, '{'); open >= 0 {
		if close := strings.LastIndexByte(line, '}'); close > open {
			cut = close + 1
		}
	}
	if cut < 0 {
		cut = strings.IndexByte(line, ' ')
		if cut < 0 {
			return "", 0, false
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[cut:]), 64)
	if err != nil {
		return "", 0, false
	}
	return line[:cut], v, true
}

func (m *expositionMerger) writeTo(w interface{ Write([]byte) (int, error) }) {
	var b bytes.Buffer
	for _, e := range m.order {
		if e.comment != "" {
			b.WriteString(e.comment)
			b.WriteByte('\n')
			continue
		}
		b.WriteString(e.key)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(e.value, 'g', -1, 64))
		b.WriteByte('\n')
	}
	w.Write(b.Bytes())
}
