package gateway

// Service-level tests for the routing gateway: the partial-failure
// contract (no acked job lost or double-counted when a split batch
// half-fails), the backpressure taxonomy passing through unmodified,
// the fleet-wide stats and metrics merges, and id-range job routing.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carbonshift/internal/httpx"
	"carbonshift/internal/metrics"
	"carbonshift/internal/sched"
	"carbonshift/internal/schedd"
	"carbonshift/internal/tenant"
)

// twoPartitions builds a two-region world split one region per
// partition, with per-partition config edits, and a gateway in front.
func twoPartitions(t *testing.T, edit func(i int, cfg *schedd.Config)) (*Gateway, *httptest.Server, []*schedd.Server, []*httptest.Server, *hourClock) {
	t.Helper()
	const horizon = 24 * 5
	set, cl, origins := mkWorld(t, horizon, 2, 4)
	groups := groupSplit(origins, 2)
	clock := &hourClock{}
	srvs := make([]*schedd.Server, 2)
	tss := make([]*httptest.Server, 2)
	var urls [][]string
	for i := 0; i < 2; i++ {
		sub, subcl := subWorld(t, set, cl, groups[i])
		cfg := schedd.Config{
			Policy:      sched.FIFO{},
			Horizon:     horizon,
			Partitions:  2,
			PartitionID: i,
			IDBase:      i * 1_000_000,
		}
		if edit != nil {
			edit(i, &cfg)
		}
		srv, err := schedd.New(sub, subcl, cfg, schedd.WithClock(clock.now))
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		tss[i] = httptest.NewServer(srv.Handler())
		t.Cleanup(tss[i].Close)
		urls = append(urls, []string{tss[i].URL})
	}
	gw, gwts := startGateway(t, urls)
	return gw, gwts, srvs, tss, clock
}

func job(origin string) schedd.JobRequest {
	return schedd.JobRequest{Origin: origin, LengthHours: 1, SlackHours: 24}
}

// TestPartialFailureOutcomes is the satellite-3 regression: a mixed
// batch whose sub-batches succeed on one partition and fail on another
// must answer 207 with per-job outcomes — the acked ids reported
// exactly once, the rejections with their partition, status, and
// Retry-After — on both wire protocols.
func TestPartialFailureOutcomes(t *testing.T) {
	// Partition 1 can hold one outstanding job; partition 0 is roomy.
	_, gwts, _, _, _ := twoPartitions(t, func(i int, cfg *schedd.Config) {
		if i == 1 {
			cfg.MaxQueue = 1
		}
	})
	client, err := schedd.NewClient(gwts.URL, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, binary := range []bool{false, true} {
		proto := "json"
		submit := client.Submit
		if binary {
			proto, submit = "binary", client.SubmitBatch
		}
		t.Run(proto, func(t *testing.T) {
			// R00 routes to partition 0 (accepts), the two R01 jobs to
			// partition 1 (queue bound 1: the 2-job sub-batch is refused).
			_, err := submit(ctx, job("R00"), job("R01"), job("R01"))
			var pe *schedd.PartialError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *schedd.PartialError", err)
			}
			if pe.Resp.Accepted != 1 || len(pe.Resp.Outcomes) != 3 {
				t.Fatalf("accepted %d of %d outcomes, want 1 of 3", pe.Resp.Accepted, len(pe.Resp.Outcomes))
			}
			acked := pe.AckedIDs()
			if len(acked) != 1 {
				t.Fatalf("acked ids %v, want exactly one", acked)
			}
			o0, o1, o2 := pe.Resp.Outcomes[0], pe.Resp.Outcomes[1], pe.Resp.Outcomes[2]
			if o0.Status != http.StatusOK || o0.Partition != 0 || o0.ID != acked[0] {
				t.Fatalf("outcome 0 = %+v, want admitted on partition 0", o0)
			}
			for i, o := range []schedd.JobOutcome{o1, o2} {
				if o.Status != http.StatusServiceUnavailable || o.Partition != 1 {
					t.Fatalf("outcome %d = %+v, want 503 from partition 1", i+1, o)
				}
				if !strings.Contains(o.Error, "queue full") {
					t.Fatalf("outcome %d error %q, want queue full", i+1, o.Error)
				}
				if o.RetryAfter != 1 {
					t.Fatalf("outcome %d retry_after = %d, want 1", i+1, o.RetryAfter)
				}
			}
			if pe.MaxRetryAfter() != 1 {
				t.Fatalf("MaxRetryAfter = %d, want 1", pe.MaxRetryAfter())
			}
			// The admitted job is real: it is queryable through the
			// gateway, so a retry of the failed jobs cannot double it.
			got, err := client.Job(ctx, acked[0])
			if err != nil {
				t.Fatal(err)
			}
			if got.ID != acked[0] || got.Origin != "R00" {
				t.Fatalf("job lookup = %+v, want id %d origin R00", got, acked[0])
			}
		})
	}

	// On the wire the partial outcome is a 207 Multi-Status with a JSON
	// body, on both routes.
	resp, err := http.Post(gwts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"jobs":[{"origin":"R00","length_hours":1,"slack_hours":24},{"origin":"R01","length_hours":1,"slack_hours":24},{"origin":"R01","length_hours":1,"slack_hours":24}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("raw split status %d, want 207", resp.StatusCode)
	}
	var ms schedd.MultiStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if ms.Accepted != 1 || len(ms.Outcomes) != 3 {
		t.Fatalf("raw 207 body = %+v, want 1 accepted of 3 outcomes", ms)
	}
}

// TestUniformSplitFailureCollapses: when every sub-batch fails with the
// same status, the gateway answers that status verbatim (not a 207),
// with the largest Retry-After — a fully-rejected batch looks exactly
// like a single-partition rejection.
func TestUniformSplitFailureCollapses(t *testing.T) {
	_, gwts, _, _, _ := twoPartitions(t, func(i int, cfg *schedd.Config) {
		cfg.MaxQueue = 1
	})
	client, err := schedd.NewClient(gwts.URL, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, err = client.Submit(ctx, job("R00"), job("R00"), job("R01"), job("R01"))
	var pe *schedd.PartialError
	if errors.As(err, &pe) {
		t.Fatalf("uniform failure surfaced as partial: %v", err)
	}
	wantStatus(t, "uniform split failure", err, http.StatusServiceUnavailable, "queue full")
	if got := httpx.RetryAfterOf(err); got != 1 {
		t.Fatalf("Retry-After = %d, want 1", got)
	}
}

// TestPartialFailurePartitionDown: a partition dying mid-split yields
// synthetic 503 outcomes for its jobs — retryable backpressure — while
// the live partition's acks still count exactly once.
func TestPartialFailurePartitionDown(t *testing.T) {
	gw, gwts, _, tss, _ := twoPartitions(t, nil)
	client, err := schedd.NewClient(gwts.URL, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Learn the topology while both partitions are up, then kill one.
	if _, err := client.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	tss[1].Close()

	_, err = client.Submit(ctx, job("R00"), job("R01"))
	var pe *schedd.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *schedd.PartialError", err)
	}
	if pe.Resp.Accepted != 1 {
		t.Fatalf("accepted %d, want 1", pe.Resp.Accepted)
	}
	down := pe.Resp.Outcomes[1]
	if down.Status != http.StatusServiceUnavailable || down.Partition != 1 ||
		!strings.Contains(down.Error, "unreachable") || down.RetryAfter != 1 {
		t.Fatalf("down outcome = %+v, want synthetic 503 unreachable with retry_after 1", down)
	}

	// The failure is visible in the gateway's own metrics.
	var buf strings.Builder
	gw.Metrics().WriteTo(&buf)
	sc, err := metrics.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sc.Value(`gateway_partition_up{partition="1"}`); v != 0 {
		t.Fatalf(`gateway_partition_up{partition="1"} = %v, want 0`, v)
	}
	if v, _ := sc.Value(`gateway_partition_up{partition="0"}`); v != 1 {
		t.Fatalf(`gateway_partition_up{partition="0"} = %v, want 1`, v)
	}
	if sc.Sum("gateway_partition_errors_total") == 0 {
		t.Fatal("gateway_partition_errors_total not incremented")
	}
}

// TestBackpressureTaxonomyThroughGateway is the satellite-4 contract:
// 429 quota, 429 rate, 503 capacity, and 413 oversize pass through the
// gateway unmodified — status, JSON error message, and Retry-After —
// on both wire protocols, through both the single-endpoint and the
// failover client.
func TestBackpressureTaxonomyThroughGateway(t *testing.T) {
	tcfg, err := tenant.NewConfig([]tenant.Spec{
		{Name: "q", QuotaJobsPerHour: 1},
		{Name: "r", RatePerSec: 0.001, Burst: 1},
		{Name: "*"},
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 24 * 5
	set, cl, _ := mkWorld(t, horizon, 1, 1)
	clock := &hourClock{}
	wc := &wallClock{t: t0}
	srv, err := schedd.New(set, cl, schedd.Config{
		Policy: sched.FIFO{}, Horizon: horizon, MaxQueue: 4, Tenants: tcfg,
		Partitions: 1, PartitionID: 0,
	}, schedd.WithClock(clock.now), schedd.WithGateClock(wc.now))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	_, gwts := startGateway(t, [][]string{{ts.URL}})

	single, err := schedd.NewClient(gwts.URL, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	failover, err := schedd.NewFailoverClient([]string{gwts.URL}, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tj := func(tenantName, origin string) schedd.JobRequest {
		return schedd.JobRequest{Origin: origin, Tenant: tenantName, LengthHours: 1, SlackHours: 48}
	}

	// Consume r's one rate token and q's one quota slot. The queue bound
	// check runs before the tenant gate, so the queue is filled only
	// after the rate and quota phase — each rejection is then hit
	// deterministically by every combination.
	if _, err := single.Submit(ctx, tj("r", "R00")); err != nil {
		t.Fatal(err)
	}
	if _, err := single.Submit(ctx, tj("q", "R00")); err != nil {
		t.Fatal(err)
	}

	clients := []struct {
		name string
		c    *schedd.Client
	}{{"single", single}, {"failover", failover}}
	forEachCombo := func(phase string, check func(t *testing.T, submit func(context.Context, ...schedd.JobRequest) (schedd.SubmitResponse, error))) {
		for _, cl := range clients {
			for _, binary := range []bool{false, true} {
				proto := "json"
				submit := cl.c.Submit
				if binary {
					proto, submit = "binary", cl.c.SubmitBatch
				}
				t.Run(phase+"/"+cl.name+"/"+proto, func(t *testing.T) { check(t, submit) })
			}
		}
	}

	forEachCombo("gate", func(t *testing.T, submit func(context.Context, ...schedd.JobRequest) (schedd.SubmitResponse, error)) {
		_, err := submit(ctx, tj("r", "R00"))
		wantStatus(t, "rate", err, http.StatusTooManyRequests, "rate limited")
		if got := httpx.RetryAfterOf(err); got != 1000 {
			t.Fatalf("rate Retry-After = %d, want 1000", got)
		}
		_, err = submit(ctx, tj("q", "R00"))
		wantStatus(t, "quota", err, http.StatusTooManyRequests, "quota exceeded")
		if got := httpx.RetryAfterOf(err); got != 3600 {
			t.Fatalf("quota Retry-After = %d, want 3600", got)
		}
	})

	// The hints also ride the standard header for generic HTTP clients,
	// re-stamped by the gateway from the partition's in-body hint.
	resp, err := http.Post(gwts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"origin":"R00","tenant":"q","length_hours":1,"slack_hours":48}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "3600" {
		t.Fatalf("raw quota rejection through gateway: status %d, Retry-After %q, want 429 / 3600",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Now fill the queue to its bound of 4 (two jobs are already
	// outstanding) and pin capacity and oversize.
	if _, err := single.Submit(ctx, tj("cap", "R00"), tj("cap", "R00")); err != nil {
		t.Fatal(err)
	}
	forEachCombo("capacity", func(t *testing.T, submit func(context.Context, ...schedd.JobRequest) (schedd.SubmitResponse, error)) {
		_, err := submit(ctx, tj("cap", "R00"))
		wantStatus(t, "capacity", err, http.StatusServiceUnavailable, "queue full")
		if got := httpx.RetryAfterOf(err); got != 1 {
			t.Fatalf("capacity Retry-After = %d, want 1", got)
		}
		_, err = submit(ctx, schedd.JobRequest{Origin: strings.Repeat("x", httpx.MaxBody), LengthHours: 1})
		wantStatus(t, "oversize", err, http.StatusRequestEntityTooLarge, "exceeds")
		if got := httpx.RetryAfterOf(err); got != 0 {
			t.Fatalf("413 Retry-After = %d, want none", got)
		}
	})
}

// TestFleetStatsMerge: GET /v1/stats on the gateway is the fleet-wide
// view — counters summed, clusters concatenated, tenants merged — plus
// the coverage block; losing a partition degrades it to a partial view
// rather than an error.
func TestFleetStatsMerge(t *testing.T) {
	_, gwts, _, tss, _ := twoPartitions(t, nil)
	client, err := schedd.NewClient(gwts.URL, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := client.Submit(ctx, job("R00"), job("R00"), job("R00")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(ctx, job("R01"), job("R01")); err != nil {
		t.Fatal(err)
	}

	fetch := func() StatsResponse {
		t.Helper()
		resp, err := http.Get(gwts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/stats status %d", resp.StatusCode)
		}
		var out StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	st := fetch()
	if st.Submitted != 5 {
		t.Fatalf("merged submitted = %d, want 5", st.Submitted)
	}
	if len(st.Clusters) != 2 {
		t.Fatalf("merged clusters = %+v, want both partitions'", st.Clusters)
	}
	if st.Gateway.Partitions != 2 || len(st.Gateway.Reached) != 2 || len(st.Gateway.Missing) != 0 {
		t.Fatalf("coverage block = %+v, want full coverage of 2", st.Gateway)
	}
	if st.Policy != "fifo" {
		t.Fatalf("merged policy = %q, want fifo", st.Policy)
	}

	// One partition down: still 200, explicitly partial.
	tss[1].Close()
	st = fetch()
	if st.Submitted != 3 {
		t.Fatalf("partial submitted = %d, want partition 0's 3", st.Submitted)
	}
	if len(st.Gateway.Missing) != 1 || st.Gateway.Missing[0] != 1 {
		t.Fatalf("coverage block = %+v, want missing=[1]", st.Gateway)
	}

	// Both down: now it is an error, shaped as retryable backpressure.
	tss[0].Close()
	resp, err := http.Get(gwts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("all-down stats: status %d Retry-After %q, want 503 / 1", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestFleetMetricsMerge: GET /metrics on the gateway is one exposition
// — gateway_* families plus every partition's families folded together
// (counters summed, clock-like gauges maxed), each family declared
// exactly once.
func TestFleetMetricsMerge(t *testing.T) {
	_, gwts, _, _, clock := twoPartitions(t, nil)
	client, err := schedd.NewClient(gwts.URL, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := client.Submit(ctx, job("R00"), job("R00"), job("R00")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(ctx, job("R01"), job("R01")); err != nil {
		t.Fatal(err)
	}
	clock.hour.Store(3)
	if _, err := client.Stats(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(gwts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	text := string(body)
	sc, err := metrics.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}
	if v, ok := sc.Value("schedd_jobs_submitted_total"); !ok || v != 5 {
		t.Fatalf("summed schedd_jobs_submitted_total = %v, want 5", v)
	}
	if v, ok := sc.Value("schedd_fleet_hour"); !ok || v != 3 {
		t.Fatalf("maxed schedd_fleet_hour = %v, want 3", v)
	}
	if v, ok := sc.Value("gateway_partitions"); !ok || v != 2 {
		t.Fatalf("gateway_partitions = %v, want 2", v)
	}
	if sc.Sum("gateway_proxied_submits_total") != 2 {
		t.Fatalf("gateway_proxied_submits_total = %v, want 2", sc.Sum("gateway_proxied_submits_total"))
	}
	for _, family := range []string{"schedd_jobs_submitted_total", "http_requests_total", "gateway_partition_up"} {
		if n := strings.Count(text, "# TYPE "+family+" "); n != 1 {
			t.Fatalf("family %s declared %d times in the merge, want once", family, n)
		}
	}
}

// TestJobLookupRouting: GET /v1/jobs/{id} routes by the partitions'
// disjoint id ranges (learned from their stats echoes), falls back to
// fan-out, and answers 404 only after every partition has denied the id.
func TestJobLookupRouting(t *testing.T) {
	_, gwts, _, _, _ := twoPartitions(t, nil)
	client, err := schedd.NewClient(gwts.URL, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := client.Submit(ctx, job("R00"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Submit(ctx, job("R01"))
	if err != nil {
		t.Fatal(err)
	}
	if a.IDs[0] == b.IDs[0] {
		t.Fatalf("partitions assigned the same id %d: ranges not disjoint", a.IDs[0])
	}
	for _, want := range []struct {
		id     int
		origin string
	}{{a.IDs[0], "R00"}, {b.IDs[0], "R01"}} {
		got, err := client.Job(ctx, want.id)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.id || got.Origin != want.origin {
			t.Fatalf("job %d = %+v, want origin %s", want.id, got, want.origin)
		}
	}
	_, err = client.Job(ctx, 424242)
	wantStatus(t, "unknown id", err, http.StatusNotFound, "unknown job")
}

// TestSubmitAllPartitionsDown: with no partition reachable the gateway
// answers 503 with a Retry-After, never a hang or a 5xx surprise.
func TestSubmitAllPartitionsDown(t *testing.T) {
	_, gwts := startGateway(t, [][]string{{"http://127.0.0.1:9"}, {"http://127.0.0.1:9"}})
	client, err := schedd.NewClient(gwts.URL, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(context.Background(), job("R00"))
	wantStatus(t, "all down", err, http.StatusServiceUnavailable, "no partition reachable")
	if got := httpx.RetryAfterOf(err); got != 1 {
		t.Fatalf("Retry-After = %d, want 1", got)
	}
}

// TestMergerUnit pins the exposition merger's aggregation rules
// directly: sum by default, max for the clock-like families, comments
// deduplicated, first-seen order preserved.
func TestMergerUnit(t *testing.T) {
	m := newExpositionMerger()
	m.absorb([]byte(`# HELP schedd_jobs_submitted_total Jobs.
# TYPE schedd_jobs_submitted_total counter
schedd_jobs_submitted_total 3
schedd_fleet_hour 7
schedd_backpressure_total{reason="queue_full"} 2
`))
	m.absorb([]byte(`# HELP schedd_jobs_submitted_total Jobs.
# TYPE schedd_jobs_submitted_total counter
schedd_jobs_submitted_total 4
schedd_fleet_hour 5
schedd_backpressure_total{reason="queue_full"} 1
schedd_backpressure_total{reason="job_limit"} 9
`))
	var b strings.Builder
	m.writeTo(&b)
	out := b.String()
	for _, want := range []string{
		"schedd_jobs_submitted_total 7\n",
		"schedd_fleet_hour 7\n",
		`schedd_backpressure_total{reason="queue_full"} 3` + "\n",
		`schedd_backpressure_total{reason="job_limit"} 9` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE schedd_jobs_submitted_total"); n != 1 {
		t.Fatalf("TYPE line appears %d times, want 1", n)
	}
}
