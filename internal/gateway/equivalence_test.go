package gateway

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"carbonshift/internal/sched"
	"carbonshift/internal/schedd"
	"carbonshift/internal/trace"
)

type placeRec struct {
	hour, job int
	region    string
}

// TestPartitionedEquivalence is the tentpole correctness proof: a
// partitioned topology — N independent schedd deployments, each owning
// one region group, behind the routing gateway — must schedule exactly
// like a single sharded fleet over the full world with those region
// groups configured. For every policy and for N in {1, 2, 4}:
//
//   - the union of the partitions' placements equals the reference
//     fleet's placements, group by group, record for record;
//   - the union of the partitions' job outcomes equals the reference
//     fleet's outcomes;
//   - each partition's journal fully captures its state: restarting the
//     partition from its data directory replays placement-for-placement
//     and snapshots to the identical result.
//
// The scheduling half (grouped fleet ≡ independent per-group fleets) is
// proven in internal/sched; this test proves the service half — that
// HTTP admission through the gateway's routing and splitting preserves
// it end to end.
func TestPartitionedEquivalence(t *testing.T) {
	const horizon = 24 * 10
	set, cl, origins := mkWorld(t, horizon, 8, 12)
	jobs, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs:              280,
		ArrivalSpan:       24 * 8,
		SlackHours:        24,
		InterruptibleFrac: 0.6,
		MigratableFrac:    0.5,
		Origins:           origins,
		Seed:              17,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 30 {
			jobs[i].Length = 30
		}
	}

	policies := []sched.Policy{
		sched.FIFO{},
		sched.CarbonGate{Percentile: 40, Window: 48},
		sched.ForecastGate{Percentile: 40},
		sched.GreenestFirst{},
		sched.SpatioTemporal{Percentile: 40, Window: 48},
	}
	for _, policy := range policies {
		for _, n := range []int{1, 2, 4} {
			// The binary batch protocol rides the sweep on the hardest
			// policy: the codec is the only difference between the
			// variants, so one policy pins it without tripling the run.
			protos := []bool{false}
			if _, ok := policy.(sched.SpatioTemporal); ok && n > 1 {
				protos = []bool{false, true}
			}
			for _, binary := range protos {
				proto := "json"
				if binary {
					proto = "binary"
				}
				t.Run(fmt.Sprintf("%s/partitions=%d/%s", policy.Name(), n, proto), func(t *testing.T) {
					testPartitionedEquivalence(t, set, cl, origins, jobs, policy, horizon, n, binary)
				})
			}
		}
	}
}

func testPartitionedEquivalence(t *testing.T, set *trace.Set, cl []sched.Cluster, origins []string,
	jobs []sched.Job, policy sched.Policy, horizon, n int, binary bool) {
	groups := groupSplit(origins, n)
	groupOf := map[string]int{}
	for gi, g := range groups {
		for _, r := range g {
			groupOf[r] = gi
		}
	}

	// Reference: one sharded fleet over the full world with the region
	// groups configured, its placements recorded per group.
	refLogs := make([][]placeRec, n)
	ref, err := sched.NewShardedFleet(set, cl, policy, horizon, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetRegionGroups(groups); err != nil {
		t.Fatal(err)
	}
	ref.OnPlace = func(hour, jobID int, region string) {
		gi := groupOf[region]
		refLogs[gi] = append(refLogs[gi], placeRec{hour, jobID, region})
	}
	if err := ref.Submit(jobs...); err != nil {
		t.Fatal(err)
	}
	for !ref.Done() {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	refOutcomes := map[int]sched.Outcome{}
	for _, o := range ref.Snapshot().Outcomes {
		refOutcomes[o.ID] = o
	}

	// The partitioned topology: one durable schedd per region group on a
	// shared hand-cranked clock, the gateway in front.
	clock := &hourClock{}
	liveLogs := make([][]placeRec, n)
	srvs := make([]*schedd.Server, n)
	cfgs := make([]schedd.Config, n)
	subsets := make([]*trace.Set, n)
	subcls := make([][]sched.Cluster, n)
	var urls [][]string
	for i := 0; i < n; i++ {
		sub, subcl := subWorld(t, set, cl, groups[i])
		subsets[i], subcls[i] = sub, subcl
		cfgs[i] = schedd.Config{
			Policy:      policy,
			Horizon:     horizon,
			Shards:      2,
			Partitions:  n,
			PartitionID: i,
			IDBase:      i * 1_000_000,
			DataDir:     filepath.Join(t.TempDir(), fmt.Sprintf("p%d", i)),
		}
		i := i
		srv, err := schedd.New(sub, subcl, cfgs[i],
			schedd.WithClock(clock.now),
			schedd.WithRecorder(func(hour, jobID int, region string) {
				liveLogs[i] = append(liveLogs[i], placeRec{hour, jobID, region})
			}))
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, []string{ts.URL})
	}
	_, gwts := startGateway(t, urls)
	client, err := schedd.NewClient(gwts.URL, gwts.Client())
	if err != nil {
		t.Fatal(err)
	}
	submit := client.Submit
	if binary {
		submit = client.SubmitBatch
	}

	// Drive the replay: jobs are submitted through the gateway with
	// their original ids exactly when the clock reaches their arrival
	// hour — mixed batches exercise the split path, single-origin hours
	// the raw proxy.
	ctx := context.Background()
	next := 0
	for hour := 0; hour < horizon; hour++ {
		clock.hour.Store(int64(hour))
		var batch []schedd.JobRequest
		for next < len(jobs) && jobs[next].Arrival == hour {
			j := jobs[next]
			id := j.ID
			batch = append(batch, schedd.JobRequest{
				ID:            &id,
				Origin:        j.Origin,
				LengthHours:   j.Length,
				SlackHours:    j.Slack,
				Interruptible: j.Interruptible,
				Migratable:    j.Migratable,
			})
			next++
		}
		if len(batch) == 0 {
			continue
		}
		ack, err := submit(ctx, batch...)
		if err != nil {
			t.Fatal(err)
		}
		if ack.ArrivalHour != hour {
			t.Fatalf("arrival hour %d, want %d", ack.ArrivalHour, hour)
		}
		if len(ack.IDs) != len(batch) {
			t.Fatalf("acked %d ids for a %d-job batch", len(ack.IDs), len(batch))
		}
	}
	if next != len(jobs) {
		t.Fatalf("submitted %d/%d jobs", next, len(jobs))
	}
	// Crank to the end; the gateway's stats scatter drives every
	// partition through its remaining hours.
	clock.hour.Store(int64(horizon))
	fleetStats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Placements: each partition must have produced exactly its group's
	// slice of the reference log.
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(liveLogs[i], refLogs[i]) {
			t.Fatalf("partition %d placements differ from reference group %d: %d vs %d records",
				i, i, len(liveLogs[i]), len(refLogs[i]))
		}
	}

	// Outcomes: the union across partitions equals the reference fleet's.
	gotOutcomes := map[int]sched.Outcome{}
	liveResults := make([]sched.Result, n)
	for i, srv := range srvs {
		liveResults[i] = srv.Snapshot()
		for _, o := range liveResults[i].Outcomes {
			if _, dup := gotOutcomes[o.ID]; dup {
				t.Fatalf("job %d resolved by two partitions", o.ID)
			}
			gotOutcomes[o.ID] = o
		}
	}
	if !reflect.DeepEqual(gotOutcomes, refOutcomes) {
		t.Fatalf("outcome union differs: %d jobs vs reference %d", len(gotOutcomes), len(refOutcomes))
	}
	if fleetStats.Submitted != len(jobs) || fleetStats.Unresolved != 0 {
		t.Fatalf("fleet stats: submitted %d unresolved %d, want %d / 0",
			fleetStats.Submitted, fleetStats.Unresolved, len(jobs))
	}

	// Journals: restarting each partition from its data directory must
	// replay placement-for-placement and land on the identical result —
	// the per-partition journals together are a faithful record of the
	// partitioned run.
	for i, srv := range srvs {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		var replayed []placeRec
		rec, err := schedd.New(subsets[i], subcls[i], cfgs[i],
			schedd.WithClock(clock.now),
			schedd.WithRecorder(func(hour, jobID int, region string) {
				replayed = append(replayed, placeRec{hour, jobID, region})
			}))
		if err != nil {
			t.Fatalf("partition %d recovery: %v", i, err)
		}
		if !reflect.DeepEqual(replayed, liveLogs[i]) {
			t.Fatalf("partition %d journal replay differs: %d vs %d placements",
				i, len(replayed), len(liveLogs[i]))
		}
		if got := rec.Snapshot(); !reflect.DeepEqual(got, liveResults[i]) {
			t.Fatalf("partition %d recovered result differs from live result", i)
		}
		rec.Close()
	}
}
