package gateway

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carbonshift/internal/httpx"
	"carbonshift/internal/sched"
	"carbonshift/internal/trace"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// hourClock is a hand-cranked replay clock for schedd.WithClock.
type hourClock struct{ hour atomic.Int64 }

func (c *hourClock) now() time.Time {
	return t0.Add(time.Duration(c.hour.Load()) * time.Hour)
}

// wallClock is a settable token-bucket clock for schedd.WithGateClock.
type wallClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *wallClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// mkWorld builds an nRegions-region trace world with staggered diurnal
// cycles and distinct baselines (the same shape as the sched package's
// sharding tests), so spatial policies genuinely migrate between
// regions inside a partition.
func mkWorld(t testing.TB, hours, nRegions, slots int) (*trace.Set, []sched.Cluster, []string) {
	t.Helper()
	var traces []*trace.Trace
	var cl []sched.Cluster
	var origins []string
	for r := 0; r < nRegions; r++ {
		ci := make([]float64, hours)
		base := 50 + 90*float64(r)
		for h := 0; h < hours; h++ {
			ci[h] = base + 200*(1+math.Sin(2*math.Pi*float64(h+3*r)/24))
		}
		code := fmt.Sprintf("R%02d", r)
		traces = append(traces, trace.New(code, t0, ci))
		cl = append(cl, sched.Cluster{Region: code, Slots: slots})
		origins = append(origins, code)
	}
	set, err := trace.NewSet(traces)
	if err != nil {
		t.Fatal(err)
	}
	return set, cl, origins
}

// groupSplit slices the regions into n modulo round-robin groups — the
// same split the sched-level region-group equivalence test uses.
func groupSplit(origins []string, n int) [][]string {
	groups := make([][]string, n)
	for i, r := range origins {
		groups[i%n] = append(groups[i%n], r)
	}
	return groups
}

// subWorld restricts a world to one region group.
func subWorld(t testing.TB, set *trace.Set, cl []sched.Cluster, group []string) (*trace.Set, []sched.Cluster) {
	t.Helper()
	sub, err := set.Subset(group)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]bool{}
	for _, r := range group {
		in[r] = true
	}
	var subcl []sched.Cluster
	for _, c := range cl {
		if in[c.Region] {
			subcl = append(subcl, c)
		}
	}
	return sub, subcl
}

// startGateway builds a gateway over the given partition URL sets and
// serves it from an httptest server.
func startGateway(t testing.TB, partitions [][]string) (*Gateway, *httptest.Server) {
	t.Helper()
	gw, err := New(Config{Partitions: partitions})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts
}

// wantStatus requires err to carry the HTTP status code and message
// fragment — the same typed-client contract the schedd tests pin, now
// through the gateway.
func wantStatus(t *testing.T, label string, err error, code int, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: no error, want status %d", label, code)
	}
	if got := httpx.StatusCodeOf(err); got != code {
		t.Fatalf("%s: status %d (%v), want %d", label, got, err, code)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("%s: error %q does not mention %q", label, err, substr)
	}
}
