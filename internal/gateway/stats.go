package gateway

// GET /v1/stats on the gateway is the fleet-wide view: every
// partition's stats scattered concurrently and gathered into one
// schedd.StatsResponse-shaped merge, plus a gateway block saying which
// partitions the merge actually covers. The scatter doubles as a
// topology refresh — every echo is re-absorbed into the routing
// tables.

import (
	"errors"
	"net/http"
	"sort"
	"sync"

	"carbonshift/internal/httpx"
	"carbonshift/internal/schedd"
)

var errNoPartition = errors.New("gateway: no partition reachable")

// GatewayBlock annotates the merged stats with the scatter's coverage.
type GatewayBlock struct {
	Partitions int   `json:"partitions"`
	Reached    []int `json:"reached"`
	Missing    []int `json:"missing,omitempty"`
}

// StatsResponse is the gateway's GET /v1/stats payload: the merged
// fleet-wide view in the partitions' own shape, plus coverage.
type StatsResponse struct {
	schedd.StatsResponse
	Gateway GatewayBlock `json:"gateway"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := make([]*schedd.StatsResponse, len(g.parts))
	var wg sync.WaitGroup
	for _, p := range g.parts {
		wg.Add(1)
		go func(p *partition) {
			defer wg.Done()
			var st schedd.StatsResponse
			if err := p.eps.DoJSON(r.Context(), g.hc, http.MethodGet, "/v1/stats", nil, "gateway", &st); err != nil {
				g.partitionError(p, err)
				return
			}
			g.absorb(p, &st)
			stats[p.index] = &st
		}(p)
	}
	wg.Wait()

	out := StatsResponse{Gateway: GatewayBlock{Partitions: len(g.parts)}}
	for i, st := range stats {
		if st == nil {
			out.Gateway.Missing = append(out.Gateway.Missing, i)
			continue
		}
		out.Gateway.Reached = append(out.Gateway.Reached, i)
		mergeStats(&out.StatsResponse, st)
	}
	if len(out.Gateway.Reached) == 0 {
		g.writeUnreachable(w, errNoPartition)
		return
	}
	if len(out.Gateway.Missing) > 0 {
		g.mx.statsPartial.Inc()
	}
	finishStats(&out.StatsResponse)
	httpx.WriteJSON(w, http.StatusOK, out)
}

// mergeStats folds one partition's stats into the fleet view. Counters
// and capacities sum; the fleet clock takes the max (partitions step
// independently, the furthest-along hour bounds them all); identity
// fields (policy, horizon, seed, tenant config) come from the first
// reached partition — partitions of one fleet run the same policy.
func mergeStats(dst, src *schedd.StatsResponse) {
	if dst.Policy == "" {
		dst.Policy = src.Policy
		dst.Horizon = src.Horizon
		dst.Seed = src.Seed
	}
	if src.Hour > dst.Hour {
		dst.Hour = src.Hour
	}
	dst.Shards += src.Shards
	dst.Clusters = append(dst.Clusters, src.Clusters...)
	dst.Submitted += src.Submitted
	dst.Completed += src.Completed
	dst.Missed += src.Missed
	dst.Running += src.Running
	dst.QueueDepth += src.QueueDepth
	dst.Unresolved += src.Unresolved
	dst.TotalEmissionsG += src.TotalEmissionsG
	// Utilization is slot-weighted: accumulate slots×utilization here
	// and divide by total slots in finishStats.
	dst.Utilization += src.Utilization * float64(slotsOf(src))
	for _, t := range src.Tenants {
		mergeTenant(dst, t)
	}
	if dst.TenantConfig == nil {
		dst.TenantConfig = src.TenantConfig
	}
	if src.Replication != nil {
		if dst.Replication == nil || src.Replication.LagHours > dst.Replication.LagHours {
			rep := *src.Replication
			dst.Replication = &rep
		}
	}
}

func slotsOf(st *schedd.StatsResponse) int {
	n := 0
	for _, c := range st.Clusters {
		n += c.Slots
	}
	return n
}

// mergeTenant folds one tenant row in by name, summing the accounting
// fields; class and weight are configuration and identical across
// partitions, so the first row's values stand.
func mergeTenant(dst *schedd.StatsResponse, t schedd.TenantStatsEntry) {
	for i := range dst.Tenants {
		if dst.Tenants[i].Name == t.Name {
			dst.Tenants[i].Submitted += t.Submitted
			dst.Tenants[i].Completed += t.Completed
			dst.Tenants[i].Missed += t.Missed
			dst.Tenants[i].Running += t.Running
			dst.Tenants[i].QueueDepth += t.QueueDepth
			dst.Tenants[i].Unresolved += t.Unresolved
			dst.Tenants[i].SlotHours += t.SlotHours
			dst.Tenants[i].EmissionsG += t.EmissionsG
			return
		}
	}
	dst.Tenants = append(dst.Tenants, t)
}

// finishStats computes the derived ratios once every partition is
// folded in.
func finishStats(st *schedd.StatsResponse) {
	if slots := slotsOf(st); slots > 0 {
		st.Utilization /= float64(slots)
	} else {
		st.Utilization = 0
	}
	if done := st.Completed + st.Missed; done > 0 {
		st.MissRate = float64(st.Missed) / float64(done)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
}
