// Package gateway is the stateless routing tier in front of a
// partitioned schedd fleet. Each partition is an independent
// multi-primary deployment — its own sched.ShardedFleet, WAL, and hot
// standby — owning a disjoint region group; the gateway is the single
// client-facing endpoint that makes N partitions look like one
// service:
//
//	POST /v1/jobs          route/split a JSON submission by origin region
//	POST /v1/jobs/batch    the same for the binary batch protocol
//	GET  /v1/jobs/{id}     proxy by id-range ownership, fan-out fallback
//	GET  /v1/stats         scatter-gather into a fleet-wide merged view
//	GET  /metrics          merged partition expositions + gateway_* families
//	GET  /healthz          gateway liveness
//
// Correctness rests on two facts proven elsewhere: region groups never
// share slots (sched.SetRegionGroups — a grouped fleet equals
// independent per-group fleets placement-for-placement), and each
// partition's id range is disjoint (schedd.Config.IDBase). The gateway
// therefore only needs to route every job to its origin's owning
// partition; it holds no scheduling state of its own and any number of
// gateway replicas can front the same partitions.
//
// Topology is learned from the partitions themselves: each schedd
// echoes its partition identity and cluster table in /v1/stats, and the
// gateway builds its region→partition routing table from those echoes
// (refreshing on every stats scatter). Each partition is reached
// through an httpx.Endpoints failover client, so a partition's primary
// dying behind the gateway is survived the same way a client-side
// failover list survives it: dead endpoints rotate, follower 421s
// redirect to the promoted primary.
//
// A batch that lands entirely in one partition is proxied raw — the
// partition's status, JSON error shape, and Retry-After hint pass
// through byte-for-byte, so the backpressure taxonomy is indistinguishable
// from talking to the partition directly. A mixed batch is split into
// per-partition sub-batches submitted in ascending partition order
// (preserving each partition's submission order); fully-acked splits
// merge into one ordinary ack, uniform failures collapse to the shared
// status with the largest Retry-After, and anything else answers 207
// Multi-Status with per-job outcomes (schedd.MultiStatusResponse) so
// no admitted job is ever double-counted or lost.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"carbonshift/internal/httpx"
	"carbonshift/internal/schedd"
)

// Config wires a Gateway to its partitions.
type Config struct {
	// Partitions lists each partition's base URLs (primary first,
	// standbys after) in partition order. At least one required.
	Partitions [][]string
	// HTTPClient is the transport for every partition call (nil =
	// http.DefaultClient).
	HTTPClient *http.Client
}

// Gateway is the routing front. Stateless by design: everything it
// knows beyond Config is re-learnable from the partitions' /v1/stats.
type Gateway struct {
	hc    *http.Client
	parts []*partition
	mx    *gwMetrics

	// topoMu guards the learned routing tables.
	topoMu      sync.Mutex
	regionOwner map[string]int // region -> partition index
}

// partition is one schedd deployment behind the gateway.
type partition struct {
	index int
	eps   *httpx.Endpoints

	mu      sync.Mutex
	learned bool
	idBase  int
	hasID   bool
}

// New validates the config and builds the gateway. Partitions are not
// contacted here — topology is learned lazily, so the gateway can come
// up first.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Partitions) == 0 {
		return nil, errors.New("gateway: no partitions configured")
	}
	g := &Gateway{
		hc:          cfg.HTTPClient,
		regionOwner: make(map[string]int),
	}
	if g.hc == nil {
		g.hc = http.DefaultClient
	}
	for i, urls := range cfg.Partitions {
		eps, err := httpx.NewEndpoints(urls)
		if err != nil {
			return nil, fmt.Errorf("gateway: partition %d: %w", i, err)
		}
		g.parts = append(g.parts, &partition{index: i, eps: eps})
	}
	g.initMetrics()
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.handleSubmitJSON)
	mux.HandleFunc("POST /v1/jobs/batch", g.handleSubmitBinary)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJob)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	return g.mx.http.Wrap(mux)
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ---- topology ----

// learn fetches /v1/stats from every partition whose topology is still
// unknown and folds the echoes into the routing tables. It returns an
// error only when no partition has ever been learned AND none is
// reachable — routing is impossible then; any partial knowledge routes.
func (g *Gateway) learn(ctx context.Context) error {
	var wg sync.WaitGroup
	for _, p := range g.parts {
		p.mu.Lock()
		known := p.learned
		p.mu.Unlock()
		if known {
			continue
		}
		wg.Add(1)
		go func(p *partition) {
			defer wg.Done()
			var st schedd.StatsResponse
			if err := p.eps.DoJSON(ctx, g.hc, http.MethodGet, "/v1/stats", nil, "gateway", &st); err != nil {
				g.partitionError(p, err)
				return
			}
			g.absorb(p, &st)
		}(p)
	}
	wg.Wait()
	g.topoMu.Lock()
	defer g.topoMu.Unlock()
	if len(g.regionOwner) == 0 {
		return errors.New("gateway: no partition reachable to learn the routing topology")
	}
	return nil
}

// absorb folds one partition's stats echo into the routing tables.
func (g *Gateway) absorb(p *partition, st *schedd.StatsResponse) {
	g.topoMu.Lock()
	for _, c := range st.Clusters {
		if owner, ok := g.regionOwner[c.Region]; ok && owner != p.index {
			// A region claimed by two partitions would break the
			// disjointness the equivalence proof needs; first claim wins
			// and the conflict is surfaced as a metric.
			g.mx.topoConflicts.Inc()
			continue
		}
		g.regionOwner[c.Region] = p.index
	}
	g.topoMu.Unlock()

	p.mu.Lock()
	p.learned = true
	if st.Partition != nil {
		p.idBase = st.Partition.IDBase
		p.hasID = true
	}
	p.mu.Unlock()
	g.mx.partitionUp.With(strconv.Itoa(p.index)).Set(1)
}

// partitionError records a failed partition call.
func (g *Gateway) partitionError(p *partition, err error) {
	if httpx.StatusCodeOf(err) != 0 {
		return // the partition answered; it is up
	}
	g.mx.partErrors.With(strconv.Itoa(p.index)).Inc()
	g.mx.partitionUp.With(strconv.Itoa(p.index)).Set(0)
}

// routeJob picks the owning partition for one job: its origin's region
// group when the topology knows it, otherwise a stable hash of the
// origin — deterministic, so a misrouted unknown origin at least always
// lands on the same partition (which answers the authoritative 400).
func (g *Gateway) routeJob(job *schedd.JobRequest) int {
	g.topoMu.Lock()
	owner, ok := g.regionOwner[job.Origin]
	g.topoMu.Unlock()
	if ok {
		return owner
	}
	h := fnv.New32a()
	io.WriteString(h, job.Origin)
	return int(h.Sum32()) % len(g.parts)
}

// ---- submission ----

func (g *Gateway) handleSubmitJSON(w http.ResponseWriter, r *http.Request) {
	g.handleSubmit(w, r, false)
}

func (g *Gateway) handleSubmitBinary(w http.ResponseWriter, r *http.Request) {
	g.handleSubmit(w, r, true)
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request, binary bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, httpx.MaxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// The same 413 and message the partitions answer, so oversize
			// behaves identically with or without the gateway in front.
			httpx.WriteJSON(w, http.StatusRequestEntityTooLarge,
				schedd.ErrorResponse{Error: fmt.Sprintf("request body exceeds the %d-byte limit", httpx.MaxBody)})
			return
		}
		httpx.WriteJSON(w, http.StatusBadRequest, schedd.ErrorResponse{Error: err.Error()})
		return
	}
	path, contentType := "/v1/jobs", "application/json"
	var jobs []schedd.JobRequest
	if binary {
		path, contentType = "/v1/jobs/batch", schedd.BinaryContentType
		if ct := r.Header.Get("Content-Type"); ct != schedd.BinaryContentType {
			httpx.WriteJSON(w, http.StatusUnsupportedMediaType,
				schedd.ErrorResponse{Error: fmt.Sprintf("content type %q; want %s", ct, schedd.BinaryContentType)})
			return
		}
		jobs, err = schedd.DecodeBinarySubmit(bytes.NewReader(body))
	} else {
		jobs, err = schedd.DecodeSubmit(bytes.NewReader(body))
	}
	if err != nil {
		// The decode errors carry the partitions' own message shapes, so
		// a 400 reads the same with or without the gateway in front.
		httpx.WriteJSON(w, http.StatusBadRequest, schedd.ErrorResponse{Error: err.Error()})
		return
	}
	if err := g.learn(r.Context()); err != nil {
		g.writeUnreachable(w, err)
		return
	}

	// Group the batch by owning partition, preserving batch order
	// within each group.
	byPart := make(map[int][]int) // partition -> original indexes
	var order []int               // partitions in first-appearance order
	for i := range jobs {
		pi := g.routeJob(&jobs[i])
		if _, ok := byPart[pi]; !ok {
			order = append(order, pi)
		}
		byPart[pi] = append(byPart[pi], i)
	}

	if len(order) == 1 {
		// Single-partition batch: raw proxy. Status, error shape, and
		// Retry-After pass through exactly as the partition answered.
		g.mx.proxied.Inc()
		g.proxySubmit(w, r.Context(), g.parts[order[0]], path, contentType, body, binary)
		return
	}
	g.mx.split.Inc()
	g.splitSubmit(w, r.Context(), jobs, byPart, binary)
}

// writeUnreachable maps a gateway-side transport failure to 503 with a
// short Retry-After — the same backpressure shape the partitions use,
// so clients pace instead of hammering.
func (g *Gateway) writeUnreachable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	httpx.WriteJSON(w, http.StatusServiceUnavailable,
		schedd.ErrorResponse{Error: err.Error(), RetryAfter: 1})
}

// proxySubmit forwards one already-read submit body to a partition and
// relays the response verbatim. The Endpoints client absorbs failover
// (dead primary rotation, 421 redirects); whatever status survives that
// is the partition's real answer and is passed through, with the
// Retry-After header re-stamped from the in-body hint.
func (g *Gateway) proxySubmit(w http.ResponseWriter, ctx context.Context, p *partition, path, contentType string, body []byte, binary bool) {
	var gotStatus int
	var gotBody []byte
	err := p.eps.Do(ctx, g.hc, http.MethodPost, path, contentType, body, "gateway",
		func(statusCode int, status string, respBody []byte) error {
			gotStatus = statusCode
			gotBody = append([]byte(nil), respBody...)
			return nil
		})
	if err != nil {
		g.partitionError(p, err)
		g.writeUnreachable(w, fmt.Errorf("partition %d unreachable: %w", p.index, err))
		return
	}
	g.mx.partitionUp.With(strconv.Itoa(p.index)).Set(1)
	if binary && gotStatus == http.StatusOK {
		w.Header().Set("Content-Type", schedd.BinaryContentType)
	} else {
		w.Header().Set("Content-Type", "application/json")
		var eb schedd.ErrorResponse
		if json.Unmarshal(gotBody, &eb) == nil && eb.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(eb.RetryAfter))
		}
	}
	w.WriteHeader(gotStatus)
	w.Write(gotBody)
}

// subResult is one partition's answer for its sub-batch.
type subResult struct {
	status     int
	ids        []int
	arrival    int
	errMsg     string
	retryAfter int
}

// splitSubmit fans a mixed batch out to its owning partitions —
// serially, in ascending partition order, so each partition sees its
// jobs in batch order — and folds the per-partition answers back into
// one response.
func (g *Gateway) splitSubmit(w http.ResponseWriter, ctx context.Context, jobs []schedd.JobRequest, byPart map[int][]int, binary bool) {
	parts := make([]int, 0, len(byPart))
	for pi := range byPart {
		parts = append(parts, pi)
	}
	sort.Ints(parts)

	results := make(map[int]subResult, len(parts))
	for _, pi := range parts {
		idx := byPart[pi]
		sub := make([]schedd.JobRequest, len(idx))
		for j, i := range idx {
			sub[j] = jobs[i]
		}
		results[pi] = g.submitSub(ctx, g.parts[pi], sub, binary)
	}

	// Fold. All-acked → a plain merged ack; uniform failure → that
	// status verbatim with the largest Retry-After; mixed → 207 with
	// per-job outcomes.
	allOK, allFail, uniform := true, true, -1
	for _, pi := range parts {
		r := results[pi]
		if r.status == http.StatusOK {
			allFail = false
		} else {
			allOK = false
			if uniform == -1 {
				uniform = r.status
			} else if uniform != r.status {
				uniform = 0
			}
		}
	}
	switch {
	case allOK:
		out := schedd.SubmitResponse{IDs: make([]int, len(jobs))}
		for _, pi := range parts {
			r := results[pi]
			for j, i := range byPart[pi] {
				out.IDs[i] = r.ids[j]
			}
			if r.arrival > out.ArrivalHour {
				out.ArrivalHour = r.arrival
			}
		}
		out.Accepted = len(jobs)
		if binary {
			w.Header().Set("Content-Type", schedd.BinaryContentType)
			w.WriteHeader(http.StatusOK)
			w.Write(schedd.AppendBinaryAck(nil, out.ArrivalHour, out.IDs))
			return
		}
		httpx.WriteJSON(w, http.StatusOK, out)
	case allFail && uniform > 0:
		first, after := "", 0
		for _, pi := range parts {
			r := results[pi]
			if first == "" {
				first = r.errMsg
			}
			if r.retryAfter > after {
				after = r.retryAfter
			}
		}
		if after > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(after))
		}
		httpx.WriteJSON(w, uniform, schedd.ErrorResponse{Error: first, RetryAfter: after})
	default:
		g.mx.partial.Inc()
		ms := schedd.MultiStatusResponse{Outcomes: make([]schedd.JobOutcome, len(jobs))}
		for _, pi := range parts {
			r := results[pi]
			for j, i := range byPart[pi] {
				o := schedd.JobOutcome{Partition: pi, Status: r.status}
				if r.status == http.StatusOK {
					o.ID = r.ids[j]
					ms.Accepted++
					if r.arrival > ms.ArrivalHour {
						ms.ArrivalHour = r.arrival
					}
				} else {
					o.Error = r.errMsg
					o.RetryAfter = r.retryAfter
				}
				ms.Outcomes[i] = o
			}
		}
		// 207 on both routes is JSON: only 200 acks are binary, exactly
		// as on the partitions' own error paths.
		httpx.WriteJSON(w, http.StatusMultiStatus, ms)
	}
}

// submitSub submits one partition's sub-batch over the requested
// protocol and normalizes the answer into a subResult. A transport
// failure (every endpoint dead) is a synthetic 503 — retryable
// backpressure from the client's point of view.
func (g *Gateway) submitSub(ctx context.Context, p *partition, sub []schedd.JobRequest, binary bool) subResult {
	var payload []byte
	path, contentType := "/v1/jobs", "application/json"
	if binary {
		path, contentType = "/v1/jobs/batch", schedd.BinaryContentType
		payload = schedd.AppendBinarySubmit(nil, sub)
	} else {
		var err error
		if payload, err = json.Marshal(schedd.SubmitRequest{Jobs: sub}); err != nil {
			return subResult{status: http.StatusInternalServerError, errMsg: err.Error()}
		}
	}
	var res subResult
	err := p.eps.Do(ctx, g.hc, http.MethodPost, path, contentType, payload, "gateway",
		func(statusCode int, status string, body []byte) error {
			res.status = statusCode
			if statusCode == http.StatusOK {
				if binary {
					ack, err := schedd.DecodeBinaryAck(body)
					if err != nil {
						res.status = http.StatusBadGateway
						res.errMsg = fmt.Sprintf("partition %d: bad ack: %v", p.index, err)
						return nil
					}
					res.ids, res.arrival = ack.IDs, ack.ArrivalHour
					return nil
				}
				var ack schedd.SubmitResponse
				if err := json.Unmarshal(body, &ack); err != nil {
					res.status = http.StatusBadGateway
					res.errMsg = fmt.Sprintf("partition %d: bad ack: %v", p.index, err)
					return nil
				}
				res.ids, res.arrival = ack.IDs, ack.ArrivalHour
				return nil
			}
			var eb schedd.ErrorResponse
			if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
				res.errMsg, res.retryAfter = eb.Error, eb.RetryAfter
			} else {
				res.errMsg = status
			}
			return nil
		})
	if err != nil {
		g.partitionError(p, err)
		return subResult{status: http.StatusServiceUnavailable,
			errMsg: fmt.Sprintf("partition %d unreachable: %v", p.index, err), retryAfter: 1}
	}
	g.mx.partitionUp.With(strconv.Itoa(p.index)).Set(1)
	return res
}

// ---- job lookup ----

// handleJob proxies GET /v1/jobs/{id}. Partition id ranges are
// disjoint (IDBase), so the owner is the partition whose base is the
// greatest one not exceeding the id; a miss there (explicit client ids
// can land anywhere) falls back to asking every other partition.
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpx.WriteJSON(w, http.StatusBadRequest, schedd.ErrorResponse{Error: "job id must be an integer"})
		return
	}
	if err := g.learn(r.Context()); err != nil {
		g.writeUnreachable(w, err)
		return
	}
	tried := make([]bool, len(g.parts))
	var transportErr error
	ask := func(p *partition) bool {
		tried[p.index] = true
		var out schedd.JobResponse
		err := p.eps.DoJSON(r.Context(), g.hc, http.MethodGet,
			fmt.Sprintf("/v1/jobs/%d", id), nil, "gateway", &out)
		if err == nil {
			httpx.WriteJSON(w, http.StatusOK, out)
			return true
		}
		if httpx.StatusCodeOf(err) == 0 {
			g.partitionError(p, err)
			transportErr = err
		}
		return false
	}
	if owner := g.idOwner(id); owner >= 0 && ask(g.parts[owner]) {
		return
	}
	for _, p := range g.parts {
		if !tried[p.index] && ask(p) {
			return
		}
	}
	if transportErr != nil {
		g.writeUnreachable(w, fmt.Errorf("job %d: partition unreachable: %w", id, transportErr))
		return
	}
	httpx.WriteJSON(w, http.StatusNotFound, schedd.ErrorResponse{Error: fmt.Sprintf("unknown job %d", id)})
}

// idOwner returns the partition owning id by IDBase range, or -1 when
// no partition has echoed an id base.
func (g *Gateway) idOwner(id int) int {
	owner, base := -1, -1
	for _, p := range g.parts {
		p.mu.Lock()
		has, pb := p.hasID, p.idBase
		p.mu.Unlock()
		if has && pb <= id && pb > base {
			owner, base = p.index, pb
		}
	}
	return owner
}
