package simgrid

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"carbonshift/internal/engine"
	"carbonshift/internal/regions"
	"carbonshift/internal/trace"
)

// The process-level trace cache. Simulating one region for the full
// study period costs tens of milliseconds; experiments such as the
// greener-grid what-ifs (Figure 11c–d) and every freshly constructed
// Lab used to re-simulate identical (region, config) pairs from
// scratch. The cache memoizes each simulated trace by its full input
// fingerprint so any given trace is generated exactly once per process,
// no matter how many experiments, labs, or benchmark iterations ask for
// it.
//
// Cached traces are shared and must be treated as immutable; every
// consumer in this repository only reads them. Entries use a
// single-flight sync.Once so concurrent first requests for the same key
// simulate once and everyone else blocks on the result.
//
// The key covers every input the simulation reads — the region's
// simulation-relevant fields as well as the config — so a Region value
// that shares a code with a catalog entry but carries, say, a modified
// mix (regions built via Greener, custom what-ifs) gets its own entry
// rather than silently aliasing the catalog trace.
type cacheKey struct {
	code        string
	lat, lon    float64
	mix         regions.Mix
	deltaRenew  float64
	demandSwing float64
	seed        uint64
	start       int64 // unix seconds of cfg.Start
	hours       int
	extra       float64
}

type cacheEntry struct {
	once sync.Once
	tr   *trace.Trace
}

// DefaultCacheLimit bounds the number of cached traces. A full-period
// trace is ~210 KB, so the default caps the cache near 220 MB — enough
// to hold the base catalog plus every greener-grid what-if of a full
// experiment run (123 + 7×123 ≈ 984 entries) without letting
// multi-seed sweeps grow the process without bound. When the limit is
// exceeded the oldest entries are evicted FIFO; evicted traces remain
// valid for holders and are simply re-simulated on the next request.
const DefaultCacheLimit = 1024

var traceCache = struct {
	mu     sync.Mutex
	m      map[cacheKey]*cacheEntry
	order  []cacheKey // insertion order, for FIFO eviction
	hits   atomic.Uint64
	misses atomic.Uint64
}{m: make(map[cacheKey]*cacheEntry)}

func keyFor(r regions.Region, cfg Config) cacheKey {
	return cacheKey{
		code:        r.Code,
		lat:         r.Lat,
		lon:         r.Lon,
		mix:         r.Mix,
		deltaRenew:  r.DeltaRenew,
		demandSwing: r.DemandSwing,
		seed:        cfg.Seed,
		start:       cfg.Start.UTC().Unix(),
		hours:       cfg.Hours,
		extra:       cfg.ExtraRenewables,
	}
}

// GenerateRegionCached simulates a single region through the
// process-level cache: the first request for a (region, config) pair
// pays the simulation, every later one returns the shared trace.
func GenerateRegionCached(r regions.Region, cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	key := keyFor(r, cfg)

	traceCache.mu.Lock()
	e, ok := traceCache.m[key]
	if !ok {
		e = &cacheEntry{}
		traceCache.m[key] = e
		traceCache.order = append(traceCache.order, key)
		// FIFO eviction keeps the cache bounded; in-flight holders of
		// an evicted entry keep their (immutable) trace.
		for len(traceCache.m) > DefaultCacheLimit {
			oldest := traceCache.order[0]
			traceCache.order = traceCache.order[1:]
			delete(traceCache.m, oldest)
		}
	}
	traceCache.mu.Unlock()
	if ok {
		traceCache.hits.Add(1)
	} else {
		traceCache.misses.Add(1)
	}
	e.once.Do(func() {
		e.tr = simulate(r, cfg, rngFor(r.Code, cfg))
	})
	return e.tr, nil
}

// GenerateCached simulates all the given regions through the cache,
// fanning uncached regions across at most `workers` goroutines (0 means
// one per CPU, 1 forces serial). The returned set is identical to
// Generate's for the same inputs.
func GenerateCached(ctx context.Context, regs []regions.Region, cfg Config, workers int) (*trace.Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(regs) == 0 {
		return nil, fmt.Errorf("simgrid: no regions given")
	}
	cfg = cfg.withDefaults()
	traces, err := engine.Map(ctx, workers, len(regs), func(ctx context.Context, i int) (*trace.Trace, error) {
		return GenerateRegionCached(regs[i], cfg)
	})
	if err != nil {
		return nil, err
	}
	return trace.NewSet(traces)
}

// CacheStats reports the cache's lifetime hit and miss counts and its
// current entry count.
func CacheStats() (hits, misses uint64, entries int) {
	traceCache.mu.Lock()
	entries = len(traceCache.m)
	traceCache.mu.Unlock()
	return traceCache.hits.Load(), traceCache.misses.Load(), entries
}

// ResetCache drops every cached trace and zeroes the counters. It
// exists for tests and for benchmarks that want to time cold
// generation.
func ResetCache() {
	traceCache.mu.Lock()
	traceCache.m = make(map[cacheKey]*cacheEntry)
	traceCache.order = nil
	traceCache.mu.Unlock()
	traceCache.hits.Store(0)
	traceCache.misses.Store(0)
}
