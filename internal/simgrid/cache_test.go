package simgrid

import (
	"context"
	"sync"
	"testing"

	"carbonshift/internal/regions"
	"carbonshift/internal/trace"
)

func cacheTestConfig(seed uint64) Config {
	return Config{Seed: seed, Hours: 24 * 30}
}

func TestGenerateCachedMatchesGenerate(t *testing.T) {
	ResetCache()
	defer ResetCache()
	regs := regions.All()[:8]
	cfg := cacheTestConfig(3)
	plain, err := Generate(regs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := GenerateCached(context.Background(), regs, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range plain.Regions() {
		a, b := plain.MustGet(code), cached.MustGet(code)
		if len(a.CI) != len(b.CI) {
			t.Fatalf("%s: length %d vs %d", code, len(a.CI), len(b.CI))
		}
		for i := range a.CI {
			if a.CI[i] != b.CI[i] {
				t.Fatalf("%s: sample %d differs: %v vs %v", code, i, a.CI[i], b.CI[i])
			}
		}
	}
}

func TestCacheHitBehavior(t *testing.T) {
	ResetCache()
	defer ResetCache()
	regs := regions.All()[:5]
	cfg := cacheTestConfig(4)
	if _, err := GenerateCached(context.Background(), regs, cfg, 2); err != nil {
		t.Fatal(err)
	}
	hits, misses, entries := CacheStats()
	if hits != 0 || misses != 5 || entries != 5 {
		t.Fatalf("after cold run: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
	// Same config again: all hits, no new entries.
	warm, err := GenerateCached(context.Background(), regs, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, entries = CacheStats()
	if hits != 5 || misses != 5 || entries != 5 {
		t.Fatalf("after warm run: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
	// The warm run hands back the very same shared traces.
	tr1, _ := GenerateRegionCached(regs[0], cfg)
	if warm.MustGet(regs[0].Code) != tr1 {
		t.Fatal("warm run did not reuse the cached trace")
	}
	// A different config misses: the key covers every simulation input.
	other := cacheTestConfig(4)
	other.ExtraRenewables = 0.2
	if _, err := GenerateRegionCached(regs[0], other); err != nil {
		t.Fatal(err)
	}
	if _, misses, entries := CacheStats(); misses != 6 || entries != 6 {
		t.Fatalf("config change did not miss: misses=%d entries=%d", misses, entries)
	}
}

// Concurrent first requests for the same key must simulate once and
// share the result (single-flight), with no data races (-race).
func TestCacheConcurrentAccess(t *testing.T) {
	ResetCache()
	defer ResetCache()
	reg := regions.All()[0]
	cfg := cacheTestConfig(5)
	const goroutines = 16
	results := make([]*trace.Trace, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr, err := GenerateRegionCached(reg, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			_ = tr.Mean() // concurrent read of the shared trace
			results[g] = tr
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatal("concurrent requests produced distinct traces")
		}
	}
	if _, _, entries := CacheStats(); entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
}

// The key must cover the region's simulation inputs, not just its
// code: a modified Region sharing a catalog code gets its own entry.
func TestCacheKeyCoversRegionFields(t *testing.T) {
	ResetCache()
	defer ResetCache()
	reg := regions.All()[0]
	cfg := cacheTestConfig(8)
	base, err := GenerateRegionCached(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	greener := Greener(reg, 0.3)
	mod, err := GenerateRegionCached(greener, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mod == base {
		t.Fatal("modified region aliased to the catalog trace")
	}
	want, err := GenerateRegion(greener, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.CI {
		if mod.CI[i] != want.CI[i] {
			t.Fatalf("cached modified-region trace diverges from Generate at hour %d", i)
		}
	}
	if _, _, entries := CacheStats(); entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
}

// The cache is bounded: inserting past DefaultCacheLimit evicts the
// oldest entries FIFO instead of growing without bound.
func TestCacheEviction(t *testing.T) {
	ResetCache()
	defer ResetCache()
	reg := regions.All()[0]
	cfg := Config{Hours: 24} // tiny traces: eviction test only needs keys
	for seed := uint64(0); seed < DefaultCacheLimit+10; seed++ {
		cfg.Seed = seed
		if _, err := GenerateRegionCached(reg, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, entries := CacheStats(); entries != DefaultCacheLimit {
		t.Fatalf("entries = %d, want the %d cap", entries, DefaultCacheLimit)
	}
	// The earliest seeds were evicted: requesting one again re-misses.
	_, missesBefore, _ := CacheStats()
	cfg.Seed = 0
	if _, err := GenerateRegionCached(reg, cfg); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := CacheStats(); misses != missesBefore+1 {
		t.Fatal("evicted entry did not re-miss")
	}
}

func TestResetCache(t *testing.T) {
	ResetCache()
	reg := regions.All()[0]
	if _, err := GenerateRegionCached(reg, cacheTestConfig(6)); err != nil {
		t.Fatal(err)
	}
	ResetCache()
	hits, misses, entries := CacheStats()
	if hits != 0 || misses != 0 || entries != 0 {
		t.Fatalf("after reset: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
}

func TestGenerateCachedValidates(t *testing.T) {
	ResetCache()
	defer ResetCache()
	if _, err := GenerateCached(context.Background(), nil, cacheTestConfig(7), 1); err == nil {
		t.Fatal("empty region list accepted")
	}
	bad := cacheTestConfig(7)
	bad.ExtraRenewables = 2
	if _, err := GenerateCached(context.Background(), regions.All()[:1], bad, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}
