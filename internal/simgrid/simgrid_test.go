package simgrid

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"carbonshift/internal/regions"
	"carbonshift/internal/trace"
)

// fullSet lazily generates the complete 123-region, 3-year trace set
// once and shares it across the calibration tests.
var (
	fullOnce sync.Once
	fullSet  *trace.Set
)

func full(t *testing.T) *trace.Set {
	t.Helper()
	fullOnce.Do(func() {
		var err error
		fullSet, err = GenerateAll(Config{Seed: 1})
		if err != nil {
			panic(err)
		}
	})
	return fullSet
}

func dailyCV(ci []float64) float64 {
	nd := len(ci) / 24
	var acc float64
	for d := 0; d < nd; d++ {
		day := ci[d*24 : (d+1)*24]
		var m, s float64
		for _, v := range day {
			m += v
		}
		m /= 24
		for _, v := range day {
			s += (v - m) * (v - m)
		}
		if m > 0 {
			acc += math.Sqrt(s/24) / m
		}
	}
	return acc / float64(nd)
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if err := (Config{Hours: -1}).Validate(); err == nil {
		t.Error("negative hours accepted")
	}
	if err := (Config{ExtraRenewables: -0.1}).Validate(); err == nil {
		t.Error("negative ExtraRenewables accepted")
	}
	if err := (Config{ExtraRenewables: 1.5}).Validate(); err == nil {
		t.Error("ExtraRenewables > 1 accepted")
	}
}

func TestDeterminism(t *testing.T) {
	r := regions.MustByCode("DE")
	cfg := Config{Seed: 7, Hours: 24 * 30}
	a, err := GenerateRegion(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRegion(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.CI {
		if a.CI[i] != b.CI[i] {
			t.Fatalf("traces diverge at hour %d: %v != %v", i, a.CI[i], b.CI[i])
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	r := regions.MustByCode("DE")
	a, _ := GenerateRegion(r, Config{Seed: 1, Hours: 24 * 30})
	b, _ := GenerateRegion(r, Config{Seed: 2, Hours: 24 * 30})
	same := 0
	for i := range a.CI {
		if a.CI[i] == b.CI[i] {
			same++
		}
	}
	if same == len(a.CI) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateMatchesGenerateRegion(t *testing.T) {
	regs := []regions.Region{regions.MustByCode("FR"), regions.MustByCode("PL")}
	cfg := Config{Seed: 5, Hours: 24 * 10}
	set, err := Generate(regs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := GenerateRegion(regs[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := set.MustGet("PL")
	for i := range solo.CI {
		if got.CI[i] != solo.CI[i] {
			t.Fatalf("set and solo traces diverge at %d (region streams must not depend on batch composition)", i)
		}
	}
}

func TestGenerateRejectsEmpty(t *testing.T) {
	if _, err := Generate(nil, Config{Seed: 1, Hours: 24}); err == nil {
		t.Fatal("empty region list accepted")
	}
}

func TestTraceShape(t *testing.T) {
	r := regions.MustByCode("SE")
	tr, err := GenerateRegion(r, Config{Seed: 1, Hours: 48})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 48 {
		t.Fatalf("length = %d", tr.Len())
	}
	if !tr.Start.Equal(DefaultStart) {
		t.Fatalf("start = %v", tr.Start)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomStart(t *testing.T) {
	start := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	tr, err := GenerateRegion(regions.MustByCode("SE"), Config{Seed: 1, Start: start, Hours: 24})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Start.Equal(start) {
		t.Fatalf("start = %v, want %v", tr.Start, start)
	}
}

func TestAllSamplesFiniteAndPositive(t *testing.T) {
	set := full(t)
	for _, code := range set.Regions() {
		tr := set.MustGet(code)
		for i, v := range tr.CI {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("%s hour %d: bad CI %v", code, i, v)
			}
			if v > 1200 {
				t.Fatalf("%s hour %d: implausible CI %v", code, i, v)
			}
		}
	}
}

// --- Calibration against the paper's dataset-level statistics ---

func TestGlobalMeanNear368(t *testing.T) {
	gm := full(t).GlobalMean()
	if gm < 340 || gm > 410 {
		t.Fatalf("global mean CI = %.1f, want near the paper's 368.39", gm)
	}
}

func TestSwedenIsGreenestRegion(t *testing.T) {
	set := full(t)
	se := set.MustGet("SE").Mean()
	if se < 8 || se > 25 {
		t.Fatalf("Sweden mean = %.1f, want near 16", se)
	}
	for _, code := range set.Regions() {
		if code == "SE" {
			continue
		}
		if m := set.MustGet(code).Mean(); m <= se {
			t.Errorf("%s mean %.1f at or below Sweden's %.1f", code, m, se)
		}
	}
}

func TestMajorityLowDailyVariability(t *testing.T) {
	set := full(t)
	low := 0
	for _, code := range set.Regions() {
		if dailyCV(set.MustGet(code).CI) < 0.1 {
			low++
		}
	}
	frac := float64(low) / float64(set.Size())
	if frac < 0.62 || frac > 0.85 {
		t.Fatalf("low-daily-CV fraction = %.2f (%d regions), paper reports >70%%", frac, low)
	}
}

func TestHighIntensityFraction(t *testing.T) {
	set := full(t)
	n := 0
	for _, code := range set.Regions() {
		if set.MustGet(code).Mean() > 400 {
			n++
		}
	}
	if frac := float64(n) / float64(set.Size()); frac < 0.38 || frac > 0.54 {
		t.Fatalf("above-400 fraction = %.2f, paper reports ~46%%", frac)
	}
}

func TestDriftPopulations(t *testing.T) {
	set := full(t)
	y20, err := set.Year(2020)
	if err != nil {
		t.Fatal(err)
	}
	y22, err := set.Year(2022)
	if err != nil {
		t.Fatal(err)
	}
	greener, browner := 0, 0
	for _, code := range set.Regions() {
		d := y22.MustGet(code).Mean() - y20.MustGet(code).Mean()
		switch {
		case d < -25:
			greener++
		case d > 25:
			browner++
		}
	}
	n := float64(set.Size())
	if frac := float64(greener) / n; frac < 0.14 || frac > 0.33 {
		t.Errorf("greener fraction = %.2f (%d), paper reports ~23%%", frac, greener)
	}
	if frac := float64(browner) / n; frac < 0.11 || frac > 0.30 {
		t.Errorf("browner fraction = %.2f (%d), paper reports ~20%%", frac, browner)
	}
	flat := n - float64(greener) - float64(browner)
	if frac := flat / n; frac < 0.45 || frac > 0.72 {
		t.Errorf("flat fraction = %.2f, paper reports ~57%%", frac)
	}
}

func TestRealizedMeansTrackNominal(t *testing.T) {
	set := full(t)
	for _, r := range regions.All() {
		got := set.MustGet(r.Code).Mean()
		want := r.Mix.NominalCI()
		// Wind-heavy grids run above nominal: oversupply hours curtail
		// wind while shortfall hours backfill with fossil (the model
		// has no interconnector imports), so the tolerance widens with
		// the intermittent share.
		tol := want*(0.12+0.45*r.Mix.RenewableShare()) + 6
		if math.Abs(got-want) > tol {
			t.Errorf("%s realized mean %.1f vs nominal %.1f (tol %.1f)", r.Code, got, want, tol)
		}
	}
}

// TestSolarRegionsDipAtMidday checks the qualitative solar signature:
// in California the average midday intensity must be well below the
// average evening intensity.
func TestSolarRegionsDipAtMidday(t *testing.T) {
	set := full(t)
	tr := set.MustGet("US-CA")
	// Local noon in California is ~20:00 UTC; local 20:00 is ~04:00 UTC.
	var noon, evening float64
	n := 0
	for h := 0; h+24 <= tr.Len(); h += 24 {
		noon += tr.CI[h+20]
		evening += tr.CI[h+4]
		n++
	}
	noon /= float64(n)
	evening /= float64(n)
	if noon >= evening {
		t.Fatalf("California midday CI %.1f not below evening CI %.1f", noon, evening)
	}
}

// TestAperiodicFossilGrids checks Hong Kong and Indonesia stay nearly
// flat, the precondition for their zero periodicity score in Figure 4.
func TestAperiodicFossilGrids(t *testing.T) {
	set := full(t)
	for _, code := range []string{"HK", "ID"} {
		if cv := dailyCV(set.MustGet(code).CI); cv > 0.03 {
			t.Errorf("%s daily CV = %.3f, want nearly flat (< 0.03)", code, cv)
		}
	}
}

// --- Greener-grid what-if ---

func TestExtraRenewablesLowersMean(t *testing.T) {
	r := regions.MustByCode("US-CA")
	base, _ := GenerateRegion(r, Config{Seed: 3, Hours: 24 * 60})
	green, _ := GenerateRegion(r, Config{Seed: 3, Hours: 24 * 60, ExtraRenewables: 0.25})
	if green.Mean() >= base.Mean() {
		t.Fatalf("extra renewables did not lower mean: %.1f -> %.1f", base.Mean(), green.Mean())
	}
}

func TestGreenerHelper(t *testing.T) {
	r := regions.MustByCode("PL")
	g := Greener(r, 0.2)
	if got := g.Mix.Sum(); math.Abs(got-r.Mix.Sum()) > 1e-9 {
		t.Fatalf("Greener changed mix sum: %v", got)
	}
	if g.Mix.RenewableShare() <= r.Mix.RenewableShare() {
		t.Fatal("Greener did not raise renewable share")
	}
	if g.Mix.NominalCI() >= r.Mix.NominalCI() {
		t.Fatal("Greener did not lower nominal CI")
	}
}

func TestShiftToRenewablesClamps(t *testing.T) {
	mix := regions.Mix{regions.Gas: 0.3, regions.Hydro: 0.6, regions.Solar: 0.1}
	// Requesting more than the fossil share shifts only what exists.
	out := shiftToRenewables(mix, 0.9)
	if out[regions.Gas] < -1e-12 {
		t.Fatalf("gas went negative: %v", out[regions.Gas])
	}
	if math.Abs(out.Sum()-1) > 1e-9 {
		t.Fatalf("sum changed: %v", out.Sum())
	}
	// Negative shift larger than the renewable share clamps too.
	out = shiftToRenewables(mix, -0.9)
	if out[regions.Solar] < -1e-12 {
		t.Fatalf("solar went negative: %v", out[regions.Solar])
	}
}

func TestShiftToRenewablesNoRenewablesTarget(t *testing.T) {
	mix := regions.Mix{regions.Coal: 0.7, regions.Gas: 0.3}
	out := shiftToRenewables(mix, 0.2)
	if math.Abs(out[regions.Solar]-0.2) > 1e-9 {
		t.Fatalf("shift into renew-free mix should land on solar, got %+v", out)
	}
}

func TestQuickShiftPreservesMassAndBounds(t *testing.T) {
	f := func(coal, gas, hyd, sol, wnd uint8, rawShift int8) bool {
		mix := regions.Mix{
			regions.Coal:  float64(coal%100) + 1,
			regions.Gas:   float64(gas % 100),
			regions.Hydro: float64(hyd % 100),
			regions.Solar: float64(sol % 100),
			regions.Wind:  float64(wnd % 100),
		}.Normalize()
		shift := float64(rawShift) / 128 // in (-1, 1)
		out := shiftToRenewables(mix, shift)
		if math.Abs(out.Sum()-1) > 1e-9 {
			return false
		}
		for _, v := range out {
			if v < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchFlexibleBalances(t *testing.T) {
	mix := regions.MustByCode("DE").Mix
	for _, residual := range []float64{0.01, 0.2, 0.5, 0.8, 1.2} {
		h, c, g, o := dispatchFlexible(mix, residual)
		if got := h + c + g + o; math.Abs(got-residual) > 1e-9 {
			t.Errorf("residual %.2f: dispatch sums to %v", residual, got)
		}
		for _, v := range []float64{h, c, g, o} {
			if v < 0 {
				t.Errorf("residual %.2f: negative dispatch %v", residual, v)
			}
		}
	}
}

func TestDispatchFlexibleNoFlexCapacity(t *testing.T) {
	mix := regions.Mix{regions.Nuclear: 0.5, regions.Solar: 0.5}
	h, c, g, o := dispatchFlexible(mix, 0.3)
	if h != 0 || c != 0 || o != 0 || math.Abs(g-0.3) > 1e-12 {
		t.Fatalf("fallback dispatch = %v %v %v %v", h, c, g, o)
	}
}

// TestPeakerTilt checks that gas's share of fossil generation grows
// with residual demand, the mechanism behind diurnal CI cycles.
func TestPeakerTilt(t *testing.T) {
	mix := regions.MustByCode("US-WA").Mix
	_, cLo, gLo, _ := dispatchFlexible(mix, 0.4)
	_, cHi, gHi, _ := dispatchFlexible(mix, 1.0)
	ratioLo := gLo / (gLo + cLo + 1e-12)
	ratioHi := gHi / (gHi + cHi + 1e-12)
	if ratioHi <= ratioLo {
		t.Fatalf("gas share did not grow with residual: %.3f -> %.3f", ratioLo, ratioHi)
	}
}

func BenchmarkGenerateRegionYear(b *testing.B) {
	r := regions.MustByCode("DE")
	cfg := Config{Seed: 1, Hours: 8760}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateRegion(r, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
