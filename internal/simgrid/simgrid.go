// Package simgrid synthesizes hourly grid carbon-intensity traces for
// the catalog regions, standing in for the Electricity Maps dataset the
// paper collected (123 regions, 2020–2022, hourly).
//
// The simulator is a compact physical model of each regional grid:
//
//   - Demand follows diurnal, weekly, and seasonal cycles whose
//     amplitudes scale with the region's DemandSwing and latitude, plus
//     small Gaussian noise.
//   - Nuclear, geothermal, and biomass run as constant baseload.
//   - Hydro partially load-follows (dispatchable reservoir behaviour).
//   - Solar output follows a solar-elevation model driven by latitude,
//     day of year, and local hour, modulated by an autocorrelated cloud
//     process; the capacity is scaled so the annual energy share matches
//     the catalog mix.
//   - Wind is an autocorrelated stochastic process, likewise scaled to
//     its annual share.
//   - Fossil generation fills the residual demand. The split between
//     coal, gas, and oil tilts with the residual level: coal behaves as
//     baseload while gas and oil act as peakers, so the marginal fuel —
//     and hence carbon intensity — varies over the day.
//   - The mix itself drifts linearly over the simulated period by the
//     region's DeltaRenew, producing the 2020→2022 trends of Figure 3(b).
//
// Carbon intensity is the generation-weighted average emission factor,
// exactly as carbon information services compute it. The model
// reproduces the dataset-level statistics the paper's analysis rests on
// (see DESIGN.md) while remaining fully deterministic under a seed.
package simgrid

import (
	"fmt"
	"math"
	"time"

	"carbonshift/internal/regions"
	"carbonshift/internal/rng"
	"carbonshift/internal/trace"
)

// DefaultStart is the first simulated hour, matching the paper's study
// period.
var DefaultStart = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// DefaultHours covers 2020 (leap), 2021, and 2022.
const DefaultHours = 8784 + 8760 + 8760

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives all stochastic components. The same seed always
	// produces the same traces.
	Seed uint64
	// Start is the first simulated hour (UTC). Zero means DefaultStart.
	Start time.Time
	// Hours is the number of hourly samples. Zero means DefaultHours.
	Hours int
	// ExtraRenewables shifts this fraction of every region's fossil
	// share into solar and wind before simulating, implementing the
	// "what if the grid gets greener" scenario of §6.3. It may be 0.
	ExtraRenewables float64
}

func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = DefaultStart
	}
	if c.Hours == 0 {
		c.Hours = DefaultHours
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Hours < 0 {
		return fmt.Errorf("simgrid: negative hours %d", c.Hours)
	}
	if c.ExtraRenewables < 0 || c.ExtraRenewables > 1 {
		return fmt.Errorf("simgrid: ExtraRenewables %v outside [0, 1]", c.ExtraRenewables)
	}
	return nil
}

// Demand-model amplitudes, as fractions of mean demand.
const (
	diurnalAmp  = 0.13
	weeklyAmp   = 0.04
	seasonalAmp = 0.06
	demandNoise = 0.012
	demandFloor = 0.40
)

// coalBaseload is the fraction of coal capacity that runs as must-run
// baseload; the rest load-follows alongside hydro, gas, and oil.
const coalBaseload = 0.8

// Flexible-dispatch tilt exponents: each flexible source's output
// responds to the residual-demand level with its own elasticity.
// Reservoir hydro flattens excursions (sub-linear), coal's flexible
// tranche is nearly proportional, and gas and oil are peakers whose
// share of generation grows super-linearly with demand — making gas/oil
// the marginal fuel and giving carbon intensity its diurnal shape.
const (
	hydroTilt    = 0.55
	coalFlexTilt = 0.9
	gasTilt      = 1.6
	oilTilt      = 2.6
)

// driftSpan converts DeltaRenew (defined as the change in year-mean
// renewable share from 2020 to 2022) into the total mix excursion over
// the simulated period: year means sit at ±1/3 of the span, so the span
// must be 1.5x the year-mean delta.
const driftSpan = 1.5

// Generate simulates all the given regions and returns the aligned
// trace set.
func Generate(regs []regions.Region, cfg Config) (*trace.Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	traces := make([]*trace.Trace, 0, len(regs))
	for _, r := range regs {
		traces = append(traces, simulate(r, cfg, rngFor(r.Code, cfg)))
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("simgrid: no regions given")
	}
	return trace.NewSet(traces)
}

// GenerateAll simulates the full 123-region catalog.
func GenerateAll(cfg Config) (*trace.Set, error) {
	return Generate(regions.All(), cfg)
}

// GenerateRegion simulates a single region.
func GenerateRegion(r regions.Region, cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return simulate(r, cfg, rngFor(r.Code, cfg)), nil
}

// rngFor derives a region's generator from its code and the seed alone,
// so the per-region stream is independent of catalog order and of which
// worker goroutine simulates the region.
func rngFor(code string, cfg Config) *rng.Source {
	return rng.New(cfg.Seed ^ hashCode(code))
}

func hashCode(s string) uint64 {
	// FNV-1a, inlined to keep the package dependency-free.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Greener returns a copy of r with add fraction points of generation
// moved from fossil sources to solar and wind (split in proportion to
// their existing shares, or to solar alone if the region has neither).
// It is the mix transformation behind the §6.3 what-if.
func Greener(r regions.Region, add float64) regions.Region {
	r.Mix = shiftToRenewables(r.Mix, add)
	return r
}

// shiftToRenewables moves `shift` fraction points from fossil to
// solar+wind (negative shift moves the other way). The result is
// clamped so no share goes negative.
func shiftToRenewables(mix regions.Mix, shift float64) regions.Mix {
	if shift > 0 {
		if f := mix.FossilShare(); shift > f {
			shift = f
		}
	} else {
		if rshare := mix.RenewableShare(); -shift > rshare {
			shift = -rshare
		}
	}
	if shift == 0 {
		return mix
	}
	out := mix
	// Remove from the donor side proportionally.
	if shift > 0 {
		f := mix.FossilShare()
		for _, s := range []regions.Source{regions.Coal, regions.Gas, regions.Oil} {
			out[s] -= shift * mix[s] / f
		}
	} else {
		rshare := mix.RenewableShare()
		for _, s := range []regions.Source{regions.Solar, regions.Wind} {
			out[s] += shift * mix[s] / rshare // shift < 0: reduces
		}
	}
	// Add to the receiver side proportionally.
	if shift > 0 {
		rshare := mix.RenewableShare()
		if rshare == 0 {
			out[regions.Solar] += shift
		} else {
			out[regions.Solar] += shift * mix[regions.Solar] / rshare
			out[regions.Wind] += shift * mix[regions.Wind] / rshare
		}
	} else {
		f := mix.FossilShare()
		if f == 0 {
			out[regions.Gas] -= shift
		} else {
			for _, s := range []regions.Source{regions.Coal, regions.Gas, regions.Oil} {
				out[s] -= shift * mix[s] / f
			}
		}
	}
	return out
}

// simulate produces one region's hourly trace.
func simulate(r regions.Region, cfg Config, src *rng.Source) *trace.Trace {
	n := cfg.Hours
	ci := make([]float64, n)
	if n == 0 {
		return trace.New(r.Code, cfg.Start, ci)
	}

	baseMix := r.Mix
	if cfg.ExtraRenewables > 0 {
		baseMix = shiftToRenewables(baseMix, cfg.ExtraRenewables)
	}

	// Pre-generate the stochastic weather processes so they can be
	// normalized to unit mean (keeping annual energy shares on target).
	cloud := cloudSeries(n, src.Split())
	wind := windSeries(n, src.Split())
	irr := irradianceSeries(r, cfg.Start, n, cloud)
	irrMean := mean(irr)
	windMean := mean(wind)

	demandSrc := src.Split()
	half := float64(n-1) / 2
	for h := 0; h < n; h++ {
		ts := cfg.Start.Add(time.Duration(h) * time.Hour)
		d := demandAt(r, ts, demandSrc)

		// Linear mix drift: progress -0.5 at the start of the study,
		// +0.5 at the end, so the catalog mix is the midpoint.
		progress := 0.0
		if n > 1 {
			progress = (float64(h) - half) / float64(n-1)
		}
		mix := shiftToRenewables(baseMix, driftSpan*r.DeltaRenew*progress)

		// Non-dispatchable and must-run generation.
		solar := 0.0
		if irrMean > 0 {
			solar = mix[regions.Solar] * irr[h] / irrMean
		}
		wnd := 0.0
		if windMean > 0 {
			wnd = mix[regions.Wind] * wind[h] / windMean
		}
		coalBase := coalBaseload * mix[regions.Coal]
		baseload := mix[regions.Nuclear] + mix[regions.Geothermal] +
			mix[regions.Biomass] + coalBase

		// Flexible sources share the residual: demand net of must-run
		// and weather-driven generation. Hydro absorbs both demand
		// excursions and renewable shortfalls, which is what keeps
		// hydro-dominated grids (Sweden, Quebec, Norway) at a low,
		// stable intensity.
		residual := d - solar - wnd - baseload
		var hydro, coalFlex, gas, oil float64
		if residual <= 0 {
			// Oversupply: curtail wind first, then solar, then shed
			// must-run coal. Flexible sources stay off.
			excess := -residual
			cut := math.Min(excess, wnd)
			wnd -= cut
			excess -= cut
			cut = math.Min(excess, solar)
			solar -= cut
			excess -= cut
			cut = math.Min(excess, coalBase)
			coalBase -= cut
			baseload -= cut
		} else {
			hydro, coalFlex, gas, oil = dispatchFlexible(mix, residual)
		}
		coal := coalBase + coalFlex

		total := solar + wnd + baseload - coalBase + hydro + coal + gas + oil
		if total <= 0 {
			// Degenerate (zero-demand) hour; carry the mix-weighted
			// average forward.
			ci[h] = mix.NominalCI()
			continue
		}
		em := coal*regions.Coal.EmissionFactor() +
			gas*regions.Gas.EmissionFactor() +
			oil*regions.Oil.EmissionFactor() +
			solar*regions.Solar.EmissionFactor() +
			wnd*regions.Wind.EmissionFactor() +
			hydro*regions.Hydro.EmissionFactor() +
			mix[regions.Nuclear]*regions.Nuclear.EmissionFactor() +
			mix[regions.Geothermal]*regions.Geothermal.EmissionFactor() +
			mix[regions.Biomass]*regions.Biomass.EmissionFactor()
		ci[h] = em / total
	}
	return trace.New(r.Code, cfg.Start, ci)
}

// dispatchFlexible splits the residual demand among the flexible
// sources: hydro, the non-baseload tranche of coal, gas, and oil. Each
// source's target output tilts with the residual level relative to its
// annual share (see the tilt constants), then the outputs are rescaled
// so they sum exactly to the residual, preserving energy balance and
// keeping annual energy shares near the catalog mix.
func dispatchFlexible(mix regions.Mix, residual float64) (hydro, coalFlex, gas, oil float64) {
	hydroShare := mix[regions.Hydro]
	coalFlexShare := (1 - coalBaseload) * mix[regions.Coal]
	flex := hydroShare + coalFlexShare + mix[regions.Gas] + mix[regions.Oil]
	if flex <= 0 {
		// No flexible capacity: the residual is met by (implicit)
		// imports at gas-like intensity so energy still balances.
		return 0, 0, residual, 0
	}
	level := residual / flex // ~1 at average conditions
	hydro = hydroShare * math.Pow(level, hydroTilt)
	coalFlex = coalFlexShare * math.Pow(level, coalFlexTilt)
	gas = mix[regions.Gas] * math.Pow(level, gasTilt)
	oil = mix[regions.Oil] * math.Pow(level, oilTilt)
	sum := hydro + coalFlex + gas + oil
	if sum <= 0 {
		return 0, 0, residual, 0
	}
	scale := residual / sum
	return hydro * scale, coalFlex * scale, gas * scale, oil * scale
}

// demandAt evaluates the demand model (mean 1) for the region at ts.
func demandAt(r regions.Region, ts time.Time, src *rng.Source) float64 {
	localHour := float64(ts.Hour()) + float64(ts.Minute())/60 + r.Lon/15
	doy := float64(ts.YearDay())

	// Two-harmonic diurnal shape peaking in the early evening with a
	// secondary morning shoulder.
	diurnal := 0.8*math.Cos(2*math.Pi*(localHour-17)/24) +
		0.2*math.Cos(4*math.Pi*(localHour-9)/24)

	weekly := 0.3
	if wd := ts.Weekday(); wd == time.Saturday || wd == time.Sunday {
		weekly = -0.75
	}

	// Seasonal demand peaks in local winter, scaled by latitude
	// (tropical grids have flat seasons).
	peakDoy := 15.0
	if r.Lat < 0 {
		peakDoy = 196
	}
	seasonal := math.Cos(2 * math.Pi * (doy - peakDoy) / 365.25)
	latScale := math.Min(1, math.Abs(r.Lat)/50)

	d := 1 +
		diurnalAmp*r.DemandSwing*diurnal +
		weeklyAmp*r.DemandSwing*weekly +
		seasonalAmp*latScale*seasonal +
		src.Norm(0, demandNoise)
	if d < demandFloor {
		d = demandFloor
	}
	return d
}

// irradianceSeries returns the solar capacity-factor shape for the
// region: solar elevation (latitude, declination, local hour) times the
// cloud process.
func irradianceSeries(r regions.Region, start time.Time, n int, cloud []float64) []float64 {
	out := make([]float64, n)
	latRad := r.Lat * math.Pi / 180
	for h := 0; h < n; h++ {
		ts := start.Add(time.Duration(h) * time.Hour)
		doy := float64(ts.YearDay())
		decl := 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*(284+doy)/365.25)
		localHour := float64(ts.Hour()) + r.Lon/15
		hourAngle := (localHour - 12) * 15 * math.Pi / 180
		sinElev := math.Sin(latRad)*math.Sin(decl) +
			math.Cos(latRad)*math.Cos(decl)*math.Cos(hourAngle)
		if sinElev < 0 {
			sinElev = 0
		}
		out[h] = sinElev * cloud[h]
	}
	return out
}

// cloudSeries is a slowly varying attenuation factor in [0.25, 1].
func cloudSeries(n int, src *rng.Source) []float64 {
	out := make([]float64, n)
	x := src.Norm(0, 1)
	const phi = 0.995
	sigma := math.Sqrt(1 - phi*phi)
	for h := 0; h < n; h++ {
		x = phi*x + src.Norm(0, sigma)
		// Map the unit-variance AR(1) through a logistic into the
		// attenuation range.
		out[h] = 0.25 + 0.75/(1+math.Exp(-1.2*x))
	}
	return out
}

// windSeries is an autocorrelated capacity-factor process in (0, 1).
func windSeries(n int, src *rng.Source) []float64 {
	out := make([]float64, n)
	x := src.Norm(0, 1)
	const phi = 0.985
	sigma := math.Sqrt(1 - phi*phi)
	for h := 0; h < n; h++ {
		x = phi*x + src.Norm(0, sigma)
		out[h] = 1 / (1 + math.Exp(-1.1*x))
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
