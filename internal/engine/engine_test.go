package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		out, err := Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
	if _, err := Map(context.Background(), 4, -1, func(_ context.Context, i int) (int, error) {
		return 0, nil
	}); err == nil {
		t.Fatal("negative n accepted")
	}
	if err := ForEach(context.Background(), 4, -1, func(_ context.Context, i int) error {
		return nil
	}); err == nil {
		t.Fatal("negative n accepted by ForEach")
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), workers, 60, func(_ context.Context, i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent cells, bound is %d", p, workers)
	}
}

// The reported error must be the lowest-index failure — what a serial
// loop would have returned — regardless of worker count.
func TestLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(context.Background(), workers, 100, func(_ context.Context, i int) error {
			if i == 7 || i == 60 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 7", workers, err)
		}
	}
}

// A genuine cell error must win over a lower-index cell that fails
// with context.Canceled only because the pool cancelled it.
func TestGenuineErrorBeatsPropagatedCancellation(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(context.Background(), 2, 3, func(ctx context.Context, i int) error {
		switch i {
		case 0:
			// Blocks until cell 2's failure cancels the pool, then
			// reports the propagated cancellation at a lower index.
			<-ctx.Done()
			return ctx.Err()
		case 2:
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the genuine cell error", err)
	}
}

func TestErrorCancelsRemainingCells(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failure must cancel the pool: the vast majority of the 1000
	// cells never start.
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d cells ran despite the failure", n)
	}
}

func TestParentCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEach(ctx, workers, 1000, func(_ context.Context, i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Fatalf("workers=%d: all %d cells ran despite cancellation", workers, n)
		}
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 4, 10, func(_ context.Context, i int) error {
		t.Error("cell ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestNilContext(t *testing.T) {
	out, err := Map(nil, 2, 4, func(ctx context.Context, i int) (int, error) {
		if ctx == nil {
			return 0, errors.New("nil ctx passed to cell")
		}
		return i, nil
	})
	if err != nil || len(out) != 4 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// Concurrent Map calls over a shared accumulator must be safe when the
// caller confines writes to distinct indices (the engine's contract).
func TestConcurrentMaps(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := Map(context.Background(), 4, 32, func(_ context.Context, i int) (int, error) {
				return i, nil
			})
			if err != nil || len(out) != 32 {
				t.Errorf("out=%d err=%v", len(out), err)
			}
		}()
	}
	wg.Wait()
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}
