// Package engine is the repository's concurrent experiment engine: a
// context-aware, bounded worker pool that fans independent cells of an
// experiment — one (region × policy × scenario) combination at a time —
// across goroutines while keeping results byte-identical to a serial
// run.
//
// Determinism is the design constraint everything else bends around:
//
//   - Map writes result i of fn(i) into slot i of the output slice, so
//     the caller's reduction visits results in submission order no
//     matter which worker computed them or when it finished.
//   - On failure the pool reports the error of the *lowest-index*
//     failing cell, which is exactly the error a serial loop would have
//     returned, so error paths are order-invariant too.
//   - Workers claim indices from a shared counter; no cell's work may
//     depend on another cell's side effects. Cells that need randomness
//     take a pre-split rng.Source (see rng.SplitN) chosen by index.
//
// A worker bound of 1 bypasses the pool entirely and runs the plain
// serial loop, which is what the `-workers 1` CLI setting and the
// determinism tests use as the reference.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker bound used when the caller passes 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(ctx, i) for every i in [0, n) on at most `workers`
// goroutines and blocks until all cells finish or one fails. A worker
// bound <= 0 means DefaultWorkers; a bound of 1 runs serially on the
// calling goroutine. The first error — "first" meaning the genuinely
// failing cell with the lowest index, matching what a serial loop
// would report — cancels the context handed to the remaining cells and
// is returned. Cancellation errors (context.Canceled/DeadlineExceeded)
// never displace a genuine cell error; they are returned only when the
// run produced nothing worse, e.g. when the parent context was
// cancelled.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n < 0 {
		return fmt.Errorf("engine: negative cell count %d", n)
	}
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next atomic.Int64
		mu   sync.Mutex
		// Genuine cell errors and cancellation-propagated ones are
		// tracked separately: once a cell fails, the pool cancels the
		// derived context, and still-in-flight lower-index cells may
		// then fail with context.Canceled — which must not displace the
		// real error a serial loop would have reported.
		cellIdx = n
		cellErr error
		ctxErr  error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
		} else if i < cellIdx {
			cellIdx, cellErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if cellErr != nil {
		return cellErr
	}
	return ctxErr
}

// Map runs fn(ctx, i) for every i in [0, n) on at most `workers`
// goroutines and returns the n results in index order. Ordering — and
// therefore any floating-point reduction the caller performs over the
// returned slice — is identical for every worker count. On error the
// partial results are discarded and the lowest-index cell error is
// returned.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("engine: negative cell count %d", n)
	}
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
