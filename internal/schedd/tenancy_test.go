package schedd

// The tenancy proof layer at the service boundary: quota and rate 429s
// with their exact backpressure taxonomy against 503/413, per-tenant
// stats and metrics, weighted-fair service ordering end to end, and —
// because tenant identity rides the fleet image, the journal, and the
// replication stream — crash-recovery and replication equivalence for
// tenant-tagged workloads, including quota-window continuity across a
// recovery and a follower promotion. The sched-level counterpart
// (internal/sched/tenancy_test.go) proves the deterministic scheduling
// properties; this file proves the service wiring around them.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"carbonshift/internal/httpx"
	"carbonshift/internal/sched"
	"carbonshift/internal/tenant"
	"carbonshift/internal/wal"
)

// tenancyConfig is the tenant world most tests here run under: an
// interactive tenant, a default-batch one, a scavenger, a tightly
// quota-limited one, a rate-limited one, and the catch-all for names
// the config does not list.
func tenancyConfig(t testing.TB) *tenant.Config {
	t.Helper()
	cfg, err := tenant.NewConfig([]tenant.Spec{
		{Name: "web", Class: tenant.Interactive, Weight: 2},
		{Name: "batchy"},
		{Name: "spot", Class: tenant.Scavenger},
		{Name: "quotal", QuotaJobsPerHour: 3},
		{Name: "ratey", RatePerSec: 1, Burst: 2},
		{Name: "*"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// tjob is a one-hour CLEAN job for the given tenant with generous
// slack.
func tjob(tenantName string) JobRequest {
	return JobRequest{Origin: "CLEAN", Tenant: tenantName, LengthHours: 1, SlackHours: 48}
}

// wallClock is a settable token-bucket clock for WithGateClock.
type wallClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *wallClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *wallClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// wantStatus requires err to carry the HTTP status code and message
// fragment — the typed-client contract load generators branch on.
func wantStatus(t *testing.T, label string, err error, code int, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: no error, want status %d", label, code)
	}
	if got := httpx.StatusCodeOf(err); got != code {
		t.Fatalf("%s: status %d (%v), want %d", label, got, err, code)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("%s: error %q does not mention %q", label, err, substr)
	}
}

func tenantEntry(t *testing.T, stats StatsResponse, name string) TenantStatsEntry {
	t.Helper()
	for _, e := range stats.Tenants {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("no tenant %q in stats tenants block %+v", name, stats.Tenants)
	return TenantStatsEntry{}
}

// scrapeMetrics fetches /metrics from the client's endpoint.
func scrapeMetrics(t *testing.T, client *Client) string {
	t.Helper()
	resp, err := http.Get(client.Endpoint() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	return string(body)
}

// metricLine finds the series line for name carrying every given
// label pair (order-independent).
func metricLine(body, name string, labels ...string) (string, bool) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		ok := true
		for _, l := range labels {
			if !strings.Contains(line, l) {
				ok = false
				break
			}
		}
		if ok {
			return line, true
		}
	}
	return "", false
}

func metricValue(t *testing.T, body, name string, labels ...string) float64 {
	t.Helper()
	line, ok := metricLine(body, name, labels...)
	if !ok {
		t.Fatalf("no %s series with labels %v in /metrics", name, labels)
	}
	fields := strings.Fields(line)
	v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", line, err)
	}
	return v
}

// TestTenantAdmissionQuota: the per-hour quota rejects the fourth job
// with 429, leaves other tenants untouched, rejects a mixed batch
// atomically, and opens a fresh window when the fleet hour moves.
func TestTenantAdmissionQuota(t *testing.T) {
	_, client, clock := startServer(t, Config{Policy: sched.FIFO{}, Tenants: tenancyConfig(t)}, 4)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := client.Submit(ctx, tjob("quotal")); err != nil {
			t.Fatal(err)
		}
	}
	_, err := client.Submit(ctx, tjob("quotal"))
	wantStatus(t, "4th quotal job", err, http.StatusTooManyRequests, "quota exceeded")

	// Other tenants are unaffected by quotal's exhaustion.
	if _, err := client.Submit(ctx, tjob("web")); err != nil {
		t.Fatal(err)
	}

	// Batch atomicity: one over-quota tenant rejects the whole batch, so
	// the web job riding along is NOT admitted.
	_, err = client.Submit(ctx, tjob("web"), tjob("quotal"))
	wantStatus(t, "mixed batch with over-quota tenant", err, http.StatusTooManyRequests, "quota exceeded")

	// A new fleet hour opens a fresh quota window.
	clock.hour.Store(1)
	if _, err := client.Submit(ctx, tjob("quotal")); err != nil {
		t.Fatalf("quotal after hour advance: %v", err)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if e := tenantEntry(t, stats, "quotal"); e.Submitted != 4 || e.Class != tenant.Batch || e.Weight != 1 {
		t.Fatalf("quotal entry = %+v", e)
	}
	if e := tenantEntry(t, stats, "web"); e.Submitted != 1 || e.Class != tenant.Interactive || e.Weight != 2 {
		t.Fatalf("web entry = %+v", e)
	}
	// The config echo carries the normalized registry (the follower's
	// cmd/schedd rebuilds its tenant world from exactly this).
	if _, err := tenant.NewConfig(stats.TenantConfig); err != nil {
		t.Fatalf("stats tenant_config does not round-trip: %v", err)
	}
	var quotalSpec *tenant.Spec
	for i := range stats.TenantConfig {
		if stats.TenantConfig[i].Name == "quotal" {
			quotalSpec = &stats.TenantConfig[i]
		}
	}
	if quotalSpec == nil || quotalSpec.Class != tenant.Batch || quotalSpec.Weight != 1 || quotalSpec.QuotaJobsPerHour != 3 {
		t.Fatalf("echoed quotal spec = %+v", quotalSpec)
	}
}

// TestTenantRateLimit: the wall-clock token bucket rejects past the
// burst with 429 and refills on the injected gate clock — which is
// independent of the replay clock, so the fleet hour never moves here.
func TestTenantRateLimit(t *testing.T) {
	wc := &wallClock{t: t0}
	_, client, _ := startServer(t, Config{Policy: sched.FIFO{}, Tenants: tenancyConfig(t)}, 4,
		WithGateClock(wc.now))
	ctx := context.Background()

	for i := 0; i < 2; i++ { // burst 2
		if _, err := client.Submit(ctx, tjob("ratey")); err != nil {
			t.Fatal(err)
		}
	}
	_, err := client.Submit(ctx, tjob("ratey"))
	wantStatus(t, "past-burst ratey job", err, http.StatusTooManyRequests, "rate limited")

	if _, err := client.Submit(ctx, tjob("web")); err != nil {
		t.Fatalf("web during ratey rejection: %v", err)
	}

	// 1.5 seconds at 1 token/s refills past one token.
	wc.advance(1500 * time.Millisecond)
	if _, err := client.Submit(ctx, tjob("ratey")); err != nil {
		t.Fatalf("ratey after refill: %v", err)
	}
	_, err = client.Submit(ctx, tjob("ratey"))
	wantStatus(t, "ratey again with 0.5 tokens", err, http.StatusTooManyRequests, "rate limited")

	body := scrapeMetrics(t, client)
	if v := metricValue(t, body, "schedd_tenant_rejected_total", `tenant="ratey"`, `reason="rate"`); v != 2 {
		t.Fatalf("schedd_tenant_rejected_total{ratey,rate} = %v, want 2", v)
	}
	if v := metricValue(t, body, "schedd_backpressure_total", `reason="rate"`); v != 2 {
		t.Fatalf("schedd_backpressure_total{rate} = %v, want 2", v)
	}
}

// TestBackpressureStatusTaxonomy pins the full rejection taxonomy —
// 429 quota, 429 rate, 503 capacity, 413 oversize — across both wire
// protocols and both typed clients, each carrying the status as a
// typed httpx.StatusError.
func TestBackpressureStatusTaxonomy(t *testing.T) {
	tcfg, err := tenant.NewConfig([]tenant.Spec{
		{Name: "q", QuotaJobsPerHour: 1},
		{Name: "r", RatePerSec: 0.001, Burst: 1},
		{Name: "*"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, single, _ := startServer(t, Config{Policy: sched.FIFO{}, MaxQueue: 4, Tenants: tcfg}, 1)
	fo, err := NewFailoverClient([]string{single.Endpoint()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	combos := []struct {
		name   string
		binary bool
		submit func(context.Context, ...JobRequest) (SubmitResponse, error)
	}{
		{"json/single", false, single.Submit},
		{"json/failover", false, fo.Submit},
		{"binary/single", true, single.SubmitBatch},
		{"binary/failover", true, fo.SubmitBatch},
	}

	// Quota: one admission consumes q's whole hourly window.
	if _, err := single.Submit(ctx, tjob("q")); err != nil {
		t.Fatal(err)
	}
	for _, c := range combos {
		_, err := c.submit(ctx, tjob("q"))
		wantStatus(t, c.name+" quota", err, http.StatusTooManyRequests, "quota exceeded")
	}

	// Rate: one admission drains r's single-token bucket; the refill at
	// 0.001/s is negligible for the test's lifetime.
	if _, err := single.Submit(ctx, tjob("r")); err != nil {
		t.Fatal(err)
	}
	for _, c := range combos {
		_, err := c.submit(ctx, tjob("r"))
		wantStatus(t, c.name+" rate", err, http.StatusTooManyRequests, "rate limited")
	}

	// Capacity: fill the queue to MaxQueue with an unlimited tenant —
	// 503 is the shared-capacity answer, distinct from the per-tenant
	// 429s above (and checked after them, since the bound check runs
	// before the gate).
	if _, err := single.Submit(ctx, tjob("cap"), tjob("cap")); err != nil {
		t.Fatal(err)
	}
	for _, c := range combos {
		_, err := c.submit(ctx, tjob("cap"))
		wantStatus(t, c.name+" capacity", err, http.StatusServiceUnavailable, "queue full")
	}

	// Oversize: a request body past httpx.MaxBody is 413 on both
	// protocols. The binary frame declares its payload length up front,
	// so the oversize origin is sized to keep the declared payload under
	// the limit while the whole frame (13-byte header included) exceeds
	// it — the read hits MaxBytesReader, not the frame validator.
	hugeJSON := JobRequest{Origin: strings.Repeat("x", httpx.MaxBody), LengthHours: 1}
	hugeBin := JobRequest{Origin: strings.Repeat("x", httpx.MaxBody-8), LengthHours: 1}
	for _, c := range combos {
		jr := hugeJSON
		if c.binary {
			jr = hugeBin
		}
		_, err := c.submit(ctx, jr)
		wantStatus(t, c.name+" oversize", err, http.StatusRequestEntityTooLarge, "exceeds")
	}

	body := scrapeMetrics(t, single)
	for _, reason := range []string{"quota", "rate", "queue_full", "oversize"} {
		if v := metricValue(t, body, "schedd_backpressure_total", `reason="`+reason+`"`); v < 4 {
			t.Fatalf("schedd_backpressure_total{%s} = %v, want >= 4", reason, v)
		}
	}
}

// TestRetryAfterHints pins the Retry-After contract: every 429 and 503
// carries a hint — in the Retry-After header and as the JSON body's
// retry_after field, which is what survives proxies and typed clients —
// sized to when a retry could actually succeed. 413 carries none: an
// oversized body never fits by waiting.
func TestRetryAfterHints(t *testing.T) {
	tcfg, err := tenant.NewConfig([]tenant.Spec{
		{Name: "q", QuotaJobsPerHour: 1},
		{Name: "r", RatePerSec: 0.001, Burst: 1},
		{Name: "*"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wc := &wallClock{t: t0}
	_, client, _ := startServer(t, Config{Policy: sched.FIFO{}, MaxQueue: 4, Tenants: tcfg}, 1,
		WithGateClock(wc.now))
	ctx := context.Background()

	// Rate: r's bucket holds one token; refilling the next one at
	// 0.001/s takes exactly 1000 seconds. Both wire protocols carry the
	// same hint.
	if _, err := client.Submit(ctx, tjob("r")); err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(ctx, tjob("r"))
	wantStatus(t, "rate rejection", err, http.StatusTooManyRequests, "rate limited")
	if got := httpx.RetryAfterOf(err); got != 1000 {
		t.Fatalf("rate Retry-After = %d, want the 1000s token deficit", got)
	}
	_, err = client.SubmitBatch(ctx, tjob("r"))
	wantStatus(t, "binary rate rejection", err, http.StatusTooManyRequests, "rate limited")
	if got := httpx.RetryAfterOf(err); got != 1000 {
		t.Fatalf("binary rate Retry-After = %d, want 1000", got)
	}

	// Quota: q's window reopens with the next fleet hour. The replay
	// clock sits exactly on an hour boundary and Speedup defaults to 1,
	// so the hint is the full hour in wall seconds.
	if _, err := client.Submit(ctx, tjob("q")); err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(ctx, tjob("q"))
	wantStatus(t, "quota rejection", err, http.StatusTooManyRequests, "quota exceeded")
	if got := httpx.RetryAfterOf(err); got != 3600 {
		t.Fatalf("quota Retry-After = %d, want 3600 (remainder of the fleet hour)", got)
	}
	// The hint also rides the standard HTTP header for generic clients.
	resp, err := http.Post(client.Endpoint()+"/v1/jobs", "application/json",
		strings.NewReader(`{"origin":"CLEAN","tenant":"q","length_hours":1,"slack_hours":48}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "3600" {
		t.Fatalf("raw quota rejection: status %d, Retry-After header %q, want 429 / 3600",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Capacity: the queue drains as soon as the fleet steps, so the
	// 503 hint is the minimum — retry in a second.
	if _, err := client.Submit(ctx, tjob("cap"), tjob("cap")); err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(ctx, tjob("cap"))
	wantStatus(t, "capacity rejection", err, http.StatusServiceUnavailable, "queue full")
	if got := httpx.RetryAfterOf(err); got != 1 {
		t.Fatalf("queue-full Retry-After = %d, want 1", got)
	}

	// Oversize: no hint — waiting cannot shrink the request.
	_, err = client.Submit(ctx, JobRequest{Origin: strings.Repeat("x", httpx.MaxBody), LengthHours: 1})
	wantStatus(t, "oversize rejection", err, http.StatusRequestEntityTooLarge, "exceeds")
	if got := httpx.RetryAfterOf(err); got != 0 {
		t.Fatalf("413 Retry-After = %d, want none", got)
	}

	// Speedup scales the quota hint: at 3600x replay, the hour's
	// remainder is one wall second.
	_, fast, _ := startServer(t, Config{Policy: sched.FIFO{}, Tenants: tcfg, Speedup: 3600}, 1)
	if _, err := fast.Submit(ctx, tjob("q")); err != nil {
		t.Fatal(err)
	}
	_, err = fast.Submit(ctx, tjob("q"))
	wantStatus(t, "sped-up quota rejection", err, http.StatusTooManyRequests, "quota exceeded")
	if got := httpx.RetryAfterOf(err); got != 1 {
		t.Fatalf("quota Retry-After at 3600x = %d, want 1", got)
	}
}

// TestTenantMetricsExposition: /metrics carries the per-tenant
// families, aggregates unlisted tenants under the bounded "other"
// label, and attributes migration carbon savings to the owning tenant.
func TestTenantMetricsExposition(t *testing.T) {
	_, client, clock := startServer(t, Config{Policy: sched.GreenestFirst{}, Tenants: tenancyConfig(t)}, 8)
	ctx := context.Background()

	// web's migratable DIRTY job is routed to CLEAN by GreenestFirst, so
	// its carbon savings land on the web tenant.
	if _, err := client.Submit(ctx, JobRequest{
		Origin: "DIRTY", Tenant: "web", LengthHours: 2, SlackHours: 12, Migratable: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(ctx, tjob("batchy")); err != nil {
		t.Fatal(err)
	}
	// Two unlisted tenants must SUM into "other", not overwrite it.
	if _, err := client.Submit(ctx, tjob("mystery"), tjob("enigma")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Submit(ctx, tjob("quotal")); err != nil {
			t.Fatal(err)
		}
	}
	_, err := client.Submit(ctx, tjob("quotal"))
	wantStatus(t, "over-quota quotal", err, http.StatusTooManyRequests, "quota exceeded")

	clock.hour.Store(6)
	body := scrapeMetrics(t, client)

	if v := metricValue(t, body, "schedd_tenant_jobs_submitted", `tenant="web"`); v != 1 {
		t.Fatalf(`schedd_tenant_jobs_submitted{web} = %v, want 1`, v)
	}
	if v := metricValue(t, body, "schedd_tenant_jobs_submitted", `tenant="other"`); v != 2 {
		t.Fatalf(`schedd_tenant_jobs_submitted{other} = %v, want 2 (mystery+enigma)`, v)
	}
	if v := metricValue(t, body, "schedd_tenant_jobs_completed", `tenant="quotal"`); v != 3 {
		t.Fatalf(`schedd_tenant_jobs_completed{quotal} = %v, want 3`, v)
	}
	if v := metricValue(t, body, "schedd_tenant_rejected_total", `tenant="quotal"`, `reason="quota"`); v != 1 {
		t.Fatalf(`schedd_tenant_rejected_total{quotal,quota} = %v, want 1`, v)
	}
	if v := metricValue(t, body, "schedd_tenant_carbon_saved_grams", `tenant="web"`); v <= 0 {
		t.Fatalf(`schedd_tenant_carbon_saved_grams{web} = %v, want > 0`, v)
	}
	if v := metricValue(t, body, "schedd_tenant_slot_hours", `tenant="web"`); v != 2 {
		t.Fatalf(`schedd_tenant_slot_hours{web} = %v, want 2`, v)
	}
}

// TestTenantClassServiceOrdering: with one usable slot and 200:1
// effective weights, every interactive job finishes before any
// scavenger job starts — and the scavenger still drains afterwards
// (starvation-freedom end to end).
func TestTenantClassServiceOrdering(t *testing.T) {
	_, client, clock := startServer(t, Config{Policy: sched.FIFO{}, Tenants: tenancyConfig(t)}, 1)
	ctx := context.Background()

	var batch []JobRequest
	for i := 0; i < 6; i++ {
		batch = append(batch, JobRequest{Origin: "CLEAN", Tenant: "spot", LengthHours: 1, SlackHours: 200})
	}
	for i := 0; i < 6; i++ {
		batch = append(batch, JobRequest{Origin: "CLEAN", Tenant: "web", LengthHours: 1, SlackHours: 200})
	}
	// Scavenger jobs are submitted FIRST: only the fair queue, never
	// submission order, can explain web finishing before spot.
	if _, err := client.Submit(ctx, batch...); err != nil {
		t.Fatal(err)
	}

	clock.hour.Store(6)
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if web, spot := tenantEntry(t, stats, "web"), tenantEntry(t, stats, "spot"); web.Completed != 6 || spot.Completed != 0 {
		t.Fatalf("after 6 slot-hours: web completed %d (want 6), spot completed %d (want 0)",
			web.Completed, spot.Completed)
	}
	clock.hour.Store(12)
	stats, err = client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if spot := tenantEntry(t, stats, "spot"); spot.Completed != 6 || spot.Missed != 0 {
		t.Fatalf("scavenger starved: %+v", spot)
	}
}

// tenantCrashJobs is the crash-harness workload with tenant identity
// threaded through: a deterministic mix of the configured tenants, the
// default (untagged) tenant, and an unlisted name that resolves
// through the catch-all.
func tenantCrashJobs(t testing.TB) []sched.Job {
	jobs := crashJobs(t)
	names := []string{"", "web", "batchy", "spot", "mystery"}
	for i := range jobs {
		jobs[i].Tenant = names[jobs[i].ID%len(names)]
	}
	return jobs
}

// TestTenantCrashRecoveryEquivalence: cutting the journal of a
// tenant-configured server anywhere and recovering yields placements,
// Result, and serialized state (tenants, fair-queue passes, and all)
// byte-identical to the run that never crashed. Snapshots rotate
// mid-run, so cuts recover through a tenancy-bearing snapshot restore
// plus journal-tail replay.
func TestTenantCrashRecoveryEquivalence(t *testing.T) {
	jobs := tenantCrashJobs(t)
	mkCfg := func() Config {
		cfg := crashConfig(sched.SpatioTemporal{Percentile: 40, Window: 48}, 30)
		cfg.Tenants = tenancyConfig(t)
		return cfg
	}
	refDir := t.TempDir()
	ref := driveReference(t, refDir, mkCfg(), jobs)
	bounds := recordBoundaries(t, latestJournal(t, refDir))
	size := bounds[len(bounds)-1]

	cutSet := map[int64]bool{
		0: true, 1: true, size - 1: true, size: true,
		size / 5: true, size / 2: true,
		bounds[len(bounds)/2]:     true,
		bounds[len(bounds)/3] + 3: true, // torn mid-record
	}
	var cuts []int64
	for c := range cutSet {
		if c >= 0 && c <= size {
			cuts = append(cuts, c)
		}
	}
	sort.Slice(cuts, func(a, b int) bool { return cuts[a] < cuts[b] })

	sawSnapshotRestore := false
	for _, cut := range cuts {
		dir := copyDirWithCut(t, refDir, cut)
		got := recoverAndFinish(t, dir, mkCfg(), jobs)
		assertRunsEqual(t, ref, got, fmt.Sprintf("tenant cut at byte %d/%d", cut, size))
		if !got.recovery.Recovered {
			t.Fatalf("cut at %d: boot did not report recovery", cut)
		}
		if got.recovery.RecoveredSnapshotHour > 0 {
			sawSnapshotRestore = true
		}
	}
	if !sawSnapshotRestore {
		t.Error("no cut exercised a tenancy-bearing snapshot restore")
	}
}

// TestTenantQuotaRecoveryContinuity: a rebooted server rebuilds the
// quota windows from the recovered fleet's arrivals, so a tenant that
// exhausted its hour before the shutdown is still rejected right after
// recovery — no free window from restarting the process.
func TestTenantQuotaRecoveryContinuity(t *testing.T) {
	dir := t.TempDir()
	mkCfg := func() Config {
		return Config{
			Policy: sched.FIFO{}, Horizon: 48, Shards: 2,
			DataDir: dir, Sync: wal.SyncNone, Tenants: tenancyConfig(t),
		}
	}
	ctx := context.Background()

	clock := &hourClock{}
	srv, err := New(mkSet(t, 48), clusters(4), mkCfg(), WithClock(clock.now))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Submit(ctx, tjob("quotal")); err != nil {
			t.Fatal(err)
		}
	}
	_, err = client.Submit(ctx, tjob("quotal"))
	wantStatus(t, "pre-shutdown over-quota", err, http.StatusTooManyRequests, "quota exceeded")
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	clock2 := &hourClock{}
	srv2, err := New(mkSet(t, 48), clusters(4), mkCfg(), WithClock(clock2.now))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2, err := NewClient(ts2.URL, ts2.Client())
	if err != nil {
		t.Fatal(err)
	}
	// Same hour, rebuilt window: still exhausted.
	_, err = client2.Submit(ctx, tjob("quotal"))
	wantStatus(t, "post-recovery over-quota", err, http.StatusTooManyRequests, "quota exceeded")
	// Other tenants were never blocked.
	if _, err := client2.Submit(ctx, tjob("web")); err != nil {
		t.Fatal(err)
	}
	// The next hour opens a fresh window as usual.
	clock2.hour.Store(1)
	if _, err := client2.Submit(ctx, tjob("quotal")); err != nil {
		t.Fatalf("quotal after hour advance: %v", err)
	}
}

// TestTenantReplicationEquivalence: a follower of a tenant-configured
// primary converges to byte-identical fleet state — tenant identity,
// fair-queue virtual time, and per-tenant accounting included — across
// mismatched shard counts.
func TestTenantReplicationEquivalence(t *testing.T) {
	jobs := tenantCrashJobs(t)
	policy := sched.CarbonGate{Percentile: 40, Window: 48}
	for _, tc := range []struct{ pShards, fShards int }{{2, 1}, {1, 4}} {
		t.Run(fmt.Sprintf("primary%d-follower%d", tc.pShards, tc.fShards), func(t *testing.T) {
			pclock := &hourClock{}
			primary, err := New(mkSet(t, crashHorizon), clusters(crashSlots), Config{
				Policy: policy, Horizon: crashHorizon, Shards: tc.pShards,
				DataDir: t.TempDir(), SnapshotEvery: 30, Sync: wal.SyncNone,
				Tenants: tenancyConfig(t),
			}, WithClock(pclock.now))
			if err != nil {
				t.Fatal(err)
			}
			defer primary.Close()
			primary.source.Poll = 200 * time.Microsecond
			ts := httptest.NewServer(primary.Handler())
			defer ts.Close()
			client, err := NewClient(ts.URL, ts.Client())
			if err != nil {
				t.Fatal(err)
			}
			follower, err := NewFollower(mkSet(t, crashHorizon), clusters(crashSlots), Config{
				Policy: policy, Horizon: crashHorizon, Shards: tc.fShards,
				Tenants: tenancyConfig(t),
			}, FollowerConfig{Primary: ts.URL, HTTPClient: ts.Client(), ReconnectDelay: 2 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer follower.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			follower.Start(ctx)

			next := 0
			for hour := 0; hour < crashHorizon; hour++ {
				pclock.hour.Store(int64(hour))
				if _, err := client.Stats(context.Background()); err != nil {
					t.Fatal(err)
				}
				lo := next
				for next < len(jobs) && jobs[next].Arrival == hour {
					next++
				}
				submitAt(t, client, hour, jobs[lo:next])
			}
			waitUntil(t, "follower catch-up", func() bool {
				return follower.fleet.Hour() == crashHorizon-1 && follower.fleet.Jobs() == len(jobs)
			})
			want, err := primary.fleet.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			got, err := follower.fleet.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("tenant-tagged follower state is not byte-identical to the primary")
			}
			if fs, ps := follower.fleet.TenantStats(), primary.fleet.TenantStats(); !reflect.DeepEqual(fs, ps) {
				t.Fatalf("per-tenant stats diverge:\nfollower: %+v\nprimary:  %+v", fs, ps)
			}
		})
	}
}

// TestTenantPromotionQuotaContinuity: a promoted follower rebuilds the
// quota windows from the replicated arrivals — a failover must not
// grant every tenant a fresh hour.
func TestTenantPromotionQuotaContinuity(t *testing.T) {
	pclock := &hourClock{}
	primary, err := New(mkSet(t, 48), clusters(4), Config{
		Policy: sched.FIFO{}, Horizon: 48, Shards: 2,
		DataDir: t.TempDir(), Sync: wal.SyncNone, Tenants: tenancyConfig(t),
	}, WithClock(pclock.now))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.source.Poll = 200 * time.Microsecond
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	fclock := &hourClock{}
	follower, err := NewFollower(mkSet(t, 48), clusters(4), Config{
		Policy: sched.FIFO{}, Horizon: 48, Shards: 2, Tenants: tenancyConfig(t),
	}, FollowerConfig{
		Primary: ts.URL, HTTPClient: ts.Client(), ReconnectDelay: 2 * time.Millisecond,
	}, WithClock(fclock.now))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	follower.Start(fctx)

	for i := 0; i < 3; i++ {
		if _, err := client.Submit(ctx, tjob("quotal")); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "replication of the quota-exhausting admissions", func() bool {
		return follower.fleet.Jobs() == 3
	})
	promoted, err := follower.Promote()
	if err != nil || !promoted {
		t.Fatalf("promote = %v, %v", promoted, err)
	}

	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()
	fclient, err := NewClient(fts.URL, fts.Client())
	if err != nil {
		t.Fatal(err)
	}
	// Same hour on the new primary: quotal's window is already spent.
	_, err = fclient.Submit(ctx, tjob("quotal"))
	wantStatus(t, "post-promotion over-quota", err, http.StatusTooManyRequests, "quota exceeded")
	if _, err := fclient.Submit(ctx, tjob("web")); err != nil {
		t.Fatalf("web on promoted primary: %v", err)
	}
	fclock.hour.Store(1)
	if _, err := fclient.Submit(ctx, tjob("quotal")); err != nil {
		t.Fatalf("quotal on promoted primary after hour advance: %v", err)
	}
}

// TestTenantIsolationChaos: concurrent submitters for four tenants —
// one of them abusive, over both wire protocols — leave the
// well-behaved tenants completely untouched: every one of their
// submissions is admitted, while the abusive tenant gets exactly its
// quota and nothing more. Run under -race in CI, this also exercises
// the gate/fleet locking.
func TestTenantIsolationChaos(t *testing.T) {
	_, client, clock := startServer(t, Config{Policy: sched.FIFO{}, Shards: 4, Tenants: tenancyConfig(t)}, 200)
	ctx := context.Background()

	const workersPerTenant, jobsPerWorker = 3, 10
	type outcome struct {
		tenant string
		err    error
	}
	results := make(chan outcome, 4*workersPerTenant*jobsPerWorker)
	var wg sync.WaitGroup
	for _, name := range []string{"web", "batchy", "spot", "quotal"} {
		for w := 0; w < workersPerTenant; w++ {
			wg.Add(1)
			go func(name string, w int) {
				defer wg.Done()
				for i := 0; i < jobsPerWorker; i++ {
					submit := client.Submit
					if (w+i)%2 == 1 {
						submit = client.SubmitBatch
					}
					_, err := submit(ctx, tjob(name))
					results <- outcome{name, err}
				}
			}(name, w)
		}
	}
	wg.Wait()
	close(results)

	admitted := map[string]int{}
	rejected := map[string]int{}
	for r := range results {
		if r.err == nil {
			admitted[r.tenant]++
			continue
		}
		if r.tenant != "quotal" {
			t.Fatalf("well-behaved tenant %q rejected: %v", r.tenant, r.err)
		}
		wantStatus(t, "abusive tenant rejection", r.err, http.StatusTooManyRequests, "quota exceeded")
		rejected[r.tenant]++
	}
	total := workersPerTenant * jobsPerWorker
	for _, name := range []string{"web", "batchy", "spot"} {
		if admitted[name] != total {
			t.Fatalf("tenant %q: %d/%d admitted", name, admitted[name], total)
		}
	}
	if admitted["quotal"] != 3 || rejected["quotal"] != total-3 {
		t.Fatalf("abusive tenant: %d admitted, %d rejected; want exactly the quota of 3 admitted",
			admitted["quotal"], rejected["quotal"])
	}

	clock.hour.Store(5)
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"web", "batchy", "spot"} {
		if e := tenantEntry(t, stats, name); e.Submitted != total || e.Completed != total {
			t.Fatalf("tenant %q entry = %+v", name, e)
		}
	}
	if e := tenantEntry(t, stats, "quotal"); e.Submitted != 3 {
		t.Fatalf("quotal entry = %+v", e)
	}
}
