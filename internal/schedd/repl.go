package schedd

// The replication face of the server, both directions.
//
// As a primary, a journaling Server implements repl.Backend: the
// stream source reads journal files by generation and byte offset, the
// live journal's buffer is flushed on demand (no fsync — replication
// rides the durability the journal already provides), and the
// bootstrap snapshot is the newest on-disk one, which by the rotation
// invariant is exactly the state at the start of the current
// generation's journal.
//
// As a follower, the Server implements repl.Applier: a snapshot
// bootstrap replaces the whole fleet image, then journal records apply
// strictly in stream order — admits step the fleet to their stamped
// arrival hour and submit, watermarks step the fleet forward — which
// reproduces the primary's fleet-event order exactly, because the
// primary buffers both record types under admitMu (see durable.go).
// The replication equivalence test pins the consequence: at every
// shared watermark the follower's Marshal image is byte-identical to
// the primary's.
//
// Promotion turns a follower into a primary in place: stop the tail,
// take an exclusive flock on the follower's own data dir, snapshot the
// replicated state as a fresh generation, and start accepting writes.
// The 421 write-redirect contract (see client.go) points writers at
// whoever is primary.

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"carbonshift/internal/repl"
	"carbonshift/internal/tracing"
	"carbonshift/internal/wal"
)

// Server roles. A server is born primary (New) or follower
// (NewFollower); the only transition is follower → primary, at
// promotion.
const (
	rolePrimary int32 = iota
	roleFollower
)

func (s *Server) isFollower() bool { return s.role.Load() == roleFollower }

// Role reports "primary" or "follower".
func (s *Server) Role() string {
	if s.isFollower() {
		return "follower"
	}
	return "primary"
}

// --- repl.Backend (primary side) ---

// Generation returns the live snapshot+journal generation — the
// replication Backend hook (0 without a DataDir).
func (s *Server) Generation() uint64 {
	d := s.dur.Load()
	if d == nil {
		return 0
	}
	return d.gen.Load()
}

// JournalPath returns one generation's journal file path — the
// replication Backend hook ("" without a DataDir).
func (s *Server) JournalPath(gen uint64) string {
	d := s.dur.Load()
	if d == nil {
		return ""
	}
	return d.store.JournalPath(gen)
}

// FlushJournal pushes the live journal's buffered records into its
// file so the replication stream can read them; it never forces an
// fsync — followers replicate acknowledged records at the durability
// the journal's own sync discipline provides.
func (s *Server) FlushJournal() {
	if j := s.liveJournal(); j != nil {
		j.Flush()
	}
}

// SnapshotLatest returns the newest on-disk snapshot for follower
// bootstrap. A rotation can remove the file between listing and
// reading, so a failed read is retried against the fresh directory
// state rather than surfacing a transient error to the follower.
func (s *Server) SnapshotLatest() (uint64, []byte, error) {
	d := s.dur.Load()
	if d == nil {
		return 0, nil, errors.New("schedd: no data dir")
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		gen, payload, err := d.store.LatestSnapshot()
		if err == nil && gen > 0 {
			return gen, payload, nil
		}
		if err == nil {
			err = errors.New("schedd: no snapshot on disk yet")
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
	return 0, nil, lastErr
}

// --- repl.Applier (follower side) ---

// RestoreReplSnapshot replaces the follower's entire state with a
// primary snapshot — the bootstrap half of the replication Applier.
func (s *Server) RestoreReplSnapshot(payload []byte) error {
	nextID, fleetImg, err := decodeServerSnapshot(payload)
	if err != nil {
		return fmt.Errorf("schedd: replication snapshot: %w", err)
	}
	if err := s.fleet.Unmarshal(fleetImg); err != nil {
		return fmt.Errorf("schedd: replication snapshot: %w", err)
	}
	s.nextID = nextID
	s.known.Store(int64(s.fleet.Hour()))
	return nil
}

// ApplyReplRecord applies one streamed journal record, strictly in
// stream order: an admit record steps the fleet to its stamped arrival
// hour and submits the batch; a watermark steps the fleet to that
// hour. Journal order equals fleet-event order on the primary, so this
// replays the primary's exact history (the equivalence the replication
// tests assert byte-for-byte). Exported for the tailer and the
// follower-apply benchmark; the caller serializes invocations.
func (s *Server) ApplyReplRecord(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("schedd: empty replication record")
	}
	switch payload[0] {
	case recAdmit:
		arrival, next, jobs, tid, err := decodeAdmit(payload)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := s.stepFleetTo(arrival); err != nil {
			return err
		}
		if err := s.fleet.Submit(jobs...); err != nil {
			return err
		}
		s.nextID = next
		// A record that carried the primary's sampled trace ID joins
		// that trace here: the apply span lands in THIS server's ring
		// under the SAME trace ID — one trace, two processes.
		s.tr.Record(tid, "repl.apply", tracing.SpanID{}, start, time.Since(start),
			tracing.Int("jobs", len(jobs)), tracing.Int("arrival_hour", arrival))
	case recWatermark:
		hour, err := decodeWatermark(payload)
		if err != nil {
			return err
		}
		if err := s.stepFleetTo(hour); err != nil {
			return err
		}
		if s.fol != nil && s.fol.cfg.OnWatermark != nil {
			s.fol.cfg.OnWatermark(hour)
		}
	default:
		return fmt.Errorf("schedd: unknown replication record type %d", payload[0])
	}
	if h := int64(s.fleet.Hour()); h > s.known.Load() {
		s.known.Store(h)
	}
	return nil
}

// --- promotion ---

// Promote turns a follower into the primary: the tail stops, the
// follower's own DataDir (when configured) is opened under an
// exclusive flock and the replicated state is snapshotted there as a
// fresh generation, and the server starts accepting writes — including
// serving the replication endpoints to the next generation of
// followers. Idempotent: promoting a primary reports false with no
// error. On failure the server resumes following, so a misconfigured
// promotion never silently stops replication.
func (s *Server) Promote() (bool, error) {
	if s.fol == nil {
		return false, nil // born primary
	}
	s.fol.promoteMu.Lock()
	defer s.fol.promoteMu.Unlock()
	if !s.isFollower() {
		return false, nil // already promoted
	}
	s.stopTail()
	if s.cfg.DataDir != "" {
		if err := s.openPromotedDurable(); err != nil {
			s.resumeTail()
			return false, err
		}
	}
	// Lineage: the promoted state was recovered over the wire rather
	// than from a local journal, but it is a recovery all the same, and
	// /v1/stats reports it as one.
	s.recovery.Store(&DurabilityStats{
		Recovered:             true,
		RecoveredSnapshotHour: s.fleet.Hour(),
		RecoveredJobs:         s.fleet.Jobs(),
	})
	s.known.Store(int64(s.fleet.Hour()))
	// Quota windows continue from the replicated arrivals — a promoted
	// primary must not grant every tenant a fresh hour.
	s.resetGate()
	// Rebase the clock (onPromote) BEFORE the role flips: the moment
	// role reads primary, concurrent requests drive advance() off the
	// clock, and an un-rebased one would step the fleet far past the
	// replicated hour.
	if s.onPromote != nil {
		s.onPromote(s.fleet.Hour())
	}
	s.role.Store(rolePrimary)
	return true, nil
}

// openPromotedDurable opens the follower's own data dir as a primary
// store without recovering from it: the authoritative state is what
// replication built in memory, and it is snapshotted as the next
// generation past anything the directory already holds (which is then
// garbage-collected). A directory whose existing snapshots are all
// unreadable fails the promotion — silently burying it could discard
// an operator's only copy of something.
func (s *Server) openPromotedDurable() error {
	store, err := wal.OpenStore(s.cfg.DataDir)
	if err != nil {
		return err
	}
	gen, _, err := store.LatestSnapshot()
	if err != nil {
		store.Close()
		return fmt.Errorf("schedd: promote into %s: %w", s.cfg.DataDir, err)
	}
	opts := wal.Options{Sync: s.cfg.Sync, BatchInterval: s.cfg.SyncInterval, Trace: s.tr}
	if s.mx != nil {
		opts.Metrics = s.mx.wal
	}
	d := &durable{store: store, opts: opts}
	d.gen.Store(gen)
	// The source is installed before dur becomes visible: handlers gate
	// on the dur atomic, so whoever observes it non-nil also sees the
	// source.
	s.source = repl.NewSource(s)
	s.dur.Store(d)
	if err := s.rotateGeneration(); err != nil {
		s.dur.Store(nil)
		store.Close()
		return err
	}
	return nil
}

// --- HTTP endpoints ---

// writeMisdirected is the 421 write-redirect contract: a follower
// rejects state-changing requests and names the primary it follows so
// a failover-aware client (httpx.Endpoints) can redirect.
func (s *Server) writeMisdirected(w http.ResponseWriter) {
	writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{
		Error:   "this instance is a read-only follower; send writes to the primary",
		Primary: s.fol.cfg.Primary,
	})
}

func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	src := s.replSourceIfPrimary(w)
	if src != nil {
		src.HandleStream(w, r)
	}
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	src := s.replSourceIfPrimary(w)
	if src != nil {
		src.HandleSnapshot(w, r)
	}
}

// replSourceIfPrimary gates the source endpoints: followers redirect
// (chained replication is not supported), and a primary without a
// DataDir has no journal to stream.
func (s *Server) replSourceIfPrimary(w http.ResponseWriter) *repl.Source {
	if s.isFollower() {
		s.writeMisdirected(w)
		return nil
	}
	if s.dur.Load() == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "replication requires a -data-dir on the primary"})
		return nil
	}
	return s.source
}

// PromoteResponse is the POST /v1/repl/promote payload.
type PromoteResponse struct {
	// Promoted reports whether this call performed the transition
	// (false when the server already was primary).
	Promoted bool   `json:"promoted"`
	Role     string `json:"role"`
	Hour     int    `json:"hour"`
	Jobs     int    `json:"jobs"`
}

func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	promoted, err := s.Promote()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{
		Promoted: promoted,
		Role:     s.Role(),
		Hour:     s.fleet.Hour(),
		Jobs:     s.fleet.Jobs(),
	})
}

// --- monitoring ---

// ReplicationStats is the /v1/stats view of the replication session.
type ReplicationStats struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Primary is the followed (or, after promotion, formerly followed)
	// primary's base URL.
	Primary string `json:"primary,omitempty"`
	// Advertise is this server's own public URL, if configured.
	Advertise string `json:"advertise,omitempty"`
	// Promoted reports that this primary began life as a follower.
	Promoted bool `json:"promoted,omitempty"`
	// CursorGeneration/CursorOffset are the replication cursor — the
	// exact journal position the follower has applied through.
	CursorGeneration uint64 `json:"cursor_generation,omitempty"`
	CursorOffset     int64  `json:"cursor_offset,omitempty"`
	// PrimaryHour is the primary's fleet hour from its latest
	// heartbeat (-1 before one arrives); LagHours is how far this
	// follower's fleet trails it.
	PrimaryHour int `json:"primary_hour"`
	LagHours    int `json:"lag_hours"`
	repl.TailStats
}

// replicationLag returns how many fleet hours this follower trails the
// primary's last heartbeat (0 when unknown or caught up).
func (s *Server) replicationLag() int {
	if s.fol == nil {
		return 0
	}
	lag := s.fol.tail.PrimaryHour() - s.fleet.Hour()
	if lag < 0 {
		return 0
	}
	return lag
}

// replicationStats assembles the /v1/stats replication block (nil for
// a plain primary with no advertise URL — nothing to report).
func (s *Server) replicationStats() *ReplicationStats {
	if s.fol == nil && s.cfg.Advertise == "" {
		return nil
	}
	rs := &ReplicationStats{
		Role:        s.Role(),
		Advertise:   s.cfg.Advertise,
		PrimaryHour: -1,
	}
	if s.fol != nil {
		rs.Primary = s.fol.cfg.Primary
		rs.Promoted = !s.isFollower()
		rs.PrimaryHour = s.fol.tail.PrimaryHour()
		rs.LagHours = s.replicationLag()
		rs.TailStats = s.fol.tail.Stats()
		if cur, ok := s.fol.tail.Cursor(); ok {
			rs.CursorGeneration = cur.Generation
			rs.CursorOffset = cur.Offset
		}
	}
	return rs
}
