package schedd

// The durability layer: when Config.DataDir is set, every state-
// changing fleet event is journaled through internal/wal and the full
// fleet image is snapshotted periodically, so a crashed or restarted
// schedd recovers to state byte-identical to one that never stopped.
//
// Two record types cover everything, because fleet stepping is
// deterministic given the trace, policy, and prior state:
//
//	admit     the admitted batch (with stamped arrival hour and the
//	          post-assignment auto-id counter), appended under admitMu
//	          — so journal order IS fleet submission order;
//	watermark the hour the fleet advanced to, appended under stepMu.
//
// Both record types are buffered under admitMu (admits hold it for
// the whole admission critical section; a watermark takes it just for
// the buffer append), so journal order IS fleet-event order: an admit
// that observed hour h lands before the watermark for any step past h,
// and after the watermark of the step that brought the fleet to h.
// That total order is what lets a replication follower apply the
// journal strictly in sequence (internal/repl) and stay byte-identical
// to the primary. Recovery additionally tolerates the weaker ordering
// of journals written before watermarks took admitMu: watermarks are
// deferred — an admit record first steps the fleet to its own arrival
// hour, and the maximum watermark is applied at the end — which
// reconstructs the true event order because arrival hours are
// non-decreasing along the journal and an admit at hour h always
// precedes, in fleet time, the step that simulates hour h.
//
// Recovery restores the newest valid snapshot, replays its journal
// (tolerating a torn tail), then rotates: a fresh snapshot of the
// recovered state and an empty next-generation journal, so replay cost
// is bounded by one generation regardless of crash history.

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"carbonshift/internal/sched"
	"carbonshift/internal/tracing"
	"carbonshift/internal/wal"
)

// Journal record types.
const (
	recAdmit     = 1
	recWatermark = 2
)

// durable holds the journaling state of a Server with a DataDir. The
// journal pointer swaps only under both stepMu and admitMu (rotation);
// appenders hold one of those locks, so their loads are stable, while
// the replication source reads the pointer lock-free from handler
// goroutines — hence the atomic. gen and lastSnapHour are written
// under the server's locks but read lock-free by the stats path.
type durable struct {
	store        *wal.Store
	journal      atomic.Pointer[wal.Journal]
	opts         wal.Options
	gen          atomic.Uint64
	lastSnapHour atomic.Int64
}

// DurabilityStats is the /v1/stats view of the journaling layer.
type DurabilityStats struct {
	// Generation is the live snapshot+journal generation.
	Generation uint64 `json:"generation"`
	// LastSnapshotHour is the fleet hour of the newest snapshot.
	LastSnapshotHour int `json:"last_snapshot_hour"`
	// Recovered reports that boot restored a previous incarnation's
	// state; the remaining fields describe that recovery.
	Recovered             bool `json:"recovered"`
	RecoveredSnapshotHour int  `json:"recovered_snapshot_hour"`
	ReplayedRecords       int  `json:"replayed_records"`
	RecoveredJobs         int  `json:"recovered_jobs"`
	// TornTail reports that the recovered journal ended in a torn or
	// corrupt write (the expected signature of a hard crash) which was
	// discarded.
	TornTail bool `json:"torn_tail"`
}

// openDurable recovers state from cfg.DataDir into the server's fleet
// and leaves a fresh generation accepting appends. Called from New
// after options are applied (so a recorder observes replayed
// placements exactly as it would live ones).
func (s *Server) openDurable() error {
	store, err := wal.OpenStore(s.cfg.DataDir)
	if err != nil {
		return err
	}
	// Any failure from here on must release the directory lock so the
	// operator can retry without restarting the process.
	fail := func(err error) error {
		store.Close()
		return err
	}
	opts := wal.Options{Sync: s.cfg.Sync, BatchInterval: s.cfg.SyncInterval, Trace: s.tr}
	if s.mx != nil {
		// One JournalMetrics spans generation rotations: wal_* series
		// are cumulative over the server's life, not per journal file.
		opts.Metrics = s.mx.wal
	}
	d := &durable{store: store, opts: opts}

	gen, payload, err := store.LatestSnapshot()
	if err != nil {
		return fail(err)
	}
	var rec DurabilityStats
	if gen > 0 {
		nextID, fleetImg, err := decodeServerSnapshot(payload)
		if err != nil {
			return fail(fmt.Errorf("schedd: recover %s: %w", store.SnapshotPath(gen), err))
		}
		if err := s.fleet.Unmarshal(fleetImg); err != nil {
			return fail(fmt.Errorf("schedd: recover %s: %w", store.SnapshotPath(gen), err))
		}
		s.nextID = nextID
		rec.Recovered = true
		rec.RecoveredSnapshotHour = s.fleet.Hour()

		// Replay the generation's journal tail on top. Watermarks are
		// deferred (see the package comment above).
		maxWatermark := s.fleet.Hour()
		replay, err := wal.Replay(store.JournalPath(gen), func(payload []byte) error {
			return s.applyRecord(payload, &maxWatermark)
		})
		if err != nil && !os.IsNotExist(err) {
			return fail(fmt.Errorf("schedd: replay %s: %w", store.JournalPath(gen), err))
		}
		if err == nil {
			rec.ReplayedRecords = replay.Records
			rec.TornTail = replay.Truncated
		}
		if err := s.stepFleetTo(maxWatermark); err != nil {
			return fail(fmt.Errorf("schedd: replay %s: %w", store.JournalPath(gen), err))
		}
		rec.RecoveredJobs = s.fleet.Jobs()
	}
	s.recovery.Store(&rec)

	// Rotate to a fresh generation: snapshot the recovered (or empty)
	// state, open its journal, and drop everything older.
	d.gen.Store(gen)
	s.dur.Store(d)
	if err := s.rotateGeneration(); err != nil {
		s.dur.Store(nil)
		return fail(err)
	}
	s.known.Store(int64(s.fleet.Hour()))
	return nil
}

// applyRecord applies one journal record during recovery.
func (s *Server) applyRecord(payload []byte, maxWatermark *int) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty record")
	}
	switch payload[0] {
	case recAdmit:
		arrival, next, jobs, _, err := decodeAdmit(payload)
		if err != nil {
			return err
		}
		if err := s.stepFleetTo(arrival); err != nil {
			return err
		}
		if err := s.fleet.Submit(jobs...); err != nil {
			return err
		}
		s.nextID = next
		return nil
	case recWatermark:
		hour, err := decodeWatermark(payload)
		if err != nil {
			return err
		}
		if hour > *maxWatermark {
			*maxWatermark = hour
		}
		return nil
	default:
		return fmt.Errorf("unknown journal record type %d", payload[0])
	}
}

// stepFleetTo steps the fleet up to the given hour during recovery.
func (s *Server) stepFleetTo(hour int) error {
	for s.fleet.Hour() < hour {
		if err := s.fleet.Step(); err != nil {
			return err
		}
	}
	return nil
}

// rotateGeneration writes a snapshot of the current state as
// generation gen+1, opens that generation's journal, and garbage-
// collects older generations. Callers must exclude concurrent
// admissions and steps (boot does trivially; live rotation holds
// stepMu and admitMu).
func (s *Server) rotateGeneration() error {
	d := s.dur.Load()
	fleetImg, err := s.fleet.Marshal()
	if err != nil {
		return err
	}
	next := d.gen.Load() + 1
	if err := d.store.WriteSnapshot(next, encodeServerSnapshot(s.nextID, fleetImg)); err != nil {
		return err
	}
	j, err := wal.Create(d.store.JournalPath(next), d.opts)
	if err != nil {
		return err
	}
	// Close the outgoing journal before the generation becomes visible:
	// a replication stream that observes the new generation may then
	// rely on the old file being complete.
	if old := d.journal.Load(); old != nil {
		old.Close()
	}
	d.journal.Store(j)
	d.gen.Store(next)
	d.lastSnapHour.Store(int64(s.fleet.Hour()))
	d.store.RemoveGenerationsBelow(next)
	return nil
}

// maybeSnapshot rotates the generation once the fleet has progressed
// SnapshotEvery hours past the last snapshot. Called under stepMu; it
// takes admitMu to freeze admissions across the snapshot/journal swap.
func (s *Server) maybeSnapshot() error {
	d := s.dur.Load()
	if d == nil || s.cfg.SnapshotEvery <= 0 {
		return nil
	}
	if s.fleet.Hour()-int(d.lastSnapHour.Load()) < s.cfg.SnapshotEvery {
		return nil
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	return s.rotateGeneration()
}

// admitRecordChunk bounds the jobs encoded into one admit record so a
// huge binary batch can never approach wal.MaxRecord. The chunks are
// buffered back to back under admitMu via one AppendBatchNoWait —
// journal order still equals fleet submission order, and one
// WaitSynced on the last sequence makes the whole batch durable.
// Replaying the chunks in order reconstructs the same fleet: they
// share the arrival hour, and every chunk carries the final post-batch
// id counter, whose intermediate values are never observable.
const admitRecordChunk = 4096

// journalAdmit buffers an admission record (or a chunked run of them)
// and returns the journal plus the last record's sequence number; the
// caller acknowledges only after WaitSynced on that pair. Must be
// called under admitMu, after SubmitNow stamped the batch's arrival
// hours — buffering under admitMu fixes the record order, while the
// durability wait happens after the lock is released so concurrent
// submitters share one group-commit fsync.
func (s *Server) journalAdmit(arrival, nextID int, jobs []sched.Job, tid tracing.TraceID) (*wal.Journal, uint64, error) {
	d := s.dur.Load()
	if d == nil {
		return nil, 0, nil
	}
	j := d.journal.Load()
	if len(jobs) <= admitRecordChunk {
		seq, err := j.AppendNoWait(encodeAdmit(arrival, nextID, jobs, tid))
		return j, seq, err
	}
	recs := make([][]byte, 0, (len(jobs)+admitRecordChunk-1)/admitRecordChunk)
	for lo := 0; lo < len(jobs); lo += admitRecordChunk {
		hi := min(lo+admitRecordChunk, len(jobs))
		recs = append(recs, encodeAdmit(arrival, nextID, jobs[lo:hi], tid))
	}
	seq, err := j.AppendBatchNoWait(recs...)
	return j, seq, err
}

// journalWatermark appends the hour the fleet advanced to. Must be
// called under stepMu; it takes admitMu just for the buffer append so
// watermark and admit records interleave in the journal in true
// fleet-event order — the invariant the replication follower's
// strictly-in-order apply relies on. The durability wait runs after
// admitMu is released, so admissions never stall behind a watermark
// fsync.
func (s *Server) journalWatermark(hour int) error {
	d := s.dur.Load()
	if d == nil {
		return nil
	}
	j := d.journal.Load()
	s.admitMu.Lock()
	seq, err := j.AppendNoWait(encodeWatermark(hour))
	s.admitMu.Unlock()
	if err != nil {
		return err
	}
	return j.WaitSynced(seq)
}

// liveJournal returns the current generation's journal (nil when the
// server runs without a DataDir).
func (s *Server) liveJournal() *wal.Journal {
	d := s.dur.Load()
	if d == nil {
		return nil
	}
	return d.journal.Load()
}

// Close stops the replication goroutines (followers), flushes and
// closes the journal, and releases the data directory's lock. The
// server must no longer be serving; idempotent, nil-safe without a
// DataDir.
func (s *Server) Close() error {
	if s.fol != nil {
		s.stopTail()
		s.fol.probeWG.Wait()
	}
	d := s.dur.Load()
	if d == nil {
		return nil
	}
	var err error
	if j := d.journal.Load(); j != nil {
		err = j.Close()
	}
	if cerr := d.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Recovery returns what boot restored from the data directory (the
// zero value when there was nothing to recover or no DataDir is set).
func (s *Server) Recovery() DurabilityStats {
	if r := s.recovery.Load(); r != nil {
		return *r
	}
	return DurabilityStats{}
}

// Hour returns the fleet's current replay hour.
func (s *Server) Hour() int { return s.fleet.Hour() }

// durabilityStats assembles the /v1/stats durability block without
// taking any server lock — a stats poll must never wait behind a
// catch-up step or a snapshot write. The generation and snapshot-hour
// reads are individually atomic; a rotation between them can show a
// momentarily mixed pair, which monitoring tolerates.
func (s *Server) durabilityStats() *DurabilityStats {
	d := s.dur.Load()
	if d == nil {
		return nil
	}
	ds := s.Recovery() // copy of the boot- or promotion-time recovery info
	ds.Generation = d.gen.Load()
	ds.LastSnapshotHour = int(d.lastSnapHour.Load())
	return &ds
}

// --- record and snapshot codecs ---
//
// The server snapshot wraps the fleet image with the auto-id counter:
// uvarint nextID | fleet bytes. Journal records are a type byte
// followed by uvarints; the job batch uses sched's job codec. All of
// it is pinned by golden tests.

func encodeServerSnapshot(nextID int, fleetImg []byte) []byte {
	buf := appendUvarint(make([]byte, 0, len(fleetImg)+4), nextID)
	return append(buf, fleetImg...)
}

func decodeServerSnapshot(payload []byte) (nextID int, fleetImg []byte, err error) {
	nextID, rest, err := readUvarint(payload)
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot header: %w", err)
	}
	return nextID, rest, nil
}

// encodeAdmit appends the sampled trace's 16-byte ID after the job
// batch — only when one is present, so unsampled records (the vast
// majority) are byte-identical to the pre-tracing format and the
// golden files still decode. The replication stream carries the record
// verbatim, which is how the follower learns which trace its apply
// span belongs to.
func encodeAdmit(arrival, nextID int, jobs []sched.Job, tid tracing.TraceID) []byte {
	buf := []byte{recAdmit}
	buf = appendUvarint(buf, arrival)
	buf = appendUvarint(buf, nextID)
	buf = sched.EncodeJobs(buf, jobs)
	if !tid.IsZero() {
		buf = append(buf, tid[:]...)
	}
	return buf
}

func decodeAdmit(payload []byte) (arrival, nextID int, jobs []sched.Job, tid tracing.TraceID, err error) {
	rest := payload[1:]
	if arrival, rest, err = readUvarint(rest); err != nil {
		return 0, 0, nil, tid, fmt.Errorf("admit record: %w", err)
	}
	if nextID, rest, err = readUvarint(rest); err != nil {
		return 0, 0, nil, tid, fmt.Errorf("admit record: %w", err)
	}
	jobs, rest, err = sched.DecodeJobs(rest)
	if err != nil {
		return 0, 0, nil, tid, fmt.Errorf("admit record: %w", err)
	}
	switch len(rest) {
	case 0: // untraced record (or one written before tracing existed)
	case len(tid):
		copy(tid[:], rest)
	default:
		return 0, 0, nil, tracing.TraceID{}, fmt.Errorf("admit record: %d trailing bytes", len(rest))
	}
	return arrival, nextID, jobs, tid, nil
}

func encodeWatermark(hour int) []byte {
	return appendUvarint([]byte{recWatermark}, hour)
}

func decodeWatermark(payload []byte) (int, error) {
	hour, rest, err := readUvarint(payload[1:])
	if err != nil {
		return 0, fmt.Errorf("watermark record: %w", err)
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("watermark record: %d trailing bytes", len(rest))
	}
	return hour, nil
}

func appendUvarint(buf []byte, v int) []byte {
	return binary.AppendUvarint(buf, uint64(v))
}

func readUvarint(data []byte) (int, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 || v > math.MaxInt64 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return int(v), data[n:], nil
}
