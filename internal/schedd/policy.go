package schedd

import (
	"fmt"
	"sort"
	"strings"

	"carbonshift/internal/sched"
)

// PolicyByName resolves a scheduling policy from its wire name, as used
// by cmd/schedd's -policy flag. Percentile and window parameterize the
// gated policies and are ignored by the rest.
func PolicyByName(name string, percentile float64, window int) (sched.Policy, error) {
	switch name {
	case "fifo":
		return sched.FIFO{}, nil
	case "carbon-gate":
		return sched.CarbonGate{Percentile: percentile, Window: window}, nil
	case "forecast-gate":
		return sched.ForecastGate{Percentile: percentile}, nil
	case "greenest-first":
		return sched.GreenestFirst{}, nil
	case "spatiotemporal":
		return sched.SpatioTemporal{Percentile: percentile, Window: window}, nil
	default:
		return nil, fmt.Errorf("schedd: unknown policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
	}
}

// PolicyNames lists the resolvable policy names, sorted.
func PolicyNames() []string {
	names := []string{"fifo", "carbon-gate", "forecast-gate", "greenest-first", "spatiotemporal"}
	sort.Strings(names)
	return names
}
