package schedd

// Mixed-protocol durability equivalence: a workload submitted over an
// interleaving of the JSON and binary submit routes must be
// indistinguishable — on disk and in outcome — from the same workload
// submitted over JSON alone. The admit journal record is written after
// decoding, so the wire protocol must leave no trace in the journal:
// the two runs' journals are required to be byte-identical, which is
// also what makes a binary-submitting primary replicable by any
// follower. A crash-cut sweep over the mixed run's journal then checks
// that recovery of binary-submitted work is byte-exact too.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"

	"carbonshift/internal/sched"
	"carbonshift/internal/wal"
)

// driveProtocols runs the crash-harness workload against a journaling
// server, submitting each chunk over the binary batch route when mixed
// is set and the chunk index is odd (JSON otherwise), and returns the
// run outcome plus the raw journal bytes. Trace sampling is disabled:
// sampled submits append their trace id to the admit record, and this
// test compares journals byte-for-byte across runs whose submit counts
// would otherwise sample different requests.
func driveProtocols(t *testing.T, dir string, policy sched.Policy, jobs []sched.Job, mixed bool) (crashRun, []byte) {
	t.Helper()
	clock := &hourClock{}
	var recs []placeRec
	cfg := crashConfig(policy, 0)
	cfg.DataDir = dir
	cfg.TraceSampleEvery = -1
	srv, err := New(mkSet(t, crashHorizon), clusters(crashSlots), cfg,
		WithClock(clock.now),
		WithRecorder(func(h, id int, r string) { recs = append(recs, placeRec{h, id, r}) }))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	chunk := 0
	next := 0
	for hour := 0; hour < crashHorizon; hour++ {
		clock.hour.Store(int64(hour))
		if _, err := client.Stats(ctx); err != nil {
			t.Fatal(err)
		}
		for next < len(jobs) && jobs[next].Arrival == hour {
			hi := next + 2
			if hi > len(jobs) {
				hi = len(jobs)
			}
			for hi > next && jobs[hi-1].Arrival != hour {
				hi--
			}
			var batch []JobRequest
			for _, j := range jobs[next:hi] {
				id := j.ID
				batch = append(batch, JobRequest{
					ID: &id, Origin: j.Origin, LengthHours: j.Length, SlackHours: j.Slack,
					Interruptible: j.Interruptible, Migratable: j.Migratable,
				})
			}
			submit := client.Submit
			if mixed && chunk%2 == 1 {
				submit = client.SubmitBatch
			}
			chunk++
			ack, err := submit(ctx, batch...)
			if err != nil {
				t.Fatalf("hour %d: %v", hour, err)
			}
			if ack.ArrivalHour != hour {
				t.Fatalf("arrival %d, want %d", ack.ArrivalHour, hour)
			}
			next = hi
		}
	}
	if next != len(jobs) {
		t.Fatalf("submitted %d/%d jobs", next, len(jobs))
	}
	res, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	state, err := srv.fleet.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	journal, err := os.ReadFile(latestJournal(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	return crashRun{placements: recs, result: res, state: state}, journal
}

// TestMixedProtocolEquivalence drives the same workload twice — once
// all-JSON, once alternating JSON and binary chunks — and requires
// identical placements, Result, serialized state, and a byte-identical
// journal. It then crash-cuts the mixed run's journal at a sweep of
// boundary and torn positions and recovers each cut, proving
// binary-submitted admissions replay and re-drive exactly like
// JSON-submitted ones.
func TestMixedProtocolEquivalence(t *testing.T) {
	jobs := crashJobs(t)
	policy := sched.SpatioTemporal{Percentile: 40, Window: 48}

	jsonDir, mixedDir := t.TempDir(), t.TempDir()
	ref, refJournal := driveProtocols(t, jsonDir, policy, jobs, false)
	got, gotJournal := driveProtocols(t, mixedDir, policy, jobs, true)

	got.recovery = DurabilityStats{} // both runs are uninterrupted
	assertRunsEqual(t, ref, got, "mixed vs all-JSON")
	if !bytes.Equal(refJournal, gotJournal) {
		t.Fatalf("journals differ: all-JSON %d bytes, mixed %d bytes — the wire protocol leaked into the journal",
			len(refJournal), len(gotJournal))
	}

	// Crash-cut the mixed journal and recover. recoverAndFinish
	// re-drives lost jobs over JSON with default trace sampling; that
	// only perturbs journal bytes, never placements/Result/state, which
	// is all assertRunsEqual compares.
	bounds := recordBoundaries(t, latestJournal(t, mixedDir))
	size := bounds[len(bounds)-1]
	cutSet := map[int64]bool{
		0: true, 1: true, size - 1: true, size: true,
		bounds[len(bounds)/4]: true,
		bounds[len(bounds)/2]: true, bounds[len(bounds)/2] + 3: true,
		bounds[3*len(bounds)/4] + 11: true,
	}
	for cut := range cutSet {
		if cut < 0 || cut > size {
			continue
		}
		dir := copyDirWithCut(t, mixedDir, cut)
		rec := recoverAndFinish(t, dir, crashConfig(policy, 0), jobs)
		assertRunsEqual(t, ref, rec, fmt.Sprintf("mixed cut at byte %d/%d", cut, size))
		if !rec.recovery.Recovered {
			t.Fatalf("cut at %d: boot did not report recovery", cut)
		}
	}
}

// TestMixedProtocolReplication runs a binary-submitting primary with a
// WAL-streamed follower and checks the follower converges to the
// primary's exact fleet state — binary admissions replicate because
// they journal identically to JSON ones.
func TestMixedProtocolReplication(t *testing.T) {
	jobs := crashJobs(t)
	policy := sched.CarbonGate{Percentile: 40, Window: 48}

	primDir := t.TempDir()
	ref, _ := driveProtocols(t, primDir, policy, jobs, true)

	// Reboot from the mixed-run directory: recovery replays the
	// journal the binary submits wrote, exactly as a follower streaming
	// that WAL would.
	cfg := crashConfig(policy, 0)
	cfg.DataDir = primDir
	cfg.TraceSampleEvery = -1
	srv, err := New(mkSet(t, crashHorizon), clusters(crashSlots), cfg, WithClock((&hourClock{}).now))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec := srv.Recovery()
	if !rec.Recovered || rec.RecoveredJobs != len(jobs) {
		t.Fatalf("recovery = %+v, want all %d jobs", rec, len(jobs))
	}
	state, err := srv.fleet.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, ref.state) {
		t.Fatal("state restored from the mixed-protocol journal differs from the shut-down state")
	}
	if _, err := wal.Replay(latestJournal(t, primDir), func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
