package schedd

// The server's Prometheus instrumentation (GET /metrics). Two rules
// shape it:
//
// 1. Fleet-derived quantities are callback-backed (CounterFunc /
//    GaugeFunc over the fleet's O(shards) incremental counters), so
//    /metrics and /v1/stats read the same numbers and can never
//    disagree — a property the metrics parity test pins.
//
// 2. Hot paths pay atomics only. The submit handler observes one
//    histogram sample; admission rejections bump a counter; Step wraps
//    one timestamp pair around the fleet call under stepMu. Nothing on
//    a request path takes a metrics lock or allocates.
//
// Carbon-saved attribution: for every executed job-hour the fleet's
// OnPlaceDetail hook (serial Step epilogue) adds
//
//	I(origin, hour) − I(placed region, hour)
//
// to schedd_carbon_saved_grams{policy="..."} — the emissions a
// counterfactual scheduler running the same job-hour at the job's
// origin region would have paid, minus what the policy actually paid.
// This is the paper's spatial-shifting savings, measured live;
// temporal shifting additionally moves the hour itself, which this
// per-hour counterfactual credits whenever the deferred hour is
// cleaner at the origin too. FIFO places every job at its origin, so
// its gauge reads ~0 — the sanity anchor.

import (
	"errors"
	"net/http"
	"time"

	"carbonshift/internal/metrics"
	"carbonshift/internal/sched"
	"carbonshift/internal/serve"
	"carbonshift/internal/tenant"
	"carbonshift/internal/trace"
	"carbonshift/internal/wal"
)

// serverMetrics bundles the server's instruments. A nil *serverMetrics
// (WithoutMetrics) disables all instrumentation.
type serverMetrics struct {
	registry *metrics.Registry

	submitSeconds *metrics.Histogram
	stepSeconds   *metrics.Histogram
	backpressure  *metrics.CounterVec
	submitJSON    *metrics.Counter // schedd_submit_requests_total{proto="json"}
	submitBinary  *metrics.Counter // schedd_submit_requests_total{proto="binary"}
	carbonSaved   *metrics.Gauge   // the policy-labeled child

	// Tenancy families (nil without Config.Tenants). tenantRejected and
	// tenantCarbon are event-driven (admission rejections, placement
	// attribution); the rest mirror the fleet's per-tenant counters and
	// are refreshed at scrape time (refreshTenantMetrics), the labeled
	// analogue of the callback-backed fleet gauges. Labels are bounded
	// by tenantLabel: configured names pass through, everything else
	// aggregates under "other".
	tenantRejected  *metrics.CounterVec // schedd_tenant_rejected_total{tenant,reason}
	tenantCarbon    *metrics.GaugeVec   // schedd_tenant_carbon_saved_grams{tenant}
	tenantSubmitted *metrics.GaugeVec
	tenantCompleted *metrics.GaugeVec
	tenantMissed    *metrics.GaugeVec
	tenantRunning   *metrics.GaugeVec
	tenantQueue     *metrics.GaugeVec
	tenantSlotHours *metrics.GaugeVec
	tenantEmissions *metrics.GaugeVec

	wal  *wal.JournalMetrics
	http *serve.HTTPMetrics

	// traces maps cluster regions to their carbon traces for the
	// carbon-saved counterfactual (read-only after construction).
	traces map[string]*trace.Trace
}

// WithoutMetrics disables the /metrics endpoint and all
// instrumentation — the un-instrumented baseline the benchmark suite
// compares against.
func WithoutMetrics() Option {
	return func(s *Server) { s.noMetrics = true }
}

// Metrics returns the server's registry (nil when built
// WithoutMetrics), so embedders can add their own families.
func (s *Server) Metrics() *metrics.Registry {
	if s.mx == nil {
		return nil
	}
	return s.mx.registry
}

// initMetrics registers every schedd_* family and wires the fleet's
// placement hook. Called from New before recovery runs, so the journal
// opened by openDurable is metered from its first record — but
// recovery's own replay stepping deliberately bypasses stepOnce, so
// schedd_step_latency_seconds covers live stepping only.
func (s *Server) initMetrics(set *trace.Set) {
	r := metrics.NewRegistry()
	mx := &serverMetrics{
		registry: r,
		traces:   make(map[string]*trace.Trace, len(s.clusters)),
		wal:      wal.NewJournalMetrics(r),
		http:     serve.NewHTTPMetrics(r),
	}
	for _, c := range s.clusters {
		if tr, ok := set.Get(c.Region); ok {
			mx.traces[c.Region] = tr
		}
	}

	st := func() sched.FleetStats { return s.fleet.Stats() }
	r.NewCounterFunc("schedd_jobs_submitted_total",
		"Jobs admitted into the fleet (recovered jobs included).",
		func() float64 { return float64(st().Submitted) })
	r.NewCounterFunc("schedd_jobs_completed_total",
		"Jobs that finished all their work.",
		func() float64 { return float64(st().Completed) })
	r.NewCounterFunc("schedd_jobs_missed_total",
		"Jobs whose deadline passed before completion.",
		func() float64 { return float64(st().Missed) })
	r.NewGaugeFunc("schedd_jobs_running",
		"Jobs that executed in the most recent fleet hour.",
		func() float64 { return float64(st().Running) })
	r.NewGaugeFunc("schedd_queue_depth",
		"Admitted jobs waiting (unresolved minus running) — the same number /v1/stats reports as queue_depth.",
		func() float64 { return float64(st().Queued) })
	r.NewGaugeFunc("schedd_jobs_unresolved",
		"Admitted jobs not yet completed or missed; the quantity bounded by schedd_queue_limit.",
		func() float64 { return float64(st().Unresolved) })
	r.NewGaugeFunc("schedd_fleet_hour",
		"The fleet's current replay hour.",
		func() float64 { return float64(st().Hour) })
	r.NewGaugeFunc("schedd_fleet_horizon_hours",
		"The exclusive final replay hour.",
		func() float64 { return float64(s.cfg.Horizon) })
	r.NewGaugeFunc("schedd_job_limit",
		"Config.MaxJobs: total jobs the store retains before 503s.",
		func() float64 { return float64(s.cfg.MaxJobs) })
	r.NewGaugeFunc("schedd_queue_limit",
		"Config.MaxQueue: unresolved jobs allowed before 503s.",
		func() float64 { return float64(s.cfg.MaxQueue) })
	r.NewGaugeFunc("schedd_jobs_stored",
		"Jobs currently retained in the store; the quantity bounded by schedd_job_limit.",
		func() float64 { return float64(s.fleet.Jobs()) })
	r.NewCounterFunc("schedd_emissions_grams_total",
		"Cumulative emissions of executed work, gCO2eq — /v1/stats total_emissions_g.",
		func() float64 { return st().TotalEmissions })
	r.NewGaugeFunc("schedd_utilization_ratio",
		"Used slot-hours over elapsed slot-hours, 0..1.",
		func() float64 { return st().Utilization() })
	r.NewGaugeFunc("schedd_miss_rate",
		"Missed jobs over submitted jobs, 0..1.",
		func() float64 {
			fs := st()
			if fs.Submitted == 0 {
				return 0
			}
			return float64(fs.Missed) / float64(fs.Submitted)
		})
	r.NewGaugeFunc("schedd_replication_lag_hours",
		"Fleet hours this follower trails the primary's last heartbeat (0 on primaries and caught-up followers).",
		func() float64 { return float64(s.replicationLag()) })
	r.NewGaugeFunc("schedd_wal_generation",
		"Live snapshot+journal generation (0 without a data dir).",
		func() float64 { return float64(s.Generation()) })
	r.NewGaugeFunc("schedd_recovered",
		"1 when this process restored a previous incarnation's state (journal recovery or promotion).",
		func() float64 {
			if s.Recovery().Recovered {
				return 1
			}
			return 0
		})

	mx.submitSeconds = r.NewHistogram("schedd_submit_latency_seconds",
		"Submit handler duration (JSON and binary routes), durability wait included.",
		metrics.DefLatencyBuckets)
	mx.stepSeconds = r.NewHistogram("schedd_step_latency_seconds",
		"Duration of one live fleet Step (one replay hour).",
		metrics.DefLatencyBuckets)
	mx.backpressure = r.NewCounterVec("schedd_backpressure_total",
		"Submissions rejected under load — 503 for full stores/queues and an exhausted horizon, 413 for oversized bodies — by reason.", "reason")
	submitProto := r.NewCounterVec("schedd_submit_requests_total",
		"Submit requests by wire protocol (json = POST /v1/jobs, binary = POST /v1/jobs/batch).", "proto")
	mx.submitJSON = submitProto.With("json")
	mx.submitBinary = submitProto.With("binary")
	mx.carbonSaved = r.NewGaugeVec("schedd_carbon_saved_grams",
		"Cumulative gCO2eq saved versus running each executed job-hour at the job's origin region.",
		"policy").With(s.cfg.Policy.Name())

	if s.cfg.Tenants != nil {
		mx.tenantRejected = r.NewCounterVec("schedd_tenant_rejected_total",
			"Jobs rejected by the tenant admission gate (429), by tenant and reason (quota, rate).", "tenant", "reason")
		mx.tenantCarbon = r.NewGaugeVec("schedd_tenant_carbon_saved_grams",
			"Cumulative gCO2eq saved versus origin-region execution, attributed to the tenant whose job-hour moved.", "tenant")
		mx.tenantSubmitted = r.NewGaugeVec("schedd_tenant_jobs_submitted",
			"Jobs admitted into the fleet, by tenant.", "tenant")
		mx.tenantCompleted = r.NewGaugeVec("schedd_tenant_jobs_completed",
			"Jobs that finished all their work, by tenant.", "tenant")
		mx.tenantMissed = r.NewGaugeVec("schedd_tenant_jobs_missed",
			"Jobs whose deadline passed before completion, by tenant.", "tenant")
		mx.tenantRunning = r.NewGaugeVec("schedd_tenant_jobs_running",
			"Jobs that executed in the most recent fleet hour, by tenant.", "tenant")
		mx.tenantQueue = r.NewGaugeVec("schedd_tenant_queue_depth",
			"Admitted jobs waiting (unresolved minus running), by tenant.", "tenant")
		mx.tenantSlotHours = r.NewGaugeVec("schedd_tenant_slot_hours",
			"Slot-hours executed, by tenant — the fairness quantity the weighted-fair dequeue divides.", "tenant")
		mx.tenantEmissions = r.NewGaugeVec("schedd_tenant_emissions_grams",
			"Cumulative emissions of executed work, gCO2eq, by tenant.", "tenant")
	}

	s.fleet.OnPlaceDetail = func(hour, _ int, region, origin, tenantName string) {
		if region == origin {
			return
		}
		to, okTo := mx.traces[region]
		from, okFrom := mx.traces[origin]
		if !okTo || !okFrom {
			return
		}
		saved := from.At(hour) - to.At(hour)
		mx.carbonSaved.Add(saved)
		if mx.tenantCarbon != nil {
			mx.tenantCarbon.With(s.tenantLabel(tenantName)).Add(saved)
		}
	}
	s.mx = mx
}

// tenantLabel bounds per-tenant label cardinality: configured tenant
// names pass through, anything else — including the implicit default
// tenant unless it is declared — aggregates under "other".
func (s *Server) tenantLabel(name string) string {
	name = tenant.Normalize(name)
	if _, ok := s.tenants[name]; ok {
		return name
	}
	return "other"
}

// countTenantRejected records a gate rejection: n jobs for the tenant,
// under the reason the gate error carries.
func (s *Server) countTenantRejected(name string, n int, err error) {
	mx := s.mx
	if mx == nil || mx.tenantRejected == nil {
		return
	}
	reason := "quota"
	if errors.Is(err, tenant.ErrRate) {
		reason = "rate"
	}
	mx.tenantRejected.With(s.tenantLabel(name), reason).Add(uint64(n))
}

// refreshTenantMetrics re-renders the per-tenant gauge families from
// the fleet's live per-tenant counters — called on each scrape, so the
// families track /v1/stats exactly. Stats for tenants outside the
// configured set are summed into the "other" label rather than
// overwriting each other.
func (s *Server) refreshTenantMetrics() {
	mx := s.mx
	if mx == nil || mx.tenantSubmitted == nil {
		return
	}
	agg := make(map[string]sched.TenantStat)
	for name, t := range s.fleet.TenantStats() {
		l := s.tenantLabel(name)
		a := agg[l]
		a.Submitted += t.Submitted
		a.Completed += t.Completed
		a.Missed += t.Missed
		a.Running += t.Running
		a.Queued += t.Queued
		a.Unresolved += t.Unresolved
		a.SlotHours += t.SlotHours
		a.Emissions += t.Emissions
		agg[l] = a
	}
	for l, a := range agg {
		mx.tenantSubmitted.With(l).Set(float64(a.Submitted))
		mx.tenantCompleted.With(l).Set(float64(a.Completed))
		mx.tenantMissed.With(l).Set(float64(a.Missed))
		mx.tenantRunning.With(l).Set(float64(a.Running))
		mx.tenantQueue.With(l).Set(float64(a.Queued))
		mx.tenantSlotHours.With(l).Set(float64(a.SlotHours))
		mx.tenantEmissions.With(l).Set(a.Emissions)
	}
}

// stepOnce advances the fleet one hour, timing the step when metrics
// are enabled. All live stepping (advance, Drain) goes through it;
// recovery and follower replay do not.
func (s *Server) stepOnce() error {
	if s.mx == nil {
		return s.fleet.Step()
	}
	t0 := time.Now()
	err := s.fleet.Step()
	s.mx.stepSeconds.Observe(time.Since(t0).Seconds())
	return err
}

// countBackpressure records one rejected submission (503, or 413 for
// the oversize reason).
func (s *Server) countBackpressure(reason string) {
	if s.mx != nil {
		s.mx.backpressure.With(reason).Inc()
	}
}

// handleMetrics serves GET /metrics. It advances the replay clock
// first (best-effort — a poisoned server still serves its metrics, so
// an operator can see what poisoned it) to keep the fleet-derived
// gauges as fresh as a /v1/stats poll.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.advance(r.Context()) //nolint:errcheck — scrape must not fail with the server
	s.refreshTenantMetrics()
	s.mx.registry.Handler().ServeHTTP(w, r)
}
