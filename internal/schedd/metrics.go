package schedd

// The server's Prometheus instrumentation (GET /metrics). Two rules
// shape it:
//
// 1. Fleet-derived quantities are callback-backed (CounterFunc /
//    GaugeFunc over the fleet's O(shards) incremental counters), so
//    /metrics and /v1/stats read the same numbers and can never
//    disagree — a property the metrics parity test pins.
//
// 2. Hot paths pay atomics only. The submit handler observes one
//    histogram sample; admission rejections bump a counter; Step wraps
//    one timestamp pair around the fleet call under stepMu. Nothing on
//    a request path takes a metrics lock or allocates.
//
// Carbon-saved attribution: for every executed job-hour the fleet's
// OnPlaceDetail hook (serial Step epilogue) adds
//
//	I(origin, hour) − I(placed region, hour)
//
// to schedd_carbon_saved_grams{policy="..."} — the emissions a
// counterfactual scheduler running the same job-hour at the job's
// origin region would have paid, minus what the policy actually paid.
// This is the paper's spatial-shifting savings, measured live;
// temporal shifting additionally moves the hour itself, which this
// per-hour counterfactual credits whenever the deferred hour is
// cleaner at the origin too. FIFO places every job at its origin, so
// its gauge reads ~0 — the sanity anchor.

import (
	"net/http"
	"time"

	"carbonshift/internal/metrics"
	"carbonshift/internal/sched"
	"carbonshift/internal/serve"
	"carbonshift/internal/trace"
	"carbonshift/internal/wal"
)

// serverMetrics bundles the server's instruments. A nil *serverMetrics
// (WithoutMetrics) disables all instrumentation.
type serverMetrics struct {
	registry *metrics.Registry

	submitSeconds *metrics.Histogram
	stepSeconds   *metrics.Histogram
	backpressure  *metrics.CounterVec
	submitJSON    *metrics.Counter // schedd_submit_requests_total{proto="json"}
	submitBinary  *metrics.Counter // schedd_submit_requests_total{proto="binary"}
	carbonSaved   *metrics.Gauge   // the policy-labeled child

	wal  *wal.JournalMetrics
	http *serve.HTTPMetrics

	// traces maps cluster regions to their carbon traces for the
	// carbon-saved counterfactual (read-only after construction).
	traces map[string]*trace.Trace
}

// WithoutMetrics disables the /metrics endpoint and all
// instrumentation — the un-instrumented baseline the benchmark suite
// compares against.
func WithoutMetrics() Option {
	return func(s *Server) { s.noMetrics = true }
}

// Metrics returns the server's registry (nil when built
// WithoutMetrics), so embedders can add their own families.
func (s *Server) Metrics() *metrics.Registry {
	if s.mx == nil {
		return nil
	}
	return s.mx.registry
}

// initMetrics registers every schedd_* family and wires the fleet's
// placement hook. Called from New before recovery runs, so the journal
// opened by openDurable is metered from its first record — but
// recovery's own replay stepping deliberately bypasses stepOnce, so
// schedd_step_latency_seconds covers live stepping only.
func (s *Server) initMetrics(set *trace.Set) {
	r := metrics.NewRegistry()
	mx := &serverMetrics{
		registry: r,
		traces:   make(map[string]*trace.Trace, len(s.clusters)),
		wal:      wal.NewJournalMetrics(r),
		http:     serve.NewHTTPMetrics(r),
	}
	for _, c := range s.clusters {
		if tr, ok := set.Get(c.Region); ok {
			mx.traces[c.Region] = tr
		}
	}

	st := func() sched.FleetStats { return s.fleet.Stats() }
	r.NewCounterFunc("schedd_jobs_submitted_total",
		"Jobs admitted into the fleet (recovered jobs included).",
		func() float64 { return float64(st().Submitted) })
	r.NewCounterFunc("schedd_jobs_completed_total",
		"Jobs that finished all their work.",
		func() float64 { return float64(st().Completed) })
	r.NewCounterFunc("schedd_jobs_missed_total",
		"Jobs whose deadline passed before completion.",
		func() float64 { return float64(st().Missed) })
	r.NewGaugeFunc("schedd_jobs_running",
		"Jobs that executed in the most recent fleet hour.",
		func() float64 { return float64(st().Running) })
	r.NewGaugeFunc("schedd_queue_depth",
		"Admitted jobs waiting (unresolved minus running) — the same number /v1/stats reports as queue_depth.",
		func() float64 { return float64(st().Queued) })
	r.NewGaugeFunc("schedd_jobs_unresolved",
		"Admitted jobs not yet completed or missed; the quantity bounded by schedd_queue_limit.",
		func() float64 { return float64(st().Unresolved) })
	r.NewGaugeFunc("schedd_fleet_hour",
		"The fleet's current replay hour.",
		func() float64 { return float64(st().Hour) })
	r.NewGaugeFunc("schedd_fleet_horizon_hours",
		"The exclusive final replay hour.",
		func() float64 { return float64(s.cfg.Horizon) })
	r.NewGaugeFunc("schedd_job_limit",
		"Config.MaxJobs: total jobs the store retains before 503s.",
		func() float64 { return float64(s.cfg.MaxJobs) })
	r.NewGaugeFunc("schedd_queue_limit",
		"Config.MaxQueue: unresolved jobs allowed before 503s.",
		func() float64 { return float64(s.cfg.MaxQueue) })
	r.NewGaugeFunc("schedd_jobs_stored",
		"Jobs currently retained in the store; the quantity bounded by schedd_job_limit.",
		func() float64 { return float64(s.fleet.Jobs()) })
	r.NewCounterFunc("schedd_emissions_grams_total",
		"Cumulative emissions of executed work, gCO2eq — /v1/stats total_emissions_g.",
		func() float64 { return st().TotalEmissions })
	r.NewGaugeFunc("schedd_utilization_ratio",
		"Used slot-hours over elapsed slot-hours, 0..1.",
		func() float64 { return st().Utilization() })
	r.NewGaugeFunc("schedd_miss_rate",
		"Missed jobs over submitted jobs, 0..1.",
		func() float64 {
			fs := st()
			if fs.Submitted == 0 {
				return 0
			}
			return float64(fs.Missed) / float64(fs.Submitted)
		})
	r.NewGaugeFunc("schedd_replication_lag_hours",
		"Fleet hours this follower trails the primary's last heartbeat (0 on primaries and caught-up followers).",
		func() float64 { return float64(s.replicationLag()) })
	r.NewGaugeFunc("schedd_wal_generation",
		"Live snapshot+journal generation (0 without a data dir).",
		func() float64 { return float64(s.Generation()) })
	r.NewGaugeFunc("schedd_recovered",
		"1 when this process restored a previous incarnation's state (journal recovery or promotion).",
		func() float64 {
			if s.Recovery().Recovered {
				return 1
			}
			return 0
		})

	mx.submitSeconds = r.NewHistogram("schedd_submit_latency_seconds",
		"Submit handler duration (JSON and binary routes), durability wait included.",
		metrics.DefLatencyBuckets)
	mx.stepSeconds = r.NewHistogram("schedd_step_latency_seconds",
		"Duration of one live fleet Step (one replay hour).",
		metrics.DefLatencyBuckets)
	mx.backpressure = r.NewCounterVec("schedd_backpressure_total",
		"Submissions rejected under load — 503 for full stores/queues and an exhausted horizon, 413 for oversized bodies — by reason.", "reason")
	submitProto := r.NewCounterVec("schedd_submit_requests_total",
		"Submit requests by wire protocol (json = POST /v1/jobs, binary = POST /v1/jobs/batch).", "proto")
	mx.submitJSON = submitProto.With("json")
	mx.submitBinary = submitProto.With("binary")
	mx.carbonSaved = r.NewGaugeVec("schedd_carbon_saved_grams",
		"Cumulative gCO2eq saved versus running each executed job-hour at the job's origin region.",
		"policy").With(s.cfg.Policy.Name())

	s.fleet.OnPlaceDetail = func(hour, _ int, region, origin string) {
		if region == origin {
			return
		}
		to, okTo := mx.traces[region]
		from, okFrom := mx.traces[origin]
		if okTo && okFrom {
			mx.carbonSaved.Add(from.At(hour) - to.At(hour))
		}
	}
	s.mx = mx
}

// stepOnce advances the fleet one hour, timing the step when metrics
// are enabled. All live stepping (advance, Drain) goes through it;
// recovery and follower replay do not.
func (s *Server) stepOnce() error {
	if s.mx == nil {
		return s.fleet.Step()
	}
	t0 := time.Now()
	err := s.fleet.Step()
	s.mx.stepSeconds.Observe(time.Since(t0).Seconds())
	return err
}

// countBackpressure records one rejected submission (503, or 413 for
// the oversize reason).
func (s *Server) countBackpressure(reason string) {
	if s.mx != nil {
		s.mx.backpressure.With(reason).Inc()
	}
}

// handleMetrics serves GET /metrics. It advances the replay clock
// first (best-effort — a poisoned server still serves its metrics, so
// an operator can see what poisoned it) to keep the fleet-derived
// gauges as fresh as a /v1/stats poll.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.advance(r.Context()) //nolint:errcheck — scrape must not fail with the server
	s.mx.registry.Handler().ServeHTTP(w, r)
}
