package schedd

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"

	"carbonshift/internal/sched"
)

type placeRec struct {
	hour, job int
	region    string
}

// TestOnlineEquivalence is the schedd-vs-sched.Run equivalence check:
// the same jobs submitted over HTTP at their arrival hours, against the
// same trace and policy, must produce byte-identical placements (every
// executed job-hour, in order) and a byte-identical aggregate result —
// emissions, waits, migrations, completions — to the offline batch
// simulation, for every policy and for every fleet shard count (1, 4,
// and 16 — fewer than, equal to, and more than the available CPU
// parallelism). This is what makes the online service a faithful
// serving form of the paper's constrained-scheduler analysis, and what
// proves the sharded fleet's concurrency is invisible to clients.
func TestOnlineEquivalence(t *testing.T) {
	const horizon = 24 * 15
	set := mkSet(t, horizon)
	jobs, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs:              120,
		ArrivalSpan:       24 * 10,
		SlackHours:        36,
		InterruptibleFrac: 0.7,
		MigratableFrac:    0.5,
		Origins:           []string{"CLEAN", "DIRTY"},
		Seed:              9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 48 {
			jobs[i].Length = 48
		}
	}

	policies := []sched.Policy{
		sched.FIFO{},
		sched.CarbonGate{Percentile: 40, Window: 48},
		sched.ForecastGate{Percentile: 40},
		sched.GreenestFirst{},
		sched.SpatioTemporal{Percentile: 40, Window: 48},
	}
	for _, policy := range policies {
		// Offline reference: the batch simulator, with the same
		// placement recorder attached to its underlying fleet.
		var offline []placeRec
		ref, err := sched.NewFleet(set, clusters(20), policy, horizon)
		if err != nil {
			t.Fatal(err)
		}
		ref.OnPlace = func(hour, jobID int, region string) {
			offline = append(offline, placeRec{hour, jobID, region})
		}
		if err := ref.Submit(jobs...); err != nil {
			t.Fatal(err)
		}
		for !ref.Done() {
			if err := ref.Step(); err != nil {
				t.Fatal(err)
			}
		}
		refResult := ref.Snapshot()

		// Run, the public batch entry point, must agree with the
		// recorded fleet (it is the same engine).
		runResult, err := sched.Run(set, clusters(20), jobs, policy, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(refResult, runResult) {
			t.Fatal("recorded offline fleet differs from sched.Run")
		}

		// The binary batch protocol must be placement-identical to the
		// JSON path, so it rides the same sweep: the only difference
		// between the variants is which client codec carries the jobs.
		for _, variant := range []struct {
			shards int
			binary bool
		}{
			{1, false}, {4, false}, {16, false},
			{1, true}, {16, true},
		} {
			shards, binary := variant.shards, variant.binary
			proto := "json"
			if binary {
				proto = "binary"
			}
			t.Run(fmt.Sprintf("%s/shards=%d/%s", policy.Name(), shards, proto), func(t *testing.T) {
				// Online: an HTTP server on a hand-cranked replay clock.
				// Jobs are POSTed with their original ids exactly when
				// the replay reaches their arrival hour.
				var online []placeRec
				clock := &hourClock{}
				srv, err := New(set, clusters(20),
					Config{Policy: policy, Horizon: horizon, Shards: shards},
					WithClock(clock.now),
					WithRecorder(func(hour, jobID int, region string) {
						online = append(online, placeRec{hour, jobID, region})
					}))
				if err != nil {
					t.Fatal(err)
				}
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()
				client, err := NewClient(ts.URL, ts.Client())
				if err != nil {
					t.Fatal(err)
				}

				ctx := context.Background()
				next := 0
				for hour := 0; hour < horizon; hour++ {
					clock.hour.Store(int64(hour))
					var batch []JobRequest
					for next < len(jobs) && jobs[next].Arrival == hour {
						j := jobs[next]
						id := j.ID
						batch = append(batch, JobRequest{
							ID:            &id,
							Origin:        j.Origin,
							LengthHours:   j.Length,
							SlackHours:    j.Slack,
							Interruptible: j.Interruptible,
							Migratable:    j.Migratable,
						})
						next++
					}
					if len(batch) == 0 {
						continue
					}
					submit := client.Submit
					if binary {
						submit = client.SubmitBatch
					}
					ack, err := submit(ctx, batch...)
					if err != nil {
						t.Fatal(err)
					}
					if ack.ArrivalHour != hour {
						t.Fatalf("arrival hour %d, want %d", ack.ArrivalHour, hour)
					}
				}
				if next != len(jobs) {
					t.Fatalf("submitted %d/%d jobs", next, len(jobs))
				}
				// Crank the clock to the end; any request drives the
				// fleet through the remaining hours.
				clock.hour.Store(int64(horizon))
				if _, err := client.Stats(ctx); err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(online, offline) {
					t.Fatalf("placement sequences differ: online %d records, offline %d", len(online), len(offline))
				}
				if got := srv.Snapshot(); !reflect.DeepEqual(got, runResult) {
					t.Fatalf("online result differs from sched.Run:\nonline:  %+v\noffline: %+v",
						summarize(got), summarize(runResult))
				}
			})
		}
	}
}

func summarize(r sched.Result) map[string]any {
	return map[string]any{
		"emissions": r.TotalEmissions,
		"completed": r.Completed,
		"missed":    r.Missed,
		"wait":      r.MeanWaitHours,
		"used":      r.SlotHoursUsed,
	}
}
