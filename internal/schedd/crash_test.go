package schedd

// The crash-injection harness: run a seeded workload through a
// journaling schedd, then "crash" it at a sweep of journal cut points
// — including torn mid-record writes — by truncating the journal file,
// recover a fresh server from the wreckage, re-drive whatever the cut
// lost, and require the outcome to be byte-identical to the
// uninterrupted reference run: the full placement sequence (replayed
// placements included), the aggregate Result, and the serialized final
// fleet state. This is the recovery invariant of DESIGN.md's
// durability section, checked for all five policies.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"carbonshift/internal/sched"
	"carbonshift/internal/wal"
)

const (
	crashHorizon = 24 * 4
	crashSlots   = 5
)

func crashJobs(t testing.TB) []sched.Job {
	t.Helper()
	jobs, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs: 26, ArrivalSpan: crashHorizon - 30, SlackHours: 24,
		InterruptibleFrac: 0.6, MigratableFrac: 0.5,
		Origins: []string{"CLEAN", "DIRTY"}, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 30 {
			jobs[i].Length = 30
		}
	}
	return jobs
}

type crashRun struct {
	placements []placeRec
	result     sched.Result
	state      []byte
	recovery   DurabilityStats
}

// crashConfig builds the common durable-server config; DataDir is
// filled in by driveReference/recoverAndFinish per run directory.
func crashConfig(policy sched.Policy, snapEvery int) Config {
	return Config{
		Policy: policy, Horizon: crashHorizon, Shards: 2,
		SnapshotEvery: snapEvery, Sync: wal.SyncNone,
	}
}

// submitAt posts the given jobs (which all arrive at the current clock
// hour) in chunks of two, with their stream ids pinned.
func submitAt(t *testing.T, client *Client, hour int, jobs []sched.Job) {
	t.Helper()
	for lo := 0; lo < len(jobs); lo += 2 {
		hi := lo + 2
		if hi > len(jobs) {
			hi = len(jobs)
		}
		var batch []JobRequest
		for _, j := range jobs[lo:hi] {
			id := j.ID
			batch = append(batch, JobRequest{
				ID: &id, Origin: j.Origin, Tenant: j.Tenant,
				LengthHours: j.Length, SlackHours: j.Slack,
				Interruptible: j.Interruptible, Migratable: j.Migratable,
			})
		}
		ack, err := client.Submit(context.Background(), batch...)
		if err != nil {
			t.Fatalf("hour %d: %v", hour, err)
		}
		if ack.ArrivalHour != hour {
			t.Fatalf("arrival %d, want %d", ack.ArrivalHour, hour)
		}
	}
}

// driveReference runs the whole workload against a journaling server
// and returns everything the cut runs are compared against.
func driveReference(t *testing.T, dir string, cfg Config, jobs []sched.Job) crashRun {
	t.Helper()
	cfg.DataDir = dir
	clock := &hourClock{}
	var recs []placeRec
	srv, err := New(mkSet(t, crashHorizon), clusters(crashSlots), cfg,
		WithClock(clock.now),
		WithRecorder(func(h, id int, r string) { recs = append(recs, placeRec{h, id, r}) }))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for hour := 0; hour < crashHorizon; hour++ {
		clock.hour.Store(int64(hour))
		// A stats poll every hour forces the step (and its watermark
		// record) even on hours with no arrivals.
		if _, err := client.Stats(context.Background()); err != nil {
			t.Fatal(err)
		}
		lo := next
		for next < len(jobs) && jobs[next].Arrival == hour {
			next++
		}
		submitAt(t, client, hour, jobs[lo:next])
	}
	if next != len(jobs) {
		t.Fatalf("reference submitted %d/%d jobs", next, len(jobs))
	}
	res, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	state, err := srv.fleet.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	return crashRun{placements: recs, result: res, state: state}
}

// recoverAndFinish boots a server from a (possibly mutilated) data
// directory, re-submits whatever jobs the crash lost at their original
// arrival hours, drains, and returns the run's full outcome — the
// recorded placements include those re-executed during journal replay.
func recoverAndFinish(t *testing.T, dir string, cfg Config, jobs []sched.Job) crashRun {
	t.Helper()
	cfg.DataDir = dir
	clock := &hourClock{}
	var recs []placeRec
	srv, err := New(mkSet(t, crashHorizon), clusters(crashSlots), cfg,
		WithClock(clock.now),
		WithRecorder(func(h, id int, r string) { recs = append(recs, placeRec{h, id, r}) }))
	if err != nil {
		t.Fatal(err)
	}
	recHour := srv.fleet.Hour()
	// The journal is written in fleet-event order, so a cut can only
	// lose admissions at or after the last recovered hour.
	for _, j := range jobs {
		if _, known := srv.fleet.Lookup(j.ID); !known && j.Arrival < recHour {
			t.Fatalf("job %d (arrival %d) lost although the journal reached hour %d", j.ID, j.Arrival, recHour)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	for hour := recHour; hour < crashHorizon; hour++ {
		var missing []sched.Job
		for _, j := range jobs {
			if j.Arrival != hour {
				continue
			}
			if _, known := srv.fleet.Lookup(j.ID); !known {
				missing = append(missing, j)
			}
		}
		if len(missing) == 0 {
			continue
		}
		clock.hour.Store(int64(hour))
		submitAt(t, client, hour, missing)
	}
	res, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	state, err := srv.fleet.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	return crashRun{placements: recs, result: res, state: state, recovery: srv.Recovery()}
}

// latestJournal finds the newest generation's journal in a data dir
// (file names are zero-padded, so lexicographic max is newest).
func latestJournal(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no journal in %s (err %v)", dir, err)
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

// copyDirWithCut clones a data dir, truncating its newest journal to
// cut bytes — the simulated kill -9.
func copyDirWithCut(t *testing.T, src string, cut int64) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	j := latestJournal(t, src)
	data, err := os.ReadFile(j)
	if err != nil {
		t.Fatal(err)
	}
	if cut > int64(len(data)) {
		cut = int64(len(data))
	}
	if err := os.WriteFile(filepath.Join(dst, filepath.Base(j)), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// recordBoundaries returns the byte offset after the header and after
// every valid record of a journal file.
func recordBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	bounds := []int64{int64(wal.HeaderLen)}
	res, err := wal.Replay(path, func(p []byte) error {
		bounds = append(bounds, bounds[len(bounds)-1]+8+int64(len(p)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("reference journal %s has a torn tail", path)
	}
	return bounds
}

func assertRunsEqual(t *testing.T, ref, got crashRun, label string) {
	t.Helper()
	// Placements before the restored snapshot's hour are baked into the
	// snapshot rather than re-executed; everything from that hour on —
	// journal replay, the re-driven tail, and the drain — must
	// reproduce the reference sequence exactly.
	var want []placeRec
	for _, p := range ref.placements {
		if p.hour >= got.recovery.RecoveredSnapshotHour {
			want = append(want, p)
		}
	}
	if !reflect.DeepEqual(got.placements, want) {
		n := len(got.placements)
		if len(want) < n {
			n = len(want)
		}
		div := n
		for i := 0; i < n; i++ {
			if got.placements[i] != want[i] {
				div = i
				break
			}
		}
		t.Fatalf("%s: placement sequences diverge at %d/%d (recovered %d records)",
			label, div, len(want), len(got.placements))
	}
	if !reflect.DeepEqual(got.result, ref.result) {
		t.Fatalf("%s: Result differs:\nrecovered: %+v\nreference: %+v", label, summarize(got.result), summarize(ref.result))
	}
	if !bytes.Equal(got.state, ref.state) {
		t.Fatalf("%s: serialized final fleet state is not byte-identical", label)
	}
}

// TestCrashRecoveryEquivalence is the acceptance test of the
// durability layer: for every policy, cutting the journal anywhere —
// record boundaries and torn mid-record positions alike — and
// recovering yields placements, Result, and serialized state
// byte-identical to the run that never crashed. Two of the policies
// snapshot mid-run, so the sweep also exercises snapshot restore plus
// journal-tail replay; the others replay from the boot snapshot alone.
func TestCrashRecoveryEquivalence(t *testing.T) {
	jobs := crashJobs(t)
	cases := []struct {
		policy    sched.Policy
		snapEvery int
		fullSweep bool
	}{
		// The full boundary sweep runs without mid-run snapshots so the
		// final journal spans the entire run; two of the coarse cases
		// rotate mid-run, so their cuts recover through a snapshot
		// restore plus journal-tail replay.
		{sched.SpatioTemporal{Percentile: 40, Window: 48}, 0, true},
		{sched.FIFO{}, 0, false},
		{sched.CarbonGate{Percentile: 40, Window: 48}, 30, false},
		{sched.ForecastGate{Percentile: 40}, 25, false},
		{sched.GreenestFirst{}, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.policy.Name(), func(t *testing.T) {
			refDir := t.TempDir()
			ref := driveReference(t, refDir, crashConfig(tc.policy, tc.snapEvery), jobs)
			journal := latestJournal(t, refDir)
			bounds := recordBoundaries(t, journal)
			size := bounds[len(bounds)-1]

			// Cut points: every record boundary plus torn positions
			// inside the following record (mid length-prefix and
			// mid-payload) for the full-sweep policy; a coarse sweep
			// with the same flavors for the rest.
			cutSet := map[int64]bool{0: true, 1: true, size - 1: true, size: true}
			if tc.fullSweep {
				stride := 1
				if testing.Short() {
					stride = 9
				}
				for i := 0; i < len(bounds); i += stride {
					cutSet[bounds[i]] = true
					cutSet[bounds[i]+3] = true
					cutSet[bounds[i]+11] = true
				}
			} else {
				for _, frac := range []int64{5, 2} {
					cutSet[size/frac] = true
				}
				cutSet[bounds[len(bounds)/2]] = true
				cutSet[bounds[len(bounds)/3]+3] = true
			}
			var cuts []int64
			for c := range cutSet {
				if c >= 0 && c <= size {
					cuts = append(cuts, c)
				}
			}
			sort.Slice(cuts, func(a, b int) bool { return cuts[a] < cuts[b] })

			sawSnapshotRestore, sawTorn := false, false
			for _, cut := range cuts {
				dir := copyDirWithCut(t, refDir, cut)
				got := recoverAndFinish(t, dir, crashConfig(tc.policy, tc.snapEvery), jobs)
				assertRunsEqual(t, ref, got, fmt.Sprintf("cut at byte %d/%d", cut, size))
				if !got.recovery.Recovered {
					t.Fatalf("cut at %d: boot did not report recovery", cut)
				}
				if got.recovery.RecoveredSnapshotHour > 0 {
					sawSnapshotRestore = true
				}
				if got.recovery.TornTail {
					sawTorn = true
				}
			}
			if tc.snapEvery > 0 && !sawSnapshotRestore {
				t.Error("no cut exercised a mid-run snapshot restore")
			}
			if !sawTorn {
				t.Error("no cut exercised a torn journal tail")
			}
		})
	}
}

// TestRecoveryAfterCleanShutdown: a drain + close followed by a reboot
// from the same directory recovers every job and the exact final
// state, and a second reboot is stable (rotation is idempotent).
func TestRecoveryAfterCleanShutdown(t *testing.T) {
	jobs := crashJobs(t)
	policy := sched.CarbonGate{Percentile: 40, Window: 48}
	dir := t.TempDir()
	ref := driveReference(t, dir, crashConfig(policy, 24), jobs)

	for reboot := 1; reboot <= 2; reboot++ {
		clock := &hourClock{}
		cfg := crashConfig(policy, 24)
		cfg.DataDir = dir
		srv, err := New(mkSet(t, crashHorizon), clusters(crashSlots), cfg,
			WithClock(clock.now))
		if err != nil {
			t.Fatal(err)
		}
		rec := srv.Recovery()
		if !rec.Recovered || rec.RecoveredJobs != len(jobs) || rec.TornTail {
			t.Fatalf("reboot %d: recovery = %+v", reboot, rec)
		}
		state, err := srv.fleet.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(state, ref.state) {
			t.Fatalf("reboot %d: recovered state differs from the shut-down state", reboot)
		}
		if got := srv.Snapshot(); !reflect.DeepEqual(got, ref.result) {
			t.Fatalf("reboot %d: recovered Result differs", reboot)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
