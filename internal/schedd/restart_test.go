package schedd

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"carbonshift/internal/sched"
	"carbonshift/internal/wal"
)

// TestJournaledRestartUnderLoad is the durability race/stress
// regression: concurrent submitters hammer a journaling schedd while
// its replay clock advances (so admissions, steps, watermark appends,
// and snapshot rotations interleave), the server is shut down as
// SIGTERM would (stop serving, flush the journal), a second
// incarnation recovers from the same directory and takes another round
// of concurrent traffic, and the final drain must account for every
// acknowledged job from both incarnations exactly once — nothing lost
// across the restart, nothing double-completed. Run under -race this
// also certifies the journaling lock structure.
func TestJournaledRestartUnderLoad(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Policy: sched.GreenestFirst{}, Shards: 4,
		DataDir: dir, SnapshotEvery: 2,
		Sync: wal.SyncBatch, SyncInterval: 200 * time.Microsecond,
	}

	const (
		submitters = 6
		perWorker  = 30
		rounds     = 2
	)
	acked := make(map[int]int) // job id -> acks, across both incarnations

	for round := 0; round < rounds; round++ {
		clock := &hourClock{}
		srv, err := New(mkSet(t, 24*20), clusters(60), cfg, WithClock(clock.now))
		if err != nil {
			t.Fatal(err)
		}
		if round > 0 {
			rec := srv.Recovery()
			if !rec.Recovered || rec.TornTail {
				t.Fatalf("restart did not recover cleanly: %+v", rec)
			}
			if rec.RecoveredJobs != len(acked) {
				t.Fatalf("recovered %d jobs, first incarnation acknowledged %d", rec.RecoveredJobs, len(acked))
			}
		}
		ts := httptest.NewServer(srv.Handler())
		client, err := NewClient(ts.URL, ts.Client())
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()

		var (
			ackMu   sync.Mutex
			writers sync.WaitGroup
			errsCh  = make(chan error, submitters+1)
		)
		// Clock driver: march the replay forward so steps, watermarks,
		// and rotations interleave with admissions.
		writers.Add(1)
		go func() {
			defer writers.Done()
			for h := int64(1); h <= 8; h++ {
				clock.hour.Store(int64(round)*8 + h)
				time.Sleep(time.Millisecond)
				if _, err := client.Stats(ctx); err != nil {
					errsCh <- fmt.Errorf("stats: %w", err)
					return
				}
			}
		}()
		for w := 0; w < submitters; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				for i := 0; i < perWorker; i += 2 {
					reqs := []JobRequest{
						{Origin: "CLEAN", LengthHours: 1 + (w+i)%3, SlackHours: 48,
							Interruptible: true, Migratable: i%2 == 0},
						{Origin: "DIRTY", LengthHours: 1 + (w+i)%4, SlackHours: 48,
							Interruptible: i%3 != 0, Migratable: true},
					}
					ack, err := client.Submit(ctx, reqs...)
					if err != nil {
						errsCh <- fmt.Errorf("submit: %w", err)
						return
					}
					ackMu.Lock()
					for _, id := range ack.IDs {
						acked[id]++
					}
					ackMu.Unlock()
				}
			}(w)
		}
		writers.Wait()
		close(errsCh)
		for err := range errsCh {
			t.Fatal(err)
		}

		total := (round + 1) * submitters * perWorker
		if len(acked) != total {
			t.Fatalf("round %d: %d distinct ids acknowledged, want %d", round, len(acked), total)
		}

		if round < rounds-1 {
			// The SIGTERM path: stop serving, flush and close the
			// journal, abandon the process. No drain — unfinished work
			// must survive in the journal.
			ts.Close()
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			continue
		}

		// Final incarnation: drain and audit.
		res, err := srv.Drain()
		if err != nil {
			t.Fatal(err)
		}
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if len(res.Outcomes) != total {
			t.Fatalf("drained %d outcomes, want %d (lost or duplicated jobs across restart)", len(res.Outcomes), total)
		}
		seen := make(map[int]bool, total)
		completed := 0
		for _, o := range res.Outcomes {
			if seen[o.ID] {
				t.Fatalf("job %d appears twice in the drained result", o.ID)
			}
			seen[o.ID] = true
			if n := acked[o.ID]; n != 1 {
				t.Fatalf("job %d in result was acknowledged %d times", o.ID, n)
			}
			if o.Completed {
				completed++
			}
		}
		if completed != res.Completed || res.Completed != total {
			t.Fatalf("drain left %d/%d jobs uncompleted (Completed=%d)", total-completed, total, res.Completed)
		}
		final := srv.stats()
		if final.Submitted != total || final.Completed != total || final.Unresolved != 0 {
			t.Fatalf("final stats inconsistent: %+v", final)
		}
		if final.Durability == nil || final.Durability.Generation == 0 {
			t.Fatalf("stats missing durability block: %+v", final.Durability)
		}
	}
}
