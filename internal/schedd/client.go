package schedd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"carbonshift/internal/httpx"
)

// Client is a typed client for the scheduling service.
//
// # The 421 write-redirect contract
//
// In a replicated deployment only the primary accepts writes. A
// follower answers POST /v1/jobs (and any other state-changing
// request) with 421 Misdirected Request and a JSON body naming its
// primary:
//
//	{"error": "this instance is a read-only follower; ...",
//	 "primary": "http://primary:9090"}
//
// A single-endpoint Client surfaces the 421 as an error; a client
// built with NewFailoverClient follows the hint automatically — and
// also rotates to the next configured endpoint when one is dead — so a
// submitter configured with every replica's URL keeps writing across a
// failover: the dead primary is skipped, the promoted follower
// accepts. Writes are only replayed when the failure proves the server
// never saw them (a dial error, or the explicit 421 refusal); an
// ambiguous failure surfaces as an error rather than risking a
// double-submit. Reads served by a follower carry an
// X-Replication-Lag-Hours response header bounding their staleness.
type Client struct {
	base string
	hc   *http.Client
	eps  *httpx.Endpoints // nil for single-endpoint clients
}

// NewClient creates a client for the service at baseURL. A nil
// httpClient uses http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("schedd: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: u.String(), hc: httpClient}, nil
}

// NewFailoverClient creates a client over several replica base URLs.
// Requests go to a sticky current endpoint and fail over on connection
// errors, 5xx responses, and 421 write-redirects (following the
// primary hint, learning endpoints it did not know). A nil httpClient
// uses http.DefaultClient.
func NewFailoverClient(baseURLs []string, httpClient *http.Client) (*Client, error) {
	eps, err := httpx.NewEndpoints(baseURLs)
	if err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{hc: httpClient, eps: eps}, nil
}

// Endpoint returns the endpoint the next request will try first (the
// single base URL, or the failover rotation's current pick).
func (c *Client) Endpoint() string {
	if c.eps != nil {
		return c.eps.Current()
	}
	return c.base
}

// Submit submits one or more jobs and returns the acknowledgement.
// Against a gateway that split the batch across partitions, a partial
// outcome surfaces as a *PartialError carrying the admitted ids.
func (c *Client) Submit(ctx context.Context, jobs ...JobRequest) (SubmitResponse, error) {
	if len(jobs) == 0 {
		return SubmitResponse{}, fmt.Errorf("schedd: no jobs to submit")
	}
	var payload any = jobs[0]
	if len(jobs) > 1 {
		payload = SubmitRequest{Jobs: jobs}
	}
	buf, err := json.Marshal(payload)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("schedd: encoding request: %w", err)
	}
	var out SubmitResponse
	decode := func(statusCode int, status string, body []byte) error {
		return decodeSubmitAck(statusCode, status, body, func(b []byte) error {
			if err := json.Unmarshal(b, &out); err != nil {
				return fmt.Errorf("schedd: decoding response: %w", err)
			}
			return nil
		})
	}
	if c.eps != nil {
		if err := c.eps.Do(ctx, c.hc, http.MethodPost, "/v1/jobs", "application/json", buf, "schedd", decode); err != nil {
			return SubmitResponse{}, err
		}
		return out, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(buf))
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("schedd: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if err := httpx.DoRaw(c.hc, req, "schedd", decode); err != nil {
		return SubmitResponse{}, err
	}
	return out, nil
}

// decodeSubmitAck maps a submit response: 200 through ok (the
// protocol-specific ack decoder), 207 into a *PartialError, everything
// else through the shared error mapping. 207 sits on the Endpoints
// failover path's default branch, so a partial outcome is never
// replayed against another endpoint.
func decodeSubmitAck(statusCode int, status string, body []byte, ok func([]byte) error) error {
	switch statusCode {
	case http.StatusOK:
		return ok(body)
	case http.StatusMultiStatus:
		var ms MultiStatusResponse
		if err := json.Unmarshal(body, &ms); err == nil && len(ms.Outcomes) > 0 {
			return &PartialError{Resp: ms}
		}
	}
	return httpx.DecodeResponse(statusCode, status, body, "schedd", nil)
}

// SubmitBatch submits jobs over the binary batch protocol (POST
// /v1/jobs/batch) — the same admission semantics as Submit with the
// JSON codec replaced by the CRC-framed binary one, at a fraction of
// the encode/decode cost. Failover, the 421 write-redirect contract,
// and trace propagation behave exactly as on Submit: only 200
// responses are binary, every error keeps the shared JSON error shape.
func (c *Client) SubmitBatch(ctx context.Context, jobs ...JobRequest) (SubmitResponse, error) {
	if len(jobs) == 0 {
		return SubmitResponse{}, fmt.Errorf("schedd: no jobs to submit")
	}
	for i := range jobs {
		// The wire format is unsigned; catch nonsense the server-side
		// validator would reject anyway before it wraps around.
		if jobs[i].LengthHours < 0 || jobs[i].SlackHours < 0 {
			return SubmitResponse{}, fmt.Errorf("schedd: job %d has negative length or slack", i)
		}
	}
	payload := appendBinarySubmit(nil, jobs)
	var out SubmitResponse
	decode := func(statusCode int, status string, body []byte) error {
		return decodeSubmitAck(statusCode, status, body, func(b []byte) error {
			resp, err := decodeBinaryAck(b)
			if err != nil {
				return fmt.Errorf("schedd: %w", err)
			}
			out = resp
			return nil
		})
	}
	if c.eps != nil {
		if err := c.eps.Do(ctx, c.hc, http.MethodPost, "/v1/jobs/batch", BinaryContentType, payload, "schedd", decode); err != nil {
			return SubmitResponse{}, err
		}
		return out, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs/batch", bytes.NewReader(payload))
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("schedd: building request: %w", err)
	}
	req.Header.Set("Content-Type", BinaryContentType)
	if err := httpx.DoRaw(c.hc, req, "schedd", decode); err != nil {
		return SubmitResponse{}, err
	}
	return out, nil
}

// Job returns the live status of one job.
func (c *Client) Job(ctx context.Context, id int) (JobResponse, error) {
	var out JobResponse
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), nil, &out); err != nil {
		return JobResponse{}, err
	}
	return out, nil
}

// Stats returns the fleet-wide aggregate.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return StatsResponse{}, err
	}
	return out, nil
}

// Healthz reports service liveness.
func (c *Client) Healthz(ctx context.Context) error {
	var out map[string]string
	return c.do(ctx, http.MethodGet, "/healthz", nil, &out)
}

// Promote asks a follower to take over as primary (idempotent: a
// primary answers promoted=false). Note this goes to the client's
// current endpoint directly — promotion is exactly the case where the
// failover redirect must NOT bounce the request back to the primary.
func (c *Client) Promote(ctx context.Context) (PromoteResponse, error) {
	var out PromoteResponse
	base := c.Endpoint()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/repl/promote", nil)
	if err != nil {
		return out, fmt.Errorf("schedd: building request: %w", err)
	}
	if err := httpx.DoJSON(c.hc, req, "schedd", &out); err != nil {
		return out, err
	}
	return out, nil
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if c.eps != nil {
		return c.eps.DoJSON(ctx, c.hc, method, path, in, "schedd", out)
	}
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("schedd: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("schedd: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return httpx.DoJSON(c.hc, req, "schedd", out)
}
