package schedd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"carbonshift/internal/httpx"
)

// Client is a typed client for the scheduling service.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the service at baseURL. A nil
// httpClient uses http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("schedd: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: u.String(), hc: httpClient}, nil
}

// Submit submits one or more jobs and returns the acknowledgement.
func (c *Client) Submit(ctx context.Context, jobs ...JobRequest) (SubmitResponse, error) {
	if len(jobs) == 0 {
		return SubmitResponse{}, fmt.Errorf("schedd: no jobs to submit")
	}
	var payload any = jobs[0]
	if len(jobs) > 1 {
		payload = SubmitRequest{Jobs: jobs}
	}
	var out SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", payload, &out); err != nil {
		return SubmitResponse{}, err
	}
	return out, nil
}

// Job returns the live status of one job.
func (c *Client) Job(ctx context.Context, id int) (JobResponse, error) {
	var out JobResponse
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), nil, &out); err != nil {
		return JobResponse{}, err
	}
	return out, nil
}

// Stats returns the fleet-wide aggregate.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return StatsResponse{}, err
	}
	return out, nil
}

// Healthz reports service liveness.
func (c *Client) Healthz(ctx context.Context) error {
	var out map[string]string
	return c.do(ctx, http.MethodGet, "/healthz", nil, &out)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("schedd: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("schedd: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return httpx.DoJSON(c.hc, req, "schedd", out)
}
