package schedd

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carbonshift/internal/sched"
	"carbonshift/internal/trace"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// mkSet builds the same two-region world as the sched tests: CLEAN is
// flat and green, DIRTY has a strong diurnal cycle.
func mkSet(t testing.TB, hours int) *trace.Set {
	t.Helper()
	clean := make([]float64, hours)
	dirty := make([]float64, hours)
	for h := 0; h < hours; h++ {
		clean[h] = 20
		if h%24 < 12 {
			dirty[h] = 200
		} else {
			dirty[h] = 800
		}
	}
	s, err := trace.NewSet([]*trace.Trace{
		trace.New("CLEAN", t0, clean),
		trace.New("DIRTY", t0, dirty),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func clusters(slots int) []sched.Cluster {
	return []sched.Cluster{{Region: "CLEAN", Slots: slots}, {Region: "DIRTY", Slots: slots}}
}

// hourClock is a settable replay clock: the served hour is whatever the
// test last stored.
type hourClock struct{ hour atomic.Int64 }

func (c *hourClock) now() time.Time { return t0.Add(time.Duration(c.hour.Load()) * time.Hour) }

func startServer(t testing.TB, cfg Config, slots int, opts ...Option) (*Server, *Client, *hourClock) {
	t.Helper()
	clock := &hourClock{}
	srv, err := New(mkSet(t, 24*20), clusters(slots), cfg, append(opts, WithClock(clock.now))...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return srv, client, clock
}

func TestSubmitAndLifecycle(t *testing.T) {
	_, client, clock := startServer(t, Config{Policy: sched.FIFO{}}, 4)
	ctx := context.Background()

	ack, err := client.Submit(ctx, JobRequest{Origin: "DIRTY", LengthHours: 3, SlackHours: 24})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 1 || len(ack.IDs) != 1 || ack.ArrivalHour != 0 {
		t.Fatalf("ack = %+v", ack)
	}
	id := ack.IDs[0]

	job, err := client.Job(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "queued" || job.RemainingHours != 3 {
		t.Fatalf("fresh job = %+v", job)
	}

	// One replay hour later FIFO has started it.
	clock.hour.Store(1)
	job, err = client.Job(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "running" || job.Region != "DIRTY" || job.RemainingHours != 2 {
		t.Fatalf("after 1h = %+v", job)
	}

	clock.hour.Store(3)
	job, err = client.Job(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" || job.CompletedAt != 3 || job.EmissionsG != 600 {
		t.Fatalf("final = %+v", job)
	}
}

func TestBatchSubmit(t *testing.T) {
	_, client, clock := startServer(t, Config{Policy: sched.GreenestFirst{}}, 8)
	ctx := context.Background()
	clock.hour.Store(2)

	batch := []JobRequest{
		{Origin: "DIRTY", LengthHours: 2, SlackHours: 12, Migratable: true},
		{Origin: "CLEAN", LengthHours: 1, SlackHours: 12},
		{Origin: "DIRTY", LengthHours: 4, SlackHours: 12, Interruptible: true},
	}
	ack, err := client.Submit(ctx, batch...)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 3 || ack.ArrivalHour != 2 {
		t.Fatalf("ack = %+v", ack)
	}
	clock.hour.Store(8)
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != 3 || stats.Completed != 3 || stats.Missed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The migratable DIRTY job must have been routed to CLEAN.
	job, err := client.Job(ctx, ack.IDs[0])
	if err != nil {
		t.Fatal(err)
	}
	if job.Region != "CLEAN" {
		t.Fatalf("migratable job ran in %q, want CLEAN", job.Region)
	}
}

func TestStatsShape(t *testing.T) {
	_, client, _ := startServer(t, Config{Policy: sched.FIFO{}, Seed: 42}, 4)
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Policy != "fifo" || stats.Seed != 42 || stats.Horizon != 24*20 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.Clusters) != 2 || stats.Clusters[0].Region != "CLEAN" || stats.Clusters[0].Slots != 4 {
		t.Fatalf("clusters = %+v", stats.Clusters)
	}
}

func TestHealthz(t *testing.T) {
	_, client, _ := startServer(t, Config{Policy: sched.FIFO{}}, 1)
	if err := client.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, client, _ := startServer(t, Config{Policy: sched.FIFO{}}, 1)
	ctx := context.Background()
	if _, err := client.Submit(ctx, JobRequest{Origin: "NOPE", LengthHours: 1}); err == nil ||
		!strings.Contains(err.Error(), "no cluster") {
		t.Errorf("orphan origin: err = %v", err)
	}
	if _, err := client.Submit(ctx, JobRequest{Origin: "CLEAN", LengthHours: 0}); err == nil {
		t.Error("zero-length job accepted")
	}
	id := 7
	if _, err := client.Submit(ctx, JobRequest{ID: &id, Origin: "CLEAN", LengthHours: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(ctx, JobRequest{ID: &id, Origin: "CLEAN", LengthHours: 1}); err == nil ||
		!strings.Contains(err.Error(), "duplicate job id") {
		t.Errorf("duplicate id: err = %v", err)
	}
}

// TestAutoIDSkipsExplicitIDs: a client that pins low ids (as loadgen
// does) must not wedge later auto-assigned submissions.
func TestAutoIDSkipsExplicitIDs(t *testing.T) {
	_, client, _ := startServer(t, Config{Policy: sched.FIFO{}}, 8)
	ctx := context.Background()
	id0, id2 := 0, 2
	if _, err := client.Submit(ctx,
		JobRequest{ID: &id0, Origin: "CLEAN", LengthHours: 1},
		JobRequest{ID: &id2, Origin: "CLEAN", LengthHours: 1},
	); err != nil {
		t.Fatal(err)
	}
	// Auto assignment must fill the gap at 1, then skip past 2.
	ack, err := client.Submit(ctx,
		JobRequest{Origin: "CLEAN", LengthHours: 1},
		JobRequest{Origin: "CLEAN", LengthHours: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(ack.IDs) != 2 || ack.IDs[0] != 1 || ack.IDs[1] != 3 {
		t.Fatalf("auto ids = %v, want [1 3]", ack.IDs)
	}
}

func TestBadRequests(t *testing.T) {
	srv, _, _ := startServer(t, Config{Policy: sched.FIFO{}}, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-integer id: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d", resp.StatusCode)
	}
}

func TestQueueBackpressure(t *testing.T) {
	_, client, _ := startServer(t, Config{Policy: sched.FIFO{}, MaxQueue: 2}, 1)
	ctx := context.Background()
	if _, err := client.Submit(ctx,
		JobRequest{Origin: "CLEAN", LengthHours: 2, SlackHours: 48},
		JobRequest{Origin: "CLEAN", LengthHours: 2, SlackHours: 48},
	); err != nil {
		t.Fatal(err)
	}
	_, err := client.Submit(ctx, JobRequest{Origin: "CLEAN", LengthHours: 2, SlackHours: 48})
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("over-queue submit: err = %v", err)
	}
}

func TestJobStoreBound(t *testing.T) {
	_, client, clock := startServer(t, Config{Policy: sched.FIFO{}, MaxJobs: 2}, 4)
	ctx := context.Background()
	if _, err := client.Submit(ctx,
		JobRequest{Origin: "CLEAN", LengthHours: 1},
		JobRequest{Origin: "CLEAN", LengthHours: 1},
	); err != nil {
		t.Fatal(err)
	}
	// Even after the first jobs resolve, the store bound still applies:
	// resolved jobs stay queryable.
	clock.hour.Store(5)
	_, err := client.Submit(ctx, JobRequest{Origin: "CLEAN", LengthHours: 1})
	if err == nil || !strings.Contains(err.Error(), "job store full") {
		t.Fatalf("over-store submit: err = %v", err)
	}
}

func TestHorizonExhausted(t *testing.T) {
	_, client, clock := startServer(t, Config{Policy: sched.FIFO{}}, 1)
	clock.hour.Store(24 * 20)
	_, err := client.Submit(context.Background(), JobRequest{Origin: "CLEAN", LengthHours: 1})
	if err == nil || !strings.Contains(err.Error(), "horizon exhausted") {
		t.Fatalf("past-horizon submit: err = %v", err)
	}
}

func TestDrainResolvesEverything(t *testing.T) {
	srv, client, _ := startServer(t, Config{Policy: sched.CarbonGate{Percentile: 40, Window: 24}}, 4)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := client.Submit(ctx, JobRequest{
			Origin: "DIRTY", LengthHours: 3, SlackHours: 48, Interruptible: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The clock never advances; Drain alone must run the world forward.
	res, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 || res.Missed != 0 {
		t.Fatalf("drained result: completed %d missed %d", res.Completed, res.Missed)
	}
	if res.TotalEmissions <= 0 {
		t.Fatal("drained result has no emissions")
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	_, client, clock := startServer(t, Config{Policy: sched.FIFO{}}, 200)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := client.Submit(ctx, JobRequest{Origin: "CLEAN", LengthHours: 1, SlackHours: 24})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	clock.hour.Store(3)
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != 20 || stats.Completed != 20 {
		t.Fatalf("stats = %+v", stats)
	}
}
