// Package schedd is the online carbon-aware scheduling service: the
// live, Borg/Kubernetes-shaped component that internal/sched's batch
// simulator stands in for. It wraps an incremental, region-sharded
// sched.ShardedFleet in an HTTP API — jobs are submitted over the
// wire, placed by a pluggable carbon-aware policy against the replayed
// grid, and observable while they run:
//
//	POST /v1/jobs          submit one job or a batch (JSON)
//	POST /v1/jobs/batch    submit a batch on the binary fast path
//	GET  /v1/jobs/{id}     status: queued/running/done/missed
//	GET  /v1/stats         fleet emissions, utilization, miss rate
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          liveness
//
// Time is driven by the same injectable replay clock as
// internal/carbonapi: the wall clock maps to a trace hour, and the
// fleet is stepped forward to the current hour before every request is
// answered. Because the fleet is the exact engine behind sched.Run, an
// online run that submits the same jobs at the same hours produces
// byte-identical placements and emissions to the offline simulation —
// for any shard count — as asserted by this package's equivalence
// test.
//
// Concurrency: the server no longer serializes every request behind
// one mutex over a full-store walk. Stepping is guarded by stepMu with
// a lock-free fast path for the common already-caught-up case;
// admission (bounds + id assignment) holds the small admitMu while the
// fleet's own shard locks take care of insertion; Lookup and Stats ride
// the fleet's read path — Stats is O(shards) over incrementally
// maintained counters, never a walk over the job store.
//
// Durability: with Config.DataDir set, admissions and hour watermarks
// are journaled through internal/wal and the fleet state is
// snapshotted periodically; New recovers whatever a previous
// incarnation left behind — snapshot restore plus journal-tail replay,
// torn final writes tolerated — before serving, to state
// byte-identical to a server that never stopped (see durable.go and
// the crash-injection tests). /v1/stats reports the recovery counters.
//
// Replication: a durable server is also a replication primary, serving
// its journal as a resumable stream (GET /v1/repl/stream, snapshot
// bootstrap via GET /v1/repl/snapshot). NewFollower builds a hot
// standby that tails that stream into its own fleet — byte-identical
// to the primary at every shared watermark — serves read-only lookups
// and stats with an X-Replication-Lag-Hours header, rejects writes
// with 421 plus a primary hint, and promotes to primary on POST
// /v1/repl/promote or on primary health-probe loss (see repl.go,
// follower.go, and the replication/chaos/failover tests).
//
// Observability: GET /metrics serves every schedd_*, wal_*, repl_*,
// and http_* family (metrics.go) in Prometheus text format.
// Fleet-derived series are callback-backed over the same counters
// /v1/stats reads, so the two endpoints cannot disagree — a parity
// the metrics tests pin. Instrumentation is nil-safe and lock-cheap;
// WithoutMetrics disables it entirely for baseline benchmarking. The
// metric reference is docs/OBSERVABILITY.md; alert rules and the
// Grafana dashboard live in examples/dashboard/.
package schedd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"carbonshift/internal/httpx"
	"carbonshift/internal/repl"
	"carbonshift/internal/sched"
	"carbonshift/internal/serve"
	"carbonshift/internal/tenant"
	"carbonshift/internal/trace"
	"carbonshift/internal/tracing"
	"carbonshift/internal/wal"
)

// Defaults for Config's bounds.
const (
	DefaultMaxJobs  = 1 << 20
	DefaultMaxQueue = 1 << 16
)

// Config sets the service's scheduling world.
type Config struct {
	// Policy places flexible jobs (required).
	Policy sched.Policy
	// Horizon is the exclusive final trace hour (default: trace length).
	Horizon int
	// Shards is the fleet's region-shard count; 0 picks
	// min(GOMAXPROCS, regions). The choice affects only Step
	// parallelism, never placements.
	Shards int
	// MaxJobs bounds the total jobs the in-memory store retains;
	// submissions past it are rejected with 503 (default DefaultMaxJobs).
	MaxJobs int
	// MaxQueue bounds outstanding (unresolved) jobs; submissions that
	// would exceed it are rejected with 503 (default DefaultMaxQueue).
	MaxQueue int
	// Seed is echoed in /v1/stats so load generators can reproduce the
	// server's trace set for offline baselines.
	Seed uint64

	// Speedup is the replay speed (trace seconds per wall second, as in
	// cmd/schedd's -speedup flag); it converts the remainder of the
	// current fleet hour into the wall-clock Retry-After hint on 429
	// quota rejections. 0 means real time.
	Speedup float64

	// PartitionID, Partitions, and IDBase describe this server's place
	// in a gateway-fronted partitioned fleet: with Partitions > 0 the
	// identity is echoed in /v1/stats (so internal/gateway can learn
	// the topology from the servers themselves) and auto-assigned job
	// ids start at IDBase, keeping each partition's id range disjoint
	// for the gateway's id-range job lookup routing.
	PartitionID int
	Partitions  int
	IDBase      int

	// Tenants, when non-nil, turns on multi-tenancy: submissions carry a
	// tenant name, dequeue order is weighted-fair across tenants (class
	// weight × tenant weight), per-tenant quotas and rate limits reject
	// with 429, and /v1/stats and /metrics grow per-tenant views. The
	// config is part of the scheduling world: snapshots embed its
	// fingerprint, so a replica or a recovery must run the same tenant
	// set (cmd/schedd copies it from the primary's /v1/stats echo).
	Tenants *tenant.Config

	// DataDir, when non-empty, enables durability: admissions and hour
	// watermarks are journaled through internal/wal, the fleet state is
	// snapshotted periodically, and New recovers whatever a previous
	// incarnation left in the directory before serving.
	DataDir string
	// SnapshotEvery is the snapshot cadence in fleet hours (0 = only
	// the boot-time snapshot; the journal then carries the whole run).
	SnapshotEvery int
	// Sync is the journal fsync discipline (default wal.SyncBatch:
	// group flushes on SyncInterval, so an ack's durability window is
	// bounded by that interval; wal.SyncAlways makes every ack
	// durable before it is sent).
	Sync wal.SyncMode
	// SyncInterval is the wal.SyncBatch flush cadence (default
	// wal.DefaultBatchInterval).
	SyncInterval time.Duration

	// Advertise is this server's own public base URL, echoed in
	// /v1/stats so operators and failover clients can learn the
	// topology. Optional.
	Advertise string

	// TraceSampleEvery head-samples 1 in N submit traces (0 =
	// tracing.DefaultSampleEvery, 1 = every request, negative = never);
	// TraceSlow is the always-sample-on-slow threshold (0 =
	// tracing.DefaultSlowThreshold). See internal/tracing and
	// WithoutTracing.
	TraceSampleEvery int
	TraceSlow        time.Duration
}

// Server is the online scheduling service.
type Server struct {
	fleet *sched.ShardedFleet

	traceStart time.Time
	now        func() time.Time
	clusters   []sched.Cluster
	cfg        Config

	// stepMu serializes fleet catch-up stepping and draining. known is
	// the highest hour the fleet is known to have reached; requests
	// whose target hour is already covered skip the lock entirely.
	stepMu sync.Mutex
	known  atomic.Int64

	// failed pins the first policy fault; it poisons the service.
	failed atomic.Pointer[serverFailure]

	// admitMu covers admission control: bound checks plus id
	// assignment, so the store/queue bounds are exact even under
	// concurrent submitters. Admission journal records are appended
	// under it, which makes journal order equal fleet submission order.
	// inBatch is admit's id-dedup scratch, reused across admissions
	// (cleared on exit) so the hot path allocates no per-request map.
	admitMu sync.Mutex
	nextID  int
	inBatch map[int]bool

	// origins interns the cluster table's region strings for the binary
	// decoder (read-only after New).
	origins map[string]string

	// Tenancy (nil/empty without Config.Tenants): gate enforces quotas
	// and rate limits at admission, tenants interns configured tenant
	// names for the binary decoder (read-only after New), gateClock is
	// the token-bucket time source (nil = time.Now; injectable for
	// tests), and tenantCounts is admit's per-batch tally scratch,
	// reused under admitMu like inBatch.
	gate         *tenant.Gate
	tenants      map[string]string
	gateClock    func() time.Time
	tenantCounts map[string]int

	// dur is the journaling state (nil without Config.DataDir);
	// recovery describes what boot — or a promotion — restored. Both
	// are atomic because promotion installs them on a live server
	// while lock-free readers (stats, the repl source) look on.
	dur      atomic.Pointer[durable]
	recovery atomic.Pointer[DurabilityStats]

	// Replication: role flips follower → primary exactly once (at
	// promotion), fol holds the tail session for servers built by
	// NewFollower, source serves the journal stream on durable
	// primaries, and onPromote lets cmd/schedd rebase its replay clock
	// when a follower takes over.
	role      atomic.Int32
	fol       *followerState
	source    *repl.Source
	onPromote func(hour int)

	// mx is the /metrics instrumentation (nil when built
	// WithoutMetrics); noMetrics records the option before initMetrics
	// would run. See metrics.go.
	mx        *serverMetrics
	noMetrics bool

	// tr is the request tracer (nil when built WithoutTracing); every
	// span call no-ops through it when nil. See tracing.go.
	tr        *tracing.Tracer
	noTracing bool
}

type serverFailure struct{ err error }

// Option configures a Server.
type Option func(*Server)

// WithClock injects the time source (for replay and tests). Trace hour
// 0 corresponds to the trace set's start time.
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// WithRecorder observes every executed job-hour (hour, job id, region)
// in deterministic order — the hook the equivalence test uses.
func WithRecorder(rec func(hour, jobID int, region string)) Option {
	return func(s *Server) { s.fleet.OnPlace = rec }
}

// WithGateClock injects the tenant gate's token-bucket time source
// (for rate-limit tests). The gate meters wall-clock request floods,
// so it deliberately does not share the replay clock WithClock sets.
func WithGateClock(now func() time.Time) Option {
	return func(s *Server) { s.gateClock = now }
}

// WithPromoteNotify registers a callback invoked (once) when a
// follower promotes to primary, with the fleet hour at promotion —
// cmd/schedd uses it to rebase its replay clock so the new primary's
// time continues from the replicated state instead of hour zero.
func WithPromoteNotify(fn func(hour int)) Option {
	return func(s *Server) { s.onPromote = fn }
}

// New builds the service over the trace set and regional clusters.
func New(set *trace.Set, clusters []sched.Cluster, cfg Config, opts ...Option) (*Server, error) {
	if cfg.Horizon == 0 {
		cfg.Horizon = set.Len()
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	fleet, err := sched.NewShardedFleet(set, clusters, cfg.Policy, cfg.Horizon, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		fleet:      fleet,
		traceStart: set.Start(),
		now:        time.Now,
		clusters:   clusters,
		cfg:        cfg,
		nextID:     cfg.IDBase,
		inBatch:    make(map[int]bool),
		origins:    make(map[string]string, len(clusters)),
	}
	for _, c := range clusters {
		s.origins[c.Region] = c.Region
	}
	if cfg.Tenants != nil {
		fleet.SetFairQueue(tenant.NewFairQueue(cfg.Tenants))
		names := cfg.Tenants.Names()
		s.tenants = make(map[string]string, len(names))
		for _, n := range names {
			s.tenants[n] = n
		}
		s.tenantCounts = make(map[string]int)
	}
	for _, o := range opts {
		o(s)
	}
	if cfg.Tenants != nil {
		// Built after the options so WithGateClock can inject the
		// token-bucket time source.
		s.gate = tenant.NewGate(cfg.Tenants, s.gateClock)
	}
	// Metrics and tracing come up before the durable layer so the
	// journal opened by openDurable is metered and traced from its first
	// record.
	if !s.noMetrics {
		s.initMetrics(set)
	}
	if !s.noTracing {
		s.initTracing()
	}
	// Recovery runs after the options so an injected recorder observes
	// replayed placements exactly as it would have observed them live.
	if cfg.DataDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
		s.source = repl.NewSource(s)
		// Quota windows continue where the recovered incarnation stopped.
		s.resetGate()
	}
	return s, nil
}

// resetGate rebuilds the admission gate's quota windows from the
// fleet's own arrival records for its current hour — the recovery and
// promotion path, so per-tenant quota enforcement resumes exactly
// where the previous incarnation (or the replicated primary) stopped
// instead of granting every tenant a fresh window.
func (s *Server) resetGate() {
	if s.gate == nil {
		return
	}
	h := s.fleet.Hour()
	s.gate.Reset(h, s.fleet.TenantArrivals(h))
}

// hourNow maps the clock to a fleet hour, clamped into [0, horizon].
func (s *Server) hourNow() int {
	h := int(s.now().UTC().Sub(s.traceStart) / time.Hour)
	if h < 0 {
		h = 0
	}
	if h > s.cfg.Horizon {
		h = s.cfg.Horizon
	}
	return h
}

func (s *Server) failure() error {
	if f := s.failed.Load(); f != nil {
		return f.err
	}
	return nil
}

// advance steps the fleet to the clock's current hour. The fast path —
// the fleet already caught up — is a single atomic load; only requests
// that actually cross an hour boundary contend on stepMu. ctx carries
// the request's trace, so a submit that lands on an hour boundary
// shows the catch-up cost as its own span.
func (s *Server) advance(ctx context.Context) error {
	if err := s.failure(); err != nil {
		return err
	}
	if s.isFollower() {
		// A follower's fleet is driven by the replication stream, never
		// by the local clock; reads serve whatever has been applied.
		return nil
	}
	target := s.hourNow()
	if int(s.known.Load()) >= target {
		return nil
	}
	_, sp := tracing.StartSpan(ctx, "fleet.catchup")
	defer sp.End()
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	if err := s.failure(); err != nil {
		return err
	}
	from := s.fleet.Hour()
	stepped := false
	for s.fleet.Hour() < target {
		if err := s.stepOnce(); err != nil {
			s.failed.Store(&serverFailure{err})
			return err
		}
		stepped = true
	}
	sp.SetAttr(tracing.Int("hours", s.fleet.Hour()-from))
	if stepped {
		if err := s.journalWatermark(s.fleet.Hour()); err != nil {
			s.failed.Store(&serverFailure{err})
			return err
		}
		if err := s.maybeSnapshot(); err != nil {
			s.failed.Store(&serverFailure{err})
			return err
		}
	}
	if t := int64(target); t > s.known.Load() {
		s.known.Store(t)
	}
	return nil
}

// JobRequest is one job submission. ID is optional: when nil the server
// assigns the next sequential id. Arrival is always the current replay
// hour — jobs cannot be submitted into the past or future.
type JobRequest struct {
	ID            *int   `json:"id,omitempty"`
	Origin        string `json:"origin"`
	Tenant        string `json:"tenant,omitempty"`
	LengthHours   int    `json:"length_hours"`
	SlackHours    int    `json:"slack_hours"`
	Interruptible bool   `json:"interruptible"`
	Migratable    bool   `json:"migratable"`
}

// SubmitRequest is the POST /v1/jobs payload: either a bare JobRequest
// or {"jobs": [...]} for a batch.
type SubmitRequest struct {
	JobRequest
	Jobs []JobRequest `json:"jobs,omitempty"`
}

// SubmitResponse acknowledges admitted jobs.
type SubmitResponse struct {
	IDs         []int `json:"ids"`
	ArrivalHour int   `json:"arrival_hour"`
	Accepted    int   `json:"accepted"`
}

// JobResponse is the GET /v1/jobs/{id} payload.
type JobResponse struct {
	ID             int     `json:"id"`
	State          string  `json:"state"` // queued | running | done | missed
	Origin         string  `json:"origin"`
	Tenant         string  `json:"tenant,omitempty"`
	Region         string  `json:"region,omitempty"`
	ArrivalHour    int     `json:"arrival_hour"`
	DeadlineHour   int     `json:"deadline_hour"`
	RemainingHours int     `json:"remaining_hours"`
	CompletedAt    int     `json:"completed_at,omitempty"`
	EmissionsG     float64 `json:"emissions_g"`
	WaitHours      int     `json:"wait_hours"`
	Migrations     int     `json:"migrations"`
}

// ClusterInfo describes one regional cluster in /v1/stats.
type ClusterInfo struct {
	Region string `json:"region"`
	Slots  int    `json:"slots"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	Policy          string        `json:"policy"`
	Hour            int           `json:"hour"`
	Horizon         int           `json:"horizon"`
	Shards          int           `json:"shards"`
	Seed            uint64        `json:"seed"`
	Clusters        []ClusterInfo `json:"clusters"`
	Submitted       int           `json:"submitted"`
	Completed       int           `json:"completed"`
	Missed          int           `json:"missed"`
	Running         int           `json:"running"`
	QueueDepth      int           `json:"queue_depth"`
	Unresolved      int           `json:"unresolved"`
	TotalEmissionsG float64       `json:"total_emissions_g"`
	Utilization     float64       `json:"utilization"`
	MissRate        float64       `json:"miss_rate"`
	// Tenants is the per-tenant accounting view (sorted by name) and
	// TenantConfig echoes the live tenant registry — the echo is how a
	// follower's cmd/schedd copies the primary's exact tenant world, the
	// same way it copies the trace seed. Both are absent without
	// Config.Tenants.
	Tenants      []TenantStatsEntry `json:"tenants,omitempty"`
	TenantConfig []tenant.Spec      `json:"tenant_config,omitempty"`
	// Durability describes the journaling layer and the boot-time
	// recovery; absent when the server runs in-memory only.
	Durability *DurabilityStats `json:"durability,omitempty"`
	// Replication describes the replication session — role, cursor,
	// lag — for followers, promoted primaries, and primaries with an
	// advertise URL.
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Partition identifies this server's slice of a partitioned fleet;
	// absent unless Config.Partitions is set.
	Partition *PartitionInfo `json:"partition,omitempty"`
}

// PartitionInfo is the /v1/stats partition echo: which of the Count
// partitions this server is, and where its auto-assigned id range
// starts. internal/gateway reads it (together with the clusters block)
// to learn routing tables from the partitions themselves.
type PartitionInfo struct {
	ID     int `json:"id"`
	Count  int `json:"count"`
	IDBase int `json:"id_base"`
}

// TenantStatsEntry is one tenant's row in the /v1/stats tenants block:
// its configured class and effective weight plus the fleet's live
// per-tenant accounting.
type TenantStatsEntry struct {
	Name       string       `json:"name"`
	Class      tenant.Class `json:"class"`
	Weight     int          `json:"weight"`
	Submitted  int          `json:"submitted"`
	Completed  int          `json:"completed"`
	Missed     int          `json:"missed"`
	Running    int          `json:"running"`
	QueueDepth int          `json:"queue_depth"`
	Unresolved int          `json:"unresolved"`
	SlotHours  int          `json:"slot_hours"`
	EmissionsG float64      `json:"emissions_g"`
}

// ErrorResponse is the JSON error body. Primary carries the
// write-redirect hint on 421 responses from a follower (see client.go
// for the contract). RetryAfter mirrors the Retry-After header on
// backpressure rejections (429/503): seconds until a retry can
// succeed, carried in-body too so it survives every proxy and client
// hop that preserves the JSON error shape.
type ErrorResponse struct {
	Error      string `json:"error"`
	Primary    string `json:"primary,omitempty"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

// Handler returns the HTTP handler for the service. On a follower,
// every response carries X-Replication-Lag-Hours — how many fleet
// hours the replicated state trails the primary's last heartbeat — so
// read clients can bound staleness.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/batch", s.handleSubmitBinary)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/repl/stream", s.handleReplStream)
	mux.HandleFunc("GET /v1/repl/snapshot", s.handleReplSnapshot)
	mux.HandleFunc("POST /v1/repl/promote", s.handleReplPromote)
	if s.mx != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.tr != nil {
		mux.Handle("GET /debug/traces", s.tr.Handler())
	}
	var h http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.isFollower() {
			w.Header().Set("X-Replication-Lag-Hours", strconv.Itoa(s.replicationLag()))
		}
		mux.ServeHTTP(w, r)
	})
	if s.mx != nil {
		h = s.mx.http.Wrap(h)
	}
	// Tracing wraps outermost so the root span covers the metrics
	// wrapper too; the two compose in either order (the serve middleware
	// test pins that), this order just keeps the span inclusive.
	h = serve.NewHTTPTracing(s.tr, slog.Default()).Wrap(h)
	return h
}

// decodeSubmit parses the POST /v1/jobs payload — a bare JobRequest or
// {"jobs": [...]} — into the job batch to admit. It is the fuzzed
// entry point of the request-parsing path. An explicit empty batch
// ({"jobs": []}) is rejected rather than misread as a bare zero-valued
// job, and so is any non-whitespace data trailing the JSON value —
// json.Decoder stops at the first value, which would otherwise
// silently accept concatenated or garbage-suffixed bodies.
func decodeSubmit(r io.Reader) ([]JobRequest, error) {
	dec := json.NewDecoder(r)
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		if err == nil {
			return nil, errors.New("bad request body: trailing data after JSON value")
		}
		return nil, fmt.Errorf("bad request body: trailing data: %w", err)
	}
	if req.Jobs != nil {
		if len(req.Jobs) == 0 {
			return nil, errors.New("bad request body: empty job batch")
		}
		return req.Jobs, nil
	}
	return []JobRequest{req.JobRequest}, nil
}

// writeSubmitError maps a request-decode failure to its status: a body
// past httpx.MaxBody is backpressure (413, counted under its own
// reason), everything else is a plain 400.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.countBackpressure("oversize")
		writeJSON(w, http.StatusRequestEntityTooLarge,
			ErrorResponse{Error: fmt.Sprintf("request body exceeds the %d-byte limit", httpx.MaxBody)})
		return
	}
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
}

// retryAfterHint computes the Retry-After seconds for a backpressure
// rejection: a rate 429 carries the gate's token-refill time, a quota
// 429 the wall-clock remainder of the current fleet hour (the quota
// window resets on the hour rollover), and a 503 a short fixed hint —
// capacity drains as the fleet steps, there is no exact bound.
func (s *Server) retryAfterHint(status int, err error) int {
	switch {
	case errors.Is(err, tenant.ErrRate):
		if after := tenant.RetryAfterSeconds(err); after > 0 {
			return after
		}
		return 1
	case errors.Is(err, tenant.ErrQuota):
		return s.quotaRetryAfter()
	case status == http.StatusServiceUnavailable:
		return 1
	}
	return 0
}

// quotaRetryAfter maps the remainder of the current fleet hour into
// wall seconds through the replay speedup. The quota window is keyed
// to the fleet hour, so this is exactly when the rejected tenant's
// budget resets.
func (s *Server) quotaRetryAfter() int {
	elapsed := s.now().UTC().Sub(s.traceStart)
	rem := time.Hour
	if elapsed > 0 {
		if into := elapsed % time.Hour; into > 0 {
			rem = time.Hour - into
		}
	}
	speed := s.cfg.Speedup
	if speed <= 0 {
		speed = 1
	}
	after := int((rem.Seconds() + speed - 1) / speed)
	if after < 1 {
		after = 1
	}
	return after
}

// writeAdmitError renders an admission rejection, stamping the
// Retry-After hint (header and retry_after body field) on every
// 429/503 so clients and the gateway can pace their retries.
func (s *Server) writeAdmitError(w http.ResponseWriter, status int, err error) {
	resp := ErrorResponse{Error: err.Error()}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if after := s.retryAfterHint(status, err); after > 0 {
			resp.RetryAfter = after
			w.Header().Set("Retry-After", strconv.Itoa(after))
		}
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if mx := s.mx; mx != nil {
		mx.submitJSON.Inc()
		t0 := time.Now()
		defer func() { mx.submitSeconds.Observe(time.Since(t0).Seconds()) }()
	}
	if s.isFollower() {
		s.writeMisdirected(w)
		return
	}
	ctx := r.Context()
	_, dsp := tracing.StartSpan(ctx, "schedd.decode")
	batch, err := decodeSubmit(http.MaxBytesReader(w, r.Body, httpx.MaxBody))
	dsp.SetAttr(tracing.Int("jobs", len(batch)))
	dsp.End()
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	if err := s.advance(ctx); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	jobs := make([]sched.Job, len(batch))
	auto := make([]bool, len(batch))
	ids := make([]int, len(batch))
	for i := range batch {
		jr := &batch[i]
		jobs[i] = sched.Job{
			Origin:        jr.Origin,
			Tenant:        jr.Tenant,
			Length:        jr.LengthHours,
			Slack:         jr.SlackHours,
			Interruptible: jr.Interruptible,
			Migratable:    jr.Migratable,
		}
		if jr.ID != nil {
			jobs[i].ID = *jr.ID
		} else {
			auto[i] = true
		}
	}
	arrival, journal, seq, status, err := s.admit(ctx, jobs, auto, ids)
	if err != nil {
		s.writeAdmitError(w, status, err)
		return
	}
	// The durability wait runs after admitMu is released: buffering the
	// record under the lock fixed its order, and waiting outside it
	// lets concurrent submitters share one group-commit fsync instead
	// of serializing a full disk flush each.
	if journal != nil {
		_, wsp := tracing.StartSpan(ctx, "wal.fsync_wait")
		err := journal.WaitSynced(seq)
		wsp.End()
		if err != nil {
			s.failed.Store(&serverFailure{err})
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, SubmitResponse{IDs: ids, ArrivalHour: arrival, Accepted: len(ids)})
}

// admit is the admission critical section: bound checks, id
// assignment, fleet insertion, and journal-record buffering are
// deliberately serialized on admitMu so the store/queue bounds stay
// exact, auto-assigned ids can never collide, and journal order equals
// fleet submission order. The section is cheap (validation plus
// map/list inserts plus an in-memory append); the scalability win of
// the sharded design is that stepping, lookups, stats — and the
// journal fsync — never contend with it.
//
// jobs carries the decoded batch (protocol-independent: both the JSON
// and the binary route feed it); auto marks jobs needing an id, which
// is assigned in place, and ids is filled with the final assignment —
// caller-provided so the binary path can pass pooled scratch.
func (s *Server) admit(ctx context.Context, jobs []sched.Job, auto []bool, ids []int) (arrival int, journal *wal.Journal, seq uint64, status int, err error) {
	ctx, sp := tracing.StartSpan(ctx, "schedd.admit")
	defer sp.End()
	if sp != nil {
		lockStart := time.Now()
		s.admitMu.Lock()
		sp.SetAttr(tracing.Int("lock_wait_us", int(time.Since(lockStart).Microseconds())))
	} else {
		s.admitMu.Lock()
	}
	defer s.admitMu.Unlock()
	if s.fleet.Jobs()+len(jobs) > s.cfg.MaxJobs {
		s.countBackpressure("job_store_full")
		return 0, nil, 0, http.StatusServiceUnavailable, errors.New("job store full")
	}
	if s.fleet.Outstanding()+len(jobs) > s.cfg.MaxQueue {
		s.countBackpressure("queue_full")
		return 0, nil, 0, http.StatusServiceUnavailable, errors.New("queue full")
	}
	next := s.nextID
	defer clear(s.inBatch)
	for i := range jobs {
		if auto[i] {
			// Skip ids already taken by earlier (possibly explicit)
			// submissions so auto-assignment can never collide.
			for {
				_, taken := s.fleet.Lookup(next)
				if !taken && !s.inBatch[next] {
					break
				}
				next++
			}
			jobs[i].ID = next
			next++
		}
		ids[i] = jobs[i].ID
		s.inBatch[jobs[i].ID] = true
	}
	arrival, err = s.submitGated(jobs)
	if err != nil {
		switch {
		case errors.Is(err, sched.ErrHorizonExhausted):
			s.countBackpressure("horizon_exhausted")
			return 0, nil, 0, http.StatusServiceUnavailable, errors.New("replay horizon exhausted")
		case errors.Is(err, tenant.ErrQuota):
			s.countBackpressure("quota")
			return 0, nil, 0, http.StatusTooManyRequests, err
		case errors.Is(err, tenant.ErrRate):
			s.countBackpressure("rate")
			return 0, nil, 0, http.StatusTooManyRequests, err
		}
		return 0, nil, 0, http.StatusBadRequest, err
	}
	// Buffer the admission record before acknowledging (SubmitNow
	// stamped the arrivals into jobs). A journal failure poisons the
	// service — the fleet holds state the log does not. A sampled
	// trace's ID rides the record so the replication follower's apply
	// span joins this trace.
	var tid tracing.TraceID
	if sc := tracing.FromContext(ctx); sc.Sampled {
		tid = sc.TraceID
	}
	_, asp := tracing.StartSpan(ctx, "wal.append")
	journal, seq, err = s.journalAdmit(arrival, next, jobs, tid)
	asp.End()
	if err != nil {
		s.failed.Store(&serverFailure{err})
		return 0, nil, 0, http.StatusInternalServerError, err
	}
	s.nextID = next
	return arrival, journal, seq, http.StatusOK, nil
}

// submitGated feeds the batch through SubmitNowChecked with the tenant
// gate's quota/rate check evaluated at the frozen fleet hour — the
// same hour the fleet stamps as arrival, so the check can never race a
// concurrent step — then commits the consumed quota. A batch is atomic:
// one over-quota tenant rejects the whole batch (the 429's message
// names it), which is why tenant-isolating load generators batch per
// tenant. Without a tenant config this is plain SubmitNow. Must be
// called under admitMu (it reuses the tenantCounts scratch).
func (s *Server) submitGated(jobs []sched.Job) (int, error) {
	if s.gate == nil {
		return s.fleet.SubmitNow(jobs...)
	}
	defer clear(s.tenantCounts)
	for i := range jobs {
		s.tenantCounts[tenant.Normalize(jobs[i].Tenant)]++
	}
	arrival, err := s.fleet.SubmitNowChecked(func(hour int) error {
		for name, n := range s.tenantCounts {
			if err := s.gate.Check(name, n, hour); err != nil {
				s.countTenantRejected(name, n, err)
				return err
			}
		}
		return nil
	}, jobs...)
	if err != nil {
		return 0, err
	}
	for name, n := range s.tenantCounts {
		s.gate.Commit(name, n, arrival)
	}
	return arrival, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "job id must be an integer"})
		return
	}
	if err := s.advance(r.Context()); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	info, ok := s.fleet.Lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown job %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, jobResponse(info))
}

func jobResponse(info sched.JobInfo) JobResponse {
	resp := JobResponse{
		ID:             info.ID,
		State:          jobState(info),
		Origin:         info.Origin,
		Tenant:         info.Tenant,
		Region:         info.Region,
		ArrivalHour:    info.Arrival,
		DeadlineHour:   info.Deadline(),
		RemainingHours: info.Remaining,
		EmissionsG:     info.Emissions,
		WaitHours:      info.WaitHours,
		Migrations:     info.Migrations,
	}
	if info.Completed {
		resp.CompletedAt = info.CompletedAt
	}
	return resp
}

func jobState(info sched.JobInfo) string {
	switch {
	case info.MissedDeadline:
		return "missed"
	case info.Completed:
		return "done"
	case info.Running:
		return "running"
	default:
		return "queued"
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if err := s.advance(r.Context()); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.stats())
}

// stats assembles the monitoring view from the fleet's O(shards)
// incremental counters — no job-store walk, no global lock.
func (s *Server) stats() StatsResponse {
	st := s.fleet.Stats()
	resp := StatsResponse{
		Policy:          s.cfg.Policy.Name(),
		Hour:            st.Hour,
		Horizon:         st.Horizon,
		Shards:          s.fleet.NumShards(),
		Seed:            s.cfg.Seed,
		Submitted:       st.Submitted,
		Completed:       st.Completed,
		Missed:          st.Missed,
		Running:         st.Running,
		QueueDepth:      st.Queued,
		Unresolved:      st.Unresolved,
		TotalEmissionsG: st.TotalEmissions,
		Utilization:     st.Utilization(),
		Durability:      s.durabilityStats(),
		Replication:     s.replicationStats(),
	}
	if s.cfg.Partitions > 0 {
		resp.Partition = &PartitionInfo{ID: s.cfg.PartitionID, Count: s.cfg.Partitions, IDBase: s.cfg.IDBase}
	}
	if st.Submitted > 0 {
		resp.MissRate = float64(st.Missed) / float64(st.Submitted)
	}
	for _, c := range s.clusters {
		resp.Clusters = append(resp.Clusters, ClusterInfo{Region: c.Region, Slots: c.Slots})
	}
	if cfg := s.cfg.Tenants; cfg != nil {
		resp.TenantConfig = cfg.Tenants
		ts := s.fleet.TenantStats()
		names := make([]string, 0, len(ts))
		for name := range ts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t := ts[name]
			sp, _ := cfg.Lookup(name)
			resp.Tenants = append(resp.Tenants, TenantStatsEntry{
				Name:       name,
				Class:      sp.Class,
				Weight:     sp.Weight,
				Submitted:  t.Submitted,
				Completed:  t.Completed,
				Missed:     t.Missed,
				Running:    t.Running,
				QueueDepth: t.Queued,
				Unresolved: t.Unresolved,
				SlotHours:  t.SlotHours,
				EmissionsG: t.Emissions,
			})
		}
	}
	return resp
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if err := s.failure(); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Drain steps the fleet until every submitted job completes or the
// horizon is exhausted, ignoring the clock, and returns the final
// aggregate. Late jobs run to completion past their deadline, exactly
// as in the offline simulation. It is the graceful-shutdown path: stop
// accepting traffic, then let the world run out.
func (s *Server) Drain() (sched.Result, error) {
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	if err := s.failure(); err != nil {
		return sched.Result{}, err
	}
	stepped := false
	for !s.fleet.Done() && s.fleet.Outstanding() > 0 {
		if err := s.stepOnce(); err != nil {
			s.failed.Store(&serverFailure{err})
			return sched.Result{}, err
		}
		stepped = true
	}
	if stepped {
		if err := s.journalWatermark(s.fleet.Hour()); err != nil {
			s.failed.Store(&serverFailure{err})
			return sched.Result{}, err
		}
	}
	if j := s.liveJournal(); j != nil {
		if err := j.Sync(); err != nil {
			s.failed.Store(&serverFailure{err})
			return sched.Result{}, err
		}
	}
	if h := int64(s.fleet.Hour()); h > s.known.Load() {
		s.known.Store(h)
	}
	return s.fleet.Snapshot(), nil
}

// Snapshot returns the fleet's aggregate result so far.
func (s *Server) Snapshot() sched.Result {
	return s.fleet.Snapshot()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	httpx.WriteJSON(w, status, v)
}
