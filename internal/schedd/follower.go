package schedd

// Follower-mode construction and lifecycle. A follower is a Server
// built over the same scheduling world as its primary (trace set,
// clusters, policy, horizon — cmd/schedd derives them from the
// primary's /v1/stats config echo) that holds no authority of its own:
// its fleet is driven exclusively by the replication tail, reads are
// served from the replicated state with an X-Replication-Lag-Hours
// header, and writes bounce with 421 plus a primary hint. It becomes a
// primary only through Promote — explicitly via POST /v1/repl/promote,
// or automatically when the health-probe loop loses the primary.

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"carbonshift/internal/repl"
	"carbonshift/internal/sched"
	"carbonshift/internal/trace"
)

// FollowerConfig configures replication for NewFollower.
type FollowerConfig struct {
	// Primary is the primary schedd's base URL (required).
	Primary string
	// ProbeInterval is the primary health-probe cadence; 0 disables
	// automatic promotion.
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive failed probes trigger
	// automatic promotion (default 3).
	ProbeFailures int
	// ReconnectDelay is the tail's pause before re-dialing a dropped
	// stream (default 200ms).
	ReconnectDelay time.Duration
	// HTTPClient serves the tail and the probes; nil uses a dedicated
	// client without a global timeout (the stream is long-lived).
	HTTPClient *http.Client
	// OnWatermark, when set, is invoked on the apply goroutine after
	// each watermark record has stepped the fleet — the hook the
	// replication equivalence test snapshots state from.
	OnWatermark func(hour int)
}

// followerState is the replication half of a Server started by
// NewFollower. It outlives promotion (the tail's final cursor and
// counters stay visible in /v1/stats).
type followerState struct {
	cfg  FollowerConfig
	tail *repl.Tail
	hc   *http.Client

	// runMu guards the tail goroutine's lifecycle; promoteMu serializes
	// Promote against itself and keeps the probe loop from racing an
	// explicit promotion.
	runMu     sync.Mutex
	promoteMu sync.Mutex
	parent    context.Context
	cancel    context.CancelFunc
	running   bool
	tailWG    sync.WaitGroup
	probeWG   sync.WaitGroup
}

// NewFollower builds a read-only hot standby replicating the primary
// named in fcfg. The world (set, clusters, cfg.Policy, cfg.Horizon,
// cfg.Shards) must match the primary's — the fleet-image fingerprint
// check rejects a bootstrap from a mismatched primary. cfg.DataDir, if
// set, is NOT opened at construction: a follower's durability is the
// primary's journal; the directory is claimed at promotion. Call Start
// to begin replicating.
func NewFollower(set *trace.Set, clusters []sched.Cluster, cfg Config, fcfg FollowerConfig, opts ...Option) (*Server, error) {
	if u, err := url.Parse(fcfg.Primary); err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("schedd: follower: invalid primary URL %q", fcfg.Primary)
	}
	dataDir := cfg.DataDir
	cfg.DataDir = "" // claimed at promotion, not at boot
	s, err := New(set, clusters, cfg, opts...)
	if err != nil {
		return nil, err
	}
	s.cfg.DataDir = dataDir
	hc := fcfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	if fcfg.ProbeFailures <= 0 {
		fcfg.ProbeFailures = 3
	}
	s.role.Store(roleFollower)
	s.fol = &followerState{
		cfg:  fcfg,
		hc:   hc,
		tail: repl.NewTail(fcfg.Primary, s, hc, repl.TailConfig{ReconnectDelay: fcfg.ReconnectDelay}),
	}
	s.fol.tail.Register(s.Metrics())
	return s, nil
}

// Start launches the replication tail (and, when ProbeInterval is set,
// the primary health-probe loop) under ctx. A no-op on primaries, on
// an already-running follower, and after promotion.
func (s *Server) Start(ctx context.Context) {
	if s.fol == nil || !s.isFollower() {
		return
	}
	f := s.fol
	f.runMu.Lock()
	defer f.runMu.Unlock()
	if f.running {
		return
	}
	f.parent = ctx
	cctx, cancel := context.WithCancel(ctx)
	f.cancel = cancel
	f.running = true
	f.tailWG.Add(1)
	go func() {
		defer f.tailWG.Done()
		f.tail.Run(cctx)
		f.runMu.Lock()
		f.running = false
		f.runMu.Unlock()
	}()
	if f.cfg.ProbeInterval > 0 {
		f.probeWG.Add(1)
		go func() {
			defer f.probeWG.Done()
			s.probeLoop(cctx)
		}()
	}
}

// stopTail cancels the tail goroutine and waits for it; the cursor
// survives, so a later Start resumes the stream with no gap and no
// double-apply.
func (s *Server) stopTail() {
	f := s.fol
	f.runMu.Lock()
	if f.cancel != nil {
		f.cancel()
	}
	f.runMu.Unlock()
	f.tailWG.Wait()
}

// resumeTail restarts replication after a failed promotion, so a
// follower never silently stops tracking its primary.
func (s *Server) resumeTail() {
	f := s.fol
	f.runMu.Lock()
	parent := f.parent
	f.runMu.Unlock()
	if parent != nil && parent.Err() == nil {
		s.Start(parent)
	}
}

// probeLoop watches the primary's /healthz and promotes this follower
// after ProbeFailures consecutive losses. It exits once the server is
// no longer a follower or ctx ends.
func (s *Server) probeLoop(ctx context.Context) {
	f := s.fol
	tick := time.NewTicker(f.cfg.ProbeInterval)
	defer tick.Stop()
	failures := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if !s.isFollower() {
			return
		}
		if s.probePrimary(ctx) == nil {
			failures = 0
			continue
		}
		failures++
		if failures >= f.cfg.ProbeFailures {
			s.Promote() // error path resumes the tail; keep probing
			if !s.isFollower() {
				return
			}
			failures = 0
		}
	}
}

// probePrimary is one health check against the followed primary.
func (s *Server) probePrimary(ctx context.Context) error {
	f := s.fol
	timeout := f.cfg.ProbeInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Primary+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("schedd: primary /healthz returned %s", resp.Status)
	}
	return nil
}
