package schedd

// The tracing acceptance test: one trace ID links a client submit →
// schedd admission → WAL append → replication stream → follower apply,
// across what are logically two processes (primary and follower
// servers with separate tracers). Plus codec pinning for the optional
// trace-ID suffix on admit records — old records (no suffix) must keep
// decoding, so pre-tracing journals and golden files stay readable.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"carbonshift/internal/sched"
	"carbonshift/internal/tracing"
	"carbonshift/internal/wal"
)

func TestTraceLinksSubmitToFollowerApply(t *testing.T) {
	clock := &hourClock{}
	// The primary's own sampler is OFF: the only way anything records
	// here is the sampled flag arriving in the client's traceparent —
	// which is exactly the propagation chain under test.
	primary, err := New(mkSet(t, crashHorizon), clusters(crashSlots), Config{
		Policy: sched.FIFO{}, Horizon: crashHorizon,
		DataDir: t.TempDir(), Sync: wal.SyncNone,
		TraceSampleEvery: -1,
	}, WithClock(clock.now))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.source.Poll = 200 * time.Microsecond
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	follower, err := NewFollower(mkSet(t, crashHorizon), clusters(crashSlots), Config{
		Policy: sched.FIFO{}, Horizon: crashHorizon,
	}, FollowerConfig{
		Primary:        ts.URL,
		HTTPClient:     ts.Client(),
		ReconnectDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	follower.Start(ctx)

	// The client mints the trace, like cmd/loadgen -slowest does.
	ctr := tracing.New(tracing.Config{SampleEvery: 1})
	cctx, csp := ctr.StartRoot(context.Background(), "loadgen.submit")
	tid := tracing.FromContext(cctx).TraceID
	ack, err := client.Submit(cctx, JobRequest{Origin: "DIRTY", LengthHours: 2, SlackHours: 12})
	csp.End()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 1 {
		t.Fatalf("ack = %+v", ack)
	}

	// Primary side: the submit's server spans joined the client's trace.
	var td *tracing.TraceDump
	for _, cand := range primary.Tracer().Snapshot().Traces {
		if cand.TraceID == tid.String() {
			td = &cand
			break
		}
	}
	if td == nil {
		t.Fatalf("primary /debug/traces holds no trace %s", tid)
	}
	if td.Root != "POST /v1/jobs" {
		t.Fatalf("primary trace root = %q, want the submit route", td.Root)
	}
	have := map[string]bool{}
	for _, s := range td.Spans {
		have[s.Name] = true
	}
	for _, want := range []string{"POST /v1/jobs", "schedd.decode", "schedd.admit", "wal.append", "wal.fsync_wait"} {
		if !have[want] {
			t.Errorf("primary trace %s is missing span %q (have %v)", tid, want, td.Spans)
		}
	}

	// Follower side: the admit record carried the trace ID through the
	// stream, and the apply span joined the SAME trace over there.
	waitUntil(t, "follower apply", func() bool { return follower.fleet.Jobs() >= 1 })
	waitUntil(t, "follower apply span", func() bool {
		for _, cand := range follower.Tracer().Snapshot().Traces {
			if cand.TraceID == tid.String() {
				return true
			}
		}
		return false
	})
	for _, cand := range follower.Tracer().Snapshot().Traces {
		if cand.TraceID != tid.String() {
			continue
		}
		if cand.Root != "repl.apply" {
			t.Fatalf("follower trace root = %q, want repl.apply", cand.Root)
		}
		return
	}
	t.Fatal("unreachable")
}

func TestAdmitRecordTraceIDCodec(t *testing.T) {
	jobs := []sched.Job{
		{ID: 1, Origin: "CLEAN", Length: 2, Slack: 3, Arrival: 5},
		{ID: 2, Origin: "DIRTY", Length: 1, Slack: 0, Arrival: 5, Interruptible: true},
	}

	// Untraced records are byte-identical to the pre-tracing format.
	old := encodeAdmit(5, 7, jobs, tracing.TraceID{})
	arrival, next, gotJobs, tid, err := decodeAdmit(old)
	if err != nil {
		t.Fatalf("untraced record: %v", err)
	}
	if arrival != 5 || next != 7 || len(gotJobs) != 2 || !tid.IsZero() {
		t.Fatalf("untraced decode = (%d, %d, %d jobs, tid %v)", arrival, next, len(gotJobs), tid)
	}

	// A sampled record round-trips its 16-byte trace ID.
	want := tracing.TraceID{0xde, 0xad, 0xbe, 0xef, 15: 0x01}
	traced := encodeAdmit(5, 7, jobs, want)
	if got, wantLen := len(traced), len(old)+16; got != wantLen {
		t.Fatalf("traced record is %d bytes, want %d", got, wantLen)
	}
	if _, _, _, tid, err = decodeAdmit(traced); err != nil || tid != want {
		t.Fatalf("traced decode: tid=%v err=%v", tid, err)
	}

	// Any other trailing length is corruption, not a trace ID.
	for _, extra := range []int{1, 8, 15, 17} {
		bad := append(append([]byte{}, old...), make([]byte, extra)...)
		if _, _, _, _, err := decodeAdmit(bad); err == nil {
			t.Errorf("%d trailing bytes decoded without error", extra)
		}
	}
}

func TestRecoveryReplaysTracedRecords(t *testing.T) {
	// A journal holding trace-ID-suffixed admit records must recover
	// exactly like one without them.
	dir := t.TempDir()
	clock := &hourClock{}
	srv, err := New(mkSet(t, crashHorizon), clusters(crashSlots), Config{
		Policy: sched.FIFO{}, Horizon: crashHorizon,
		DataDir: dir, Sync: wal.SyncNone,
		TraceSampleEvery: 1, // every submit stamps its trace ID
	}, WithClock(clock.now))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Submit(context.Background(), JobRequest{Origin: "CLEAN", LengthHours: 1, SlackHours: 4}); err != nil {
			t.Fatal(err)
		}
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := New(mkSet(t, crashHorizon), clusters(crashSlots), Config{
		Policy: sched.FIFO{}, Horizon: crashHorizon,
		DataDir: dir, Sync: wal.SyncNone,
	}, WithClock(clock.now))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.fleet.Jobs(); got != 3 {
		t.Fatalf("recovered %d jobs, want 3", got)
	}
	if rec := re.Recovery(); !rec.Recovered {
		t.Fatalf("recovery = %+v, want Recovered", rec)
	}
}
