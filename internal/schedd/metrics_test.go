package schedd

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carbonshift/internal/metrics"
	"carbonshift/internal/sched"
)

// scrapeServer fetches and parses the server's /metrics through the
// full handler stack (middleware included).
func scrapeServer(t *testing.T, h http.Handler) *metrics.Scrape {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	sc, err := metrics.ParseText(rr.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return sc
}

func metricVal(t *testing.T, sc *metrics.Scrape, series string) float64 {
	t.Helper()
	v, ok := sc.Value(series)
	if !ok {
		t.Fatalf("series %s missing from /metrics", series)
	}
	return v
}

// TestMetricsStatsParity pins the design rule that /metrics and
// /v1/stats read the same fleet counters: after submissions, clock
// advances, misses, and completions, every shared quantity must agree
// exactly between a scrape and an adjacent stats snapshot.
func TestMetricsStatsParity(t *testing.T) {
	srv, client, clock := startServer(t, Config{Policy: sched.FIFO{}, MaxQueue: 64}, 2)
	ctx := context.Background()

	// A mix that produces completions, misses, and a standing queue:
	// more work than 2x2 slots can clear, some of it with no slack.
	for i := 0; i < 12; i++ {
		if _, err := client.Submit(ctx, JobRequest{Origin: "DIRTY", LengthHours: 4, SlackHours: 0}); err != nil {
			t.Fatal(err)
		}
	}
	clock.hour.Store(8)
	h := srv.Handler()
	sc := scrapeServer(t, h)
	st := srv.stats()

	for series, want := range map[string]float64{
		"schedd_jobs_submitted_total":  float64(st.Submitted),
		"schedd_jobs_completed_total":  float64(st.Completed),
		"schedd_jobs_missed_total":     float64(st.Missed),
		"schedd_jobs_running":          float64(st.Running),
		"schedd_queue_depth":           float64(st.QueueDepth),
		"schedd_jobs_unresolved":       float64(st.Unresolved),
		"schedd_fleet_hour":            float64(st.Hour),
		"schedd_fleet_horizon_hours":   float64(st.Horizon),
		"schedd_miss_rate":             st.MissRate,
		"schedd_utilization_ratio":     st.Utilization,
		"schedd_queue_limit":           64,
		"schedd_replication_lag_hours": 0,
	} {
		if got := metricVal(t, sc, series); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v (stats parity)", series, got, want)
		}
	}
	if got, want := metricVal(t, sc, "schedd_emissions_grams_total"), st.TotalEmissionsG; math.Abs(got-want) > 1e-6*math.Max(1, want) {
		t.Errorf("schedd_emissions_grams_total = %v, want %v", got, want)
	}
	if st.Missed == 0 || st.Completed == 0 {
		t.Fatalf("weak fixture: missed=%d completed=%d — parity not exercised", st.Missed, st.Completed)
	}

	// The submit latency histogram observed exactly the 12 requests the
	// client pushed through the handler.
	if got := metricVal(t, sc, "schedd_submit_latency_seconds_count"); got != 12 {
		t.Errorf("schedd_submit_latency_seconds_count = %v, want 12", got)
	}
	if got := metricVal(t, sc, "schedd_step_latency_seconds_count"); got < 8 {
		t.Errorf("schedd_step_latency_seconds_count = %v, want >= 8 (one per stepped hour)", got)
	}
}

// TestMetricsBackpressureCounter drives submissions into the queue
// bound and asserts the 503s are counted by reason.
func TestMetricsBackpressureCounter(t *testing.T) {
	srv, client, _ := startServer(t, Config{Policy: sched.FIFO{}, MaxQueue: 3}, 1)
	ctx := context.Background()
	rejected := 0
	for i := 0; i < 6; i++ {
		if _, err := client.Submit(ctx, JobRequest{Origin: "CLEAN", LengthHours: 2, SlackHours: 4}); err != nil {
			rejected++
		}
	}
	if rejected != 3 {
		t.Fatalf("rejected = %d, want 3", rejected)
	}
	sc := scrapeServer(t, srv.Handler())
	if got := metricVal(t, sc, `schedd_backpressure_total{reason="queue_full"}`); got != 3 {
		t.Errorf(`schedd_backpressure_total{reason="queue_full"} = %v, want 3`, got)
	}
	// The middleware counted the 503s under the submit route.
	if got := metricVal(t, sc, `http_requests_total{route="POST /v1/jobs",code="503"}`); got != 3 {
		t.Errorf(`http_requests_total{route="POST /v1/jobs",code="503"} = %v, want 3`, got)
	}
}

// TestMetricsCarbonSaved pins the run-at-origin counterfactual: under
// greenest-first, a migratable job originating in DIRTY during its
// dirty phase (200 g/kWh vs CLEAN's flat 20) executes on CLEAN, saving
// 180 g per executed hour; under FIFO the gauge stays zero.
func TestMetricsCarbonSaved(t *testing.T) {
	srv, client, clock := startServer(t, Config{Policy: sched.GreenestFirst{}}, 2)
	ctx := context.Background()
	if _, err := client.Submit(ctx, JobRequest{Origin: "DIRTY", LengthHours: 3, SlackHours: 24, Migratable: true, Interruptible: true}); err != nil {
		t.Fatal(err)
	}
	clock.hour.Store(4)
	sc := scrapeServer(t, srv.Handler())
	if got := metricVal(t, sc, `schedd_carbon_saved_grams{policy="greenest-first"}`); math.Abs(got-3*180) > 1e-9 {
		t.Errorf("carbon saved = %v, want %v (3 hours x (200-20))", got, 3.0*180)
	}

	fifoSrv, fifoClient, fifoClock := startServer(t, Config{Policy: sched.FIFO{}}, 2)
	if _, err := fifoClient.Submit(ctx, JobRequest{Origin: "DIRTY", LengthHours: 3, SlackHours: 24, Migratable: true, Interruptible: true}); err != nil {
		t.Fatal(err)
	}
	fifoClock.hour.Store(4)
	sc = scrapeServer(t, fifoSrv.Handler())
	if got := metricVal(t, sc, `schedd_carbon_saved_grams{policy="fifo"}`); got != 0 {
		t.Errorf("fifo carbon saved = %v, want 0 (fifo never moves work)", got)
	}
}

// TestWithoutMetrics asserts the opt-out really is one: no registry,
// no /metrics route, and the HTTP surface otherwise intact.
func TestWithoutMetrics(t *testing.T) {
	srv, client, _ := startServer(t, Config{Policy: sched.FIFO{}}, 2, WithoutMetrics())
	if srv.Metrics() != nil {
		t.Fatal("WithoutMetrics left a registry")
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("GET /metrics without metrics = %d, want 404", rr.Code)
	}
	if _, err := client.Submit(context.Background(), JobRequest{Origin: "CLEAN", LengthHours: 1, SlackHours: 2}); err != nil {
		t.Fatalf("submit on an un-instrumented server: %v", err)
	}
}

// failingPolicy plans a placement no fleet can apply, so the first
// live step after a submission poisons the server.
type failingPolicy struct{}

func (failingPolicy) Name() string { return "failing" }
func (failingPolicy) Plan(*sched.Tick) []sched.Placement {
	return []sched.Placement{{JobID: 0, Region: "NOPE"}}
}

// TestMetricsScrapeOnPoisonedServer: a scrape must survive a server
// whose advance path is poisoned, so operators can see the failure.
func TestMetricsScrapeOnPoisonedServer(t *testing.T) {
	srv, client, clock := startServer(t, Config{Policy: failingPolicy{}}, 2)
	if _, err := client.Submit(context.Background(), JobRequest{Origin: "CLEAN", LengthHours: 1, SlackHours: 2}); err != nil {
		t.Fatal(err)
	}
	clock.hour.Store(1) // next advance trips the policy fault
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("stats on poisoned server = %d, want 500", rr.Code)
	}
	sc := scrapeServer(t, srv.Handler())
	if got := metricVal(t, sc, "schedd_jobs_submitted_total"); got != 1 {
		t.Errorf("poisoned-server scrape: submitted = %v, want 1", got)
	}
}
