package schedd

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"carbonshift/internal/sched"
)

// FuzzDecodeSubmit fuzzes the POST /v1/jobs request-parsing path, both
// at the decode layer (decodeSubmit must never panic and must either
// error or yield a non-empty batch) and end to end through the handler
// (arbitrary bodies must map to a well-formed JSON response with a
// sane status — 200 for admitted work, 400 for garbage, 503 for
// backpressure — never a 500, never a panic).
func FuzzDecodeSubmit(f *testing.F) {
	f.Add([]byte(`{"origin":"DIRTY","length_hours":3,"slack_hours":24}`))
	f.Add([]byte(`{"id":7,"origin":"CLEAN","length_hours":1,"interruptible":true}`))
	f.Add([]byte(`{"jobs":[{"origin":"CLEAN","length_hours":2},{"origin":"DIRTY","length_hours":1,"migratable":true}]}`))
	f.Add([]byte(`{"jobs":[]}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"id":null,"origin":"","length_hours":-4}`))
	f.Add([]byte(`{"jobs":[{"id":2147483647,"origin":"CLEAN","length_hours":9999999}]}`))
	f.Add([]byte(`{"origin":"CLEAN","length_hours":1} trailing garbage`))
	f.Add([]byte(`{"origin":"CLEAN","length_hours":1}{"origin":"DIRTY","length_hours":2}`))
	f.Add([]byte(`{"origin":"CLEAN","length_hours":1}   `))

	srv, err := New(mkSet(f, 48), clusters(4),
		Config{Policy: sched.FIFO{}, Shards: 2, MaxQueue: 1 << 20},
		WithClock(func() time.Time { return t0 }))
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, err := decodeSubmit(bytes.NewReader(data))
		if err == nil && len(jobs) == 0 {
			t.Fatal("decodeSubmit returned no error and no jobs")
		}

		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(data))
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusServiceUnavailable:
		default:
			t.Fatalf("body %q: unexpected status %d (%s)", data, rr.Code, rr.Body.String())
		}
		if !json.Valid(rr.Body.Bytes()) {
			t.Fatalf("body %q: non-JSON response %q", data, rr.Body.String())
		}
		if rr.Code == http.StatusOK {
			var ack SubmitResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &ack); err != nil {
				t.Fatalf("body %q: bad ack: %v", data, err)
			}
			if ack.Accepted != len(ack.IDs) || ack.Accepted == 0 {
				t.Fatalf("body %q: inconsistent ack %+v", data, ack)
			}
		}
	})
}

// FuzzDecodeBinarySubmit is FuzzDecodeSubmit's twin for the binary
// batch protocol: hostile frames must never panic, the decoder must
// either error or yield a non-empty batch, and the handler must map
// every body to a sane status with a decodable response.
func FuzzDecodeBinarySubmit(f *testing.F) {
	f.Add(appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", LengthHours: 1}}))
	three := 3
	f.Add(appendBinarySubmit(nil, []JobRequest{
		{ID: &three, Origin: "DIRTY", LengthHours: 2, SlackHours: 24, Interruptible: true},
		{Origin: "CLEAN", LengthHours: 1, Migratable: true},
	}))
	empty := appendBinaryFrame(nil, binReqMagic, func(buf []byte) []byte {
		return binary.AppendUvarint(buf, 0)
	})
	f.Add(empty)
	valid := appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", LengthHours: 1}})
	f.Add(valid[:len(valid)-3])                        // truncated payload
	f.Add(append(valid[:0:0], append(valid, 0xff)...)) // trailing byte
	corrupt := append(valid[:0:0], valid...)
	corrupt[len(corrupt)-1] ^= 0x01 // CRC mismatch
	f.Add(corrupt)
	f.Add([]byte("CSBB"))             // bare magic
	f.Add([]byte("CSWL\x01whatever")) // foreign magic
	hugeCount := appendBinaryFrame(nil, binReqMagic, func(buf []byte) []byte {
		return binary.AppendUvarint(buf, 1<<40)
	})
	f.Add(hugeCount)
	f.Add([]byte{})

	srv, err := New(mkSet(f, 48), clusters(4),
		Config{Policy: sched.FIFO{}, Shards: 2, MaxQueue: 1 << 20},
		WithClock(func() time.Time { return t0 }))
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		b := &binBatch{}
		err := readBinaryFrame(bytes.NewReader(data), binReqMagic, b)
		if err == nil {
			err = decodeBinaryJobs(b, srv.internOrigin)
		}
		if err == nil && len(b.jobs) == 0 {
			t.Fatal("binary decode returned no error and no jobs")
		}

		req := httptest.NewRequest(http.MethodPost, "/v1/jobs/batch", bytes.NewReader(data))
		req.Header.Set("Content-Type", BinaryContentType)
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK:
			ack, err := decodeBinaryAck(rr.Body.Bytes())
			if err != nil {
				t.Fatalf("frame %q: bad binary ack: %v", data, err)
			}
			if ack.Accepted != len(ack.IDs) || ack.Accepted == 0 {
				t.Fatalf("frame %q: inconsistent ack %+v", data, ack)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusServiceUnavailable:
			if !json.Valid(rr.Body.Bytes()) {
				t.Fatalf("frame %q: non-JSON error body %q", data, rr.Body.String())
			}
		default:
			t.Fatalf("frame %q: unexpected status %d (%s)", data, rr.Code, rr.Body.String())
		}
	})
}
