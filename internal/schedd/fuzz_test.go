package schedd

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"carbonshift/internal/sched"
	"carbonshift/internal/tenant"
)

// FuzzDecodeSubmit fuzzes the POST /v1/jobs request-parsing path, both
// at the decode layer (decodeSubmit must never panic and must either
// error or yield a non-empty batch) and end to end through the handler
// (arbitrary bodies must map to a well-formed JSON response with a
// sane status — 200 for admitted work, 400 for garbage, 503 for
// backpressure — never a 500, never a panic).
func FuzzDecodeSubmit(f *testing.F) {
	f.Add([]byte(`{"origin":"DIRTY","length_hours":3,"slack_hours":24}`))
	f.Add([]byte(`{"id":7,"origin":"CLEAN","length_hours":1,"interruptible":true}`))
	f.Add([]byte(`{"jobs":[{"origin":"CLEAN","length_hours":2},{"origin":"DIRTY","length_hours":1,"migratable":true}]}`))
	f.Add([]byte(`{"jobs":[]}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"id":null,"origin":"","length_hours":-4}`))
	f.Add([]byte(`{"jobs":[{"id":2147483647,"origin":"CLEAN","length_hours":9999999}]}`))
	f.Add([]byte(`{"origin":"CLEAN","length_hours":1} trailing garbage`))
	f.Add([]byte(`{"origin":"CLEAN","length_hours":1}{"origin":"DIRTY","length_hours":2}`))
	f.Add([]byte(`{"origin":"CLEAN","length_hours":1}   `))
	// Tenant-tagged submissions: valid names, the quota-limited tenant
	// (429 path), hostile names the validator must 400, and shape
	// confusion between the tenant field and the batch wrapper.
	f.Add([]byte(`{"origin":"CLEAN","tenant":"web","length_hours":1}`))
	f.Add([]byte(`{"jobs":[{"origin":"CLEAN","tenant":"quotal","length_hours":1},{"origin":"DIRTY","tenant":"quotal","length_hours":1}]}`))
	f.Add([]byte(`{"origin":"CLEAN","tenant":"../../etc/passwd","length_hours":1}`))
	f.Add([]byte(`{"origin":"CLEAN","tenant":"a\nb","length_hours":1}`))
	f.Add([]byte(`{"origin":"CLEAN","tenant":{"name":"web"},"length_hours":1}`))

	srv, err := New(mkSet(f, 48), clusters(4),
		Config{Policy: sched.FIFO{}, Shards: 2, MaxQueue: 1 << 20, Tenants: fuzzTenants(f)},
		WithClock(func() time.Time { return t0 }))
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, err := decodeSubmit(bytes.NewReader(data))
		if err == nil && len(jobs) == 0 {
			t.Fatal("decodeSubmit returned no error and no jobs")
		}

		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(data))
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusServiceUnavailable, http.StatusTooManyRequests:
		default:
			t.Fatalf("body %q: unexpected status %d (%s)", data, rr.Code, rr.Body.String())
		}
		if !json.Valid(rr.Body.Bytes()) {
			t.Fatalf("body %q: non-JSON response %q", data, rr.Body.String())
		}
		if rr.Code == http.StatusOK {
			var ack SubmitResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &ack); err != nil {
				t.Fatalf("body %q: bad ack: %v", data, err)
			}
			if ack.Accepted != len(ack.IDs) || ack.Accepted == 0 {
				t.Fatalf("body %q: inconsistent ack %+v", data, ack)
			}
		}
	})
}

// FuzzDecodeBinarySubmit is FuzzDecodeSubmit's twin for the binary
// batch protocol: hostile frames must never panic, the decoder must
// either error or yield a non-empty batch, and the handler must map
// every body to a sane status with a decodable response.
func FuzzDecodeBinarySubmit(f *testing.F) {
	f.Add(appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", LengthHours: 1}}))
	three := 3
	f.Add(appendBinarySubmit(nil, []JobRequest{
		{ID: &three, Origin: "DIRTY", LengthHours: 2, SlackHours: 24, Interruptible: true},
		{Origin: "CLEAN", LengthHours: 1, Migratable: true},
	}))
	empty := appendBinaryFrame(nil, binReqMagic, binVersion, func(buf []byte) []byte {
		return binary.AppendUvarint(buf, 0)
	})
	f.Add(empty)
	valid := appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", LengthHours: 1}})
	f.Add(valid[:len(valid)-3])                        // truncated payload
	f.Add(append(valid[:0:0], append(valid, 0xff)...)) // trailing byte
	corrupt := append(valid[:0:0], valid...)
	corrupt[len(corrupt)-1] ^= 0x01 // CRC mismatch
	f.Add(corrupt)
	f.Add([]byte("CSBB"))             // bare magic
	f.Add([]byte("CSWL\x01whatever")) // foreign magic
	hugeCount := appendBinaryFrame(nil, binReqMagic, binVersion, func(buf []byte) []byte {
		return binary.AppendUvarint(buf, 1<<40)
	})
	f.Add(hugeCount)
	f.Add([]byte{})
	// Version-2 tenant frames: a tagged batch, the quota-limited tenant,
	// a v2 frame whose tenant trailer is truncated, and the tenant flag
	// smuggled into a v1 frame (unknown flag there).
	tagged := appendBinarySubmit(nil, []JobRequest{
		{Origin: "CLEAN", Tenant: "web", LengthHours: 1},
		{Origin: "DIRTY", LengthHours: 2, SlackHours: 6},
	})
	f.Add(tagged)
	f.Add(appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", Tenant: "quotal", LengthHours: 1}}))
	f.Add(appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", Tenant: "nobody-configured", LengthHours: 1}}))
	f.Add(tagged[:len(tagged)-2]) // truncated inside the tenant trailer
	flagInV1 := appendBinaryFrame(nil, binReqMagic, binVersion, func(buf []byte) []byte {
		buf = binary.AppendUvarint(buf, 1)
		buf = append(buf, binFlagHasTenant)
		buf = binary.AppendUvarint(buf, 5)
		buf = append(buf, "CLEAN"...)
		buf = binary.AppendUvarint(buf, 1)
		buf = binary.AppendUvarint(buf, 0)
		return buf
	})
	f.Add(flagInV1)

	srv, err := New(mkSet(f, 48), clusters(4),
		Config{Policy: sched.FIFO{}, Shards: 2, MaxQueue: 1 << 20, Tenants: fuzzTenants(f)},
		WithClock(func() time.Time { return t0 }))
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		b := &binBatch{}
		err := readBinaryFrame(bytes.NewReader(data), binReqMagic, b)
		if err == nil {
			err = decodeBinaryJobs(b, srv.internOrigin, srv.internTenant)
		}
		if err == nil && len(b.jobs) == 0 {
			t.Fatal("binary decode returned no error and no jobs")
		}

		req := httptest.NewRequest(http.MethodPost, "/v1/jobs/batch", bytes.NewReader(data))
		req.Header.Set("Content-Type", BinaryContentType)
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK:
			ack, err := decodeBinaryAck(rr.Body.Bytes())
			if err != nil {
				t.Fatalf("frame %q: bad binary ack: %v", data, err)
			}
			if ack.Accepted != len(ack.IDs) || ack.Accepted == 0 {
				t.Fatalf("frame %q: inconsistent ack %+v", data, ack)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusServiceUnavailable, http.StatusTooManyRequests:
			if !json.Valid(rr.Body.Bytes()) {
				t.Fatalf("frame %q: non-JSON error body %q", data, rr.Body.String())
			}
		default:
			t.Fatalf("frame %q: unexpected status %d (%s)", data, rr.Code, rr.Body.String())
		}
	})
}

// fuzzTenants is the tenant world the submit fuzzers run under: a
// weighted interactive tenant, a tightly quota-limited one (so fuzzed
// traffic actually exercises the 429 path), a scavenger, and the
// catch-all for arbitrary fuzzer-invented names.
func fuzzTenants(f *testing.F) *tenant.Config {
	cfg, err := tenant.NewConfig([]tenant.Spec{
		{Name: "web", Class: tenant.Interactive, Weight: 2},
		{Name: "quotal", QuotaJobsPerHour: 1},
		{Name: "spot", Class: tenant.Scavenger},
		{Name: "*"},
	})
	if err != nil {
		f.Fatal(err)
	}
	return cfg
}
