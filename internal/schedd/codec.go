package schedd

// Exported wrappers over the submit codecs, for proxies that speak the
// service's wire protocols without being the service — internal/gateway
// decodes an incoming batch (either protocol), re-encodes per-partition
// sub-batches, and reassembles acks, all through this surface, so the
// gateway can never drift from the formats the server itself uses.

import "io"

// DecodeSubmit parses a POST /v1/jobs JSON payload — a bare JobRequest
// or {"jobs": [...]} — with exactly the server's validation (empty
// batches and trailing data rejected).
func DecodeSubmit(r io.Reader) ([]JobRequest, error) {
	return decodeSubmit(r)
}

// DecodeBinarySubmit parses a POST /v1/jobs/batch binary frame into
// the protocol-independent batch form. Jobs without an explicit id
// come back with a nil ID, mirroring the JSON shape.
func DecodeBinarySubmit(r io.Reader) ([]JobRequest, error) {
	b := &binBatch{}
	if err := readBinaryFrame(r, binReqMagic, b); err != nil {
		return nil, err
	}
	intern := func(p []byte) string { return string(p) }
	if err := decodeBinaryJobs(b, intern, intern); err != nil {
		return nil, err
	}
	out := make([]JobRequest, len(b.jobs))
	for i := range b.jobs {
		j := &b.jobs[i]
		out[i] = JobRequest{
			Origin:        j.Origin,
			Tenant:        j.Tenant,
			LengthHours:   j.Length,
			SlackHours:    j.Slack,
			Interruptible: j.Interruptible,
			Migratable:    j.Migratable,
		}
		if !b.auto[i] {
			id := j.ID
			out[i].ID = &id
		}
	}
	return out, nil
}

// AppendBinarySubmit appends a binary submit frame for the batch —
// the encoding Client.SubmitBatch puts on the wire.
func AppendBinarySubmit(buf []byte, jobs []JobRequest) []byte {
	return appendBinarySubmit(buf, jobs)
}

// AppendBinaryAck appends the 200 ack frame for an admitted batch.
func AppendBinaryAck(buf []byte, arrival int, ids []int) []byte {
	return appendBinaryAck(buf, arrival, ids)
}

// DecodeBinaryAck parses an ack frame into the JSON route's response
// shape.
func DecodeBinaryAck(data []byte) (SubmitResponse, error) {
	return decodeBinaryAck(data)
}
