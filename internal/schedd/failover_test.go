package schedd

// The failover path end to end, in process: a follower replicates a
// journaling primary, the primary dies, the follower promotes — new
// journal generation under its own flock — and the failover client
// keeps writing through the transition with zero acknowledged-job
// loss. The CI e2e leg replays the same story with real processes and
// kill -9.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"carbonshift/internal/sched"
	"carbonshift/internal/wal"
)

// replicatedPair boots a journaling primary and a follower (with its
// own data dir) tailing it, plus httptest servers for both.
func replicatedPair(t *testing.T, policy sched.Policy) (primary, follower *Server, pts, fts *httptest.Server, pclock, fclock *hourClock) {
	t.Helper()
	pclock = &hourClock{}
	var err error
	primary, err = New(mkSet(t, 24*20), clusters(20), Config{
		Policy: policy, Shards: 2,
		DataDir: t.TempDir(), SnapshotEvery: 48, Sync: wal.SyncNone,
	}, WithClock(pclock.now))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	primary.source.Poll = 500 * time.Microsecond
	pts = httptest.NewServer(primary.Handler())
	t.Cleanup(pts.Close)

	fclock = &hourClock{}
	follower, err = NewFollower(mkSet(t, 24*20), clusters(20), Config{
		Policy: policy, Shards: 2,
		DataDir: t.TempDir(), SnapshotEvery: 48, Sync: wal.SyncNone,
	}, FollowerConfig{
		Primary:        pts.URL,
		ReconnectDelay: time.Millisecond,
	}, WithClock(fclock.now))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { follower.Close() })
	fts = httptest.NewServer(follower.Handler())
	t.Cleanup(fts.Close)
	return primary, follower, pts, fts, pclock, fclock
}

func TestFailoverPromotion(t *testing.T) {
	primary, follower, pts, fts, pclock, fclock := replicatedPair(t, sched.CarbonGate{Percentile: 40, Window: 48})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	follower.Start(ctx)

	// Phase 1: write through the failover client configured with the
	// FOLLOWER first — the 421 redirect must land the writes on the
	// primary anyway.
	fo, err := NewFailoverClient([]string{fts.URL, pts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const phase1 = 30
	for i := 0; i < phase1; i++ {
		id := i
		if _, err := fo.Submit(ctx, JobRequest{
			ID: &id, Origin: "CLEAN", LengthHours: 2, SlackHours: 24, Interruptible: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if primary.fleet.Jobs() != phase1 {
		t.Fatalf("primary admitted %d jobs, want %d (redirect failed?)", primary.fleet.Jobs(), phase1)
	}
	pclock.hour.Store(3)
	pc, err := NewClient(pts.URL, pts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Stats(ctx); err != nil {
		t.Fatal(err)
	}

	// A direct write to the follower must carry the full 421 contract.
	resp, err := http.Post(fts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"origin":"CLEAN","length_hours":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower write status %d, want 421", resp.StatusCode)
	}
	if resp.Header.Get("X-Replication-Lag-Hours") == "" {
		t.Error("follower response missing X-Replication-Lag-Hours")
	}
	var e ErrorResponse
	if err := decodeBody(resp, &e); err != nil {
		t.Fatal(err)
	}
	if e.Primary != pts.URL {
		t.Fatalf("421 primary hint %q, want %q", e.Primary, pts.URL)
	}

	// Wait for full catch-up, then kill the primary. Everything
	// acknowledged so far is on the follower: zero loss by
	// construction.
	waitUntil(t, "follower catch-up", func() bool {
		return follower.fleet.Jobs() == phase1 && follower.fleet.Hour() == primary.fleet.Hour()
	})
	// The kill: sever the follower's live stream connection too —
	// httptest's graceful Close would otherwise wait on it forever,
	// which a kill -9'd process certainly would not.
	pts.CloseClientConnections()
	pts.Close()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	// Promote over HTTP, as the operator (or CI) would.
	fc, err := NewClient(fts.URL, fts.Client())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := fc.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Promoted || pr.Role != "primary" || pr.Jobs != phase1 {
		t.Fatalf("promote = %+v", pr)
	}
	if pr2, err := fc.Promote(ctx); err != nil || pr2.Promoted {
		t.Fatalf("second promote = %+v, %v (want idempotent no-op)", pr2, err)
	}
	fclock.hour.Store(int64(follower.Hour()))

	// Phase 2: the same failover client keeps writing — the dead
	// primary is skipped, the promoted follower accepts.
	const phase2 = 20
	for i := 0; i < phase2; i++ {
		id := phase1 + i
		if _, err := fo.Submit(ctx, JobRequest{
			ID: &id, Origin: "DIRTY", LengthHours: 2, SlackHours: 24, Interruptible: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != phase1+phase2 {
		t.Fatalf("submitted %d, want %d — acknowledged jobs were lost across failover", stats.Submitted, phase1+phase2)
	}
	if stats.Durability == nil || !stats.Durability.Recovered || stats.Durability.Generation == 0 {
		t.Fatalf("durability lineage = %+v, want recovered:true with a fresh generation", stats.Durability)
	}
	if stats.Replication == nil || stats.Replication.Role != "primary" || !stats.Replication.Promoted {
		t.Fatalf("replication block = %+v", stats.Replication)
	}

	// The promoted primary serves replication itself: a brand-new
	// follower bootstraps from it and converges.
	second, err := NewFollower(mkSet(t, 24*20), clusters(20), Config{
		Policy: sched.CarbonGate{Percentile: 40, Window: 48}, Shards: 2,
	}, FollowerConfig{Primary: fts.URL, ReconnectDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.Start(ctx)
	waitUntil(t, "second-generation follower", func() bool {
		return second.fleet.Jobs() == phase1+phase2
	})

	// And the promoted primary still drains like any other.
	res, err := follower.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != phase1+phase2 || res.Completed != phase1+phase2 {
		t.Fatalf("drain = %d outcomes, %d completed", len(res.Outcomes), res.Completed)
	}
}

// TestPromoteUnderConcurrentReads: promotion on a live, serving
// follower — stats and health polls in flight — must not race the
// installation of the durable state or the recovery lineage (run
// under -race).
func TestPromoteUnderConcurrentReads(t *testing.T) {
	_, follower, pts, fts, _, _ := replicatedPair(t, sched.FIFO{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	follower.Start(ctx)

	pc, err := NewClient(pts.URL, pts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Submit(ctx, JobRequest{Origin: "CLEAN", LengthHours: 1, SlackHours: 12}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "replication", func() bool { return follower.fleet.Jobs() == 1 })

	stop := make(chan struct{})
	pollErr := make(chan error, 1)
	go func() {
		defer close(pollErr)
		fc, err := NewClient(fts.URL, fts.Client())
		if err != nil {
			pollErr <- err
			return
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := fc.Stats(ctx); err != nil {
				pollErr <- err
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond) // let the poller get going
	if promoted, err := follower.Promote(); err != nil || !promoted {
		t.Fatalf("promote = %v, %v", promoted, err)
	}
	close(stop)
	if err := <-pollErr; err != nil {
		t.Fatal(err)
	}
	fc, err := NewClient(fts.URL, fts.Client())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Durability == nil || !stats.Durability.Recovered {
		t.Fatalf("post-promotion durability = %+v", stats.Durability)
	}
}

// TestAutoPromoteOnProbeLoss: a follower configured with a probe
// interval promotes itself once the primary stops answering.
func TestAutoPromoteOnProbeLoss(t *testing.T) {
	primary, follower, pts, _, _, _ := replicatedPair(t, sched.FIFO{})
	_ = primary
	// Rebuild the follower's probing config: replicatedPair leaves
	// probing off, so re-create with it on.
	follower.fol.cfg.ProbeInterval = 2 * time.Millisecond
	follower.fol.cfg.ProbeFailures = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	follower.Start(ctx)

	pc, err := NewClient(pts.URL, pts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Submit(ctx, JobRequest{Origin: "CLEAN", LengthHours: 1, SlackHours: 12}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "replication", func() bool { return follower.fleet.Jobs() == 1 })
	if follower.Role() != "follower" {
		t.Fatal("follower promoted while the primary was healthy")
	}

	pts.CloseClientConnections()
	pts.Close()
	primary.Close()
	waitUntil(t, "auto-promotion", func() bool { return follower.Role() == "primary" })
	if rec := follower.Recovery(); !rec.Recovered || rec.RecoveredJobs != 1 {
		t.Fatalf("promoted recovery = %+v", rec)
	}
}

// TestPromoteWithoutDataDir: an in-memory follower can still take
// over; it simply keeps running without a journal.
func TestPromoteWithoutDataDir(t *testing.T) {
	pclock := &hourClock{}
	primary, err := New(mkSet(t, 24*10), clusters(4), Config{
		Policy: sched.FIFO{}, DataDir: t.TempDir(), Sync: wal.SyncNone,
	}, WithClock(pclock.now))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pts := httptest.NewServer(primary.Handler())
	defer pts.Close()

	follower, err := NewFollower(mkSet(t, 24*10), clusters(4), Config{
		Policy: sched.FIFO{},
	}, FollowerConfig{Primary: pts.URL, ReconnectDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	follower.Start(ctx)

	pc, err := NewClient(pts.URL, pts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Submit(ctx, JobRequest{Origin: "CLEAN", LengthHours: 1, SlackHours: 12}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "replication", func() bool { return follower.fleet.Jobs() == 1 })
	promoted, err := follower.Promote()
	if err != nil || !promoted {
		t.Fatalf("promote = %v, %v", promoted, err)
	}
	if follower.fleet.Jobs() != 1 || follower.Role() != "primary" {
		t.Fatal("promotion lost state")
	}
	// Its stream endpoints must refuse cleanly rather than panic.
	resp, err := http.Get(httptest.NewServer(follower.Handler()).URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot on journal-less primary: status %d, want 404", resp.StatusCode)
	}
}

// decodeBody decodes a JSON response body and closes it.
func decodeBody(resp *http.Response, out any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}
