package schedd

// The partial-outcome half of the submit protocol, spoken between
// internal/gateway and the typed clients. A gateway that split a batch
// across partitions can see some sub-batches admitted and others
// rejected; collapsing that into one status would either double-count
// (the client retries jobs that WERE admitted) or lose the rejection
// reasons. Instead the gateway answers 207 Multi-Status with one
// outcome per submitted job, and the clients surface it as a
// *PartialError so callers can account for the acked ids exactly once
// and retry or tally only the failures.
//
// The types live here, not in internal/gateway, because they are wire
// protocol: Client.Submit and Client.SubmitBatch must decode them, and
// the gateway imports this package for every other frame it speaks.

import (
	"fmt"
	"net/http"
)

// JobOutcome is one job's result inside a 207 Multi-Status response,
// in batch order. Status is the HTTP status the owning partition
// answered for the job's sub-batch: 200 with the assigned ID on
// admission, otherwise the partition's rejection status with its error
// message and Retry-After hint.
type JobOutcome struct {
	ID         int    `json:"id,omitempty"`
	Partition  int    `json:"partition"`
	Status     int    `json:"status"`
	Error      string `json:"error,omitempty"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

// MultiStatusResponse is the 207 body: per-job outcomes in the order
// the batch was submitted, plus the aggregate ack fields for the jobs
// that were admitted.
type MultiStatusResponse struct {
	ArrivalHour int          `json:"arrival_hour"`
	Accepted    int          `json:"accepted"`
	Outcomes    []JobOutcome `json:"outcomes"`
}

// PartialError is how the typed clients surface a 207: an error (the
// batch did not fully succeed) that still carries every admitted id,
// so no acked job is ever lost or re-submitted.
type PartialError struct {
	Resp MultiStatusResponse
}

func (e *PartialError) Error() string {
	failed := len(e.Resp.Outcomes) - e.Resp.Accepted
	for _, o := range e.Resp.Outcomes {
		if o.Status != http.StatusOK {
			return fmt.Sprintf("schedd: partial batch: %d/%d jobs rejected (first: status %d: %s)",
				failed, len(e.Resp.Outcomes), o.Status, o.Error)
		}
	}
	return fmt.Sprintf("schedd: partial batch: %d/%d jobs rejected", failed, len(e.Resp.Outcomes))
}

// AckedIDs returns the ids of the jobs that WERE admitted, in batch
// order.
func (e *PartialError) AckedIDs() []int {
	var ids []int
	for _, o := range e.Resp.Outcomes {
		if o.Status == http.StatusOK {
			ids = append(ids, o.ID)
		}
	}
	return ids
}

// MaxRetryAfter returns the largest Retry-After hint across the failed
// outcomes (0 when none carried one) — the pacing bound for retrying
// the whole batch.
func (e *PartialError) MaxRetryAfter() int {
	after := 0
	for _, o := range e.Resp.Outcomes {
		if o.RetryAfter > after {
			after = o.RetryAfter
		}
	}
	return after
}
