package schedd

// The server's request-tracing face (GET /debug/traces). Like metrics,
// tracing is on by default and opt-out: WithoutTracing leaves s.tr nil
// and every instrumentation point no-ops through internal/tracing's
// nil-safety. The spans a submit leaves behind:
//
//	POST /v1/jobs     root (serve middleware; matched route, status)
//	  schedd.decode   request-body parse
//	  fleet.catchup   replay-clock step to the current hour (if any)
//	  schedd.admit    admission critical section; lock_wait_us attr
//	    wal.append    journal-record buffering inside the section
//	  wal.fsync_wait  group-commit durability wait, outside admitMu
//
// When the trace is sampled, its ID rides the admission journal record
// (durable.go) through the replication stream, and the follower's
// repl.apply span (repl.go) joins the same trace — one trace, two
// processes.

import (
	"carbonshift/internal/tracing"
)

// WithoutTracing disables span recording and /debug/traces — the
// un-instrumented baseline for benchmarking, mirroring WithoutMetrics.
func WithoutTracing() Option {
	return func(s *Server) { s.noTracing = true }
}

// Tracer returns the server's tracer (nil when built WithoutTracing),
// so embedders (cmd/schedd's debug mux) can serve its handler.
func (s *Server) Tracer() *tracing.Tracer { return s.tr }

// initTracing builds the tracer from Config's sampling knobs. Called
// from New before openDurable so the journal sees the tracer from its
// first record.
func (s *Server) initTracing() {
	s.tr = tracing.New(tracing.Config{
		SampleEvery:   s.cfg.TraceSampleEvery,
		SlowThreshold: s.cfg.TraceSlow,
	})
}
