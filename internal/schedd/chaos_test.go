package schedd

// The replication chaos harness: a follower tails a primary through a
// cuttable TCP proxy while load drives the primary free-running (no
// lock-step). The chaos goroutine randomly partitions the network
// mid-stream and kills/restarts the follower's tail at whatever stream
// offset it happens to be at. The invariants: the follower resumes
// from its cursor with no gap and no double-apply (either would make
// its state diverge — a duplicate id errors the apply, a gap changes
// the placement history), every acknowledged job ends up applied
// exactly once, and the final state converges byte-identically to the
// primary's. Run under -race this also certifies the follower's
// lifecycle locking (Start/stopTail/Close) and the concurrent
// read-path against a live apply loop.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carbonshift/internal/rng"
	"carbonshift/internal/sched"
	"carbonshift/internal/wal"
)

// chaosProxy is a TCP forwarder whose live connections can be cut on
// demand — the network partition lever.
type chaosProxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	cuts atomic.Int64
	wg   sync.WaitGroup
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.accept()
	t.Cleanup(p.Close)
	return p
}

func (p *chaosProxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *chaosProxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			up.Close()
			return
		}
		p.conns[c] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		pipe := func(dst, src net.Conn) {
			defer p.wg.Done()
			io.Copy(dst, src)
			dst.Close()
			src.Close()
			p.mu.Lock()
			delete(p.conns, dst)
			delete(p.conns, src)
			p.mu.Unlock()
		}
		p.wg.Add(2)
		go pipe(up, c)
		go pipe(c, up)
	}
}

// cut severs every live connection; new dials still succeed (a
// transient partition, not an outage).
func (p *chaosProxy) cut() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.cuts.Add(1)
}

func (p *chaosProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.cut()
	p.wg.Wait()
}

func TestReplicationChaos(t *testing.T) {
	horizon := 24 * 8
	if testing.Short() {
		horizon = 24 * 4
	}
	policy := sched.GreenestFirst{}
	jobs, err := sched.GenerateJobs(sched.WorkloadSpec{
		Jobs: 80, ArrivalSpan: horizon - 20, SlackHours: 30,
		InterruptibleFrac: 0.6, MigratableFrac: 0.5,
		Origins: []string{"CLEAN", "DIRTY"}, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 20 {
			jobs[i].Length = 20
		}
	}

	pclock := &hourClock{}
	primary, err := New(mkSet(t, horizon), clusters(8), Config{
		Policy: policy, Horizon: horizon, Shards: 2,
		DataDir: t.TempDir(), SnapshotEvery: 48, Sync: wal.SyncNone,
	}, WithClock(pclock.now))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.source.Poll = 500 * time.Microsecond
	primary.source.Heartbeat = 5 * time.Millisecond
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()
	proxy := newChaosProxy(t, ts.Listener.Addr().String())

	follower, err := NewFollower(mkSet(t, horizon), clusters(8), Config{
		Policy: policy, Horizon: horizon, Shards: 2,
	}, FollowerConfig{
		Primary:        proxy.URL(),
		ReconnectDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	follower.Start(ctx)
	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()

	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	// The load driver free-runs the primary: advance the clock, force
	// the step, submit the hour's arrivals, never wait for the
	// follower.
	driveDone := make(chan struct{})
	var driveErr atomic.Value
	go func() {
		defer close(driveDone)
		next := 0
		for hour := 0; hour < horizon; hour++ {
			pclock.hour.Store(int64(hour))
			if _, err := client.Stats(context.Background()); err != nil {
				driveErr.Store(err)
				return
			}
			lo := next
			for next < len(jobs) && jobs[next].Arrival == hour {
				next++
			}
			for _, j := range jobs[lo:next] {
				id := j.ID
				if _, err := client.Submit(context.Background(), JobRequest{
					ID: &id, Origin: j.Origin, LengthHours: j.Length, SlackHours: j.Slack,
					Interruptible: j.Interruptible, Migratable: j.Migratable,
				}); err != nil {
					driveErr.Store(fmt.Errorf("hour %d: %w", hour, err))
					return
				}
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()

	// Concurrent follower reads: hammer the read-only surface while the
	// apply loop mutates the fleet, and check the lag header contract.
	readsDone := make(chan struct{})
	var readErr atomic.Value
	go func() {
		defer close(readsDone)
		hc := fts.Client()
		for {
			select {
			case <-driveDone:
				return
			default:
			}
			resp, err := hc.Get(fts.URL + "/v1/stats")
			if err != nil {
				readErr.Store(err)
				return
			}
			lagHdr := resp.Header.Get("X-Replication-Lag-Hours")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if lag, err := strconv.Atoi(lagHdr); err != nil || lag < 0 {
				readErr.Store(fmt.Errorf("bad X-Replication-Lag-Hours %q", lagHdr))
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Chaos: random partitions and tail kill/restarts at whatever
	// stream offset the follower happens to be at.
	chaosDone := make(chan struct{})
	restarts := 0
	go func() {
		defer close(chaosDone)
		src := rng.New(7)
		for {
			select {
			case <-driveDone:
				return
			default:
			}
			time.Sleep(time.Duration(500+src.Intn(2500)) * time.Microsecond)
			if src.Intn(2) == 0 {
				proxy.cut()
			} else {
				follower.stopTail()
				follower.Start(ctx)
				restarts++
			}
		}
	}()

	<-driveDone
	<-chaosDone
	<-readsDone
	if err := driveErr.Load(); err != nil {
		t.Fatal(err)
	}
	if err := readErr.Load(); err != nil {
		t.Fatal(err)
	}
	if proxy.cuts.Load() == 0 || restarts == 0 {
		t.Fatalf("chaos did not bite: %d cuts, %d restarts", proxy.cuts.Load(), restarts)
	}

	// Convergence: with the primary quiesced, the follower must land on
	// the identical state — every acknowledged job applied exactly
	// once, the hour caught up, the serialized image byte-equal.
	wantHour := primary.fleet.Hour()
	waitUntil(t, "post-chaos convergence", func() bool {
		return follower.fleet.Hour() >= wantHour && follower.fleet.Jobs() == len(jobs)
	})
	want, err := primary.fleet.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.fleet.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("follower diverged after chaos (%d vs %d bytes)", len(got), len(want))
	}
	for _, j := range jobs {
		if _, ok := follower.fleet.Lookup(j.ID); !ok {
			t.Fatalf("job %d missing on the follower", j.ID)
		}
	}
	st := follower.fol.tail.Stats()
	if st.Reconnects == 0 {
		t.Error("no reconnects recorded although connections were cut")
	}
	t.Logf("chaos: %d cuts, %d tail restarts, %d reconnects, %d bootstraps, %d records applied",
		proxy.cuts.Load(), restarts, st.Reconnects, st.Bootstraps, st.RecordsApplied)
}
