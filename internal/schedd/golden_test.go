package schedd

// Golden-file pins for the version-bumped wire and journal encodings
// the tenancy work touched: the admit journal record, the server
// snapshot wrapper, and the CSBB binary submit frame. The pre-tenancy
// files are frozen in git — the current encoder must keep producing
// those exact bytes for tenant-free input (old journals and old
// clients stay readable and re-writable), and the current decoder must
// read them back with empty Tenant fields. The tenancy files pin the
// version-2 shapes so a future codec change is a deliberate diff, not
// an accident. (The fleet-image golden lives with its codec in
// internal/sched/testdata.)
//
// Regenerate deliberately with:
//
//	go test ./internal/schedd -run Golden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"carbonshift/internal/sched"
	"carbonshift/internal/tracing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files in testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoding drifted from the golden file:\n got %x\nwant %x", name, got, want)
	}
}

// goldenJobsPreTenancy is a tenant-free batch: the admit record for it
// must stay byte-identical to what the pre-tenancy codec wrote.
func goldenJobsPreTenancy() []sched.Job {
	return []sched.Job{
		{ID: 3, Origin: "CLEAN", Arrival: 5, Length: 2, Slack: 10},
		{ID: 4, Origin: "DIRTY", Arrival: 5, Length: 7, Interruptible: true, Migratable: true},
	}
}

func goldenJobsTenancy() []sched.Job {
	return []sched.Job{
		{ID: 3, Origin: "CLEAN", Tenant: "web", Arrival: 5, Length: 2, Slack: 10},
		{ID: 4, Origin: "DIRTY", Arrival: 5, Length: 7, Interruptible: true, Migratable: true},
		{ID: 9, Origin: "CLEAN", Tenant: "spot-9.b_c", Arrival: 5, Length: 1, Slack: 3},
	}
}

func TestAdmitRecordGolden(t *testing.T) {
	// Pre-tenancy shape: frozen bytes, and decoding yields empty Tenant.
	rec := encodeAdmit(5, 10, goldenJobsPreTenancy(), tracing.TraceID{})
	checkGolden(t, "admit_record_pre_tenancy.golden", rec)
	arrival, nextID, jobs, tid, err := decodeAdmit(rec)
	if err != nil {
		t.Fatal(err)
	}
	if arrival != 5 || nextID != 10 || !tid.IsZero() {
		t.Fatalf("decoded arrival=%d nextID=%d tid=%v", arrival, nextID, tid)
	}
	if !reflect.DeepEqual(jobs, goldenJobsPreTenancy()) {
		t.Fatalf("pre-tenancy admit round-trip: %+v", jobs)
	}
	for _, j := range jobs {
		if j.Tenant != "" {
			t.Fatalf("pre-tenancy record decoded with tenant %q", j.Tenant)
		}
	}

	// Tenancy shape, with a trace id appended the way sampled submits do.
	tid = tracing.TraceID{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	rec = encodeAdmit(5, 10, goldenJobsTenancy(), tid)
	checkGolden(t, "admit_record_tenancy.golden", rec)
	arrival, nextID, jobs, gotTid, err := decodeAdmit(rec)
	if err != nil {
		t.Fatal(err)
	}
	if arrival != 5 || nextID != 10 || gotTid != tid {
		t.Fatalf("decoded arrival=%d nextID=%d tid=%v", arrival, nextID, gotTid)
	}
	if !reflect.DeepEqual(jobs, goldenJobsTenancy()) {
		t.Fatalf("tenancy admit round-trip: %+v", jobs)
	}
}

func TestServerSnapshotGolden(t *testing.T) {
	img := []byte("synthetic-fleet-image")
	snap := encodeServerSnapshot(1234, img)
	checkGolden(t, "server_snapshot_header.golden", snap)
	nextID, fleetImg, err := decodeServerSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if nextID != 1234 || !bytes.Equal(fleetImg, img) {
		t.Fatalf("snapshot round-trip: nextID=%d img=%q", nextID, fleetImg)
	}
}

// decodeFrameJobs runs a frame through the full decode path with
// plain-string interning.
func decodeFrameJobs(t *testing.T, frame []byte) *binBatch {
	t.Helper()
	b := &binBatch{}
	str := func(x []byte) string { return string(x) }
	if err := readBinaryFrame(bytes.NewReader(frame), binReqMagic, b); err != nil {
		t.Fatal(err)
	}
	if err := decodeBinaryJobs(b, str, str); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBinaryFrameGolden(t *testing.T) {
	// A tenant-free batch must still encode as a version-1 frame,
	// byte-identical to what pre-tenancy clients sent.
	five := 5
	v1Reqs := []JobRequest{
		{ID: &five, Origin: "CLEAN", LengthHours: 2, SlackHours: 10, Interruptible: true},
		{Origin: "DIRTY", LengthHours: 1, Migratable: true},
	}
	v1 := appendBinarySubmit(nil, v1Reqs)
	if v1[4] != binVersion {
		t.Fatalf("tenant-free frame version = %d, want %d", v1[4], binVersion)
	}
	checkGolden(t, "binary_frame_v1.golden", v1)
	b := decodeFrameJobs(t, v1)
	wantV1 := []sched.Job{
		{ID: 5, Origin: "CLEAN", Length: 2, Slack: 10, Interruptible: true},
		{Origin: "DIRTY", Length: 1, Migratable: true},
	}
	if !reflect.DeepEqual(b.jobs, wantV1) || b.auto[0] || !b.auto[1] {
		t.Fatalf("v1 frame decode: jobs=%+v auto=%v", b.jobs, b.auto)
	}

	// One tenant-tagged job upgrades the whole frame to version 2;
	// untagged jobs in the same batch carry no trailer.
	v2Reqs := []JobRequest{
		{ID: &five, Origin: "CLEAN", Tenant: "web", LengthHours: 2, SlackHours: 10, Interruptible: true},
		{Origin: "DIRTY", LengthHours: 1, Migratable: true},
		{Origin: "CLEAN", Tenant: "spot-9.b_c", LengthHours: 1, SlackHours: 3},
	}
	v2 := appendBinarySubmit(nil, v2Reqs)
	if v2[4] != binVersionTenant {
		t.Fatalf("tenant-tagged frame version = %d, want %d", v2[4], binVersionTenant)
	}
	checkGolden(t, "binary_frame_v2.golden", v2)
	b = decodeFrameJobs(t, v2)
	wantV2 := []sched.Job{
		{ID: 5, Origin: "CLEAN", Tenant: "web", Length: 2, Slack: 10, Interruptible: true},
		{Origin: "DIRTY", Length: 1, Migratable: true},
		{Origin: "CLEAN", Tenant: "spot-9.b_c", Length: 1, Slack: 3},
	}
	if !reflect.DeepEqual(b.jobs, wantV2) {
		t.Fatalf("v2 frame decode: jobs=%+v", b.jobs)
	}

	// The tenant flag smuggled into a version-1 frame is an unknown
	// flag, not a silent tenant: take the canonical v2 encoder output
	// for a tagged job and downgrade the version byte — the CRC covers
	// only the payload, so the frame still verifies, and the decoder
	// must reject on the flag.
	smuggled := appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", Tenant: "web", LengthHours: 1}})
	smuggled[4] = binVersion
	bb := &binBatch{}
	if err := readBinaryFrame(bytes.NewReader(smuggled), binReqMagic, bb); err != nil {
		t.Fatal(err)
	}
	err := decodeBinaryJobs(bb, func(x []byte) string { return string(x) }, func(x []byte) string { return string(x) })
	if err == nil || !strings.Contains(err.Error(), "unknown flags") {
		t.Fatalf("tenant flag in v1 frame: err = %v, want unknown-flags rejection", err)
	}

	// The ack frame is protocol-version-independent (always v1).
	ack := appendBinaryAck(nil, 7, []int{3, 4, 9})
	checkGolden(t, "binary_ack.golden", ack)
	resp, err := decodeBinaryAck(ack)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ArrivalHour != 7 || resp.Accepted != 3 || !reflect.DeepEqual(resp.IDs, []int{3, 4, 9}) {
		t.Fatalf("ack round-trip: %+v", resp)
	}
}
