package schedd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carbonshift/internal/sched"
)

// TestConcurrentClientsUnderStepping is the race/stress regression for
// the sharded service: many concurrent Submit, Lookup, and Stats
// clients hammer a schedd whose replay clock is advancing underneath
// them (so fleet Steps interleave with admissions), then the server
// drains. Run under -race this certifies the lock structure; the
// postconditions certify the bookkeeping: every acknowledged job — and
// only those — appears in the drained result exactly once, and the
// incremental stats counters agree with the full snapshot.
func TestConcurrentClientsUnderStepping(t *testing.T) {
	srv, client, clock := startServer(t,
		Config{Policy: sched.GreenestFirst{}, Shards: 4}, 60)
	ctx := context.Background()

	const (
		submitters = 6
		perWorker  = 40
		total      = submitters * perWorker
	)
	var (
		ackMu   sync.Mutex
		acked   = make(map[int]int) // job id -> times acknowledged
		stop    atomic.Bool
		writers sync.WaitGroup
		readers sync.WaitGroup
		errsCh  = make(chan error, submitters+2)
	)

	// Clock driver: march the replay forward while traffic is in
	// flight, so Steps genuinely interleave with admissions.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for h := int64(1); h <= 10; h++ {
			clock.hour.Store(h)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Read-side pressure: Lookup and Stats spinning through the run.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; !stop.Load(); i++ {
			if _, err := client.Stats(ctx); err != nil {
				errsCh <- fmt.Errorf("stats: %w", err)
				return
			}
			// Lookups race admissions, so unknown ids are expected;
			// transport or server errors surface as empty states.
			if job, err := client.Job(ctx, i%total); err == nil && job.State == "" {
				errsCh <- fmt.Errorf("job %d: empty state", job.ID)
				return
			}
		}
	}()

	for w := 0; w < submitters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i += 2 {
				// Alternate single and batch submissions with server-
				// assigned ids.
				reqs := []JobRequest{
					{Origin: "CLEAN", LengthHours: 1 + (w+i)%3, SlackHours: 48,
						Interruptible: true, Migratable: i%2 == 0},
					{Origin: "DIRTY", LengthHours: 1 + (w+i)%4, SlackHours: 48,
						Interruptible: i%3 != 0, Migratable: true},
				}
				ack, err := client.Submit(ctx, reqs...)
				if err != nil {
					errsCh <- fmt.Errorf("submit: %w", err)
					return
				}
				ackMu.Lock()
				for _, id := range ack.IDs {
					acked[id]++
				}
				ackMu.Unlock()
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { writers.Wait(); close(done) }()
	select {
	case err := <-errsCh:
		stop.Store(true)
		t.Fatal(err)
	case <-done:
	}
	stop.Store(true)
	readers.Wait()
	select {
	case err := <-errsCh:
		t.Fatal(err)
	default:
	}

	res, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if len(acked) != total {
		t.Fatalf("acknowledged %d distinct ids, want %d", len(acked), total)
	}
	for id, n := range acked {
		if n != 1 {
			t.Fatalf("job %d acknowledged %d times", id, n)
		}
	}
	if len(res.Outcomes) != total {
		t.Fatalf("drained %d outcomes, want %d (lost or duplicated jobs)", len(res.Outcomes), total)
	}
	seen := make(map[int]bool, total)
	completed := 0
	for _, o := range res.Outcomes {
		if seen[o.ID] {
			t.Fatalf("job %d appears twice in the drained result", o.ID)
		}
		seen[o.ID] = true
		if _, ok := acked[o.ID]; !ok {
			t.Fatalf("job %d in result was never acknowledged", o.ID)
		}
		if o.Completed {
			completed++
		}
	}
	if completed != res.Completed {
		t.Fatalf("result self-inconsistent: %d completed outcomes, Completed=%d", completed, res.Completed)
	}
	if res.Completed != total {
		t.Fatalf("drain left %d/%d jobs uncompleted", total-res.Completed, total)
	}

	// The O(shards) counters must agree with the O(n) snapshot at the
	// end of the run.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != total || st.Completed != total || st.Unresolved != 0 {
		t.Fatalf("final stats inconsistent: %+v", st)
	}
}
