package schedd

// The replication equivalence layer: a hot standby tailing the
// primary's journal stream must hold state BYTE-IDENTICAL to the
// primary at every shared watermark — for every policy and for
// mismatched shard counts — because apply-order equals journal-order
// equals fleet-event order. TestReplicationPrefixConsistency is the
// stronger property underneath: ANY prefix of the record stream,
// applied to a fresh fleet, lands exactly on some state the primary
// actually passed through; a follower can never occupy a state the
// primary never held.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"carbonshift/internal/sched"
	"carbonshift/internal/wal"
)

// waitUntil polls cond to true before the deadline.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runReplicationCase drives the crash-test workload through a
// journaling primary while a follower replicates it live, capturing
// both sides' serialized fleet state at every watermark hour and
// requiring byte-equality. startFollowerAt delays the follower so its
// bootstrap happens from a mid-run snapshot (non-empty state) instead
// of the boot-time one.
func runReplicationCase(t *testing.T, policy sched.Policy, shards, snapEvery, startFollowerAt int) {
	jobs := crashJobs(t)
	pclock := &hourClock{}
	primary, err := New(mkSet(t, crashHorizon), clusters(crashSlots), Config{
		Policy: policy, Horizon: crashHorizon, Shards: shards,
		DataDir: t.TempDir(), SnapshotEvery: snapEvery, Sync: wal.SyncNone,
	}, WithClock(pclock.now))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.source.Poll = 200 * time.Microsecond // lock-step drive: keep the long-poll snappy
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	var (
		folMu     sync.Mutex
		folStates = map[int][]byte{}
		follower  *Server
	)
	follower, err = NewFollower(mkSet(t, crashHorizon), clusters(crashSlots), Config{
		Policy: policy, Horizon: crashHorizon, Shards: shards,
	}, FollowerConfig{
		Primary:        ts.URL,
		HTTPClient:     ts.Client(),
		ReconnectDelay: 2 * time.Millisecond,
		OnWatermark: func(hour int) {
			img, err := follower.fleet.Marshal()
			if err != nil {
				t.Errorf("follower marshal at hour %d: %v", hour, err)
				return
			}
			folMu.Lock()
			folStates[hour] = img
			folMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if startFollowerAt <= 0 {
		follower.Start(ctx)
	}

	wantStates := map[int][]byte{}
	next := 0
	for hour := 0; hour < crashHorizon; hour++ {
		if hour == startFollowerAt {
			follower.Start(ctx)
		}
		pclock.hour.Store(int64(hour))
		// The stats poll forces the step (and its watermark record) even
		// on hours with no arrivals.
		if _, err := client.Stats(context.Background()); err != nil {
			t.Fatal(err)
		}
		img, err := primary.fleet.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		wantStates[hour] = img
		lo := next
		for next < len(jobs) && jobs[next].Arrival == hour {
			next++
		}
		submitAt(t, client, hour, jobs[lo:next])
		// Lock-step: let the follower fully apply this hour before the
		// clock moves on, so every watermark of the run is a shared one.
		// (The chaos test covers the free-running, fall-behind regime.)
		if startFollowerAt <= 0 || hour >= startFollowerAt {
			n := next
			waitUntil(t, fmt.Sprintf("follower catch-up at hour %d", hour), func() bool {
				return follower.fleet.Hour() >= hour && follower.fleet.Jobs() >= n
			})
		}
	}
	if next != len(jobs) {
		t.Fatalf("submitted %d/%d jobs", next, len(jobs))
	}

	waitUntil(t, "follower catch-up", func() bool {
		return follower.fleet.Hour() == crashHorizon-1 && follower.fleet.Jobs() == len(jobs)
	})

	folMu.Lock()
	defer folMu.Unlock()
	matched := 0
	for hour, got := range folStates {
		want, ok := wantStates[hour]
		if !ok {
			t.Fatalf("follower saw watermark hour %d the primary never recorded", hour)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("states diverge at watermark hour %d (%d vs %d bytes)", hour, len(got), len(want))
		}
		matched++
	}
	// Every watermark from the follower's entry on must have been
	// compared: one per stepped hour after bootstrap.
	minShared := crashHorizon - 1 - startFollowerAt - 1
	if matched < minShared {
		t.Fatalf("only %d shared watermarks compared, want ≥ %d", matched, minShared)
	}
	if got, want := follower.fleet.Jobs(), primary.fleet.Jobs(); got != want {
		t.Fatalf("follower holds %d jobs, primary %d", got, want)
	}
}

// TestReplicationEquivalence is the acceptance test of the replication
// layer: for all five policies and mismatched shard counts {1, 4}, the
// follower's serialized state is byte-identical to the primary's at
// every shared watermark. Two cases rotate generations mid-run (the
// stream crosses rotate frames), and one starts its follower late so
// bootstrap restores a non-empty mid-run snapshot.
func TestReplicationEquivalence(t *testing.T) {
	cases := []struct {
		policy          sched.Policy
		snapEvery       int
		startFollowerAt int
	}{
		{sched.SpatioTemporal{Percentile: 40, Window: 48}, 0, 0},
		{sched.FIFO{}, 0, 0},
		{sched.CarbonGate{Percentile: 40, Window: 48}, 30, 0},
		{sched.ForecastGate{Percentile: 40}, 25, 40},
		{sched.GreenestFirst{}, 0, 0},
	}
	shardCounts := []int{1, 4}
	for _, tc := range cases {
		for _, shards := range shardCounts {
			if testing.Short() && shards == 1 && tc.snapEvery == 0 && tc.policy.Name() != "fifo" {
				continue // -race CI leg: keep one single-shard case per flavor
			}
			t.Run(fmt.Sprintf("%s/shards=%d", tc.policy.Name(), shards), func(t *testing.T) {
				runReplicationCase(t, tc.policy, shards, tc.snapEvery, tc.startFollowerAt)
			})
		}
	}
}

// TestReplicationCrossShardEquivalence: the shard count is a pure
// parallelism knob, so a 1-shard follower of a 4-shard primary (and
// vice versa) must still replicate byte-identically.
func TestReplicationCrossShardEquivalence(t *testing.T) {
	jobs := crashJobs(t)
	policy := sched.CarbonGate{Percentile: 40, Window: 48}
	for _, tc := range []struct{ pShards, fShards int }{{4, 1}, {1, 4}} {
		t.Run(fmt.Sprintf("primary%d-follower%d", tc.pShards, tc.fShards), func(t *testing.T) {
			pclock := &hourClock{}
			primary, err := New(mkSet(t, crashHorizon), clusters(crashSlots), Config{
				Policy: policy, Horizon: crashHorizon, Shards: tc.pShards,
				DataDir: t.TempDir(), Sync: wal.SyncNone,
			}, WithClock(pclock.now))
			if err != nil {
				t.Fatal(err)
			}
			defer primary.Close()
			primary.source.Poll = 200 * time.Microsecond
			ts := httptest.NewServer(primary.Handler())
			defer ts.Close()
			client, err := NewClient(ts.URL, ts.Client())
			if err != nil {
				t.Fatal(err)
			}
			follower, err := NewFollower(mkSet(t, crashHorizon), clusters(crashSlots), Config{
				Policy: policy, Horizon: crashHorizon, Shards: tc.fShards,
			}, FollowerConfig{Primary: ts.URL, HTTPClient: ts.Client(), ReconnectDelay: 2 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer follower.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			follower.Start(ctx)

			next := 0
			for hour := 0; hour < crashHorizon; hour++ {
				pclock.hour.Store(int64(hour))
				if _, err := client.Stats(context.Background()); err != nil {
					t.Fatal(err)
				}
				lo := next
				for next < len(jobs) && jobs[next].Arrival == hour {
					next++
				}
				submitAt(t, client, hour, jobs[lo:next])
			}
			waitUntil(t, "follower catch-up", func() bool {
				return follower.fleet.Hour() == crashHorizon-1 && follower.fleet.Jobs() == len(jobs)
			})
			want, err := primary.fleet.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			got, err := follower.fleet.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("cross-shard follower state is not byte-identical to the primary")
			}
		})
	}
}

// TestReplicationPrefixConsistency: every prefix of the journal record
// stream, applied in order to a fresh fleet, reproduces a state the
// primary actually passed through. The primary's history is captured
// after every single state-changing request; the journal is then read
// back and replayed record by record.
func TestReplicationPrefixConsistency(t *testing.T) {
	jobs := crashJobs(t)
	policy := sched.SpatioTemporal{Percentile: 40, Window: 48}
	mkConfig := func(dir string) Config {
		return Config{Policy: policy, Horizon: crashHorizon, Shards: 4,
			DataDir: dir, SnapshotEvery: 0, Sync: wal.SyncNone}
	}
	dir := t.TempDir()
	pclock := &hourClock{}
	primary, err := New(mkSet(t, crashHorizon), clusters(crashSlots), mkConfig(dir), WithClock(pclock.now))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(primary.Handler())
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	historical := map[string]int{} // serialized state -> first seen at event #
	record := func(event int) {
		t.Helper()
		img, err := primary.fleet.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, seen := historical[string(img)]; !seen {
			historical[string(img)] = event
		}
	}
	event := 0
	record(event) // the empty boot state: prefix of length 0
	next := 0
	for hour := 0; hour < crashHorizon; hour++ {
		pclock.hour.Store(int64(hour))
		if _, err := client.Stats(context.Background()); err != nil {
			t.Fatal(err)
		}
		event++
		record(event)
		for next < len(jobs) && jobs[next].Arrival == hour {
			j := jobs[next]
			id := j.ID
			if _, err := client.Submit(context.Background(), JobRequest{
				ID: &id, Origin: j.Origin, LengthHours: j.Length, SlackHours: j.Slack,
				Interruptible: j.Interruptible, Migratable: j.Migratable,
			}); err != nil {
				t.Fatal(err)
			}
			event++
			record(event)
			next++
		}
	}
	ts.Close()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	var records [][]byte
	if _, err := wal.Replay(latestJournal(t, dir), func(p []byte) error {
		records = append(records, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("journal holds no records")
	}

	// One fresh fleet, grown record by record: after each apply its
	// state must be SOME historical primary state (and the sequence of
	// matched events must be non-decreasing).
	fresh, err := New(mkSet(t, crashHorizon), clusters(crashSlots), Config{
		Policy: policy, Horizon: crashHorizon, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	lastEvent := -1
	checkPrefix := func(k int) {
		t.Helper()
		img, err := fresh.fleet.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		ev, ok := historical[string(img)]
		if !ok {
			t.Fatalf("prefix of %d records produced a state the primary never held", k)
		}
		if ev < lastEvent {
			t.Fatalf("prefix of %d records matched event %d, before previously matched %d", k, ev, lastEvent)
		}
		lastEvent = ev
	}
	checkPrefix(0)
	for k, rec := range records {
		if err := fresh.ApplyReplRecord(rec); err != nil {
			t.Fatalf("applying record %d: %v", k, err)
		}
		checkPrefix(k + 1)
	}
	if got := fresh.fleet.Jobs(); got != len(jobs) {
		t.Fatalf("full prefix holds %d jobs, want %d", got, len(jobs))
	}
}
