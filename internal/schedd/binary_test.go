package schedd

// Tests for the binary batch-submit protocol (binary.go) and the
// submit-protocol bugfix sweep that shipped with it: empty-batch
// rejection, trailing-garbage rejection, and the 413 oversize mapping.

import (
	"bytes"
	"context"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carbonshift/internal/httpx"
	"carbonshift/internal/sched"
)

// postRaw drives the handler directly with an arbitrary body.
func postRaw(t *testing.T, srv *Server, path, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	return rr
}

// TestDecodeSubmitRejectsEmptyBatch is the regression test for the
// empty-batch bug: {"jobs":[]} used to fall through to a single
// zero-valued JobRequest and admit a garbage job; it must be a 400.
func TestDecodeSubmitRejectsEmptyBatch(t *testing.T) {
	if _, err := decodeSubmit(strings.NewReader(`{"jobs":[]}`)); err == nil {
		t.Fatal("decodeSubmit accepted an explicit empty batch")
	}
	srv, _, _ := startServer(t, Config{Policy: sched.FIFO{}}, 4)
	rr := postRaw(t, srv, "/v1/jobs", "application/json", []byte(`{"jobs":[]}`))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d for empty batch, want 400 (%s)", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "empty job batch") {
		t.Fatalf("error %q does not name the empty batch", rr.Body.String())
	}
}

// TestDecodeSubmitRejectsTrailingGarbage is the regression test for
// the trailing-data bug: json.Decoder stops at the first value, so a
// valid job followed by garbage (or a second value) used to be
// accepted wholesale.
func TestDecodeSubmitRejectsTrailingGarbage(t *testing.T) {
	valid := `{"origin":"CLEAN","length_hours":1}`
	for _, tail := range []string{`garbage`, `{"origin":"DIRTY"}`, `[1,2]`, `0`} {
		if _, err := decodeSubmit(strings.NewReader(valid + " " + tail)); err == nil {
			t.Fatalf("decodeSubmit accepted trailing %q", tail)
		}
	}
	// Trailing whitespace stays fine.
	if _, err := decodeSubmit(strings.NewReader(valid + " \n\t ")); err != nil {
		t.Fatalf("decodeSubmit rejected trailing whitespace: %v", err)
	}
	srv, _, _ := startServer(t, Config{Policy: sched.FIFO{}}, 4)
	rr := postRaw(t, srv, "/v1/jobs", "application/json", []byte(valid+` x`))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d for trailing garbage, want 400 (%s)", rr.Code, rr.Body.String())
	}
}

// TestSubmitOversizeBody413 is the regression test for the oversize
// mapping: a body past httpx.MaxBody used to surface as a generic 400
// out of the JSON decode error; it must be a 413 with a
// schedd_backpressure_total{reason="oversize"} count, on both routes.
func TestSubmitOversizeBody413(t *testing.T) {
	srv, _, _ := startServer(t, Config{Policy: sched.FIFO{}}, 4)
	huge := make([]byte, httpx.MaxBody+2)
	for i := range huge {
		huge[i] = 'a'
	}
	copy(huge, `{"origin":"`)

	rr := postRaw(t, srv, "/v1/jobs", "application/json", huge)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("JSON route: status %d for oversize body, want 413 (%s)", rr.Code, rr.Body.String())
	}
	// The binary route maps the same limit the same way: an otherwise
	// plausible frame whose body overruns MaxBody.
	copy(huge, binReqMagic)
	huge[4] = binVersion
	binary.BigEndian.PutUint32(huge[5:9], uint32(len(huge)))
	rr = postRaw(t, srv, "/v1/jobs/batch", BinaryContentType, huge)
	if rr.Code != http.StatusBadRequest && rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("binary route: status %d for oversize frame (%s)", rr.Code, rr.Body.String())
	}
	// A frame whose declared payload length is allowed but whose total
	// body (header + payload) overruns MaxBody hits the body limit
	// mid-read — the 413 case on the binary route.
	overrun := make([]byte, binHeaderLen+httpx.MaxBody-4)
	copy(overrun, binReqMagic)
	overrun[4] = binVersion
	binary.BigEndian.PutUint32(overrun[5:9], httpx.MaxBody-4)
	rr = postRaw(t, srv, "/v1/jobs/batch", BinaryContentType, overrun)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("binary route: status %d for oversize body, want 413 (%s)", rr.Code, rr.Body.String())
	}

	var metricsOut bytes.Buffer
	if err := srv.Metrics().WriteTo(&metricsOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metricsOut.String(), `schedd_backpressure_total{reason="oversize"} 2`) {
		t.Fatalf("oversize backpressure not counted:\n%s", metricsOut.String())
	}
}

// TestBinarySubmitRoundTrip: a binary batch admits, acks correctly,
// and the jobs are visible through the JSON read API.
func TestBinarySubmitRoundTrip(t *testing.T) {
	srv, client, clock := startServer(t, Config{Policy: sched.FIFO{}}, 4)
	ctx := context.Background()

	seven := 7
	ack, err := client.SubmitBatch(ctx,
		JobRequest{ID: &seven, Origin: "DIRTY", LengthHours: 3, SlackHours: 24, Interruptible: true},
		JobRequest{Origin: "CLEAN", LengthHours: 2, Migratable: true},
		JobRequest{Origin: "CLEAN", LengthHours: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 3 || ack.ArrivalHour != 0 {
		t.Fatalf("ack = %+v", ack)
	}
	if ack.IDs[0] != 7 || ack.IDs[1] == 7 || ack.IDs[2] == 7 || ack.IDs[1] == ack.IDs[2] {
		t.Fatalf("ids = %v", ack.IDs)
	}
	job, err := client.Job(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if job.Origin != "DIRTY" || job.RemainingHours != 3 || job.DeadlineHour != 27 {
		t.Fatalf("job 7 = %+v", job)
	}
	clock.hour.Store(1)
	if job, err = client.Job(ctx, ack.IDs[1]); err != nil || job.State == "" {
		t.Fatalf("job %d: %+v, %v", ack.IDs[1], job, err)
	}
	_ = srv
}

// TestBinarySubmitRejections covers the protocol-level 400s: empty
// batch, bad magic, bad version, CRC mismatch, trailing bytes, a lying
// length prefix, and the content-type gate.
func TestBinarySubmitRejections(t *testing.T) {
	srv, _, _ := startServer(t, Config{Policy: sched.FIFO{}}, 4)
	valid := appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", LengthHours: 1}})

	empty := appendBinaryFrame(nil, binReqMagic, binVersion, func(buf []byte) []byte {
		return binary.AppendUvarint(buf, 0)
	})
	badMagic := bytes.Clone(valid)
	copy(badMagic, "XXXX")
	badVersion := bytes.Clone(valid)
	badVersion[4] = 99
	badCRC := bytes.Clone(valid)
	badCRC[len(badCRC)-1] ^= 0xff
	trailing := append(bytes.Clone(valid), 0)
	hugeLen := bytes.Clone(valid)
	binary.BigEndian.PutUint32(hugeLen[5:9], httpx.MaxBody+1)
	truncated := valid[:len(valid)-2]

	cases := map[string][]byte{
		"empty batch": empty, "bad magic": badMagic, "bad version": badVersion,
		"bad crc": badCRC, "trailing byte": trailing, "huge length": hugeLen,
		"truncated": truncated,
	}
	for name, body := range cases {
		if rr := postRaw(t, srv, "/v1/jobs/batch", BinaryContentType, body); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rr.Code, rr.Body.String())
		}
	}
	if rr := postRaw(t, srv, "/v1/jobs/batch", "application/json", valid); rr.Code != http.StatusUnsupportedMediaType {
		t.Errorf("wrong content type: status %d, want 415", rr.Code)
	}
	if rr := postRaw(t, srv, "/v1/jobs/batch", BinaryContentType, valid); rr.Code != http.StatusOK {
		t.Errorf("valid frame after rejections: status %d (%s)", rr.Code, rr.Body.String())
	}
}

// TestBinaryAckCodec round-trips ack frames, including non-consecutive
// and negative-delta id sequences.
func TestBinaryAckCodec(t *testing.T) {
	for _, ids := range [][]int{{0}, {1, 2, 3}, {42}, {100, 7, 2000000, 8}} {
		frame := appendBinaryAck(nil, 13, ids)
		resp, err := decodeBinaryAck(frame)
		if err != nil {
			t.Fatalf("ids %v: %v", ids, err)
		}
		if resp.ArrivalHour != 13 || resp.Accepted != len(ids) {
			t.Fatalf("ids %v: resp %+v", ids, resp)
		}
		for i, id := range ids {
			if resp.IDs[i] != id {
				t.Fatalf("ids %v: decoded %v", ids, resp.IDs)
			}
		}
	}
	if _, err := decodeBinaryAck([]byte("CSBA")); err == nil {
		t.Fatal("truncated ack decoded")
	}
}

// TestClientResponseTooLarge is the regression test for the silent
// truncation bug: both client paths (single endpoint and failover)
// used to read exactly MaxBody bytes and let the decoder fail
// confusingly on the cut; they must name the oversize explicitly.
func TestClientResponseTooLarge(t *testing.T) {
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		chunk := bytes.Repeat([]byte{'x'}, 1<<20)
		for written := 0; written <= httpx.MaxBody; written += len(chunk) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	}))
	defer huge.Close()

	ctx := context.Background()
	single, err := NewClient(huge.URL, huge.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Stats(ctx); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("single-endpoint client: err = %v, want response-too-large", err)
	}
	if _, err := single.Submit(ctx, JobRequest{Origin: "CLEAN", LengthHours: 1}); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("single-endpoint Submit: err = %v, want response-too-large", err)
	}

	fo, err := NewFailoverClient([]string{huge.URL}, huge.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fo.Stats(ctx); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("failover client: err = %v, want response-too-large", err)
	}
	if _, err := fo.SubmitBatch(ctx, JobRequest{Origin: "CLEAN", LengthHours: 1}); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("failover SubmitBatch: err = %v, want response-too-large", err)
	}
}

// TestBinarySubmitFollowerRedirect: the binary route honors the 421
// write-redirect contract like the JSON route.
func TestBinarySubmitFollowerRedirect(t *testing.T) {
	set := mkSet(t, 48)
	srv, err := NewFollower(set, clusters(2), Config{Policy: sched.FIFO{}},
		FollowerConfig{Primary: "http://127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	frame := appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", LengthHours: 1}})
	rr := postRaw(t, srv, "/v1/jobs/batch", BinaryContentType, frame)
	if rr.Code != http.StatusMisdirectedRequest {
		t.Fatalf("follower binary submit: status %d, want 421 (%s)", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "primary") {
		t.Fatalf("421 body %q has no primary hint", rr.Body.String())
	}
}

// TestBinaryDecoderInterning: decoding a frame with known origins
// reuses the cluster table's strings.
func TestBinaryDecoderInterning(t *testing.T) {
	srv, _, _ := startServer(t, Config{Policy: sched.FIFO{}}, 4)
	frame := appendBinarySubmit(nil, []JobRequest{{Origin: "CLEAN", LengthHours: 1}})
	b := &binBatch{}
	if err := readBinaryFrame(bytes.NewReader(frame), binReqMagic, b); err != nil {
		t.Fatal(err)
	}
	if err := decodeBinaryJobs(b, srv.internOrigin, srv.internTenant); err != nil {
		t.Fatal(err)
	}
	if got, want := b.jobs[0].Origin, srv.origins["CLEAN"]; got != want {
		t.Fatalf("origin %q not interned", got)
	}
}
