package schedd

// The binary batch-submit protocol (POST /v1/jobs/batch): the
// zero-allocation fast path next to the JSON route. One request is one
// frame, reusing the length-prefixed CRC framing idiom of
// internal/wal records and the internal/repl stream:
//
//	"CSBB" | version | payload len uint32 BE | crc32(payload) uint32 BE | payload
//
// The payload is a job batch in the spirit of sched's job codec:
//
//	count uvarint (>= 1)
//	per job: flags byte (1 = explicit id, 2 = interruptible,
//	         4 = migratable, 8 = has tenant — version 2 only)
//	         [ id zigzag varint, when flag 1 is set ]
//	         origin len uvarint | origin bytes
//	         length uvarint | slack uvarint
//	         [ tenant len uvarint | tenant bytes, when flag 8 is set ]
//
// Version 1 is the pre-tenancy format; version 2 adds the tenant flag
// and trailer. The server accepts both, and the client emits version 2
// only when a batch actually names a tenant — so tenant-free traffic
// stays byte-identical to version 1 and keeps working against older
// servers. Flag 8 in a version-1 frame is an unknown-flag 400.
//
// A 200 response is an ack frame with magic "CSBA" and payload
//
//	arrival uvarint | count uvarint | ids as zigzag deltas
//	                                  (first delta is from 0)
//
// while every non-200 response keeps the shared JSON {"error": ...}
// shape, so the failover client's redirect/backpressure handling is
// protocol-independent. Anything after the frame, a bad magic, an
// unknown version, or a CRC mismatch is a 400; a body past
// httpx.MaxBody is a 413 like on the JSON route.
//
// Why it is fast: the request is decoded straight out of a pooled read
// buffer into pooled []sched.Job scratch (origins interned against the
// cluster table, so no string allocation either), admitted in one
// admitMu section, journaled as contiguous records under one group
// commit, and acked from a pooled output buffer. The steady-state
// handler allocates nothing per request.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"sync"
	"time"

	"carbonshift/internal/httpx"
	"carbonshift/internal/sched"
	"carbonshift/internal/tracing"
)

// BinaryContentType is the media type of the binary batch-submit
// protocol on POST /v1/jobs/batch.
const BinaryContentType = "application/x-carbonshift-batch"

const (
	binReqMagic = "CSBB"
	binAckMagic = "CSBA"
	// binVersion is the pre-tenancy frame format; binVersionTenant adds
	// the per-job tenant flag and trailer. Acks are always binVersion —
	// they carry no tenant content.
	binVersion       = 1
	binVersionTenant = 2
	// binHeaderLen: 4 magic + 1 version + 4 length + 4 CRC bytes.
	binHeaderLen = 13
)

// Per-job flag bits in the binary job encoding. binFlagHasTenant is
// valid only in version-2 frames.
const (
	binFlagHasID         = 1
	binFlagInterruptible = 2
	binFlagMigratable    = 4
	binFlagHasTenant     = 8
)

// binBatch is the pooled per-request scratch of the binary submit
// path: the frame payload, the decoded batch, and the ack buffer all
// live for exactly one request and are recycled.
type binBatch struct {
	payload []byte
	ver     byte // frame version readBinaryFrame accepted
	jobs    []sched.Job
	auto    []bool
	ids     []int
	ack     []byte
}

var binBatchPool = sync.Pool{New: func() any { return new(binBatch) }}

// putBinBatch recycles the scratch unless an outlier request grew it
// past what steady-state traffic needs — pooling a one-off huge buffer
// would pin it for the server's lifetime.
func putBinBatch(b *binBatch) {
	const maxPooledBytes = 1 << 20
	const maxPooledJobs = 1 << 14
	if cap(b.payload) > maxPooledBytes || cap(b.ack) > maxPooledBytes || cap(b.jobs) > maxPooledJobs {
		return
	}
	binBatchPool.Put(b)
}

// appendBinaryFrame appends one frame: magic, version, and the
// length/CRC header over the payload that build writes. build receives
// the buffer positioned after the header and returns it extended; the
// header is back-filled, so no intermediate payload slice is
// allocated.
func appendBinaryFrame(buf []byte, magic string, version byte, build func([]byte) []byte) []byte {
	start := len(buf)
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = build(buf)
	payload := buf[start+binHeaderLen:]
	binary.BigEndian.PutUint32(buf[start+5:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+9:], crc32.ChecksumIEEE(payload))
	return buf
}

// appendBinarySubmit encodes a request frame — the client half of the
// protocol (see Client.SubmitBatch). A batch that names no tenant is
// emitted as version 1, byte-identical to the pre-tenancy encoding, so
// it still works against servers that predate version 2.
func appendBinarySubmit(buf []byte, jobs []JobRequest) []byte {
	version := byte(binVersion)
	for i := range jobs {
		if jobs[i].Tenant != "" {
			version = binVersionTenant
			break
		}
	}
	return appendBinaryFrame(buf, binReqMagic, version, func(buf []byte) []byte {
		buf = binary.AppendUvarint(buf, uint64(len(jobs)))
		for i := range jobs {
			jr := &jobs[i]
			var flags byte
			if jr.ID != nil {
				flags |= binFlagHasID
			}
			if jr.Interruptible {
				flags |= binFlagInterruptible
			}
			if jr.Migratable {
				flags |= binFlagMigratable
			}
			if jr.Tenant != "" {
				flags |= binFlagHasTenant
			}
			buf = append(buf, flags)
			if jr.ID != nil {
				buf = binary.AppendVarint(buf, int64(*jr.ID))
			}
			buf = binary.AppendUvarint(buf, uint64(len(jr.Origin)))
			buf = append(buf, jr.Origin...)
			buf = binary.AppendUvarint(buf, uint64(jr.LengthHours))
			buf = binary.AppendUvarint(buf, uint64(jr.SlackHours))
			if jr.Tenant != "" {
				buf = binary.AppendUvarint(buf, uint64(len(jr.Tenant)))
				buf = append(buf, jr.Tenant...)
			}
		}
		return buf
	})
}

// readBinaryFrame reads one whole frame with the given magic into
// b.payload (CRC-verified) and rejects trailing bytes, exactly as
// decodeSubmit rejects trailing data after the JSON value. Errors wrap
// the reader's, so an *http.MaxBytesError from the body limit survives
// for the 413 mapping.
func readBinaryFrame(r io.Reader, magic string, b *binBatch) error {
	var hdr [binHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("binary submit: short frame header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return fmt.Errorf("binary submit: bad magic %q", hdr[:4])
	}
	if hdr[4] != binVersion && hdr[4] != binVersionTenant {
		return fmt.Errorf("binary submit: unsupported version %d (want %d or %d)", hdr[4], binVersion, binVersionTenant)
	}
	b.ver = hdr[4]
	n := binary.BigEndian.Uint32(hdr[5:9])
	sum := binary.BigEndian.Uint32(hdr[9:13])
	if n > httpx.MaxBody {
		// Bounds the allocation below; a frame this size can never fit
		// under the body limit anyway.
		return fmt.Errorf("binary submit: %d-byte payload exceeds the %d-byte limit", n, httpx.MaxBody)
	}
	if cap(b.payload) < int(n) {
		b.payload = make([]byte, n)
	}
	b.payload = b.payload[:n]
	if _, err := io.ReadFull(r, b.payload); err != nil {
		return fmt.Errorf("binary submit: short frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(b.payload) != sum {
		return fmt.Errorf("binary submit: payload CRC mismatch")
	}
	var one [1]byte
	switch _, err := io.ReadFull(r, one[:]); err {
	case io.EOF:
		return nil
	case nil:
		return fmt.Errorf("binary submit: trailing data after frame")
	default:
		return fmt.Errorf("binary submit: trailing read: %w", err)
	}
}

// decodeBinaryJobs decodes b.payload into b.jobs/b.auto, interning
// origin strings through intern (and tenant names through
// internTenant) so a known region or configured tenant costs no
// allocation. b.ids is sized alongside for admit to fill. The tenant
// flag is honored only for version-2 frames; in a version-1 frame it
// is an unknown flag.
func decodeBinaryJobs(b *binBatch, intern, internTenant func([]byte) string) error {
	count, data, err := readUvarint(b.payload)
	if err != nil {
		return fmt.Errorf("binary submit: job count: %w", err)
	}
	if count == 0 {
		return fmt.Errorf("binary submit: empty job batch")
	}
	// Every job costs at least 3 bytes (flags, origin len, length, slack
	// overlap at minimum widths), so an absurd count is caught before it
	// can size the scratch slices.
	if count > len(data) {
		return fmt.Errorf("binary submit: job count %d exceeds the %d payload bytes", count, len(data))
	}
	if cap(b.jobs) < count {
		b.jobs = make([]sched.Job, count)
		b.auto = make([]bool, count)
		b.ids = make([]int, count)
	}
	b.jobs = b.jobs[:count]
	b.auto = b.auto[:count]
	b.ids = b.ids[:count]
	for i := 0; i < count; i++ {
		if len(data) == 0 {
			return fmt.Errorf("binary submit: job %d: truncated", i)
		}
		flags := data[0]
		data = data[1:]
		allowed := byte(binFlagHasID | binFlagInterruptible | binFlagMigratable)
		if b.ver >= binVersionTenant {
			allowed |= binFlagHasTenant
		}
		if flags&^allowed != 0 {
			return fmt.Errorf("binary submit: job %d: unknown flags %#x", i, flags)
		}
		var id int
		if flags&binFlagHasID != 0 {
			v, m := binary.Varint(data)
			if m <= 0 {
				return fmt.Errorf("binary submit: job %d: bad id", i)
			}
			id = int(v)
			data = data[m:]
		}
		olen, rest, err := readUvarint(data)
		if err != nil || olen > len(rest) {
			return fmt.Errorf("binary submit: job %d: bad origin", i)
		}
		origin := intern(rest[:olen])
		data = rest[olen:]
		length, rest, err := readUvarint(data)
		if err != nil {
			return fmt.Errorf("binary submit: job %d: bad length", i)
		}
		slack, rest, err := readUvarint(rest)
		if err != nil {
			return fmt.Errorf("binary submit: job %d: bad slack", i)
		}
		data = rest
		var tenantName string
		if flags&binFlagHasTenant != 0 {
			tlen, rest, err := readUvarint(data)
			if err != nil || tlen > len(rest) {
				return fmt.Errorf("binary submit: job %d: bad tenant", i)
			}
			tenantName = internTenant(rest[:tlen])
			data = rest[tlen:]
		}
		b.jobs[i] = sched.Job{
			ID:            id,
			Origin:        origin,
			Tenant:        tenantName,
			Length:        length,
			Slack:         slack,
			Interruptible: flags&binFlagInterruptible != 0,
			Migratable:    flags&binFlagMigratable != 0,
		}
		b.auto[i] = flags&binFlagHasID == 0
	}
	if len(data) != 0 {
		return fmt.Errorf("binary submit: %d trailing payload bytes", len(data))
	}
	return nil
}

// appendBinaryAck encodes the 200 response frame for an admitted
// batch. Ids are usually consecutive (the auto-assignment case), which
// the zigzag delta encoding turns into one byte per job.
func appendBinaryAck(buf []byte, arrival int, ids []int) []byte {
	return appendBinaryFrame(buf, binAckMagic, binVersion, func(buf []byte) []byte {
		buf = binary.AppendUvarint(buf, uint64(arrival))
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		prev := 0
		for _, id := range ids {
			buf = binary.AppendVarint(buf, int64(id-prev))
			prev = id
		}
		return buf
	})
}

// decodeBinaryAck parses an ack frame into the JSON route's response
// type — the client half (Client.SubmitBatch).
func decodeBinaryAck(data []byte) (SubmitResponse, error) {
	var resp SubmitResponse
	b := &binBatch{}
	if err := readBinaryFrame(bytes.NewReader(data), binAckMagic, b); err != nil {
		return resp, err
	}
	arrival, rest, err := readUvarint(b.payload)
	if err != nil {
		return resp, fmt.Errorf("binary ack: arrival: %w", err)
	}
	count, rest, err := readUvarint(rest)
	if err != nil {
		return resp, fmt.Errorf("binary ack: count: %w", err)
	}
	if count > len(rest) {
		return resp, fmt.Errorf("binary ack: id count %d exceeds the %d payload bytes", count, len(rest))
	}
	ids := make([]int, count)
	prev := 0
	for i := range ids {
		d, m := binary.Varint(rest)
		if m <= 0 {
			return resp, fmt.Errorf("binary ack: bad id delta %d", i)
		}
		prev += int(d)
		ids[i] = prev
		rest = rest[m:]
	}
	if len(rest) != 0 {
		return resp, fmt.Errorf("binary ack: %d trailing payload bytes", len(rest))
	}
	return SubmitResponse{IDs: ids, ArrivalHour: arrival, Accepted: count}, nil
}

// internOrigin resolves an origin to the cluster table's string when
// the region is known — a map hit on a string([]byte) key does not
// allocate — and falls back to a fresh string for unknown origins,
// which validation rejects anyway.
func (s *Server) internOrigin(b []byte) string {
	if o, ok := s.origins[string(b)]; ok {
		return o
	}
	return string(b)
}

// internTenant is the tenant-name twin of internOrigin, resolving
// against the configured tenant set; unknown names still decode (the
// gate and the fair queue treat them through the catch-all or default
// spec) at the cost of one allocation.
func (s *Server) internTenant(b []byte) string {
	if t, ok := s.tenants[string(b)]; ok {
		return t
	}
	return string(b)
}

// handleSubmitBinary is POST /v1/jobs/batch: the binary twin of
// handleSubmit, sharing advance, admit, the durability wait, and the
// error mapping — only the wire codec differs, so the two routes
// cannot drift in admission semantics.
func (s *Server) handleSubmitBinary(w http.ResponseWriter, r *http.Request) {
	if mx := s.mx; mx != nil {
		mx.submitBinary.Inc()
		t0 := time.Now()
		defer func() { mx.submitSeconds.Observe(time.Since(t0).Seconds()) }()
	}
	if s.isFollower() {
		s.writeMisdirected(w)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != BinaryContentType {
		writeJSON(w, http.StatusUnsupportedMediaType,
			ErrorResponse{Error: fmt.Sprintf("content type %q; want %s", ct, BinaryContentType)})
		return
	}
	ctx := r.Context()
	b := binBatchPool.Get().(*binBatch)
	defer putBinBatch(b)
	_, dsp := tracing.StartSpan(ctx, "schedd.decode")
	err := readBinaryFrame(http.MaxBytesReader(w, r.Body, httpx.MaxBody), binReqMagic, b)
	if err == nil {
		err = decodeBinaryJobs(b, s.internOrigin, s.internTenant)
	}
	dsp.SetAttr(tracing.Int("jobs", len(b.jobs)))
	dsp.End()
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	if err := s.advance(ctx); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	arrival, journal, seq, status, err := s.admit(ctx, b.jobs, b.auto, b.ids)
	if err != nil {
		s.writeAdmitError(w, status, err)
		return
	}
	if journal != nil {
		_, wsp := tracing.StartSpan(ctx, "wal.fsync_wait")
		err := journal.WaitSynced(seq)
		wsp.End()
		if err != nil {
			s.failed.Store(&serverFailure{err})
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
			return
		}
	}
	b.ack = appendBinaryAck(b.ack[:0], arrival, b.ids)
	w.Header().Set("Content-Type", BinaryContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(b.ack)
}
