// Package repl is the replication layer over internal/wal's journal:
// a primary-side Source that serves journal records as a resumable,
// long-polled HTTP byte stream, and a follower-side Tail that applies
// them — in exact journal order — into its own copy of the scheduler
// state. Because the journal is a deterministic record of every
// state-changing fleet event (admissions and hour watermarks, in fleet-
// event order), a follower that has applied the stream up to a cursor
// holds state byte-identical to the primary's at that cursor; the
// replication equivalence tests in internal/schedd pin this.
//
// The wire protocol (version 1) is a sequence of CRC-framed messages:
//
//	[ type byte | len uint32 BE | crc32(payload) uint32 BE | payload ]
//
//	'H' hello      magic "CSRP" | version | gen uvarint | off uvarint —
//	               opens every stream, echoing the cursor it starts at
//	'R' record     nextOff uvarint | raw journal record bytes; the
//	               cursor after applying is (gen, nextOff)
//	'G' rotate     gen uvarint | off uvarint — the journal rotated; the
//	               stream continues in the new generation
//	'B' heartbeat  hour uvarint | gen uvarint | off uvarint — keepalive
//	               carrying the primary's fleet hour and live cursor
//	'E' end        reason string — the source cannot continue from this
//	               cursor; the follower must bootstrap from a snapshot
//
// A cursor is (generation, byte offset into that generation's journal
// file). Cursors are only ever minted by the source — the hello frame,
// record nextOffs, and rotate frames — so any cursor a follower
// presents is a record boundary the primary once served. Frames are
// individually checksummed so a truncated or corrupted stream is
// detected at the frame where it happens; the decoder never panics on
// hostile input (see FuzzReplStreamDecode).
//
// Observability: Tail.Register (metrics.go) exposes the session's
// counters as repl_* families on a metrics registry — records
// applied, snapshot bootstraps, stream reconnects, and the primary's
// heartbeat hour — the inputs behind the follower apply-rate and
// replication-lag panels in examples/dashboard/ and the
// ScheddReplicationLagHigh runbook entry.
//
// Tracing rides the records, not the frames: 'R' frames embed journal
// record bytes verbatim, and a sampled request's trace ID is part of
// the primary's admit record payload (internal/schedd's codec), so the
// stream carries it with no protocol change — the follower's apply
// spans join the originating trace under the same trace ID, and this
// wire format (pinned by the stream golden test) is untouched.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"carbonshift/internal/wal"
)

// Protocol constants.
const (
	streamMagic   = "CSRP"
	streamVersion = 1

	frameHello     = 'H'
	frameRecord    = 'R'
	frameRotate    = 'G'
	frameHeartbeat = 'B'
	frameEnd       = 'E'

	// frameHeaderLen is type + length + CRC.
	frameHeaderLen = 9
	// maxFramePayload bounds one frame: a journal record plus cursor
	// overhead. A hostile length prefix past it is corruption, never an
	// allocation.
	maxFramePayload = wal.MaxRecord + 64
)

// ErrBadFrame reports a frame that can never be valid: oversized
// length, CRC mismatch, unknown type, or a malformed payload.
var ErrBadFrame = errors.New("repl: bad frame")

// Cursor addresses a position in the primary's journal history.
type Cursor struct {
	Generation uint64
	Offset     int64
}

func (c Cursor) String() string {
	return fmt.Sprintf("gen %d offset %d", c.Generation, c.Offset)
}

// Frame is one decoded stream message. Which fields are meaningful
// depends on Type (see the package comment); Record aliases the
// decoder's buffer and must not be retained across Next calls.
type Frame struct {
	Type   byte
	Cursor Cursor // hello: start; record: cursor AFTER applying; rotate/heartbeat: live cursor
	Hour   int    // heartbeat: the primary's current fleet hour
	Record []byte // record: raw journal record payload
	Reason string // end: why the stream cannot continue
}

// --- encoding ---

func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// AppendHello appends the stream-opening frame for a cursor.
func AppendHello(buf []byte, c Cursor) []byte {
	p := append([]byte(streamMagic), streamVersion)
	p = binary.AppendUvarint(p, c.Generation)
	p = binary.AppendUvarint(p, uint64(c.Offset))
	return appendFrame(buf, frameHello, p)
}

// AppendRecord appends one journal record with the cursor that follows
// it.
func AppendRecord(buf []byte, nextOffset int64, record []byte) []byte {
	p := binary.AppendUvarint(make([]byte, 0, len(record)+8), uint64(nextOffset))
	p = append(p, record...)
	return appendFrame(buf, frameRecord, p)
}

// AppendRotate appends a generation-rotation frame.
func AppendRotate(buf []byte, c Cursor) []byte {
	p := binary.AppendUvarint(nil, c.Generation)
	p = binary.AppendUvarint(p, uint64(c.Offset))
	return appendFrame(buf, frameRotate, p)
}

// AppendHeartbeat appends a keepalive with the primary's fleet hour and
// live cursor.
func AppendHeartbeat(buf []byte, hour int, c Cursor) []byte {
	p := binary.AppendUvarint(nil, uint64(hour))
	p = binary.AppendUvarint(p, c.Generation)
	p = binary.AppendUvarint(p, uint64(c.Offset))
	return appendFrame(buf, frameHeartbeat, p)
}

// AppendEnd appends the stream-terminating frame.
func AppendEnd(buf []byte, reason string) []byte {
	return appendFrame(buf, frameEnd, []byte(reason))
}

// --- decoding ---

// FrameReader decodes a frame stream incrementally.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps an io.Reader (typically a streaming HTTP
// response body) in a frame decoder.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next decodes one frame. io.EOF means the stream ended cleanly between
// frames; io.ErrUnexpectedEOF means it was cut mid-frame; ErrBadFrame
// wraps everything a well-formed stream can never contain. The returned
// Frame's Record aliases an internal buffer reused by the next call.
func (fr *FrameReader) Next() (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return Frame{}, err // io.EOF here = clean end of stream
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	typ := hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:5])
	sum := binary.BigEndian.Uint32(hdr[5:9])
	if n > maxFramePayload {
		return Frame{}, fmt.Errorf("%w: payload of %d bytes exceeds limit", ErrBadFrame, n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Frame{}, fmt.Errorf("%w: CRC mismatch on %q frame", ErrBadFrame, typ)
	}
	return decodeFrame(typ, payload)
}

func decodeFrame(typ byte, payload []byte) (Frame, error) {
	f := Frame{Type: typ}
	switch typ {
	case frameHello:
		if len(payload) < len(streamMagic)+1 || string(payload[:len(streamMagic)]) != streamMagic {
			return f, fmt.Errorf("%w: hello without magic", ErrBadFrame)
		}
		if v := payload[len(streamMagic)]; v != streamVersion {
			return f, fmt.Errorf("%w: protocol version %d (want %d)", ErrBadFrame, v, streamVersion)
		}
		rest := payload[len(streamMagic)+1:]
		var err error
		if f.Cursor, rest, err = readCursor(rest); err != nil {
			return f, err
		}
		return f, expectEmpty(rest)
	case frameRecord:
		off, n := binary.Uvarint(payload)
		if n <= 0 || off > 1<<62 {
			return f, fmt.Errorf("%w: record frame cursor", ErrBadFrame)
		}
		f.Cursor.Offset = int64(off)
		f.Record = payload[n:]
		return f, nil
	case frameRotate:
		var err error
		var rest []byte
		if f.Cursor, rest, err = readCursor(payload); err != nil {
			return f, err
		}
		return f, expectEmpty(rest)
	case frameHeartbeat:
		hour, n := binary.Uvarint(payload)
		if n <= 0 || hour > 1<<32 {
			return f, fmt.Errorf("%w: heartbeat hour", ErrBadFrame)
		}
		f.Hour = int(hour)
		var err error
		var rest []byte
		if f.Cursor, rest, err = readCursor(payload[n:]); err != nil {
			return f, err
		}
		return f, expectEmpty(rest)
	case frameEnd:
		f.Reason = string(payload)
		return f, nil
	default:
		return f, fmt.Errorf("%w: unknown frame type %q", ErrBadFrame, typ)
	}
}

func readCursor(data []byte) (Cursor, []byte, error) {
	gen, n := binary.Uvarint(data)
	if n <= 0 {
		return Cursor{}, nil, fmt.Errorf("%w: cursor generation", ErrBadFrame)
	}
	data = data[n:]
	off, n := binary.Uvarint(data)
	if n <= 0 || off > 1<<62 {
		return Cursor{}, nil, fmt.Errorf("%w: cursor offset", ErrBadFrame)
	}
	return Cursor{Generation: gen, Offset: int64(off)}, data[n:], nil
}

func expectEmpty(rest []byte) error {
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return nil
}
