package repl

// FuzzReplStreamDecode hardens the stream frame decoder against a
// hostile or corrupted primary: torn frames, flipped CRCs, oversized
// length prefixes, and arbitrary garbage must all surface as errors —
// never a panic, never an unbounded allocation.

import (
	"bytes"
	"io"
	"testing"

	"carbonshift/internal/wal"
)

// sampleStream builds one well-formed frame of every type.
func sampleStream() []byte {
	buf := AppendHello(nil, Cursor{Generation: 3, Offset: int64(wal.HeaderLen)})
	buf = AppendRecord(buf, 42, []byte{0x01, 0x05, 0x02})
	buf = AppendRotate(buf, Cursor{Generation: 4, Offset: int64(wal.HeaderLen)})
	buf = AppendHeartbeat(buf, 17, Cursor{Generation: 4, Offset: 99})
	return AppendEnd(buf, "done")
}

func FuzzReplStreamDecode(f *testing.F) {
	whole := sampleStream()
	f.Add(whole)
	f.Add(whole[:len(whole)-3])                            // torn final frame
	f.Add(whole[:frameHeaderLen-2])                        // torn first header
	f.Add([]byte{})                                        // empty stream
	f.Add([]byte{'R', 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // hostile length
	corrupt := append([]byte(nil), whole...)
	corrupt[frameHeaderLen+2] ^= 0xff // flip a hello payload byte: CRC mismatch
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		frames := 0
		for {
			fm, err := fr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && !bytes.Contains([]byte(err.Error()), []byte("repl:")) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			// A decoded frame must be internally consistent.
			switch fm.Type {
			case frameHello, frameRecord, frameRotate, frameHeartbeat, frameEnd:
			default:
				t.Fatalf("decoder returned unknown frame type %q without error", fm.Type)
			}
			if fm.Cursor.Offset < 0 {
				t.Fatalf("negative cursor offset %d", fm.Cursor.Offset)
			}
			frames++
			if frames > len(data) {
				t.Fatalf("decoded %d frames from %d bytes", frames, len(data))
			}
		}
	})
}

// TestFrameRoundTrip pins that every encoder/decoder pair is lossless.
func TestFrameRoundTrip(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader(sampleStream()))

	f, err := fr.Next()
	if err != nil || f.Type != frameHello || f.Cursor != (Cursor{Generation: 3, Offset: int64(wal.HeaderLen)}) {
		t.Fatalf("hello = %+v, %v", f, err)
	}
	f, err = fr.Next()
	if err != nil || f.Type != frameRecord || f.Cursor.Offset != 42 || !bytes.Equal(f.Record, []byte{0x01, 0x05, 0x02}) {
		t.Fatalf("record = %+v, %v", f, err)
	}
	f, err = fr.Next()
	if err != nil || f.Type != frameRotate || f.Cursor != (Cursor{Generation: 4, Offset: int64(wal.HeaderLen)}) {
		t.Fatalf("rotate = %+v, %v", f, err)
	}
	f, err = fr.Next()
	if err != nil || f.Type != frameHeartbeat || f.Hour != 17 || f.Cursor != (Cursor{Generation: 4, Offset: 99}) {
		t.Fatalf("heartbeat = %+v, %v", f, err)
	}
	f, err = fr.Next()
	if err != nil || f.Type != frameEnd || f.Reason != "done" {
		t.Fatalf("end = %+v, %v", f, err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame err = %v, want io.EOF", err)
	}
}
