package repl

// The primary side: Source serves the journal as a resumable frame
// stream plus a snapshot-bootstrap endpoint, reading journal files
// through wal.SegmentReader and never touching the appenders' locks.
//
// Cursor semantics: a stream request names (generation, offset). The
// source serves it as long as that generation's journal file is still
// on disk — the current generation always is, and an older one survives
// only until the rotation that superseded it garbage-collects it. A
// cursor that predates the oldest retained generation (or overruns the
// file) gets 410 Gone with the current generation, telling the follower
// to bootstrap from /v1/repl/snapshot: the snapshot for generation G is
// by construction the state at the start of journal G, so the follower
// resumes streaming at (G, HeaderLen) with nothing lost.
//
// Rotation mid-stream is seamless: the source keeps the rotated
// journal's file handle open (deletion does not revoke it), drains it
// to its final byte — the primary closes a journal, making it complete,
// before it bumps the generation — then emits a rotate frame and
// continues in the next generation's file. Only when the next file is
// already gone (the follower fell a full generation behind while
// disconnected from the file system's point of view) does the source
// end the stream and force a bootstrap.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"carbonshift/internal/httpx"
	"carbonshift/internal/wal"
)

// Backend is what the stream source needs from the primary scheduler.
// internal/schedd's Server implements it when journaling is enabled.
type Backend interface {
	// Generation returns the live snapshot+journal generation.
	Generation() uint64
	// JournalPath returns the journal file path for a generation.
	JournalPath(gen uint64) string
	// FlushJournal pushes the live journal's buffered records into its
	// file so stream reads observe them (no fsync implied).
	FlushJournal()
	// SnapshotLatest returns the newest on-disk snapshot — the state at
	// the start of the returned generation's journal.
	SnapshotLatest() (gen uint64, payload []byte, err error)
	// Hour returns the primary's current fleet hour, carried on
	// heartbeats so followers can report replication lag.
	Hour() int
}

// Source serves the replication endpoints for one primary.
type Source struct {
	b Backend
	// Poll is the cadence at which a caught-up stream re-checks the
	// journal for new records (default 15ms).
	Poll time.Duration
	// Heartbeat is the keepalive cadence on an idle stream (default
	// 500ms).
	Heartbeat time.Duration
}

// NewSource builds a Source over a primary backend.
func NewSource(b Backend) *Source {
	return &Source{b: b, Poll: 15 * time.Millisecond, Heartbeat: 500 * time.Millisecond}
}

// gone rejects a cursor the source cannot serve, pointing the follower
// at the snapshot bootstrap path.
func (s *Source) gone(w http.ResponseWriter, why string) {
	httpx.WriteJSON(w, http.StatusGone, map[string]any{
		"error":              "cursor not serveable: " + why + " (bootstrap from /v1/repl/snapshot)",
		"current_generation": s.b.Generation(),
	})
}

// HandleSnapshot serves GET /v1/repl/snapshot: the newest snapshot
// payload with its generation in X-Repl-Generation. A follower restores
// it and streams from (generation, wal.HeaderLen).
func (s *Source) HandleSnapshot(w http.ResponseWriter, r *http.Request) {
	gen, payload, err := s.b.SnapshotLatest()
	if err != nil {
		httpx.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Repl-Generation", strconv.FormatUint(gen, 10))
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// HandleStream serves GET /v1/repl/stream?generation=G&offset=O: a
// chunked, long-polled frame stream that begins at the cursor and
// follows the journal — across rotations — until the client
// disconnects or the cursor becomes unserveable.
func (s *Source) HandleStream(w http.ResponseWriter, r *http.Request) {
	gen, err := strconv.ParseUint(r.URL.Query().Get("generation"), 10, 64)
	if err != nil || gen == 0 {
		s.gone(w, "missing or malformed generation")
		return
	}
	offset, err := strconv.ParseInt(r.URL.Query().Get("offset"), 10, 64)
	if err != nil || offset < int64(wal.HeaderLen) {
		s.gone(w, "missing or malformed offset")
		return
	}
	if gen > s.b.Generation() {
		s.gone(w, fmt.Sprintf("generation %d is in the future", gen))
		return
	}
	if gen == s.b.Generation() {
		s.b.FlushJournal()
	}
	sr, err := wal.OpenSegment(s.b.JournalPath(gen), offset)
	if err != nil {
		s.gone(w, fmt.Sprintf("generation %d is no longer retained", gen))
		return
	}
	defer func() { sr.Close() }()
	if size, err := sr.Size(); err != nil || offset > size {
		s.gone(w, fmt.Sprintf("offset %d overruns generation %d", offset, gen))
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	out := &frameWriter{w: w}
	out.send(AppendHello(nil, Cursor{Generation: gen, Offset: offset}))

	ctx := r.Context()
	lastBeat := time.Now()
	// drain sends every complete record currently readable at the
	// cursor. failed=true means the stream is over (corruption reported
	// via an end frame, or the client vanished).
	drain := func() (sent, failed bool) {
		for {
			p, err := sr.Next()
			if errors.Is(err, wal.ErrNoRecord) {
				return sent, false
			}
			if err != nil {
				out.send(AppendEnd(nil, err.Error()))
				return sent, true
			}
			out.send(AppendRecord(nil, sr.Offset(), p))
			sent = true
			if out.err != nil {
				return sent, true
			}
		}
	}
	for ctx.Err() == nil && out.err == nil {
		// Drain every complete record currently in this generation's
		// file. On the live generation, flush the appenders' buffer
		// first so the file holds everything acknowledged so far.
		if gen == s.b.Generation() {
			s.b.FlushJournal()
		}
		sent, failed := drain()
		if failed {
			return
		}
		if sent {
			out.flush()
			continue // there may be more already
		}

		if cur := s.b.Generation(); cur > gen {
			// The generation rotated under us. A rotated journal is
			// closed — flushed and complete — before the generation
			// number advances, but records may have landed in it after
			// our drain above and before the rotation; re-drain the now
			// final file so nothing is skipped, then move to the next
			// one. If rotation already garbage-collected that next
			// journal, the follower must re-bootstrap.
			sent, failed := drain()
			if failed {
				return
			}
			if sent {
				out.flush()
			}
			next := gen + 1
			nsr, err := wal.OpenSegment(s.b.JournalPath(next), int64(wal.HeaderLen))
			if err != nil {
				out.send(AppendEnd(nil, fmt.Sprintf("generation %d was garbage-collected", next)))
				return
			}
			sr.Close()
			sr, gen = nsr, next
			out.send(AppendRotate(nil, Cursor{Generation: gen, Offset: int64(wal.HeaderLen)}))
			out.flush()
			continue
		}

		// Caught up: long-poll, heartbeating so the follower can tell an
		// idle primary from a dead connection.
		if time.Since(lastBeat) >= s.Heartbeat {
			out.send(AppendHeartbeat(nil, s.b.Hour(), Cursor{Generation: gen, Offset: sr.Offset()}))
			out.flush()
			lastBeat = time.Now()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(s.Poll):
		}
	}
}

// frameWriter writes frames to the HTTP response, latching the first
// write error (a vanished client) and flushing chunks eagerly.
type frameWriter struct {
	w   http.ResponseWriter
	err error
}

func (fw *frameWriter) send(frame []byte) {
	if fw.err != nil {
		return
	}
	_, fw.err = fw.w.Write(frame)
}

func (fw *frameWriter) flush() {
	if fw.err == nil {
		if f, ok := fw.w.(http.Flusher); ok {
			f.Flush()
		}
	}
}
