package repl

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carbonshift/internal/wal"
)

// fakeBackend is a minimal primary: a wal.Store data dir whose
// "state" is the concatenation of every record appended so far, so
// snapshots are trivially checkable.
type fakeBackend struct {
	t     *testing.T
	store *wal.Store

	mu      sync.Mutex
	journal *wal.Journal
	state   []byte
	gen     atomic.Uint64
	hour    atomic.Int64
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	store, err := wal.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	b := &fakeBackend{t: t, store: store}
	b.rotate()
	return b
}

func (b *fakeBackend) Generation() uint64            { return b.gen.Load() }
func (b *fakeBackend) JournalPath(gen uint64) string { return b.store.JournalPath(gen) }
func (b *fakeBackend) Hour() int                     { return int(b.hour.Load()) }

func (b *fakeBackend) FlushJournal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.journal != nil {
		b.journal.Flush()
	}
}

func (b *fakeBackend) SnapshotLatest() (uint64, []byte, error) {
	return b.store.LatestSnapshot()
}

func (b *fakeBackend) append(payloads ...[]byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range payloads {
		if err := b.journal.Append(p); err != nil {
			b.t.Fatal(err)
		}
		b.state = append(b.state, p...)
	}
}

// rotate mimics schedd's generation rotation: snapshot the state as
// gen+1, open that journal, close the old one, GC below.
func (b *fakeBackend) rotate() {
	b.mu.Lock()
	defer b.mu.Unlock()
	next := b.gen.Load() + 1
	if err := b.store.WriteSnapshot(next, append([]byte(nil), b.state...)); err != nil {
		b.t.Fatal(err)
	}
	j, err := wal.Create(b.store.JournalPath(next), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		b.t.Fatal(err)
	}
	if b.journal != nil {
		b.journal.Close()
	}
	b.journal = j
	b.gen.Store(next)
	b.store.RemoveGenerationsBelow(next)
}

func (b *fakeBackend) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.journal != nil {
		b.journal.Close()
		b.journal = nil
	}
}

// recApplier rebuilds the fake backend's state from the stream.
type recApplier struct {
	mu        sync.Mutex
	state     []byte
	records   int
	restored  int
	lastSnap  []byte
	failApply error
}

func (a *recApplier) RestoreReplSnapshot(snap []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.state = append([]byte(nil), snap...)
	a.lastSnap = append([]byte(nil), snap...)
	a.restored++
	return nil
}

func (a *recApplier) ApplyReplRecord(rec []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failApply != nil {
		return a.failApply
	}
	a.state = append(a.state, rec...)
	a.records++
	return nil
}

func (a *recApplier) snapshot() (state []byte, records, restored int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.state...), a.records, a.restored
}

func startSource(t *testing.T, b Backend) (*httptest.Server, *Source) {
	t.Helper()
	src := NewSource(b)
	src.Poll = time.Millisecond
	src.Heartbeat = 5 * time.Millisecond
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/stream", src.HandleStream)
	mux.HandleFunc("GET /v1/repl/snapshot", src.HandleSnapshot)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, src
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSourceTailReplicates: snapshot bootstrap, live tailing, rotation
// mid-stream, and heartbeats all land the follower on a byte-exact
// copy of the primary's state.
func TestSourceTailReplicates(t *testing.T) {
	b := newFakeBackend(t)
	defer b.close()
	b.append([]byte("a1"), []byte("b22"))
	ts, _ := startSource(t, b)

	a := &recApplier{}
	tail := NewTail(ts.URL, a, ts.Client(), TailConfig{ReconnectDelay: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); tail.Run(ctx) }()

	waitFor(t, "initial catch-up", func() bool { _, n, _ := a.snapshot(); return n == 2 })
	b.hour.Store(7)
	waitFor(t, "heartbeat hour", func() bool { return tail.PrimaryHour() == 7 })

	// More records, then a rotation with a third batch behind it.
	b.append([]byte("c333"))
	waitFor(t, "pre-rotation record", func() bool { _, n, _ := a.snapshot(); return n == 3 })
	b.rotate()
	b.append([]byte("d4444"), []byte("e"))
	waitFor(t, "post-rotation records", func() bool { _, n, _ := a.snapshot(); return n == 5 })

	state, _, restored := a.snapshot()
	if restored != 1 {
		t.Fatalf("restored %d times, want exactly one bootstrap", restored)
	}
	if want := []byte("a1b22c333d4444e"); !bytes.Equal(state, want) {
		t.Fatalf("follower state %q, want %q", state, want)
	}
	if cur, ok := tail.Cursor(); !ok || cur.Generation != b.Generation() {
		t.Fatalf("cursor = %v/%v, want generation %d", cur, ok, b.Generation())
	}
	st := tail.Stats()
	if st.RecordsApplied != 5 || st.Bootstraps != 1 {
		t.Fatalf("stats = %+v", st)
	}
	cancel()
	<-done
}

// TestTailResumesAcrossRestart: cancelling Run and running the same
// Tail again resumes from the cursor — no gap, no double-apply.
func TestTailResumesAcrossRestart(t *testing.T) {
	b := newFakeBackend(t)
	defer b.close()
	ts, _ := startSource(t, b)
	a := &recApplier{}
	tail := NewTail(ts.URL, a, ts.Client(), TailConfig{ReconnectDelay: time.Millisecond})

	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() { defer close(done1); tail.Run(ctx1) }()
	b.append([]byte("one"))
	waitFor(t, "first record", func() bool { _, n, _ := a.snapshot(); return n == 1 })
	cancel1()
	<-done1

	// Records appended while the follower is down.
	b.append([]byte("-two"), []byte("-three"))

	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan struct{})
	go func() { defer close(done2); tail.Run(ctx2) }()
	waitFor(t, "resume catch-up", func() bool { _, n, _ := a.snapshot(); return n == 3 })
	state, _, restored := a.snapshot()
	if restored != 1 {
		t.Fatalf("restart re-bootstrapped (%d restores), cursor resume expected", restored)
	}
	if want := []byte("one-two-three"); !bytes.Equal(state, want) {
		t.Fatalf("state %q, want %q", state, want)
	}
	cancel2()
	<-done2
}

// TestTailRebootstrapsWhenBehind: a follower whose generation was
// garbage-collected gets 410 and recovers via a fresh snapshot.
func TestTailRebootstrapsWhenBehind(t *testing.T) {
	b := newFakeBackend(t)
	defer b.close()
	ts, _ := startSource(t, b)
	a := &recApplier{}
	tail := NewTail(ts.URL, a, ts.Client(), TailConfig{ReconnectDelay: time.Millisecond})

	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() { defer close(done1); tail.Run(ctx1) }()
	b.append([]byte("kept"))
	waitFor(t, "first record", func() bool { _, n, _ := a.snapshot(); return n == 1 })
	cancel1()
	<-done1

	// Two rotations while the follower is down: its generation-1 cursor
	// is now garbage-collected.
	b.append([]byte("-lost-to-snapshot"))
	b.rotate()
	b.rotate()
	b.append([]byte("-fresh"))

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done2 := make(chan struct{})
	go func() { defer close(done2); tail.Run(ctx2) }()
	want := []byte("kept-lost-to-snapshot-fresh")
	waitFor(t, "re-bootstrap catch-up", func() bool { s, _, _ := a.snapshot(); return bytes.Equal(s, want) })
	if _, _, restored := a.snapshot(); restored != 2 {
		t.Fatalf("restored %d times, want 2 (initial + post-410)", restored)
	}
	if tail.Stats().Bootstraps != 2 {
		t.Fatalf("stats = %+v", tail.Stats())
	}
	cancel2()
	<-done2
}

// TestTailRebootstrapsOnApplyError: a follower that cannot apply a
// record discards its state and re-bootstraps rather than serving a
// diverged copy.
func TestTailRebootstrapsOnApplyError(t *testing.T) {
	b := newFakeBackend(t)
	defer b.close()
	b.append([]byte("base"))
	b.rotate() // snapshot now holds "base"
	ts, _ := startSource(t, b)

	a := &recApplier{failApply: fmt.Errorf("synthetic divergence")}
	tail := NewTail(ts.URL, a, ts.Client(), TailConfig{ReconnectDelay: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); tail.Run(ctx) }()

	waitFor(t, "bootstrap", func() bool { _, _, r := a.snapshot(); return r >= 1 })
	b.append([]byte("-poison"))
	waitFor(t, "apply failure surfaced", func() bool { return tail.Stats().LastError != "" })
	a.mu.Lock()
	a.failApply = nil
	a.mu.Unlock()
	want := []byte("base-poison")
	waitFor(t, "self-heal", func() bool { s, _, _ := a.snapshot(); return bytes.Equal(s, want) })
	if _, _, restored := a.snapshot(); restored < 2 {
		t.Fatalf("restored %d times, want a re-bootstrap after the apply error", restored)
	}
	cancel()
	<-done
}

// TestStreamCursorValidation: the source rejects unserveable cursors
// with 410 Gone rather than streaming garbage.
func TestStreamCursorValidation(t *testing.T) {
	b := newFakeBackend(t)
	defer b.close()
	b.append([]byte("x"))
	ts, _ := startSource(t, b)

	for _, q := range []string{
		"",                          // no cursor at all
		"generation=0&offset=5",     // generation 0 never exists
		"generation=9&offset=5",     // future generation
		"generation=1&offset=1",     // offset inside the header
		"generation=1&offset=99999", // offset past the file
		"generation=1&offset=abc",   // malformed
	} {
		resp, err := ts.Client().Get(ts.URL + "/v1/repl/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Errorf("query %q: status %d, want 410", q, resp.StatusCode)
		}
	}
}

// TestSnapshotEndpoint pins the bootstrap wire contract: the payload
// body plus the generation header.
func TestSnapshotEndpoint(t *testing.T) {
	b := newFakeBackend(t)
	defer b.close()
	b.append([]byte("snap-state"))
	b.rotate()
	ts, _ := startSource(t, b)

	resp, err := ts.Client().Get(ts.URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Repl-Generation"); got != "2" {
		t.Fatalf("X-Repl-Generation = %q, want 2", got)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "snap-state" {
		t.Fatalf("snapshot body %q", buf.String())
	}
}
