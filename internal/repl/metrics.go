package repl

// Replication-session instrumentation. The Tail already maintains
// atomic session counters for TailStats; Register exposes the same
// atomics as repl_* families, so /metrics and the /v1/stats
// replication block can never disagree. rate(repl_records_applied
// _total) is the follower apply rate; bootstraps and reconnects
// climbing together with a flat apply rate is the signature of a
// follower that cannot hold a stream (see docs/RUNBOOK.md).

import "carbonshift/internal/metrics"

// Register registers the tail's repl_* metric families on r (no-op on
// a nil registry). Call once per Tail.
func (t *Tail) Register(r *metrics.Registry) {
	r.NewCounterFunc("repl_records_applied_total",
		"Journal records applied from the replication stream.",
		func() float64 { return float64(t.records.Load()) })
	r.NewCounterFunc("repl_bootstraps_total",
		"Full snapshot bootstraps (first connect, 410 cursor loss, or apply error).",
		func() float64 { return float64(t.bootstraps.Load()) })
	r.NewCounterFunc("repl_reconnects_total",
		"Stream re-dials after a drop.",
		func() float64 { return float64(t.reconnects.Load()) })
	r.NewGaugeFunc("repl_primary_hour",
		"Primary's fleet hour from its latest heartbeat (-1 before one arrived).",
		func() float64 { return float64(t.primaryHour.Load()) })
}
