package repl

// The follower side: Tail maintains one replication session against a
// primary — bootstrap from snapshot when it has no cursor, then stream
// and apply records, reconnecting from the cursor after any transport
// failure. The applied-record / cursor pair advances atomically from
// the stream goroutine's point of view (apply, then move the cursor),
// so a reconnect never skips a record and never re-applies one. Only a
// 410 (cursor fell behind the retained generations), an end frame, or
// an apply error — a diverged or corrupted follower state — invalidate
// the cursor and force a fresh snapshot bootstrap, which fully replaces
// the follower's state and is therefore always safe.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"carbonshift/internal/httpx"
	"carbonshift/internal/wal"
)

// Applier consumes the replicated state: a snapshot restore on
// bootstrap, then journal records in exact stream order.
// internal/schedd's follower-mode Server implements it.
type Applier interface {
	// RestoreReplSnapshot replaces the applier's entire state with a
	// decoded snapshot payload.
	RestoreReplSnapshot(snapshot []byte) error
	// ApplyReplRecord applies one journal record.
	ApplyReplRecord(record []byte) error
}

// TailConfig tunes a Tail.
type TailConfig struct {
	// ReconnectDelay is the pause before re-dialing after a failure
	// (default 200ms).
	ReconnectDelay time.Duration
	// SnapshotTimeout bounds one bootstrap fetch (default 30s).
	SnapshotTimeout time.Duration
}

// TailStats is a monitoring snapshot of one replication session.
type TailStats struct {
	// RecordsApplied counts journal records applied since construction.
	RecordsApplied uint64 `json:"records_applied"`
	// Bootstraps counts full snapshot restores.
	Bootstraps uint64 `json:"bootstraps"`
	// Reconnects counts stream re-dials after a drop.
	Reconnects uint64 `json:"reconnects"`
	// LastError is the most recent session error ("" when healthy).
	LastError string `json:"last_error,omitempty"`
}

// Tail replicates one primary into one Applier. Run drives it; the
// accessors are safe from any goroutine. A Tail keeps its cursor across
// Run calls, so cancelling Run and calling it again resumes the stream
// with no gap and no double-apply — the follower restart path.
type Tail struct {
	primary string
	applier Applier
	hc      *http.Client
	cfg     TailConfig

	mu      sync.Mutex
	cur     Cursor
	haveCur bool
	lastErr error

	primaryHour atomic.Int64
	records     atomic.Uint64
	bootstraps  atomic.Uint64
	reconnects  atomic.Uint64
}

// maxSnapshotBody bounds a bootstrap transfer.
const maxSnapshotBody = 1 << 30

// NewTail builds a replication session against the primary's base URL.
// A nil httpClient uses a dedicated client with no global timeout (the
// stream is long-lived by design).
func NewTail(primary string, applier Applier, httpClient *http.Client, cfg TailConfig) *Tail {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	if cfg.ReconnectDelay <= 0 {
		cfg.ReconnectDelay = 200 * time.Millisecond
	}
	if cfg.SnapshotTimeout <= 0 {
		cfg.SnapshotTimeout = 30 * time.Second
	}
	t := &Tail{primary: primary, applier: applier, hc: httpClient, cfg: cfg}
	t.primaryHour.Store(-1)
	return t
}

// Run replicates until ctx is cancelled, reconnecting and
// re-bootstrapping as needed. It never returns a non-ctx error — every
// failure is recorded in Stats and retried.
func (t *Tail) Run(ctx context.Context) {
	for ctx.Err() == nil {
		if _, ok := t.Cursor(); !ok {
			if err := t.bootstrap(ctx); err != nil {
				t.setErr(err)
				t.sleep(ctx)
				continue
			}
		}
		err := t.stream(ctx)
		if ctx.Err() != nil {
			return
		}
		t.setErr(err)
		t.reconnects.Add(1)
		t.sleep(ctx)
	}
}

func (t *Tail) sleep(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(t.cfg.ReconnectDelay):
	}
}

// Cursor returns the current replication cursor and whether one exists
// (false before the first bootstrap and after an invalidation).
func (t *Tail) Cursor() (Cursor, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur, t.haveCur
}

func (t *Tail) setCursor(c Cursor) {
	t.mu.Lock()
	t.cur, t.haveCur = c, true
	t.mu.Unlock()
}

func (t *Tail) invalidateCursor() {
	t.mu.Lock()
	t.haveCur = false
	t.mu.Unlock()
}

func (t *Tail) setErr(err error) {
	t.mu.Lock()
	t.lastErr = err
	t.mu.Unlock()
}

// PrimaryHour returns the primary's fleet hour from the latest
// heartbeat, or -1 before any heartbeat arrived.
func (t *Tail) PrimaryHour() int { return int(t.primaryHour.Load()) }

// Stats returns a monitoring snapshot.
func (t *Tail) Stats() TailStats {
	s := TailStats{
		RecordsApplied: t.records.Load(),
		Bootstraps:     t.bootstraps.Load(),
		Reconnects:     t.reconnects.Load(),
	}
	t.mu.Lock()
	if t.lastErr != nil {
		s.LastError = t.lastErr.Error()
	}
	t.mu.Unlock()
	return s
}

// bootstrap fetches and restores the primary's newest snapshot, then
// points the cursor at the start of that snapshot's generation.
func (t *Tail) bootstrap(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, t.cfg.SnapshotTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.primary+"/v1/repl/snapshot", nil)
	if err != nil {
		return fmt.Errorf("repl: bootstrap: %w", err)
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return fmt.Errorf("repl: bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, httpx.MaxBody))
		return httpx.DecodeResponse(resp.StatusCode, resp.Status, body, "repl: bootstrap", nil)
	}
	gen, err := strconv.ParseUint(resp.Header.Get("X-Repl-Generation"), 10, 64)
	if err != nil || gen == 0 {
		return fmt.Errorf("repl: bootstrap: bad X-Repl-Generation %q", resp.Header.Get("X-Repl-Generation"))
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBody))
	if err != nil {
		return fmt.Errorf("repl: bootstrap: reading snapshot: %w", err)
	}
	if err := t.applier.RestoreReplSnapshot(payload); err != nil {
		return fmt.Errorf("repl: bootstrap: %w", err)
	}
	t.setCursor(Cursor{Generation: gen, Offset: int64(wal.HeaderLen)})
	t.bootstraps.Add(1)
	t.setErr(nil)
	return nil
}

// stream opens one streaming connection at the cursor and applies
// frames until it drops. A nil return means "reconnect from the
// cursor" (or re-bootstrap, if the cursor was invalidated).
func (t *Tail) stream(ctx context.Context) error {
	cur, ok := t.Cursor()
	if !ok {
		return nil
	}
	url := fmt.Sprintf("%s/v1/repl/stream?generation=%d&offset=%d", t.primary, cur.Generation, cur.Offset)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("repl: stream: %w", err)
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return fmt.Errorf("repl: stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		// The cursor predates the oldest retained generation: the only
		// way forward is a fresh snapshot.
		io.Copy(io.Discard, io.LimitReader(resp.Body, httpx.MaxBody))
		t.invalidateCursor()
		return fmt.Errorf("repl: stream: cursor %s no longer retained, re-bootstrapping", cur)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, httpx.MaxBody))
		return httpx.DecodeResponse(resp.StatusCode, resp.Status, body, "repl: stream", nil)
	}

	fr := NewFrameReader(resp.Body)
	first := true
	for {
		f, err := fr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) && !first {
				return nil // clean close; resume from cursor
			}
			return fmt.Errorf("repl: stream: %w", err)
		}
		if first != (f.Type == frameHello) {
			return fmt.Errorf("%w: stream must open with exactly one hello", ErrBadFrame)
		}
		switch f.Type {
		case frameHello:
			if f.Cursor != cur {
				return fmt.Errorf("repl: stream opened at %s, requested %s", f.Cursor, cur)
			}
		case frameRecord:
			if err := t.applier.ApplyReplRecord(f.Record); err != nil {
				// The follower's state can no longer be trusted to be a
				// journal prefix; replace it wholesale.
				t.invalidateCursor()
				return fmt.Errorf("repl: apply: %w", err)
			}
			cur.Offset = f.Cursor.Offset
			t.setCursor(cur)
			t.records.Add(1)
		case frameRotate:
			cur = f.Cursor
			t.setCursor(cur)
		case frameHeartbeat:
			t.primaryHour.Store(int64(f.Hour))
			t.setErr(nil)
		case frameEnd:
			t.invalidateCursor()
			return fmt.Errorf("repl: stream ended by source: %s", f.Reason)
		}
		first = false
	}
}
