package repl

// Golden-file pin of the replication wire format. A primary and a
// follower may run different builds during a rolling upgrade, so the
// frame encoding is versioned and must never drift silently. If this
// test fails because the format deliberately changed, bump
// streamVersion, teach the decoder the old version, and regenerate:
//
//	go test ./internal/repl -run TestStreamGolden -update

import (
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestStreamGolden(t *testing.T) {
	got := hex.EncodeToString(sampleStream())

	golden := filepath.Join("testdata", "stream_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got+"\n" != string(want) {
		t.Fatalf("stream encoding drifted from %s:\ngot:  %s\nwant: %s\n(frame framing, CRC, or a payload layout changed — bump streamVersion and regenerate with -update)",
			golden, got, want)
	}
}
