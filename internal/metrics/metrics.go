// Package metrics is a dependency-free Prometheus instrumentation
// layer: counters, gauges, and fixed-bucket histograms, optionally
// grouped into labeled families, registered against a Registry that
// renders the Prometheus text exposition format (version 0.0.4) for a
// GET /metrics endpoint.
//
// The package is built for hot paths. Every instrument is a handful of
// machine words updated with atomics — no locks, no maps, and no
// allocation on the observation path. Labeled families pay one
// mutex-guarded map lookup at With() time only; callers resolve their
// child once and keep the pointer, so the per-event cost is identical
// to the unlabeled case. Histogram buckets are fixed at construction
// and stored as a flat slice of atomic counters, so Observe is a short
// linear scan plus two atomic adds.
//
// Everything is nil-safe: methods on a nil Registry, Counter, Gauge, or
// Histogram are no-ops, and constructors on a nil Registry return nil.
// A server built without metrics passes a nil Registry through the same
// instrumentation code and pays only a branch per event.
//
// CounterFunc and GaugeFunc register callback-backed series evaluated
// at render time. internal/schedd uses them for every fleet-derived
// quantity (queue depth, submitted/missed counts, emissions), which
// guarantees GET /metrics and GET /v1/stats can never disagree: both
// read the same O(shards) incremental counters.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta with a CAS loop (safe for concurrent adders).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are chosen
// at construction and never reallocated, so Observe is lock-free: a
// linear scan over the (short, cache-resident) upper-bound slice, one
// atomic bucket increment, and one CAS-loop float add for the sum.
type Histogram struct {
	upper  []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    Gauge
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// DefLatencyBuckets is the default histogram layout for latencies in
// seconds: 500µs to 10s, the band an HTTP submit or a WAL fsync lives
// in. The 0.05 bound exists so the "fsync p99 > 50ms" alert has an
// exact bucket edge to sit on.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets is the default layout for small-integer sizes (batch
// sizes, record counts): powers of two from 1 to 1024.
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// metric kinds for rendering.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// child is one labeled series inside a family.
type child struct {
	labels string // rendered {k="v",...} including braces; "" if unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is one metric name: HELP/TYPE plus its series.
type family struct {
	name, help, kind string
	labelNames       []string
	buckets          []float64

	mu       sync.Mutex
	order    []string
	children map[string]*child
}

// Registry holds registered families and renders them. Registration
// (New*, With) takes a lock; observation never does.
type Registry struct {
	mu       sync.Mutex
	order    []*family
	byName   map[string]*family
	renderMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register creates (or panics on conflicting re-registration of) a
// family. Registering the same name with the same shape returns the
// existing family, so idempotent wiring is safe.
func (r *Registry) register(name, help, kind string, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || strings.Join(f.labelNames, ",") != strings.Join(labelNames, ",") {
			panic(fmt.Sprintf("metrics: %s re-registered as %s%v, was %s%v",
				name, kind, labelNames, f.kind, f.labelNames))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: labelNames, buckets: buckets,
		children: make(map[string]*child),
	}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

func (f *family) get(labelValues []string, mk func() *child) *child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := labelKey(f.labelNames, labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch := mk()
	ch.labels = key
	f.children[key] = ch
	f.order = append(f.order, key)
	return ch
}

// labelKey renders {k="v",...} with escaped values; "" for no labels.
func labelKey(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// NewCounter registers (or returns) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindCounter, nil, nil)
	return f.get(nil, func() *child { return &child{c: &Counter{}} }).c
}

// NewGauge registers (or returns) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindGauge, nil, nil)
	return f.get(nil, func() *child { return &child{g: &Gauge{}} }).g
}

// NewHistogram registers (or returns) an unlabeled histogram with the
// given ascending upper bounds (nil = DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := r.register(name, help, kindHistogram, nil, buckets)
	return f.get(nil, func() *child { return &child{h: newHistogram(buckets)} }).h
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// NewCounterFunc registers a counter whose value is computed by fn at
// render time — for monotone quantities another subsystem already
// counts (the schedd fleet's submitted/completed/missed totals).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, kindCounter, nil, nil)
	f.get(nil, func() *child { return &child{fn: fn} })
}

// NewGaugeFunc registers a gauge computed by fn at render time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, kindGauge, nil, nil)
	f.get(nil, func() *child { return &child{fn: fn} })
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r.register(name, help, kindCounter, labelNames, nil)}
}

// With resolves the child for the given label values, creating it on
// first use. Resolve once and keep the pointer on hot paths.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues, func() *child { return &child{c: &Counter{}} }).c
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r.register(name, help, kindGauge, labelNames, nil)}
}

// With resolves the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues, func() *child { return &child{g: &Gauge{}} }).g
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family (nil buckets =
// DefLatencyBuckets).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labelNames, buckets)}
}

// With resolves the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	return f.get(labelValues, func() *child { return &child{h: newHistogram(f.buckets)} }).h
}

// Families returns the registered family names in registration order.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.order))
	for i, f := range r.order {
		names[i] = f.name
	}
	return names
}

// WriteTo renders the registry in the Prometheus text exposition
// format: families in registration order, series within a family in
// sorted label order (deterministic output for golden tests and
// scrape-assertion diffs).
func (r *Registry) WriteTo(w writer) error {
	if r == nil {
		return nil
	}
	r.renderMu.Lock()
	defer r.renderMu.Unlock()
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	var b []byte
	for _, f := range fams {
		b = f.render(b[:0])
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// writer is the io.Writer subset WriteTo needs (avoids importing io
// into every caller's mental model; any io.Writer satisfies it).
type writer interface{ Write(p []byte) (int, error) }

func (f *family) render(b []byte) []byte {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })

	b = append(b, "# HELP "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, escapeHelp(f.help)...)
	b = append(b, "\n# TYPE "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, f.kind...)
	b = append(b, '\n')
	for _, ch := range children {
		switch {
		case ch.h != nil:
			b = ch.renderHistogram(b, f)
		case ch.c != nil:
			b = appendSeries(b, f.name, ch.labels, float64(ch.c.Value()))
		case ch.g != nil:
			b = appendSeries(b, f.name, ch.labels, ch.g.Value())
		case ch.fn != nil:
			b = appendSeries(b, f.name, ch.labels, ch.fn())
		}
	}
	return b
}

// renderHistogram emits cumulative _bucket series plus _sum and _count.
func (ch *child) renderHistogram(b []byte, f *family) []byte {
	h := ch.h
	var cum uint64
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		b = appendBucket(b, f.name, ch.labels, formatFloat(upper), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	b = appendBucket(b, f.name, ch.labels, "+Inf", cum)
	b = appendSeries(b, f.name+"_sum", ch.labels, h.Sum())
	b = appendSeries(b, f.name+"_count", ch.labels, float64(cum))
	return b
}

func appendBucket(b []byte, name, labels, le string, v uint64) []byte {
	b = append(b, name...)
	b = append(b, "_bucket"...)
	if labels == "" {
		b = append(b, `{le="`...)
	} else {
		b = append(b, labels[:len(labels)-1]...) // drop closing brace
		b = append(b, `,le="`...)
	}
	b = append(b, le...)
	b = append(b, `"} `...)
	b = strconv.AppendUint(b, v, 10)
	return append(b, '\n')
}

func appendSeries(b []byte, name, labels string, v float64) []byte {
	b = append(b, name...)
	b = append(b, labels...)
	b = append(b, ' ')
	b = append(b, formatFloat(v)...)
	return append(b, '\n')
}

// formatFloat renders a sample value: integers without an exponent or
// decimal point, everything else in Go's shortest 'g' form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the GET /metrics endpoint for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}
