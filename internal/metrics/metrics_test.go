package metrics

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildSampleRegistry assembles one of every instrument, including the
// escaping-hostile label values the renderer must quote.
func buildSampleRegistry() *Registry {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs admitted.")
	c.Add(41)
	c.Inc()
	g := r.NewGauge("queue_depth", "Queued jobs.")
	g.Set(7.5)
	g.Add(-0.5)
	r.NewGaugeFunc("fleet_hour", "Current replay hour.", func() float64 { return 123 })
	r.NewCounterFunc("emissions_grams_total", "Cumulative emissions.", func() float64 { return 1234.25 })

	cv := r.NewCounterVec("http_requests_total", "Requests by route and code.", "route", "code")
	cv.With("GET /v1/stats", "200").Add(3)
	cv.With("POST /v1/jobs", "503").Inc()
	cv.With(`weird"route`+"\n"+`\end`, "200").Inc()

	gv := r.NewGaugeVec("carbon_saved_grams", "Carbon saved vs origin baseline.", "policy")
	gv.With("carbon-gate").Set(987.5)

	h := r.NewHistogram("submit_seconds", "Submit latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	hv := r.NewHistogramVec("fsync_seconds", "Fsync latency.", []float64{0.001, 0.05}, "mode")
	hv.With("always").Observe(0.0004)
	hv.With("always").Observe(0.2)
	return r
}

// TestExpositionGolden pins the full rendered format: HELP/TYPE lines,
// label escaping, histogram cumulativity, sorted series order.
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSampleRegistry().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("exposition format drifted from %s:\ngot:\n%s\nwant:\n%s\n(regenerate with -update if the change is deliberate)",
			golden, got, want)
	}
}

// TestHistogramCumulativity checks the rendered _bucket series are
// cumulative and +Inf equals _count.
func TestHistogramCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "x", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`lat_bucket{le="1"}`:    2, // 0.5 and the on-boundary 1
		`lat_bucket{le="2"}`:    3,
		`lat_bucket{le="4"}`:    4,
		`lat_bucket{le="+Inf"}`: 5,
		`lat_count`:             5,
		`lat_sum`:               106,
	}
	for series, v := range want {
		got, ok := s.Value(series)
		if !ok {
			t.Fatalf("series %s missing from exposition", series)
		}
		if got != v {
			t.Errorf("%s = %v, want %v", series, got, v)
		}
	}
}

// TestLabelEscaping round-trips hostile label values through render
// and parse.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("c", "x", "k")
	hostile := "a\\b\"c\nd"
	cv.With(hostile).Add(9)
	var buf bytes.Buffer
	if err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rendered := buf.String()
	if !strings.Contains(rendered, `c{k="a\\b\"c\nd"} 9`) {
		t.Fatalf("hostile label not escaped: %q", rendered)
	}
	s, err := ParseText(strings.NewReader(rendered))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sum("c"); got != 9 {
		t.Fatalf("Sum(c) = %v, want 9", got)
	}
}

// TestNilSafety: every operation on nil receivers is a no-op and every
// constructor on a nil registry returns nil, so un-instrumented
// servers run the same code.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.NewCounter("a", "").Inc()
	r.NewGauge("b", "").Set(1)
	r.NewHistogram("c", "", nil).Observe(1)
	r.NewCounterVec("d", "", "l").With("v").Add(2)
	r.NewGaugeVec("e", "", "l").With("v").Add(2)
	r.NewHistogramVec("f", "", nil, "l").With("v").Observe(2)
	r.NewCounterFunc("g", "", func() float64 { return 1 })
	r.NewGaugeFunc("h", "", func() float64 { return 1 })
	if err := r.WriteTo(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.Families() != nil {
		t.Fatal("nil registry reported families")
	}
	var c *Counter
	c.Inc()
	var g *Gauge
	g.Add(1)
	var h *Histogram
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported nonzero values")
	}
}

// TestIdempotentRegistration: re-registering the same family returns
// the same underlying series (so layered wiring can't double-count),
// while a conflicting shape panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "first")
	b := r.NewCounter("x_total", "second")
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("re-registration did not alias: %d", a.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.NewGauge("x_total", "conflict")
}

// TestConcurrency hammers every instrument type from many goroutines
// while a renderer loops, under -race. Counts must be exact.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "x")
	g := r.NewGauge("g", "x")
	h := r.NewHistogram("h", "x", []float64{1, 10, 100})
	cv := r.NewCounterVec("cv_total", "x", "w")
	hv := r.NewHistogramVec("hv", "x", []float64{5}, "w")

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent renders must never race observers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := r.WriteTo(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var workersWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			mine := cv.With("w" + string(rune('0'+w)))
			mh := hv.With("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				mine.Inc()
				mh.Observe(float64(i % 10))
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	wg.Wait()

	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter lost updates: %d != %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge lost adds: %v != %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram lost observations: %d != %d", h.Count(), total)
	}
	var buf bytes.Buffer
	if err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sum("cv_total"); got != total {
		t.Errorf("sum over counter vec = %v, want %d", got, total)
	}
	if got, _ := s.Value(`hv_count{w="shared"}`); got != total {
		t.Errorf("labeled histogram count = %v, want %d", got, total)
	}
}

// TestFormatFloat pins the sample formatting: integral values render
// without exponents (scrape assertions grep for them), the rest in
// shortest-g.
func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1000000: "1000000",
		0.05:    "0.05",
		1234.25: "1234.25",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatFloat(+Inf) = %q", got)
	}
}
