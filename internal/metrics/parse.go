package metrics

// A minimal reader for the text exposition format, for the consumers
// this repo ships: cmd/loadgen's -scrape assertions and the tests that
// pin /metrics against /v1/stats. It reads what Registry.WriteTo (or
// any conforming exporter) writes; it is not a general openmetrics
// parser — exemplars, timestamps, and escaped metric names are out of
// scope.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Scrape is one parsed exposition: every sample keyed by its full
// series name including labels, exactly as rendered (e.g.
// `http_requests_total{code="200",route="GET /v1/stats"}`).
type Scrape struct {
	Samples map[string]float64
}

// Value returns the sample for an exact series key.
func (s *Scrape) Value(series string) (float64, bool) {
	v, ok := s.Samples[series]
	return v, ok
}

// Sum adds every sample whose series name (the part before any label
// braces) equals name — the scrape-side equivalent of sum(name).
func (s *Scrape) Sum(name string) float64 {
	var total float64
	for k, v := range s.Samples {
		base := k
		if i := strings.IndexByte(k, '{'); i >= 0 {
			base = k[:i]
		}
		if base == name {
			total += v
		}
	}
	return total
}

// ParseText parses a text-format exposition. Comment and blank lines
// are skipped; each remaining line must be `series value [timestamp]`.
func ParseText(r io.Reader) (*Scrape, error) {
	s := &Scrape{Samples: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		series, rest, err := splitSeries(text)
		if err != nil {
			return nil, fmt.Errorf("metrics: parse line %d: %w", line, err)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("metrics: parse line %d: want `series value [ts]`, got %q", line, text)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: parse line %d: bad value %q", line, fields[0])
		}
		s.Samples[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: parse: %w", err)
	}
	return s, nil
}

// splitSeries splits a sample line into the series (name plus label
// block, which may contain spaces inside quoted values) and the rest.
func splitSeries(text string) (series, rest string, err error) {
	brace := strings.IndexByte(text, '{')
	sp := strings.IndexByte(text, ' ')
	if brace < 0 || (sp >= 0 && sp < brace) {
		if sp < 0 {
			return "", "", fmt.Errorf("no value in %q", text)
		}
		return text[:sp], text[sp+1:], nil
	}
	// Scan past the label block, honoring escapes inside quotes.
	inQuote := false
	for i := brace + 1; i < len(text); i++ {
		switch text[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				if i+1 >= len(text) || text[i+1] != ' ' {
					return "", "", fmt.Errorf("no value after labels in %q", text)
				}
				return text[:i+1], text[i+2:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unterminated label block in %q", text)
}
