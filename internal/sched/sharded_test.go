package sched

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"carbonshift/internal/trace"
)

// mkWideSet builds an nRegions-region world with staggered diurnal
// cycles and distinct baselines, so spatial policies genuinely migrate
// across shard boundaries.
func mkWideSet(t testing.TB, hours, nRegions int) (*trace.Set, []Cluster, []string) {
	t.Helper()
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var traces []*trace.Trace
	var cl []Cluster
	var origins []string
	for r := 0; r < nRegions; r++ {
		ci := make([]float64, hours)
		base := 50 + 90*float64(r)
		for h := 0; h < hours; h++ {
			ci[h] = base + 200*(1+math.Sin(2*math.Pi*float64(h+3*r)/24))
		}
		code := fmt.Sprintf("R%02d", r)
		traces = append(traces, trace.New(code, start, ci))
		cl = append(cl, Cluster{Region: code, Slots: 12})
		origins = append(origins, code)
	}
	set, err := trace.NewSet(traces)
	if err != nil {
		t.Fatal(err)
	}
	return set, cl, origins
}

func driveFleet(t testing.TB, f interface {
	Done() bool
	Step() error
}) {
	t.Helper()
	for !f.Done() {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedFleetEquivalence is the core determinism contract of the
// sharded fleet: for every policy and for shard counts spanning
// fewer-than, equal-to, and more-than the region count, placements
// (every executed job-hour, in order) and the aggregate Result must be
// byte-identical to the serial Fleet.
func TestShardedFleetEquivalence(t *testing.T) {
	const horizon = 24 * 12
	set, cl, origins := mkWideSet(t, horizon, 8)
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs:              300,
		ArrivalSpan:       24 * 9,
		SlackHours:        30,
		InterruptibleFrac: 0.6,
		MigratableFrac:    0.5,
		Origins:           origins,
		Seed:              11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 36 {
			jobs[i].Length = 36
		}
	}

	type placeRec struct {
		hour, job int
		region    string
	}
	for _, policy := range allPolicies() {
		var refLog []placeRec
		ref, err := NewFleet(set, cl, policy, horizon)
		if err != nil {
			t.Fatal(err)
		}
		ref.OnPlace = func(hour, jobID int, region string) {
			refLog = append(refLog, placeRec{hour, jobID, region})
		}
		if err := ref.Submit(jobs...); err != nil {
			t.Fatal(err)
		}
		driveFleet(t, ref)
		want := ref.Snapshot()

		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/shards=%d", policy.Name(), shards), func(t *testing.T) {
				var log []placeRec
				sf, err := NewShardedFleet(set, cl, policy, horizon, shards)
				if err != nil {
					t.Fatal(err)
				}
				sf.OnPlace = func(hour, jobID int, region string) {
					log = append(log, placeRec{hour, jobID, region})
				}
				if err := sf.Submit(jobs...); err != nil {
					t.Fatal(err)
				}
				driveFleet(t, sf)
				if !reflect.DeepEqual(log, refLog) {
					t.Fatalf("placement log differs: %d records vs %d serial", len(log), len(refLog))
				}
				if got := sf.Snapshot(); !reflect.DeepEqual(got, want) {
					t.Fatalf("sharded result differs from serial fleet:\ngot:  %+v\nwant: %+v",
						got.TotalEmissions, want.TotalEmissions)
				}
			})
		}
	}
}

// TestShardedFleetOnlineSubmission mirrors TestFleetOnlineSubmission:
// jobs submitted exactly at their arrival hour (the schedd path) must
// still match the up-front batch run of the serial Fleet.
func TestShardedFleetOnlineSubmission(t *testing.T) {
	const horizon = 24 * 12
	set, cl, origins := mkWideSet(t, horizon, 6)
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs: 150, ArrivalSpan: 24 * 9, SlackHours: 24,
		InterruptibleFrac: 0.5, MigratableFrac: 0.7,
		Origins: origins, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(set, cl, jobs, SpatioTemporal{Percentile: 40, Window: 48}, horizon)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewShardedFleet(set, cl, SpatioTemporal{Percentile: 40, Window: 48}, horizon, 4)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for !sf.Done() {
		for next < len(jobs) && jobs[next].Arrival == sf.Hour() {
			if err := sf.Submit(jobs[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := sf.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if next != len(jobs) {
		t.Fatalf("only %d/%d jobs submitted", next, len(jobs))
	}
	if got := sf.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("online sharded snapshot differs from serial Run")
	}
}

// TestShardedFleetLookupAndStatsParity steps both fleets in lockstep
// and checks Lookup views and the counting fields of Stats agree at
// every hour — the incremental counters must never drift from the
// serial full-store walk.
func TestShardedFleetLookupAndStatsParity(t *testing.T) {
	const horizon = 24 * 10
	set, cl, origins := mkWideSet(t, horizon, 5)
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs: 120, ArrivalSpan: 24 * 8, SlackHours: 6,
		InterruptibleFrac: 0.5, MigratableFrac: 0.5,
		Origins: origins, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	policy := CarbonGate{Percentile: 30, Window: 48}
	ref, err := NewFleet(set, cl, policy, horizon)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewShardedFleet(set, cl, policy, horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Submit(jobs...); err != nil {
		t.Fatal(err)
	}
	if err := sf.Submit(jobs...); err != nil {
		t.Fatal(err)
	}
	for !ref.Done() {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
		if err := sf.Step(); err != nil {
			t.Fatal(err)
		}
		a, b := ref.Stats(), sf.Stats()
		// TotalEmissions is accumulated in a different order (documented);
		// compare it with tolerance and everything else exactly.
		if math.Abs(a.TotalEmissions-b.TotalEmissions) > 1e-6*(1+math.Abs(a.TotalEmissions)) {
			t.Fatalf("hour %d: emissions %v vs %v", a.Hour, a.TotalEmissions, b.TotalEmissions)
		}
		a.TotalEmissions, b.TotalEmissions = 0, 0
		if a != b {
			t.Fatalf("hour %d: stats diverge:\nserial:  %+v\nsharded: %+v", a.Hour, a, b)
		}
		for _, j := range jobs {
			ja, oka := ref.Lookup(j.ID)
			jb, okb := sf.Lookup(j.ID)
			if oka != okb || ja != jb {
				t.Fatalf("hour %d: lookup(%d) diverges:\nserial:  %+v\nsharded: %+v",
					a.Hour, j.ID, ja, jb)
			}
		}
	}
}

func TestShardedFleetSubmitValidation(t *testing.T) {
	set, cl, _ := mkWideSet(t, 50, 2)
	f, err := NewShardedFleet(set, cl, FIFO{}, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(Job{ID: 1, Origin: "R00", Arrival: 0, Length: 0}); err == nil {
		t.Error("zero-length job accepted")
	}
	if err := f.Submit(Job{ID: 1, Origin: "NOPE", Arrival: 0, Length: 1}); err == nil {
		t.Error("orphan origin accepted")
	}
	err = f.Submit(
		Job{ID: 1, Origin: "R00", Arrival: 0, Length: 1},
		Job{ID: 1, Origin: "R01", Arrival: 0, Length: 1},
	)
	if err == nil {
		t.Error("intra-batch duplicate accepted")
	}
	if f.Jobs() != 0 {
		t.Fatalf("failed batch admitted %d jobs", f.Jobs())
	}
	if err := f.Submit(Job{ID: 1, Origin: "R00", Arrival: 0, Length: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(Job{ID: 1, Origin: "R00", Arrival: 5, Length: 1}); err == nil {
		t.Error("cross-batch duplicate accepted")
	}
	if err := f.Step(); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(Job{ID: 2, Origin: "R00", Arrival: 0, Length: 1}); err == nil ||
		!strings.Contains(err.Error(), "before current hour") {
		t.Errorf("past-arrival submission: err = %v", err)
	}
}

func TestShardedFleetSubmitNow(t *testing.T) {
	set, cl, _ := mkWideSet(t, 48, 2)
	f, err := NewShardedFleet(set, cl, FIFO{}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Step(); err != nil {
		t.Fatal(err)
	}
	// The job asks for arrival 0, but SubmitNow stamps the current hour.
	arrival, err := f.SubmitNow(Job{ID: 7, Origin: "R01", Arrival: 0, Length: 1})
	if err != nil {
		t.Fatal(err)
	}
	if arrival != 1 {
		t.Fatalf("arrival = %d, want 1", arrival)
	}
	info, ok := f.Lookup(7)
	if !ok || info.Arrival != 1 {
		t.Fatalf("lookup = %+v, %v", info, ok)
	}
	driveFleet(t, f)
	if _, err := f.SubmitNow(Job{ID: 8, Origin: "R00", Length: 1}); err != ErrHorizonExhausted {
		t.Fatalf("past-horizon SubmitNow: err = %v", err)
	}
}

// TestShardedFleetConcurrentSubmit hammers Submit/Lookup/Stats from
// many goroutines between steps; run under -race this is the data-race
// certificate for the shard locking, and the final snapshot proves no
// job was lost or double-admitted.
func TestShardedFleetConcurrentSubmit(t *testing.T) {
	const horizon = 24 * 10
	set, cl, origins := mkWideSet(t, horizon, 4)
	f, err := NewShardedFleet(set, cl, GreenestFirst{}, horizon, 4)
	if err != nil {
		t.Fatal(err)
	}
	const (
		submitters = 8
		perWorker  = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				job := Job{
					ID: id, Origin: origins[id%len(origins)], Length: 1 + id%4,
					Slack: 48, Interruptible: true, Migratable: id%2 == 0,
				}
				if _, err := f.SubmitNow(job); err != nil {
					errs <- err
					return
				}
				if _, ok := f.Lookup(id); !ok {
					errs <- fmt.Errorf("job %d not visible after submit", id)
					return
				}
				_ = f.Stats()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	driveFleet(t, f)
	res := f.Snapshot()
	if len(res.Outcomes) != submitters*perWorker {
		t.Fatalf("%d outcomes, want %d", len(res.Outcomes), submitters*perWorker)
	}
	seen := make(map[int]bool)
	for _, o := range res.Outcomes {
		if seen[o.ID] {
			t.Fatalf("job %d appears twice", o.ID)
		}
		seen[o.ID] = true
	}
	if res.Completed != submitters*perWorker {
		t.Fatalf("completed %d/%d", res.Completed, submitters*perWorker)
	}
	st := f.Stats()
	if st.Completed != res.Completed || st.Submitted != len(res.Outcomes) || st.Unresolved != 0 {
		t.Fatalf("stats inconsistent with snapshot: %+v", st)
	}
}
