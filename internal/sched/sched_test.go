package sched

import (
	"math"
	"testing"
	"time"

	"carbonshift/internal/trace"
	"carbonshift/internal/workload"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// mkSet builds a two-region world: CLEAN is flat and green, DIRTY has a
// strong diurnal cycle (cheap hours 0-11, expensive 12-23 of each day).
func mkSet(t *testing.T, hours int) *trace.Set {
	t.Helper()
	clean := make([]float64, hours)
	dirty := make([]float64, hours)
	for h := 0; h < hours; h++ {
		clean[h] = 20
		if h%24 < 12 {
			dirty[h] = 200
		} else {
			dirty[h] = 800
		}
	}
	s, err := trace.NewSet([]*trace.Trace{
		trace.New("CLEAN", t0, clean),
		trace.New("DIRTY", t0, dirty),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func clusters(slots int) []Cluster {
	return []Cluster{{Region: "CLEAN", Slots: slots}, {Region: "DIRTY", Slots: slots}}
}

func TestFIFORunsEverythingImmediately(t *testing.T) {
	set := mkSet(t, 100)
	jobs := []Job{
		{ID: 1, Origin: "DIRTY", Arrival: 0, Length: 4, Slack: 48},
		{ID: 2, Origin: "CLEAN", Arrival: 2, Length: 3, Slack: 48},
	}
	res, err := Run(set, clusters(4), jobs, FIFO{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Missed != 0 {
		t.Fatalf("completed %d missed %d", res.Completed, res.Missed)
	}
	if res.Outcomes[0].CompletedAt != 4 {
		t.Fatalf("job 1 finished at %d, want 4 (no deferral under FIFO)", res.Outcomes[0].CompletedAt)
	}
	// Job 1 runs hours 0-3 in DIRTY at 200 each.
	if math.Abs(res.Outcomes[0].Emissions-800) > 1e-9 {
		t.Fatalf("job 1 emissions = %v", res.Outcomes[0].Emissions)
	}
	if res.MeanWaitHours != 0 {
		t.Fatalf("mean wait = %v", res.MeanWaitHours)
	}
}

func TestCarbonGateDefersDirtyHours(t *testing.T) {
	set := mkSet(t, 24*20)
	// Job arrives at hour 36 (noon, dirty period) with plenty of slack.
	jobs := []Job{{ID: 1, Origin: "DIRTY", Arrival: 36, Length: 6, Slack: 72, Interruptible: true}}
	gate := CarbonGate{Percentile: 40, Window: 24}
	res, err := Run(set, clusters(1), jobs, gate, 24*20)
	if err != nil {
		t.Fatal(err)
	}
	fifoRes, err := Run(set, clusters(1), jobs, FIFO{}, 24*20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Missed != 0 {
		t.Fatalf("gate: completed %d missed %d", res.Completed, res.Missed)
	}
	if res.TotalEmissions >= fifoRes.TotalEmissions {
		t.Fatalf("gate emissions %v not below FIFO %v", res.TotalEmissions, fifoRes.TotalEmissions)
	}
	// The gated job should have run entirely in cheap hours: 6 * 200.
	if math.Abs(res.TotalEmissions-1200) > 1e-9 {
		t.Fatalf("gate emissions = %v, want 1200", res.TotalEmissions)
	}
}

func TestGreenestFirstMigrates(t *testing.T) {
	set := mkSet(t, 100)
	jobs := []Job{{ID: 1, Origin: "DIRTY", Arrival: 0, Length: 5, Slack: 24, Migratable: true}}
	res, err := Run(set, clusters(2), jobs, GreenestFirst{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Runs immediately in CLEAN at 20/h.
	if math.Abs(res.TotalEmissions-100) > 1e-9 {
		t.Fatalf("emissions = %v, want 100", res.TotalEmissions)
	}
	if res.Outcomes[0].Migrations != 0 {
		// First placement is not a migration.
		t.Fatalf("migrations = %d", res.Outcomes[0].Migrations)
	}
}

func TestPinnedJobStaysHome(t *testing.T) {
	set := mkSet(t, 100)
	jobs := []Job{{ID: 1, Origin: "DIRTY", Arrival: 0, Length: 2, Slack: 0, Migratable: false}}
	res, err := Run(set, clusters(1), jobs, GreenestFirst{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Zero slack forces an immediate start in DIRTY: 2 * 200.
	if math.Abs(res.TotalEmissions-400) > 1e-9 {
		t.Fatalf("emissions = %v, want 400", res.TotalEmissions)
	}
}

func TestDeadlineForcing(t *testing.T) {
	set := mkSet(t, 24*10)
	// A lazy policy that never schedules anything.
	jobs := []Job{{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 3, Slack: 5, Interruptible: true}}
	res, err := Run(set, clusters(1), jobs, lazyPolicy{}, 24*10)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	if !out.Completed || out.MissedDeadline {
		t.Fatalf("deadline forcing failed: %+v", out)
	}
	// Forced at the last possible moment: hours 5,6,7 -> done at 8.
	if out.CompletedAt != 8 {
		t.Fatalf("completed at %d, want 8", out.CompletedAt)
	}
	if out.WaitHours != 5 {
		t.Fatalf("wait hours = %d, want 5", out.WaitHours)
	}
}

type lazyPolicy struct{}

func (lazyPolicy) Name() string           { return "lazy" }
func (lazyPolicy) Plan(*Tick) []Placement { return nil }

func TestNonInterruptibleRunsToCompletion(t *testing.T) {
	set := mkSet(t, 24*10)
	// Starts at a cheap hour but must keep running into the expensive
	// half of the day.
	jobs := []Job{{ID: 1, Origin: "DIRTY", Arrival: 6, Length: 10, Slack: 0}}
	res, err := Run(set, clusters(1), jobs, FIFO{}, 24*10)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	if !out.Completed || out.CompletedAt != 16 {
		t.Fatalf("outcome = %+v", out)
	}
	// Hours 6-11 at 200 (6h) + hours 12-15 at 800 (4h) = 4400.
	if math.Abs(out.Emissions-4400) > 1e-9 {
		t.Fatalf("emissions = %v, want 4400", out.Emissions)
	}
}

func TestContentionCausesMisses(t *testing.T) {
	set := mkSet(t, 50)
	// Two pinned, simultaneous, zero-slack jobs on a one-slot cluster:
	// one must miss.
	jobs := []Job{
		{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 5, Slack: 0},
		{ID: 2, Origin: "CLEAN", Arrival: 0, Length: 5, Slack: 0},
	}
	res, err := Run(set, []Cluster{{Region: "CLEAN", Slots: 1}, {Region: "DIRTY", Slots: 1}}, jobs, FIFO{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 1 {
		t.Fatalf("missed = %d, want 1 (capacity contention)", res.Missed)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d, want 2 (late but finished)", res.Completed)
	}
}

func TestRunValidation(t *testing.T) {
	set := mkSet(t, 50)
	good := []Job{{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 1, Slack: 0}}
	if _, err := Run(set, clusters(1), good, nil, 50); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := Run(set, clusters(1), good, FIFO{}, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(set, clusters(1), good, FIFO{}, 51); err == nil {
		t.Error("horizon past trace accepted")
	}
	if _, err := Run(set, nil, good, FIFO{}, 50); err == nil {
		t.Error("no clusters accepted")
	}
	if _, err := Run(set, []Cluster{{Region: "CLEAN", Slots: 0}}, good, FIFO{}, 50); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := Run(set, []Cluster{{Region: "NOPE", Slots: 1}}, good, FIFO{}, 50); err == nil {
		t.Error("unknown cluster region accepted")
	}
	dupCluster := []Cluster{{Region: "CLEAN", Slots: 1}, {Region: "CLEAN", Slots: 1}}
	if _, err := Run(set, dupCluster, good, FIFO{}, 50); err == nil {
		t.Error("duplicate cluster accepted")
	}
	bad := []Job{{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 0, Slack: 0}}
	if _, err := Run(set, clusters(1), bad, FIFO{}, 50); err == nil {
		t.Error("zero-length job accepted")
	}
	orphan := []Job{{ID: 1, Origin: "NOPE", Arrival: 0, Length: 1, Slack: 0}}
	if _, err := Run(set, clusters(1), orphan, FIFO{}, 50); err == nil {
		t.Error("job without a cluster accepted")
	}
	dup := []Job{
		{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 1, Slack: 0},
		{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 1, Slack: 0},
	}
	if _, err := Run(set, clusters(1), dup, FIFO{}, 50); err == nil {
		t.Error("duplicate job ids accepted")
	}
}

func TestMisbehavingPolicyRejected(t *testing.T) {
	set := mkSet(t, 50)
	jobs := []Job{{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 2, Slack: 10, Interruptible: true, Migratable: false}}
	cases := []struct {
		name string
		p    Policy
	}{
		{"unknown job", placer{Placement{JobID: 9, Region: "CLEAN"}}},
		{"unknown region", placer{Placement{JobID: 1, Region: "NOPE"}}},
		{"pinned migration", placer{Placement{JobID: 1, Region: "DIRTY"}}},
		{"double placement", placer{Placement{JobID: 1, Region: "CLEAN"}, Placement{JobID: 1, Region: "CLEAN"}}},
	}
	for _, c := range cases {
		if _, err := Run(set, clusters(1), jobs, c.p, 50); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

type placer []Placement

func (placer) Name() string             { return "placer" }
func (p placer) Plan(*Tick) []Placement { return p }

func TestOversubscriptionRejected(t *testing.T) {
	set := mkSet(t, 50)
	jobs := []Job{
		{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 2, Slack: 10, Interruptible: true},
		{ID: 2, Origin: "CLEAN", Arrival: 0, Length: 2, Slack: 10, Interruptible: true},
	}
	p := placer{
		{JobID: 1, Region: "CLEAN"},
		{JobID: 2, Region: "CLEAN"},
	}
	if _, err := Run(set, []Cluster{{Region: "CLEAN", Slots: 1}, {Region: "DIRTY", Slots: 1}}, jobs, p, 50); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	set := mkSet(t, 10)
	jobs := []Job{{ID: 1, Origin: "CLEAN", Arrival: 0, Length: 4, Slack: 0}}
	res, err := Run(set, []Cluster{{Region: "CLEAN", Slots: 2}, {Region: "DIRTY", Slots: 2}}, jobs, FIFO{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotHoursUsed != 4 || res.SlotHoursTotal != 40 {
		t.Fatalf("slot hours = %v/%v", res.SlotHoursUsed, res.SlotHoursTotal)
	}
	if math.Abs(res.Utilization()-0.1) > 1e-9 {
		t.Fatalf("utilization = %v", res.Utilization())
	}
}

func TestGenerateJobs(t *testing.T) {
	spec := WorkloadSpec{
		Jobs:              200,
		ArrivalSpan:       500,
		SlackHours:        24,
		InterruptibleFrac: 0.5,
		MigratableFrac:    0.7,
		Origins:           []string{"CLEAN", "DIRTY"},
		Seed:              1,
	}
	jobs, err := GenerateJobs(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	interruptible, migratable := 0, 0
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.Arrival < 0 || j.Arrival >= 500 {
			t.Fatalf("arrival out of span: %+v", j)
		}
		if i > 0 && jobs[i-1].Arrival > j.Arrival {
			t.Fatal("jobs not sorted by arrival")
		}
		if j.Interruptible {
			interruptible++
		}
		if j.Migratable {
			migratable++
		}
	}
	if interruptible < 60 || interruptible > 140 {
		t.Fatalf("interruptible count = %d, want ~100", interruptible)
	}
	if migratable < 100 || migratable > 180 {
		t.Fatalf("migratable count = %d, want ~140", migratable)
	}
	// Determinism.
	again, err := GenerateJobs(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatal("job generation not deterministic")
		}
	}
}

func TestGenerateJobsValidation(t *testing.T) {
	bad := []WorkloadSpec{
		{Jobs: 0, ArrivalSpan: 10, Origins: []string{"A"}},
		{Jobs: 1, ArrivalSpan: 0, Origins: []string{"A"}},
		{Jobs: 1, ArrivalSpan: 10},
		{Jobs: 1, ArrivalSpan: 10, Origins: []string{"A"}, MigratableFrac: 1.5},
		{Jobs: 1, ArrivalSpan: 10, Origins: []string{"A"}, InterruptibleFrac: -0.1},
	}
	for i, spec := range bad {
		if _, err := GenerateJobs(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestPolicyOrdering is the integration check: on a diurnal grid with
// ample capacity, emissions must rank
// spatiotemporal <= greenest-first <= fifo and
// carbon-gate <= fifo.
func TestPolicyOrdering(t *testing.T) {
	set := mkSet(t, 24*30)
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs:              120,
		ArrivalSpan:       24 * 20,
		Dist:              workload.DistEqual,
		SlackHours:        48,
		InterruptibleFrac: 0.8,
		MigratableFrac:    0.6,
		Origins:           []string{"CLEAN", "DIRTY"},
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cap job lengths so everything can finish inside the horizon.
	for i := range jobs {
		if jobs[i].Length > 48 {
			jobs[i].Length = 48
		}
	}
	run := func(p Policy) Result {
		t.Helper()
		res, err := Run(set, clusters(60), jobs, p, 24*30)
		if err != nil {
			t.Fatal(err)
		}
		if res.Missed != 0 {
			t.Fatalf("%s missed %d deadlines with ample capacity", p.Name(), res.Missed)
		}
		return res
	}
	fifo := run(FIFO{})
	gate := run(CarbonGate{Percentile: 40, Window: 48})
	greenest := run(GreenestFirst{})
	combined := run(SpatioTemporal{Percentile: 40, Window: 48})

	if gate.TotalEmissions >= fifo.TotalEmissions {
		t.Errorf("carbon-gate (%v) not below fifo (%v)", gate.TotalEmissions, fifo.TotalEmissions)
	}
	if greenest.TotalEmissions >= fifo.TotalEmissions {
		t.Errorf("greenest-first (%v) not below fifo (%v)", greenest.TotalEmissions, fifo.TotalEmissions)
	}
	if combined.TotalEmissions > greenest.TotalEmissions+1e-9 {
		t.Errorf("spatiotemporal (%v) worse than greenest-first (%v)", combined.TotalEmissions, greenest.TotalEmissions)
	}
}

// TestContentionShrinksSavings encodes the paper's §5.2.5 point at
// simulator scale: as capacity tightens, the carbon-aware policy's
// advantage over FIFO shrinks, because jobs can no longer all crowd
// into the clean valleys.
func TestContentionShrinksSavings(t *testing.T) {
	set := mkSet(t, 24*30)
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs:              150,
		ArrivalSpan:       24 * 20,
		SlackHours:        48,
		InterruptibleFrac: 1,
		MigratableFrac:    0,
		Origins:           []string{"DIRTY"},
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Length > 24 {
			jobs[i].Length = 24
		}
	}
	advantage := func(slots int) float64 {
		cl := []Cluster{{Region: "DIRTY", Slots: slots}, {Region: "CLEAN", Slots: 1}}
		fifo, err := Run(set, cl, jobs, FIFO{}, 24*30)
		if err != nil {
			t.Fatal(err)
		}
		gate, err := Run(set, cl, jobs, CarbonGate{Percentile: 40, Window: 48}, 24*30)
		if err != nil {
			t.Fatal(err)
		}
		return (fifo.TotalEmissions - gate.TotalEmissions) / fifo.TotalEmissions
	}
	loose := advantage(200)
	tight := advantage(5)
	if tight >= loose {
		t.Fatalf("contention did not shrink savings: tight %.3f vs loose %.3f", tight, loose)
	}
}

func BenchmarkRunMonth(b *testing.B) {
	clean := make([]float64, 24*30)
	dirty := make([]float64, 24*30)
	for h := range clean {
		clean[h] = 20
		dirty[h] = 200 + 600*float64(h%24)/24
	}
	set, err := trace.NewSet([]*trace.Trace{
		trace.New("CLEAN", t0, clean),
		trace.New("DIRTY", t0, dirty),
	})
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := GenerateJobs(WorkloadSpec{
		Jobs: 500, ArrivalSpan: 24 * 20, SlackHours: 48,
		InterruptibleFrac: 0.8, MigratableFrac: 0.5,
		Origins: []string{"CLEAN", "DIRTY"}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cl := []Cluster{{Region: "CLEAN", Slots: 100}, {Region: "DIRTY", Slots: 100}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(set, cl, jobs, SpatioTemporal{Percentile: 40, Window: 48}, 24*30); err != nil {
			b.Fatal(err)
		}
	}
}
