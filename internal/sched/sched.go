// Package sched is an hour-stepped simulator of a carbon-aware
// multi-region cluster scheduler — the kind of system (Borg,
// Kubernetes, Slurm) the paper assumes will exploit workload
// flexibility, with the resource constraints its limits analysis
// deliberately idealizes away (§5.2.5: "the actual carbon reductions
// are likely to be much less due to ... resource constraints that
// prevent running many jobs during low carbon periods").
//
// The simulator enforces what the analytical upper bounds do not:
//
//   - finite slots per regional cluster;
//   - non-interruptible jobs run to completion once started;
//   - non-migratable jobs stay in their origin region;
//   - deadlines: a job with exhausted slack is forced to run, and a
//     job that cannot be placed in time is counted as missed.
//
// Policies decide where and when the remaining (flexible) jobs run.
// Comparing a policy's fleet emissions against the unconstrained
// bounds from internal/temporal and internal/spatial quantifies the
// gap between the paper's ideal and an actual scheduler.
package sched

import (
	"fmt"

	"carbonshift/internal/tenant"
	"carbonshift/internal/trace"
)

// Job is one unit of work submitted to the fleet.
type Job struct {
	// ID must be unique within a run.
	ID int
	// Origin is the submission region.
	Origin string
	// Tenant names the submitting tenant ("" means the default
	// tenant). It drives fair-share dequeue and per-tenant accounting;
	// names are bounded and character-restricted (tenant.NameOK).
	Tenant string
	// Arrival is the submission hour (trace index).
	Arrival int
	// Length is the required run-hours.
	Length int
	// Slack bounds deferral: the job must finish by
	// Arrival+Length+Slack.
	Slack int
	// Interruptible jobs may be suspended and resumed.
	Interruptible bool
	// Migratable jobs may run outside Origin.
	Migratable bool
}

// Deadline returns the completion deadline (exclusive hour).
func (j Job) Deadline() int { return j.Arrival + j.Length + j.Slack }

// Validate reports structural problems.
func (j Job) Validate() error {
	if j.Length < 1 {
		return fmt.Errorf("sched: job %d length %d", j.ID, j.Length)
	}
	if j.Arrival < 0 || j.Slack < 0 {
		return fmt.Errorf("sched: job %d negative arrival or slack", j.ID)
	}
	if j.Origin == "" {
		return fmt.Errorf("sched: job %d has no origin", j.ID)
	}
	if !tenant.NameOK(j.Tenant) {
		return fmt.Errorf("sched: job %d bad tenant name %q", j.ID, j.Tenant)
	}
	return nil
}

// Cluster is one region's capacity.
type Cluster struct {
	Region string
	// Slots is the number of jobs that can run concurrently.
	Slots int
}

// JobView is the read-only picture of a schedulable job handed to
// policies.
type JobView struct {
	ID              int
	Origin          string
	Tenant          string
	Remaining       int // run-hours still needed
	HoursToDeadline int
	Interruptible   bool
	Migratable      bool
}

// SlackLeft returns how many hours the job can still afford to wait.
func (v JobView) SlackLeft() int { return v.HoursToDeadline - v.Remaining }

// Tick is the per-hour scheduling context given to policies.
type Tick struct {
	// Hour is the current trace hour.
	Hour int
	// Regions lists cluster regions in deterministic (sorted) order.
	Regions []string
	// CI returns the current carbon intensity of a region.
	CI func(region string) float64
	// Lookback returns up to n trailing hours of a region's intensity
	// (oldest first), excluding the current hour. Policies use it for
	// threshold estimation; it never exposes the future.
	Lookback func(region string, n int) []float64
	// FreeSlots is the remaining capacity per region after forced
	// placements. Policies must respect it.
	FreeSlots map[string]int
	// Eligible lists the jobs the policy may place this hour — in
	// arrival order, or in weighted-fair order when the fleet has a
	// tenant FairQueue installed (same-tenant jobs keep arrival order).
	Eligible []JobView
}

// Placement assigns a job to run in a region for the current hour.
type Placement struct {
	JobID  int
	Region string
}

// Policy decides placements each hour.
type Policy interface {
	Name() string
	Plan(t *Tick) []Placement
}

// Outcome is one job's fate.
type Outcome struct {
	Job
	// Completed reports whether the job finished within the horizon.
	Completed bool
	// CompletedAt is the hour after the final run-hour (valid when
	// Completed).
	CompletedAt int
	// MissedDeadline reports a completion (or horizon end) past the
	// deadline.
	MissedDeadline bool
	// Emissions is the job's total g·CO₂eq (1 kW draw).
	Emissions float64
	// WaitHours counts hours spent runnable but not running.
	WaitHours int
	// Migrations counts region changes.
	Migrations int
}

// Result aggregates a simulation run.
type Result struct {
	Policy string
	// Outcomes holds one entry per submitted job, in input order.
	Outcomes []Outcome
	// TotalEmissions is the fleet total in g·CO₂eq.
	TotalEmissions float64
	// Completed and Missed count job outcomes.
	Completed, Missed int
	// MeanWaitHours averages over completed jobs.
	MeanWaitHours float64
	// SlotHoursUsed and SlotHoursTotal give fleet utilization.
	SlotHoursUsed, SlotHoursTotal float64
}

// Utilization returns used/total slot-hours.
func (r Result) Utilization() float64 {
	if r.SlotHoursTotal == 0 {
		return 0
	}
	return r.SlotHoursUsed / r.SlotHoursTotal
}

// Run simulates the fleet from hour 0 to horizon (exclusive) and
// returns the aggregate result. All job windows must fit the trace.
// Run is the offline mode of the incremental Fleet: it submits every
// job up front and steps through the whole horizon.
func Run(set *trace.Set, clusters []Cluster, jobs []Job, policy Policy, horizon int) (Result, error) {
	f, err := NewFleet(set, clusters, policy, horizon)
	if err != nil {
		return Result{}, err
	}
	if err := f.Submit(jobs...); err != nil {
		return Result{}, err
	}
	for !f.Done() {
		if err := f.Step(); err != nil {
			return Result{}, err
		}
	}
	return f.Snapshot(), nil
}
