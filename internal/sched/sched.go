// Package sched is an hour-stepped simulator of a carbon-aware
// multi-region cluster scheduler — the kind of system (Borg,
// Kubernetes, Slurm) the paper assumes will exploit workload
// flexibility, with the resource constraints its limits analysis
// deliberately idealizes away (§5.2.5: "the actual carbon reductions
// are likely to be much less due to ... resource constraints that
// prevent running many jobs during low carbon periods").
//
// The simulator enforces what the analytical upper bounds do not:
//
//   - finite slots per regional cluster;
//   - non-interruptible jobs run to completion once started;
//   - non-migratable jobs stay in their origin region;
//   - deadlines: a job with exhausted slack is forced to run, and a
//     job that cannot be placed in time is counted as missed.
//
// Policies decide where and when the remaining (flexible) jobs run.
// Comparing a policy's fleet emissions against the unconstrained
// bounds from internal/temporal and internal/spatial quantifies the
// gap between the paper's ideal and an actual scheduler.
package sched

import (
	"fmt"
	"sort"

	"carbonshift/internal/trace"
)

// Job is one unit of work submitted to the fleet.
type Job struct {
	// ID must be unique within a run.
	ID int
	// Origin is the submission region.
	Origin string
	// Arrival is the submission hour (trace index).
	Arrival int
	// Length is the required run-hours.
	Length int
	// Slack bounds deferral: the job must finish by
	// Arrival+Length+Slack.
	Slack int
	// Interruptible jobs may be suspended and resumed.
	Interruptible bool
	// Migratable jobs may run outside Origin.
	Migratable bool
}

// Deadline returns the completion deadline (exclusive hour).
func (j Job) Deadline() int { return j.Arrival + j.Length + j.Slack }

// Validate reports structural problems.
func (j Job) Validate() error {
	if j.Length < 1 {
		return fmt.Errorf("sched: job %d length %d", j.ID, j.Length)
	}
	if j.Arrival < 0 || j.Slack < 0 {
		return fmt.Errorf("sched: job %d negative arrival or slack", j.ID)
	}
	if j.Origin == "" {
		return fmt.Errorf("sched: job %d has no origin", j.ID)
	}
	return nil
}

// Cluster is one region's capacity.
type Cluster struct {
	Region string
	// Slots is the number of jobs that can run concurrently.
	Slots int
}

// JobView is the read-only picture of a schedulable job handed to
// policies.
type JobView struct {
	ID              int
	Origin          string
	Remaining       int // run-hours still needed
	HoursToDeadline int
	Interruptible   bool
	Migratable      bool
}

// SlackLeft returns how many hours the job can still afford to wait.
func (v JobView) SlackLeft() int { return v.HoursToDeadline - v.Remaining }

// Tick is the per-hour scheduling context given to policies.
type Tick struct {
	// Hour is the current trace hour.
	Hour int
	// Regions lists cluster regions in deterministic (sorted) order.
	Regions []string
	// CI returns the current carbon intensity of a region.
	CI func(region string) float64
	// Lookback returns up to n trailing hours of a region's intensity
	// (oldest first), excluding the current hour. Policies use it for
	// threshold estimation; it never exposes the future.
	Lookback func(region string, n int) []float64
	// FreeSlots is the remaining capacity per region after forced
	// placements. Policies must respect it.
	FreeSlots map[string]int
	// Eligible lists the jobs the policy may place this hour, in
	// arrival order.
	Eligible []JobView
}

// Placement assigns a job to run in a region for the current hour.
type Placement struct {
	JobID  int
	Region string
}

// Policy decides placements each hour.
type Policy interface {
	Name() string
	Plan(t *Tick) []Placement
}

// Outcome is one job's fate.
type Outcome struct {
	Job
	// Completed reports whether the job finished within the horizon.
	Completed bool
	// CompletedAt is the hour after the final run-hour (valid when
	// Completed).
	CompletedAt int
	// MissedDeadline reports a completion (or horizon end) past the
	// deadline.
	MissedDeadline bool
	// Emissions is the job's total g·CO₂eq (1 kW draw).
	Emissions float64
	// WaitHours counts hours spent runnable but not running.
	WaitHours int
	// Migrations counts region changes.
	Migrations int
}

// Result aggregates a simulation run.
type Result struct {
	Policy string
	// Outcomes holds one entry per submitted job, in input order.
	Outcomes []Outcome
	// TotalEmissions is the fleet total in g·CO₂eq.
	TotalEmissions float64
	// Completed and Missed count job outcomes.
	Completed, Missed int
	// MeanWaitHours averages over completed jobs.
	MeanWaitHours float64
	// SlotHoursUsed and SlotHoursTotal give fleet utilization.
	SlotHoursUsed, SlotHoursTotal float64
}

// Utilization returns used/total slot-hours.
func (r Result) Utilization() float64 {
	if r.SlotHoursTotal == 0 {
		return 0
	}
	return r.SlotHoursUsed / r.SlotHoursTotal
}

// state is the mutable per-job bookkeeping.
type state struct {
	Job
	progress   int
	region     string // current placement ("" before first run)
	ranLastHr  bool
	done       bool
	doneAt     int
	emissions  float64
	waitHours  int
	migrations int
}

// Run simulates the fleet from hour 0 to horizon (exclusive) and
// returns the aggregate result. All job windows must fit the trace.
func Run(set *trace.Set, clusters []Cluster, jobs []Job, policy Policy, horizon int) (Result, error) {
	if policy == nil {
		return Result{}, fmt.Errorf("sched: nil policy")
	}
	if horizon < 1 || horizon > set.Len() {
		return Result{}, fmt.Errorf("sched: horizon %d outside trace of %d hours", horizon, set.Len())
	}
	if len(clusters) == 0 {
		return Result{}, fmt.Errorf("sched: no clusters")
	}
	slots := make(map[string]int, len(clusters))
	var regionsList []string
	var totalSlots int
	for _, c := range clusters {
		if c.Slots < 1 {
			return Result{}, fmt.Errorf("sched: cluster %s has %d slots", c.Region, c.Slots)
		}
		if _, ok := set.Get(c.Region); !ok {
			return Result{}, fmt.Errorf("sched: cluster region %q not in trace set", c.Region)
		}
		if _, dup := slots[c.Region]; dup {
			return Result{}, fmt.Errorf("sched: duplicate cluster %s", c.Region)
		}
		slots[c.Region] = c.Slots
		regionsList = append(regionsList, c.Region)
		totalSlots += c.Slots
	}
	sort.Strings(regionsList)

	states := make([]*state, len(jobs))
	byID := make(map[int]*state, len(jobs))
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
		if _, ok := slots[j.Origin]; !ok {
			return Result{}, fmt.Errorf("sched: job %d origin %q has no cluster", j.ID, j.Origin)
		}
		if _, dup := byID[j.ID]; dup {
			return Result{}, fmt.Errorf("sched: duplicate job id %d", j.ID)
		}
		st := &state{Job: j}
		states[i] = st
		byID[j.ID] = st
	}

	ci := func(region string, hour int) float64 { return set.MustGet(region).At(hour) }

	res := Result{Policy: policy.Name(), SlotHoursTotal: float64(totalSlots * horizon)}
	free := make(map[string]int, len(slots))

	for hour := 0; hour < horizon; hour++ {
		for r, s := range slots {
			free[r] = s
		}
		runNow := make(map[int]string) // job id -> region

		// Phase 1: forced continuations — a started non-interruptible
		// job occupies its slot until done.
		for _, st := range states {
			if st.done || st.progress == 0 || st.Interruptible {
				continue
			}
			runNow[st.ID] = st.region
			free[st.region]--
		}

		// Phase 2: deadline forcing — a job whose remaining slack is
		// zero must run every hour from now on. Try its current/origin
		// region, then (if migratable) anything with space.
		for _, st := range states {
			if st.done || st.Arrival > hour {
				continue
			}
			if _, already := runNow[st.ID]; already {
				continue
			}
			remaining := st.Length - st.progress
			if st.Deadline()-hour > remaining {
				continue // still has slack
			}
			region := st.preferredRegion()
			if free[region] <= 0 && st.Migratable {
				for _, r := range regionsList {
					if free[r] > 0 {
						region = r
						break
					}
				}
			}
			if free[region] > 0 {
				runNow[st.ID] = region
				free[region]--
			}
			// If nothing is free the job misses this hour — and
			// likely its deadline. That is the contention signal the
			// simulator exists to surface.
		}

		// Phase 3: policy placements for the flexible remainder.
		tick := &Tick{
			Hour:    hour,
			Regions: regionsList,
			CI:      func(region string) float64 { return ci(region, hour) },
			Lookback: func(region string, n int) []float64 {
				lo := hour - n
				if lo < 0 {
					lo = 0
				}
				return set.MustGet(region).CI[lo:hour]
			},
			FreeSlots: copySlots(free),
		}
		for _, st := range states {
			if st.done || st.Arrival > hour {
				continue
			}
			if _, already := runNow[st.ID]; already {
				continue
			}
			tick.Eligible = append(tick.Eligible, JobView{
				ID:              st.ID,
				Origin:          st.Origin,
				Remaining:       st.Length - st.progress,
				HoursToDeadline: st.Deadline() - hour,
				Interruptible:   st.Interruptible,
				Migratable:      st.Migratable,
			})
		}
		for _, p := range policy.Plan(tick) {
			st, ok := byID[p.JobID]
			if !ok {
				return Result{}, fmt.Errorf("sched: policy %s placed unknown job %d", policy.Name(), p.JobID)
			}
			if st.done || st.Arrival > hour {
				return Result{}, fmt.Errorf("sched: policy %s placed ineligible job %d", policy.Name(), p.JobID)
			}
			if _, already := runNow[st.ID]; already {
				return Result{}, fmt.Errorf("sched: policy %s double-placed job %d", policy.Name(), p.JobID)
			}
			if _, ok := slots[p.Region]; !ok {
				return Result{}, fmt.Errorf("sched: policy %s used unknown region %q", policy.Name(), p.Region)
			}
			if !st.Migratable && p.Region != st.Origin {
				return Result{}, fmt.Errorf("sched: policy %s migrated pinned job %d", policy.Name(), st.ID)
			}
			if free[p.Region] <= 0 {
				return Result{}, fmt.Errorf("sched: policy %s oversubscribed region %s", policy.Name(), p.Region)
			}
			runNow[st.ID] = p.Region
			free[p.Region]--
		}

		// Phase 4: advance the world one hour.
		for _, st := range states {
			if st.done || st.Arrival > hour {
				continue
			}
			region, running := runNow[st.ID]
			if !running {
				st.waitHours++
				continue
			}
			if st.region != "" && st.region != region {
				st.migrations++
			}
			st.region = region
			st.ranLastHr = true
			st.progress++
			st.emissions += ci(region, hour)
			res.SlotHoursUsed++
			if st.progress == st.Length {
				st.done = true
				st.doneAt = hour + 1
			}
		}
	}

	for _, st := range states {
		out := Outcome{
			Job:        st.Job,
			Completed:  st.done,
			Emissions:  st.emissions,
			WaitHours:  st.waitHours,
			Migrations: st.migrations,
		}
		if st.done {
			out.CompletedAt = st.doneAt
			out.MissedDeadline = st.doneAt > st.Deadline()
			res.Completed++
		} else {
			out.MissedDeadline = st.Deadline() <= horizon
		}
		if out.MissedDeadline {
			res.Missed++
		}
		res.TotalEmissions += st.emissions
		res.Outcomes = append(res.Outcomes, out)
	}
	if res.Completed > 0 {
		var wait float64
		for _, o := range res.Outcomes {
			if o.Completed {
				wait += float64(o.WaitHours)
			}
		}
		res.MeanWaitHours = wait / float64(res.Completed)
	}
	return res, nil
}

func (st *state) preferredRegion() string {
	if st.region != "" {
		return st.region
	}
	return st.Origin
}

func copySlots(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
