package sched

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"carbonshift/internal/tenant"
)

// tenancyConfig is the mixed-class world the invariant sweeps run
// under: two interactive tenants of different weights, a batch tenant,
// and a scavenger.
func tenancyConfig(t testing.TB) *tenant.Config {
	t.Helper()
	cfg, err := tenant.NewConfig([]tenant.Spec{
		{Name: "web", Class: tenant.Interactive, Weight: 2},
		{Name: "api", Class: tenant.Interactive},
		{Name: "etl", Class: tenant.Batch},
		{Name: "spot", Class: tenant.Scavenger},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// genTenantJobs builds a deterministic random workload with tenant
// tags drawn from the given names ("" entries mean the default
// tenant).
func genTenantJobs(rng *rand.Rand, n, span int, origins, tenants []string) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID:            i + 1,
			Origin:        origins[rng.Intn(len(origins))],
			Tenant:        tenants[rng.Intn(len(tenants))],
			Arrival:       rng.Intn(span),
			Length:        1 + rng.Intn(6),
			Slack:         rng.Intn(48),
			Interruptible: rng.Intn(2) == 0,
			Migratable:    rng.Intn(2) == 0,
		}
	}
	return jobs
}

// TestTenancyInvariants is the tenancy proof layer's core sweep:
// across random seeds, policies, and shard counts {1, 4, 16}, a
// tenant-tagged workload under weighted-fair dequeue must behave
// identically in every fleet form — placements hour for hour, the
// aggregate Result, per-tenant accounting, and (across sharded forms)
// the serialized fleet image, including a mid-run snapshot/restore
// hop between different shard counts.
func TestTenancyInvariants(t *testing.T) {
	const horizon = 24 * 6
	set, cl, origins := mkWideSet(t, horizon, 6)
	tenants := []string{"web", "api", "etl", "spot", ""}
	shardCounts := []int{1, 4, 16}

	for seed := int64(1); seed <= 3; seed++ {
		jobs := genTenantJobs(rand.New(rand.NewSource(seed)), 240, horizon-60, origins, tenants)
		for _, pol := range allPolicies() {
			t.Run(fmt.Sprintf("seed%d/%s", seed, pol.Name()), func(t *testing.T) {
				type run struct {
					placements string
					result     Result
					image      []byte
					perTenant  map[string]TenantStat
				}
				var serial run
				var sharded []run

				record := func(log *strings.Builder) func(hour, jobID int, region string) {
					return func(hour, jobID int, region string) {
						fmt.Fprintf(log, "%d:%d:%s\n", hour, jobID, region)
					}
				}

				{
					f, err := NewFleet(set, cl, pol, horizon)
					if err != nil {
						t.Fatal(err)
					}
					f.SetFairQueue(tenant.NewFairQueue(tenancyConfig(t)))
					var log strings.Builder
					f.OnPlace = record(&log)
					if err := f.Submit(jobs...); err != nil {
						t.Fatal(err)
					}
					driveFleet(t, f)
					img, err := f.Marshal()
					if err != nil {
						t.Fatal(err)
					}
					serial = run{log.String(), f.Snapshot(), img, f.TenantStats()}
				}
				for _, shards := range shardCounts {
					f, err := NewShardedFleet(set, cl, pol, horizon, shards)
					if err != nil {
						t.Fatal(err)
					}
					f.SetFairQueue(tenant.NewFairQueue(tenancyConfig(t)))
					var log strings.Builder
					f.OnPlace = record(&log)
					if err := f.Submit(jobs...); err != nil {
						t.Fatal(err)
					}
					driveFleet(t, f)
					img, err := f.Marshal()
					if err != nil {
						t.Fatal(err)
					}
					sharded = append(sharded, run{log.String(), f.Snapshot(), img, f.TenantStats()})
				}

				for i, r := range sharded {
					if r.placements != serial.placements {
						t.Fatalf("shards=%d placements diverge from serial fleet", shardCounts[i])
					}
					if len(r.result.Outcomes) != len(serial.result.Outcomes) || r.result.Completed != serial.result.Completed ||
						r.result.Missed != serial.result.Missed || r.result.TotalEmissions != serial.result.TotalEmissions {
						t.Fatalf("shards=%d Result differs from serial fleet", shardCounts[i])
					}
					if !bytes.Equal(r.image, sharded[0].image) {
						t.Fatalf("shards=%d image differs from shards=%d", shardCounts[i], shardCounts[0])
					}
					if len(r.perTenant) != len(serial.perTenant) {
						t.Fatalf("shards=%d tenant stats differ", shardCounts[i])
					}
					for name, ts := range serial.perTenant {
						if r.perTenant[name] != ts {
							t.Fatalf("shards=%d tenant %s stats %+v != serial %+v", shardCounts[i], name, r.perTenant[name], ts)
						}
					}
				}
			})
		}

		// Mid-run snapshot hop across shard counts under tenancy: a
		// fleet restored at a different shard count must finish the run
		// byte-identically.
		t.Run(fmt.Sprintf("seed%d/restore-hop", seed), func(t *testing.T) {
			pol := SpatioTemporal{Percentile: 40, Window: 48}
			mk := func(shards int) *ShardedFleet {
				f, err := NewShardedFleet(set, cl, pol, horizon, shards)
				if err != nil {
					t.Fatal(err)
				}
				f.SetFairQueue(tenant.NewFairQueue(tenancyConfig(t)))
				return f
			}
			ref := mk(4)
			if err := ref.Submit(jobs...); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < horizon/2; i++ {
				if err := ref.Step(); err != nil {
					t.Fatal(err)
				}
			}
			mid, err := ref.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			hop := mk(16)
			if err := hop.Unmarshal(mid); err != nil {
				t.Fatal(err)
			}
			driveFleet(t, ref)
			driveFleet(t, hop)
			a, _ := ref.Marshal()
			b, _ := hop.Marshal()
			if !bytes.Equal(a, b) {
				t.Fatal("restored fleet's final image differs from the uninterrupted run")
			}
		})
	}
}

// TestTenancyScavengerNotStarved: under saturating interactive load
// with scarce slots, a scavenger tenant whose jobs are never
// deadline-forced (slack beyond the horizon) still executes — service
// arrives through the weighted-fair dequeue alone, at roughly its
// weight share.
func TestTenancyScavengerNotStarved(t *testing.T) {
	const horizon = 24 * 10
	set := mkSet(t, horizon)
	cl := []Cluster{{Region: "CLEAN", Slots: 2}, {Region: "DIRTY", Slots: 2}}

	cfg, err := tenant.NewConfig([]tenant.Spec{
		{Name: "web", Class: tenant.Interactive},
		{Name: "spot", Class: tenant.Scavenger},
	})
	if err != nil {
		t.Fatal(err)
	}

	var jobs []Job
	id := 0
	// Interactive flood: far more work than the 4 slots can absorb,
	// with slack so generous nothing is deadline-forced.
	for i := 0; i < 40; i++ {
		id++
		jobs = append(jobs, Job{
			ID: id, Origin: "CLEAN", Tenant: "web", Arrival: 0,
			Length: horizon / 2, Slack: 10 * horizon,
			Interruptible: true, Migratable: true,
		})
	}
	// Scavenger backlog, same never-forced shape.
	for i := 0; i < 10; i++ {
		id++
		jobs = append(jobs, Job{
			ID: id, Origin: "DIRTY", Tenant: "spot", Arrival: 0,
			Length: horizon / 2, Slack: 10 * horizon,
			Interruptible: true, Migratable: true,
		})
	}

	for _, shards := range []int{1, 4} {
		f, err := NewShardedFleet(set, cl, FIFO{}, horizon, shards)
		if err != nil {
			t.Fatal(err)
		}
		f.SetFairQueue(tenant.NewFairQueue(cfg))
		if err := f.Submit(jobs...); err != nil {
			t.Fatal(err)
		}
		driveFleet(t, f)
		ts := f.TenantStats()
		spot, web := ts["spot"], ts["web"]
		if spot.SlotHours == 0 {
			t.Fatalf("shards=%d: scavenger starved under interactive saturation", shards)
		}
		total := spot.SlotHours + web.SlotHours
		// Weight ratio 100:1 → spot's fair share is ~1%; allow a wide
		// band but insist it is bounded on both sides.
		if spot.SlotHours < total/500 || spot.SlotHours > total/10 {
			t.Fatalf("shards=%d: scavenger share %d of %d slot-hours is far from its weight share", shards, spot.SlotHours, total)
		}
	}
}

// TestTenancyQuotaNeverExceeded drives the admission gate against a
// live sharded fleet through SubmitNowChecked — the race-free check
// the service layer uses — with randomized contention, then asserts
// from the fleet's own arrival records that no tenant ever exceeded
// its quota in any hour.
func TestTenancyQuotaNeverExceeded(t *testing.T) {
	const horizon = 48
	set := mkSet(t, horizon)
	quotas := map[string]int{"a": 3, "b": 7}
	cfg, err := tenant.NewConfig([]tenant.Spec{
		{Name: "a", QuotaJobsPerHour: quotas["a"]},
		{Name: "b", QuotaJobsPerHour: quotas["b"]},
		{Name: "c"},
	})
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f, err := NewShardedFleet(set, clusters(4), FIFO{}, horizon, 4)
		if err != nil {
			t.Fatal(err)
		}
		f.SetFairQueue(tenant.NewFairQueue(cfg))
		gate := tenant.NewGate(cfg, nil)
		names := []string{"a", "b", "c"}
		id := 0
		for !f.Done() {
			for try := 0; try < 12; try++ {
				name := names[rng.Intn(len(names))]
				n := 1 + rng.Intn(3)
				batch := make([]Job, n)
				for i := range batch {
					id++
					batch[i] = Job{ID: id, Origin: "CLEAN", Tenant: name, Length: 1, Slack: 4}
				}
				_, err := f.SubmitNowChecked(func(hour int) error {
					return gate.Check(name, n, hour)
				}, batch...)
				if err != nil {
					continue
				}
				gate.Commit(name, n, f.Hour())
				arr := f.TenantArrivals(f.Hour())
				for tn, q := range quotas {
					if arr[tn] > q {
						t.Fatalf("seed %d hour %d: tenant %s admitted %d > quota %d", seed, f.Hour(), tn, arr[tn], q)
					}
				}
			}
			if err := f.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
