package sched

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"carbonshift/internal/engine"
	"carbonshift/internal/tenant"
	"carbonshift/internal/trace"
)

// ErrHorizonExhausted is returned by SubmitNow once the fleet has
// stepped through its whole horizon and can no longer admit work.
var ErrHorizonExhausted = fmt.Errorf("sched: replay horizon exhausted")

// ShardedFleet is the scale-out form of Fleet: job state and slot
// accounting are partitioned by region into independently-locked
// shards, and every Step fans the per-job scanning and advancement work
// across the shards on the engine worker pool. The cross-shard
// decisions — deadline spillover of migratable jobs, the policy's
// global placement pass, and the OnPlace recorder — run in a serial
// reconciliation phase over merged, submission-ordered views, so
// placements and the aggregate Result are byte-identical to the serial
// Fleet for any shard count.
//
// Two additional structural optimizations fall out of sharding (both
// invisible to results): jobs that have not yet arrived wait in
// per-shard arrival buckets instead of being rescanned every hour, and
// completed jobs are compacted out of the active lists. A Step
// therefore costs O(active jobs / shards) in parallel plus O(eligible)
// serial policy work, where the serial Fleet pays O(all jobs) per
// phase.
//
// Unlike Fleet, a ShardedFleet is safe for concurrent use: Step
// excludes everything else, while Submit, Lookup, Stats, and Snapshot
// may run concurrently with each other (Submits to different shards
// only contend on a short id-registry critical section).
//
// Lock hierarchy (always acquired in this order, never the reverse):
// world mu (RLock for Submit/Lookup/Stats/Snapshot, Lock for Step) →
// idMu (id registry, submission order) → shard.mu (one shard's lists).
type ShardedFleet struct {
	set     *trace.Set
	policy  Policy
	horizon int

	regionsList []string
	regionIdx   map[string]int // region code -> index
	traces      []*trace.Trace // by region index
	slotsByIdx  []int          // by region index
	slots       map[string]int
	totalSlots  int
	shardOf     []int // region index -> owning shard

	// Region contention groups (SetRegionGroups). The default is one
	// group holding every region; with more, spillover and policy
	// placement never cross a group boundary and the policy runs once
	// per group. All three are config, fixed before the first Submit.
	groupOf      []int   // region index -> group index
	groupRegions [][]int // group index -> sorted region indices
	groupNames   [][]string

	shards []*fleetShard

	// mu is the world lock: Step (and the serial reconciliation inside
	// it) holds it exclusively; every other entry point holds it shared.
	mu   sync.RWMutex
	hour int

	// idMu guards the cross-shard id registry and submission order.
	// arena lives under it too: allocation is already serialized by the
	// id registry, so a per-shard arena would buy no parallelism — it
	// would only fragment the blocks.
	idMu      sync.Mutex
	byID      map[int]*sstate
	order     []*sstate
	arena     sstateArena
	submitted atomic.Int64

	// Serial-phase scratch and incrementally-maintained aggregates.
	// All of it is touched only under mu.Lock (Step) — except buckets,
	// which Submit also grows under idMu; Submit holds mu.RLock, so it
	// can never race a Step.
	free        []int // per-region free slots, written disjointly by shards
	mergeIdx    []int
	poolBuf     []*sstate
	placedBuf   []*sstate
	completed   int
	missedDone  int     // completed past their deadline
	overdueOpen int     // unresolved jobs whose deadline has passed
	ranLast     int     // non-done jobs that ran in the most recent Step
	emissionsG  float64 // accumulated in execution order (see Stats)
	slotHours   float64
	buckets     map[int]int // deadline hour -> unresolved jobs due then

	// fq mirrors Fleet.fq: the tenant fair-dequeue engine, touched
	// only in Step's serial sections and under mu during
	// Marshal/Unmarshal.
	fq *tenant.FairQueue

	// OnPlace, when non-nil, observes every executed job-hour in
	// deterministic submission order, exactly as Fleet.OnPlace does.
	// Set it before the first Step; it must not call back into the
	// fleet.
	OnPlace func(hour, jobID int, region string)

	// OnPlaceDetail mirrors Fleet.OnPlaceDetail: the origin- and
	// tenant-carrying recorder fired after OnPlace in the serial
	// epilogue, in the same deterministic order. It must not call back
	// into the fleet.
	OnPlaceDetail func(hour, jobID int, region, origin, tenantName string)
}

// sstate is the sharded fleet's per-job bookkeeping. It mirrors state
// but carries the submission sequence (for deterministic merges), the
// owning-region index, and a last-run hour instead of a per-step
// ran-last-hour flag so no reset pass over all jobs is needed.
type sstate struct {
	Job
	seq        int
	originI    int
	progress   int
	region     string
	regionI    int // current region index, -1 before the first run
	placed     int // per-Step scratch: region index placed this hour, -1
	lastRun    int // hour of the most recent run, -1 never
	done       bool
	doneAt     int
	emissions  float64
	waitHours  int
	migrations int
}

// sstateArena hands out sstate records carved from fixed-size blocks,
// so admitting a million jobs costs ~1000 heap objects instead of a
// million — GC mark work at BenchmarkScaleFleetStep1M scale scans the
// blocks, not each job. Records are never freed individually: the
// fleet retains every job for its lifetime anyway (byID/order), so the
// arena's only reclamation point is fleet teardown (or Unmarshal,
// which resets it wholesale). Guarded by idMu.
type sstateArena struct{ free []sstate }

const arenaBlock = 1024

func (a *sstateArena) alloc() *sstate {
	if len(a.free) == 0 {
		a.free = make([]sstate, arenaBlock)
	}
	st := &a.free[0]
	a.free = a.free[1:]
	return st
}

// fleetShard owns a disjoint set of regions, the jobs currently (or
// originally, before first placement) homed there, and the future
// arrivals bound for them.
type fleetShard struct {
	mu      sync.Mutex // serializes Submit insertions into this shard
	regions []int
	active  []*sstate         // arrived, uncompleted jobs, seq-sorted
	pending map[int][]*sstate // arrival hour -> jobs, each seq-sorted

	// Per-Step scratch, reused across steps.
	pool      []*sstate // actives minus forced continuations, seq-sorted
	placedRun []*sstate // jobs that ran this step, seq-sorted
	movedOut  []*sstate // jobs whose new region belongs to another shard
}

// NewShardedFleet validates the world and returns an empty sharded
// fleet at hour zero. A shard count of 0 defaults to
// min(GOMAXPROCS, number of clusters); counts above the region count
// are allowed (the extra shards simply own no regions), so a fixed
// configuration behaves identically on any machine.
func NewShardedFleet(set *trace.Set, clusters []Cluster, policy Policy, horizon, shards int) (*ShardedFleet, error) {
	if policy == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	if horizon < 1 || horizon > set.Len() {
		return nil, fmt.Errorf("sched: horizon %d outside trace of %d hours", horizon, set.Len())
	}
	if len(clusters) == 0 {
		return nil, fmt.Errorf("sched: no clusters")
	}
	if shards < 0 {
		return nil, fmt.Errorf("sched: negative shard count %d", shards)
	}
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > len(clusters) {
			shards = len(clusters)
		}
	}
	f := &ShardedFleet{
		set:       set,
		policy:    policy,
		horizon:   horizon,
		slots:     make(map[string]int, len(clusters)),
		regionIdx: make(map[string]int, len(clusters)),
		byID:      make(map[int]*sstate),
		buckets:   make(map[int]int),
	}
	for _, c := range clusters {
		if c.Slots < 1 {
			return nil, fmt.Errorf("sched: cluster %s has %d slots", c.Region, c.Slots)
		}
		if _, ok := set.Get(c.Region); !ok {
			return nil, fmt.Errorf("sched: cluster region %q not in trace set", c.Region)
		}
		if _, dup := f.slots[c.Region]; dup {
			return nil, fmt.Errorf("sched: duplicate cluster %s", c.Region)
		}
		f.slots[c.Region] = c.Slots
		f.regionsList = append(f.regionsList, c.Region)
		f.totalSlots += c.Slots
	}
	sort.Strings(f.regionsList)
	f.traces = make([]*trace.Trace, len(f.regionsList))
	f.slotsByIdx = make([]int, len(f.regionsList))
	f.shardOf = make([]int, len(f.regionsList))
	f.free = make([]int, len(f.regionsList))
	f.shards = make([]*fleetShard, shards)
	for i := range f.shards {
		f.shards[i] = &fleetShard{pending: make(map[int][]*sstate)}
	}
	for i, r := range f.regionsList {
		f.regionIdx[r] = i
		f.traces[i] = f.set.MustGet(r)
		f.slotsByIdx[i] = f.slots[r]
		si := i % shards
		f.shardOf[i] = si
		f.shards[si].regions = append(f.shards[si].regions, i)
	}
	f.mergeIdx = make([]int, shards)
	f.groupOf = make([]int, len(f.regionsList))
	all := make([]int, len(f.regionsList))
	for i := range all {
		all[i] = i
	}
	f.groupRegions = [][]int{all}
	f.groupNames = [][]string{f.regionsList}
	return f, nil
}

// SetFairQueue installs the tenant fair-dequeue engine, with the same
// set-before-first-Step contract as Fleet.SetFairQueue.
func (f *ShardedFleet) SetFairQueue(q *tenant.FairQueue) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fq = q
}

// Hour returns the next hour the fleet will simulate.
func (f *ShardedFleet) Hour() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.hour
}

// Horizon returns the exclusive final hour.
func (f *ShardedFleet) Horizon() int { return f.horizon }

// Done reports whether the fleet has simulated its whole horizon.
func (f *ShardedFleet) Done() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.hour >= f.horizon
}

// NumShards returns the shard count.
func (f *ShardedFleet) NumShards() int { return len(f.shards) }

// Jobs returns the number of jobs submitted so far.
func (f *ShardedFleet) Jobs() int { return int(f.submitted.Load()) }

// Outstanding returns the number of submitted jobs that have not yet
// completed, in O(1) — the backpressure signal for online admission.
func (f *ShardedFleet) Outstanding() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int(f.submitted.Load()) - f.completed
}

// Regions lists the cluster regions in sorted order.
func (f *ShardedFleet) Regions() []string {
	out := make([]string, len(f.regionsList))
	copy(out, f.regionsList)
	return out
}

// Slots returns the slot count of one region's cluster (0 if unknown).
func (f *ShardedFleet) Slots(region string) int { return f.slots[region] }

// Submit adds jobs to the fleet at their own arrival hours. The call is
// atomic: on any validation error no job from the batch is admitted.
// Safe for concurrent use; jobs bound for different shards only contend
// on the id registry.
func (f *ShardedFleet) Submit(jobs ...Job) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, err := f.submitRLocked(jobs, false)
	return err
}

// SubmitNow stamps every job's arrival with the fleet's current hour —
// the online-service admission path, where work always arrives "now" —
// and returns the arrival hour used. It fails with ErrHorizonExhausted
// once the replay is over.
func (f *ShardedFleet) SubmitNow(jobs ...Job) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.hour >= f.horizon {
		return 0, ErrHorizonExhausted
	}
	return f.submitRLocked(jobs, true)
}

// SubmitNowChecked is SubmitNow with an admission check evaluated
// under the world read lock, where the arrival hour is frozen: check
// sees exactly the hour the batch will be stamped with, closing the
// race between a caller-side quota check and a concurrent Step moving
// the hour. A check error rejects the whole batch and is returned
// verbatim.
func (f *ShardedFleet) SubmitNowChecked(check func(hour int) error, jobs ...Job) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.hour >= f.horizon {
		return 0, ErrHorizonExhausted
	}
	if check != nil {
		if err := check(f.hour); err != nil {
			return 0, err
		}
	}
	return f.submitRLocked(jobs, true)
}

// submitRLocked validates and admits a batch. The world read lock must
// be held: it freezes f.hour and excludes Step.
func (f *ShardedFleet) submitRLocked(jobs []Job, stampNow bool) (int, error) {
	if stampNow {
		for i := range jobs {
			jobs[i].Arrival = f.hour
		}
	}
	states := make([]*sstate, len(jobs))

	f.idMu.Lock()
	inBatch := make(map[int]struct{}, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			f.idMu.Unlock()
			return 0, err
		}
		if _, ok := f.slots[j.Origin]; !ok {
			f.idMu.Unlock()
			return 0, fmt.Errorf("sched: job %d origin %q has no cluster", j.ID, j.Origin)
		}
		if _, dup := f.byID[j.ID]; dup {
			f.idMu.Unlock()
			return 0, fmt.Errorf("sched: duplicate job id %d", j.ID)
		}
		if _, dup := inBatch[j.ID]; dup {
			f.idMu.Unlock()
			return 0, fmt.Errorf("sched: duplicate job id %d", j.ID)
		}
		if j.Arrival < f.hour {
			f.idMu.Unlock()
			return 0, fmt.Errorf("sched: job %d arrives at hour %d, before current hour %d", j.ID, j.Arrival, f.hour)
		}
		inBatch[j.ID] = struct{}{}
	}
	// Past this point nothing can fail: register, then insert per shard.
	for i, j := range jobs {
		st := f.arena.alloc()
		*st = sstate{
			Job:     j,
			seq:     len(f.order),
			originI: f.regionIdx[j.Origin],
			regionI: -1,
			placed:  -1,
			lastRun: -1,
		}
		states[i] = st
		f.byID[j.ID] = st
		f.order = append(f.order, st)
		f.buckets[j.Deadline()]++
	}
	f.submitted.Add(int64(len(jobs)))
	f.idMu.Unlock()

	for _, st := range states {
		sh := f.shards[f.shardOf[st.originI]]
		sh.mu.Lock()
		if st.Arrival <= f.hour {
			sh.active = insertBySeq(sh.active, st)
		} else {
			sh.pending[st.Arrival] = insertBySeq(sh.pending[st.Arrival], st)
		}
		sh.mu.Unlock()
	}
	return f.hour, nil
}

// insertBySeq inserts st into a seq-sorted list. Submissions carry
// increasing seqs, so this is almost always a plain append; only
// batches racing into the same shard pay the insertion copy.
func insertBySeq(list []*sstate, st *sstate) []*sstate {
	if n := len(list); n == 0 || list[n-1].seq < st.seq {
		return append(list, st)
	}
	i := sort.Search(len(list), func(k int) bool { return list[k].seq > st.seq })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = st
	return list
}

// mergeBySeq merges two seq-sorted lists into dst (reset first).
func mergeBySeq(dst, a, b []*sstate) []*sstate {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].seq < b[j].seq {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// mergeShards k-way-merges one seq-sorted list per shard into buf.
func (f *ShardedFleet) mergeShards(buf []*sstate, get func(*fleetShard) []*sstate) []*sstate {
	buf = buf[:0]
	idx := f.mergeIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		best, bestSeq := -1, 0
		for si, sh := range f.shards {
			l := get(sh)
			if idx[si] >= len(l) {
				continue
			}
			if s := l[idx[si]].seq; best < 0 || s < bestSeq {
				best, bestSeq = si, s
			}
		}
		if best < 0 {
			return buf
		}
		buf = append(buf, get(f.shards[best])[idx[best]])
		idx[best]++
	}
}

// Step simulates the fleet's current hour and advances to the next,
// with the same semantics and error conditions as Fleet.Step. The
// per-shard scans and the world advancement run concurrently on the
// engine pool; all cross-shard slot contention is resolved serially in
// submission order, which is what makes the outcome independent of the
// shard count.
func (f *ShardedFleet) Step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hour >= f.horizon {
		return fmt.Errorf("sched: horizon %d exhausted", f.horizon)
	}
	hour := f.hour
	ctx := context.Background()

	// Phase 1 (parallel): each shard injects this hour's arrivals,
	// resets its regions' free counts (disjoint slice indices), claims
	// slots for forced continuations — a started non-interruptible job
	// occupies its current region, which by the move invariant is owned
	// by this shard — and collects everything else into its seq-sorted
	// candidate pool.
	_ = engine.ForEach(ctx, 0, len(f.shards), func(_ context.Context, si int) error {
		sh := f.shards[si]
		if batch := sh.pending[hour]; len(batch) > 0 {
			sh.pool = mergeBySeq(sh.pool, sh.active, batch) // reuse pool as scratch
			sh.active, sh.pool = sh.pool, sh.active
			delete(sh.pending, hour)
		}
		for _, ri := range sh.regions {
			f.free[ri] = f.slotsByIdx[ri]
		}
		sh.pool = sh.pool[:0]
		for _, st := range sh.active {
			st.placed = -1
			if st.progress > 0 && !st.Interruptible {
				st.placed = st.regionI
				f.free[st.regionI]--
			} else {
				sh.pool = append(sh.pool, st)
			}
		}
		return nil
	})

	// Phase 2 (serial): deadline forcing in global submission order —
	// a job with no slack left must run now, in its current/origin
	// region or (if migratable) the first region with space inside its
	// own contention group. This is where cross-shard slot stealing
	// happens, so it cannot be parallelized without changing outcomes.
	pool := f.mergeShards(f.poolBuf, func(sh *fleetShard) []*sstate { return sh.pool })
	f.poolBuf = pool
	for _, st := range pool {
		remaining := st.Length - st.progress
		if st.Deadline()-hour > remaining {
			continue
		}
		ri := st.regionI
		if ri < 0 {
			ri = st.originI
		}
		if f.free[ri] <= 0 && st.Migratable {
			for _, j := range f.groupRegions[f.groupOf[ri]] {
				if f.free[j] > 0 {
					ri = j
					break
				}
			}
		}
		if f.free[ri] > 0 {
			st.placed = ri
			f.free[ri]--
		}
	}

	// Phase 3 (serial): the policy's placement pass over the flexible
	// remainder, once per contention group with a group-local Tick. In
	// the default single-group configuration this is exactly the Tick
	// the serial Fleet builds; with more groups, each group sees only
	// its own regions, free slots, and eligible jobs (still in global
	// submission order), so placements can never cross a boundary.
	for gi, regs := range f.groupRegions {
		freeSlots := make(map[string]int, len(regs))
		for _, ri := range regs {
			freeSlots[f.regionsList[ri]] = f.free[ri]
		}
		tick := &Tick{
			Hour:    hour,
			Regions: f.groupNames[gi],
			CI:      func(region string) float64 { return f.set.MustGet(region).At(hour) },
			Lookback: func(region string, n int) []float64 {
				lo := hour - n
				if lo < 0 {
					lo = 0
				}
				return f.set.MustGet(region).CI[lo:hour]
			},
			FreeSlots: freeSlots,
		}
		for _, st := range pool {
			if st.placed >= 0 || f.groupOf[st.originI] != gi {
				continue
			}
			tick.Eligible = append(tick.Eligible, JobView{
				ID:              st.ID,
				Origin:          st.Origin,
				Tenant:          st.Tenant,
				Remaining:       st.Length - st.progress,
				HoursToDeadline: st.Deadline() - hour,
				Interruptible:   st.Interruptible,
				Migratable:      st.Migratable,
			})
		}
		tick.Eligible = fairOrder(f.fq, tick.Eligible)
		// No idMu here: Step holds the exclusive world lock, and every
		// byID writer first takes the shared world lock.
		for _, p := range f.policy.Plan(tick) {
			st, ok := f.byID[p.JobID]
			if !ok {
				return fmt.Errorf("sched: policy %s placed unknown job %d", f.policy.Name(), p.JobID)
			}
			if st.done || st.Arrival > hour {
				return fmt.Errorf("sched: policy %s placed ineligible job %d", f.policy.Name(), p.JobID)
			}
			if st.placed >= 0 {
				return fmt.Errorf("sched: policy %s double-placed job %d", f.policy.Name(), p.JobID)
			}
			ri, ok := f.regionIdx[p.Region]
			if !ok {
				return fmt.Errorf("sched: policy %s used unknown region %q", f.policy.Name(), p.Region)
			}
			if !st.Migratable && p.Region != st.Origin {
				return fmt.Errorf("sched: policy %s migrated pinned job %d", f.policy.Name(), st.ID)
			}
			if f.groupOf[ri] != gi || f.groupOf[st.originI] != gi {
				return fmt.Errorf("sched: policy %s placed job %d across region-group boundary into %s", f.policy.Name(), st.ID, p.Region)
			}
			if f.free[ri] <= 0 {
				return fmt.Errorf("sched: policy %s oversubscribed region %s", f.policy.Name(), p.Region)
			}
			st.placed = ri
			f.free[ri]--
		}
	}

	// Phase 4 (parallel): advance the world. Every job's mutation is
	// shard-local; slot accounting is already final, so a job placed
	// into another shard's region is advanced here by its old owner and
	// handed over below. Completed and migrated-away jobs are compacted
	// out of the active list.
	_ = engine.ForEach(ctx, 0, len(f.shards), func(_ context.Context, si int) error {
		sh := f.shards[si]
		sh.placedRun = sh.placedRun[:0]
		sh.movedOut = sh.movedOut[:0]
		keep := sh.active[:0]
		for _, st := range sh.active {
			if st.placed < 0 {
				st.waitHours++
				keep = append(keep, st)
				continue
			}
			ri := st.placed
			if st.regionI >= 0 && st.regionI != ri {
				st.migrations++
			}
			st.regionI = ri
			st.region = f.regionsList[ri]
			st.lastRun = hour
			st.progress++
			st.emissions += f.traces[ri].At(hour)
			sh.placedRun = append(sh.placedRun, st)
			if st.progress == st.Length {
				st.done = true
				st.doneAt = hour + 1
				continue
			}
			if f.shardOf[ri] != si {
				sh.movedOut = append(sh.movedOut, st)
				continue
			}
			keep = append(keep, st)
		}
		// Clear the compacted tail so dropped pointers do not pin the
		// whole backing array's view of them as live list entries.
		for i := len(keep); i < len(sh.active); i++ {
			sh.active[i] = nil
		}
		sh.active = keep
		return nil
	})

	// Serial epilogue: fire the recorder and fold the aggregates in
	// submission order, complete the deadline bookkeeping, and hand
	// migrated jobs to their new owning shards.
	placed := f.mergeShards(f.placedBuf, func(sh *fleetShard) []*sstate { return sh.placedRun })
	f.placedBuf = placed
	f.ranLast = 0
	for _, st := range placed {
		f.slotHours++
		f.emissionsG += f.traces[st.regionI].At(hour)
		if f.fq != nil {
			f.fq.Charge(st.Tenant)
		}
		if f.OnPlace != nil {
			f.OnPlace(hour, st.ID, st.region)
		}
		if f.OnPlaceDetail != nil {
			f.OnPlaceDetail(hour, st.ID, st.region, st.Origin, st.Tenant)
		}
		if st.done {
			f.completed++
			if d := st.Deadline(); d <= hour {
				// doneAt = hour+1 > d: a late finish. Its bucket was
				// already drained into overdueOpen when hour passed d.
				f.overdueOpen--
				f.missedDone++
			} else if f.buckets[d]--; f.buckets[d] == 0 {
				delete(f.buckets, d)
			}
		} else {
			f.ranLast++
		}
	}
	for _, sh := range f.shards {
		for _, st := range sh.movedOut {
			target := f.shards[f.shardOf[st.regionI]]
			target.active = insertBySeq(target.active, st)
		}
	}
	if n := f.buckets[hour+1]; n > 0 {
		f.overdueOpen += n
		delete(f.buckets, hour+1)
	}
	f.hour = hour + 1
	return nil
}

// Lookup returns the live view of a submitted job, matching
// Fleet.Lookup field for field.
func (f *ShardedFleet) Lookup(id int) (JobInfo, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.idMu.Lock()
	st, ok := f.byID[id]
	f.idMu.Unlock()
	if !ok {
		return JobInfo{}, false
	}
	info := JobInfo{
		Job:        st.Job,
		Remaining:  st.Length - st.progress,
		Region:     st.region,
		Running:    st.lastRun >= 0 && st.lastRun == f.hour-1,
		Completed:  st.done,
		Emissions:  st.emissions,
		WaitHours:  st.waitHours,
		Migrations: st.migrations,
	}
	if st.done {
		info.CompletedAt = st.doneAt
		info.MissedDeadline = st.doneAt > st.Deadline()
	} else {
		info.MissedDeadline = st.Deadline() <= f.hour
	}
	return info, true
}

// Stats summarizes the fleet's current state from incrementally
// maintained counters in O(shards)-ish constant time — no walk over
// the job store. TotalEmissions is accumulated in execution order
// (hour-major), so it can differ from Fleet.Stats by float rounding in
// the last bits; every count is exact.
func (f *ShardedFleet) Stats() FleetStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	sub := int(f.submitted.Load())
	st := FleetStats{
		Hour:           f.hour,
		Horizon:        f.horizon,
		Submitted:      sub,
		Completed:      f.completed,
		Missed:         f.missedDone + f.overdueOpen,
		Running:        f.ranLast,
		Unresolved:     sub - f.completed,
		TotalEmissions: f.emissionsG,
		SlotHoursUsed:  f.slotHours,
		SlotHoursTotal: float64(f.totalSlots * f.hour),
	}
	st.Queued = st.Unresolved - st.Running
	return st
}

// TenantStats aggregates the fleet's jobs per (normalized) tenant,
// matching Fleet.TenantStats field for field. One walk over the job
// store under the read lock — monitoring-path cost, not Step-path.
func (f *ShardedFleet) TenantStats() map[string]TenantStat {
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.idMu.Lock()
	order := f.order
	f.idMu.Unlock()
	out := make(map[string]TenantStat)
	for _, s := range order {
		name := tenant.Normalize(s.Tenant)
		ts := out[name]
		ts.Submitted++
		ts.SlotHours += s.progress
		ts.Emissions += s.emissions
		if s.done {
			ts.Completed++
			if s.doneAt > s.Deadline() {
				ts.Missed++
			}
		} else {
			ts.Unresolved++
			if s.Deadline() <= f.hour {
				ts.Missed++
			}
			if s.lastRun >= 0 && s.lastRun == f.hour-1 {
				ts.Running++
			} else {
				ts.Queued++
			}
		}
		out[name] = ts
	}
	return out
}

// TenantArrivals counts jobs per (normalized) tenant that arrived at
// the given hour — the seed for rebuilding admission-quota windows
// after crash recovery or follower promotion.
func (f *ShardedFleet) TenantArrivals(hour int) map[string]int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.idMu.Lock()
	order := f.order
	f.idMu.Unlock()
	out := make(map[string]int)
	for _, s := range order {
		if s.Arrival == hour {
			out[tenant.Normalize(s.Tenant)]++
		}
	}
	return out
}

// Snapshot aggregates the fleet's outcomes so far into a Result in job
// submission order, byte-identical to Fleet.Snapshot for the same
// inputs and steps.
func (f *ShardedFleet) Snapshot() Result {
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.idMu.Lock()
	order := f.order
	f.idMu.Unlock()
	res := Result{
		Policy:         f.policy.Name(),
		SlotHoursUsed:  f.slotHours,
		SlotHoursTotal: float64(f.totalSlots * f.horizon),
	}
	for _, st := range order {
		out := Outcome{
			Job:        st.Job,
			Completed:  st.done,
			Emissions:  st.emissions,
			WaitHours:  st.waitHours,
			Migrations: st.migrations,
		}
		if st.done {
			out.CompletedAt = st.doneAt
			out.MissedDeadline = st.doneAt > st.Deadline()
			res.Completed++
		} else {
			out.MissedDeadline = st.Deadline() <= f.hour
		}
		if out.MissedDeadline {
			res.Missed++
		}
		res.TotalEmissions += st.emissions
		res.Outcomes = append(res.Outcomes, out)
	}
	if res.Completed > 0 {
		var wait float64
		for _, o := range res.Outcomes {
			if o.Completed {
				wait += float64(o.WaitHours)
			}
		}
		res.MeanWaitHours = wait / float64(res.Completed)
	}
	return res
}
