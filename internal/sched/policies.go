package sched

import (
	"fmt"
	"sort"

	"carbonshift/internal/rng"
	"carbonshift/internal/stats"
	"carbonshift/internal/workload"
)

// FIFO is the carbon-agnostic baseline: run every eligible job as soon
// as a slot is free, in its origin region, spilling migratable jobs to
// other regions (in sorted order) when the origin is full.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Plan implements Policy.
func (FIFO) Plan(t *Tick) []Placement {
	var out []Placement
	for _, j := range t.Eligible {
		region := j.Origin
		if t.FreeSlots[region] <= 0 {
			if !j.Migratable {
				continue
			}
			region = ""
			for _, r := range t.Regions {
				if t.FreeSlots[r] > 0 {
					region = r
					break
				}
			}
			if region == "" {
				continue
			}
		}
		out = append(out, Placement{JobID: j.ID, Region: region})
		t.FreeSlots[region]--
	}
	return out
}

// CarbonGate defers work while the local grid is dirty: a job runs only
// when its region's current intensity is at or below the Percentile of
// the trailing Window hours — or when its slack is nearly gone (the
// simulator's deadline forcing provides the hard backstop). This is
// the "suspend during high-carbon periods" family of policies the
// paper cites (Wiesner et al.).
type CarbonGate struct {
	// Percentile in (0, 100): run when current CI <= this percentile
	// of the lookback window. 30 means "run during the cleanest 30% of
	// recent hours".
	Percentile float64
	// Window is the lookback length in hours (default 168).
	Window int
}

// Name implements Policy.
func (p CarbonGate) Name() string { return "carbon-gate" }

func (p CarbonGate) window() int {
	if p.Window <= 0 {
		return 168
	}
	return p.Window
}

// Plan implements Policy.
func (p CarbonGate) Plan(t *Tick) []Placement {
	thresholds := make(map[string]float64)
	threshold := func(region string) float64 {
		if v, ok := thresholds[region]; ok {
			return v
		}
		look := t.Lookback(region, p.window())
		v := t.CI(region) // no history yet: always run
		if len(look) > 0 {
			v = stats.Percentile(look, p.Percentile)
		}
		thresholds[region] = v
		return v
	}
	var out []Placement
	for _, j := range t.Eligible {
		if t.FreeSlots[j.Origin] <= 0 {
			continue
		}
		// Urgency override: if waiting one more hour would leave no
		// room to finish, run regardless of the gate. (The simulator
		// also forces this, but a well-behaved policy should not rely
		// on the backstop.)
		urgent := j.SlackLeft() <= 1
		if !urgent && t.CI(j.Origin) > threshold(j.Origin) {
			continue
		}
		out = append(out, Placement{JobID: j.ID, Region: j.Origin})
		t.FreeSlots[j.Origin]--
	}
	return out
}

// GreenestFirst is the spatial policy: run immediately, but place each
// migratable job in the cleanest region with a free slot. Pinned jobs
// run at home.
type GreenestFirst struct{}

// Name implements Policy.
func (GreenestFirst) Name() string { return "greenest-first" }

// Plan implements Policy.
func (GreenestFirst) Plan(t *Tick) []Placement {
	ranked := rankByCI(t)
	var out []Placement
	for _, j := range t.Eligible {
		region := ""
		if j.Migratable {
			for _, r := range ranked {
				if t.FreeSlots[r] > 0 {
					region = r
					break
				}
			}
		} else if t.FreeSlots[j.Origin] > 0 {
			region = j.Origin
		}
		if region == "" {
			continue
		}
		out = append(out, Placement{JobID: j.ID, Region: region})
		t.FreeSlots[region]--
	}
	return out
}

// SpatioTemporal combines both dimensions: migratable jobs chase the
// cleanest region; all jobs additionally wait out dirty periods behind
// a CarbonGate threshold evaluated at the chosen destination.
type SpatioTemporal struct {
	Percentile float64
	Window     int
}

// Name implements Policy.
func (SpatioTemporal) Name() string { return "spatiotemporal" }

// Plan implements Policy.
func (p SpatioTemporal) Plan(t *Tick) []Placement {
	gate := CarbonGate{Percentile: p.Percentile, Window: p.Window}
	ranked := rankByCI(t)
	thresholds := make(map[string]float64)
	threshold := func(region string) float64 {
		if v, ok := thresholds[region]; ok {
			return v
		}
		look := t.Lookback(region, gate.window())
		v := t.CI(region)
		if len(look) > 0 {
			v = stats.Percentile(look, gate.Percentile)
		}
		thresholds[region] = v
		return v
	}
	var out []Placement
	for _, j := range t.Eligible {
		region := ""
		if j.Migratable {
			for _, r := range ranked {
				if t.FreeSlots[r] > 0 {
					region = r
					break
				}
			}
		} else if t.FreeSlots[j.Origin] > 0 {
			region = j.Origin
		}
		if region == "" {
			continue
		}
		urgent := j.SlackLeft() <= 1
		if !urgent && t.CI(region) > threshold(region) {
			continue
		}
		out = append(out, Placement{JobID: j.ID, Region: region})
		t.FreeSlots[region]--
	}
	return out
}

func rankByCI(t *Tick) []string {
	ranked := make([]string, len(t.Regions))
	copy(ranked, t.Regions)
	sort.SliceStable(ranked, func(a, b int) bool {
		return t.CI(ranked[a]) < t.CI(ranked[b])
	})
	return ranked
}

// WorkloadSpec describes a synthetic job stream for the simulator.
type WorkloadSpec struct {
	// Jobs is the number of jobs to generate.
	Jobs int
	// ArrivalSpan spreads arrivals uniformly over [0, ArrivalSpan).
	ArrivalSpan int
	// Dist draws job lengths (default: workload.DistEqual).
	Dist workload.Distribution
	// SlackHours applies to every job.
	SlackHours int
	// InterruptibleFrac and MigratableFrac set the flexibility mix.
	InterruptibleFrac, MigratableFrac float64
	// Origins are the submission regions, cycled deterministically and
	// perturbed by the seed.
	Origins []string
	// Seed drives all sampling.
	Seed uint64
}

// GenerateJobs produces a deterministic job stream from the spec.
func GenerateJobs(spec WorkloadSpec) ([]Job, error) {
	if spec.Jobs < 1 || spec.ArrivalSpan < 1 || len(spec.Origins) == 0 {
		return nil, errBadSpec(spec)
	}
	if spec.InterruptibleFrac < 0 || spec.InterruptibleFrac > 1 ||
		spec.MigratableFrac < 0 || spec.MigratableFrac > 1 {
		return nil, errBadSpec(spec)
	}
	dist := spec.Dist
	if len(dist.Lengths()) == 0 {
		dist = workload.DistEqual
	}
	src := rng.New(spec.Seed)
	jobs := make([]Job, spec.Jobs)
	for i := range jobs {
		jobs[i] = Job{
			ID:            i,
			Origin:        spec.Origins[src.Intn(len(spec.Origins))],
			Arrival:       src.Intn(spec.ArrivalSpan),
			Length:        dist.Sample(src),
			Slack:         spec.SlackHours,
			Interruptible: src.Float64() < spec.InterruptibleFrac,
			Migratable:    src.Float64() < spec.MigratableFrac,
		}
	}
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Arrival != jobs[b].Arrival {
			return jobs[a].Arrival < jobs[b].Arrival
		}
		return jobs[a].ID < jobs[b].ID
	})
	return jobs, nil
}

func errBadSpec(spec WorkloadSpec) error {
	return fmt.Errorf("sched: bad workload spec %+v", spec)
}
