package sched

// Fleet state serialization: a versioned, deterministic binary image of
// everything a Fleet or ShardedFleet has accumulated — the submitted
// jobs with their full runtime bookkeeping, the current hour, and the
// order-sensitive float aggregates — restorable into a freshly
// constructed fleet over the same world. internal/schedd snapshots this
// image into its write-ahead store so a crashed scheduler can recover
// to state byte-identical to an uninterrupted run.
//
// Format (version 2), all integers varint-encoded (unsigned for values
// that cannot be negative, zigzag otherwise), strings length-prefixed,
// floats as 8 big-endian IEEE-754 bytes:
//
//	magic "CSFS" | version 2 | policy | horizon | hour
//	| nregions | (region, slots)...        world fingerprint, checked
//	| slotHours | emissionsOrdered         order-sensitive aggregates
//	| tenancy fingerprint                  "" when no tenant config
//	| vtime | npass | (tenant, pass)...    fair-queue state, sorted
//	| njobs | job...                       submission order
//	| crc32(everything above)
//
// Each job is: id (zigzag) | origin | arrival | length | slack |
// flags (1 interruptible, 2 migratable, 4 done, 8 has-tenant) |
// tenant (only when flag 8 is set) | progress |
// regionIdx (zigzag, -1 = never placed) | lastRun (zigzag, -1 = never)
// | doneAt | waitHours | migrations | emissions.
//
// Version 1 is version 2 minus the tenancy section and the has-tenant
// flag; the decoder still accepts it (pre-tenancy snapshots restore as
// all-default-tenant fleets), but restoring a v1 image into a fleet
// with a tenant config installed is refused — the fair queue would
// reorder placements the snapshot never saw.
//
// The encoding is deterministic: the same fleet state always produces
// the same bytes, which is what lets the crash-recovery tests assert
// byte-identity between a recovered and an uninterrupted run. Golden
// tests pin the byte layout; bump stateVersion on any change.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"carbonshift/internal/tenant"
)

const (
	stateMagic   = "CSFS"
	stateVersion = 2
	// stateVersionV1 is the pre-tenancy format, still decoded.
	stateVersionV1 = 1
)

// Job flag bits in the serialized image.
const (
	flagInterruptible = 1 << iota
	flagMigratable
	flagDone
	flagHasTenant
)

// jobImage is one job's full serialized state.
type jobImage struct {
	Job
	progress   int
	regionI    int // index into the fleet's sorted region list, -1 = none
	lastRun    int // hour of the most recent run, -1 = never
	done       bool
	doneAt     int
	waitHours  int
	migrations int
	emissions  float64
}

// fleetImage is the complete serialized state shared by both fleet
// forms.
type fleetImage struct {
	policy  string
	horizon int
	hour    int
	regions []string
	slots   []int
	// slotHours and emissionsOrdered are the incrementally accumulated
	// aggregates. slotHours is integer-valued; emissionsOrdered is the
	// execution-order (hour-major) emission sum a ShardedFleet
	// maintains for O(1) Stats — a serial Fleet, which recomputes
	// per-job, stores the submission-order sum instead (the two can
	// differ in the last float bits).
	slotHours        float64
	emissionsOrdered float64
	// Tenancy section (version 2+): the scheduling-relevant config
	// fingerprint plus the fair queue's virtual-time state.
	tenancyFP string
	fqVtime   int64
	fqNames   []string
	fqPasses  []int64
	jobs      []jobImage
}

// --- binary writer/reader ---

type stateEnc struct{ buf []byte }

func (e *stateEnc) uvarint(v int) { e.buf = binary.AppendUvarint(e.buf, uint64(v)) }
func (e *stateEnc) zigzag(v int)  { e.buf = binary.AppendVarint(e.buf, int64(v)) }
func (e *stateEnc) str(s string)  { e.uvarint(len(s)); e.buf = append(e.buf, s...) }
func (e *stateEnc) byte(b byte)   { e.buf = append(e.buf, b) }
func (e *stateEnc) float(f float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(f))
}

type stateDec struct {
	data []byte
	err  error
}

func (d *stateDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("sched: state decode: "+format, args...)
	}
}

func (d *stateDec) uvarint() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 || v > math.MaxInt64 {
		d.fail("bad uvarint")
		return 0
	}
	d.data = d.data[n:]
	return int(v)
}

func (d *stateDec) zigzag() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.data = d.data[n:]
	return int(v)
}

func (d *stateDec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n < 0 || n > len(d.data) {
		d.fail("string length %d exceeds %d remaining bytes", n, len(d.data))
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

func (d *stateDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) == 0 {
		d.fail("unexpected end of input")
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

func (d *stateDec) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.fail("unexpected end of input")
		return 0
	}
	f := math.Float64frombits(binary.BigEndian.Uint64(d.data))
	d.data = d.data[8:]
	return f
}

// --- image encode/decode ---

func (img *fleetImage) encode() []byte {
	e := &stateEnc{buf: make([]byte, 0, 64+len(img.jobs)*48)}
	e.buf = append(e.buf, stateMagic...)
	e.byte(stateVersion)
	e.str(img.policy)
	e.uvarint(img.horizon)
	e.uvarint(img.hour)
	e.uvarint(len(img.regions))
	for i, r := range img.regions {
		e.str(r)
		e.uvarint(img.slots[i])
	}
	e.float(img.slotHours)
	e.float(img.emissionsOrdered)
	e.str(img.tenancyFP)
	e.uvarint(int(img.fqVtime))
	e.uvarint(len(img.fqNames))
	for i, name := range img.fqNames {
		e.str(name)
		e.uvarint(int(img.fqPasses[i]))
	}
	e.uvarint(len(img.jobs))
	for i := range img.jobs {
		j := &img.jobs[i]
		e.zigzag(j.ID)
		e.str(j.Origin)
		e.uvarint(j.Arrival)
		e.uvarint(j.Length)
		e.uvarint(j.Slack)
		var flags byte
		if j.Interruptible {
			flags |= flagInterruptible
		}
		if j.Migratable {
			flags |= flagMigratable
		}
		if j.done {
			flags |= flagDone
		}
		if j.Tenant != "" {
			flags |= flagHasTenant
		}
		e.byte(flags)
		if j.Tenant != "" {
			e.str(j.Tenant)
		}
		e.uvarint(j.progress)
		e.zigzag(j.regionI)
		e.zigzag(j.lastRun)
		e.uvarint(j.doneAt)
		e.uvarint(j.waitHours)
		e.uvarint(j.migrations)
		e.float(j.emissions)
	}
	e.buf = binary.BigEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf))
	return e.buf
}

func decodeImage(data []byte) (*fleetImage, error) {
	if len(data) < len(stateMagic)+1+4 {
		return nil, fmt.Errorf("sched: state decode: %d bytes is too short", len(data))
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("sched: state decode: CRC mismatch (got %08x, want %08x)", got, sum)
	}
	if string(body[:len(stateMagic)]) != stateMagic {
		return nil, fmt.Errorf("sched: state decode: bad magic %q", body[:len(stateMagic)])
	}
	ver := body[len(stateMagic)]
	if ver != stateVersion && ver != stateVersionV1 {
		return nil, fmt.Errorf("sched: state decode: unsupported version %d (want %d or %d)", ver, stateVersionV1, stateVersion)
	}
	d := &stateDec{data: body[len(stateMagic)+1:]}
	img := &fleetImage{}
	img.policy = d.str()
	img.horizon = d.uvarint()
	img.hour = d.uvarint()
	nr := d.uvarint()
	if d.err == nil && nr > len(d.data) {
		d.fail("region count %d exceeds input", nr)
	}
	for i := 0; i < nr && d.err == nil; i++ {
		img.regions = append(img.regions, d.str())
		img.slots = append(img.slots, d.uvarint())
	}
	img.slotHours = d.float()
	img.emissionsOrdered = d.float()
	if ver >= 2 {
		img.tenancyFP = d.str()
		img.fqVtime = int64(d.uvarint())
		np := d.uvarint()
		if d.err == nil && np > len(d.data) {
			d.fail("pass count %d exceeds input", np)
		}
		for i := 0; i < np && d.err == nil; i++ {
			img.fqNames = append(img.fqNames, d.str())
			img.fqPasses = append(img.fqPasses, int64(d.uvarint()))
		}
	}
	nj := d.uvarint()
	if d.err == nil && nj > len(d.data) {
		d.fail("job count %d exceeds input", nj)
	}
	for i := 0; i < nj && d.err == nil; i++ {
		var j jobImage
		j.ID = d.zigzag()
		j.Origin = d.str()
		j.Arrival = d.uvarint()
		j.Length = d.uvarint()
		j.Slack = d.uvarint()
		flags := d.byte()
		j.Interruptible = flags&flagInterruptible != 0
		j.Migratable = flags&flagMigratable != 0
		j.done = flags&flagDone != 0
		if flags&flagHasTenant != 0 {
			if ver < 2 {
				d.fail("job %d carries a tenant in a version-1 image", j.ID)
			}
			j.Tenant = d.str()
		}
		j.progress = d.uvarint()
		j.regionI = d.zigzag()
		j.lastRun = d.zigzag()
		j.doneAt = d.uvarint()
		j.waitHours = d.uvarint()
		j.migrations = d.uvarint()
		j.emissions = d.float()
		img.jobs = append(img.jobs, j)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("sched: state decode: %d trailing bytes", len(d.data))
	}
	return img, nil
}

// checkWorld verifies the image was taken from the same scheduling
// world as the restoring fleet: policy, horizon, the exact region and
// slot configuration, and the tenancy fingerprint — a snapshot taken
// under one fair-share configuration restored into another would
// silently diverge placements.
func (img *fleetImage) checkWorld(policy string, horizon int, regions []string, slots map[string]int, tenancyFP string) error {
	if img.tenancyFP != tenancyFP {
		return fmt.Errorf("sched: state restore: snapshot tenancy config %q, fleet has %q", img.tenancyFP, tenancyFP)
	}
	if img.policy != policy {
		return fmt.Errorf("sched: state restore: snapshot policy %q, fleet runs %q", img.policy, policy)
	}
	if img.horizon != horizon {
		return fmt.Errorf("sched: state restore: snapshot horizon %d, fleet has %d", img.horizon, horizon)
	}
	if img.hour > horizon {
		return fmt.Errorf("sched: state restore: snapshot hour %d past horizon %d", img.hour, horizon)
	}
	if len(img.regions) != len(regions) {
		return fmt.Errorf("sched: state restore: snapshot has %d regions, fleet has %d", len(img.regions), len(regions))
	}
	for i, r := range img.regions {
		if r != regions[i] {
			return fmt.Errorf("sched: state restore: snapshot region %q, fleet has %q", r, regions[i])
		}
		if img.slots[i] != slots[r] {
			return fmt.Errorf("sched: state restore: region %s snapshot slots %d, fleet has %d", r, img.slots[i], slots[r])
		}
	}
	return nil
}

// checkJob validates one decoded job against the restoring world so a
// corrupted-but-checksummed image cannot index out of bounds.
func (img *fleetImage) checkJob(j *jobImage, seen map[int]bool) error {
	if err := j.Validate(); err != nil {
		return fmt.Errorf("sched: state restore: %w", err)
	}
	if seen[j.ID] {
		return fmt.Errorf("sched: state restore: duplicate job id %d", j.ID)
	}
	seen[j.ID] = true
	if j.regionI < -1 || j.regionI >= len(img.regions) {
		return fmt.Errorf("sched: state restore: job %d region index %d out of range", j.ID, j.regionI)
	}
	if j.progress < 0 || j.progress > j.Length {
		return fmt.Errorf("sched: state restore: job %d progress %d outside length %d", j.ID, j.progress, j.Length)
	}
	if j.done != (j.progress == j.Length) {
		return fmt.Errorf("sched: state restore: job %d done flag inconsistent with progress", j.ID)
	}
	if j.progress > 0 && j.regionI < 0 {
		return fmt.Errorf("sched: state restore: job %d has progress but no region", j.ID)
	}
	return nil
}

// checkFQ validates the image's fair-queue section before any fleet
// mutation, so the later Restore into the live queue cannot fail
// half-applied.
func (img *fleetImage) checkFQ(hasQueue bool) error {
	if !hasQueue && (len(img.fqNames) > 0 || img.fqVtime != 0) {
		return fmt.Errorf("sched: state restore: snapshot carries fair-queue state but the fleet has no fair queue")
	}
	if len(img.fqNames) != len(img.fqPasses) {
		return fmt.Errorf("sched: state restore: %d fair-queue names, %d passes", len(img.fqNames), len(img.fqPasses))
	}
	if img.fqVtime < 0 {
		return fmt.Errorf("sched: state restore: negative fair-queue vtime %d", img.fqVtime)
	}
	for i, name := range img.fqNames {
		if name == "" || !tenant.NameOK(name) {
			return fmt.Errorf("sched: state restore: bad fair-queue tenant %q", name)
		}
		if img.fqPasses[i] < 0 {
			return fmt.Errorf("sched: state restore: tenant %q negative pass %d", name, img.fqPasses[i])
		}
	}
	return nil
}

func regionIndex(regions []string, region string) int {
	for i, r := range regions {
		if r == region {
			return i
		}
	}
	return -1
}

// --- Fleet ---

// Marshal serializes the fleet's complete state — every job's runtime
// bookkeeping plus the hour and aggregates — into the versioned,
// CRC-protected binary image documented at the top of this file. The
// output is deterministic for a given state.
func (f *Fleet) Marshal() ([]byte, error) {
	img := &fleetImage{
		policy:    f.policy.Name(),
		horizon:   f.horizon,
		hour:      f.hour,
		regions:   f.regionsList,
		slotHours: f.slotHoursUsed,
		tenancyFP: f.fq.Fingerprint(),
		jobs:      make([]jobImage, 0, len(f.states)),
	}
	img.fqVtime, img.fqNames, img.fqPasses = f.fq.Snapshot()
	for _, r := range f.regionsList {
		img.slots = append(img.slots, f.slots[r])
	}
	for _, st := range f.states {
		j := jobImage{
			Job:        st.Job,
			progress:   st.progress,
			regionI:    regionIndex(f.regionsList, st.region),
			lastRun:    -1,
			done:       st.done,
			doneAt:     st.doneAt,
			waitHours:  st.waitHours,
			migrations: st.migrations,
			emissions:  st.emissions,
		}
		if st.ranLastHr {
			j.lastRun = f.hour - 1
		}
		img.emissionsOrdered += st.emissions
		img.jobs = append(img.jobs, j)
	}
	return img.encode(), nil
}

// Unmarshal restores state serialized by Fleet.Marshal or
// ShardedFleet.Marshal into this fleet, replacing whatever it held. The
// fleet must have been constructed over the same world (trace regions,
// cluster slots, policy, horizon); a mismatch is an error and leaves
// the fleet unchanged.
func (f *Fleet) Unmarshal(data []byte) error {
	img, err := decodeImage(data)
	if err != nil {
		return err
	}
	if err := img.checkWorld(f.policy.Name(), f.horizon, f.regionsList, f.slots, f.fq.Fingerprint()); err != nil {
		return err
	}
	if err := img.checkFQ(f.fq != nil); err != nil {
		return err
	}
	seen := make(map[int]bool, len(img.jobs))
	for i := range img.jobs {
		if err := img.checkJob(&img.jobs[i], seen); err != nil {
			return err
		}
	}
	if f.fq != nil {
		if err := f.fq.Restore(img.fqVtime, img.fqNames, img.fqPasses); err != nil {
			return err
		}
	}
	f.hour = img.hour
	f.slotHoursUsed = img.slotHours
	f.states = make([]*state, 0, len(img.jobs))
	f.byID = make(map[int]*state, len(img.jobs))
	f.completed = 0
	for i := range img.jobs {
		j := &img.jobs[i]
		st := &state{
			Job:        j.Job,
			progress:   j.progress,
			ranLastHr:  j.lastRun >= 0 && j.lastRun == img.hour-1,
			done:       j.done,
			doneAt:     j.doneAt,
			emissions:  j.emissions,
			waitHours:  j.waitHours,
			migrations: j.migrations,
		}
		if j.regionI >= 0 {
			st.region = f.regionsList[j.regionI]
		}
		if j.done {
			f.completed++
		}
		f.states = append(f.states, st)
		f.byID[st.ID] = st
	}
	return nil
}

// --- ShardedFleet ---

// Marshal serializes the sharded fleet's complete state into the same
// versioned image Fleet.Marshal produces; the two forms restore into
// each other. Safe to call concurrently with Submit/Lookup/Stats.
func (f *ShardedFleet) Marshal() ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.idMu.Lock()
	order := f.order
	f.idMu.Unlock()
	img := &fleetImage{
		policy:           f.policy.Name(),
		horizon:          f.horizon,
		hour:             f.hour,
		regions:          f.regionsList,
		slots:            f.slotsByIdx,
		slotHours:        f.slotHours,
		emissionsOrdered: f.emissionsG,
		tenancyFP:        f.fq.Fingerprint(),
		jobs:             make([]jobImage, 0, len(order)),
	}
	img.fqVtime, img.fqNames, img.fqPasses = f.fq.Snapshot()
	for _, st := range order {
		img.jobs = append(img.jobs, jobImage{
			Job:        st.Job,
			progress:   st.progress,
			regionI:    st.regionI,
			lastRun:    st.lastRun,
			done:       st.done,
			doneAt:     st.doneAt,
			waitHours:  st.waitHours,
			migrations: st.migrations,
			emissions:  st.emissions,
		})
	}
	return img.encode(), nil
}

// Unmarshal restores serialized fleet state into this sharded fleet,
// replacing whatever it held: the job registry, the per-shard active
// and pending lists, the deadline buckets, and every incremental
// counter are rebuilt so subsequent Steps are byte-identical to a fleet
// that never stopped. The fleet must have been constructed over the
// same world; a mismatch is an error and leaves the fleet unchanged.
func (f *ShardedFleet) Unmarshal(data []byte) error {
	img, err := decodeImage(data)
	if err != nil {
		return err
	}
	seen := make(map[int]bool, len(img.jobs))
	for i := range img.jobs {
		if err := img.checkJob(&img.jobs[i], seen); err != nil {
			return err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := img.checkWorld(f.policy.Name(), f.horizon, f.regionsList, f.slots, f.fq.Fingerprint()); err != nil {
		return err
	}
	if err := img.checkFQ(f.fq != nil); err != nil {
		return err
	}
	if f.fq != nil {
		if err := f.fq.Restore(img.fqVtime, img.fqNames, img.fqPasses); err != nil {
			return err
		}
	}
	f.idMu.Lock()
	defer f.idMu.Unlock()

	f.hour = img.hour
	f.slotHours = img.slotHours
	f.emissionsG = img.emissionsOrdered
	f.byID = make(map[int]*sstate, len(img.jobs))
	f.order = make([]*sstate, 0, len(img.jobs))
	// The restored states displace every prior one; drop the live arena
	// block (its remaining free records would pin the old image) and
	// carve the new states from fresh blocks.
	f.arena = sstateArena{}
	f.buckets = make(map[int]int)
	f.completed, f.missedDone, f.overdueOpen, f.ranLast = 0, 0, 0, 0
	for _, sh := range f.shards {
		sh.active = nil
		sh.pending = make(map[int][]*sstate)
	}
	for i := range img.jobs {
		j := &img.jobs[i]
		st := f.arena.alloc()
		*st = sstate{
			Job:        j.Job,
			seq:        i,
			originI:    f.regionIdx[j.Origin],
			progress:   j.progress,
			regionI:    j.regionI,
			placed:     -1,
			lastRun:    j.lastRun,
			done:       j.done,
			doneAt:     j.doneAt,
			emissions:  j.emissions,
			waitHours:  j.waitHours,
			migrations: j.migrations,
		}
		if j.regionI >= 0 {
			st.region = f.regionsList[j.regionI]
		}
		f.byID[st.ID] = st
		f.order = append(f.order, st)
		if st.done {
			f.completed++
			if st.doneAt > st.Deadline() {
				f.missedDone++
			}
			continue
		}
		// Unresolved: rebuild the deadline bookkeeping and the shard
		// placement invariant — an active job lives in the shard of its
		// current region (origin if it never ran), a future arrival
		// waits in its origin shard's arrival bucket.
		if d := st.Deadline(); d > img.hour {
			f.buckets[d]++
		} else {
			f.overdueOpen++
		}
		if st.lastRun >= 0 && st.lastRun == img.hour-1 {
			f.ranLast++
		}
		homeI := st.originI
		if st.regionI >= 0 {
			homeI = st.regionI
		}
		sh := f.shards[f.shardOf[homeI]]
		if st.Arrival > img.hour {
			sh.pending[st.Arrival] = append(sh.pending[st.Arrival], st)
		} else {
			sh.active = append(sh.active, st)
		}
	}
	f.submitted.Store(int64(len(img.jobs)))
	return nil
}

// --- job batch codec (journal admit records) ---

// EncodeJobs appends a deterministic binary encoding of the job batch
// to buf: count, then per job id (zigzag) | origin | arrival | length
// | slack | flags | tenant (only when flag 8 is set). It is the
// payload format internal/schedd journals on admission; DecodeJobs
// reverses it. Tenant-free batches encode byte-identically to the
// pre-tenancy format, so old journals replay unchanged and new
// journals without tenants stay readable by the old decoder.
func EncodeJobs(buf []byte, jobs []Job) []byte {
	e := &stateEnc{buf: buf}
	e.uvarint(len(jobs))
	for _, j := range jobs {
		e.zigzag(j.ID)
		e.str(j.Origin)
		e.uvarint(j.Arrival)
		e.uvarint(j.Length)
		e.uvarint(j.Slack)
		var flags byte
		if j.Interruptible {
			flags |= flagInterruptible
		}
		if j.Migratable {
			flags |= flagMigratable
		}
		if j.Tenant != "" {
			flags |= flagHasTenant
		}
		e.byte(flags)
		if j.Tenant != "" {
			e.str(j.Tenant)
		}
	}
	return e.buf
}

// DecodeJobs decodes a batch written by EncodeJobs and returns the
// jobs plus any unconsumed suffix of data. It never panics on
// malformed input.
func DecodeJobs(data []byte) (jobs []Job, rest []byte, err error) {
	d := &stateDec{data: data}
	n := d.uvarint()
	if d.err == nil && n > len(data) {
		d.fail("job count %d exceeds input", n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		var j Job
		j.ID = d.zigzag()
		j.Origin = d.str()
		j.Arrival = d.uvarint()
		j.Length = d.uvarint()
		j.Slack = d.uvarint()
		flags := d.byte()
		j.Interruptible = flags&flagInterruptible != 0
		j.Migratable = flags&flagMigratable != 0
		if flags&flagHasTenant != 0 {
			j.Tenant = d.str()
		}
		jobs = append(jobs, j)
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	return jobs, d.data, nil
}
